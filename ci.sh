#!/usr/bin/env sh
# CI gate for the FPS T Series simulator.
#
# Stages:
#   1. warnings-as-errors build + full tier-1 ctest under ASan+UBSan
#   2. tcheck static verification: every shipped example must be clean
#   3. tcheck over the corpus of deliberately-broken programs: every one
#      must be flagged (with --werror, so warning-class defects count)
#   4. tperf pipeline: the traced 2-cube SAXPY example writes a dump,
#      ttrace must load it cleanly (no balance violation), its vpu-active
#      MFLOPS must match bench_fig1_node's 128-element SAXPY rate within
#      1%, and bench_overlap's no-overlap ablation dump must be flagged
#      as a balance VIOLATION
#   5. tscope pipeline: two identical 16-node all-to-all runs must produce
#      byte-identical dumps and byte-identical tscope analyses, and the
#      routing invariants must hold — max hops <= log2 n and observed
#      per-edge crossings exactly equal to the static e-cube congestion
#      prediction (hard error on any deviation)
#   6. engine perf trajectory: bench_simcore --json records DES event
#      throughput; the run fails if events/sec regressed more than 10%
#      run-over-run against the previous dump from the same build flavour
#      (sanitized CI runs are never compared against the release baseline
#      committed as BENCH_simcore.json)
#   7. clang-tidy over all first-party translation units (skipped when the
#      toolchain image has no clang-tidy)
#
#   usage: ./ci.sh [build-dir]      (default: build-ci)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
build_dir=${1:-"$repo_root/build-ci"}

echo "== [1/7] build (-Werror, ASan+UBSan) and tier-1 tests =="
cmake -B "$build_dir" -S "$repo_root" \
      -DFPST_WERROR=ON -DFPST_SANITIZE=address,undefined
cmake --build "$build_dir" -j
(cd "$build_dir" && ctest --output-on-failure -j)

tcheck="$build_dir/tools/tcheck"

echo "== [2/7] tcheck: shipped examples must verify clean =="
"$tcheck" "$repo_root"/examples/tisa/*.tisa "$repo_root"/examples/comm/*.comm

echo "== [3/7] tcheck: corpus of broken programs must all be flagged =="
bad=0
for f in "$repo_root"/tests/corpus/*; do
  if "$tcheck" --werror -q "$f"; then
    echo "ci: NOT FLAGGED (corpus program slipped through): $f" >&2
    bad=1
  fi
done
[ "$bad" -eq 0 ] || exit 1

echo "== [4/7] tperf: trace -> ttrace report -> cross-check =="
ttrace="$build_dir/tools/ttrace"
dump="$build_dir/ci_traced_saxpy.json"
"$build_dir/examples/traced_saxpy" "$dump"
# A balanced workload: ttrace must accept it even with violations fatal.
"$ttrace" --fail-on-violation "$dump"
# Cross-check the two independent MFLOPS measurements: ttrace's vpu-active
# rate (flops / vpu busy from the counters) vs bench_fig1_node's directly
# timed 128-element SAXPY row. They must agree within 1%.
active=$("$ttrace" --metric active_mflops "$dump")
fig1=$("$build_dir/bench/bench_fig1_node" |
       awk '$1 == "128" {print $NF; exit}')
echo "ci: ttrace active_mflops=$active bench_fig1_node(128)=$fig1"
awk -v a="$active" -v b="$fig1" 'BEGIN {
  d = a - b; if (d < 0) d = -d;
  if (b <= 0 || d / b > 0.01) { exit 1 }
}' || {
  echo "ci: MFLOPS mismatch: ttrace $active vs bench_fig1_node $fig1" >&2
  exit 1
}
# The no-overlap ablation (2 flops per gathered element) must be flagged.
"$build_dir/bench/bench_overlap" --json "$build_dir/ci_e9.json" > /dev/null
if "$ttrace" --fail-on-violation "$build_dir/ci_e9.json" > /dev/null; then
  echo "ci: ttrace missed the gather-balance violation in the E9 dump" >&2
  exit 1
fi
"$ttrace" "$build_dir/ci_e9.json" | grep -q VIOLATION || {
  echo "ci: ttrace report does not mark the E9 ablation as VIOLATION" >&2
  exit 1
}

echo "== [5/7] tscope: 16-node all-to-all message tracing =="
tscope="$build_dir/tools/tscope"
a2a_a="$build_dir/ci_alltoall_a.json"
a2a_b="$build_dir/ci_alltoall_b.json"
"$build_dir/examples/alltoall_traced" "$a2a_a" 4 > /dev/null
"$build_dir/examples/alltoall_traced" "$a2a_b" 4 > /dev/null
# Determinism: identical runs must serialise byte-identically, and the
# stitched analyses must match byte for byte too.
cmp -s "$a2a_a" "$a2a_b" || {
  echo "ci: traced all-to-all dumps differ between identical runs" >&2
  exit 1
}
"$tscope" --json "$a2a_a" > "$build_dir/ci_alltoall_a.msg.json"
"$tscope" --json "$a2a_b" > "$build_dir/ci_alltoall_b.msg.json"
cmp -s "$build_dir/ci_alltoall_a.msg.json" "$build_dir/ci_alltoall_b.msg.json" || {
  echo "ci: tscope analyses differ between identical runs" >&2
  exit 1
}
# Routing invariants, hard error on any deviation: every flight within the
# log2 n hop bound on minimal routes, and the observed per-edge crossings
# exactly equal to net/hypercube's static e-cube congestion prediction.
"$tscope" --check-ecube "$a2a_a"
echo "ci: tscope p50_us=$("$tscope" --metric p50_us "$a2a_a")" \
     "p99_us=$("$tscope" --metric p99_us "$a2a_a")" \
     "critical_path_frac=$("$tscope" --metric critical_path_frac "$a2a_a")"

echo "== [6/7] bench_simcore: DES event-throughput trajectory =="
# Fresh measurement. The dump is flavour-tagged (release vs sanitized), so
# the gate only ever compares consecutive runs of the same flavour: a
# sanitized CI run must not be judged against the committed release
# baseline (BENCH_simcore.json at the repo root, regenerated per PR).
simcore_fresh="$build_dir/BENCH_simcore.json"
simcore_prev="$build_dir/BENCH_simcore.prev.json"
fresh_eps=$("$build_dir/bench/bench_simcore" --json "$simcore_fresh" |
            awk '$1 == "events_per_sec" {print $2}')
echo "ci: bench_simcore events_per_sec=$fresh_eps"
# Gate against the *lowest* flavour-matching record: single-core hosts show
# upward noise spikes (a lucky steal-free run), and judging the next run
# against a spike would fail spuriously. A real regression still undercuts
# every record.
gate_eps=""
for record in "$simcore_prev" "$repo_root/BENCH_simcore.json"; do
  [ -f "$record" ] || continue
  fresh_flavour=$(sed -n 's/.*"build": *"\([a-z]*\)".*/\1/p' "$simcore_fresh")
  rec_flavour=$(sed -n 's/.*"build": *"\([a-z]*\)".*/\1/p' "$record")
  [ "$fresh_flavour" = "$rec_flavour" ] || continue
  rec_eps=$(sed -n 's/.*"events_per_sec": *\([0-9.e+]*\).*/\1/p' "$record")
  echo "ci: recorded $record events_per_sec=$rec_eps"
  if [ -z "$gate_eps" ] ||
     awk -v a="$rec_eps" -v b="$gate_eps" 'BEGIN { exit !(a < b) }'; then
    gate_eps="$rec_eps"
  fi
done
if [ -n "$gate_eps" ]; then
  awk -v f="$fresh_eps" -v b="$gate_eps" 'BEGIN { exit !(f >= 0.9 * b) }' || {
    echo "ci: bench_simcore regressed >10%: $fresh_eps vs recorded $gate_eps" >&2
    exit 1
  }
fi
cp "$simcore_fresh" "$simcore_prev"

echo "== [7/7] clang-tidy =="
"$repo_root"/tools/run-tidy.sh "$build_dir"

echo "ci: all stages passed"
