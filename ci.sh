#!/usr/bin/env sh
# CI gate for the FPS T Series simulator.
#
# Stages (run `./ci.sh --list-stages` for the one-line table):
#   1. warnings-as-errors build + the tier-1 ctest suite (`ctest -L tier1`)
#      under the selected sanitizer flavour
#   2. tcheck static verification: every shipped example must be clean
#   3. tcheck over the corpus of deliberately-broken programs: every one
#      must be flagged (with --werror, so warning-class defects count)
#   4. tperf pipeline: the traced 2-cube SAXPY example writes a dump,
#      ttrace must load it cleanly (no balance violation), its vpu-active
#      MFLOPS must match bench_fig1_node's 128-element SAXPY rate within
#      1%, and bench_overlap's no-overlap ablation dump must be flagged
#      as a balance VIOLATION. The example is then re-run on the parallel
#      engine at every --threads count: `--threads 1` must be
#      byte-identical to the serial dump, and all multi-threaded dumps
#      must be byte-identical to each other
#   5. tscope pipeline: two identical 16-node all-to-all runs must produce
#      byte-identical dumps and byte-identical tscope analyses, the
#      routing invariants must hold (max hops <= log2 n, observed
#      per-edge crossings exactly equal to the static e-cube congestion
#      prediction), and the same --threads determinism sweep as stage 4
#      runs against the all-to-all — including --check-ecube on the
#      parallel engine's dump
#   6. tcheck --predict cross-validation: the static cost model's
#      prediction for the shipped vform SAXPY must match the tisa_traced
#      measurement (instruction count exact, elapsed within the documented
#      2% tolerance — today the match is bit-exact), and the static
#      per-edge volume of the all-to-all .comm twin must match the traced
#      16-node run exactly: every cube edge crossed 16 times, 512 hops
#   7. engine perf trajectory: bench_simcore --json records DES event
#      throughput; the run fails if events/sec regressed more than 10%
#      run-over-run against the previous dump from the same build flavour
#      (sanitized CI runs are never compared against the release baseline
#      committed as BENCH_simcore.json)
#   8. serve storm: bench_serve drives an open-loop mixed request storm
#      through the in-process job service — completion must be >= 99%,
#      cached results byte-identical with zero simulated events, the
#      mixed-storm cache hit rate >= 30%, the duplicate-heavy storm >= 5x
#      the jobs/sec of its cache-disabled twin, and mixed-storm jobs/sec
#      must not undercut the lowest same-flavour record by more than 30%
#      (flavour-tagged run-over-run like stage 7; the release baseline is
#      committed as BENCH_serve.json). The mixed-storm p99 submit->complete
#      latency is the SLO gate: it must stay within 4x the lowest
#      same-flavour recorded p99 (tail latency is far noisier than
#      throughput, hence the wider headroom). The stage also runs the tmon
#      selfdump harness twice and requires the span + metrics documents to
#      be byte-identical once `meta` blocks (wall-clock timings) are
#      stripped — the observability determinism contract
#   9. vpu batch arm: the randomized cross-validation fuzzer (every
#      elementwise form, both precisions, special operands — batch arm vs
#      softfloat oracle, fixed seed) must pass, and the
#      bench_kernels_scaling --batch-sweep must be bit-identical across
#      modes with the batch arm's wall-clock speedup and element
#      throughput above conservative flavour-dependent floors;
#      elem_ops_per_sec is additionally gated run-over-run against the
#      lowest same-flavour record (release baseline committed as
#      BENCH_kernels.json, which records the >=10x 10-cube trajectory
#      measured on a quiet host — the CI floor is deliberately lower
#      because wall-clock ratios on shared runners are noisy)
#  10. parallel engine scaling trajectory: bench_parallel_scaling sweeps
#      the cube sizes for the flavour (release 6,10; sanitized 4,6;
#      FPST_FULL_SWEEP=1 extends release to the paper's full 12-cube) and
#      gates the distance-aware scheduler's events/sec-per-core against
#      the lowest same-flavour record (release baseline committed as
#      BENCH_parallel.json, 30% slack for shared-runner noise). The stage
#      then runs the bench's --verify mode as a hard determinism gate:
#      cross-thread perf dumps at 1/2/4 workers must be byte-identical
#      and the sharded engine must reach the serial engine's simulated
#      time exactly
#  11. clang-tidy over all first-party translation units (skipped when the
#      toolchain image has no clang-tidy); src/check findings are blocking
#
# A per-stage wall-clock summary table is printed on exit (pass or fail).
#
# usage: ./ci.sh [options] [build-dir]        (default build dir: build-ci)
#   --stage N[,M...]  run only the listed stages (default: all). Stages
#                     after 1 assume the build dir is already built.
#   --list-stages     print the stage table and exit
#   --sanitize MODE   sanitizer flavour for the stage-1 build: `none`,
#                     `address,undefined` (default) or `thread`
#   --threads LIST    comma list of worker-thread counts for the
#                     determinism sweeps in stages 4 and 5 and the
#                     stage-10 scaling sweep (default 1,2,4)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
build_dir=
stages=
sanitize="address,undefined"
threads_list="1,2,4"

list_stages() {
  cat <<'EOF'
ci.sh stages:
  1  build (-Werror, sanitizer flavour) + tier-1 ctest suite
  2  tcheck: shipped examples verify clean
  3  tcheck: corpus of broken programs all flagged
  4  tperf: traced_saxpy -> ttrace report -> MFLOPS cross-check,
     E9 ablation flagged, --threads determinism sweep
  5  tscope: all-to-all determinism, e-cube routing invariants,
     --threads determinism sweep
  6  tcheck --predict: static cost/volume prediction vs measurement
  7  bench_simcore throughput gate
  8  bench_serve storm: completion/hit-rate/cache-speedup/jobs-per-sec
     gates + p99 SLO gate + tmon span/metrics determinism gate
  9  vpu batch arm: cross-validation fuzz + batch-sweep equivalence/speed gates
 10  bench_parallel_scaling: events/sec-per-core trajectory gate +
     cross-thread determinism verify (FPST_FULL_SWEEP=1 -> 12-cube)
 11  clang-tidy (src/check findings blocking)
EOF
}

while [ $# -gt 0 ]; do
  case $1 in
    --stage)
      [ $# -ge 2 ] || { echo "ci: --stage needs an argument" >&2; exit 2; }
      stages=$2; shift 2 ;;
    --stage=*) stages=${1#--stage=}; shift ;;
    --list-stages) list_stages; exit 0 ;;
    --sanitize)
      [ $# -ge 2 ] || { echo "ci: --sanitize needs an argument" >&2; exit 2; }
      sanitize=$2; shift 2 ;;
    --sanitize=*) sanitize=${1#--sanitize=}; shift ;;
    --threads)
      [ $# -ge 2 ] || { echo "ci: --threads needs an argument" >&2; exit 2; }
      threads_list=$2; shift 2 ;;
    --threads=*) threads_list=${1#--threads=}; shift ;;
    -h|--help)
      sed -n '/^# usage:/,/^set -eu/p' "$0" | sed '$d' | sed 's/^# \{0,1\}//'
      exit 0 ;;
    -*) echo "ci: unknown option $1 (try --list-stages)" >&2; exit 2 ;;
    *) build_dir=$1; shift ;;
  esac
done
build_dir=${build_dir:-"$repo_root/build-ci"}
[ "$sanitize" = "none" ] && sanitize=""

# want_stage N: true when stage N was selected (all stages by default).
want_stage() {
  [ -n "$stages" ] || return 0
  _found=1
  _old_ifs=$IFS; IFS=,
  for _s in $stages; do
    [ "$_s" = "$1" ] && _found=0
  done
  IFS=$_old_ifs
  return $_found
}

stages_ran=""
stage_times=""
stage_cur=""
stage_start=0

# Close out the wall-clock timer for the stage currently in flight (if any)
# and append "<stage>:<seconds>" to the summary accumulator. POSIX sh has no
# arrays, so the table lives in one space-separated string.
end_stage_timer() {
  [ -n "$stage_cur" ] || return 0
  stage_times="$stage_times${stage_times:+ }$stage_cur:$(($(date +%s) - stage_start))"
  stage_cur=""
}

# Printed from the EXIT trap so the table shows up on failures too — the
# stage that blew the gate is the one whose duration you want to see.
print_stage_times() {
  end_stage_timer
  [ -n "$stage_times" ] || return 0
  echo "ci: per-stage wall clock:"
  total=0
  for _entry in $stage_times; do
    printf '  stage %-2s %5ss\n' "${_entry%%:*}" "${_entry#*:}"
    total=$((total + ${_entry#*:}))
  done
  printf '  total    %5ss\n' "$total"
}
trap print_stage_times EXIT

begin_stage() {
  end_stage_timer
  stage_cur=$1
  stage_start=$(date +%s)
  stages_ran="$stages_ran${stages_ran:+,}$1"
  echo "== [$1/11] $2 =="
}

# determinism_sweep <example-bin> <serial-dump> <out-prefix> [extra args...]:
# re-run a traced example on the parallel engine at each --threads count.
# `--threads 1` takes the pure serial code path and must reproduce the
# serial dump byte for byte; every multi-threaded run simulates the same
# fixed shard partition and so must be byte-identical across thread counts.
determinism_sweep() {
  _bin=$1; _serial=$2; _prefix=$3; shift 3
  _prev=""
  _old_ifs=$IFS; IFS=,
  for _t in $threads_list; do
    IFS=$_old_ifs
    _out="$_prefix.t$_t.json"
    "$_bin" --threads "$_t" "$_out" "$@" > /dev/null
    if [ "$_t" = 1 ]; then
      cmp -s "$_serial" "$_out" || {
        echo "ci: --threads 1 dump differs from the serial engine:" \
             "$_serial vs $_out" >&2
        exit 1
      }
      echo "ci: $(basename "$_bin") --threads 1 == serial (byte-identical)"
    elif [ -n "$_prev" ]; then
      cmp -s "$_prev" "$_out" || {
        echo "ci: parallel dumps differ across thread counts:" \
             "$_prev vs $_out" >&2
        exit 1
      }
      echo "ci: $(basename "$_bin") dumps byte-identical:" \
           "$(basename "$_prev") == $(basename "$_out")"
      _prev=$_out
    else
      _prev=$_out
    fi
    _old_ifs=$IFS; IFS=,
  done
  IFS=$_old_ifs
}

if want_stage 1; then
  begin_stage 1 "build (-Werror, FPST_SANITIZE='$sanitize') + tier-1 tests"
  cmake -B "$build_dir" -S "$repo_root" \
        -DFPST_WERROR=ON -DFPST_SANITIZE="$sanitize"
  cmake --build "$build_dir" -j
  (cd "$build_dir" && ctest -L tier1 --output-on-failure -j)
fi

tcheck="$build_dir/tools/tcheck"

if want_stage 2; then
  begin_stage 2 "tcheck: shipped examples must verify clean"
  "$tcheck" "$repo_root"/examples/tisa/*.tisa "$repo_root"/examples/comm/*.comm
fi

if want_stage 3; then
  begin_stage 3 "tcheck: corpus of broken programs must all be flagged"
  bad=0
  found=0
  for f in "$repo_root"/tests/corpus/*; do
    # An unmatched glob passes through literally; a vanished corpus must
    # fail the stage, not silently verify zero programs.
    [ -e "$f" ] || continue
    found=$((found + 1))
    if "$tcheck" --werror -q "$f"; then
      echo "ci: NOT FLAGGED (corpus program slipped through): $f" >&2
      bad=1
    fi
  done
  if [ "$found" -eq 0 ]; then
    echo "ci: corpus glob matched no files under tests/corpus/ —" \
         "the stage would vacuously pass" >&2
    exit 1
  fi
  [ "$bad" -eq 0 ] || exit 1
  echo "ci: $found corpus programs all flagged"
fi

if want_stage 4; then
  begin_stage 4 "tperf: trace -> ttrace report -> cross-check"
  ttrace="$build_dir/tools/ttrace"
  dump="$build_dir/ci_traced_saxpy.json"
  "$build_dir/examples/traced_saxpy" "$dump"
  # A balanced workload: ttrace must accept it even with violations fatal.
  "$ttrace" --fail-on-violation "$dump"
  # Cross-check the two independent MFLOPS measurements: ttrace's vpu-active
  # rate (flops / vpu busy from the counters) vs bench_fig1_node's directly
  # timed 128-element SAXPY row. They must agree within 1%.
  active=$("$ttrace" --metric active_mflops "$dump")
  fig1=$("$build_dir/bench/bench_fig1_node" |
         awk '$1 == "128" {print $NF; exit}')
  echo "ci: ttrace active_mflops=$active bench_fig1_node(128)=$fig1"
  awk -v a="$active" -v b="$fig1" 'BEGIN {
    d = a - b; if (d < 0) d = -d;
    if (b <= 0 || d / b > 0.01) { exit 1 }
  }' || {
    echo "ci: MFLOPS mismatch: ttrace $active vs bench_fig1_node $fig1" >&2
    exit 1
  }
  # The no-overlap ablation (2 flops per gathered element) must be flagged.
  "$build_dir/bench/bench_overlap" --json "$build_dir/ci_e9.json" > /dev/null
  if "$ttrace" --fail-on-violation "$build_dir/ci_e9.json" > /dev/null; then
    echo "ci: ttrace missed the gather-balance violation in the E9 dump" >&2
    exit 1
  fi
  "$ttrace" "$build_dir/ci_e9.json" | grep -q VIOLATION || {
    echo "ci: ttrace report does not mark the E9 ablation as VIOLATION" >&2
    exit 1
  }
  # Parallel engine determinism on the same workload.
  determinism_sweep "$build_dir/examples/traced_saxpy" "$dump" \
                    "$build_dir/ci_traced_saxpy"
fi

if want_stage 5; then
  begin_stage 5 "tscope: 16-node all-to-all message tracing"
  tscope="$build_dir/tools/tscope"
  a2a_a="$build_dir/ci_alltoall_a.json"
  a2a_b="$build_dir/ci_alltoall_b.json"
  "$build_dir/examples/alltoall_traced" "$a2a_a" 4 > /dev/null
  "$build_dir/examples/alltoall_traced" "$a2a_b" 4 > /dev/null
  # Determinism: identical runs must serialise byte-identically, and the
  # stitched analyses must match byte for byte too.
  cmp -s "$a2a_a" "$a2a_b" || {
    echo "ci: traced all-to-all dumps differ between identical runs" >&2
    exit 1
  }
  "$tscope" --json "$a2a_a" > "$build_dir/ci_alltoall_a.msg.json"
  "$tscope" --json "$a2a_b" > "$build_dir/ci_alltoall_b.msg.json"
  cmp -s "$build_dir/ci_alltoall_a.msg.json" \
         "$build_dir/ci_alltoall_b.msg.json" || {
    echo "ci: tscope analyses differ between identical runs" >&2
    exit 1
  }
  # Routing invariants, hard error on any deviation: every flight within the
  # log2 n hop bound on minimal routes, and the observed per-edge crossings
  # exactly equal to net/hypercube's static e-cube congestion prediction.
  "$tscope" --check-ecube "$a2a_a"
  echo "ci: tscope p50_us=$("$tscope" --metric p50_us "$a2a_a")" \
       "p99_us=$("$tscope" --metric p99_us "$a2a_a")" \
       "critical_path_frac=$("$tscope" --metric critical_path_frac "$a2a_a")"
  # Parallel engine determinism sweep; the sharded engine's dump must also
  # satisfy the routing invariants.
  determinism_sweep "$build_dir/examples/alltoall_traced" "$a2a_a" \
                    "$build_dir/ci_alltoall" 4
  for f in "$build_dir"/ci_alltoall.t*.json; do
    [ -e "$f" ] || continue
    "$tscope" --check-ecube "$f"
  done
fi

if want_stage 6; then
  begin_stage 6 "tcheck --predict: static prediction vs measured run"
  # Single node: assemble-and-run the shipped vform SAXPY under tperf, then
  # require the static prediction to agree — instruction count exactly,
  # elapsed time within the documented 2% tolerance (the match is bit-exact
  # today; the tolerance only covers deliberate future timing-model drift).
  saxpy_dump="$build_dir/ci_predict_saxpy.json"
  "$build_dir/examples/tisa_traced" \
      "$repo_root/examples/tisa/vform_saxpy.tisa" "$saxpy_dump" > /dev/null
  "$tcheck" --predict "$repo_root/examples/tisa/vform_saxpy.tisa" \
      --against "$saxpy_dump" --tolerance 0.02
  # Network: the all-to-all .comm twin's static per-edge volume must match
  # the traced 16-node run *exactly* — 240 messages, 512 hops, every one of
  # the 32 cube edges crossed 16 times. Any deviation is a hard failure.
  a2a_dump="$build_dir/ci_predict_alltoall.json"
  "$build_dir/examples/alltoall_traced" "$a2a_dump" 4 > /dev/null
  "$tcheck" --predict "$repo_root/examples/comm/alltoall.comm" \
      --against "$a2a_dump"
fi

if want_stage 7; then
  begin_stage 7 "bench_simcore: DES event-throughput trajectory"
  simcore="$build_dir/bench/bench_simcore"
  # Fresh measurement. The dump is flavour-tagged (release vs sanitized), so
  # the gate only ever compares consecutive runs of the same flavour: a
  # sanitized CI run must not be judged against the committed release
  # baseline (BENCH_simcore.json at the repo root, regenerated per PR).
  simcore_fresh="$build_dir/BENCH_simcore.json"
  simcore_prev="$build_dir/BENCH_simcore.prev.json"
  "$simcore" --json "$simcore_fresh" > /dev/null
  # The bench binary owns the dump schema, so it does the extraction too —
  # the old sed scraping broke as soon as the JSON grew nested keys.
  fresh_eps=$("$simcore" --metric events_per_sec "$simcore_fresh")
  fresh_flavour=$("$simcore" --metric build "$simcore_fresh")
  echo "ci: bench_simcore events_per_sec=$fresh_eps build=$fresh_flavour"
  # Gate against the *lowest* flavour-matching record: single-core hosts show
  # upward noise spikes (a lucky steal-free run), and judging the next run
  # against a spike would fail spuriously. A real regression still undercuts
  # every record.
  gate_eps=""
  for record in "$simcore_prev" "$repo_root/BENCH_simcore.json"; do
    [ -f "$record" ] || continue
    rec_flavour=$("$simcore" --metric build "$record")
    [ "$fresh_flavour" = "$rec_flavour" ] || continue
    rec_eps=$("$simcore" --metric events_per_sec "$record")
    echo "ci: recorded $record events_per_sec=$rec_eps"
    if [ -z "$gate_eps" ] ||
       awk -v a="$rec_eps" -v b="$gate_eps" 'BEGIN { exit !(a < b) }'; then
      gate_eps="$rec_eps"
    fi
  done
  if [ -n "$gate_eps" ]; then
    awk -v f="$fresh_eps" -v b="$gate_eps" 'BEGIN { exit !(f >= 0.9 * b) }' || {
      echo "ci: bench_simcore regressed >10%: $fresh_eps vs recorded $gate_eps" >&2
      exit 1
    }
  fi
  cp "$simcore_fresh" "$simcore_prev"
fi

if want_stage 8; then
  begin_stage 8 "bench_serve: job-service storm gates"
  bserve="$build_dir/bench/bench_serve"
  serve_fresh="$build_dir/BENCH_serve.json"
  serve_prev="$build_dir/BENCH_serve.prev.json"
  "$bserve" --json "$serve_fresh" > /dev/null
  completion=$("$bserve" --metric completion_frac "$serve_fresh")
  hit_rate=$("$bserve" --metric hit_rate "$serve_fresh")
  speedup=$("$bserve" --metric cache_speedup "$serve_fresh")
  identical=$("$bserve" --metric byte_identical "$serve_fresh")
  fresh_jps=$("$bserve" --metric jobs_per_sec "$serve_fresh")
  serve_flavour=$("$bserve" --metric build "$serve_fresh")
  echo "ci: bench_serve completion=$completion hit_rate=$hit_rate" \
       "cache_speedup=$speedup byte_identical=$identical" \
       "jobs_per_sec=$fresh_jps build=$serve_flavour"
  # Correctness gates — flavour-independent.
  [ "$identical" = "true" ] || {
    echo "ci: cached results were not byte-identical to simulation" >&2
    exit 1
  }
  awk -v c="$completion" 'BEGIN { exit !(c >= 0.99) }' || {
    echo "ci: storm completion $completion below 0.99" >&2
    exit 1
  }
  awk -v h="$hit_rate" 'BEGIN { exit !(h >= 0.30) }' || {
    echo "ci: mixed-storm cache hit rate $hit_rate below 0.30" >&2
    exit 1
  }
  # A cache hit skips simulation entirely, so the duplicate-heavy storm
  # must beat its cache-disabled twin by >= 5x on every flavour.
  awk -v s="$speedup" 'BEGIN { exit !(s >= 5.0) }' || {
    echo "ci: cache speedup ${speedup}x below the 5x gate" >&2
    exit 1
  }
  # Throughput trajectory, flavour-tagged run-over-run like stage 7. The
  # tolerance is wider (30%): service-level jobs/sec rides on OS thread
  # scheduling, not just the event loop, and single-core hosts are noisy.
  gate_jps=""
  for record in "$serve_prev" "$repo_root/BENCH_serve.json"; do
    [ -f "$record" ] || continue
    rec_flavour=$("$bserve" --metric build "$record")
    [ "$serve_flavour" = "$rec_flavour" ] || continue
    rec_jps=$("$bserve" --metric jobs_per_sec "$record")
    echo "ci: recorded $record jobs_per_sec=$rec_jps"
    if [ -z "$gate_jps" ] ||
       awk -v a="$rec_jps" -v b="$gate_jps" 'BEGIN { exit !(a < b) }'; then
      gate_jps="$rec_jps"
    fi
  done
  if [ -n "$gate_jps" ]; then
    awk -v f="$fresh_jps" -v b="$gate_jps" 'BEGIN { exit !(f >= 0.7 * b) }' || {
      echo "ci: bench_serve regressed >30%: $fresh_jps vs recorded $gate_jps" >&2
      exit 1
    }
  fi
  # SLO gate: mixed-storm p99 submit->complete latency, flavour-tagged
  # run-over-run like jobs/sec but with 4x headroom — tail latency rides
  # on scheduler jitter far more than throughput does, and a genuine SLO
  # regression (lost cache, serialized workers) shows up as 10x+, not 2x.
  # Records predating the p99 schema are skipped, not fatal.
  fresh_p50=$("$bserve" --metric p50_ms "$serve_fresh")
  fresh_p90=$("$bserve" --metric p90_ms "$serve_fresh")
  fresh_p99=$("$bserve" --metric p99_ms "$serve_fresh")
  echo "ci: bench_serve latency p50_ms=$fresh_p50 p90_ms=$fresh_p90" \
       "p99_ms=$fresh_p99"
  gate_p99=""
  for record in "$serve_prev" "$repo_root/BENCH_serve.json"; do
    [ -f "$record" ] || continue
    rec_flavour=$("$bserve" --metric build "$record")
    [ "$serve_flavour" = "$rec_flavour" ] || continue
    rec_p99=$("$bserve" --metric p99_ms "$record" 2>/dev/null) || continue
    echo "ci: recorded $record p99_ms=$rec_p99"
    if [ -z "$gate_p99" ] ||
       awk -v a="$rec_p99" -v b="$gate_p99" 'BEGIN { exit !(a < b) }'; then
      gate_p99="$rec_p99"
    fi
  done
  if [ -n "$gate_p99" ]; then
    awk -v f="$fresh_p99" -v b="$gate_p99" 'BEGIN { exit !(f <= 4.0 * b) }' || {
      echo "ci: mixed-storm p99 ${fresh_p99}ms blew the SLO gate" \
           "(4x lowest recorded ${gate_p99}ms)" >&2
      exit 1
    }
  fi
  cp "$serve_fresh" "$serve_prev"
  # Observability determinism: the tmon selfdump harness submits a fixed
  # job sequence through an in-process service; everything outside the
  # `meta` blocks is a pure function of that sequence. Two runs, strip
  # meta, byte-compare — guards the body/meta split in src/serve/tmon.cpp.
  tmon="$build_dir/tools/tmon"
  for run in a b; do
    "$tmon" selfdump --spans "$build_dir/ci_tmon_spans.$run.json" \
            --metrics "$build_dir/ci_tmon_metrics.$run.json" > /dev/null
  done
  for kind in spans metrics; do
    for run in a b; do
      "$tmon" --strip-meta "$build_dir/ci_tmon_$kind.$run.json" \
              > "$build_dir/ci_tmon_$kind.$run.body.json"
    done
    cmp -s "$build_dir/ci_tmon_$kind.a.body.json" \
           "$build_dir/ci_tmon_$kind.b.body.json" || {
      echo "ci: tmon $kind dumps differ across identical runs" \
           "(meta stripped)" >&2
      exit 1
    }
  done
  echo "ci: tmon span/metrics dumps byte-identical across runs (meta stripped)"
fi

if want_stage 9; then
  begin_stage 9 "vpu batch arm: cross-validation fuzz + sweep gates"
  # Randomized cross-validation of the host-FP batch arm against the
  # softfloat oracle: all elementwise forms, f32 and f64, operand classes
  # weighted toward specials (NaN/inf/denormal/flush boundaries). The seed
  # is fixed in the test, so a failure is reproducible; FPST_FUZZ_CASES
  # widens the sweep locally (default here: 10k cases).
  FPST_FUZZ_CASES="${FPST_FUZZ_CASES:-10000}" \
    "$build_dir/tests/vpu_batch_test" --gtest_filter='VpuBatchFuzz.*'
  bkern="$build_dir/bench/bench_kernels_scaling"
  kern_fresh="$build_dir/BENCH_kernels.json"
  kern_prev="$build_dir/BENCH_kernels.prev.json"
  # Sanitized flavours run a smaller sweep — the gate there is equivalence,
  # not speed (sanitizer softfloat runs are ~10x slower and would dominate
  # CI wall time at the 10-cube point).
  if [ -n "$sanitize" ]; then
    "$bkern" --batch-sweep --dims 4,6 --rounds 4 --repeats 2 \
             --json "$kern_fresh" > /dev/null
  else
    "$bkern" --batch-sweep --dims 6,10 --rounds 8 --repeats 5 \
             --json "$kern_fresh" > /dev/null
  fi
  kern_identical=$("$bkern" --metric bit_identical "$kern_fresh")
  kern_speedup=$("$bkern" --metric batch_speedup "$kern_fresh")
  kern_eps=$("$bkern" --metric elem_ops_per_sec "$kern_fresh")
  kern_flavour=$("$bkern" --metric build "$kern_fresh")
  echo "ci: batch sweep bit_identical=$kern_identical" \
       "speedup=${kern_speedup}x elem_ops_per_sec=$kern_eps" \
       "build=$kern_flavour"
  # Equivalence is the hard gate on every flavour: the batch arm must be
  # bit-for-bit the machine (results, simulated time, event counts).
  [ "$kern_identical" = "true" ] || {
    echo "ci: batch arm diverged from the softfloat oracle in the sweep" >&2
    exit 1
  }
  # Speed floors are deliberately conservative: the committed release
  # baseline records >=10x at the 10-cube point, but shared runners see
  # wall-clock noise that a ratio gate at 10 would trip on. A real
  # regression (vectorisation lost, clean pass disabled) lands near 1x and
  # still fails these.
  if [ -z "$sanitize" ]; then
    awk -v s="$kern_speedup" 'BEGIN { exit !(s >= 5.0) }' || {
      echo "ci: batch-arm speedup ${kern_speedup}x below the 5x release floor" >&2
      exit 1
    }
  else
    awk -v s="$kern_speedup" 'BEGIN { exit !(s >= 1.5) }' || {
      echo "ci: batch-arm speedup ${kern_speedup}x below the 1.5x sanitized floor" >&2
      exit 1
    }
  fi
  # Throughput trajectory, flavour-tagged run-over-run like stages 7/8,
  # gated against the lowest same-flavour record with the same 30% slack
  # as the serve storm (wall-clock benches on shared hosts).
  gate_eps=""
  for record in "$kern_prev" "$repo_root/BENCH_kernels.json"; do
    [ -f "$record" ] || continue
    rec_flavour=$("$bkern" --metric build "$record")
    [ "$kern_flavour" = "$rec_flavour" ] || continue
    rec_eps=$("$bkern" --metric elem_ops_per_sec "$record")
    echo "ci: recorded $record elem_ops_per_sec=$rec_eps"
    if [ -z "$gate_eps" ] ||
       awk -v a="$rec_eps" -v b="$gate_eps" 'BEGIN { exit !(a < b) }'; then
      gate_eps="$rec_eps"
    fi
  done
  if [ -n "$gate_eps" ]; then
    awk -v f="$kern_eps" -v b="$gate_eps" 'BEGIN { exit !(f >= 0.7 * b) }' || {
      echo "ci: batch-arm elem_ops_per_sec regressed >30%:" \
           "$kern_eps vs recorded $gate_eps" >&2
      exit 1
    }
  fi
  cp "$kern_fresh" "$kern_prev"
fi

if want_stage 10; then
  begin_stage 10 "bench_parallel_scaling: scaling trajectory + determinism"
  bpar="$build_dir/bench/bench_parallel_scaling"
  par_fresh="$build_dir/BENCH_parallel.json"
  par_prev="$build_dir/BENCH_parallel.prev.json"
  # Flavour-scaled sweep: sanitized engines run ~10x slower, so they sweep
  # smaller cubes (the gate there is the trajectory of the *sanitized*
  # flavour, never compared against release records). FPST_FULL_SWEEP=1 —
  # set by the nightly job — extends the release sweep to the paper's full
  # 12-cube and verifies determinism at that size.
  if [ -n "$sanitize" ]; then
    par_dims="4,6"; par_verify=6
  elif [ -n "${FPST_FULL_SWEEP:-}" ]; then
    par_dims="6,10,12"; par_verify=12
  else
    par_dims="6,10"; par_verify=10
  fi
  "$bpar" --dims "$par_dims" --threads "$threads_list" --json "$par_fresh"
  par_epspc=$("$bpar" --metric events_per_sec_per_core "$par_fresh")
  par_ab=$("$bpar" --metric distance_aware_speedup "$par_fresh")
  par_flavour=$("$bpar" --metric build "$par_fresh")
  echo "ci: bench_parallel_scaling gate events_per_sec_per_core=$par_epspc" \
       "distance_aware_speedup=${par_ab}x build=$par_flavour"
  # Scaling trajectory: the distance-aware scheduler's events/sec-per-core
  # at the gate point (largest swept cube <= 10-cube, max worker count) must
  # not undercut the lowest same-flavour record by more than 30% — the same
  # lowest-record pattern as stages 7-9, with the serve-storm slack because
  # multi-thread wall clock on shared runners is the noisiest metric here.
  gate_epspc=""
  for record in "$par_prev" "$repo_root/BENCH_parallel.json"; do
    [ -f "$record" ] || continue
    rec_flavour=$("$bpar" --metric build "$record")
    [ "$par_flavour" = "$rec_flavour" ] || continue
    rec_epspc=$("$bpar" --metric events_per_sec_per_core "$record")
    echo "ci: recorded $record events_per_sec_per_core=$rec_epspc"
    if [ -z "$gate_epspc" ] ||
       awk -v a="$rec_epspc" -v b="$gate_epspc" 'BEGIN { exit !(a < b) }'; then
      gate_epspc="$rec_epspc"
    fi
  done
  if [ -n "$gate_epspc" ]; then
    awk -v f="$par_epspc" -v b="$gate_epspc" 'BEGIN { exit !(f >= 0.7 * b) }' || {
      echo "ci: parallel engine regressed >30%: events/sec-per-core" \
           "$par_epspc vs recorded $gate_epspc" >&2
      exit 1
    }
  fi
  cp "$par_fresh" "$par_prev"
  # Hard determinism gate, no tolerance: the bench's --verify mode re-runs
  # the sweep workload at 1/2/4 worker threads and byte-compares the perf
  # dumps, and requires the sharded engine (any thread count) to reach the
  # serial engine's simulated time exactly. A non-zero exit fails the stage.
  "$bpar" --verify "$par_verify" \
          --verify-out "$build_dir/ci_parallel_verify.json"
fi

if want_stage 11; then
  begin_stage 11 "clang-tidy"
  "$repo_root"/tools/run-tidy.sh "$build_dir"
fi

if [ -z "$stages_ran" ]; then
  echo "ci: no stages selected (have: --stage $stages)" >&2
  exit 2
fi
echo "ci: all stages passed (ran: $stages_ran)"
