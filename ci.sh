#!/usr/bin/env sh
# CI gate for the FPS T Series simulator.
#
# Stages:
#   1. warnings-as-errors build + full tier-1 ctest under ASan+UBSan
#   2. tcheck static verification: every shipped example must be clean
#   3. tcheck over the corpus of deliberately-broken programs: every one
#      must be flagged (with --werror, so warning-class defects count)
#   4. tperf pipeline: the traced 2-cube SAXPY example writes a dump,
#      ttrace must load it cleanly (no balance violation), its vpu-active
#      MFLOPS must match bench_fig1_node's 128-element SAXPY rate within
#      1%, and bench_overlap's no-overlap ablation dump must be flagged
#      as a balance VIOLATION
#   5. clang-tidy over all first-party translation units (skipped when the
#      toolchain image has no clang-tidy)
#
#   usage: ./ci.sh [build-dir]      (default: build-ci)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
build_dir=${1:-"$repo_root/build-ci"}

echo "== [1/5] build (-Werror, ASan+UBSan) and tier-1 tests =="
cmake -B "$build_dir" -S "$repo_root" \
      -DFPST_WERROR=ON -DFPST_SANITIZE=address,undefined
cmake --build "$build_dir" -j
(cd "$build_dir" && ctest --output-on-failure -j)

tcheck="$build_dir/tools/tcheck"

echo "== [2/5] tcheck: shipped examples must verify clean =="
"$tcheck" "$repo_root"/examples/tisa/*.tisa "$repo_root"/examples/comm/*.comm

echo "== [3/5] tcheck: corpus of broken programs must all be flagged =="
bad=0
for f in "$repo_root"/tests/corpus/*; do
  if "$tcheck" --werror -q "$f"; then
    echo "ci: NOT FLAGGED (corpus program slipped through): $f" >&2
    bad=1
  fi
done
[ "$bad" -eq 0 ] || exit 1

echo "== [4/5] tperf: trace -> ttrace report -> cross-check =="
ttrace="$build_dir/tools/ttrace"
dump="$build_dir/ci_traced_saxpy.json"
"$build_dir/examples/traced_saxpy" "$dump"
# A balanced workload: ttrace must accept it even with violations fatal.
"$ttrace" --fail-on-violation "$dump"
# Cross-check the two independent MFLOPS measurements: ttrace's vpu-active
# rate (flops / vpu busy from the counters) vs bench_fig1_node's directly
# timed 128-element SAXPY row. They must agree within 1%.
active=$("$ttrace" --metric active_mflops "$dump")
fig1=$("$build_dir/bench/bench_fig1_node" |
       awk '$1 == "128" {print $NF; exit}')
echo "ci: ttrace active_mflops=$active bench_fig1_node(128)=$fig1"
awk -v a="$active" -v b="$fig1" 'BEGIN {
  d = a - b; if (d < 0) d = -d;
  if (b <= 0 || d / b > 0.01) { exit 1 }
}' || {
  echo "ci: MFLOPS mismatch: ttrace $active vs bench_fig1_node $fig1" >&2
  exit 1
}
# The no-overlap ablation (2 flops per gathered element) must be flagged.
"$build_dir/bench/bench_overlap" --json "$build_dir/ci_e9.json" > /dev/null
if "$ttrace" --fail-on-violation "$build_dir/ci_e9.json" > /dev/null; then
  echo "ci: ttrace missed the gather-balance violation in the E9 dump" >&2
  exit 1
fi
"$ttrace" "$build_dir/ci_e9.json" | grep -q VIOLATION || {
  echo "ci: ttrace report does not mark the E9 ablation as VIOLATION" >&2
  exit 1
}

echo "== [5/5] clang-tidy =="
"$repo_root"/tools/run-tidy.sh "$build_dir"

echo "ci: all stages passed"
