#!/usr/bin/env sh
# CI gate for the FPS T Series simulator.
#
# Stages:
#   1. warnings-as-errors build + full tier-1 ctest under ASan+UBSan
#   2. tcheck static verification: every shipped example must be clean
#   3. tcheck over the corpus of deliberately-broken programs: every one
#      must be flagged (with --werror, so warning-class defects count)
#   4. clang-tidy over all first-party translation units (skipped when the
#      toolchain image has no clang-tidy)
#
#   usage: ./ci.sh [build-dir]      (default: build-ci)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
build_dir=${1:-"$repo_root/build-ci"}

echo "== [1/4] build (-Werror, ASan+UBSan) and tier-1 tests =="
cmake -B "$build_dir" -S "$repo_root" \
      -DFPST_WERROR=ON -DFPST_SANITIZE=address,undefined
cmake --build "$build_dir" -j
(cd "$build_dir" && ctest --output-on-failure -j)

tcheck="$build_dir/tools/tcheck"

echo "== [2/4] tcheck: shipped examples must verify clean =="
"$tcheck" "$repo_root"/examples/tisa/*.tisa "$repo_root"/examples/comm/*.comm

echo "== [3/4] tcheck: corpus of broken programs must all be flagged =="
bad=0
for f in "$repo_root"/tests/corpus/*; do
  if "$tcheck" --werror -q "$f"; then
    echo "ci: NOT FLAGGED (corpus program slipped through): $f" >&2
    bad=1
  fi
done
[ "$bad" -eq 0 ] || exit 1

echo "== [4/4] clang-tidy =="
"$repo_root"/tools/run-tidy.sh "$build_dir"

echo "ci: all stages passed"
