// tscope — message-flight analysis of a tperf dump (see src/perf/tscope.hpp
// for the event grammar the transport layers emit).
//
// Stitches per-hop timeline events into flight records and reports
// end-to-end latency percentiles, per-hop queueing vs wire time, the
// per-cube-edge congestion heatmap against net/hypercube's static e-cube
// prediction, and the critical path through the message-causality DAG.
//
// This tool sits above both libraries: perf computes the observed side
// (hops, popcount minima) and net computes the predicted side
// (ecube_edge_traffic); --check-ecube compares them.
//
// Exit codes: 0 report printed, 1 --check-ecube violation, 2 usage or
// unreadable dump.
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/hypercube.hpp"
#include "perf/chrome_trace.hpp"
#include "perf/tscope.hpp"
#include "tool_util.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: tscope [options] <dump.json>\n"
               "\n"
               "  (default)       full message report: counts, latency\n"
               "                  p50/p90/p99, queueing vs wire breakdown,\n"
               "                  critical path\n"
               "  --summary       per-node sent/received/forwarded table\n"
               "  --edges         per-edge crossings vs the static e-cube\n"
               "                  congestion prediction\n"
               "  --check-ecube   verify the routing invariants and exit 1\n"
               "                  on violation: max hops <= log2 n, every\n"
               "                  route minimal, observed edge crossings ==\n"
               "                  prediction, no dropped/incomplete flights\n"
               "  --json          machine-readable message report\n"
               "  --metric <m>    print one value: messages | max_hops |\n"
               "                  p50_us | p99_us | critical_path_frac\n"
               "  -h, --help      this text\n");
}

/// The static prediction for the dump's observed flows, as perf EdgeLoads.
std::vector<fpst::perf::EdgeLoad> predict(const fpst::perf::MessageReport& r) {
  fpst::net::Hypercube cube{r.meta.dimension};
  std::vector<std::pair<fpst::net::NodeId, fpst::net::NodeId>> flows;
  flows.reserve(r.flights.size());
  for (const fpst::perf::Flight& f : r.flights) {
    flows.emplace_back(f.src, f.dst);
  }
  std::vector<fpst::perf::EdgeLoad> out;
  for (const fpst::net::EdgeTraffic& e :
       fpst::net::ecube_edge_traffic(cube, flows)) {
    out.push_back(fpst::perf::EdgeLoad{e.a, e.b, e.crossings});
  }
  return out;
}

int check_ecube(const fpst::perf::MessageReport& r) {
  int failures = 0;
  if (r.spans_dropped > 0) {
    std::fprintf(stderr,
                 "tscope: FAIL %llu spans dropped — raise the timeline "
                 "capacity to trace this run\n",
                 static_cast<unsigned long long>(r.spans_dropped));
    ++failures;
  }
  if (r.incomplete > 0) {
    std::fprintf(stderr, "tscope: FAIL %llu incomplete flight record(s)\n",
                 static_cast<unsigned long long>(r.incomplete));
    ++failures;
  }
  if (r.max_hops > r.meta.dimension) {
    std::fprintf(stderr,
                 "tscope: FAIL max hops %d exceeds the cube diameter "
                 "log2 n = %d\n",
                 r.max_hops, r.meta.dimension);
    ++failures;
  }
  if (!r.ecube_minimal) {
    std::fprintf(stderr,
                 "tscope: FAIL a message took more hops than "
                 "popcount(src^dst)\n");
    ++failures;
  }
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> observed;
  for (const fpst::perf::EdgeLoad& e : r.edges) {
    observed[{e.a, e.b}] = e.crossings;
  }
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> predicted;
  for (const fpst::perf::EdgeLoad& e : predict(r)) {
    predicted[{e.a, e.b}] = e.crossings;
  }
  if (observed != predicted) {
    std::fprintf(stderr,
                 "tscope: FAIL observed edge crossings deviate from the "
                 "static e-cube prediction\n");
    ++failures;
  }
  if (failures == 0) {
    std::printf(
        "tscope: OK %zu messages, max hops %d <= log2 n = %d, all routes "
        "minimal, %zu edges match the e-cube prediction\n",
        r.flights.size(), r.max_hops, r.meta.dimension, r.edges.size());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool summary = false;
  bool edges = false;
  bool check = false;
  bool json = false;
  std::string metric;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    }
    if (arg == "--summary") {
      summary = true;
    } else if (arg == "--edges") {
      edges = true;
    } else if (arg == "--check-ecube") {
      check = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--metric") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tscope: --metric needs a name\n");
        return 2;
      }
      metric = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "tscope: unknown option %s\n", arg.c_str());
      usage(stderr);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "tscope: more than one dump file given\n");
      return 2;
    }
  }
  if (path.empty()) {
    usage(stderr);
    return 2;
  }

  const std::optional<fpst::perf::Dump> dump =
      fpst::tools::load_dump("tscope", path);
  if (!dump) {
    return 2;
  }
  const fpst::perf::MessageReport report = fpst::perf::analyze_messages(*dump);

  if (!metric.empty()) {
    fpst::tools::MetricTable table;
    table.add("messages",
              [&] { return fpst::tools::fmt_u64(report.flights.size()); });
    table.add("max_hops", [&] { return std::to_string(report.max_hops); });
    table.add("p50_us", [&] {
      return fpst::tools::fmt_f6(report.latency_ps.quantile(0.50) * 1e-6);
    });
    table.add("p99_us", [&] {
      return fpst::tools::fmt_f6(report.latency_ps.quantile(0.99) * 1e-6);
    });
    table.add("critical_path_frac",
              [&] { return fpst::tools::fmt_f6(report.critical.wall_fraction); });
    return table.print("tscope", metric);
  }
  if (check) {
    return check_ecube(report);
  }
  if (json) {
    std::printf("%s\n",
                fpst::perf::messages_to_json(report).dump(2).c_str());
    return 0;
  }
  if (summary) {
    std::fputs(fpst::perf::render_message_summary(report).c_str(), stdout);
    return 0;
  }
  if (edges) {
    std::fputs(fpst::perf::render_edges(report, predict(report)).c_str(),
               stdout);
    return 0;
  }
  std::fputs(fpst::perf::render_messages(report).c_str(), stdout);
  return 0;
}
