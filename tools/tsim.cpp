// tsim — the simulation job service CLI (README "Serving", DESIGN.md §7).
//
// One binary, both sides of the wire:
//
//   tsim run-server --socket PATH [--workers N] [--queue N] [--cache-mb N]
//                   [--no-cache]
//       host a serve::Service on a Unix stream socket
//   tsim submit     --socket PATH [spec flags] [--tenant T] [--wait]
//                   [--out FILE]
//       submit one job; --wait streams live status lines until completion
//   tsim status     --socket PATH --id N [--watch]
//   tsim stats      --socket PATH
//   tsim metrics    --socket PATH [--prom]
//       service metrics document (tmon shape: deterministic counters +
//       a wall-clock `meta` block); --prom renders Prometheus text
//   tsim trace      --socket PATH [--id N] [--chrome FILE]
//       per-request spans: one job's span with --id, all spans otherwise;
//       --chrome writes a Chrome trace_event file of every span
//   tsim shutdown   --socket PATH
//   tsim hash       [spec flags | --spec FILE]
//       print a spec's canonical serialization + content address (offline)
//   tsim selftest
//       end-to-end smoke: in-process server on a temp socket, submit the
//       same spec twice over the wire, assert the second is a cache hit
//       with byte-identical dump bytes; also drives the protocol error
//       paths (unknown op, truncated frame, oversized line, concurrent
//       watch + shutdown) (registered as a tier-1 ctest)
//
// Wire protocol: newline-delimited JSON, one request object per line, one
// response object per line — except `watch`, which streams a status line
// per poll tick and marks the last one with "final": true. Responses carry
// "ok": true, or "ok": false with "error" (human text) and "code" (the
// SpecError slug, or "bad-request" / "unknown-op" / "unknown-id" /
// "oversized-line"). The server caps a request line at 1 MiB: an
// over-long line gets the oversized-line error and the connection is
// closed, since line framing cannot resynchronise after an unbounded
// line.
//
// Spec flags (submit / hash): --program allreduce|saxpy|ring, --dim D,
// --threads N, --rounds R, --elems E, --seed S,
// --vpu-mode softfloat|batch|checked, or --spec FILE to load a JSON spec
// document through the strict parser (duplicate keys rejected).
//
// Exit codes: 0 success, 1 job failed / selftest assertion, 2 usage or
// I/O / protocol error.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "perf/json.hpp"
#include "serve/service.hpp"
#include "serve/tmon.hpp"
#include "tool_util.hpp"

namespace {

using fpst::perf::json::Value;
using namespace fpst::serve;

// ------------------------------------------------- line framing + sockets
//
// The framing and socket plumbing live in tool_util.hpp, shared with tmon
// (the observability console speaks the client side of this protocol).

using fpst::tools::LineReader;
using fpst::tools::send_all;

bool send_line(int fd, const Value& v) {
  return fpst::tools::send_json_line(fd, v);
}

/// Server-side request line cap. Legitimate requests are a few KiB (the
/// largest is a submit with an inline spec document); anything past 1 MiB
/// is a runaway or hostile client.
constexpr std::size_t kMaxRequestLine = std::size_t{1} << 20;

int connect_unix(const std::string& path, bool quiet = false) {
  return fpst::tools::connect_unix("tsim", path, quiet);
}

int listen_unix(const std::string& path) {
  return fpst::tools::listen_unix("tsim", path);
}

// ----------------------------------------------------------- JSON shaping

Value status_to_json(const JobStatus& st) {
  Value v = Value::object();
  v["id"] = Value::integer(static_cast<std::int64_t>(st.id));
  v["state"] = Value::string(to_string(st.state));
  v["cache_hit"] = Value::boolean(st.cache_hit);
  v["events"] = Value::integer(static_cast<std::int64_t>(st.events));
  v["tenant"] = Value::string(st.tenant);
  v["address"] = Value::string(st.address);
  if (!st.error.empty()) {
    v["error"] = Value::string(st.error);
  }
  v["queue_ms"] = Value::number(st.queue_ms);
  v["run_ms"] = Value::number(st.run_ms);
  v["result_bytes"] = Value::integer(
      static_cast<std::int64_t>(st.result ? st.result->size() : 0));
  return v;
}

Value stats_to_json(const ServiceStats& s) {
  Value v = Value::object();
  v["submitted"] = Value::integer(static_cast<std::int64_t>(s.submitted));
  v["completed"] = Value::integer(static_cast<std::int64_t>(s.completed));
  v["failed"] = Value::integer(static_cast<std::int64_t>(s.failed));
  v["cache_hits"] = Value::integer(static_cast<std::int64_t>(s.cache_hits));
  v["queue_depth"] = Value::integer(static_cast<std::int64_t>(s.queue_depth));
  v["workers"] = Value::integer(s.workers);
  Value c = Value::object();
  c["hits"] = Value::integer(static_cast<std::int64_t>(s.cache.hits));
  c["misses"] = Value::integer(static_cast<std::int64_t>(s.cache.misses));
  c["insertions"] =
      Value::integer(static_cast<std::int64_t>(s.cache.insertions));
  c["evictions"] = Value::integer(static_cast<std::int64_t>(s.cache.evictions));
  c["entries"] = Value::integer(static_cast<std::int64_t>(s.cache.entries));
  c["bytes"] = Value::integer(static_cast<std::int64_t>(s.cache.bytes));
  c["byte_budget"] =
      Value::integer(static_cast<std::int64_t>(s.cache.byte_budget));
  v["cache"] = std::move(c);
  return v;
}

Value error_reply(const std::string& code, const std::string& what) {
  Value v = Value::object();
  v["ok"] = Value::boolean(false);
  v["code"] = Value::string(code);
  v["error"] = Value::string(what);
  return v;
}

Value ok_reply() {
  Value v = Value::object();
  v["ok"] = Value::boolean(true);
  return v;
}

// ----------------------------------------------------------------- server

struct Server {
  Service service;
  std::atomic<bool> stop{false};
  int listen_fd = -1;
  /// Live connection fds, so shutdown can unblock threads parked in read().
  std::mutex conn_mu;
  std::vector<int> conn_fds;

  explicit Server(Service::Options opts) : service{std::move(opts)} {}

  void track(int fd) {
    std::lock_guard<std::mutex> lk{conn_mu};
    conn_fds.push_back(fd);
  }

  void untrack(int fd) {
    std::lock_guard<std::mutex> lk{conn_mu};
    std::erase(conn_fds, fd);
  }

  /// Half-close every live connection; blocked read()s return 0.
  void kick_connections() {
    std::lock_guard<std::mutex> lk{conn_mu};
    for (const int fd : conn_fds) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
};

/// One request line -> zero or more response lines on `fd`. Returns false
/// when the connection should close.
bool handle_request(Server& srv, int fd, const std::string& line) {
  Value req;
  try {
    req = Value::parse_strict(line);
  } catch (const std::exception& e) {
    return send_line(fd, error_reply("bad-request", e.what()));
  }
  if (!req.is_object() || req.find("op") == nullptr ||
      !req.find("op")->is_string()) {
    return send_line(fd, error_reply("bad-request", "missing string \"op\""));
  }
  const std::string& op = req.find("op")->as_string();

  const auto job_id = [&req]() -> std::optional<JobId> {
    const Value* id = req.find("id");
    if (id == nullptr || !id->is_number() || id->as_int() < 0) {
      return std::nullopt;
    }
    return static_cast<JobId>(id->as_int());
  };

  try {
    if (op == "ping") {
      return send_line(fd, ok_reply());
    }
    if (op == "submit") {
      const Value* spec_doc = req.find("spec");
      if (spec_doc == nullptr) {
        return send_line(fd, error_reply("bad-request", "missing \"spec\""));
      }
      const JobSpec spec = spec_from_json(*spec_doc);
      const Value* tenant = req.find("tenant");
      const std::string tenant_name =
          tenant != nullptr && tenant->is_string() ? tenant->as_string()
                                                   : "default";
      const JobId id = srv.service.submit(tenant_name, spec);
      Value v = ok_reply();
      v["id"] = Value::integer(static_cast<std::int64_t>(id));
      v["address"] = Value::string(content_address(spec));
      return send_line(fd, v);
    }
    if (op == "status" || op == "wait") {
      const std::optional<JobId> id = job_id();
      if (!id) {
        return send_line(fd, error_reply("bad-request", "missing \"id\""));
      }
      const JobStatus st =
          op == "wait" ? srv.service.wait(*id) : srv.service.status(*id);
      Value v = ok_reply();
      v["status"] = status_to_json(st);
      return send_line(fd, v);
    }
    if (op == "watch") {
      const std::optional<JobId> id = job_id();
      if (!id) {
        return send_line(fd, error_reply("bad-request", "missing \"id\""));
      }
      // Stream a status line per tick until the job settles; the final
      // line is tagged so the client knows the stream is over.
      for (;;) {
        const JobStatus st = srv.service.status(*id);
        const bool final_tick =
            st.state == JobState::kDone || st.state == JobState::kFailed;
        Value v = ok_reply();
        v["status"] = status_to_json(st);
        v["final"] = Value::boolean(final_tick);
        if (!send_line(fd, v) || final_tick) {
          return final_tick;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    if (op == "result") {
      const std::optional<JobId> id = job_id();
      if (!id) {
        return send_line(fd, error_reply("bad-request", "missing \"id\""));
      }
      const JobStatus st = srv.service.status(*id);
      if (st.state != JobState::kDone || !st.result) {
        return send_line(
            fd, error_reply("no-result",
                            "job " + std::to_string(*id) + " is " +
                                to_string(st.state) + ", no result bytes"));
      }
      Value v = ok_reply();
      v["dump"] = Value::string(*st.result);
      return send_line(fd, v);
    }
    if (op == "stats") {
      Value v = ok_reply();
      v["stats"] = stats_to_json(srv.service.stats());
      return send_line(fd, v);
    }
    if (op == "metrics") {
      const ServiceStats st = srv.service.stats();
      Value v = ok_reply();
      const Value* fmt = req.find("format");
      if (fmt != nullptr && fmt->is_string() && fmt->as_string() == "prom") {
        v["prom"] = Value::string(to_prometheus(st));
      } else {
        v["metrics"] = metrics_to_json(st);
      }
      return send_line(fd, v);
    }
    if (op == "trace") {
      Value v = ok_reply();
      const std::optional<JobId> id = job_id();
      const Value* chrome = req.find("chrome");
      if (id) {
        v["span"] = span_to_json(srv.service.span(*id));
      } else if (chrome != nullptr && chrome->as_bool()) {
        v["trace"] = spans_chrome_trace(srv.service.spans());
      } else {
        v["spans"] = spans_to_json(srv.service.spans());
      }
      return send_line(fd, v);
    }
    if (op == "shutdown") {
      srv.stop.store(true);
      // Wake the accept loop (half-close the listening socket) and every
      // connection thread parked in read() on an idle client.
      ::shutdown(srv.listen_fd, SHUT_RDWR);
      send_line(fd, ok_reply());
      srv.kick_connections();
      return false;
    }
    return send_line(fd, error_reply("unknown-op", "unknown op " + op));
  } catch (const SpecError& e) {
    return send_line(fd, error_reply(e.code(), e.what()));
  } catch (const std::out_of_range& e) {
    return send_line(fd, error_reply("unknown-id", e.what()));
  } catch (const std::exception& e) {
    return send_line(fd, error_reply("internal", e.what()));
  }
}

void serve_connection(Server& srv, int fd) {
  LineReader reader{fd, kMaxRequestLine};
  std::string line;
  while (!srv.stop.load() && reader.read_line(&line)) {
    if (line.empty()) {
      continue;
    }
    if (!handle_request(srv, fd, line)) {
      break;
    }
  }
  if (reader.oversized()) {
    send_line(fd, error_reply("oversized-line",
                              "request line exceeds " +
                                  std::to_string(kMaxRequestLine) +
                                  " bytes; closing connection"));
  }
  srv.untrack(fd);
  ::close(fd);
}

int run_server(const std::string& socket_path, Service::Options opts,
               std::atomic<bool>* ready) {
  // A client that disconnects mid-watch must not kill the server with
  // SIGPIPE; send_all sees the write error instead.
  std::signal(SIGPIPE, SIG_IGN);

  Server srv{opts};
  srv.listen_fd = listen_unix(socket_path);
  if (srv.listen_fd < 0) {
    return 2;
  }
  if (ready != nullptr) {
    ready->store(true);
  }

  std::vector<std::thread> conns;
  while (!srv.stop.load()) {
    const int fd = ::accept(srv.listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (srv.stop.load()) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      std::perror("tsim: accept");
      break;
    }
    srv.track(fd);
    conns.emplace_back([&srv, fd] { serve_connection(srv, fd); });
  }
  for (std::thread& t : conns) {
    t.join();
  }
  ::close(srv.listen_fd);
  ::unlink(socket_path.c_str());
  srv.service.shutdown();
  return 0;
}

// ----------------------------------------------------------------- client

/// A client connection: the fd plus its persistent line reader (a reply
/// must never be split across two throw-away readers' buffers).
class Conn {
 public:
  explicit Conn(int fd) : fd_{fd}, reader_{fd} {}
  ~Conn() { ::close(fd_); }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  int fd() const { return fd_; }
  bool read_line(std::string* out) { return reader_.read_line(out); }

 private:
  int fd_;
  LineReader reader_;
};

/// Send one request, read one reply. nullopt on transport failure (a
/// message was already printed).
std::optional<Value> roundtrip(Conn& conn, const Value& req) {
  if (!send_line(conn.fd(), req)) {
    std::fprintf(stderr, "tsim: connection lost while sending\n");
    return std::nullopt;
  }
  std::string line;
  if (!conn.read_line(&line)) {
    std::fprintf(stderr, "tsim: connection closed before reply\n");
    return std::nullopt;
  }
  try {
    return Value::parse(line);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tsim: malformed reply: %s\n", e.what());
    return std::nullopt;
  }
}

bool reply_ok(const Value& reply) {
  const Value* ok = reply.find("ok");
  return ok != nullptr && ok->as_bool();
}

void print_reply_error(const Value& reply) {
  const Value* code = reply.find("code");
  const Value* err = reply.find("error");
  std::fprintf(stderr, "tsim: %s: %s\n",
               code != nullptr && code->is_string() ? code->as_string().c_str()
                                                    : "error",
               err != nullptr && err->is_string() ? err->as_string().c_str()
                                                  : "(no detail)");
}

/// Watch a job to completion on an already-open connection, printing one
/// progress line per state change to stderr. Returns the final status
/// object, or nullopt on transport failure.
std::optional<Value> watch_job(Conn& conn, JobId id, bool verbose) {
  Value req = Value::object();
  req["op"] = Value::string("watch");
  req["id"] = Value::integer(static_cast<std::int64_t>(id));
  if (!send_line(conn.fd(), req)) {
    std::fprintf(stderr, "tsim: connection lost while sending\n");
    return std::nullopt;
  }
  std::string line;
  std::string last_printed;
  while (conn.read_line(&line)) {
    Value reply;
    try {
      reply = Value::parse(line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tsim: malformed watch line: %s\n", e.what());
      return std::nullopt;
    }
    if (!reply_ok(reply)) {
      print_reply_error(reply);
      return std::nullopt;
    }
    const Value* st = reply.find("status");
    const Value* final_tick = reply.find("final");
    if (st == nullptr || final_tick == nullptr) {
      std::fprintf(stderr, "tsim: malformed watch line\n");
      return std::nullopt;
    }
    if (verbose) {
      const std::string tick = st->find("state")->as_string() + " events=" +
                               std::to_string(st->find("events")->as_int());
      if (tick != last_printed) {
        std::fprintf(stderr, "tsim: %s\n", tick.c_str());
        last_printed = tick;
      }
    }
    if (final_tick->as_bool()) {
      return *st;
    }
  }
  std::fprintf(stderr, "tsim: connection closed mid-watch\n");
  return std::nullopt;
}

// ------------------------------------------------------------ CLI parsing

struct SpecFlags {
  JobSpec spec;
  std::string spec_file;  ///< --spec FILE overrides the field flags
};

/// Consume a spec flag at argv[i] (advancing i past its value). Returns
/// 1 when consumed, 0 when not a spec flag, -1 on a usage error.
int eat_spec_flag(int argc, char** argv, int& i, SpecFlags* out) {
  const std::string arg = argv[i];
  const auto need_value = [&]() -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "tsim: %s needs a value\n", arg.c_str());
      return nullptr;
    }
    return argv[++i];
  };
  const auto as_intval = [&](int* dst) {
    const char* v = need_value();
    if (v == nullptr) {
      return -1;
    }
    *dst = std::atoi(v);
    return 1;
  };
  if (arg == "--program") {
    const char* v = need_value();
    if (v == nullptr) {
      return -1;
    }
    out->spec.program = v;
    return 1;
  }
  if (arg == "--dim") {
    return as_intval(&out->spec.dimension);
  }
  if (arg == "--threads") {
    return as_intval(&out->spec.threads);
  }
  if (arg == "--rounds") {
    return as_intval(&out->spec.rounds);
  }
  if (arg == "--elems") {
    return as_intval(&out->spec.elems);
  }
  if (arg == "--seed") {
    const char* v = need_value();
    if (v == nullptr) {
      return -1;
    }
    out->spec.seed = std::strtoull(v, nullptr, 0);
    return 1;
  }
  if (arg == "--vpu-mode") {
    const char* v = need_value();
    if (v == nullptr) {
      return -1;
    }
    out->spec.vpu_mode = v;
    return 1;
  }
  if (arg == "--spec") {
    const char* v = need_value();
    if (v == nullptr) {
      return -1;
    }
    out->spec_file = v;
    return 1;
  }
  return 0;
}

/// Resolve --spec FILE (strict parse) or the accumulated field flags into
/// a validated JobSpec. False on failure (diagnostic printed).
bool resolve_spec(const SpecFlags& flags, JobSpec* out) {
  try {
    if (!flags.spec_file.empty()) {
      std::string text;
      if (!fpst::tools::slurp(flags.spec_file, &text)) {
        std::fprintf(stderr, "tsim: cannot read %s\n",
                     flags.spec_file.c_str());
        return false;
      }
      *out = parse_spec(text);
    } else {
      validate(flags.spec);
      *out = flags.spec;
    }
    return true;
  } catch (const SpecError& e) {
    std::fprintf(stderr, "tsim: %s: %s\n", e.code().c_str(), e.what());
    return false;
  }
}

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: tsim <command> [options]\n"
      "\n"
      "  run-server --socket PATH [--workers N] [--queue N]\n"
      "             [--cache-mb N] [--no-cache]\n"
      "  submit     --socket PATH [spec flags] [--tenant T] [--wait]\n"
      "             [--out FILE]\n"
      "  status     --socket PATH --id N [--watch]\n"
      "  stats      --socket PATH\n"
      "  metrics    --socket PATH [--prom]\n"
      "  trace      --socket PATH [--id N] [--chrome FILE]\n"
      "  shutdown   --socket PATH\n"
      "  hash       [spec flags | --spec FILE]\n"
      "  selftest\n"
      "\n"
      "spec flags: --program allreduce|saxpy|ring  --dim D  --threads N\n"
      "            --rounds R  --elems E  --seed S\n"
      "            --vpu-mode softfloat|batch|checked  --spec FILE\n");
}

// ------------------------------------------------------------- subcommands

int cmd_run_server(int argc, char** argv) {
  std::string socket_path;
  Service::Options opts;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tsim: %s needs a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      const char* v = value();
      if (v == nullptr) {
        return 2;
      }
      socket_path = v;
    } else if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr) {
        return 2;
      }
      opts.workers = std::atoi(v);
    } else if (arg == "--queue") {
      const char* v = value();
      if (v == nullptr) {
        return 2;
      }
      opts.queue_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--cache-mb") {
      const char* v = value();
      if (v == nullptr) {
        return 2;
      }
      opts.cache_bytes = static_cast<std::size_t>(std::atoll(v)) << 20;
    } else if (arg == "--no-cache") {
      opts.cache_enabled = false;
    } else {
      std::fprintf(stderr, "tsim: unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "tsim: run-server needs --socket PATH\n");
    return 2;
  }
  std::fprintf(stderr, "tsim: serving on %s (%d workers)\n",
               socket_path.c_str(), opts.workers);
  return run_server(socket_path, opts, nullptr);
}

int cmd_submit(int argc, char** argv) {
  std::string socket_path;
  std::string tenant = "default";
  std::string out_file;
  bool wait = false;
  SpecFlags flags;
  for (int i = 2; i < argc; ++i) {
    const int ate = eat_spec_flag(argc, argv, i, &flags);
    if (ate == -1) {
      return 2;
    }
    if (ate == 1) {
      continue;
    }
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tsim: %s needs a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      const char* v = value();
      if (v == nullptr) {
        return 2;
      }
      socket_path = v;
    } else if (arg == "--tenant") {
      const char* v = value();
      if (v == nullptr) {
        return 2;
      }
      tenant = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) {
        return 2;
      }
      out_file = v;
      wait = true;  // the result only exists once the job is done
    } else if (arg == "--wait") {
      wait = true;
    } else {
      std::fprintf(stderr, "tsim: unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "tsim: submit needs --socket PATH\n");
    return 2;
  }
  JobSpec spec;
  if (!resolve_spec(flags, &spec)) {
    return 2;
  }

  const int fd = connect_unix(socket_path);
  if (fd < 0) {
    return 2;
  }
  Conn conn{fd};
  Value req = Value::object();
  req["op"] = Value::string("submit");
  req["tenant"] = Value::string(tenant);
  req["spec"] = spec_to_json(spec);
  const std::optional<Value> reply = roundtrip(conn, req);
  if (!reply) {
    return 2;
  }
  if (!reply_ok(*reply)) {
    print_reply_error(*reply);
    return 2;
  }
  const JobId id = static_cast<JobId>(reply->find("id")->as_int());
  if (!wait) {
    std::printf("%s\n", reply->dump().c_str());
    return 0;
  }

  const std::optional<Value> final_status = watch_job(conn, id, true);
  if (!final_status) {
    return 2;
  }
  std::printf("%s\n", final_status->dump().c_str());
  const bool failed = final_status->find("state")->as_string() == "failed";
  if (!failed && !out_file.empty()) {
    Value rreq = Value::object();
    rreq["op"] = Value::string("result");
    rreq["id"] = Value::integer(static_cast<std::int64_t>(id));
    const std::optional<Value> rreply = roundtrip(conn, rreq);
    if (!rreply || !reply_ok(*rreply)) {
      if (rreply) {
        print_reply_error(*rreply);
      }
      return 2;
    }
    const std::string& dump = rreply->find("dump")->as_string();
    std::FILE* f = std::fopen(out_file.c_str(), "wb");
    if (f == nullptr || std::fwrite(dump.data(), 1, dump.size(), f) !=
                            dump.size()) {
      std::fprintf(stderr, "tsim: cannot write %s\n", out_file.c_str());
      if (f != nullptr) {
        std::fclose(f);
      }
      return 2;
    }
    std::fclose(f);
    std::fprintf(stderr, "tsim: wrote %zu bytes to %s\n", dump.size(),
                 out_file.c_str());
  }
  return failed ? 1 : 0;
}

/// status / stats / shutdown share the one-request shape.
int cmd_simple(int argc, char** argv, const std::string& op) {
  std::string socket_path;
  std::int64_t id = -1;
  bool watch = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--id" && i + 1 < argc) {
      id = std::atoll(argv[++i]);
    } else if (arg == "--watch" && op == "status") {
      watch = true;
    } else {
      std::fprintf(stderr, "tsim: unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "tsim: %s needs --socket PATH\n", op.c_str());
    return 2;
  }
  if (op == "status" && id < 0) {
    std::fprintf(stderr, "tsim: status needs --id N\n");
    return 2;
  }
  const int fd = connect_unix(socket_path);
  if (fd < 0) {
    return 2;
  }
  Conn conn{fd};
  if (watch) {
    const std::optional<Value> final_status =
        watch_job(conn, static_cast<JobId>(id), true);
    if (!final_status) {
      return 2;
    }
    std::printf("%s\n", final_status->dump().c_str());
    return final_status->find("state")->as_string() == "failed" ? 1 : 0;
  }
  Value req = Value::object();
  req["op"] = Value::string(op);
  if (id >= 0) {
    req["id"] = Value::integer(id);
  }
  const std::optional<Value> reply = roundtrip(conn, req);
  if (!reply) {
    return 2;
  }
  if (!reply_ok(*reply)) {
    print_reply_error(*reply);
    return 2;
  }
  std::printf("%s\n", reply->dump(2).c_str());
  return 0;
}

int cmd_metrics(int argc, char** argv) {
  std::string socket_path;
  bool prom = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--prom") {
      prom = true;
    } else {
      std::fprintf(stderr, "tsim: unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "tsim: metrics needs --socket PATH\n");
    return 2;
  }
  const int fd = connect_unix(socket_path);
  if (fd < 0) {
    return 2;
  }
  Conn conn{fd};
  Value req = Value::object();
  req["op"] = Value::string("metrics");
  if (prom) {
    req["format"] = Value::string("prom");
  }
  const std::optional<Value> reply = roundtrip(conn, req);
  if (!reply) {
    return 2;
  }
  if (!reply_ok(*reply)) {
    print_reply_error(*reply);
    return 2;
  }
  if (prom) {
    const Value* text = reply->find("prom");
    if (text == nullptr || !text->is_string()) {
      std::fprintf(stderr, "tsim: malformed metrics reply\n");
      return 2;
    }
    std::fputs(text->as_string().c_str(), stdout);
    return 0;
  }
  const Value* metrics = reply->find("metrics");
  if (metrics == nullptr) {
    std::fprintf(stderr, "tsim: malformed metrics reply\n");
    return 2;
  }
  std::printf("%s\n", metrics->dump(2).c_str());
  return 0;
}

int cmd_trace(int argc, char** argv) {
  std::string socket_path;
  std::string chrome_file;
  std::int64_t id = -1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--id" && i + 1 < argc) {
      id = std::atoll(argv[++i]);
    } else if (arg == "--chrome" && i + 1 < argc) {
      chrome_file = argv[++i];
    } else {
      std::fprintf(stderr, "tsim: unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "tsim: trace needs --socket PATH\n");
    return 2;
  }
  const int fd = connect_unix(socket_path);
  if (fd < 0) {
    return 2;
  }
  Conn conn{fd};
  Value req = Value::object();
  req["op"] = Value::string("trace");
  if (id >= 0) {
    req["id"] = Value::integer(id);
  } else if (!chrome_file.empty()) {
    req["chrome"] = Value::boolean(true);
  }
  const std::optional<Value> reply = roundtrip(conn, req);
  if (!reply) {
    return 2;
  }
  if (!reply_ok(*reply)) {
    print_reply_error(*reply);
    return 2;
  }
  const Value* body = id >= 0                  ? reply->find("span")
                      : !chrome_file.empty()   ? reply->find("trace")
                                               : reply->find("spans");
  if (body == nullptr) {
    std::fprintf(stderr, "tsim: malformed trace reply\n");
    return 2;
  }
  if (!chrome_file.empty()) {
    const std::string text = body->dump(2) + "\n";
    std::FILE* f = std::fopen(chrome_file.c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
      std::fprintf(stderr, "tsim: cannot write %s\n", chrome_file.c_str());
      if (f != nullptr) {
        std::fclose(f);
      }
      return 2;
    }
    std::fclose(f);
    std::fprintf(stderr, "tsim: wrote %zu bytes to %s\n", text.size(),
                 chrome_file.c_str());
    return 0;
  }
  std::printf("%s\n", body->dump(2).c_str());
  return 0;
}

int cmd_hash(int argc, char** argv) {
  SpecFlags flags;
  for (int i = 2; i < argc; ++i) {
    const int ate = eat_spec_flag(argc, argv, i, &flags);
    if (ate == -1) {
      return 2;
    }
    if (ate == 0) {
      std::fprintf(stderr, "tsim: unknown option %s\n", argv[i]);
      return 2;
    }
  }
  JobSpec spec;
  if (!resolve_spec(flags, &spec)) {
    return 2;
  }
  std::printf("%s\n%s\n", canonical_spec(spec).c_str(),
              content_address(spec).c_str());
  return 0;
}

// --------------------------------------------------------------- selftest

#define SELF_CHECK(cond, what)                                      \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::fprintf(stderr, "tsim selftest: FAIL %s (%s:%d)\n", what, \
                   __FILE__, __LINE__);                             \
      return false;                                                 \
    }                                                               \
  } while (0)

bool selftest_body(const std::string& socket_path) {
  // Wait for the server thread to bind, then for connects to succeed.
  int fd = -1;
  for (int tries = 0; tries < 200 && fd < 0; ++tries) {
    fd = connect_unix(socket_path, /*quiet=*/true);
    if (fd < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  SELF_CHECK(fd >= 0, "connect to in-process server");
  Conn conn{fd};

  const auto submit_and_wait = [&](std::uint64_t seed,
                                   Value* out) -> bool {
    JobSpec spec;
    spec.program = "allreduce";
    spec.dimension = 2;
    spec.rounds = 2;
    spec.elems = 8;
    spec.seed = seed;
    Value req = Value::object();
    req["op"] = Value::string("submit");
    req["tenant"] = Value::string("selftest");
    req["spec"] = spec_to_json(spec);
    const std::optional<Value> reply = roundtrip(conn, req);
    if (!reply || !reply_ok(*reply)) {
      return false;
    }
    const JobId id = static_cast<JobId>(reply->find("id")->as_int());
    const std::optional<Value> st = watch_job(conn, id, false);
    if (!st) {
      return false;
    }
    *out = *st;
    (*out)["id"] = Value::integer(reply->find("id")->as_int());
    return true;
  };

  const auto fetch_dump = [&](std::int64_t id, std::string* out) -> bool {
    Value req = Value::object();
    req["op"] = Value::string("result");
    req["id"] = Value::integer(id);
    const std::optional<Value> reply = roundtrip(conn, req);
    if (!reply || !reply_ok(*reply)) {
      return false;
    }
    *out = reply->find("dump")->as_string();
    return true;
  };

  // Same spec twice: the second run must be a cache hit with zero
  // simulation events and byte-identical dump bytes over the wire.
  Value first;
  Value second;
  SELF_CHECK(submit_and_wait(7, &first), "first submit");
  SELF_CHECK(submit_and_wait(7, &second), "second submit");
  SELF_CHECK(first.find("state")->as_string() == "done", "first done");
  SELF_CHECK(second.find("state")->as_string() == "done", "second done");
  SELF_CHECK(!first.find("cache_hit")->as_bool(), "first is a miss");
  SELF_CHECK(second.find("cache_hit")->as_bool(), "second is a hit");
  SELF_CHECK(second.find("events")->as_int() == 0, "hit simulated nothing");
  SELF_CHECK(first.find("events")->as_int() > 0, "miss simulated something");
  std::string dump_a;
  std::string dump_b;
  SELF_CHECK(fetch_dump(first.find("id")->as_int(), &dump_a), "result A");
  SELF_CHECK(fetch_dump(second.find("id")->as_int(), &dump_b), "result B");
  SELF_CHECK(!dump_a.empty(), "dump bytes non-empty");
  SELF_CHECK(dump_a == dump_b, "cache hit is byte-identical");

  // A different seed is a different address: must miss.
  Value third;
  SELF_CHECK(submit_and_wait(8, &third), "third submit");
  SELF_CHECK(!third.find("cache_hit")->as_bool(), "new seed misses");
  SELF_CHECK(third.find("address")->as_string() !=
                 first.find("address")->as_string(),
             "new seed has a new address");

  // Typed bad-request over the wire: unknown program.
  {
    Value req = Value::object();
    req["op"] = Value::string("submit");
    Value bad = Value::object();
    bad["program"] = Value::string("fizzbuzz");
    req["spec"] = bad;
    const std::optional<Value> reply = roundtrip(conn, req);
    SELF_CHECK(reply.has_value(), "bad-spec reply arrives");
    SELF_CHECK(!reply_ok(*reply), "bad spec is rejected");
    SELF_CHECK(reply->find("code")->as_string() == "bad-program",
               "typed error code");
  }

  // Stats reflect the hit.
  {
    Value req = Value::object();
    req["op"] = Value::string("stats");
    const std::optional<Value> reply = roundtrip(conn, req);
    SELF_CHECK(reply.has_value() && reply_ok(*reply), "stats reply");
    const Value* stats = reply->find("stats");
    SELF_CHECK(stats != nullptr, "stats body");
    SELF_CHECK(stats->find("cache_hits")->as_int() == 1, "one cache hit");
    SELF_CHECK(stats->find("completed")->as_int() == 3, "three completions");
  }

  // Metrics document: tmon shape, per-tenant account, meta block present.
  {
    Value req = Value::object();
    req["op"] = Value::string("metrics");
    const std::optional<Value> reply = roundtrip(conn, req);
    SELF_CHECK(reply.has_value() && reply_ok(*reply), "metrics reply");
    const Value* m = reply->find("metrics");
    SELF_CHECK(m != nullptr, "metrics body");
    SELF_CHECK(m->find("kind")->as_string() == "tmon-metrics",
               "metrics kind");
    SELF_CHECK(m->find("cache_hits")->as_int() == 1, "metrics cache hits");
    const Value* tenants = m->find("tenants");
    SELF_CHECK(tenants != nullptr && tenants->find("selftest") != nullptr,
               "per-tenant account");
    SELF_CHECK(tenants->find("selftest")->find("completed")->as_int() == 3,
               "tenant completions");
    SELF_CHECK(m->find("meta") != nullptr, "metrics meta block");
  }

  // Prometheus rendering of the same stats.
  {
    Value req = Value::object();
    req["op"] = Value::string("metrics");
    req["format"] = Value::string("prom");
    const std::optional<Value> reply = roundtrip(conn, req);
    SELF_CHECK(reply.has_value() && reply_ok(*reply), "prom reply");
    const Value* text = reply->find("prom");
    SELF_CHECK(text != nullptr && text->is_string(), "prom body");
    SELF_CHECK(text->as_string().find("tsim_jobs_submitted_total 3") !=
                   std::string::npos,
               "prom submitted counter");
    SELF_CHECK(text->as_string().find("tenant=\"selftest\"") !=
                   std::string::npos,
               "prom tenant label");
  }

  // Request spans: all jobs, then one job, then the Chrome rendering.
  {
    Value req = Value::object();
    req["op"] = Value::string("trace");
    const std::optional<Value> reply = roundtrip(conn, req);
    SELF_CHECK(reply.has_value() && reply_ok(*reply), "trace reply");
    const Value* spans = reply->find("spans");
    SELF_CHECK(spans != nullptr, "spans body");
    SELF_CHECK(spans->find("kind")->as_string() == "tmon-spans",
               "spans kind");
    SELF_CHECK(spans->find("spans")->as_array().size() == 3, "three spans");
  }
  {
    Value req = Value::object();
    req["op"] = Value::string("trace");
    req["id"] = Value::integer(second.find("id")->as_int());
    const std::optional<Value> reply = roundtrip(conn, req);
    SELF_CHECK(reply.has_value() && reply_ok(*reply), "span reply");
    const Value* span = reply->find("span");
    SELF_CHECK(span != nullptr, "span body");
    SELF_CHECK(span->find("cache_hit")->as_bool(), "hit span");
    SELF_CHECK(span->find("meta") != nullptr, "span meta block");
  }
  {
    Value req = Value::object();
    req["op"] = Value::string("trace");
    req["chrome"] = Value::boolean(true);
    const std::optional<Value> reply = roundtrip(conn, req);
    SELF_CHECK(reply.has_value() && reply_ok(*reply), "chrome reply");
    const Value* trace = reply->find("trace");
    SELF_CHECK(trace != nullptr && trace->find("traceEvents") != nullptr,
               "chrome traceEvents");
    SELF_CHECK(!trace->find("traceEvents")->as_array().empty(),
               "chrome events non-empty");
  }

  // Unknown verb gets the typed unknown-op error.
  {
    Value req = Value::object();
    req["op"] = Value::string("frobnicate");
    const std::optional<Value> reply = roundtrip(conn, req);
    SELF_CHECK(reply.has_value(), "unknown-op reply arrives");
    SELF_CHECK(!reply_ok(*reply), "unknown op rejected");
    SELF_CHECK(reply->find("code")->as_string() == "unknown-op",
               "unknown-op code");
  }

  // A truncated frame — half a JSON object, newline-framed — must come
  // back as bad-request, and the connection must stay usable.
  {
    SELF_CHECK(send_all(conn.fd(), "{\"op\": \"sta\n"), "send truncated");
    std::string line;
    SELF_CHECK(conn.read_line(&line), "truncated-frame reply arrives");
    const Value reply = Value::parse(line);
    SELF_CHECK(!reply_ok(reply), "truncated frame rejected");
    SELF_CHECK(reply.find("code")->as_string() == "bad-request",
               "bad-request code");
    Value req = Value::object();
    req["op"] = Value::string("ping");
    const std::optional<Value> pong = roundtrip(conn, req);
    SELF_CHECK(pong.has_value() && reply_ok(*pong),
               "connection survives a truncated frame");
  }

  // An oversized request line (past the server's 1 MiB cap) gets the
  // typed error and the connection is closed.
  {
    const int ofd = connect_unix(socket_path, /*quiet=*/true);
    SELF_CHECK(ofd >= 0, "oversize connect");
    Conn oconn{ofd};
    std::string big(kMaxRequestLine + 8192, 'x');
    big += '\n';
    // The server stops reading once the cap trips and closes after the
    // error reply, so this send may legitimately fail partway through.
    (void)send_all(ofd, big);
    std::string line;
    SELF_CHECK(oconn.read_line(&line), "oversized reply arrives");
    const Value reply = Value::parse(line);
    SELF_CHECK(!reply_ok(reply), "oversized line rejected");
    SELF_CHECK(reply.find("code")->as_string() == "oversized-line",
               "oversized-line code");
    SELF_CHECK(!oconn.read_line(&line), "connection closed after oversize");
  }

  // Concurrent watch-stream + shutdown: a watcher parked on another
  // connection must unblock when the server shuts down, not hang.
  JobId watch_id = 0;
  {
    JobSpec spec;
    spec.program = "allreduce";
    spec.dimension = 2;
    spec.rounds = 2;
    spec.elems = 8;
    spec.seed = 99;
    Value req = Value::object();
    req["op"] = Value::string("submit");
    req["tenant"] = Value::string("selftest");
    req["spec"] = spec_to_json(spec);
    const std::optional<Value> reply = roundtrip(conn, req);
    SELF_CHECK(reply.has_value() && reply_ok(*reply), "watch-job submit");
    watch_id = static_cast<JobId>(reply->find("id")->as_int());
  }
  const int wfd = connect_unix(socket_path, /*quiet=*/true);
  SELF_CHECK(wfd >= 0, "watch connect");
  std::thread watcher([wfd, watch_id] {
    Conn wconn{wfd};
    // Either outcome — final status or connection-closed — is fine; the
    // assertion is that this returns at all once shutdown lands.
    (void)watch_job(wconn, watch_id, false);
  });

  // Shut the server down over the wire while the watcher is live.
  {
    Value req = Value::object();
    req["op"] = Value::string("shutdown");
    const std::optional<Value> reply = roundtrip(conn, req);
    SELF_CHECK(reply.has_value() && reply_ok(*reply), "shutdown ack");
  }
  watcher.join();
  return true;
}

int cmd_selftest() {
  const std::string socket_path =
      "/tmp/tsim-selftest-" + std::to_string(::getpid()) + ".sock";
  Service::Options opts;
  opts.workers = 2;
  opts.queue_capacity = 16;
  std::atomic<bool> ready{false};
  std::thread server([&] { run_server(socket_path, opts, &ready); });
  const bool ok = selftest_body(socket_path);
  if (!ok) {
    // The server may still be accepting; stop it so join() returns.
    const int fd = connect_unix(socket_path);
    if (fd >= 0) {
      Value req = Value::object();
      req["op"] = Value::string("shutdown");
      send_line(fd, req);
      ::close(fd);
    }
  }
  server.join();
  ::unlink(socket_path.c_str());
  std::printf("tsim selftest: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "-h" || cmd == "--help") {
    usage(stdout);
    return 0;
  }
  if (cmd == "run-server") {
    return cmd_run_server(argc, argv);
  }
  if (cmd == "submit") {
    return cmd_submit(argc, argv);
  }
  if (cmd == "status" || cmd == "stats" || cmd == "shutdown") {
    return cmd_simple(argc, argv, cmd);
  }
  if (cmd == "metrics") {
    return cmd_metrics(argc, argv);
  }
  if (cmd == "trace") {
    return cmd_trace(argc, argv);
  }
  if (cmd == "hash") {
    return cmd_hash(argc, argv);
  }
  if (cmd == "selftest") {
    return cmd_selftest();
  }
  std::fprintf(stderr, "tsim: unknown command %s\n", cmd.c_str());
  usage(stderr);
  return 2;
}
