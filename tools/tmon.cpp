// tmon — live serve-layer observability console (README "Observability",
// DESIGN.md §9).
//
// Talks the tsim ndjson protocol (client side, shared plumbing in
// tool_util.hpp) to a running `tsim run-server` and renders the service's
// tmon metrics document:
//
//   tmon --socket PATH                one-shot text dashboard
//   tmon --socket PATH --watch        top-style refresh (default 1000 ms;
//                                     --interval MS to change)
//   tmon --socket PATH --json         raw metrics document
//   tmon --socket PATH --prom         Prometheus text exposition
//   tmon --socket PATH --metric NAME  one value, one line (ci.sh awk)
//   tmon --strip-meta FILE            print FILE with every `meta` object
//                                     removed (the determinism gates
//                                     compare these stripped bytes)
//   tmon selfdump --spans F --metrics F
//       deterministic harness: in-process Service (1 worker), a fixed
//       serial submission sequence across two tenants, span + metrics
//       documents written to the given files. Run twice and strip meta:
//       the bytes must match — the CI determinism sweep gates on it.
//
// Exit codes: 0 success, 1 selfdump verification failure, 2 usage / I/O /
// protocol error.
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "perf/json.hpp"
#include "serve/service.hpp"
#include "serve/tmon.hpp"
#include "tool_util.hpp"

namespace {

using fpst::perf::json::Value;
using namespace fpst::serve;

constexpr const char* kTool = "tmon";

// ----------------------------------------------------------------- client

/// One request -> one reply over a fresh or held connection.
std::optional<Value> request(int fd, fpst::tools::LineReader& reader,
                             const Value& req) {
  if (!fpst::tools::send_json_line(fd, req)) {
    std::fprintf(stderr, "tmon: connection lost while sending\n");
    return std::nullopt;
  }
  std::string line;
  if (!reader.read_line(&line)) {
    std::fprintf(stderr, "tmon: connection closed before reply\n");
    return std::nullopt;
  }
  try {
    return Value::parse(line);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tmon: malformed reply: %s\n", e.what());
    return std::nullopt;
  }
}

/// Fetch the metrics document ("metrics" body) or the Prometheus text
/// ("prom" body). nullopt on any failure (diagnostic printed).
std::optional<Value> fetch(int fd, fpst::tools::LineReader& reader,
                           bool prom) {
  Value req = Value::object();
  req["op"] = Value::string("metrics");
  if (prom) {
    req["format"] = Value::string("prom");
  }
  const std::optional<Value> reply = request(fd, reader, req);
  if (!reply) {
    return std::nullopt;
  }
  const Value* ok = reply->find("ok");
  if (ok == nullptr || !ok->as_bool()) {
    const Value* err = reply->find("error");
    std::fprintf(stderr, "tmon: server error: %s\n",
                 err != nullptr && err->is_string() ? err->as_string().c_str()
                                                    : "(no detail)");
    return std::nullopt;
  }
  const Value* body = reply->find(prom ? "prom" : "metrics");
  if (body == nullptr) {
    std::fprintf(stderr, "tmon: malformed metrics reply\n");
    return std::nullopt;
  }
  return *body;
}

// -------------------------------------------------------------- dashboard

std::int64_t body_int(const Value& doc, const char* key) {
  const Value* v = doc.find(key);
  return v != nullptr && v->is_number() ? v->as_int() : 0;
}

const Value* meta_of(const Value& doc) { return doc.find("meta"); }

double hist_quantile(const Value* hist, const char* q) {
  if (hist == nullptr) {
    return 0.0;
  }
  const Value* v = hist->find(q);
  return v != nullptr && v->is_number() ? v->as_double() : 0.0;
}

void render_dashboard(const Value& doc) {
  const Value* meta = meta_of(doc);
  const double uptime_ms =
      meta != nullptr && meta->find("uptime_ms") != nullptr
          ? meta->find("uptime_ms")->as_double()
          : 0.0;
  const std::int64_t depth =
      meta != nullptr && meta->find("queue_depth") != nullptr
          ? meta->find("queue_depth")->as_int()
          : 0;
  const std::int64_t stalls =
      meta != nullptr && meta->find("backpressure_stalls") != nullptr
          ? meta->find("backpressure_stalls")->as_int()
          : 0;
  std::printf("tsim serve — up %.1f s, %" PRId64 " workers, queue depth %"
              PRId64 ", %" PRId64 " backpressure stalls\n",
              uptime_ms / 1000.0, body_int(doc, "workers"), depth, stalls);
  std::printf("jobs: %" PRId64 " submitted, %" PRId64 " done, %" PRId64
              " failed, %" PRId64 " cache hits, %" PRId64 " rejected\n",
              body_int(doc, "submitted"), body_int(doc, "completed"),
              body_int(doc, "failed"), body_int(doc, "cache_hits"),
              body_int(doc, "rejected"));
  const Value* cache = doc.find("cache");
  if (cache != nullptr) {
    std::printf("cache: %" PRId64 " entries, %" PRId64 " / %" PRId64
                " bytes, %" PRId64 " hits / %" PRId64 " misses, %" PRId64
                " evictions\n",
                body_int(*cache, "entries"), body_int(*cache, "bytes"),
                body_int(*cache, "byte_budget"), body_int(*cache, "hits"),
                body_int(*cache, "misses"), body_int(*cache, "evictions"));
  }
  const Value* engine = doc.find("engine");
  const Value* mengine = meta != nullptr ? meta->find("engine") : nullptr;
  if (engine != nullptr && mengine != nullptr) {
    std::printf("engine: %" PRId64 " epochs, merge %.3f ms, barrier %.3f ms\n",
                body_int(*engine, "epochs"),
                static_cast<double>(body_int(*mengine, "merge_ns")) / 1e6,
                static_cast<double>(body_int(*mengine, "barrier_ns")) / 1e6);
  }
  const Value* tenants = doc.find("tenants");
  const Value* mtenants = meta != nullptr ? meta->find("tenants") : nullptr;
  if (tenants != nullptr && tenants->is_object() &&
      !tenants->as_object().empty()) {
    std::printf("%-16s %5s %5s %5s %5s %5s %10s %10s %10s\n", "tenant", "sub",
                "done", "fail", "hit", "rej", "p50(us)", "p90(us)",
                "p99(us)");
    for (const auto& [name, t] : tenants->as_object()) {
      const Value* mt =
          mtenants != nullptr ? mtenants->find(name) : nullptr;
      const Value* lat = mt != nullptr ? mt->find("latency_us") : nullptr;
      std::printf("%-16s %5" PRId64 " %5" PRId64 " %5" PRId64 " %5" PRId64
                  " %5" PRId64 " %10.0f %10.0f %10.0f\n",
                  name.c_str(), body_int(t, "submitted"),
                  body_int(t, "completed"), body_int(t, "failed"),
                  body_int(t, "cache_hits"), body_int(t, "rejected"),
                  hist_quantile(lat, "p50"), hist_quantile(lat, "p90"),
                  hist_quantile(lat, "p99"));
    }
  }
}

// ----------------------------------------------------------- --metric map

int print_metric(const Value& doc, const std::string& name) {
  fpst::tools::MetricTable table;
  const Value* meta = meta_of(doc);
  const auto body_metric = [&doc](const char* key) {
    return [&doc, key] {
      return fpst::tools::fmt_u64(
          static_cast<std::uint64_t>(body_int(doc, key)));
    };
  };
  table.add("submitted", body_metric("submitted"));
  table.add("completed", body_metric("completed"));
  table.add("failed", body_metric("failed"));
  table.add("cache_hits", body_metric("cache_hits"));
  table.add("rejected", body_metric("rejected"));
  table.add("queue_depth", [meta] {
    return fpst::tools::fmt_u64(static_cast<std::uint64_t>(
        meta != nullptr ? body_int(*meta, "queue_depth") : 0));
  });
  table.add("backpressure_stalls", [meta] {
    return fpst::tools::fmt_u64(static_cast<std::uint64_t>(
        meta != nullptr ? body_int(*meta, "backpressure_stalls") : 0));
  });
  table.add("uptime_ms", [meta] {
    return fpst::tools::fmt_f6(
        meta != nullptr && meta->find("uptime_ms") != nullptr
            ? meta->find("uptime_ms")->as_double()
            : 0.0);
  });
  table.add("engine_epochs", [&doc] {
    const Value* engine = doc.find("engine");
    return fpst::tools::fmt_u64(static_cast<std::uint64_t>(
        engine != nullptr ? body_int(*engine, "epochs") : 0));
  });
  return table.print(kTool, name);
}

// --------------------------------------------------------------- selfdump

/// Deterministic in-process workload: one worker, serial submit -> wait,
/// two tenants, a mixed hit/miss pattern, one sharded-engine job. Every
/// body field of the resulting span/metrics documents is a pure function
/// of this sequence; only `meta` varies run to run.
int cmd_selfdump(const std::string& spans_path,
                 const std::string& metrics_path) {
  Service::Options opts;
  opts.workers = 1;
  opts.queue_capacity = 16;
  Service service{opts};

  const auto job = [](const char* program, const char* tenant, int threads,
                      std::uint64_t seed) {
    JobSpec spec;
    spec.program = program;
    spec.dimension = 2;
    spec.rounds = 2;
    spec.elems = 8;
    spec.threads = threads;
    spec.seed = seed;
    return std::pair<std::string, JobSpec>{tenant, spec};
  };
  const std::vector<std::pair<std::string, JobSpec>> sequence = {
      job("allreduce", "alice", 1, 1),  // miss
      job("allreduce", "bob", 1, 1),    // hit (same address)
      job("ring", "alice", 1, 2),       // miss
      job("saxpy", "bob", 2, 3),        // miss, sharded engine (2 shards)
      job("allreduce", "alice", 1, 1),  // hit again
  };
  for (const auto& [tenant, spec] : sequence) {
    const JobId id = service.submit(tenant, spec);
    const JobStatus st = service.wait(id);
    if (st.state != JobState::kDone) {
      std::fprintf(stderr, "tmon selfdump: job %" PRIu64 " %s: %s\n", id,
                   to_string(st.state), st.error.c_str());
      return 1;
    }
  }

  const auto write_doc = [](const std::string& path, const Value& doc) {
    const std::string text = doc.dump(2) + "\n";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
      std::fprintf(stderr, "tmon: cannot write %s\n", path.c_str());
      if (f != nullptr) {
        std::fclose(f);
      }
      return false;
    }
    std::fclose(f);
    return true;
  };
  if (!write_doc(spans_path, spans_to_json(service.spans())) ||
      !write_doc(metrics_path, metrics_to_json(service.stats()))) {
    return 2;
  }
  service.shutdown();
  return 0;
}

// ------------------------------------------------------------------ usage

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: tmon [options]\n"
      "\n"
      "  --socket PATH       talk to a tsim run-server\n"
      "    --watch           top-style refresh until interrupted\n"
      "    --interval MS     refresh period for --watch (default 1000)\n"
      "    --json            print the raw metrics document\n"
      "    --prom            print Prometheus text exposition\n"
      "    --metric NAME     print one value (submitted | completed |\n"
      "                      failed | cache_hits | rejected | queue_depth |\n"
      "                      backpressure_stalls | uptime_ms |\n"
      "                      engine_epochs)\n"
      "  --strip-meta FILE   print FILE with every `meta` object removed\n"
      "  selfdump --spans FILE --metrics FILE\n"
      "                      deterministic span/metrics dump harness\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string strip_file;
  std::string metric;
  std::string spans_path;
  std::string metrics_path;
  bool watch = false;
  bool json = false;
  bool prom = false;
  bool selfdump = false;
  int interval_ms = 1000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tmon: %s needs a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    }
    if (arg == "selfdump") {
      selfdump = true;
    } else if (arg == "--socket") {
      const char* v = value();
      if (v == nullptr) {
        return 2;
      }
      socket_path = v;
    } else if (arg == "--strip-meta") {
      const char* v = value();
      if (v == nullptr) {
        return 2;
      }
      strip_file = v;
    } else if (arg == "--metric") {
      const char* v = value();
      if (v == nullptr) {
        return 2;
      }
      metric = v;
    } else if (arg == "--spans") {
      const char* v = value();
      if (v == nullptr) {
        return 2;
      }
      spans_path = v;
    } else if (arg == "--metrics") {
      const char* v = value();
      if (v == nullptr) {
        return 2;
      }
      metrics_path = v;
    } else if (arg == "--interval") {
      const char* v = value();
      if (v == nullptr) {
        return 2;
      }
      interval_ms = std::atoi(v);
      if (interval_ms < 10) {
        interval_ms = 10;
      }
    } else if (arg == "--watch") {
      watch = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--prom") {
      prom = true;
    } else {
      std::fprintf(stderr, "tmon: unknown option %s\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (selfdump) {
    if (spans_path.empty() || metrics_path.empty()) {
      std::fprintf(stderr,
                   "tmon: selfdump needs --spans FILE and --metrics FILE\n");
      return 2;
    }
    return cmd_selfdump(spans_path, metrics_path);
  }

  if (!strip_file.empty()) {
    const std::optional<Value> doc =
        fpst::tools::load_json(kTool, strip_file);
    if (!doc) {
      return 2;
    }
    std::printf("%s\n", strip_meta(*doc).dump(2).c_str());
    return 0;
  }

  if (socket_path.empty()) {
    std::fprintf(stderr, "tmon: need --socket PATH (or --strip-meta FILE, "
                         "or selfdump)\n");
    usage(stderr);
    return 2;
  }

  const int fd = fpst::tools::connect_unix(kTool, socket_path);
  if (fd < 0) {
    return 2;
  }
  fpst::tools::LineReader reader{fd};

  int rc = 0;
  for (;;) {
    const std::optional<Value> doc = fetch(fd, reader, prom);
    if (!doc) {
      rc = 2;
      break;
    }
    if (watch) {
      std::printf("\x1b[2J\x1b[H");  // clear + home, top(1)-style
    }
    if (prom) {
      std::fputs(doc->as_string().c_str(), stdout);
    } else if (json) {
      std::printf("%s\n", doc->dump(2).c_str());
    } else if (!metric.empty()) {
      rc = print_metric(*doc, metric);
      break;
    } else {
      render_dashboard(*doc);
    }
    if (!watch) {
      break;
    }
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  ::close(fd);
  return rc;
}
