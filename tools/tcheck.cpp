// tcheck — static verifier and performance predictor for TISA programs
// and Occam communication skeletons. See README "Static verification" and
// DESIGN.md §6.
//
//   tcheck [options] <file.tisa | file.comm>...
//
//   .tisa files are assembled and run through the control-flow /
//   abstract-stack verifier (check/tisa_verify.hpp) plus the static cost
//   model (check/cost_model.hpp); .comm files are parsed as communication
//   skeletons and run through the wait-for-graph deadlock checker
//   (check/chan_graph.hpp) plus the per-edge volume analyzer
//   (check/comm_volume.hpp).
//
//   --entry SYM      TISA entry symbol (default: `main` if defined, else .org)
//   --werror         count warnings as errors for the exit status
//   --quiet          print nothing but the per-file verdict lines
//   --predict        print the predicted-performance summary per file
//   --json-out FILE  write the prediction(s) as JSON (tperf-schema fields)
//   --against DUMP   cross-validate the prediction against a measured tperf
//                    dump (tisa_traced / alltoall_traced output)
//   --tolerance X    relative tolerance for elapsed-time comparison under
//                    --against (default 0.02; counts compare exactly)
//
// Exit status: 0 when every file is clean; 1 when any file produced a
// validity error (the input would fault, deadlock or corrupt memory);
// 2 on usage or I/O problems; 3 when the only failures are performance-
// model violations (performance-class errors, or --against divergence).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "check/chan_graph.hpp"
#include "check/comm_volume.hpp"
#include "check/cost_model.hpp"
#include "check/tisa_verify.hpp"
#include "cp/assembler.hpp"
#include "occam/commspec.hpp"
#include "perf/chrome_trace.hpp"
#include "perf/tscope.hpp"
#include "tool_util.hpp"

namespace {

using namespace fpst;

struct Options {
  std::string entry;
  bool werror = false;
  bool quiet = false;
  bool predict = false;
  std::string json_out;
  std::string against;
  double tolerance = 0.02;
  std::vector<std::string> files;
};

int usage() {
  std::cerr << "usage: tcheck [--entry SYM] [--werror] [--quiet] "
               "[--predict] [--json-out FILE]\n"
               "              [--against DUMP] [--tolerance X] "
               "<file.tisa | file.comm>...\n";
  return 2;
}

const char* verdict_name(check::LoopVerdict v) {
  switch (v) {
    case check::LoopVerdict::kBounded:
      return "bounded";
    case check::LoopVerdict::kUnbounded:
      return "unbounded";
    case check::LoopVerdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

perf::json::Value prediction_to_json(const check::CostPrediction& p) {
  using perf::json::Value;
  Value doc = Value::object();
  doc["complete"] = Value::boolean(p.complete);
  doc["stop_reason"] = Value::string(p.stop_reason);
  doc["stop_addr"] = Value::integer(p.stop_addr);
  doc["instructions"] =
      Value::integer(static_cast<std::int64_t>(p.instructions));
  doc["flops"] = Value::integer(static_cast<std::int64_t>(p.flops));
  doc["vforms"] = Value::integer(static_cast<std::int64_t>(p.vforms));
  doc["elapsed_ps"] = Value::integer(p.elapsed.ps());
  doc["elapsed_us"] = Value::number(p.elapsed.us());
  doc["cp_busy_ps"] = Value::integer(p.cp_busy.ps());
  doc["vpu_busy_ps"] = Value::integer(p.vpu_busy.ps());
  doc["link_busy_ps"] = Value::integer(p.link_busy.ps());
  Value loops = Value::array();
  for (const check::LoopInfo& l : p.loops) {
    Value v = Value::object();
    v["head"] = Value::integer(l.head);
    v["back_edge"] = Value::integer(l.back_edge);
    v["verdict"] = Value::string(verdict_name(l.verdict));
    v["hot"] = Value::boolean(l.hot);
    v["iterations"] = Value::integer(static_cast<std::int64_t>(l.iterations));
    loops.append(std::move(v));
  }
  doc["loops"] = std::move(loops);
  return doc;
}

perf::json::Value volume_to_json(const check::VolumeAnalysis& v) {
  using perf::json::Value;
  Value doc = Value::object();
  doc["dimension"] = Value::integer(v.dimension);
  doc["messages"] = Value::integer(static_cast<std::int64_t>(v.messages));
  doc["payload_bytes"] =
      Value::integer(static_cast<std::int64_t>(v.payload_bytes));
  doc["total_hops"] = Value::integer(static_cast<std::int64_t>(v.total_hops));
  doc["max_edge_crossings"] =
      Value::integer(static_cast<std::int64_t>(v.max_edge_crossings));
  // The `edges` array matches the tscope message-report schema so the
  // prediction and the measurement diff structurally; `bytes` is the
  // prediction-only extension.
  std::vector<perf::EdgeLoad> loads;
  loads.reserve(v.edges.size());
  for (const net::EdgeTraffic& e : v.edges) {
    loads.push_back(perf::EdgeLoad{e.a, e.b, e.crossings});
  }
  Value edges = perf::edges_to_json(loads);
  for (std::size_t i = 0; i < v.edges.size(); ++i) {
    edges.as_array()[i]["bytes"] =
        Value::integer(static_cast<std::int64_t>(v.edges[i].bytes));
  }
  doc["edges"] = std::move(edges);
  return doc;
}

struct FileVerdict {
  std::size_t validity_errors = 0;
  std::size_t validity_warnings = 0;
  std::size_t perf_errors = 0;
  std::size_t perf_warnings = 0;
  bool io_failed = false;
  bool diverged = false;  ///< --against cross-validation failed
};

/// Compare a TISA prediction against a tisa_traced dump's `results`.
bool validate_tisa(const check::CostPrediction& pred, const std::string& path,
                   const perf::json::Value& dump, double tolerance) {
  const perf::json::Value* results = dump.find("results");
  if (results == nullptr || results->find("instructions") == nullptr ||
      results->find("elapsed_ps") == nullptr) {
    std::cerr << path << ": dump has no results.instructions/elapsed_ps "
              << "(not a tisa_traced dump?)\n";
    return false;
  }
  bool ok = true;
  if (!pred.complete) {
    std::printf("%s: prediction is incomplete (%s) — cannot cross-validate\n",
                path.c_str(), pred.stop_reason.c_str());
    ok = false;
  }
  const auto measured_instr = results->find("instructions")->as_int();
  const auto measured_ps = results->find("elapsed_ps")->as_int();
  if (static_cast<std::int64_t>(pred.instructions) != measured_instr) {
    std::printf("%s: instruction count diverges: predicted %llu, measured "
                "%lld\n",
                path.c_str(),
                static_cast<unsigned long long>(pred.instructions),
                static_cast<long long>(measured_instr));
    ok = false;
  }
  const double rel =
      measured_ps == 0
          ? (pred.elapsed.ps() == 0 ? 0.0 : 1.0)
          : std::abs(static_cast<double>(pred.elapsed.ps() - measured_ps)) /
                static_cast<double>(measured_ps);
  if (rel > tolerance) {
    std::printf("%s: elapsed time diverges by %.4f (> %.4f): predicted "
                "%lld ps, measured %lld ps\n",
                path.c_str(), rel, tolerance,
                static_cast<long long>(pred.elapsed.ps()),
                static_cast<long long>(measured_ps));
    ok = false;
  }
  if (ok) {
    std::printf("%s: prediction matches measurement (%llu instructions, "
                "%lld ps vs %lld ps, rel err %.4f <= %.4f)\n",
                path.c_str(),
                static_cast<unsigned long long>(pred.instructions),
                static_cast<long long>(pred.elapsed.ps()),
                static_cast<long long>(measured_ps), rel, tolerance);
  }
  return ok;
}

/// Compare a comm-volume prediction against an alltoall_traced-style dump:
/// message counts, total hops, and every per-edge crossing count, exactly.
bool validate_comm(const check::VolumeAnalysis& vol, const std::string& path,
                   const std::string& dump_path) {
  const std::optional<perf::Dump> dump =
      fpst::tools::load_dump("tcheck", dump_path);
  if (!dump) {
    return false;
  }
  const perf::MessageReport observed = perf::analyze_messages(*dump);
  bool ok = true;
  if (observed.flights.size() != vol.messages) {
    std::printf("%s: message count diverges: predicted %llu, observed %zu\n",
                path.c_str(), static_cast<unsigned long long>(vol.messages),
                observed.flights.size());
    ok = false;
  }
  if (observed.total_hops != vol.total_hops) {
    std::printf("%s: total hops diverge: predicted %llu, observed %llu\n",
                path.c_str(), static_cast<unsigned long long>(vol.total_hops),
                static_cast<unsigned long long>(observed.total_hops));
    ok = false;
  }
  // Both edge tables are sorted by (a, b) with zero-load edges omitted, so
  // a positional walk finds every discrepancy.
  std::size_t pi = 0;
  std::size_t oi = 0;
  while (pi < vol.edges.size() || oi < observed.edges.size()) {
    const bool have_p = pi < vol.edges.size();
    const bool have_o = oi < observed.edges.size();
    const auto pkey = have_p ? std::make_pair(vol.edges[pi].a, vol.edges[pi].b)
                             : std::make_pair(0u, 0u);
    const auto okey = have_o ? std::make_pair(observed.edges[oi].a,
                                              observed.edges[oi].b)
                             : std::make_pair(0u, 0u);
    if (have_p && (!have_o || pkey < okey)) {
      std::printf("%s: edge %u <-> %u predicted %llu crossings, observed 0\n",
                  path.c_str(), pkey.first, pkey.second,
                  static_cast<unsigned long long>(vol.edges[pi].crossings));
      ok = false;
      ++pi;
    } else if (have_o && (!have_p || okey < pkey)) {
      std::printf("%s: edge %u <-> %u observed %llu crossings, predicted 0\n",
                  path.c_str(), okey.first, okey.second,
                  static_cast<unsigned long long>(observed.edges[oi].crossings));
      ok = false;
      ++oi;
    } else {
      if (vol.edges[pi].crossings != observed.edges[oi].crossings) {
        std::printf("%s: edge %u <-> %u diverges: predicted %llu crossings, "
                    "observed %llu\n",
                    path.c_str(), pkey.first, pkey.second,
                    static_cast<unsigned long long>(vol.edges[pi].crossings),
                    static_cast<unsigned long long>(
                        observed.edges[oi].crossings));
        ok = false;
      }
      ++pi;
      ++oi;
    }
  }
  if (ok) {
    std::printf("%s: prediction matches measurement (%llu messages, %llu "
                "hops, %zu edges exact)\n",
                path.c_str(), static_cast<unsigned long long>(vol.messages),
                static_cast<unsigned long long>(vol.total_hops),
                vol.edges.size());
  }
  return ok;
}

FileVerdict check_one(const Options& opts, const std::string& path,
                      perf::json::Value* json_docs) {
  FileVerdict v;
  std::string text;
  if (!fpst::tools::slurp(path, &text)) {
    std::cerr << path << ": cannot read file\n";
    v.io_failed = true;
    return v;
  }

  check::Report rep;
  perf::json::Value pred_json;
  if (path.ends_with(".comm")) {
    try {
      const occam::CommSpec spec = occam::parse_comm_spec(text);
      rep = check::analyze_comm(spec).report;
      const check::VolumeAnalysis vol = check::analyze_volume(spec);
      rep.merge(vol.report);
      if (opts.predict && !opts.quiet) {
        std::printf("%s: %d-cube, %llu message(s), %llu payload bytes, "
                    "%llu hop(s), max %llu per edge\n",
                    path.c_str(), vol.dimension,
                    static_cast<unsigned long long>(vol.messages),
                    static_cast<unsigned long long>(vol.payload_bytes),
                    static_cast<unsigned long long>(vol.total_hops),
                    static_cast<unsigned long long>(vol.max_edge_crossings));
      }
      if (!opts.json_out.empty()) {
        pred_json = volume_to_json(vol);
      }
      if (!opts.against.empty() && !validate_comm(vol, path, opts.against)) {
        v.diverged = true;
      }
    } catch (const occam::CommSpecError& e) {
      rep.error("parse-error", 0, e.what());
    }
  } else {
    try {
      const cp::Program prog = cp::assemble(text);
      check::VerifyOptions vo;
      check::CostOptions co;
      if (!opts.entry.empty()) {
        const auto it = prog.symbols.find(opts.entry);
        if (it == prog.symbols.end()) {
          rep.error("bad-entry", 0,
                    "entry symbol '" + opts.entry + "' is not defined");
        } else {
          vo.entries.insert(it->second);
          co.entries.insert(it->second);
        }
      }
      if (!rep.has_errors()) {
        rep.merge(check::verify(prog, vo).report);
        const check::CostPrediction pred = check::predict_cost(prog, co);
        rep.merge(pred.report);
        if (opts.predict && !opts.quiet) {
          if (pred.complete) {
            std::printf("%s: predicted %llu instruction(s), %llu flop(s), "
                        "%llu vform(s), %s elapsed\n",
                        path.c_str(),
                        static_cast<unsigned long long>(pred.instructions),
                        static_cast<unsigned long long>(pred.flops),
                        static_cast<unsigned long long>(pred.vforms),
                        pred.elapsed.to_string().c_str());
          } else {
            std::printf("%s: prediction stops at 0x%x (%s) after %llu "
                        "instruction(s), %s elapsed — lower bound\n",
                        path.c_str(), pred.stop_addr,
                        pred.stop_reason.c_str(),
                        static_cast<unsigned long long>(pred.instructions),
                        pred.elapsed.to_string().c_str());
          }
          for (const check::LoopInfo& l : pred.loops) {
            std::printf("%s:   loop at 0x%x: %s%s%s\n", path.c_str(), l.head,
                        verdict_name(l.verdict), l.hot ? ", hot" : "",
                        l.verdict == check::LoopVerdict::kBounded
                            ? (", " + std::to_string(l.iterations) +
                               " iteration(s)")
                                  .c_str()
                            : "");
          }
        }
        if (!opts.json_out.empty()) {
          pred_json = prediction_to_json(pred);
        }
        if (!opts.against.empty()) {
          const std::optional<perf::json::Value> dump =
              fpst::tools::load_json("tcheck", opts.against);
          if (!dump) {
            v.io_failed = true;
          } else if (!validate_tisa(pred, path, *dump, opts.tolerance)) {
            v.diverged = true;
          }
        }
      }
    } catch (const cp::AsmError& e) {
      rep.error("parse-error", 0, e.what());
    }
  }

  if (json_docs != nullptr && !pred_json.is_null()) {
    perf::json::Value entry = perf::json::Value::object();
    entry["file"] = perf::json::Value::string(path);
    entry["kind"] = perf::json::Value::string(
        path.ends_with(".comm") ? "comm" : "tisa");
    entry["prediction"] = std::move(pred_json);
    json_docs->append(std::move(entry));
  }

  if (!opts.quiet) {
    std::cout << rep.to_string(path);
  }
  v.validity_errors = rep.count(check::Severity::kError,
                                check::DiagClass::kValidity);
  v.validity_warnings = rep.count(check::Severity::kWarning,
                                  check::DiagClass::kValidity);
  v.perf_errors = rep.count(check::Severity::kError,
                            check::DiagClass::kPerformance);
  v.perf_warnings = rep.count(check::Severity::kWarning,
                              check::DiagClass::kPerformance);
  const std::size_t errs = v.validity_errors + v.perf_errors;
  const std::size_t warns = v.validity_warnings + v.perf_warnings;
  const bool bad =
      errs > 0 || (opts.werror && warns > 0) || v.diverged;
  std::cout << path << ": " << (bad ? "FAILED" : "OK") << " (" << errs
            << " error(s), " << warns << " warning(s))\n";
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--entry") {
      if (i + 1 >= argc) {
        return usage();
      }
      opts.entry = argv[++i];
    } else if (arg == "--werror") {
      opts.werror = true;
    } else if (arg == "--quiet" || arg == "-q") {
      opts.quiet = true;
    } else if (arg == "--predict") {
      opts.predict = true;
    } else if (arg == "--json-out") {
      if (i + 1 >= argc) {
        return usage();
      }
      opts.json_out = argv[++i];
    } else if (arg == "--against") {
      if (i + 1 >= argc) {
        return usage();
      }
      opts.against = argv[++i];
    } else if (arg == "--tolerance") {
      if (i + 1 >= argc) {
        return usage();
      }
      opts.tolerance = std::atof(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "tcheck: unknown option '" << arg << "'\n";
      return usage();
    } else {
      opts.files.push_back(arg);
    }
  }
  if (opts.files.empty()) {
    return usage();
  }

  perf::json::Value json_docs = perf::json::Value::array();
  bool any_io_fail = false;
  bool any_validity = false;
  bool any_perf = false;
  for (const std::string& f : opts.files) {
    const FileVerdict v = check_one(
        opts, f, opts.json_out.empty() ? nullptr : &json_docs);
    any_io_fail = any_io_fail || v.io_failed;
    any_validity = any_validity || v.validity_errors > 0 ||
                   (opts.werror && v.validity_warnings > 0);
    any_perf = any_perf || v.perf_errors > 0 || v.diverged ||
               (opts.werror && v.perf_warnings > 0);
  }
  if (!opts.json_out.empty()) {
    try {
      perf::write_file(opts.json_out, json_docs);
    } catch (const std::exception& e) {
      std::cerr << opts.json_out << ": " << e.what() << "\n";
      any_io_fail = true;
    }
  }
  if (any_io_fail) {
    return 2;
  }
  if (any_validity) {
    return 1;
  }
  return any_perf ? 3 : 0;
}
