// tcheck — static verifier for TISA programs and Occam communication
// skeletons. See README "Static verification" and DESIGN.md §6.
//
//   tcheck [options] <file.tisa | file.comm>...
//
//   .tisa files are assembled and run through the control-flow /
//   abstract-stack verifier (check/tisa_verify.hpp); .comm files are
//   parsed as communication skeletons and run through the wait-for-graph
//   deadlock checker (check/chan_graph.hpp).
//
//   --entry SYM   TISA entry symbol (default: `main` if defined, else .org)
//   --werror      count warnings as errors for the exit status
//   --quiet       print nothing but the per-file verdict lines
//
// Exit status: 0 when every file is clean, 1 when any file produced an
// error (or, under --werror, a warning), 2 on usage or I/O problems.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/chan_graph.hpp"
#include "check/tisa_verify.hpp"
#include "cp/assembler.hpp"
#include "occam/commspec.hpp"

namespace {

using namespace fpst;

struct Options {
  std::string entry;
  bool werror = false;
  bool quiet = false;
  std::vector<std::string> files;
};

int usage() {
  std::cerr << "usage: tcheck [--entry SYM] [--werror] [--quiet] "
               "<file.tisa | file.comm>...\n";
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Returns false on I/O failure.
bool slurp(const std::string& path, std::string* out) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    return false;  // directories read as empty streams otherwise
  }
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

struct FileVerdict {
  std::size_t errors = 0;
  std::size_t warnings = 0;
  bool io_failed = false;
};

FileVerdict check_one(const Options& opts, const std::string& path) {
  FileVerdict v;
  std::string text;
  if (!slurp(path, &text)) {
    std::cerr << path << ": cannot read file\n";
    v.io_failed = true;
    return v;
  }

  check::Report rep;
  if (ends_with(path, ".comm")) {
    try {
      const occam::CommSpec spec = occam::parse_comm_spec(text);
      rep = check::analyze_comm(spec).report;
    } catch (const occam::CommSpecError& e) {
      rep.error("parse-error", 0, e.what());
    }
  } else {
    try {
      const cp::Program prog = cp::assemble(text);
      check::VerifyOptions vo;
      if (!opts.entry.empty()) {
        const auto it = prog.symbols.find(opts.entry);
        if (it == prog.symbols.end()) {
          rep.error("bad-entry", 0,
                    "entry symbol '" + opts.entry + "' is not defined");
        } else {
          vo.entries.insert(it->second);
        }
      }
      if (!rep.has_errors()) {
        rep.merge(check::verify(prog, vo).report);
      }
    } catch (const cp::AsmError& e) {
      rep.error("parse-error", 0, e.what());
    }
  }

  if (!opts.quiet) {
    std::cout << rep.to_string(path);
  }
  v.errors = rep.count(check::Severity::kError);
  v.warnings = rep.count(check::Severity::kWarning);
  std::cout << path << ": "
            << (v.errors == 0 && (v.warnings == 0 || !opts.werror)
                    ? "OK"
                    : "FAILED")
            << " (" << v.errors << " error(s), " << v.warnings
            << " warning(s))\n";
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--entry") {
      if (i + 1 >= argc) {
        return usage();
      }
      opts.entry = argv[++i];
    } else if (arg == "--werror") {
      opts.werror = true;
    } else if (arg == "--quiet" || arg == "-q") {
      opts.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "tcheck: unknown option '" << arg << "'\n";
      return usage();
    } else {
      opts.files.push_back(arg);
    }
  }
  if (opts.files.empty()) {
    return usage();
  }

  bool any_io_fail = false;
  bool any_bad = false;
  for (const std::string& f : opts.files) {
    const FileVerdict v = check_one(opts, f);
    any_io_fail = any_io_fail || v.io_failed;
    any_bad =
        any_bad || v.errors > 0 || (opts.werror && v.warnings > 0);
  }
  if (any_io_fail) {
    return 2;
  }
  return any_bad ? 1 : 0;
}
