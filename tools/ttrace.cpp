// ttrace — inspect a tperf dump (see src/perf/chrome_trace.hpp for the
// format; any instrumented bench or example writes one via --json or a
// path argument).
//
// Prints the machine-wide utilization report: per-node VPU/CP busy and
// overlap fractions, measured MFLOPS against the 16 MFLOPS/node ceiling,
// per-link saturation against 0.5 MB/s, and the paper's 1:13:130 balance
// verdicts. The same file opens unmodified in chrome://tracing or Perfetto
// for the span timeline view.
//
// Exit codes: 0 report printed (balance violations included), 1 balance
// violation with --fail-on-violation, 2 usage or unreadable dump.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "perf/chrome_trace.hpp"
#include "perf/report.hpp"
#include "perf/tscope.hpp"
#include "tool_util.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: ttrace [options] <dump.json>\n"
               "\n"
               "  --metric <name>       print a single value and exit:\n"
               "                        active_mflops | aggregate_mflops |\n"
               "                        total_flops | wall_us\n"
               "  --messages            message-flight report (latency\n"
               "                        percentiles, critical path) instead\n"
               "                        of the utilization report\n"
               "  --summary             per-node message table\n"
               "  --fail-on-violation   exit 1 when a balance rule is "
               "violated\n"
               "  -h, --help            this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string metric;
  std::string path;
  bool fail_on_violation = false;
  bool messages = false;
  bool summary = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    }
    if (arg == "--fail-on-violation") {
      fail_on_violation = true;
    } else if (arg == "--messages") {
      messages = true;
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--metric") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ttrace: --metric needs a name\n");
        return 2;
      }
      metric = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ttrace: unknown option %s\n", arg.c_str());
      usage(stderr);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "ttrace: more than one dump file given\n");
      return 2;
    }
  }
  if (path.empty()) {
    usage(stderr);
    return 2;
  }

  const std::optional<fpst::perf::Dump> loaded =
      fpst::tools::load_dump("ttrace", path);
  if (!loaded) {
    return 2;
  }
  const fpst::perf::Dump& dump = *loaded;
  if (dump.spans_dropped > 0) {
    std::fprintf(stderr,
                 "ttrace: warning: %llu timeline spans were dropped (ring "
                 "capacity %llu) — span-derived views are incomplete\n",
                 static_cast<unsigned long long>(dump.spans_dropped),
                 static_cast<unsigned long long>(dump.span_capacity));
  }

  if (messages || summary) {
    const fpst::perf::MessageReport mr = fpst::perf::analyze_messages(dump);
    if (messages) {
      std::fputs(fpst::perf::render_messages(mr).c_str(), stdout);
    }
    if (summary) {
      std::fputs(fpst::perf::render_message_summary(mr).c_str(), stdout);
    }
    return 0;
  }

  const fpst::perf::MachineReport report = fpst::perf::analyze(dump);

  if (!metric.empty()) {
    fpst::tools::MetricTable table;
    table.add("active_mflops",
              [&] { return fpst::tools::fmt_f6(report.active_mflops); });
    table.add("aggregate_mflops",
              [&] { return fpst::tools::fmt_f6(report.aggregate_mflops); });
    table.add("total_flops",
              [&] { return fpst::tools::fmt_u64(report.total_flops); });
    table.add("wall_us", [&] { return fpst::tools::fmt_f6(report.wall.us()); });
    return table.print("ttrace", metric);
  }

  std::fputs(fpst::perf::render(report).c_str(), stdout);
  if (fail_on_violation && !report.balance_ok()) {
    return 1;
  }
  return 0;
}
