#!/usr/bin/env sh
# Run clang-tidy (config: .clang-tidy at the repo root) over the simulator
# sources using the compile database exported by the CMake build.
#
#   usage: tools/run-tidy.sh [build-dir]
#
# Exits 0 and skips when clang-tidy is not installed, so CI images without
# LLVM still pass; exits 1 on findings when it is available.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

tidy=$(command -v clang-tidy || true)
if [ -z "$tidy" ]; then
  echo "run-tidy: clang-tidy not found on PATH; skipping (not a failure)"
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run-tidy: $build_dir/compile_commands.json missing." >&2
  echo "run-tidy: configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 1
fi

# First-party translation units only: everything the compile database knows
# about under src/, tools/, tests/ and bench/ (skips _deps and generated
# files).
files=$(sed -n 's/^ *"file": "\(.*\)",*$/\1/p' \
          "$build_dir/compile_commands.json" \
        | grep -E "^$repo_root/(src|tools|tests|bench)/" | sort -u)

if [ -z "$files" ]; then
  echo "run-tidy: no first-party files in compile database" >&2
  exit 1
fi

# The static-analysis subsystem polices the rest of the tree, so it is held
# to the strictest bar: any clang-tidy finding in src/check is a hard
# failure, not just a report.
check_files=$(echo "$files" | grep -E "^$repo_root/src/check/" || true)
if [ -n "$check_files" ]; then
  echo "run-tidy: src/check blocking pass" \
       "($(echo "$check_files" | wc -l) translation units)"
  # shellcheck disable=SC2086 — word-splitting of $check_files is intended.
  "$tidy" -p "$build_dir" --quiet --warnings-as-errors='*' $check_files
fi

echo "run-tidy: $(echo "$files" | wc -l) translation units"
# shellcheck disable=SC2086 — word-splitting of $files is intended.
exec "$tidy" -p "$build_dir" --quiet $files
