// Shared plumbing for the CLI tools (ttrace, tscope, tcheck, tsim).
//
// Every tool used to re-implement the same three fragments — slurp a file,
// load-and-diagnose a tperf dump, and a `--metric NAME` switch printing one
// value — and the copies had already drifted apart in error wording by the
// third tool. This header is the single implementation; tools include it
// directly (the tools are leaf binaries, so a header-only helper keeps the
// build graph flat).
//
// Conventions the helpers encode:
//   * diagnostics go to stderr as "<tool>: <message>";
//   * exit code 2 means usage / unreadable input, and the helpers return 2
//     (never exit()) so each tool keeps control of its own exit paths;
//   * metric values print one per line, machine-consumable (ci.sh awk).
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "perf/chrome_trace.hpp"
#include "perf/json.hpp"

namespace fpst::tools {

/// Read a whole regular file. Returns false on any I/O failure (including
/// `path` being a directory, which an ifstream would read as empty).
inline bool slurp(const std::string& path, std::string* out) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    return false;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Slurp + parse a JSON document, with "<tool>: ..." diagnostics on
/// stderr. nullopt on failure.
inline std::optional<perf::json::Value> load_json(const char* tool,
                                                  const std::string& path) {
  std::string text;
  if (!slurp(path, &text)) {
    std::fprintf(stderr, "%s: cannot read %s\n", tool, path.c_str());
    return std::nullopt;
  }
  try {
    return perf::json::Value::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s: %s\n", tool, path.c_str(), e.what());
    return std::nullopt;
  }
}

/// Load a tperf dump, with diagnostics. nullopt on failure.
inline std::optional<perf::Dump> load_dump(const char* tool,
                                           const std::string& path) {
  try {
    return perf::load_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", tool, e.what());
    return std::nullopt;
  }
}

// ---- value formatting for --metric output ----

inline std::string fmt_f6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

inline std::string fmt_u64(std::uint64_t v) {
  return std::to_string(v);
}

/// `--metric NAME` dispatch table: registration order is the order the
/// usage text lists. Getters are lazy, so registering a metric costs
/// nothing unless it is asked for.
class MetricTable {
 public:
  void add(std::string name, std::function<std::string()> fn) {
    metrics_.emplace_back(std::move(name), std::move(fn));
  }

  /// Print the metric's value (one line) and return 0, or complain on
  /// stderr and return 2 for an unknown name.
  int print(const char* tool, const std::string& name) const {
    for (const auto& [n, fn] : metrics_) {
      if (n == name) {
        std::printf("%s\n", fn().c_str());
        return 0;
      }
    }
    std::fprintf(stderr, "%s: unknown metric %s (have: %s)\n", tool,
                 name.c_str(), names().c_str());
    return 2;
  }

  /// "a | b | c" — for usage strings.
  std::string names() const {
    std::string out;
    for (const auto& [n, fn] : metrics_) {
      (void)fn;
      if (!out.empty()) {
        out += " | ";
      }
      out += n;
    }
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::function<std::string()>>> metrics_;
};

}  // namespace fpst::tools
