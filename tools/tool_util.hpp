// Shared plumbing for the CLI tools (ttrace, tscope, tcheck, tsim).
//
// Every tool used to re-implement the same three fragments — slurp a file,
// load-and-diagnose a tperf dump, and a `--metric NAME` switch printing one
// value — and the copies had already drifted apart in error wording by the
// third tool. This header is the single implementation; tools include it
// directly (the tools are leaf binaries, so a header-only helper keeps the
// build graph flat).
//
// Conventions the helpers encode:
//   * diagnostics go to stderr as "<tool>: <message>";
//   * exit code 2 means usage / unreadable input, and the helpers return 2
//     (never exit()) so each tool keeps control of its own exit paths;
//   * metric values print one per line, machine-consumable (ci.sh awk).
#pragma once

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "perf/chrome_trace.hpp"
#include "perf/json.hpp"

namespace fpst::tools {

/// Read a whole regular file. Returns false on any I/O failure (including
/// `path` being a directory, which an ifstream would read as empty).
inline bool slurp(const std::string& path, std::string* out) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    return false;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Slurp + parse a JSON document, with "<tool>: ..." diagnostics on
/// stderr. nullopt on failure.
inline std::optional<perf::json::Value> load_json(const char* tool,
                                                  const std::string& path) {
  std::string text;
  if (!slurp(path, &text)) {
    std::fprintf(stderr, "%s: cannot read %s\n", tool, path.c_str());
    return std::nullopt;
  }
  try {
    return perf::json::Value::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s: %s\n", tool, path.c_str(), e.what());
    return std::nullopt;
  }
}

/// Load a tperf dump, with diagnostics. nullopt on failure.
inline std::optional<perf::Dump> load_dump(const char* tool,
                                           const std::string& path) {
  try {
    return perf::load_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", tool, e.what());
    return std::nullopt;
  }
}

// ---- value formatting for --metric output ----

inline std::string fmt_f6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

inline std::string fmt_u64(std::uint64_t v) {
  return std::to_string(v);
}

/// `--metric NAME` dispatch table: registration order is the order the
/// usage text lists. Getters are lazy, so registering a metric costs
/// nothing unless it is asked for.
class MetricTable {
 public:
  void add(std::string name, std::function<std::string()> fn) {
    metrics_.emplace_back(std::move(name), std::move(fn));
  }

  /// Print the metric's value (one line) and return 0, or complain on
  /// stderr and return 2 for an unknown name.
  int print(const char* tool, const std::string& name) const {
    for (const auto& [n, fn] : metrics_) {
      if (n == name) {
        std::printf("%s\n", fn().c_str());
        return 0;
      }
    }
    std::fprintf(stderr, "%s: unknown metric %s (have: %s)\n", tool,
                 name.c_str(), names().c_str());
    return 2;
  }

  /// "a | b | c" — for usage strings.
  std::string names() const {
    std::string out;
    for (const auto& [n, fn] : metrics_) {
      (void)fn;
      if (!out.empty()) {
        out += " | ";
      }
      out += n;
    }
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::function<std::string()>>> metrics_;
};

// ---- AF_UNIX ndjson plumbing (tsim server + client, tmon client) ----
//
// The tsim wire protocol is newline-delimited JSON over a Unix stream
// socket; tmon speaks the client side of the same protocol. One
// implementation here so framing rules (including the server's
// oversized-line cap) can't drift between the two binaries.

/// Write all of `data`, absorbing short writes. False on error.
inline bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// One compact JSON document + newline — one protocol frame.
inline bool send_json_line(int fd, const perf::json::Value& v) {
  return send_all(fd, v.dump() + "\n");
}

/// Buffered newline-delimited reader over a socket fd. A non-zero
/// `max_line` bounds how long one line may grow; an over-long line makes
/// read_line() fail with oversized() set, and the stream is unusable from
/// then on (the framing cannot resynchronise).
class LineReader {
 public:
  explicit LineReader(int fd, std::size_t max_line = 0)
      : fd_{fd}, max_line_{max_line} {}

  /// False on EOF, error, or an oversized line. The returned line
  /// excludes the newline.
  bool read_line(std::string* out) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        if (max_line_ != 0 && nl > max_line_) {
          oversized_ = true;
          return false;
        }
        *out = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      if (max_line_ != 0 && buf_.size() > max_line_) {
        oversized_ = true;
        return false;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) {
        return false;
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  bool oversized() const { return oversized_; }

 private:
  int fd_;
  std::size_t max_line_;
  bool oversized_ = false;
  std::string buf_;
};

inline bool fill_unix_addr(const char* tool, const std::string& path,
                           sockaddr_un* addr) {
  if (path.size() >= sizeof addr->sun_path) {
    std::fprintf(stderr, "%s: socket path too long (%zu bytes, max %zu)\n",
                 tool, path.size(), sizeof addr->sun_path - 1);
    return false;
  }
  std::memset(addr, 0, sizeof *addr);
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

/// Connect to a Unix stream socket; -1 on failure (diagnostic printed
/// unless `quiet`).
inline int connect_unix(const char* tool, const std::string& path,
                        bool quiet = false) {
  sockaddr_un addr;
  if (!fill_unix_addr(tool, path, &addr)) {
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "%s: socket: %s\n", tool, std::strerror(errno));
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (!quiet) {
      std::fprintf(stderr, "%s: cannot connect to %s: %s\n", tool,
                   path.c_str(), std::strerror(errno));
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Bind + listen on a Unix stream socket (clearing a stale socket file
/// first); -1 on failure (diagnostic printed).
inline int listen_unix(const char* tool, const std::string& path) {
  sockaddr_un addr;
  if (!fill_unix_addr(tool, path, &addr)) {
    return -1;
  }
  ::unlink(path.c_str());  // clear a stale socket from a dead server
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "%s: socket: %s\n", tool, std::strerror(errno));
    return -1;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    std::fprintf(stderr, "%s: cannot bind %s: %s\n", tool, path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) != 0) {
    std::fprintf(stderr, "%s: listen: %s\n", tool, std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace fpst::tools
