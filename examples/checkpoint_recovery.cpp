// End-to-end resilience demo (§III): run a computation on a module, take a
// memory snapshot to the system disk, corrupt a node's DRAM (a parity-
// detectable fault), and restart from the snapshot.
//
//   $ ./checkpoint_recovery
#include <cstdio>

#include "core/checkpoint.hpp"
#include "kernels/kernels.hpp"
#include "occam/occam.hpp"

using namespace fpst;

namespace {
sim::Proc snapshot_then_done(core::CheckpointEngine* ck) {
  co_await ck->snapshot();
}
}  // namespace

int main() {
  sim::Simulator sim;
  core::TSeries machine{sim, 3};  // one module
  occam::Runtime rt{machine};
  core::CheckpointEngine ck{machine};

  // Phase 1: each node computes a result into its memory.
  constexpr std::size_t kN = 512;
  std::vector<node::Array64> data(machine.size());
  for (net::NodeId id = 0; id < machine.size(); ++id) {
    data[id] = machine.node(id).alloc64(mem::Bank::A, kN);
    std::vector<double> v(kN);
    for (std::size_t i = 0; i < kN; ++i) {
      v[i] = kernels::synth(61, id * kN + i);
    }
    machine.node(id).write64(data[id], v);
  }
  rt.run([&](occam::Ctx& ctx) -> sim::Proc {
    // Square every element in place (x := x * x).
    co_await ctx.node().vbinary(vpu::VectorForm::vmul, data[ctx.id()],
                                data[ctx.id()], data[ctx.id()]);
  });
  const std::vector<double> good = machine.node(5).read64(data[5]);
  std::printf("phase 1 complete at t = %s\n", sim.now().to_string().c_str());

  // Phase 2: snapshot — "about 15 seconds, regardless of configuration".
  sim.spawn(snapshot_then_done(&ck));
  sim.run();
  std::printf("snapshot stored on the module disk at t = %s\n",
              sim.now().to_string().c_str());

  // Phase 3: a cosmic ray flips a bit in node 5's DRAM. The per-byte
  // parity catches it on the next read.
  const std::uint32_t victim =
      mem::NodeMemory::address_of_row(data[5].first_row) + 40;
  machine.node(5).memory().corrupt_byte(victim, 3);
  (void)machine.node(5).memory().read_word(victim & ~3u);
  const auto err = machine.node(5).memory().take_parity_error();
  if (!err) {
    std::printf("ERROR: parity fault was not detected\n");
    return 1;
  }
  std::printf("parity error detected at byte 0x%06x — restarting from "
              "snapshot\n", err->byte_address);

  // Phase 4: restore the module image and verify the data survived.
  bool ok = false;
  sim.spawn([](core::CheckpointEngine* engine, bool* flag) -> sim::Proc {
    co_await engine->timed_restore(flag);
  }(&ck, &ok));
  sim.run();
  const std::vector<double> recovered = machine.node(5).read64(data[5]);
  const bool intact = ok && recovered == good;
  std::printf("restore %s at t = %s; node 5 data intact: %s\n",
              ok ? "succeeded" : "FAILED", sim.now().to_string().c_str(),
              intact ? "yes" : "NO");
  return intact ? 0 : 1;
}
