// A full cabinet (two modules, 16 nodes — the paper's tesseract) multiplies
// two 128x128 matrices: row-block decomposition with the B panel rotating
// around the Gray-code ring, double-buffered against compute.
//
//   $ ./cabinet_matmul [n]
//
// Prints achieved MFLOPS against the cabinet's 256 MFLOPS peak and checks
// the product against a host reference.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "kernels/kernels.hpp"

using namespace fpst;

int main(int argc, char** argv) {
  std::size_t n = 128;
  if (argc > 1) {
    n = static_cast<std::size_t>(std::atoll(argv[1]));
  }
  constexpr int kDim = 4;  // one cabinet: 16 nodes
  if (n % (1u << kDim) != 0) {
    std::fprintf(stderr, "n must be a multiple of 16\n");
    return 2;
  }

  std::printf("C := A * B, %zux%zu on a 16-node cabinet (4-cube)\n", n, n);
  const kernels::KernelResult r = kernels::run_matmul(kDim, n);

  std::vector<double> a(n * n);
  std::vector<double> b(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    a[i] = kernels::synth(11, i);
    b[i] = kernels::synth(12, i);
  }
  const std::vector<double> ref = kernels::host_matmul(a, b, n);
  double max_err = 0;
  for (std::size_t i = 0; i < n * n; ++i) {
    max_err = std::max(max_err, std::fabs(r.output[i] - ref[i]));
  }

  const double peak = 16.0 * (1 << kDim);
  std::printf("  simulated time : %s\n", r.elapsed.to_string().c_str());
  std::printf("  flops          : %llu (2n^3 = %llu)\n",
              static_cast<unsigned long long>(r.flops),
              static_cast<unsigned long long>(2 * n * n * n));
  std::printf("  rate           : %.2f MFLOPS of %.0f peak (%.0f%%)\n",
              r.mflops(), peak, 100.0 * r.mflops() / peak);
  std::printf("  link traffic   : %.2f MB (panel rotation)\n",
              static_cast<double>(r.link_bytes) / 1e6);
  std::printf("  max |C - ref|  : %g\n", max_err);
  std::printf("  balance check  : blk = %zu -> %zu flops per word moved "
              "(paper's rule wants >= ~130)\n",
              n / (1u << kDim), 2 * (n / (1u << kDim)));
  return max_err < 1e-9 ? 0 : 1;
}
