// Occam-style process pipeline across the Gray-code ring: a data source at
// ring position 0 streams blocks through a chain of worker nodes (each
// applies one SAXPY stage) to a sink — the systolic idiom Occam programs
// used, running over real simulated links with store-and-forward timing.
//
//   $ ./occam_pipeline [blocks] [block_elems]
#include <cstdio>
#include <cstdlib>

#include "kernels/kernels.hpp"
#include "net/hypercube.hpp"
#include "occam/occam.hpp"

using namespace fpst;

int main(int argc, char** argv) {
  std::size_t blocks = 16;
  std::size_t elems = 128;
  if (argc > 1) {
    blocks = static_cast<std::size_t>(std::atoll(argv[1]));
  }
  if (argc > 2) {
    elems = static_cast<std::size_t>(std::atoll(argv[2]));
  }

  sim::Simulator sim;
  core::TSeries machine{sim, 3};  // 8 stages around the Gray ring
  occam::Runtime rt{machine};
  const std::size_t stages = machine.size();

  // Each node stages a scratch array for its SAXPY.
  std::vector<node::Array64> bufs(stages);
  for (net::NodeId id = 0; id < stages; ++id) {
    bufs[id] = machine.node(id).alloc64(mem::Bank::A, elems);
  }

  std::vector<double> sink_checksums;
  const sim::SimTime elapsed = rt.run([&](occam::Ctx& ctx) -> sim::Proc {
    const std::size_t pos = net::gray_inverse(ctx.id());
    const net::NodeId next =
        net::gray(static_cast<std::uint32_t>((pos + 1) % stages));
    const net::NodeId prev = net::gray(
        static_cast<std::uint32_t>((pos + stages - 1) % stages));
    for (std::size_t b = 0; b < blocks; ++b) {
      std::vector<double> data;
      if (pos == 0) {
        data.resize(elems);
        for (std::size_t i = 0; i < elems; ++i) {
          data[i] = kernels::synth(71, b * elems + i);
        }
      } else {
        co_await ctx.recv(prev, 42, &data);
      }
      if (pos + 1 < stages) {
        // Worker stage: y := 1.01*y + stage_bias, then pass downstream.
        ctx.node().write64(bufs[ctx.id()], data);
        co_await ctx.node().vscalar(vpu::VectorForm::vsmul, 1.01,
                                    bufs[ctx.id()], node::Array64{},
                                    bufs[ctx.id()]);
        data = ctx.node().read64(bufs[ctx.id()]);
        co_await ctx.send(next, 42, std::move(data));
      } else {
        // Sink: reduce the block to a checksum.
        double sum = 0;
        for (double v : data) {
          sum += v;
        }
        sink_checksums.push_back(sum);
      }
    }
  });

  std::printf("pipeline of %zu stages processed %zu blocks x %zu elements\n",
              stages, blocks, elems);
  std::printf("  simulated time      : %s\n", elapsed.to_string().c_str());
  std::printf("  per-block pipeline  : ~%s once full\n",
              ((elapsed) / static_cast<std::int64_t>(blocks))
                  .to_string()
                  .c_str());
  std::printf("  sink saw %zu blocks; first checksum %.6f, last %.6f\n",
              sink_checksums.size(), sink_checksums.front(),
              sink_checksums.back());
  return sink_checksums.size() == blocks ? 0 : 1;
}
