// Distributed FFT on the cube: radix-2 DIF butterflies whose cross-node
// stages are exactly the hypercube's edges (Figure 3's "even FFT butterfly
// connections of radix 2").
//
//   $ ./fft_hypercube [log2_points] [dim]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "kernels/kernels.hpp"

using namespace fpst;

int main(int argc, char** argv) {
  int log2_n = 12;
  int dim = 3;
  if (argc > 1) {
    log2_n = std::atoi(argv[1]);
  }
  if (argc > 2) {
    dim = std::atoi(argv[2]);
  }
  const std::size_t n = std::size_t{1} << log2_n;

  std::printf("FFT of %zu complex points on a %d-cube (%d nodes)\n", n, dim,
              1 << dim);
  const kernels::KernelResult r = kernels::run_fft(dim, n);

  // Host reference.
  std::vector<double> re(n);
  std::vector<double> im(n);
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = kernels::synth(21, i);
    im[i] = kernels::synth(22, i);
  }
  kernels::host_fft(re, im);
  double max_err = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_err = std::max(max_err, std::fabs(r.output[2 * i] - re[i]));
    max_err = std::max(max_err, std::fabs(r.output[2 * i + 1] - im[i]));
  }

  std::printf("  cross-node stages : %d (cube edges, one neighbour each)\n",
              dim);
  std::printf("  local stages      : %d\n", log2_n - dim);
  std::printf("  simulated time    : %s\n", r.elapsed.to_string().c_str());
  std::printf("  vector-form flops : %llu\n",
              static_cast<unsigned long long>(r.flops));
  std::printf("  link traffic      : %.2f KB\n",
              static_cast<double>(r.link_bytes) / 1e3);
  std::printf("  max |X - ref|     : %g\n", max_err);
  return max_err < 1e-6 ? 0 : 1;
}
