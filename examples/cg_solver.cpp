// Conjugate-gradient solver on the T Series — a complete scientific
// application composed from the machine's primitives: VDOT reductions with
// hypercube allreduce, VSAXPY updates, and a row-block matrix-vector
// product whose direction vector is re-assembled each iteration with a
// dimension-exchange allgather.
//
//   $ ./cg_solver [n] [dim] [iters]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "kernels/kernels.hpp"
#include "occam/occam.hpp"

using namespace fpst;

namespace {

/// Dense SPD test matrix: A = D + 0.5 (S + S^T) with dominant diagonal.
double a_elem(std::size_t i, std::size_t j, std::size_t n) {
  const double s = kernels::synth(81, i * n + j);
  const double t = kernels::synth(81, j * n + i);
  const double off = 0.25 * (s + t);
  return i == j ? static_cast<double>(n) + 1.0 + off : off;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 128;
  int dim = 3;
  int iters = 20;
  if (argc > 1) {
    n = static_cast<std::size_t>(std::atoll(argv[1]));
  }
  if (argc > 2) {
    dim = std::atoi(argv[2]);
  }
  if (argc > 3) {
    iters = std::atoi(argv[3]);
  }

  sim::Simulator sim;
  core::TSeries machine{sim, dim};
  occam::Runtime rt{machine};
  const std::size_t nodes = machine.size();
  if (n % nodes != 0) {
    std::fprintf(stderr, "n must divide by %zu\n", nodes);
    return 2;
  }
  const std::size_t blk = n / nodes;

  // Per-node state: owned matrix rows (in node memory), block vectors
  // x, r, p_blk, q, and a staged full-length p for the matvec.
  struct NodeState {
    std::vector<node::Array64> a_rows;
    node::Array64 x, r, pb, q, scratch;
    node::Array64 p_full;
    std::vector<double> host_p;  // full direction vector (mirror)
  };
  std::vector<NodeState> st(nodes);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = kernels::synth(82, i);
  }
  for (std::size_t id = 0; id < nodes; ++id) {
    NodeState& s = st[id];
    node::Node& nd = machine.node(static_cast<net::NodeId>(id));
    for (std::size_t li = 0; li < blk; ++li) {
      const std::size_t gi = id * blk + li;
      s.a_rows.push_back(nd.alloc64(mem::Bank::A, n));
      std::vector<double> row(n);
      for (std::size_t j = 0; j < n; ++j) {
        row[j] = a_elem(gi, j, n);
      }
      nd.write64(s.a_rows.back(), row);
    }
    s.x = nd.alloc64(mem::Bank::B, blk);
    s.r = nd.alloc64(mem::Bank::B, blk);
    s.pb = nd.alloc64(mem::Bank::B, blk);
    s.q = nd.alloc64(mem::Bank::B, blk);
    s.scratch = nd.alloc64(mem::Bank::B, blk);
    s.p_full = nd.alloc64(mem::Bank::B, n);
    std::vector<double> zero(blk, 0.0);
    nd.write64(s.x, zero);
    std::vector<double> rb(blk);
    for (std::size_t li = 0; li < blk; ++li) {
      rb[li] = b[id * blk + li];
    }
    nd.write64(s.r, rb);   // r = b - A*0 = b
    nd.write64(s.pb, rb);  // p = r
  }

  std::vector<double> residual_history;
  const sim::SimTime elapsed = rt.run([&](occam::Ctx& ctx) -> sim::Proc {
    NodeState& s = st[ctx.id()];
    node::Node& nd = ctx.node();

    double rs = 0;
    co_await nd.vreduce(vpu::VectorForm::vdot, s.r, s.r, &rs);
    co_await ctx.allreduce_sum(&rs);

    for (int it = 0; it < iters; ++it) {
      // Allgather p: pad the local block into a full-length vector and
      // dimension-exchange sum (zeros elsewhere).
      std::vector<double> p_pad(n, 0.0);
      const std::vector<double> pb = nd.read64(s.pb);
      for (std::size_t li = 0; li < blk; ++li) {
        p_pad[ctx.id() * blk + li] = pb[li];
      }
      co_await ctx.allreduce_sum(&p_pad);
      s.host_p = p_pad;
      nd.write64(s.p_full, s.host_p);
      co_await nd.row_move(s.p_full.rows());  // stage p through the regs

      // q = A_rows * p: one VDOT per owned row.
      std::vector<double> qv(blk);
      for (std::size_t li = 0; li < blk; ++li) {
        co_await nd.vreduce(vpu::VectorForm::vdot, s.a_rows[li], s.p_full,
                            &qv[li]);
      }
      nd.write64(s.q, qv);

      double pq = 0;
      co_await nd.vreduce(vpu::VectorForm::vdot, s.pb, s.q, &pq);
      co_await ctx.allreduce_sum(&pq);
      const double alpha = rs / pq;

      co_await nd.vscalar(vpu::VectorForm::vsaxpy, alpha, s.pb, s.x, s.x);
      co_await nd.vscalar(vpu::VectorForm::vsaxpy, -alpha, s.q, s.r, s.r);

      double rs_new = 0;
      co_await nd.vreduce(vpu::VectorForm::vdot, s.r, s.r, &rs_new);
      co_await ctx.allreduce_sum(&rs_new);
      if (ctx.id() == 0) {
        residual_history.push_back(std::sqrt(rs_new));
      }
      const double beta = rs_new / rs;
      rs = rs_new;
      // p = r + beta p  (scale p then add r).
      co_await nd.vscalar(vpu::VectorForm::vsmul, beta, s.pb, node::Array64{},
                          s.scratch);
      co_await nd.vbinary(vpu::VectorForm::vadd, s.scratch, s.r, s.pb);
    }
  });

  // Verify: assemble x and check the true residual on the host.
  std::vector<double> x(n);
  for (std::size_t id = 0; id < nodes; ++id) {
    const std::vector<double> xb =
        machine.node(static_cast<net::NodeId>(id)).read64(st[id].x);
    for (std::size_t li = 0; li < blk; ++li) {
      x[id * blk + li] = xb[li];
    }
  }
  double true_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double ax = 0;
    for (std::size_t j = 0; j < n; ++j) {
      ax += a_elem(i, j, n) * x[j];
    }
    true_res += (b[i] - ax) * (b[i] - ax);
  }
  true_res = std::sqrt(true_res);

  std::printf("CG on a %zux%zu SPD system, %d iterations, %zu nodes\n", n, n,
              iters, nodes);
  std::printf("  simulated time : %s (%.2f MFLOPS aggregate)\n",
              elapsed.to_string().c_str(),
              static_cast<double>(machine.total_flops()) / elapsed.us());
  std::printf("  residual: start %.3e -> end %.3e (true: %.3e)\n",
              residual_history.front(), residual_history.back(), true_res);
  std::printf("  link traffic   : %.1f KB (allgather + scalars)\n",
              static_cast<double>(machine.total_link_bytes()) / 1e3);
  const bool converged = true_res < 1e-8;
  std::printf("  converged to 1e-8: %s\n", converged ? "yes" : "NO");
  return converged ? 0 : 1;
}
