// The full software stack in one program: a MOCC (mini-Occam) source with
// parallel communicating processes is compiled to TISA, loaded on a
// simulated node, and run — including a vector form dispatched from the
// high-level language, the paper's central programming claim.
//
//   $ ./mocc_demo
#include <cstdio>

#include "mocc/mocc.hpp"
#include "node/node.hpp"

using namespace fpst;

int main() {
  const std::string source = R"(
    // Three communicating processes compute sum(i*i, i=1..10) in a
    // pipeline, then the main process asks the vector unit for a
    // 16-element SAXPY.
    chan squares;
    chan results;
    global pipeline_out;

    proc squarer() {
      var i = 1;
      while (i <= 10) {
        send(squares, i * i);
        i = i + 1;
      }
    }

    proc accumulator() {
      var total = 0;
      var n = 0;
      var v;
      while (n < 10) {
        recv(squares, v);
        total = total + v;
        n = n + 1;
      }
      send(results, total);
    }

    proc collect() {
      recv(results, pipeline_out);
    }

    proc main() {
      par { squarer(); accumulator(); collect(); }
      poke(0x2000, pipeline_out);

      // Now drive the vector unit: z := 2*x + y over 16 elements.
      var d = 0x4000;
      poke(d, 5);              // VSAXPY
      poke(d + 4, 1);          // f64
      poke(d + 8, 16);
      poke(d + 12, 0);         // row_x (bank A)
      poke(d + 16, 300);       // row_y (bank B)
      poke(d + 20, 600);       // row_z
      poke(d + 24, 0);         // scalar 2.0
      poke(d + 28, 0x40000000);
      vform(d);
      vwait;
      halt;
    }
  )";

  std::printf("=== MOCC source (%zu bytes) compiles to TISA ===\n",
              source.size());
  const std::string asm_text = mocc::compile_to_asm(source);
  std::printf("%s...\n(total %zu bytes of assembly text)\n\n",
              asm_text.substr(0, 480).c_str(), asm_text.size());

  sim::Simulator sim;
  node::Node nd{sim, 0};
  mem::VectorRegister rx;
  mem::VectorRegister ry;
  for (std::size_t i = 0; i < 16; ++i) {
    rx.set_f64(i, fp::T64::from_double(static_cast<double>(i)));
    ry.set_f64(i, fp::T64::from_double(1.0));
  }
  nd.memory().store_row(0, rx);
  nd.memory().store_row(300, ry);

  const cp::Program prog = mocc::compile(source);
  nd.cpu().load(prog);
  nd.cpu().start_process(prog.symbol("main"), 0xA000, 1);
  sim.spawn(nd.cpu().run());
  sim.run();

  std::printf("=== execution on the simulated node ===\n");
  std::printf("halted at t = %s after %llu instructions\n",
              sim.now().to_string().c_str(),
              static_cast<unsigned long long>(
                  nd.cpu().instructions_executed()));
  const std::uint32_t pipeline = nd.cpu().read_word(0x2000);
  std::printf("pipeline result sum(i^2, 1..10) = %u (expect 385)\n",
              pipeline);
  mem::VectorRegister rz;
  nd.memory().load_row(600, rz);
  bool vec_ok = true;
  for (std::size_t i = 0; i < 16; ++i) {
    vec_ok &= rz.f64(i).to_double() == 2.0 * static_cast<double>(i) + 1.0;
  }
  std::printf("vector unit SAXPY from MOCC: %s\n",
              vec_ok ? "verified" : "WRONG");
  return (pipeline == 385 && vec_ok) ? 0 : 1;
}
