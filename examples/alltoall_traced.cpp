// alltoall_traced: the tscope observability demo and CI fixture. Runs a
// full all-to-all (every node sends one message to every other node) on a
// 4-cube with machine-wide perf collection attached, then writes a dump
// whose message-lifecycle events tscope stitches into flight records:
//
//   $ ./alltoall_traced [out.json] [dimension] [--threads N]
//                                        (default alltoall.json, 4)
//   $ tscope alltoall.json              — latency percentiles, critical path
//   $ tscope --edges alltoall.json      — congestion vs e-cube prediction
//   $ tscope --check-ecube alltoall.json
//   $ ttrace --summary alltoall.json    — per-node message table
//
// --threads 1 (the default) runs the serial engine exactly as before;
// --threads N>1 builds the machine over the sharded parallel engine
// (shards fixed at min(4, nodes) so the dump is identical for every
// worker-thread count).
//
// The simulation is deterministic, so two runs of this program produce
// byte-identical dumps — ci.sh diffs them to pin that property, serial and
// parallel alike.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "link/link.hpp"
#include "occam/occam.hpp"
#include "perf/chrome_trace.hpp"
#include "perf/counters.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/proc.hpp"

using namespace fpst;

namespace {

constexpr std::uint16_t kTag = 7;
constexpr std::size_t kElems = 16;  // doubles per message

sim::Proc drain(occam::Ctx* ctx, std::size_t peers, double* sum) {
  for (std::size_t i = 0; i < peers; ++i) {
    occam::Msg m;
    co_await ctx->recv_any(kTag, &m);
    for (const double v : m.data) {
      *sum += v;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 1;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc || (threads = std::atoi(argv[++i])) < 1) {
        std::fprintf(stderr,
                     "usage: alltoall_traced [out.json] [dimension] "
                     "[--threads N]\n");
        return 2;
      }
    } else {
      pos.push_back(arg);
    }
  }
  const std::string out = !pos.empty() ? pos[0] : "alltoall.json";
  const int dim = pos.size() > 1 ? std::atoi(pos[1].c_str()) : 4;

  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<sim::ParallelSim> psim;
  std::unique_ptr<core::TSeries> machine_ptr;
  if (threads > 1) {
    sim::ParallelSim::Options po;
    po.shards = std::min(4, 1 << dim);
    po.threads = threads;
    po.lookahead = link::LinkParams::transfer_time(0);
    psim = std::make_unique<sim::ParallelSim>(po);
    machine_ptr = std::make_unique<core::TSeries>(*psim, dim);
  } else {
    sim = std::make_unique<sim::Simulator>();
    machine_ptr = std::make_unique<core::TSeries>(*sim, dim);
  }
  core::TSeries& machine = *machine_ptr;
  perf::CounterRegistry reg;
  machine.enable_perf(reg);
  reg.meta().workload = "alltoall d=" + std::to_string(dim);
  occam::Runtime rt{machine};

  const std::size_t n = machine.size();
  std::vector<double> sums(n, 0.0);
  const sim::SimTime elapsed = rt.run([&](occam::Ctx& ctx) -> sim::Proc {
    std::vector<sim::Proc> par;
    // Shifted send order (id+1, id+2, ...) so no destination is hit by
    // every source at once; receives drain concurrently.
    for (std::size_t rel = 1; rel < n; ++rel) {
      const net::NodeId peer =
          static_cast<net::NodeId>((ctx.id() + rel) % n);
      std::vector<double> payload(kElems, 1.0 + ctx.id());
      par.push_back(ctx.send(peer, kTag, std::move(payload)));
    }
    par.push_back(drain(&ctx, n - 1, &sums[ctx.id()]));
    co_await sim::WhenAll{std::move(par)};
  });

  // Node i receives kElems * (1 + j) from every j != i.
  double expect_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expect_total += static_cast<double>(kElems) * (1.0 + static_cast<double>(i));
  }
  expect_total *= static_cast<double>(n - 1);
  double total = 0;
  for (const double s : sums) {
    total += s;
  }

  perf::json::Value doc = perf::to_json(reg, elapsed);
  perf::json::Value results = perf::json::Value::object();
  results["received_sum"] = perf::json::Value::number(total);
  results["elapsed_us"] = perf::json::Value::number(elapsed.us());
  doc["results"] = std::move(results);
  perf::write_file(out, doc);

  std::printf("all-to-all on %zu nodes (%d-cube): %zu messages, %s simulated\n",
              n, dim, n * (n - 1), elapsed.to_string().c_str());
  std::printf("wrote %s — tscope/ttrace/chrome://tracing will read it\n",
              out.c_str());
  if (total != expect_total) {
    std::printf("checksum MISMATCH: got %.1f expect %.1f\n", total,
                expect_total);
    return 1;
  }
  return 0;
}
