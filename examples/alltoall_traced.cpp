// alltoall_traced: the tscope observability demo and CI fixture. Runs a
// full all-to-all (every node sends one message to every other node) on a
// 4-cube with machine-wide perf collection attached, then writes a dump
// whose message-lifecycle events tscope stitches into flight records:
//
//   $ ./alltoall_traced [out.json] [dimension]   (default alltoall.json, 4)
//   $ tscope alltoall.json              — latency percentiles, critical path
//   $ tscope --edges alltoall.json      — congestion vs e-cube prediction
//   $ tscope --check-ecube alltoall.json
//   $ ttrace --summary alltoall.json    — per-node message table
//
// The simulation is deterministic, so two runs of this program produce
// byte-identical dumps — ci.sh diffs them to pin that property.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "occam/occam.hpp"
#include "perf/chrome_trace.hpp"
#include "perf/counters.hpp"
#include "sim/proc.hpp"

using namespace fpst;

namespace {

constexpr std::uint16_t kTag = 7;
constexpr std::size_t kElems = 16;  // doubles per message

sim::Proc drain(occam::Ctx* ctx, std::size_t peers, double* sum) {
  for (std::size_t i = 0; i < peers; ++i) {
    occam::Msg m;
    co_await ctx->recv_any(kTag, &m);
    for (const double v : m.data) {
      *sum += v;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "alltoall.json";
  const int dim = argc > 2 ? std::atoi(argv[2]) : 4;

  sim::Simulator sim;
  core::TSeries machine{sim, dim};
  perf::CounterRegistry reg;
  machine.enable_perf(reg);
  reg.meta().workload = "alltoall d=" + std::to_string(dim);
  occam::Runtime rt{machine};

  const std::size_t n = machine.size();
  std::vector<double> sums(n, 0.0);
  const sim::SimTime elapsed = rt.run([&](occam::Ctx& ctx) -> sim::Proc {
    std::vector<sim::Proc> par;
    // Shifted send order (id+1, id+2, ...) so no destination is hit by
    // every source at once; receives drain concurrently.
    for (std::size_t rel = 1; rel < n; ++rel) {
      const net::NodeId peer =
          static_cast<net::NodeId>((ctx.id() + rel) % n);
      std::vector<double> payload(kElems, 1.0 + ctx.id());
      par.push_back(ctx.send(peer, kTag, std::move(payload)));
    }
    par.push_back(drain(&ctx, n - 1, &sums[ctx.id()]));
    co_await sim::WhenAll{std::move(par)};
  });

  // Node i receives kElems * (1 + j) from every j != i.
  double expect_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expect_total += static_cast<double>(kElems) * (1.0 + static_cast<double>(i));
  }
  expect_total *= static_cast<double>(n - 1);
  double total = 0;
  for (const double s : sums) {
    total += s;
  }

  perf::json::Value doc = perf::to_json(reg, elapsed);
  perf::json::Value results = perf::json::Value::object();
  results["received_sum"] = perf::json::Value::number(total);
  results["elapsed_us"] = perf::json::Value::number(elapsed.us());
  doc["results"] = std::move(results);
  perf::write_file(out, doc);

  std::printf("all-to-all on %zu nodes (%d-cube): %zu messages, %s simulated\n",
              n, dim, n * (n - 1), elapsed.to_string().c_str());
  std::printf("wrote %s — tscope/ttrace/chrome://tracing will read it\n",
              out.c_str());
  if (total != expect_total) {
    std::printf("checksum MISMATCH: got %.1f expect %.1f\n", total,
                expect_total);
    return 1;
  }
  return 0;
}
