// Quickstart: build a one-module T Series (a 3-cube of eight nodes), put a
// vector problem on it with the Occam-flavoured runtime, and read the
// machine's own answers back.
//
//   $ ./quickstart
//
// Tour: TSeries (machine) -> Runtime (one coroutine body per node) ->
// Node::alloc64/write64 (stage data) -> vscalar/vreduce (timed vector
// forms) -> allreduce (cube collective).
#include <cstdio>
#include <vector>

#include "kernels/kernels.hpp"
#include "occam/occam.hpp"

using namespace fpst;

int main() {
  // An 8-node module: 128 MFLOPS peak, 8 MB of user RAM.
  sim::Simulator sim;
  core::TSeries machine{sim, /*dimension=*/3};
  occam::Runtime rt{machine};
  std::printf("built a %d-cube: %zu nodes, %zu module(s), %.0f MFLOPS peak\n",
              machine.dimension(), machine.size(), machine.module_count(),
              static_cast<double>(machine.size()) * vpu::VpuParams::peak_mflops());

  // Distribute x and y (1024 elements per node), then run y := 2x + y and
  // a global dot product.
  constexpr std::size_t kPerNode = 1024;
  std::vector<node::Array64> xs(machine.size());
  std::vector<node::Array64> ys(machine.size());
  std::vector<node::Array64> zs(machine.size());
  for (net::NodeId id = 0; id < machine.size(); ++id) {
    node::Node& nd = machine.node(id);
    xs[id] = nd.alloc64(mem::Bank::A, kPerNode);
    ys[id] = nd.alloc64(mem::Bank::B, kPerNode);
    zs[id] = nd.alloc64(mem::Bank::B, kPerNode);
    std::vector<double> xv(kPerNode);
    std::vector<double> yv(kPerNode);
    for (std::size_t i = 0; i < kPerNode; ++i) {
      xv[i] = kernels::synth(1, id * kPerNode + i);
      yv[i] = kernels::synth(2, id * kPerNode + i);
    }
    nd.write64(xs[id], xv);
    nd.write64(ys[id], yv);
  }

  std::vector<double> dots(machine.size());
  const sim::SimTime elapsed = rt.run([&](occam::Ctx& ctx) -> sim::Proc {
    node::Node& nd = ctx.node();
    // SEQ: a SAXPY form, then a dot-product reduction, then the cube-wide
    // sum (log2 N exchange steps).
    co_await nd.vscalar(vpu::VectorForm::vsaxpy, 2.0, xs[ctx.id()],
                        ys[ctx.id()], zs[ctx.id()]);
    double local = 0;
    co_await nd.vreduce(vpu::VectorForm::vdot, zs[ctx.id()], xs[ctx.id()],
                        &local);
    co_await ctx.allreduce_sum(&local);
    dots[ctx.id()] = local;
  });

  std::printf("ran SAXPY + distributed dot on %zu elements in %s simulated\n",
              machine.size() * kPerNode, elapsed.to_string().c_str());
  std::printf("global dot(z, x) = %.12f (every node agrees: %s)\n", dots[0],
              std::equal(dots.begin() + 1, dots.end(), dots.begin())
                  ? "yes"
                  : "no");

  // Verify one node's block against the host.
  const std::vector<double> z0 = machine.node(0).read64(zs[0]);
  bool ok = true;
  for (std::size_t i = 0; i < kPerNode; ++i) {
    ok &= z0[i] == 2.0 * kernels::synth(1, i) + kernels::synth(2, i);
  }
  std::printf("node 0 block verified against host arithmetic: %s\n",
              ok ? "exact match" : "MISMATCH");
  std::printf("machine totals: %llu flops, %llu link bytes\n",
              static_cast<unsigned long long>(machine.total_flops()),
              static_cast<unsigned long long>(machine.total_link_bytes()));
  return ok ? 0 : 1;
}
