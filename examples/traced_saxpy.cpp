// traced_saxpy: the tperf observability demo. Runs a gather-overlapped
// SAXPY workload plus a cube-wide reduction on a 2-cube with machine-wide
// perf collection attached, then writes a dump that is simultaneously a
// Chrome trace and a ttrace/CI input:
//
//   $ ./traced_saxpy [out.json] [--threads N]  (default ./traced_saxpy.json)
//   $ ttrace traced_saxpy.json      — utilization + balance report
//   open the same file in chrome://tracing or https://ui.perfetto.dev
//
// --threads 1 (the default) runs the serial engine exactly as before;
// --threads N>1 builds the machine over the sharded parallel engine
// (shards fixed at min(4, nodes) so the dump is identical for every
// worker-thread count).
//
// Every vector form here is a full 128-element VSAXPY, so the report's
// vpu-active MFLOPS must equal bench_fig1_node's 128-element SAXPY rate —
// ci.sh asserts that equivalence to within 1%.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "link/link.hpp"
#include "occam/occam.hpp"
#include "perf/chrome_trace.hpp"
#include "perf/counters.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/proc.hpp"

using namespace fpst;

namespace {

constexpr int kStripes = 6;
constexpr int kSaxpysPerStripe = 8;
constexpr std::size_t kElems = 128;  // one full 64-bit row

}  // namespace

int main(int argc, char** argv) {
  int threads = 1;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc || (threads = std::atoi(argv[++i])) < 1) {
        std::fprintf(stderr, "usage: traced_saxpy [out.json] [--threads N]\n");
        return 2;
      }
    } else {
      pos.push_back(arg);
    }
  }
  const std::string out = !pos.empty() ? pos[0] : "traced_saxpy.json";
  constexpr int kDim = 2;

  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<sim::ParallelSim> psim;
  std::unique_ptr<core::TSeries> machine_ptr;
  if (threads > 1) {
    sim::ParallelSim::Options po;
    po.shards = std::min(4, 1 << kDim);
    po.threads = threads;
    po.lookahead = link::LinkParams::transfer_time(0);
    psim = std::make_unique<sim::ParallelSim>(po);
    machine_ptr = std::make_unique<core::TSeries>(*psim, kDim);
  } else {
    sim = std::make_unique<sim::Simulator>();
    machine_ptr = std::make_unique<core::TSeries>(*sim, kDim);
  }
  core::TSeries& machine = *machine_ptr;
  perf::CounterRegistry reg;
  machine.enable_perf(reg);
  reg.meta().workload = "traced_saxpy";
  occam::Runtime rt{machine};

  std::vector<node::Array64> xs(machine.size());
  std::vector<node::Array64> ys(machine.size());
  std::vector<node::Array64> zs(machine.size());
  for (net::NodeId id = 0; id < machine.size(); ++id) {
    node::Node& nd = machine.node(id);
    xs[id] = nd.alloc64(mem::Bank::A, kElems);
    ys[id] = nd.alloc64(mem::Bank::B, kElems);
    zs[id] = nd.alloc64(mem::Bank::B, kElems);
    std::vector<double> v(kElems, 1.0 + id);
    nd.write64(xs[id], v);
    nd.write64(ys[id], v);
  }

  std::vector<double> sums(machine.size());
  const sim::SimTime elapsed = rt.run([&](occam::Ctx& ctx) -> sim::Proc {
    node::Node& nd = ctx.node();
    // The paper's overlap discipline: while the pipes run this stripe's
    // VSAXPYs, the control processor gathers the next stripe's operands.
    for (int s = 0; s < kStripes; ++s) {
      std::vector<sim::Proc> par;
      par.push_back(nd.gather(kElems));
      par.push_back([](node::Node* n, node::Array64 x, node::Array64 y,
                       node::Array64 z) -> sim::Proc {
        for (int i = 0; i < kSaxpysPerStripe; ++i) {
          co_await n->vscalar(vpu::VectorForm::vsaxpy, 2.0, x, y, z);
        }
      }(&nd, xs[ctx.id()], ys[ctx.id()], zs[ctx.id()]));
      co_await sim::WhenAll{std::move(par)};
    }
    // A cube collective so the dump has link traffic too. The reduction is
    // host-side adds plus exchanges — no vector-unit work, which keeps the
    // vpu-active MFLOPS a pure 128-element VSAXPY measurement.
    double local = 1.0 + ctx.id();
    co_await ctx.allreduce_sum(&local);
    sums[ctx.id()] = local;
  });

  perf::json::Value doc = perf::to_json(reg, elapsed);
  perf::json::Value results = perf::json::Value::object();
  results["allreduce_sum"] = perf::json::Value::number(sums[0]);
  results["elapsed_us"] = perf::json::Value::number(elapsed.us());
  doc["results"] = std::move(results);
  perf::write_file(out, doc);

  std::printf("traced %d stripes x %d VSAXPY(%zu) on %zu nodes: %s simulated\n",
              kStripes, kSaxpysPerStripe, kElems, machine.size(),
              elapsed.to_string().c_str());
  std::printf("allreduce sum = %.1f (expect %.1f)\n", sums[0],
              static_cast<double>(machine.size() * (machine.size() + 1)) / 2);
  std::printf("wrote %s — ttrace or chrome://tracing will read it\n",
              out.c_str());
  return sums[0] ==
                 static_cast<double>(machine.size() * (machine.size() + 1)) / 2
             ? 0
             : 1;
}
