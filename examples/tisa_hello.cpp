// Programming the node at the instruction level: assemble a TISA program
// (the transputer-style control-processor ISA), run it on a simulated node,
// and watch it drive the vector unit with a `vform` descriptor — the same
// path an Occam compiler would use.
//
//   $ ./tisa_hello
#include <cstdio>

#include "cp/assembler.hpp"
#include "node/node.hpp"

using namespace fpst;

int main() {
  sim::Simulator sim;
  node::Node nd{sim, 0};

  // Stage two vectors in rows 0 (bank A) and 300 (bank B).
  mem::VectorRegister rx;
  mem::VectorRegister ry;
  for (std::size_t i = 0; i < 16; ++i) {
    rx.set_f64(i, fp::T64::from_double(static_cast<double>(i)));
    ry.set_f64(i, fp::T64::from_double(100.0));
  }
  nd.memory().store_row(0, rx);
  nd.memory().store_row(300, ry);

  // The program: compute 5 + 37 on the stack machine, store it, then ask
  // the vector unit for z := 2.0 * x + y over 16 elements.
  const cp::Program prog = cp::assemble(R"(
   main:
      ldc 5
      adc 37
      ldc 0x2000
      stnl 0          ; mem[0x2000] = 42

      ldc 5           ; form = VSAXPY
      ldc desc
      stnl 0
      ldc 1           ; precision = f64
      ldc desc
      stnl 1
      ldc 16          ; n
      ldc desc
      stnl 2
      ldc 0           ; row_x = 0 (bank A)
      ldc desc
      stnl 3
      ldc 300         ; row_y = 300 (bank B)
      ldc desc
      stnl 4
      ldc 600         ; row_z
      ldc desc
      stnl 5
      ldc 0           ; scalar = 2.0 (IEEE bits 0x4000000000000000)
      ldc desc
      stnl 6
      ldc 0x40000000
      ldc desc
      stnl 7
      ldc desc
      vform           ; start the micro-sequencer
      vwait           ; block until the completion interrupt
      halt
   .align            ; vform descriptors must be word-aligned
   desc:
      .space 48
  )");
  std::printf("assembled %zu bytes of TISA:\n%s\n", prog.bytes.size(),
              cp::disassemble(prog).substr(0, 400).c_str());

  nd.cpu().load(prog);
  nd.cpu().start_process(prog.entry(), 0x8000, 1);
  sim.spawn(nd.cpu().run());
  sim.run();

  std::printf("halted at t = %s after %llu instructions\n",
              sim.now().to_string().c_str(),
              static_cast<unsigned long long>(
                  nd.cpu().instructions_executed()));
  std::printf("mem[0x2000] = %u\n", nd.cpu().read_word(0x2000));
  mem::VectorRegister rz;
  nd.memory().load_row(600, rz);
  bool ok = nd.cpu().read_word(0x2000) == 42;
  std::printf("z = 2x + y: ");
  for (std::size_t i = 0; i < 16; ++i) {
    const double z = rz.f64(i).to_double();
    ok &= z == 2.0 * static_cast<double>(i) + 100.0;
    std::printf("%.0f ", z);
  }
  std::printf("\nresult %s\n", ok ? "verified" : "WRONG");
  return ok ? 0 : 1;
}
