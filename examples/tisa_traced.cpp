// tisa_traced: run one assembled TISA program on a perf-attached node and
// dump the measurement in the tperf JSON schema — the measured half of the
// tcheck --predict cross-validation (DESIGN.md §4.4).
//
//   $ ./tisa_traced prog.tisa [out.json]     (default ./tisa_traced.json)
//   $ tcheck --predict prog.tisa --against out.json
//
// ci.sh runs this over examples/tisa/vform_saxpy.tisa and fails the build
// when the static prediction and this measurement diverge.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cp/assembler.hpp"
#include "node/node.hpp"
#include "perf/chrome_trace.hpp"
#include "perf/counters.hpp"

using namespace fpst;

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: tisa_traced <prog.tisa> [out.json]\n");
    return 2;
  }
  const std::string path = argv[1];
  const std::string out = argc > 2 ? argv[2] : "tisa_traced.json";

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "tisa_traced: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  cp::Program prog;
  try {
    prog = cp::assemble(ss.str());
  } catch (const cp::AsmError& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return 2;
  }

  sim::Simulator sim;
  node::Node nd{sim, 0};
  perf::CounterRegistry reg;
  nd.attach_perf(reg);
  reg.meta().workload =
      "tisa_traced:" + std::filesystem::path(path).filename().string();

  // Same entry convention as tcheck: the `main` symbol when defined.
  const auto it = prog.symbols.find("main");
  const std::uint32_t entry =
      it != prog.symbols.end() ? it->second : prog.entry();
  nd.cpu().load(prog);
  nd.cpu().start_process(entry, 0x8000, 1);
  sim.spawn(nd.cpu().run());
  sim.run();

  const sim::SimTime elapsed = sim.now();
  perf::json::Value doc = perf::to_json(reg, elapsed);
  perf::json::Value results = perf::json::Value::object();
  results["elapsed_ps"] = perf::json::Value::integer(elapsed.ps());
  results["elapsed_us"] = perf::json::Value::number(elapsed.us());
  results["instructions"] = perf::json::Value::integer(
      static_cast<std::int64_t>(nd.cpu().instructions_executed()));
  doc["results"] = std::move(results);
  perf::write_file(out, doc);

  std::printf("%s: %llu instructions, %s simulated\n", path.c_str(),
              static_cast<unsigned long long>(nd.cpu().instructions_executed()),
              elapsed.to_string().c_str());
  std::printf("wrote %s — diff with `tcheck --predict %s --against %s`\n",
              out.c_str(), path.c_str(), out.c_str());
  return 0;
}
