// Tests for the control processor: assembler encodings, interpreter
// semantics, the 7.5 MIPS / 400 ns timing model, process scheduling with two
// priorities, CSP soft channels, timers, gather/scatter microcode and vector
// unit dispatch from TISA programs.
#include <gtest/gtest.h>

#include <string>

#include "cp/assembler.hpp"
#include "cp/cpu.hpp"

namespace fpst::cp {
namespace {

using namespace fpst::sim::literals;
using sim::SimTime;

// ------------------------------ assembler ---------------------------------

TEST(Assembler, MinimalEncodings) {
  EXPECT_EQ(encode(Op::ldc, 5), (std::vector<std::uint8_t>{0x45}));
  // ldc 0x123: pfix 1, pfix 2, ldc 3.
  EXPECT_EQ(encode(Op::ldc, 0x123),
            (std::vector<std::uint8_t>{0x21, 0x22, 0x43}));
  // adc -2: nfix 0, adc 14.
  EXPECT_EQ(encode(Op::adc, -2), (std::vector<std::uint8_t>{0x60, 0x8E}));
}

TEST(Assembler, EncodingsDecodeBack) {
  for (std::int32_t v : {0, 1, 15, 16, 255, 4096, 1 << 20, -1, -16, -300,
                         -65536, 0x7fffffff, -0x7fffffff}) {
    const auto bytes = encode(Op::ldc, v);
    const Decoded d = decode(bytes, 0);
    EXPECT_EQ(d.op, Op::ldc) << v;
    EXPECT_EQ(d.operand, v) << v;
    EXPECT_EQ(d.size, bytes.size()) << v;

    if (bytes.size() <= 6) {  // fixed-width encodes up to six bytes
      const auto fixed = encode_fixed(Op::ldc, v);
      ASSERT_EQ(fixed.size(), 6u);
      const Decoded df = decode(fixed, 0);
      EXPECT_EQ(df.operand, v) << "fixed-width " << v;
    }
  }
}

TEST(Assembler, LabelsAndDirectives) {
  const Program p = assemble(R"(
      .org 0x2000
   start:
      ldc data
      j start
   data:
      .word 0xdeadbeef
      .word start
  )");
  EXPECT_EQ(p.org, 0x2000u);
  EXPECT_EQ(p.symbol("start"), 0x2000u);
  const std::uint32_t data = p.symbol("data");
  // .word emits little-endian.
  const std::size_t off = data - p.org;
  EXPECT_EQ(p.bytes[off], 0xef);
  EXPECT_EQ(p.bytes[off + 3], 0xde);
}

TEST(Assembler, Errors) {
  EXPECT_THROW(assemble("bogus 1"), AsmError);
  EXPECT_THROW(assemble("ldc nolabel"), AsmError);
  EXPECT_THROW(assemble("x: ldc 1\nx: ldc 2"), AsmError);
  EXPECT_THROW(assemble("add 3"), AsmError) << "secondary ops take no operand";
  EXPECT_THROW(assemble("ldc"), AsmError) << "primary ops need an operand";
}

TEST(Assembler, DisassemblerRoundTrip) {
  const Program p = assemble("ldc 300\nadc -7\nhalt\n");
  const std::string dis = disassemble(p);
  EXPECT_NE(dis.find("ldc 300"), std::string::npos);
  EXPECT_NE(dis.find("adc -7"), std::string::npos);
  EXPECT_NE(dis.find("halt"), std::string::npos);
}

// ------------------------------ interpreter -------------------------------

class CpuTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kWptr = 0x8000;  // DRAM workspace

  /// Assemble, load, start one low-priority process, run to completion.
  Program run_source(const std::string& src, std::uint32_t wptr = kWptr) {
    Program p = assemble(src);
    cpu.load(p);
    cpu.start_process(p.entry(), wptr, 1);
    sim.spawn(cpu.run());
    sim.run();
    return p;
  }

  sim::Simulator sim;
  mem::NodeMemory memory;
  vpu::VectorUnit vpu{memory};
  Cpu cpu{sim, memory, vpu};
};

TEST_F(CpuTest, SumLoop) {
  run_source(R"(
      ldc 0
      stl 0        ; acc
      ldc 10
      stl 1        ; i
   loop:
      ldl 0
      ldl 1
      add
      stl 0
      ldl 1
      adc -1
      stl 1
      ldl 1
      cj done
      j loop
   done:
      ldl 0
      ldc 0x2000
      stnl 0
      halt
  )");
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(cpu.read_word(0x2000), 55u);
  EXPECT_FALSE(cpu.error_flag());
}

TEST_F(CpuTest, ArithmeticAndLogicOps) {
  run_source(R"(
      ldc 7
      ldc 3
      mul          ; 21
      ldc 0x2000
      stnl 0
      ldc 22
      ldc 5
      div          ; 4
      ldc 0x2004
      stnl 0
      ldc 22
      ldc 5
      rem          ; 2
      ldc 0x2008
      stnl 0
      ldc 0xF0
      ldc 0x1F
      and          ; 0x10
      ldc 0x200C
      stnl 0
      ldc 1
      ldc 6
      shl          ; 64
      ldc 0x2010
      stnl 0
      ldc 5
      ldc 3
      gt           ; 1
      ldc 0x2014
      stnl 0
      halt
  )");
  EXPECT_EQ(cpu.read_word(0x2000), 21u);
  EXPECT_EQ(cpu.read_word(0x2004), 4u);
  EXPECT_EQ(cpu.read_word(0x2008), 2u);
  EXPECT_EQ(cpu.read_word(0x200C), 0x10u);
  EXPECT_EQ(cpu.read_word(0x2010), 64u);
  EXPECT_EQ(cpu.read_word(0x2014), 1u);
}

TEST_F(CpuTest, NegativeNumbersAndEqc) {
  run_source(R"(
      ldc 5
      adc -8       ; -3
      ldc 0x2000
      stnl 0
      ldc 0
      eqc 0        ; 1
      ldc 0x2004
      stnl 0
      halt
  )");
  EXPECT_EQ(static_cast<std::int32_t>(cpu.read_word(0x2000)), -3);
  EXPECT_EQ(cpu.read_word(0x2004), 1u);
}

TEST_F(CpuTest, CallAndRet) {
  run_source(R"(
      ldc 20
      call double  ; A=20 preserved across call in this convention
      ldc 0x2000
      stnl 0
      halt
   double:
      ldc 2
      mul
      ret
  )");
  EXPECT_EQ(cpu.read_word(0x2000), 40u);
}

TEST_F(CpuTest, DivisionByZeroSetsErrorFlag) {
  run_source(R"(
      ldc 1
      ldc 0
      div
      testerr
      ldc 0x2000
      stnl 0
      halt
  )");
  EXPECT_EQ(cpu.read_word(0x2000), 1u);
  EXPECT_FALSE(cpu.error_flag()) << "testerr clears the flag";
  EXPECT_TRUE(cpu.take_fault().has_value());
}

TEST_F(CpuTest, InstructionRateIs7point5Mips) {
  std::string src;
  constexpr int kN = 3000;
  for (int i = 0; i < kN; ++i) {
    src += "adc 1\n";  // one-byte instructions
  }
  src += "halt\n";
  run_source(src);
  const double mips =
      static_cast<double>(cpu.instructions_executed()) / sim.now().us();
  EXPECT_NEAR(mips, 7.5, 0.1);
}

TEST_F(CpuTest, OffChipWordAccessCosts400ns) {
  // ldnl from DRAM = instruction time + off-chip penalty = 400 ns on top of
  // the bare ldc baseline.
  Program p = assemble(R"(
      ldc 0x2000
      ldnl 0
      halt
  )");
  cpu.load(p);
  cpu.start_process(p.entry(), kWptr, 1);
  sim.spawn(cpu.run());
  sim.run();
  // ldc 0x2000 (4 bytes: three pfix + ldc), ldnl (1 byte), halt (2 bytes:
  // pfix + opr) = 7 instruction-time bytes + 1 switch + 1 off-chip penalty.
  const SimTime expect = CpuParams::switch_time() +
                         7 * CpuParams::instr_time() +
                         CpuParams::offchip_penalty();
  EXPECT_EQ(sim.now(), expect);
}

TEST_F(CpuTest, BlockMoveMovesBytesAndCharges400nsPerWordEachWay) {
  memory.write_word(0x3000, 0x11223344);
  memory.write_word(0x3004, 0x55667788);
  run_source(R"(
      ldc 0x3000   ; src (C after three pushes)
      ldc 0x3800   ; dst
      ldc 8        ; count
      move
      halt
  )");
  EXPECT_EQ(cpu.read_word(0x3800), 0x11223344u);
  EXPECT_EQ(cpu.read_word(0x3804), 0x55667788u);
}

TEST_F(CpuTest, SoftChannelRendezvous) {
  Program p = assemble(R"(
   main:
      mint
      ldc 0x3000
      stnl 0          ; chan := NotProcess
      ldc sender      ; code address
      ldc 0x8201      ; child wdesc: wptr 0x8200, low priority
      startp
      ldlp 4          ; ptr (C)
      ldc 0x3000      ; chan (B)
      ldc 4           ; count (A)
      in
      ldl 4
      ldc 0x2000
      stnl 0
      halt
   sender:
      ldc 99
      stl 0
      ldlp 0
      ldc 0x3000
      ldc 4
      out
      stopp
  )");
  cpu.load(p);
  cpu.start_process(p.symbol("main"), kWptr, 1);
  sim.spawn(cpu.run());
  sim.run();
  EXPECT_EQ(cpu.read_word(0x2000), 99u);
}

TEST_F(CpuTest, SoftChannelWorksEitherArrivalOrder) {
  // Receiver first: main spawns a receiver child, then sends.
  Program p = assemble(R"(
   main:
      mint
      ldc 0x3000
      stnl 0
      ldc receiver
      ldc 0x8201
      startp
      ldc 77
      stl 8
      ldlp 8
      ldc 0x3000
      ldc 4
      out
      ; wait for the receiver to store the result, then halt
      ldtimer
      adc 10
      tin
      halt
   receiver:
      ldlp 0
      ldc 0x3000
      ldc 4
      in
      ldl 0
      ldc 0x2000
      stnl 0
      stopp
  )");
  cpu.load(p);
  cpu.start_process(p.symbol("main"), kWptr, 1);
  sim.spawn(cpu.run());
  sim.run();
  EXPECT_EQ(cpu.read_word(0x2000), 77u);
}

TEST_F(CpuTest, ParViaStartpEndp) {
  // Parent forks two children that each add into their own word; the sync
  // block joins all of them, and the parent's continuation runs last.
  Program p = assemble(R"(
   main:
      ldc 3
      ldc sync
      stnl 0          ; sync.count = 3 (two children + parent)
      ldc 0x8001      ; parent wdesc (wptr 0x8000 | lo)
      ldc sync
      stnl 1          ; sync.parent
      ldc after
      ldc sync
      stnl 2          ; sync.resume
      ldc child1
      ldc 0x8201
      startp
      ldc child2
      ldc 0x8401
      startp
      ldc sync
      endp
   after:
      ldc 0x2000
      ldnl 0
      ldc 0x2004
      ldnl 0
      add
      ldc 0x2008
      stnl 0
      halt
   child1:
      ldc 11
      ldc 0x2000
      stnl 0
      ldc sync
      endp
   child2:
      ldc 22
      ldc 0x2004
      stnl 0
      ldc sync
      endp
   sync:
      .word 0
      .word 0
      .word 0
  )");
  cpu.load(p);
  cpu.start_process(p.symbol("main"), kWptr, 1);
  sim.spawn(cpu.run());
  sim.run();
  EXPECT_EQ(cpu.read_word(0x2008), 33u);
}

TEST_F(CpuTest, TimerWaitAdvancesSimulatedTime) {
  run_source(R"(
      ldtimer
      adc 100
      tin
      halt
  )");
  EXPECT_GE(sim.now(), 100_us);
  EXPECT_LT(sim.now(), 105_us);
}

TEST_F(CpuTest, HighPriorityPreemptsLowPriority) {
  Program p = assemble(R"(
   hi:
      ldtimer
      adc 50
      tin              ; sleep 50 us, then preempt the low-pri loop
      ldc 1
      ldc 0x2004
      stnl 0
      halt
   lo:
      ldc 0x2008
      ldnl 0
      adc 1
      ldc 0x2008
      stnl 0
      j lo
  )");
  cpu.load(p);
  cpu.start_process(p.symbol("hi"), 0x8000, 0);
  cpu.start_process(p.symbol("lo"), 0x8200, 1);
  sim.spawn(cpu.run());
  sim.run_until(1_ms);
  EXPECT_TRUE(cpu.halted()) << "hi preempted the infinite low-pri loop";
  EXPECT_EQ(cpu.read_word(0x2004), 1u);
  EXPECT_GT(cpu.read_word(0x2008), 10u) << "low priority made progress first";
}

TEST_F(CpuTest, GatherMicrocodeMovesElementsAndCharges1600nsEach) {
  // Four scattered 64-bit elements gathered to 0x5000.
  for (std::uint32_t i = 0; i < 4; ++i) {
    const std::uint32_t src = 0x6000 + 24 * i;  // stride 24: not contiguous
    memory.write_word(src, 100 + i);
    memory.write_word(src + 4, 200 + i);
    memory.write_word(0x4000 + 4 * i, src);  // index table
  }
  run_source(R"(
      ldc 0x4000   ; table (C)
      ldc 0x5000   ; packed vector (B)
      ldc 4        ; count (A)
      gather
      halt
  )");
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cpu.read_word(0x5000 + 8 * i), 100 + i);
    EXPECT_EQ(cpu.read_word(0x5000 + 8 * i + 4), 200 + i);
  }
  EXPECT_GT(sim.now(), 4 * mem::MemParams::gather_move64());
  EXPECT_LT(sim.now(), 4 * mem::MemParams::gather_move64() + 3_us);
}

TEST_F(CpuTest, ScatterInverseOfGather) {
  for (std::uint32_t i = 0; i < 3; ++i) {
    memory.write_word(0x5000 + 8 * i, 7 + i);
    memory.write_word(0x5004 + 8 * i, 9 + i);
    memory.write_word(0x4000 + 4 * i, 0x6000 + 32 * i);
  }
  run_source(R"(
      ldc 0x4000
      ldc 0x5000
      ldc 3
      scatter
      halt
  )");
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cpu.read_word(0x6000 + 32 * i), 7 + i);
    EXPECT_EQ(cpu.read_word(0x6004 + 32 * i), 9 + i);
  }
}

TEST_F(CpuTest, VformDispatchesVectorUnitFromAssembly) {
  // Fill rows 0 (bank A) and 300 (bank B) with 64-bit values from the host
  // side, then run a VADD from TISA and read the result row.
  mem::VectorRegister rx;
  mem::VectorRegister ry;
  for (std::size_t i = 0; i < 8; ++i) {
    rx.set_f64(i, fp::T64::from_double(1.0 + static_cast<double>(i)));
    ry.set_f64(i, fp::T64::from_double(10.0));
  }
  memory.store_row(0, rx);
  memory.store_row(300, ry);

  run_source(R"(
      ; descriptor at 'desc': VADD f64 n=8 rows (0, 300) -> 600
      ldc 0        ; form = vadd
      ldc desc
      stnl 0
      ldc 1        ; precision f64
      ldc desc
      stnl 1
      ldc 8        ; n
      ldc desc
      stnl 2
      ldc 0
      ldc desc
      stnl 3       ; row_x
      ldc 300
      ldc desc
      stnl 4       ; row_y
      ldc 600
      ldc desc
      stnl 5       ; row_z
      ldc desc
      vform
      vwait
      halt
   desc:
      .space 48
  )");
  mem::VectorRegister rz;
  memory.load_row(600, rz);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(rz.f64(i).to_double(), 11.0 + static_cast<double>(i));
  }
  // vwait blocked until the pipe drained: sim time covers the op duration.
  EXPECT_GT(sim.now(), vpu.total_busy());
}

TEST_F(CpuTest, VformReductionPublishesScalarResult) {
  mem::VectorRegister rx;
  for (std::size_t i = 0; i < 6; ++i) {
    rx.set_f64(i, fp::T64::from_double(static_cast<double>(i + 1)));
  }
  memory.store_row(2, rx);
  Program p = run_source(R"(
      ldc 8        ; form = vsum
      ldc desc
      stnl 0
      ldc 1
      ldc desc
      stnl 1
      ldc 6
      ldc desc
      stnl 2
      ldc 2
      ldc desc
      stnl 3
      ldc desc
      vform
      vwait
      halt
   desc:
      .space 48
  )");
  const std::uint32_t desc = p.symbol("desc");
  const std::uint64_t bits =
      static_cast<std::uint64_t>(cpu.read_word(desc + 32)) |
      (static_cast<std::uint64_t>(cpu.read_word(desc + 36)) << 32);
  EXPECT_EQ(fp::T64::from_bits(bits).to_double(), 21.0);
}

TEST_F(CpuTest, CpuRunsWhileVectorUnitComputes) {
  // Issue a long vector op, then keep counting on the CP before vwait: the
  // paper's "complete arithmetic unit operates in parallel with the node
  // control processor".
  run_source(R"(
      ldc 4        ; vsmul
      ldc desc
      stnl 0
      ldc 1
      ldc desc
      stnl 1
      ldc 128
      ldc desc
      stnl 2
      ldc 0
      ldc desc
      stnl 3
      ldc desc
      vform
      ldc 0
      stl 0
   spin:            ; count while the pipes run
      ldl 0
      adc 1
      stl 0
      ldl 0
      eqc 40
      cj spin
      ldl 0
      ldc 0x2000
      stnl 0
      vwait
      halt
   desc:
      .space 48
  )");
  EXPECT_EQ(cpu.read_word(0x2000), 40u);
}

}  // namespace
}  // namespace fpst::cp
