// The VPU batch execution arm: cross-validation against the softfloat
// oracle, the fp/host_bridge boundary-case regressions (each pinned to the
// exact bit patterns that provoked it), and the mode-plumbing contract
// (results, flags, timing and flops are identical in every VpuMode).
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "fp/host_bridge.hpp"
#include "fp/softfloat.hpp"
#include "kernels/kernels.hpp"
#include "mem/memory.hpp"
#include "vpu/batch.hpp"
#include "vpu/vpu.hpp"

namespace {

using namespace fpst;
using fp::Flags;
using fp::kBinary32;
using fp::kBinary64;
using vpu::Precision;
using vpu::VectorForm;
using vpu::VectorOp;
using vpu::VectorUnit;
using vpu::VpuMode;

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t x = (state += 0x9e3779b97f4a7c15ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Adversarial binary64 operand: heavy weighting of the divergence classes
/// the bridge routes to the oracle (NaNs, signed zeros, denormals, the
/// flush boundary, overflow territory) plus fully random normals.
std::uint64_t fuzz_operand64(std::uint64_t& rng) {
  const std::uint64_t r = splitmix64(rng);
  const std::uint64_t sign = (r & 1) ? fp::host::kSign64 : 0;
  const std::uint64_t mant = splitmix64(rng) & 0x000fffffffffffffULL;
  switch ((r >> 1) % 12) {
    case 0: return sign;                                // +/- 0
    case 1: return sign | (mant | 1);                   // denormal
    case 2: return sign | 0x0010000000000000ULL;        // smallest normal
    case 3: return sign | 0x7ff0000000000000ULL;        // +/- inf
    case 4: return sign | 0x7ff8000000000000ULL | mant; // quiet NaN
    case 5:                                             // signalling NaN
      return sign | 0x7ff0000000000000ULL |
             ((mant & 0x0007ffffffffffffULL) | 1);
    case 6: {  // just above the flush boundary: products land in the
               // oracle-fallback window below 2^-968
      const std::uint64_t biased = 1 + (splitmix64(rng) % 120);
      return sign | (biased << 52) | mant;
    }
    case 7: {  // overflow territory
      const std::uint64_t biased = 1950 + (splitmix64(rng) % 96);
      return sign | (biased << 52) | mant;
    }
    case 8: {  // near 1.0: exercises exact sums/cancellation
      const std::uint64_t biased = 1020 + (splitmix64(rng) % 8);
      return sign | (biased << 52) | (mant & 0xffffULL);
    }
    default: {  // random normal, full exponent range
      const std::uint64_t biased = 1 + (splitmix64(rng) % 2046);
      return sign | (biased << 52) | mant;
    }
  }
}

std::uint32_t fuzz_operand32(std::uint64_t& rng) {
  const std::uint64_t r = splitmix64(rng);
  const std::uint32_t sign = (r & 1) ? fp::host::kSign32 : 0;
  const std::uint32_t mant =
      static_cast<std::uint32_t>(splitmix64(rng)) & 0x007fffffU;
  switch ((r >> 1) % 12) {
    case 0: return sign;
    case 1: return sign | (mant | 1);
    case 2: return sign | 0x00800000U;
    case 3: return sign | 0x7f800000U;
    case 4: return sign | 0x7fc00000U | mant;
    case 5: return sign | 0x7f800000U | ((mant & 0x003fffffU) | 1);
    case 6: {
      const std::uint32_t biased =
          1 + static_cast<std::uint32_t>(splitmix64(rng) % 40);
      return sign | (biased << 23) | mant;
    }
    case 7: {
      const std::uint32_t biased =
          230 + static_cast<std::uint32_t>(splitmix64(rng) % 24);
      return sign | (biased << 23) | mant;
    }
    case 8: {
      const std::uint32_t biased =
          124 + static_cast<std::uint32_t>(splitmix64(rng) % 8);
      return sign | (biased << 23) | (mant & 0xffU);
    }
    default: {
      const std::uint32_t biased =
          1 + static_cast<std::uint32_t>(splitmix64(rng) % 254);
      return sign | (biased << 23) | mant;
    }
  }
}

constexpr VectorForm kAllForms[] = {
    VectorForm::vadd,    VectorForm::vsub,     VectorForm::vmul,
    VectorForm::vsadd,   VectorForm::vsmul,    VectorForm::vsaxpy,
    VectorForm::vneg,    VectorForm::vabs,     VectorForm::vsum,
    VectorForm::vdot,    VectorForm::vmaxval,  VectorForm::vcmp_le,
    VectorForm::vcvt_widen, VectorForm::vcvt_narrow};

int fuzz_cases() {
  if (const char* env = std::getenv("FPST_FUZZ_CASES")) {
    const int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  return 10000;
}

// ------------------------------------------------- cross-validation fuzzer

// Every vector form x precision x adversarial operand mix, executed in
// `checked` mode: the VectorUnit itself runs the batch arm and the
// softfloat oracle on identical operands and throws naming the first
// diverging bit pattern. A divergence is always a bug — in the batch arm,
// the bridge's fast-path proofs, or the oracle itself.
TEST(VpuBatchFuzz, CheckedModeNeverDivergesOnAdversarialOperands) {
  mem::NodeMemory memory;
  VectorUnit vu{memory, {.dual_bank = true, .mode = VpuMode::checked}};
  std::uint64_t rng = 0x1986'0704'1234'5678ULL;  // fixed seed: reproducible
  const int cases = fuzz_cases();

  std::uint64_t ops_with_flags = 0;
  std::uint64_t reductions = 0;
  for (int c = 0; c < cases; ++c) {
    const VectorForm form =
        kAllForms[splitmix64(rng) % std::size(kAllForms)];
    const bool conversion = form == VectorForm::vcvt_widen ||
                            form == VectorForm::vcvt_narrow;
    const Precision prec = conversion || (splitmix64(rng) & 1)
                               ? Precision::f64
                               : Precision::f32;

    VectorOp op;
    op.form = form;
    op.prec = prec;
    const std::size_t limit = prec == Precision::f64 || conversion
                                  ? mem::MemParams::kElems64
                                  : mem::MemParams::kElems32;
    op.n = 1 + splitmix64(rng) % limit;
    op.row_x = splitmix64(rng) % mem::MemParams::kRows;
    op.row_y = splitmix64(rng) % mem::MemParams::kRows;
    op.row_z = splitmix64(rng) % mem::MemParams::kRows;
    op.scalar = fp::T64::from_bits(fuzz_operand64(rng));

    // vcvt_widen reads 32-bit elements from row_x; every other f64 form
    // reads 64-bit ones. f32 forms read 32-bit elements from both rows.
    mem::VectorRegister vx;
    mem::VectorRegister vy;
    const bool x32 =
        prec == Precision::f32 || form == VectorForm::vcvt_widen;
    for (std::size_t i = 0; i < mem::MemParams::kElems32; ++i) {
      if (x32) {
        vx.set_u32(i, fuzz_operand32(rng));
      } else if (i < mem::MemParams::kElems64) {
        vx.set_u64(i, fuzz_operand64(rng));
      }
      if (prec == Precision::f32) {
        vy.set_u32(i, fuzz_operand32(rng));
      } else if (i < mem::MemParams::kElems64) {
        vy.set_u64(i, fuzz_operand64(rng));
      }
    }
    memory.store_row(op.row_x, vx);
    if (op.row_y != op.row_x) {
      memory.store_row(op.row_y, vy);
    }

    try {
      const vpu::OpResult r = vu.execute(op);
      if (r.flags.any()) {
        ++ops_with_flags;
      }
      if (vpu::is_reduction(form)) {
        ++reductions;
      }
    } catch (const std::runtime_error& e) {
      FAIL() << "case " << c << ": " << e.what();
    }
  }
  // The generator must actually reach the interesting machinery: most ops
  // see at least one special operand, and reductions exercise the partial
  // collapse. Guards the fuzzer against silently degenerating.
  EXPECT_GT(ops_with_flags, static_cast<std::uint64_t>(cases) / 4);
  EXPECT_GT(reductions, static_cast<std::uint64_t>(cases) / 10);
}

// --------------------------------------- host-bridge boundary regressions

// Exact product 2^-1022 - 2^-1075 (operands found by the fuzzer's ancestor
// during bridge construction): the host rounds the round-to-nearest tie up
// across the flush boundary to DBL_MIN, the machine represents the product
// exactly at full precision and flushes it to +0 with underflow+inexact.
// The bridge must route results landing on the smallest normal to the
// oracle instead of trusting the host.
TEST(HostBridge, Mul64FlushBoundaryTieFollowsOracleNotHost) {
  const std::uint64_t a = 0x200a530d9f000000ULL;
  const std::uint64_t b = 0x1ff3731a10000000ULL;
  const double naive = std::bit_cast<double>(a) * std::bit_cast<double>(b);
  ASSERT_EQ(std::bit_cast<std::uint64_t>(naive), 0x0010000000000000ULL)
      << "host no longer rounds this tie up; pick new operands";

  Flags hf;
  Flags sf;
  const std::uint64_t bridged = fp::host::mul64(a, b, hf);
  const std::uint64_t oracle = fp::detail::mul(kBinary64, a, b, sf);
  EXPECT_EQ(oracle, 0ULL);  // flushed to +0
  EXPECT_EQ(bridged, oracle);
  EXPECT_TRUE(sf.underflow && sf.inexact);
  EXPECT_EQ(hf.underflow, sf.underflow);
  EXPECT_EQ(hf.inexact, sf.inexact);
  EXPECT_EQ(hf.invalid, sf.invalid);
  EXPECT_EQ(hf.overflow, sf.overflow);
}

// The binary32 twin: 0x207fffff * 0x1f800000 has the exact product
// 2^-126 - 2^-150, a host tie that rounds up to FLT_MIN (0x00800000)
// while the machine flushes to +0.
TEST(HostBridge, Mul32FlushBoundaryTieFollowsOracleNotHost) {
  const std::uint32_t a = 0x207fffffU;
  const std::uint32_t b = 0x1f800000U;
  Flags hf;
  Flags sf;
  const std::uint32_t bridged = fp::host::mul32(a, b, hf);
  const std::uint32_t oracle =
      static_cast<std::uint32_t>(fp::detail::mul(kBinary32, a, b, sf));
  EXPECT_EQ(oracle, 0U);
  EXPECT_EQ(bridged, oracle);
  EXPECT_TRUE(sf.underflow && sf.inexact);
  EXPECT_EQ(hf.underflow, sf.underflow);
  EXPECT_EQ(hf.inexact, sf.inexact);
}

// Same window through the narrowing conversion: the double holding exactly
// 2^-126 - 2^-150 (0x1.fffffep-127) narrows to FLT_MIN on the host and
// flushes to +0 on the machine.
TEST(HostBridge, NarrowFlushBoundaryTieFollowsOracleNotHost) {
  const std::uint64_t a = std::bit_cast<std::uint64_t>(0x1.fffffep-127);
  ASSERT_EQ(std::bit_cast<std::uint32_t>(
                static_cast<float>(std::bit_cast<double>(a))),
            0x00800000U);
  Flags hf;
  Flags sf;
  const std::uint32_t bridged = fp::host::narrow(a, hf);
  const std::uint32_t oracle =
      static_cast<std::uint32_t>(fp::detail::narrow(a, sf));
  EXPECT_EQ(oracle, 0U);
  EXPECT_EQ(bridged, oracle);
  EXPECT_TRUE(sf.underflow && sf.inexact);
  EXPECT_EQ(hf.underflow, sf.underflow);
  EXPECT_EQ(hf.inexact, sf.inexact);
}

// The machine never propagates NaN payloads: any NaN result is the
// canonical positive quiet NaN 0x7ff8000000000000, and only signalling
// operands raise invalid. The host would propagate 0x7ff800000000beef.
TEST(HostBridge, NaNResultsAreCanonicalAndPayloadFree) {
  const std::uint64_t payload_qnan = 0x7ff800000000beefULL;
  const std::uint64_t one = 0x3ff0000000000000ULL;
  Flags fl;
  EXPECT_EQ(fp::host::add64(payload_qnan, one, fl), 0x7ff8000000000000ULL);
  EXPECT_FALSE(fl.invalid);

  const std::uint64_t snan = 0x7ff0000000000001ULL;
  EXPECT_EQ(fp::host::mul64(snan, one, fl), 0x7ff8000000000000ULL);
  EXPECT_TRUE(fl.invalid);
}

// Signed-zero rules: -0 + -0 = -0, +0 + -0 = +0, exact cancellation is +0;
// multiplication signs by XOR even when flushing.
TEST(HostBridge, SignedZeroRulesMatchOracle) {
  const std::uint64_t pz = 0;
  const std::uint64_t nz = fp::host::kSign64;
  const std::uint64_t one = 0x3ff0000000000000ULL;
  Flags fl;
  EXPECT_EQ(fp::host::add64(nz, nz, fl), nz);
  EXPECT_EQ(fp::host::add64(pz, nz, fl), pz);
  EXPECT_EQ(fp::host::sub64(one, one, fl), pz);  // exact cancellation
  EXPECT_FALSE(fl.any());

  // -denormal * +denormal: both operands read as signed zero, result -0.
  Flags mf;
  EXPECT_EQ(fp::host::mul64(0x8000000000000001ULL, 1ULL, mf), nz);
  EXPECT_FALSE(mf.any());
}

// Denormal operands flush on read with no flags; a denormal *result*
// flushes with underflow+inexact.
TEST(HostBridge, DenormalInputsFlushSilentlyResultsFlushLoudly) {
  const std::uint64_t denorm = 0x0000000000000001ULL;
  const std::uint64_t one = 0x3ff0000000000000ULL;
  Flags in_fl;
  EXPECT_EQ(fp::host::add64(denorm, one, in_fl), one);
  EXPECT_FALSE(in_fl.any());

  // 2^-1000 * 2^-100 = 2^-1100: below the denormal range entirely.
  const std::uint64_t a = (23ULL) << 52;   // 2^-1000
  const std::uint64_t b = (923ULL) << 52;  // 2^-100
  Flags out_fl;
  EXPECT_EQ(fp::host::mul64(a, b, out_fl), 0ULL);
  EXPECT_TRUE(out_fl.underflow);
  EXPECT_TRUE(out_fl.inexact);
  EXPECT_FALSE(out_fl.invalid);
}

// Found by the fuzzer (seed 0x1986070412345678, case 611, VSUB f32):
// 0x5b998002 (~1.2*2^56) - 0x3f000058 (~0.5). The exact difference needs
// ~80 bits, so even the binary64 intermediate sum rounds (back to the big
// operand) and a naive `double(r) != s` inexact test sees nothing. The
// bridge must take the Fast2Sum residual of the binary64 addition as well.
// The result bits were never wrong — 53 >= 2*24+2 makes the double
// rounding innocuous — only the inexact flag was.
TEST(HostBridge, Add32WideExponentGapStillRaisesInexact) {
  Flags hf;
  Flags sf;
  const std::uint32_t a = 0x5b998002U;
  const std::uint32_t b = 0x3f000058U;
  const std::uint32_t bridged = fp::host::sub32(a, b, hf);
  const std::uint32_t oracle =
      static_cast<std::uint32_t>(fp::detail::sub(kBinary32, a, b, sf));
  EXPECT_EQ(bridged, oracle);
  EXPECT_EQ(oracle, a);  // rounds back to the big operand
  EXPECT_TRUE(sf.inexact);
  EXPECT_TRUE(hf.inexact);
  EXPECT_FALSE(hf.underflow || hf.overflow || hf.invalid);
}

// Fast2Sum inexact detection: 1 + 2^-53 is a tie that rounds to 1.0 and
// must raise inexact; 1 + 2^-52 is exact and must not.
TEST(HostBridge, AdditionInexactViaFast2Sum) {
  const std::uint64_t one = 0x3ff0000000000000ULL;
  const std::uint64_t tiny_tie = (970ULL) << 52;    // 2^-53
  const std::uint64_t tiny_exact = (971ULL) << 52;  // 2^-52
  Flags tie_fl;
  EXPECT_EQ(fp::host::add64(one, tiny_tie, tie_fl), one);
  EXPECT_TRUE(tie_fl.inexact);
  Flags exact_fl;
  EXPECT_EQ(fp::host::add64(one, tiny_exact, exact_fl),
            0x3ff0000000000001ULL);
  EXPECT_FALSE(exact_fl.any());
}

// ---------------------------------------------------- mode plumbing

/// Run one op on a fresh memory/unit pair in the given mode.
vpu::OpResult run_op(VpuMode mode, const VectorOp& op,
                     const mem::VectorRegister& vx,
                     const mem::VectorRegister& vy,
                     mem::VectorRegister* out = nullptr) {
  mem::NodeMemory memory;
  VectorUnit vu{memory, {.dual_bank = true, .mode = mode}};
  memory.store_row(op.row_x, vx);
  memory.store_row(op.row_y, vy);
  const vpu::OpResult r = vu.execute(op);
  if (out != nullptr) {
    memory.load_row(op.row_z, *out);
  }
  return r;
}

TEST(VpuMode, DurationFlagsAndFlopsAreModeIndependent) {
  std::uint64_t rng = 7;
  mem::VectorRegister vx;
  mem::VectorRegister vy;
  for (std::size_t i = 0; i < mem::MemParams::kElems64; ++i) {
    vx.set_u64(i, fuzz_operand64(rng));
    vy.set_u64(i, fuzz_operand64(rng));
  }
  for (const VectorForm form : kAllForms) {
    VectorOp op;
    op.form = form;
    op.prec = Precision::f64;
    op.n = 64;
    op.row_x = 3;
    op.row_y = 300;
    op.row_z = 700;
    op.scalar = fp::T64::from_double(1.5);

    mem::VectorRegister soft_z;
    mem::VectorRegister batch_z;
    const vpu::OpResult soft =
        run_op(VpuMode::softfloat, op, vx, vy, &soft_z);
    const vpu::OpResult batch = run_op(VpuMode::batch, op, vx, vy, &batch_z);
    const vpu::OpResult checked = run_op(VpuMode::checked, op, vx, vy);

    EXPECT_EQ(soft.duration.ps(), batch.duration.ps()) << to_string(form);
    EXPECT_EQ(soft.duration.ps(), checked.duration.ps()) << to_string(form);
    EXPECT_EQ(soft.flops, batch.flops) << to_string(form);
    EXPECT_EQ(soft.scalar_result.bits(), batch.scalar_result.bits())
        << to_string(form);
    EXPECT_EQ(soft.reduction_index, batch.reduction_index)
        << to_string(form);
    EXPECT_EQ(soft_z.raw(), batch_z.raw()) << to_string(form);
  }
}

TEST(VpuMode, ParseAndToStringRoundTrip) {
  EXPECT_EQ(vpu::parse_vpu_mode("softfloat"), VpuMode::softfloat);
  EXPECT_EQ(vpu::parse_vpu_mode("batch"), VpuMode::batch);
  EXPECT_EQ(vpu::parse_vpu_mode("checked"), VpuMode::checked);
  EXPECT_FALSE(vpu::parse_vpu_mode("fast").has_value());
  EXPECT_FALSE(vpu::parse_vpu_mode("").has_value());
  EXPECT_STREQ(vpu::to_string(VpuMode::batch), "batch");
}

// End-to-end: the same SAXPY kernel in all three modes returns identical
// simulated time (the timing model never consults the mode) and identical
// result bytes.
TEST(VpuMode, KernelSaxpyAgreesAcrossModesIncludingTiming) {
  node::NodeConfig soft_cfg;
  node::NodeConfig batch_cfg;
  batch_cfg.vpu_mode = VpuMode::batch;
  node::NodeConfig checked_cfg;
  checked_cfg.vpu_mode = VpuMode::checked;

  const kernels::KernelResult soft =
      kernels::run_saxpy(2, 4096, 2.0, soft_cfg);
  const kernels::KernelResult batch =
      kernels::run_saxpy(2, 4096, 2.0, batch_cfg);
  const kernels::KernelResult checked =
      kernels::run_saxpy(2, 4096, 2.0, checked_cfg);

  EXPECT_EQ(soft.elapsed.ps(), batch.elapsed.ps());
  EXPECT_EQ(soft.elapsed.ps(), checked.elapsed.ps());
  EXPECT_EQ(soft.flops, batch.flops);
  ASSERT_EQ(soft.output.size(), batch.output.size());
  for (std::size_t i = 0; i < soft.output.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(soft.output[i]),
              std::bit_cast<std::uint64_t>(batch.output[i]))
        << "element " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(soft.output[i]),
              std::bit_cast<std::uint64_t>(checked.output[i]))
        << "element " << i;
  }
}

// Every shipped kernel, run end-to-end in `checked` mode (which recomputes
// each vector op with both arms and throws on any bit of divergence), must
// reproduce the softfloat run exactly: simulated time, flops, link bytes
// and every output bit. This is the acceptance sweep for the batch arm —
// the kernels between them exercise every vector form, reduction drains,
// physical row moves and the f32 path.
TEST(VpuMode, AllKernelsBitIdenticalInCheckedMode) {
  node::NodeConfig soft_cfg;
  node::NodeConfig checked_cfg;
  checked_cfg.vpu_mode = VpuMode::checked;

  const auto expect_same = [](const char* name,
                              const kernels::KernelResult& soft,
                              const kernels::KernelResult& chk) {
    EXPECT_EQ(soft.elapsed.ps(), chk.elapsed.ps()) << name;
    EXPECT_EQ(soft.flops, chk.flops) << name;
    EXPECT_EQ(soft.link_bytes, chk.link_bytes) << name;
    ASSERT_EQ(soft.output.size(), chk.output.size()) << name;
    for (std::size_t i = 0; i < soft.output.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(soft.output[i]),
                std::bit_cast<std::uint64_t>(chk.output[i]))
          << name << " element " << i;
    }
  };

  expect_same("dot", kernels::run_dot(2, 1 << 12, soft_cfg),
              kernels::run_dot(2, 1 << 12, checked_cfg));
  expect_same("saxpy32", kernels::run_saxpy32(2, 1 << 12, 1.5F, soft_cfg),
              kernels::run_saxpy32(2, 1 << 12, 1.5F, checked_cfg));
  expect_same("matmul", kernels::run_matmul(2, 64, soft_cfg),
              kernels::run_matmul(2, 64, checked_cfg));
  expect_same("fft", kernels::run_fft(2, 256, soft_cfg),
              kernels::run_fft(2, 256, checked_cfg));
  expect_same("gauss", kernels::run_gauss(2, 32, soft_cfg),
              kernels::run_gauss(2, 32, checked_cfg));
  expect_same("laplace", kernels::run_laplace(2, 16, 4, soft_cfg),
              kernels::run_laplace(2, 16, 4, checked_cfg));
  expect_same("sort", kernels::run_distributed_sort(2, 512, soft_cfg),
              kernels::run_distributed_sort(2, 512, checked_cfg));
}

}  // namespace
