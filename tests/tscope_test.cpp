// Tests for tscope (src/perf/tscope.*): the log-bucket histogram, flight
// stitching across store-and-forward hops, the congestion heatmap against
// net/hypercube's static e-cube prediction, critical-path extraction, the
// dump round-trip with message-lifecycle events, and graceful degradation
// when the span ring evicts.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/machine.hpp"
#include "link/link.hpp"
#include "net/hypercube.hpp"
#include "occam/occam.hpp"
#include "perf/chrome_trace.hpp"
#include "perf/counters.hpp"
#include "perf/histogram.hpp"
#include "perf/tscope.hpp"
#include "sim/proc.hpp"

namespace fpst {
namespace {

using perf::CounterRegistry;
using perf::Histogram;

constexpr std::uint16_t kTag = 9;

sim::Proc drain(occam::Ctx* ctx, std::size_t msgs) {
  for (std::size_t i = 0; i < msgs; ++i) {
    occam::Msg m;
    co_await ctx->recv_any(kTag, &m);
  }
}

/// Full all-to-all of `elems`-double messages on a `dim`-cube with perf
/// attached; returns the run's wall time.
sim::SimTime run_alltoall(int dim, CounterRegistry& reg,
                          std::size_t elems = 4) {
  sim::Simulator sim;
  core::TSeries machine{sim, dim};
  machine.enable_perf(reg);
  reg.meta().workload = "alltoall test";
  occam::Runtime rt{machine};
  const std::size_t n = machine.size();
  return rt.run([&reg, &machine, n, elems](occam::Ctx& ctx) -> sim::Proc {
    (void)reg;
    (void)machine;
    std::vector<sim::Proc> par;
    for (std::size_t rel = 1; rel < n; ++rel) {
      const net::NodeId peer =
          static_cast<net::NodeId>((ctx.id() + rel) % n);
      par.push_back(
          ctx.send(peer, kTag, std::vector<double>(elems, 1.0)));
    }
    par.push_back(drain(&ctx, n - 1));
    co_await sim::WhenAll{std::move(par)};
  });
}

TEST(Histogram, EmptyAndSingleValue) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  h.add(7);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 7);
  EXPECT_EQ(h.max(), 7);
  EXPECT_EQ(h.sum(), 7);
  // A lone observation is every quantile (interpolation clamps to min/max).
  EXPECT_EQ(h.quantile(0.0), 7.0);
  EXPECT_EQ(h.quantile(0.5), 7.0);
  EXPECT_EQ(h.quantile(1.0), 7.0);
}

TEST(Histogram, BucketsAndQuantilesAreDeterministic) {
  Histogram a;
  Histogram b;
  for (int i = 1; i <= 1000; ++i) {
    a.add(i);
    b.add(i);
  }
  EXPECT_EQ(a.to_json().dump(2), b.to_json().dump(2));
  // Quantiles are monotone and bounded by the observed range.
  const double p50 = a.quantile(0.50);
  const double p90 = a.quantile(0.90);
  const double p99 = a.quantile(0.99);
  EXPECT_LE(1.0, p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, 1000.0);
  // Log2 bucketing: value v lands in [2^(b-1), 2^b); p50 of 1..1000 must
  // fall inside the bucket covering rank 500 ([512, 1023] holds ranks
  // 511..999, [256, 511] holds 255..510 -> rank 499.5 is in [256, 512)).
  EXPECT_GE(p50, 256.0);
  EXPECT_LT(p50, 512.0);
  // Negative observations clamp to zero rather than corrupting a bucket.
  Histogram neg;
  neg.add(-5);
  EXPECT_EQ(neg.min(), 0);
  EXPECT_EQ(neg.quantile(0.5), 0.0);
}

TEST(Histogram, MergeMatchesSingleHistogram) {
  // Merging per-worker histograms must equal one histogram that saw every
  // value — the lock-free aggregation contract the serve layer relies on.
  Histogram a;
  Histogram b;
  Histogram all;
  for (int i = 1; i <= 500; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 501; i <= 1000; ++i) {
    b.add(i * 3);
    all.add(i * 3);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.to_json().dump(2), all.to_json().dump(2));
}

TEST(Histogram, MergeWithEmptySides) {
  Histogram empty;
  Histogram h;
  h.add(42);
  // empty <- non-empty adopts the other's min/max instead of keeping the
  // zero-initialised fields.
  Histogram dst;
  dst.merge(h);
  EXPECT_EQ(dst.count(), 1u);
  EXPECT_EQ(dst.min(), 42);
  EXPECT_EQ(dst.max(), 42);
  // non-empty <- empty is a no-op.
  dst.merge(empty);
  EXPECT_EQ(dst.count(), 1u);
  EXPECT_EQ(dst.min(), 42);
  EXPECT_EQ(dst.max(), 42);
  // empty <- empty stays empty.
  Histogram e2;
  e2.merge(empty);
  EXPECT_EQ(e2.count(), 0u);
  EXPECT_EQ(e2.quantile(0.5), 0.0);
}

TEST(Histogram, MergeOverflowBucket) {
  // INT64_MAX has bit_width 63, so the highest reachable bucket is 63.
  // Merging histograms with mass there must sum the bucket, not wrap or
  // drop it, and the value sum must saturate rather than overflow.
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  Histogram a;
  Histogram b;
  a.add(big);
  a.add(big - 1);
  b.add(big);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), big);
  EXPECT_EQ(a.bucket_count(63), 3u);
  EXPECT_EQ(a.sum(), big);  // saturated, not wrapped
  // The quantile stays clamped to the observed max even at the extreme.
  EXPECT_EQ(a.quantile(1.0), static_cast<double>(big));
}

TEST(Tscope, StitchesTwoHopFlight) {
  // 2-cube, node 0 -> node 3: e-cube routes dimension 0 then 1, so the
  // packet store-and-forwards through node 1.
  CounterRegistry reg;
  sim::Simulator sim;
  core::TSeries machine{sim, 2};
  machine.enable_perf(reg);
  occam::Runtime rt{machine};
  constexpr std::size_t kElems = 4;
  std::vector<occam::Runtime::Body> bodies(4, [](occam::Ctx&) -> sim::Proc {
    co_return;
  });
  bodies[0] = [](occam::Ctx& ctx) -> sim::Proc {
    co_await ctx.send(3, kTag, std::vector<double>(kElems, 2.5));
  };
  bodies[3] = [](occam::Ctx& ctx) -> sim::Proc {
    std::vector<double> data;
    co_await ctx.recv(0, kTag, &data);
  };
  const sim::SimTime wall = rt.run(bodies);

  const perf::MessageReport r =
      perf::analyze_messages(perf::snapshot(reg, wall));
  ASSERT_EQ(r.flights.size(), 1u);
  EXPECT_EQ(r.incomplete, 0u);
  const perf::Flight& f = r.flights[0];
  EXPECT_EQ(f.src, 0u);
  EXPECT_EQ(f.dst, 3u);
  EXPECT_EQ(f.tag, kTag);
  const std::uint64_t encoded = 4 + 8 * kElems;
  EXPECT_EQ(f.bytes, encoded);
  EXPECT_EQ(f.ecube_min, 2);
  ASSERT_EQ(f.hops.size(), 2u);
  EXPECT_EQ(f.hops[0].from, 0u);
  EXPECT_EQ(f.hops[0].to, 1u);
  EXPECT_EQ(f.hops[1].from, 1u);
  EXPECT_EQ(f.hops[1].to, 3u);
  // Uncontended run: each hop's DMA starts the moment it is enqueued, and
  // the transfer charges exactly startup + wire time.
  const sim::SimTime transfer = link::LinkParams::transfer_time(encoded);
  for (const perf::FlightHop& h : f.hops) {
    EXPECT_TRUE(h.queue.is_zero());
    EXPECT_EQ(h.transfer, transfer);
  }
  EXPECT_GT(f.deliver, f.inject);
  EXPECT_GE(f.latency(), 2 * transfer);

  // Heatmap: one crossing each on edges 0-1 and 1-3.
  ASSERT_EQ(r.edges.size(), 2u);
  EXPECT_EQ(r.edges[0].a, 0u);
  EXPECT_EQ(r.edges[0].b, 1u);
  EXPECT_EQ(r.edges[0].crossings, 1u);
  EXPECT_EQ(r.edges[1].a, 1u);
  EXPECT_EQ(r.edges[1].b, 3u);
  EXPECT_EQ(r.edges[1].crossings, 1u);

  // Per-node roles: 0 sent, 1 forwarded, 3 received.
  ASSERT_EQ(r.per_node.size(), 4u);
  EXPECT_EQ(r.per_node[0].sent, 1u);
  EXPECT_EQ(r.per_node[0].bytes_sent, encoded);
  EXPECT_EQ(r.per_node[0].hops_sent, 2u);
  EXPECT_EQ(r.per_node[1].forwarded, 1u);
  EXPECT_EQ(r.per_node[3].received, 1u);
  EXPECT_EQ(r.per_node[2].sent + r.per_node[2].received +
                r.per_node[2].forwarded,
            0u);

  // A single flight is its own critical path.
  ASSERT_EQ(r.critical.chain.size(), 1u);
  EXPECT_EQ(r.critical.chain[0], f.id);
  EXPECT_EQ(r.critical.length, f.latency());
  EXPECT_EQ(r.max_hops, 2);
  EXPECT_TRUE(r.ecube_minimal);
}

TEST(Tscope, AllToAllMatchesEcubePrediction) {
  CounterRegistry reg;
  const sim::SimTime wall = run_alltoall(3, reg);
  const perf::MessageReport r =
      perf::analyze_messages(perf::snapshot(reg, wall));
  const std::size_t n = 8;
  EXPECT_EQ(r.flights.size(), n * (n - 1));
  EXPECT_EQ(r.incomplete, 0u);
  EXPECT_TRUE(r.ecube_minimal);
  EXPECT_LE(r.max_hops, 3);

  // Total hops = sum of pairwise Hamming distances.
  std::uint64_t want_hops = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    for (std::uint32_t d = 0; d < n; ++d) {
      if (s != d) {
        want_hops += static_cast<std::uint64_t>(std::popcount(s ^ d));
      }
    }
  }
  EXPECT_EQ(r.total_hops, want_hops);
  EXPECT_EQ(r.latency_ps.count(), r.flights.size());
  EXPECT_EQ(r.queue_ps.count(), want_hops);

  // Observed per-edge crossings equal the static e-cube routing prediction.
  net::Hypercube cube{3};
  std::vector<std::pair<net::NodeId, net::NodeId>> flows;
  for (const perf::Flight& f : r.flights) {
    flows.emplace_back(f.src, f.dst);
  }
  const std::vector<net::EdgeTraffic> want =
      net::ecube_edge_traffic(cube, flows);
  ASSERT_EQ(r.edges.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(r.edges[i].a, want[i].a);
    EXPECT_EQ(r.edges[i].b, want[i].b);
    EXPECT_EQ(r.edges[i].crossings, want[i].crossings);
  }
  // All 12 cube edges carry traffic in a full all-to-all.
  EXPECT_EQ(r.edges.size(), cube.edges().size());
}

TEST(Tscope, CriticalPathFollowsRelayChain) {
  // 0 -> 1 -> 2 -> 3 as dependent messages: each node sends only after its
  // receive, so the chain is the whole causal history of the run.
  CounterRegistry reg;
  sim::Simulator sim;
  core::TSeries machine{sim, 2};
  machine.enable_perf(reg);
  occam::Runtime rt{machine};
  std::vector<occam::Runtime::Body> bodies;
  bodies.push_back([](occam::Ctx& ctx) -> sim::Proc {
    co_await ctx.send(1, kTag, std::vector<double>(2, 1.0));
  });
  for (net::NodeId id = 1; id <= 2; ++id) {
    bodies.push_back([](occam::Ctx& ctx) -> sim::Proc {
      std::vector<double> data;
      co_await ctx.recv(ctx.id() - 1, kTag, &data);
      co_await ctx.send(ctx.id() + 1, kTag, std::move(data));
    });
  }
  bodies.push_back([](occam::Ctx& ctx) -> sim::Proc {
    std::vector<double> data;
    co_await ctx.recv(2, kTag, &data);
  });
  const sim::SimTime wall = rt.run(bodies);

  const perf::MessageReport r =
      perf::analyze_messages(perf::snapshot(reg, wall));
  ASSERT_EQ(r.flights.size(), 3u);
  ASSERT_EQ(r.critical.chain.size(), 3u);
  sim::SimTime sum{};
  std::map<std::uint32_t, const perf::Flight*> by_id;
  for (const perf::Flight& f : r.flights) {
    by_id[f.id] = &f;
  }
  for (std::size_t i = 0; i < r.critical.chain.size(); ++i) {
    const perf::Flight* f = by_id.at(r.critical.chain[i]);
    sum += f->latency();
    if (i > 0) {
      // Chain links: each flight starts at the previous one's destination,
      // after its delivery.
      const perf::Flight* prev = by_id.at(r.critical.chain[i - 1]);
      EXPECT_EQ(f->src, prev->dst);
      EXPECT_LE(prev->deliver, f->inject);
    }
  }
  EXPECT_EQ(r.critical.length, sum);
  EXPECT_GT(r.critical.wall_fraction, 0.0);
  EXPECT_LE(r.critical.wall_fraction, 1.0);
}

TEST(Tscope, SelfSendIsAZeroHopFlight) {
  CounterRegistry reg;
  sim::Simulator sim;
  core::TSeries machine{sim, 1};
  machine.enable_perf(reg);
  occam::Runtime rt{machine};
  const sim::SimTime wall = rt.run([](occam::Ctx& ctx) -> sim::Proc {
    co_await ctx.send(ctx.id(), kTag, std::vector<double>(1, 1.0));
    occam::Msg m;
    co_await ctx.recv_any(kTag, &m);
  });
  const perf::MessageReport r =
      perf::analyze_messages(perf::snapshot(reg, wall));
  ASSERT_EQ(r.flights.size(), 2u);
  for (const perf::Flight& f : r.flights) {
    EXPECT_EQ(f.src, f.dst);
    EXPECT_TRUE(f.hops.empty());
    EXPECT_EQ(f.ecube_min, 0);
    EXPECT_TRUE(f.latency().is_zero());
  }
  EXPECT_EQ(r.max_hops, 0);
  EXPECT_EQ(r.total_hops, 0u);
}

TEST(Tscope, DumpRoundTripIsByteIdentical) {
  // Satellite of the tscope PR: export -> loader -> re-export reproduces
  // the document byte for byte, message-lifecycle events included.
  CounterRegistry reg;
  const sim::SimTime wall = run_alltoall(2, reg);
  const perf::json::Value doc = perf::to_json(reg, wall);
  const std::string first = doc.dump(2);
  const perf::Dump reloaded = perf::from_json(doc);
  EXPECT_EQ(perf::to_json(reloaded).dump(2), first);
  // The reloaded dump stitches identically to the in-process snapshot.
  const std::string direct =
      perf::messages_to_json(
          perf::analyze_messages(perf::snapshot(reg, wall)))
          .dump(2);
  EXPECT_EQ(perf::messages_to_json(perf::analyze_messages(reloaded)).dump(2),
            direct);
}

TEST(Tscope, IdenticalRunsProduceIdenticalReports) {
  CounterRegistry a;
  CounterRegistry b;
  const sim::SimTime wall_a = run_alltoall(2, a);
  const sim::SimTime wall_b = run_alltoall(2, b);
  EXPECT_EQ(wall_a, wall_b);
  EXPECT_EQ(perf::to_json(a, wall_a).dump(2), perf::to_json(b, wall_b).dump(2));
  EXPECT_EQ(perf::messages_to_json(
                perf::analyze_messages(perf::snapshot(a, wall_a)))
                .dump(2),
            perf::messages_to_json(
                perf::analyze_messages(perf::snapshot(b, wall_b)))
                .dump(2));
}

TEST(Tscope, RingEvictionDegradesToIncompleteFlights) {
  // A deliberately tiny span ring: early lifecycle events are evicted, so
  // the stitcher must report those flights as incomplete instead of
  // fabricating records, and the drop count must surface in the report.
  CounterRegistry reg{CounterRegistry::Options{.timeline_capacity = 32}};
  const sim::SimTime wall = run_alltoall(2, reg);
  const perf::MessageReport r =
      perf::analyze_messages(perf::snapshot(reg, wall));
  EXPECT_GT(r.spans_dropped, 0u);
  EXPECT_GT(r.incomplete, 0u);
  EXPECT_LT(r.flights.size(), 12u);
  // What does survive is still internally consistent.
  for (const perf::Flight& f : r.flights) {
    EXPECT_EQ(static_cast<int>(f.hops.size()), f.ecube_min);
    EXPECT_GE(f.deliver, f.inject);
  }
}

TEST(Tscope, UntracedDumpYieldsEmptyReport) {
  // A single-node workload dump (vpu/cp/mem spans, no messages) must parse
  // to a zero-message report rather than misreading arithmetic spans.
  CounterRegistry reg;
  sim::Simulator sim;
  node::Node nd{sim, 0};
  reg.meta().nodes = 1;
  nd.attach_perf(reg);
  sim.spawn([](node::Node* n) -> sim::Proc {
    co_await n->gather(64);
    co_await n->cp_work(100);
  }(&nd));
  sim.run();
  const perf::MessageReport r =
      perf::analyze_messages(perf::snapshot(reg, sim.now()));
  EXPECT_TRUE(r.flights.empty());
  EXPECT_EQ(r.incomplete, 0u);
  EXPECT_EQ(r.latency_ps.count(), 0u);
  EXPECT_TRUE(r.critical.chain.empty());
}

}  // namespace
}  // namespace fpst
