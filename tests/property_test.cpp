// Cross-module property tests: algebraic invariants of the soft float,
// assembler round-trip fuzzing, collective-schedule properties over random
// roots, channel ordering under load, and a large-machine smoke test.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <map>
#include <random>

#include "cp/assembler.hpp"
#include "fp/softfloat.hpp"
#include "net/hypercube.hpp"
#include "occam/occam.hpp"

namespace fpst {
namespace {

using namespace fpst::sim::literals;

// ---------------------------- soft float ----------------------------------

double rnd_normal(std::mt19937_64& rng, int spread) {
  std::uniform_real_distribution<double> mant(1.0, 2.0);
  std::uniform_int_distribution<int> exp(-spread, spread);
  std::uniform_int_distribution<int> sign(0, 1);
  return (sign(rng) ? -1.0 : 1.0) * std::ldexp(mant(rng), exp(rng));
}

TEST(FpProperties, AdditionIsCommutative) {
  std::mt19937_64 rng{1};
  for (int i = 0; i < 20000; ++i) {
    const fp::T64 a = fp::T64::from_double(rnd_normal(rng, 100));
    const fp::T64 b = fp::T64::from_double(rnd_normal(rng, 100));
    fp::Flags f1;
    fp::Flags f2;
    EXPECT_EQ(add(a, b, f1).bits(), add(b, a, f2).bits());
  }
}

TEST(FpProperties, MultiplicationIsCommutative) {
  std::mt19937_64 rng{2};
  for (int i = 0; i < 20000; ++i) {
    const fp::T64 a = fp::T64::from_double(rnd_normal(rng, 200));
    const fp::T64 b = fp::T64::from_double(rnd_normal(rng, 200));
    fp::Flags f1;
    fp::Flags f2;
    EXPECT_EQ(mul(a, b, f1).bits(), mul(b, a, f2).bits());
  }
}

TEST(FpProperties, AdditiveIdentityAndInverse) {
  std::mt19937_64 rng{3};
  const fp::T64 zero = fp::T64::from_double(0.0);
  for (int i = 0; i < 10000; ++i) {
    const fp::T64 a = fp::T64::from_double(rnd_normal(rng, 300));
    fp::Flags fl;
    EXPECT_EQ(add(a, zero, fl).bits(), a.bits());
    EXPECT_TRUE(add(a, a.negated(), fl).is_zero());
  }
}

TEST(FpProperties, MultiplyByOneIsIdentity) {
  std::mt19937_64 rng{4};
  const fp::T64 one = fp::T64::from_double(1.0);
  for (int i = 0; i < 10000; ++i) {
    const fp::T64 a = fp::T64::from_double(rnd_normal(rng, 300));
    fp::Flags fl;
    EXPECT_EQ(mul(a, one, fl).bits(), a.bits());
    EXPECT_FALSE(fl.any());
  }
}

TEST(FpProperties, CompareIsAntisymmetric) {
  std::mt19937_64 rng{5};
  for (int i = 0; i < 20000; ++i) {
    const fp::T64 a = fp::T64::from_double(rnd_normal(rng, 50));
    const fp::T64 b = fp::T64::from_double(rnd_normal(rng, 50));
    fp::Flags fl;
    const fp::Ordering ab = compare(a, b, fl);
    const fp::Ordering ba = compare(b, a, fl);
    if (ab == fp::Ordering::less) {
      EXPECT_EQ(ba, fp::Ordering::greater);
    } else if (ab == fp::Ordering::greater) {
      EXPECT_EQ(ba, fp::Ordering::less);
    } else {
      EXPECT_EQ(ba, ab);
    }
  }
}

TEST(FpProperties, NarrowOfWidenIsIdentity) {
  std::mt19937_64 rng{6};
  for (int i = 0; i < 20000; ++i) {
    std::uniform_int_distribution<std::uint32_t> bits32;
    const fp::T32 a = fp::T32::from_bits(bits32(rng));
    if (a.is_nan()) {
      continue;  // NaN payloads are canonicalised, not preserved
    }
    fp::Flags fl;
    const fp::T32 back = fp::T32::narrowed(a.widened(), fl);
    // Denormal inputs flush on the way in; everything else round-trips.
    const bool denorm = fp::kBinary32.exp_field(a.bits()) == 0 &&
                        (a.bits() & fp::kBinary32.mant_mask()) != 0;
    if (!denorm) {
      EXPECT_EQ(back.bits(), a.bits());
      EXPECT_FALSE(fl.inexact);
    }
  }
}

TEST(FpProperties, SmallestNormalBoundary) {
  // min_normal / 2 flushes; min_normal * 1 survives.
  const fp::T64 min_normal = fp::T64::from_bits(0x0010'0000'0000'0000ull);
  fp::Flags fl;
  EXPECT_TRUE(mul(min_normal, fp::T64::from_double(0.5), fl).is_zero());
  EXPECT_TRUE(fl.underflow);
  fp::Flags fl2;
  EXPECT_EQ(mul(min_normal, fp::T64::from_double(1.0), fl2).bits(),
            min_normal.bits());
  EXPECT_FALSE(fl2.any());
}

// ---------------------------- assembler fuzz ------------------------------

TEST(AssemblerFuzz, RandomOperandsRoundTripThroughPrefixes) {
  std::mt19937_64 rng{7};
  std::uniform_int_distribution<std::int32_t> val(
      std::numeric_limits<std::int32_t>::min(),
      std::numeric_limits<std::int32_t>::max());
  const cp::Op ops[] = {cp::Op::ldc, cp::Op::adc, cp::Op::j, cp::Op::ldl,
                        cp::Op::stl, cp::Op::ajw, cp::Op::eqc};
  for (int i = 0; i < 50000; ++i) {
    const cp::Op op = ops[static_cast<std::size_t>(i) % std::size(ops)];
    const std::int32_t v = val(rng);
    const auto bytes = cp::encode(op, v);
    const cp::Decoded d = cp::decode(bytes, 0);
    ASSERT_EQ(d.op, op);
    ASSERT_EQ(d.operand, v);
    ASSERT_EQ(d.size, bytes.size());
  }
}

TEST(AssemblerFuzz, ProgramsOfRandomInstructionsDisassembleCompletely) {
  std::mt19937_64 rng{8};
  std::uniform_int_distribution<std::int32_t> val(-100000, 100000);
  for (int trial = 0; trial < 50; ++trial) {
    std::string src;
    int count = 0;
    for (int i = 0; i < 200; ++i) {
      src += "adc " + std::to_string(val(rng)) + "\n";
      ++count;
    }
    src += "halt\n";
    const cp::Program p = cp::assemble(src);
    // Decode the whole image instruction by instruction.
    std::size_t pos = 0;
    int decoded = 0;
    while (pos < p.bytes.size()) {
      const cp::Decoded d = cp::decode(p.bytes, pos);
      pos += d.size;
      ++decoded;
    }
    EXPECT_EQ(decoded, count + 1);
  }
}

// -------------------------- collectives over roots ------------------------

class BroadcastRoots : public ::testing::TestWithParam<net::NodeId> {};

TEST_P(BroadcastRoots, ScheduleIsValidFromEveryRoot) {
  const net::Hypercube cube{5};
  const net::NodeId root = GetParam();
  std::set<net::NodeId> have{root};
  for (const net::CommStep& s : net::broadcast_schedule(cube, root)) {
    EXPECT_TRUE(have.count(s.from));
    EXPECT_TRUE(have.insert(s.to).second);
  }
  EXPECT_EQ(have.size(), cube.size());
}

INSTANTIATE_TEST_SUITE_P(Roots, BroadcastRoots,
                         ::testing::Values(0, 1, 7, 13, 21, 31));

TEST(NetProperties, AllreduceScheduleLoadsEveryEdgeEqually) {
  const net::Hypercube cube{5};
  std::map<std::pair<net::NodeId, net::NodeId>, int> load;
  for (const net::CommStep& s : net::allreduce_schedule(cube)) {
    const net::NodeId a = std::min(s.from, s.to);
    const net::NodeId b = std::max(s.from, s.to);
    ++load[{a, b}];
  }
  EXPECT_EQ(load.size(), cube.edges().size()) << "every edge used";
  for (const auto& [edge, count] : load) {
    EXPECT_EQ(count, 2) << "each edge carries one exchange in each direction";
  }
}

TEST(NetProperties, EcubeRoutesNeverLoop) {
  const net::Hypercube cube{8};
  std::mt19937 rng{9};
  std::uniform_int_distribution<net::NodeId> pick(0, 255);
  for (int t = 0; t < 5000; ++t) {
    const auto path = cube.ecube_path(pick(rng), pick(rng));
    std::set<net::NodeId> seen(path.begin(), path.end());
    EXPECT_EQ(seen.size(), path.size()) << "no node visited twice";
  }
}

// ------------------------------ channels ----------------------------------

sim::Proc stress_sender(sim::Channel<int>* ch, int base) {
  for (int i = 0; i < 50; ++i) {
    co_await ch->send(base + i);
  }
}

sim::Proc stress_receiver(sim::Channel<int>* ch, std::vector<int>* got,
                          int n) {
  for (int i = 0; i < n; ++i) {
    got->push_back(co_await ch->recv());
  }
}

TEST(ChannelProperties, ManySendersDrainCompletelyAndFairly) {
  sim::Simulator sim;
  sim::Channel<int> ch{sim};
  std::vector<int> got;
  constexpr int kSenders = 8;
  for (int s = 0; s < kSenders; ++s) {
    sim.spawn(stress_sender(&ch, 1000 * s));
  }
  sim.spawn(stress_receiver(&ch, &got, kSenders * 50));
  sim.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kSenders) * 50);
  // Per-sender FIFO: each sender's values arrive in its own order.
  std::map<int, int> last;
  for (int v : got) {
    const int s = v / 1000;
    EXPECT_GT(v, last.count(s) ? last[s] : -1);
    last[s] = v;
  }
}

// --------------------------- messaging fuzz -------------------------------

TEST(OccamFuzz, RandomPointToPointTrafficDeliversExactly) {
  // 120 random messages with unique tags between random node pairs on a
  // 4-cube; every payload must arrive intact despite multi-hop routing and
  // shared wires.
  sim::Simulator sim;
  core::TSeries machine{sim, 4};
  occam::Runtime rt{machine};
  std::mt19937_64 rng{0xfeed};
  struct M {
    net::NodeId src;
    net::NodeId dst;
    std::uint16_t tag;
    std::vector<double> data;
  };
  std::vector<M> plan;
  std::uniform_int_distribution<net::NodeId> pick(0, 15);
  std::uniform_int_distribution<std::size_t> len(1, 40);
  for (std::uint16_t k = 0; k < 120; ++k) {
    M m;
    m.src = pick(rng);
    do {
      m.dst = pick(rng);
    } while (m.dst == m.src);
    m.tag = static_cast<std::uint16_t>(1000 + k);
    m.data.resize(len(rng));
    for (double& v : m.data) {
      v = static_cast<double>(k) + 0.001 * static_cast<double>(m.data.size());
    }
    plan.push_back(std::move(m));
  }
  std::vector<std::vector<double>> received(plan.size());
  rt.run([&](occam::Ctx& ctx) -> sim::Proc {
    std::vector<sim::Proc> ops;
    for (std::size_t k = 0; k < plan.size(); ++k) {
      if (plan[k].src == ctx.id()) {
        ops.push_back(ctx.send(plan[k].dst, plan[k].tag, plan[k].data));
      }
      if (plan[k].dst == ctx.id()) {
        ops.push_back(ctx.recv(plan[k].src, plan[k].tag, &received[k]));
      }
    }
    co_await occam::Par{std::move(ops)};
  });
  for (std::size_t k = 0; k < plan.size(); ++k) {
    EXPECT_EQ(received[k], plan[k].data) << "message " << k;
  }
}

// --------------------------- large machine smoke --------------------------

TEST(LargeMachine, BarrierOn512Nodes) {
  // Half-gigabyte of simulated DRAM, 4608 router daemons: the simulator
  // handles a 9-cube (64 modules / 32 cabinets) on a laptop.
  sim::Simulator sim;
  core::TSeries machine{sim, 9};
  occam::Runtime rt{machine};
  const sim::SimTime t = rt.run([](occam::Ctx& ctx) -> sim::Proc {
    co_await ctx.barrier();
  });
  EXPECT_GT(t.ps(), 0);
  EXPECT_EQ(machine.module_count(), 64u);
}

TEST(LargeMachine, AllreduceOn128Nodes) {
  sim::Simulator sim;
  core::TSeries machine{sim, 7};
  occam::Runtime rt{machine};
  std::vector<double> results(machine.size());
  rt.run([&](occam::Ctx& ctx) -> sim::Proc {
    double x = 1.0;
    co_await ctx.allreduce_sum(&x);
    results[ctx.id()] = x;
  });
  for (net::NodeId i = 0; i < machine.size(); ++i) {
    ASSERT_EQ(results[i], 128.0);
  }
}

}  // namespace
}  // namespace fpst
