// Property tests for the abstract-interpretation lattice exported by
// check/tisa_verify.hpp (DESIGN.md §6.1): the verifier's and the cost
// model's soundness rests on abs_join being a least upper bound, abs_leq
// being a partial order consistent with it, abs_step being monotone, and
// the lattice having finite height so fixpoint iteration terminates.
// Randomised over a seeded generator, so failures reproduce exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "check/tisa_verify.hpp"
#include "cp/isa.hpp"

namespace fpst::check {
namespace {

constexpr int kTrials = 5000;

// mt19937::result_type is uint_fast32_t (64-bit here); narrow explicitly.
std::uint32_t draw(std::mt19937& rng) {
  return static_cast<std::uint32_t>(rng() & 0xFFFFFFFFu);
}

// Small value domain so equal-known joins actually occur; a uniform
// 32-bit draw would almost never collide and the `keep equal constants`
// branch of abs_join would go untested.
AbsVal random_val(std::mt19937& rng) {
  switch (draw(rng) % 4u) {
    case 0:
      return abs_unknown();
    case 1:
      return abs_const(draw(rng) % 3u);
    default:
      return abs_const(draw(rng));
  }
}

AbsStack random_stack(std::mt19937& rng) {
  AbsStack st;
  st.depth = static_cast<int>(draw(rng) % 5u) - 1;  // -1 (top) .. 3
  st.a = random_val(rng);
  st.b = random_val(rng);
  st.c = random_val(rng);
  return st;
}

AbsStack joined(const AbsStack& x, const AbsStack& y) {
  AbsStack t = x;
  abs_join(t, y);
  return t;
}

// Widen a copy of `x` field-by-field: the result is ⊒ x by construction.
AbsStack widen(const AbsStack& x, std::mt19937& rng) {
  AbsStack y = x;
  if (draw(rng) % 2u == 0) {
    y.depth = -1;
  }
  for (AbsVal* r : {&y.a, &y.b, &y.c}) {
    if (draw(rng) % 2u == 0) {
      *r = abs_unknown();
    }
  }
  return y;
}

// ------------------------------------------------------------ join laws --

TEST(LatticeProperty, JoinIsIdempotent) {
  std::mt19937 rng{1};
  for (int i = 0; i < kTrials; ++i) {
    const AbsStack x = random_stack(rng);
    AbsStack t = x;
    EXPECT_FALSE(abs_join(t, x));  // no change reported...
    EXPECT_EQ(t, x);               // ...and none made
  }
}

TEST(LatticeProperty, JoinIsCommutative) {
  std::mt19937 rng{2};
  for (int i = 0; i < kTrials; ++i) {
    const AbsStack x = random_stack(rng);
    const AbsStack y = random_stack(rng);
    EXPECT_EQ(joined(x, y), joined(y, x));
  }
}

TEST(LatticeProperty, JoinIsAssociative) {
  std::mt19937 rng{3};
  for (int i = 0; i < kTrials; ++i) {
    const AbsStack x = random_stack(rng);
    const AbsStack y = random_stack(rng);
    const AbsStack z = random_stack(rng);
    EXPECT_EQ(joined(joined(x, y), z), joined(x, joined(y, z)));
  }
}

TEST(LatticeProperty, JoinIsAnUpperBound) {
  std::mt19937 rng{4};
  for (int i = 0; i < kTrials; ++i) {
    const AbsStack x = random_stack(rng);
    const AbsStack y = random_stack(rng);
    const AbsStack j = joined(x, y);
    EXPECT_TRUE(abs_leq(x, j));
    EXPECT_TRUE(abs_leq(y, j));
  }
}

TEST(LatticeProperty, JoinIsTheLeastUpperBound) {
  // Any common upper bound z of {x, y} is above their join. Random triples
  // rarely satisfy the premise, so count hits to keep the test honest.
  std::mt19937 rng{5};
  int hits = 0;
  for (int i = 0; i < kTrials * 4; ++i) {
    const AbsStack x = random_stack(rng);
    const AbsStack y = random_stack(rng);
    const AbsStack z = random_stack(rng);
    if (abs_leq(x, z) && abs_leq(y, z)) {
      ++hits;
      EXPECT_TRUE(abs_leq(joined(x, y), z));
    }
  }
  EXPECT_GT(hits, 50) << "premise never fired; the test is vacuous";
}

TEST(LatticeProperty, JoinCharacterisesTheOrder) {
  // x ⊑ y  ⇔  y absorbs x (joining x into y changes nothing).
  std::mt19937 rng{6};
  for (int i = 0; i < kTrials; ++i) {
    const AbsStack x = random_stack(rng);
    const AbsStack y = random_stack(rng);
    EXPECT_EQ(abs_leq(x, y), joined(y, x) == y);
  }
}

// ---------------------------------------------------------- order laws --

TEST(LatticeProperty, LeqIsReflexive) {
  std::mt19937 rng{7};
  for (int i = 0; i < kTrials; ++i) {
    const AbsStack x = random_stack(rng);
    EXPECT_TRUE(abs_leq(x, x));
  }
}

TEST(LatticeProperty, LeqIsAntisymmetric) {
  std::mt19937 rng{8};
  for (int i = 0; i < kTrials; ++i) {
    const AbsStack x = random_stack(rng);
    const AbsStack y = random_stack(rng);
    if (abs_leq(x, y) && abs_leq(y, x)) {
      EXPECT_EQ(x, y);
    }
  }
}

TEST(LatticeProperty, LeqIsTransitiveAlongWideningChains) {
  std::mt19937 rng{9};
  for (int i = 0; i < kTrials; ++i) {
    const AbsStack x = random_stack(rng);
    const AbsStack y = widen(x, rng);
    const AbsStack z = widen(y, rng);
    EXPECT_TRUE(abs_leq(x, y));
    EXPECT_TRUE(abs_leq(y, z));
    EXPECT_TRUE(abs_leq(x, z));
  }
}

// ---------------------------------------------------- finite height ------

TEST(LatticeProperty, AccumulatorStrictlyIncreasesAtMostFourTimes) {
  // The fixpoint loop terminates because each of the 4 fields (depth and
  // three registers) can only widen once: a join accumulator reports
  // `changed` at most 4 times no matter how many states flow into it.
  std::mt19937 rng{10};
  for (int i = 0; i < 200; ++i) {
    AbsStack acc = random_stack(rng);
    int changes = 0;
    for (int k = 0; k < 64; ++k) {
      if (abs_join(acc, random_stack(rng))) {
        ++changes;
      }
    }
    EXPECT_LE(changes, 4);
  }
}

// ------------------------------------------------- transfer monotonicity --

Insn make_insn(cp::Op op, std::int32_t operand) {
  Insn in;
  in.addr = 0x40;
  in.d.op = op;
  in.d.operand = operand;
  in.d.size = 1;
  return in;
}

Insn random_insn(std::mt19937& rng) {
  // Every opcode the decoder can produce; abs_step is total over all of
  // them (cj/call stack effects are per-edge and excluded by contract).
  static constexpr cp::Op kPrimaries[] = {
      cp::Op::j,    cp::Op::ldlp, cp::Op::pfix, cp::Op::ldnl,
      cp::Op::ldc,  cp::Op::ldnlp, cp::Op::nfix, cp::Op::ldl,
      cp::Op::adc,  cp::Op::call, cp::Op::cj,   cp::Op::ajw,
      cp::Op::eqc,  cp::Op::stl,  cp::Op::stnl,
  };
  if (draw(rng) % 2u == 0) {
    const cp::Op op = kPrimaries[draw(rng) % std::size(kPrimaries)];
    return make_insn(op, static_cast<std::int32_t>(draw(rng) % 16u));
  }
  const auto sec = static_cast<std::int32_t>(
      draw(rng) % (static_cast<std::uint32_t>(cp::SecOp::testerr) + 1u));
  return make_insn(cp::Op::opr, sec);
}

TEST(LatticeProperty, TransferIsMonotone) {
  // x ⊑ y  ⟹  step(x) ⊑ step(y): widening the input can only widen the
  // output, so fixpoint iteration over joined block states is sound.
  std::mt19937 rng{11};
  for (int i = 0; i < kTrials; ++i) {
    const Insn in = random_insn(rng);
    const AbsStack x = random_stack(rng);
    const AbsStack y = widen(x, rng);
    AbsStack sx = x;
    AbsStack sy = y;
    abs_step(in, sx);
    abs_step(in, sy);
    EXPECT_TRUE(abs_leq(sx, sy))
        << "op " << static_cast<int>(in.d.op) << " operand " << in.d.operand;
  }
}

TEST(LatticeProperty, TransferAgreesWithItselfOnEqualInputs) {
  // abs_step is a pure function of (insn, state) — no hidden global state.
  std::mt19937 rng{12};
  for (int i = 0; i < kTrials; ++i) {
    const Insn in = random_insn(rng);
    const AbsStack x = random_stack(rng);
    AbsStack s1 = x;
    AbsStack s2 = x;
    abs_step(in, s1);
    abs_step(in, s2);
    EXPECT_EQ(s1, s2);
  }
}

}  // namespace
}  // namespace fpst::check
