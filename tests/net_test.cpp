// Tests for the binary n-cube layer: Gray codes, routing, the Figure 3
// embeddings (ring, mesh, torus, FFT butterfly) and collective schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "net/hypercube.hpp"

namespace fpst::net {
namespace {

TEST(Gray, RoundTripsAndAdjacency) {
  for (std::uint32_t i = 0; i < (1u << 14); ++i) {
    EXPECT_EQ(gray_inverse(gray(i)), i);
  }
  // Consecutive Gray codes differ in exactly one bit (including wraparound
  // for power-of-two lengths).
  for (int dim = 1; dim <= 14; ++dim) {
    const std::uint32_t n = 1u << dim;
    for (std::uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(Hypercube::hamming(gray(i), gray((i + 1) % n)), 1)
          << "dim=" << dim << " i=" << i;
    }
  }
}

TEST(Hypercube, BasicGeometry) {
  const Hypercube cube{4};
  EXPECT_EQ(cube.size(), 16u);
  EXPECT_EQ(cube.diameter(), 4) << "O(log2 N) long-range cost";
  EXPECT_EQ(cube.neighbor(0b0101, 1), 0b0111u);
  EXPECT_EQ(Hypercube::hamming(0b0000, 0b1111), 4);
  EXPECT_EQ(cube.edges().size(), 16u * 4 / 2) << "N*n/2 undirected edges";
}

TEST(Hypercube, RejectsBadDimensions) {
  EXPECT_THROW(Hypercube{-1}, std::invalid_argument);
  EXPECT_THROW(Hypercube{15}, std::invalid_argument)
      << "the largest T Series configuration is a 14-cube";
  EXPECT_NO_THROW(Hypercube{14});
}

TEST(Hypercube, EcubePathIsMinimalAndDimensionOrdered) {
  const Hypercube cube{6};
  std::mt19937 rng{3};
  std::uniform_int_distribution<std::uint32_t> pick(0, 63);
  for (int t = 0; t < 2000; ++t) {
    const NodeId s = pick(rng);
    const NodeId d = pick(rng);
    const auto path = cube.ecube_path(s, d);
    ASSERT_EQ(path.front(), s);
    ASSERT_EQ(path.back(), d);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, Hypercube::hamming(s, d))
        << "path length equals Hamming distance (minimal)";
    // Each hop flips exactly one bit, in strictly ascending dimension order.
    int prev_dim = -1;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const std::uint32_t diff = path[i] ^ path[i + 1];
      EXPECT_EQ(std::popcount(diff), 1);
      const int dim = std::countr_zero(diff);
      EXPECT_GT(dim, prev_dim);
      prev_dim = dim;
    }
  }
}

class EmbeddingDim : public ::testing::TestWithParam<int> {};

TEST_P(EmbeddingDim, GrayRingPreservesAdjacency) {
  const int dim = GetParam();
  const Hypercube cube{dim};
  const EmbeddingStats st = analyze(cube, ring_embedding(dim));
  EXPECT_TRUE(st.adjacency_preserved) << "dilation-1 ring for dim " << dim;
  EXPECT_EQ(st.congestion, 1) << "each cube edge carries at most one ring edge";
}

TEST_P(EmbeddingDim, NaiveRingIsWorse) {
  const int dim = GetParam();
  if (dim < 2) {
    GTEST_SKIP() << "naive == gray below dim 2";
  }
  const Hypercube cube{dim};
  const EmbeddingStats st = analyze(cube, naive_ring_embedding(dim));
  EXPECT_GT(st.dilation, 1);
  EXPECT_EQ(st.dilation, dim)
      << "the 2^k -> 2^k - 1 step flips every bit up to the top";
}

TEST_P(EmbeddingDim, ButterflyIsTheCubeItself) {
  const int dim = GetParam();
  const Hypercube cube{dim};
  const EmbeddingStats st = analyze(cube, butterfly_embedding(dim));
  EXPECT_TRUE(st.adjacency_preserved);
  EXPECT_EQ(st.congestion, 1);
}

INSTANTIATE_TEST_SUITE_P(Dims, EmbeddingDim, ::testing::Values(1, 2, 3, 4, 6,
                                                               8, 10));

TEST(Embedding, Mesh2DPreservesAdjacency) {
  const Hypercube cube{6};
  const EmbeddingStats st = analyze(cube, mesh_embedding({3, 3}));  // 8x8
  EXPECT_TRUE(st.adjacency_preserved);
  EXPECT_EQ(st.congestion, 1);
}

TEST(Embedding, Mesh3DPreservesAdjacency) {
  const Hypercube cube{6};
  const EmbeddingStats st =
      analyze(cube, mesh_embedding({2, 2, 2}));  // 4x4x4
  EXPECT_TRUE(st.adjacency_preserved);
}

TEST(Embedding, TorusPreservesAdjacencyIncludingWrap) {
  const Hypercube cube{8};
  const EmbeddingStats st = analyze(cube, torus_embedding({4, 4}));  // 16x16
  EXPECT_TRUE(st.adjacency_preserved)
      << "Gray-coded wraparound edges are cube edges too";
}

TEST(Embedding, MeshVertexMapIsAPermutation) {
  const Embedding e = mesh_embedding({3, 4});
  std::set<NodeId> seen(e.map.begin(), e.map.end());
  EXPECT_EQ(seen.size(), e.map.size()) << "one node per mesh vertex";
}

TEST(Embedding, GuestEdgeCounts) {
  // 8x8 mesh: 2*8*7 = 112 edges; torus adds 16 wrap edges.
  EXPECT_EQ(mesh_embedding({3, 3}).guest_edges.size(), 112u);
  EXPECT_EQ(torus_embedding({3, 3}).guest_edges.size(), 128u);
  // Butterfly on dim d: d * 2^d / 2 edges.
  EXPECT_EQ(butterfly_embedding(4).guest_edges.size(), 32u);
}

TEST(Embedding, RejectsOversizedGrids) {
  EXPECT_THROW(mesh_embedding({8, 8}), std::invalid_argument);
  EXPECT_THROW(mesh_embedding({0}), std::invalid_argument);
}

TEST(Collectives, BroadcastReachesAllNodesInLogSteps) {
  const Hypercube cube{5};
  const NodeId root = 13;
  const auto steps = broadcast_schedule(cube, root);
  EXPECT_EQ(steps.size(), cube.size() - 1) << "every node receives once";
  std::set<NodeId> have{root};
  int max_step = 0;
  for (const CommStep& s : steps) {
    EXPECT_TRUE(have.count(s.from)) << "sender must already hold the datum";
    EXPECT_FALSE(have.count(s.to)) << "no duplicate delivery";
    EXPECT_EQ(cube.neighbor(s.from, s.dim), s.to);
    have.insert(s.to);
    max_step = std::max(max_step, s.step);
  }
  EXPECT_EQ(have.size(), cube.size());
  EXPECT_EQ(max_step, cube.dimension() - 1) << "log2 N communication steps";
}

TEST(Collectives, StepsWithinARoundAreDisjoint) {
  const Hypercube cube{6};
  const auto steps = broadcast_schedule(cube, 0);
  for (int k = 0; k < cube.dimension(); ++k) {
    std::set<NodeId> busy;
    for (const CommStep& s : steps) {
      if (s.step != k) {
        continue;
      }
      EXPECT_TRUE(busy.insert(s.from).second);
      EXPECT_TRUE(busy.insert(s.to).second)
          << "a node appears once per round: contention-free schedule";
    }
  }
}

TEST(Collectives, ReduceMirrorsBroadcast) {
  const Hypercube cube{4};
  const NodeId root = 5;
  const auto red = reduce_schedule(cube, root);
  EXPECT_EQ(red.size(), cube.size() - 1);
  // After all sends, only the root has not transmitted its accumulator.
  std::set<NodeId> senders;
  for (const CommStep& s : red) {
    EXPECT_TRUE(senders.insert(s.from).second) << "each node sends once";
  }
  EXPECT_FALSE(senders.count(root));
}

TEST(Collectives, AllreduceExchangesEveryDimension) {
  const Hypercube cube{4};
  const auto steps = allreduce_schedule(cube);
  EXPECT_EQ(steps.size(), cube.size() * 4);
  for (const CommStep& s : steps) {
    EXPECT_EQ(s.dim, s.step) << "recursive doubling: dimension k at step k";
    EXPECT_EQ(cube.neighbor(s.from, s.dim), s.to);
  }
}

}  // namespace
}  // namespace fpst::net
