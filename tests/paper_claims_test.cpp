// Executable EXPERIMENTS.md: a single regression suite asserting the
// paper's headline quantitative claims directly against the model, so any
// future change that breaks a reproduced number fails CI here even before
// the bench tables are re-read by a human.
#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "net/hypercube.hpp"
#include "node/node.hpp"

namespace fpst {
namespace {

using namespace fpst::sim::literals;

TEST(PaperClaims, Section2_NodeArithmetic) {
  // "a peak speed of 16 MFLOPS" per node; 125 ns cycle; 6-stage adder,
  // 5/7-stage multiplier.
  EXPECT_DOUBLE_EQ(vpu::VpuParams::peak_mflops(), 16.0);
  EXPECT_EQ(vpu::VpuParams::cycle(), 125_ns);
  EXPECT_EQ(vpu::VpuParams::kAdderStages, 6);
  EXPECT_EQ(vpu::VpuParams::kMulStages32, 5);
  EXPECT_EQ(vpu::VpuParams::kMulStages64, 7);
}

TEST(PaperClaims, Section2_Memory) {
  // "1 MByte of dual-ported dynamic RAM"; "256K words"; vectors of
  // 256/128 elements; banks of 256 and 768 vectors; 400 ns word access
  // (10 MB/s); 400 ns row transfer (2560 MB/s); 1.6 us / 0.8 us gather
  // moves.
  EXPECT_EQ(mem::MemParams::kBytes, 1u << 20);
  EXPECT_EQ(mem::MemParams::kWords, 256u * 1024);
  EXPECT_EQ(mem::MemParams::kElems32, 256u);
  EXPECT_EQ(mem::MemParams::kElems64, 128u);
  EXPECT_EQ(mem::MemParams::kBankARows, 256u);
  EXPECT_EQ(mem::MemParams::kBankBRows, 768u);
  EXPECT_DOUBLE_EQ(mem::MemParams::cp_bandwidth_mb_s(), 10.0);
  EXPECT_DOUBLE_EQ(mem::MemParams::row_bandwidth_mb_s(), 2560.0);
  EXPECT_EQ(mem::MemParams::gather_move64(), 1600_ns);
  EXPECT_EQ(mem::MemParams::gather_move32(), 800_ns);
}

TEST(PaperClaims, Section2_Control) {
  // "7.5 MIPS instruction rate"; "2048 bytes of on-chip RAM"; "four
  // bidirectional serial communications links".
  EXPECT_NEAR(cp::CpuParams::mips(), 7.5, 0.001);
  EXPECT_EQ(cp::kOnChipBytes, 2048u);
  EXPECT_EQ(link::LinkParams::kPhysicalLinks, 4);
}

TEST(PaperClaims, Section2_Communications) {
  // "8-bit byte ... two synchronization bits and one stop bit ... two
  // acknowledge bits"; ">0.5 MB/s per link"; ">4 MB/s total"; "startup
  // time of about 5 us"; "16 bidirectional sublinks".
  EXPECT_EQ(link::LinkParams::kBitTimesPerByte, 13);
  EXPECT_DOUBLE_EQ(link::LinkParams::unidir_bandwidth_mb_s(), 0.5);
  EXPECT_GE(4 * 2 * link::LinkParams::unidir_bandwidth_mb_s(), 4.0);
  EXPECT_EQ(link::LinkParams::dma_startup(), 5_us);
  EXPECT_EQ(link::LinkParams::kSublinksPerNode, 16);
}

TEST(PaperClaims, Section2_BalanceRatios) {
  // "(Arithmetic Time) : (Gather Time) : (Link Transfer Time)
  //    .125 us : 1.6 us : 16 us = 1 : 13 : 130"
  EXPECT_EQ(node::BalanceRatios::arithmetic(), 125_ns);
  EXPECT_EQ(node::BalanceRatios::gather(), 1600_ns);
  EXPECT_EQ(node::BalanceRatios::link_word(), 16_us);
  EXPECT_NEAR(node::BalanceRatios::gather_over_arith(), 13.0, 0.5);
  EXPECT_NEAR(node::BalanceRatios::link_over_arith(), 130.0, 3.0);
}

TEST(PaperClaims, Section3_Topology) {
  // "2^n processors, with n connections per node ... long-range
  // communication costs grow only as O(log2 n)"; dilation-1 embeddings for
  // rings, meshes, toroids and FFT butterflies.
  for (int d : {3, 6, 10}) {
    const net::Hypercube cube{d};
    EXPECT_EQ(cube.diameter(), d);
    EXPECT_TRUE(analyze(cube, net::ring_embedding(d)).adjacency_preserved);
    EXPECT_TRUE(
        analyze(cube, net::butterfly_embedding(d)).adjacency_preserved);
  }
  EXPECT_TRUE(analyze(net::Hypercube{6}, net::mesh_embedding({3, 3}))
                  .adjacency_preserved);
  EXPECT_TRUE(analyze(net::Hypercube{6}, net::torus_embedding({3, 3}))
                  .adjacency_preserved);
}

TEST(PaperClaims, Section3_ModulesAndSystems) {
  // Module: "128 MFLOPS peak ... 8 MB of user RAM ... over 12 MB/s";
  // cabinet = 16 nodes; 64 nodes = 1 GFLOPS / 64 MB / 8 disks; practical
  // maximum 12-cube = 4096 nodes, >65 GFLOPS, 4 GB; 14-cube constructible.
  EXPECT_DOUBLE_EQ(core::SystemParams::module_peak_mflops(), 128.0);
  EXPECT_DOUBLE_EQ(core::SystemParams::module_ram_mb(), 8.0);
  EXPECT_GE(core::SystemParams::module_internode_mb_s(), 12.0);
  EXPECT_EQ(core::ConfigReport::derive(4).nodes, 16u);
  const core::ConfigReport c64 = core::ConfigReport::derive(6);
  EXPECT_NEAR(c64.peak_gflops, 1.0, 0.03);
  EXPECT_EQ(c64.system_disks, 8u);
  const core::ConfigReport cmax = core::ConfigReport::derive(12);
  EXPECT_EQ(cmax.nodes, 4096u);
  EXPECT_GE(cmax.peak_gflops, 65.0);
  EXPECT_EQ(cmax.cabinets, 256u);
  EXPECT_TRUE(core::ConfigReport::derive(14).feasible);
  EXPECT_FALSE(core::ConfigReport::derive(14).io_sublinks_per_node > 0);
}

TEST(PaperClaims, Section3_Checkpointing) {
  // "about 15 seconds to take a snapshot, regardless of configuration";
  // "about 10 minutes provides a good compromise".
  EXPECT_EQ(core::CheckpointParams::snapshot_time(), 15_s);
  EXPECT_EQ(core::CheckpointParams::default_interval(), 600_s);
  // The 10-minute compromise is Young-optimal for an MTBF of ~3.3 hours.
  EXPECT_NEAR(core::CheckpointEngine::optimal_interval_s(15.0, 12000.0),
              600.0, 1.0);
}

TEST(PaperClaims, Section2_NoGradualUnderflow) {
  // "gradual underflow is not supported" with 53-bit mantissa and ~1e±308
  // range.
  fp::Flags fl;
  const fp::T64 tiny = fp::T64::from_double(1e-300);
  EXPECT_TRUE(mul(tiny, fp::T64::from_double(1e-10), fl).is_zero());
  EXPECT_TRUE(fl.underflow);
  EXPECT_EQ(fp::kBinary64.mant_bits + 1, 53);
  EXPECT_EQ(fp::kBinary64.exp_bits, 11);
}

}  // namespace
}  // namespace fpst
