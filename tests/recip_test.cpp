// Tests for software division (Newton reciprocal on the pipes): accuracy
// against the host, special values, FTZ interplay, and the timed node-level
// wrapper.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "node/node.hpp"
#include "vpu/recip.hpp"

namespace fpst::vpu {
namespace {

using fp::Flags;
using fp::T64;

double ulps_apart(double a, double b) {
  if (a == b) {
    return 0;
  }
  const double scale = std::ldexp(1.0, std::ilogb(a) - 52);
  return std::fabs(a - b) / scale;
}

TEST(Recip, ExactPowersOfTwo) {
  Flags fl;
  EXPECT_EQ(recip_newton(T64::from_double(1.0), fl).to_double(), 1.0);
  EXPECT_EQ(recip_newton(T64::from_double(2.0), fl).to_double(), 0.5);
  EXPECT_EQ(recip_newton(T64::from_double(0.25), fl).to_double(), 4.0);
  EXPECT_EQ(recip_newton(T64::from_double(-8.0), fl).to_double(), -0.125);
}

TEST(Recip, WithinTwoUlpsOfHostAcrossMagnitudes) {
  std::mt19937_64 rng{0xd10f77};
  std::uniform_real_distribution<double> mant(1.0, 2.0);
  std::uniform_int_distribution<int> exp(-300, 300);
  std::uniform_int_distribution<int> sign(0, 1);
  for (int i = 0; i < 20000; ++i) {
    const double x = (sign(rng) ? -1.0 : 1.0) *
                     std::ldexp(mant(rng), exp(rng));
    Flags fl;
    const double r = recip_newton(T64::from_double(x), fl).to_double();
    EXPECT_LE(ulps_apart(r, 1.0 / x), 2.0) << "x = " << x;
  }
}

TEST(Recip, DivNewtonAgreesWithHostClosely) {
  std::mt19937_64 rng{123};
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  for (int i = 0; i < 5000; ++i) {
    const double b = dist(rng);
    double a = dist(rng);
    if (std::fabs(a) < 1e-3) {
      a = 1.0;
    }
    Flags fl;
    const double q =
        div_newton(T64::from_double(b), T64::from_double(a), fl).to_double();
    EXPECT_NEAR(q, b / a, std::fabs(b / a) * 1e-15 + 1e-300);
  }
}

TEST(Recip, SpecialValues) {
  Flags fl;
  EXPECT_TRUE(recip_newton(T64::from_double(0.0), fl).is_inf());
  const T64 rneg0 = recip_newton(T64::from_double(-0.0), fl);
  EXPECT_TRUE(rneg0.is_inf());
  EXPECT_TRUE(rneg0.sign());
  EXPECT_TRUE(
      recip_newton(T64::from_double(std::numeric_limits<double>::infinity()),
                   fl)
          .is_zero());
  EXPECT_TRUE(recip_newton(T64::from_double(std::nan("")), fl).is_nan());
}

TEST(Recip, HugeInputsFlushToZeroWithUnderflow) {
  // 1 / 1e308 ~ 1e-309 is below the smallest normal: FTZ returns zero.
  Flags fl;
  const T64 r = recip_newton(T64::from_double(1e308), fl);
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(fl.underflow);
}

TEST(Recip, IterationCountMatchesConstant) {
  // 3 flops per iteration, 6 iterations: the published cost model.
  EXPECT_EQ(kRecipIterations, 5);
  EXPECT_EQ(kRecipFlopsPerIteration, 3);
}

sim::Proc run_recip(node::Node* nd, double x, double* out) {
  co_await nd->scalar_recip(x, out);
}

TEST(Recip, NodeWrapperChargesPipeTime) {
  sim::Simulator sim;
  node::Node nd{sim, 0};
  double out = 0;
  sim.spawn(run_recip(&nd, 3.0, &out));
  sim.run();
  EXPECT_NEAR(out, 1.0 / 3.0, 1e-15);
  // 5 iterations x (2 multiplies @7 + subtract @6 stages) x 125 ns.
  EXPECT_EQ(sim.now(), 5 * 20 * vpu::VpuParams::cycle());
}

}  // namespace
}  // namespace fpst::vpu
