// Tests for the shared-bus baseline: single-processor sanity, bus
// saturation with processor count, and the distributed-vs-shared contrast
// from the paper's introduction.
#include <gtest/gtest.h>

#include "baseline/sharedbus.hpp"

namespace fpst::baseline {
namespace {

TEST(SharedBus, SingleProcessorRunsNearNodeSpeed) {
  // The default bus feeds one vector unit: a lone processor should land in
  // the same MFLOPS range as a T node on the same kernel.
  const auto r = run_shared_saxpy(0, 1 << 14, 2.0);
  EXPECT_GT(r.mflops(), 7.5);
  EXPECT_LE(r.mflops(), 16.0);
}

TEST(SharedBus, AggregateThroughputSaturates) {
  const std::size_t n = 1 << 16;
  const auto r1 = run_shared_saxpy(0, n, 2.0);
  const auto r4 = run_shared_saxpy(2, n, 2.0);
  const auto r16 = run_shared_saxpy(4, n, 2.0);
  const auto r64 = run_shared_saxpy(6, n, 2.0);
  // Some speedup from overlapping compute with others' bus phases...
  EXPECT_GT(r4.mflops(), r1.mflops());
  // ...but the bus caps aggregate throughput: 16 -> 64 processors gains
  // almost nothing.
  EXPECT_LT(r64.mflops() / r16.mflops(), 1.15);
  // Hard ceiling: bandwidth / (24 bytes per 2 flops) = 16 MFLOPS.
  EXPECT_LT(r64.mflops(), 17.0);
}

TEST(SharedBus, DistributedMachineOvertakesSharedBus) {
  // The §I argument quantified: at 16 processors the T Series (node-local
  // memory) delivers far more aggregate MFLOPS than the same pipes behind
  // one bus.
  const std::size_t n = 1 << 16;
  const auto shared = run_shared_saxpy(4, n, 2.0);
  const auto distributed = kernels::run_saxpy(4, n, 2.0);
  EXPECT_GT(distributed.mflops() / shared.mflops(), 5.0);
}

TEST(SharedBus, DotUsesLessBusThanSaxpy) {
  const std::size_t n = 1 << 15;
  const auto dot = run_shared_dot(4, n);
  const auto saxpy = run_shared_saxpy(4, n, 1.0);
  EXPECT_LT(dot.elapsed, saxpy.elapsed) << "2 vs 3 words per element";
}

TEST(SharedBus, DeeperInterconnectAddsLatency) {
  BusParams slow;
  slow.latency_per_level = sim::SimTime::microseconds(2);
  const std::size_t n = 1 << 12;
  const auto fast = run_shared_saxpy(4, n, 1.0);
  const auto deep = run_shared_saxpy(4, n, 1.0, slow);
  EXPECT_GT(deep.elapsed, fast.elapsed);
}

}  // namespace
}  // namespace fpst::baseline
