// Tests for the tperf observability subsystem (src/perf): counter
// determinism, span invariants, the Chrome trace_event dump schema, the
// JSON round-trip, ring bounding, and the report builder's balance rules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "node/node.hpp"
#include "occam/occam.hpp"
#include "perf/chrome_trace.hpp"
#include "perf/counters.hpp"
#include "perf/report.hpp"
#include "sim/proc.hpp"

namespace fpst {
namespace {

using namespace fpst::sim::literals;
using perf::CounterRegistry;

/// Standard single-node workload: overlapped gather || 4x VSAXPY, then a
/// scatter — touches the vpu, cp and mem tracks.
sim::SimTime run_node_workload(CounterRegistry* reg) {
  sim::Simulator sim;
  node::Node nd{sim, 0};
  if (reg != nullptr) {
    reg->meta().nodes = 1;
    reg->meta().workload = "perf_test";
    nd.attach_perf(*reg);
  }
  const node::Array64 x = nd.alloc64(mem::Bank::A, 128);
  const node::Array64 y = nd.alloc64(mem::Bank::B, 128);
  const node::Array64 z = nd.alloc64(mem::Bank::B, 128);
  nd.write64(x, std::vector<double>(128, 1.0));
  nd.write64(y, std::vector<double>(128, 2.0));
  sim.spawn([](node::Node* n, node::Array64 ax, node::Array64 ay,
               node::Array64 az) -> sim::Proc {
    std::vector<sim::Proc> par;
    par.push_back(n->gather(64));
    par.push_back([](node::Node* nn, node::Array64 x2, node::Array64 y2,
                     node::Array64 z2) -> sim::Proc {
      for (int i = 0; i < 4; ++i) {
        co_await nn->vscalar(vpu::VectorForm::vsaxpy, 2.0, x2, y2, z2);
      }
    }(n, ax, ay, az));
    co_await sim::WhenAll{std::move(par)};
    co_await n->scatter(32);
  }(&nd, x, y, z));
  sim.run();
  return sim.now();
}

TEST(Counters, NodeWorkloadFillsTracks) {
  CounterRegistry reg;
  run_node_workload(&reg);
  EXPECT_EQ(reg.value(0, "vpu", "ops"), 4u);
  EXPECT_EQ(reg.value(0, "vpu", "flops"), 4u * 2u * 128u);
  EXPECT_EQ(reg.value(0, "vpu", "adder_results"), 4u * 128u);
  EXPECT_EQ(reg.value(0, "vpu", "mul_results"), 4u * 128u);
  EXPECT_EQ(reg.value(0, "cp", "gather_elems"), 64u);
  EXPECT_EQ(reg.value(0, "cp", "scatter_elems"), 32u);
  EXPECT_GT(reg.value(0, "mem", "row_loads"), 0u);
  EXPECT_GT(reg.value(0, "mem", "row_stores"), 0u);
  // Busy accumulators: all vpu time here is VSAXPY time.
  EXPECT_EQ(reg.time_value(0, "vpu", "busy"),
            reg.time_value(0, "vpu", "busy.VSAXPY"));
  EXPECT_FALSE(reg.time_value(0, "cp", "busy").is_zero());
  // Untouched names and tracks read as zero, without creating anything.
  EXPECT_EQ(reg.value(0, "vpu", "bank_conflicts"), 0u);
  EXPECT_EQ(reg.value(7, "vpu", "ops"), 0u);
  EXPECT_EQ(reg.find(7, "vpu"), nullptr);
}

TEST(Counters, IdenticalRunsProduceIdenticalDumps) {
  CounterRegistry a;
  CounterRegistry b;
  const sim::SimTime wall_a = run_node_workload(&a);
  const sim::SimTime wall_b = run_node_workload(&b);
  EXPECT_EQ(wall_a, wall_b);
  // Byte-identical serialisation: sorted maps + deterministic simulator.
  EXPECT_EQ(perf::to_json(a, wall_a).dump(2), perf::to_json(b, wall_b).dump(2));
}

TEST(Timeline, SpanInvariants) {
  CounterRegistry reg;
  const sim::SimTime wall = run_node_workload(&reg);
  const std::vector<perf::Span> spans = reg.timeline().snapshot();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(reg.timeline().dropped(), 0u);
  std::vector<std::pair<sim::SimTime, sim::SimTime>> vpu_iv;
  for (const perf::Span& s : spans) {
    // Every span fits in the run and instants carry no duration.
    EXPECT_GE(s.start, sim::SimTime{});
    EXPECT_LE(s.start + s.duration, wall);
    if (s.is_instant) {
      EXPECT_TRUE(s.duration.is_zero());
    } else {
      EXPECT_FALSE(s.duration.is_zero());
    }
    if (s.track == reg.track(0, "vpu").track_id()) {
      vpu_iv.emplace_back(s.start, s.start + s.duration);
    }
  }
  // The vector unit is a serial resource: its spans must not overlap.
  ASSERT_EQ(vpu_iv.size(), 4u);
  std::sort(vpu_iv.begin(), vpu_iv.end());
  for (std::size_t i = 1; i < vpu_iv.size(); ++i) {
    EXPECT_LE(vpu_iv[i - 1].second, vpu_iv[i].first);
  }
}

TEST(Timeline, RingBoundsSpansAndReportsDrops) {
  CounterRegistry reg{CounterRegistry::Options{.timeline_capacity = 2}};
  const sim::SimTime wall = run_node_workload(&reg);
  EXPECT_LE(reg.timeline().size(), 2u);
  EXPECT_GT(reg.timeline().dropped(), 0u);
  // Counters are unaffected by span loss, and the dump declares the drops.
  EXPECT_EQ(reg.value(0, "vpu", "ops"), 4u);
  const perf::Dump d = perf::from_json(perf::to_json(reg, wall));
  EXPECT_EQ(d.spans_dropped, reg.timeline().dropped());
}

TEST(Timeline, DisabledCollectionKeepsCounters) {
  CounterRegistry reg{CounterRegistry::Options{.collect_spans = false}};
  run_node_workload(&reg);
  EXPECT_EQ(reg.timeline().size(), 0u);
  EXPECT_EQ(reg.timeline().dropped(), 0u);
  EXPECT_EQ(reg.value(0, "vpu", "ops"), 4u);
}

TEST(ChromeTrace, SchemaIsTraceEventFormat) {
  CounterRegistry reg;
  const sim::SimTime wall = run_node_workload(&reg);
  const perf::json::Value doc = perf::to_json(reg, wall);

  const perf::json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  std::size_t metadata = 0;
  std::size_t complete = 0;
  for (const perf::json::Value& e : events->as_array()) {
    const std::string& ph = e.find("ph")->as_string();
    ASSERT_NE(e.find("pid"), nullptr);
    if (ph == "M") {
      const std::string& name = e.find("name")->as_string();
      EXPECT_TRUE(name == "process_name" || name == "thread_name");
      ++metadata;
    } else if (ph == "X") {
      // Complete events carry both viewer times (us) and exact ps.
      ASSERT_NE(e.find("ts"), nullptr);
      ASSERT_NE(e.find("dur"), nullptr);
      ASSERT_NE(e.find("args"), nullptr);
      EXPECT_NE(e.find("args")->find("dur_ps"), nullptr);
      ++complete;
    }
  }
  EXPECT_GT(metadata, 0u);
  EXPECT_EQ(complete, reg.timeline().size());
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ns");
  EXPECT_EQ(doc.find("metadata")->find("tool")->as_string(), "tperf");
}

TEST(ChromeTrace, RoundTripPreservesEverything) {
  CounterRegistry reg;
  const sim::SimTime wall = run_node_workload(&reg);
  perf::json::Value doc = perf::to_json(reg, wall);
  doc["results"]["answer"] = perf::json::Value::integer(42);

  // Through text and back: parse(dump) must reconstruct the same dump.
  const perf::Dump d =
      perf::from_json(perf::json::Value::parse(doc.dump(2)));
  EXPECT_EQ(d.meta.workload, "perf_test");
  EXPECT_EQ(d.meta.nodes, 1u);
  EXPECT_EQ(d.wall, wall);
  EXPECT_EQ(d.tracks.size(), reg.tracks().size());
  for (const perf::DumpTrack& t : d.tracks) {
    const perf::TrackSink* s = reg.find(t.node, t.component);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(t.counts, s->counts());
    EXPECT_EQ(t.times, s->times());
  }
  ASSERT_EQ(d.spans.size(), reg.timeline().size());
  for (std::size_t i = 0; i < d.spans.size(); ++i) {
    EXPECT_EQ(d.spans[i].start, reg.timeline()[i].start);
    EXPECT_EQ(d.spans[i].duration, reg.timeline()[i].duration);
    EXPECT_EQ(d.spans[i].name, reg.timeline()[i].name);
  }
  EXPECT_EQ(d.value(0, "vpu", "flops"), reg.value(0, "vpu", "flops"));
  EXPECT_EQ(d.time_value(0, "vpu", "busy"), reg.time_value(0, "vpu", "busy"));
  ASSERT_NE(d.results.find("answer"), nullptr);
  EXPECT_EQ(d.results.find("answer")->as_int(), 42);
}

TEST(ChromeTrace, RejectsForeignDocuments) {
  EXPECT_THROW(perf::from_json(perf::json::Value::parse("{}")),
               std::runtime_error);
  EXPECT_THROW(
      perf::from_json(perf::json::Value::parse(R"({"traceEvents": []})")),
      std::runtime_error);
}

TEST(Report, MachineWorkloadAndBalanceRules) {
  sim::Simulator sim;
  core::TSeries machine{sim, 1};
  CounterRegistry reg;
  machine.enable_perf(reg);
  reg.meta().workload = "two_node_saxpy";
  occam::Runtime rt{machine};

  std::vector<node::Array64> xs(2);
  std::vector<node::Array64> ys(2);
  for (net::NodeId id = 0; id < 2; ++id) {
    node::Node& nd = machine.node(id);
    xs[id] = nd.alloc64(mem::Bank::A, 128);
    ys[id] = nd.alloc64(mem::Bank::B, 128);
    nd.write64(xs[id], std::vector<double>(128, 1.0));
    nd.write64(ys[id], std::vector<double>(128, 2.0));
  }
  const sim::SimTime elapsed = rt.run([&](occam::Ctx& ctx) -> sim::Proc {
    node::Node& nd = ctx.node();
    for (int i = 0; i < 8; ++i) {
      co_await nd.vscalar(vpu::VectorForm::vsaxpy, 2.0, xs[ctx.id()],
                          ys[ctx.id()], ys[ctx.id()]);
    }
    double v = 1.0;
    co_await ctx.allreduce_sum(&v);
  });

  const perf::MachineReport r =
      perf::analyze(perf::from_json(perf::to_json(reg, elapsed)));
  ASSERT_EQ(r.nodes.size(), 2u);
  EXPECT_EQ(r.total_flops, 2u * 8u * 2u * 128u);
  EXPECT_GT(r.aggregate_mflops, 0.0);
  // All vector work is full 128-element VSAXPY, so the active rate is the
  // single-form rate: 256 flops per 18.425 us.
  EXPECT_NEAR(r.active_mflops, 256.0 / 18.425, 1e-6);
  // occam messages crossed the one cube link in both directions.
  EXPECT_FALSE(r.links.empty());
  EXPECT_GT(r.nodes[0].link_bytes, 0u);
  // No gathers ran: the gather rule is inapplicable, the link rule holds
  // (4096 flops against a handful of words).
  EXPECT_FALSE(r.gather_balance.applicable);
  EXPECT_TRUE(r.link_balance.applicable);
  EXPECT_TRUE(r.link_balance.ok);
  EXPECT_TRUE(r.balance_ok());
  // The rendering mentions the machine shape and the balance section.
  const std::string text = perf::render(r);
  EXPECT_NE(text.find("two_node_saxpy"), std::string::npos);
  EXPECT_NE(text.find("balance"), std::string::npos);
}

TEST(Report, FlagsGatherBalanceViolation) {
  // 2 flops per gathered element — far below the paper's 13.
  sim::Simulator sim;
  node::Node nd{sim, 0};
  CounterRegistry reg;
  nd.attach_perf(reg);
  const node::Array64 x = nd.alloc64(mem::Bank::A, 128);
  const node::Array64 y = nd.alloc64(mem::Bank::B, 128);
  sim.spawn([](node::Node* n, node::Array64 ax, node::Array64 ay) -> sim::Proc {
    co_await n->gather(128);
    co_await n->vscalar(vpu::VectorForm::vsaxpy, 2.0, ax, ay, ay);
  }(&nd, x, y));
  sim.run();
  const perf::MachineReport r =
      perf::analyze(perf::from_json(perf::to_json(reg, sim.now())));
  ASSERT_TRUE(r.gather_balance.applicable);
  EXPECT_FALSE(r.gather_balance.ok);
  EXPECT_FALSE(r.balance_ok());
  EXPECT_NEAR(r.gather_balance.measured, 2.0, 1e-9);
  EXPECT_NE(perf::render(r).find("VIOLATION"), std::string::npos);
}

/// One full traced run of the traced_saxpy workload shape (gather-overlapped
/// VSAXPY stripes plus a cube allreduce), serialized to a tperf dump.
struct TracedRun {
  std::uint64_t events = 0;
  std::string dump;
};

TracedRun run_traced_saxpy_workload() {
  sim::Simulator sim;
  core::TSeries machine{sim, /*dimension=*/1};
  CounterRegistry reg;
  machine.enable_perf(reg);
  reg.meta().workload = "determinism_fixture";
  occam::Runtime rt{machine};

  std::vector<node::Array64> xs(machine.size());
  std::vector<node::Array64> ys(machine.size());
  for (net::NodeId id = 0; id < machine.size(); ++id) {
    node::Node& nd = machine.node(id);
    xs[id] = nd.alloc64(mem::Bank::A, 128);
    ys[id] = nd.alloc64(mem::Bank::B, 128);
    nd.write64(xs[id], std::vector<double>(128, 1.0 + id));
    nd.write64(ys[id], std::vector<double>(128, 2.0));
  }
  const sim::SimTime elapsed = rt.run([&](occam::Ctx& ctx) -> sim::Proc {
    node::Node& nd = ctx.node();
    for (int stripe = 0; stripe < 3; ++stripe) {
      std::vector<sim::Proc> par;
      par.push_back(nd.gather(128));
      par.push_back([](node::Node* n, node::Array64 x,
                       node::Array64 y) -> sim::Proc {
        for (int i = 0; i < 4; ++i) {
          co_await n->vscalar(vpu::VectorForm::vsaxpy, 2.0, x, y, y);
        }
      }(&nd, xs[ctx.id()], ys[ctx.id()]));
      co_await sim::WhenAll{std::move(par)};
    }
    double local = 1.0 + ctx.id();
    co_await ctx.allreduce_sum(&local);
  });
  return TracedRun{sim.events_processed(),
                   perf::to_json(reg, elapsed).dump(2)};
}

// Determinism pin for the event-core rewrite: the whole (time, scheduling
// order) dispatch contract is observable here. Two identical traced runs
// must execute the same number of events and serialize byte-identical
// tperf dumps — any reordering of same-instant events (and thus any drift
// in the E1-E13 reproductions) shows up as a diff.
TEST(Determinism, TracedSaxpyRunsAreByteIdentical) {
  const TracedRun a = run_traced_saxpy_workload();
  const TracedRun b = run_traced_saxpy_workload();
  EXPECT_GT(a.events, 0u);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.dump, b.dump);
}

}  // namespace
}  // namespace fpst
