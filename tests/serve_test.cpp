// Tests for the serving layer (src/serve): canonical JobSpec
// serialization + typed bad-request rejection, the content-addressed LRU
// result cache, the per-tenant fair bounded queue, deterministic job
// execution, the end-to-end Service cache-hit contract (identical
// spec -> byte-identical result with zero simulation events), and the
// observability surface (per-request spans, per-tenant SLO accounting,
// the tmon body/meta determinism split).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "perf/json.hpp"
#include "serve/job_queue.hpp"
#include "serve/job_spec.hpp"
#include "serve/result_cache.hpp"
#include "serve/runner.hpp"
#include "serve/service.hpp"
#include "serve/tmon.hpp"

namespace {

using namespace fpst;
using serve::JobSpec;

/// The SpecError code thrown by `fn`, or "" when nothing was thrown.
std::string error_code(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const serve::SpecError& e) {
    return e.code();
  }
  return "";
}

std::shared_ptr<const std::string> bytes(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

// ------------------------------------------------------------ JobSpec

TEST(JobSpecTest, CanonicalSerializationIsCompactAndSorted) {
  const JobSpec spec;  // defaults
  EXPECT_EQ(serve::canonical_spec(spec),
            "{\"dimension\":2,\"elems\":16,\"program\":\"allreduce\","
            "\"rounds\":1,\"seed\":0,\"threads\":1,"
            "\"vpu_mode\":\"softfloat\"}");
}

TEST(JobSpecTest, ContentAddressShapeAndSensitivity) {
  JobSpec spec;
  const std::string base = serve::content_address(spec);
  ASSERT_EQ(base.size(), 19u);
  EXPECT_EQ(base.substr(0, 3), "ca-");
  EXPECT_EQ(base.find_first_not_of("0123456789abcdef", 3), std::string::npos);

  // Equal specs hash equally; every field participates in the address —
  // notably threads, which never changes the simulated *result*, but
  // changes the engine partition recorded in the dump.
  JobSpec same;
  EXPECT_EQ(serve::content_address(same), base);
  JobSpec seed = spec;
  seed.seed = 1;
  JobSpec threads = spec;
  threads.threads = 2;
  EXPECT_NE(serve::content_address(seed), base);
  EXPECT_NE(serve::content_address(threads), base);
  EXPECT_NE(serve::content_address(seed), serve::content_address(threads));
}

TEST(JobSpecTest, ParseRoundTripsCanonicalForm) {
  JobSpec spec;
  spec.program = "ring";
  spec.dimension = 3;
  spec.threads = 4;
  spec.rounds = 7;
  spec.elems = 9;
  spec.seed = 123456789ULL;
  EXPECT_EQ(serve::parse_spec(serve::canonical_spec(spec)), spec);
}

TEST(JobSpecTest, BadRequestCorpusYieldsTypedErrors) {
  const struct {
    const char* text;
    const char* code;
  } kCorpus[] = {
      {"{\"program\":\"fizzbuzz\"}", "bad-program"},
      {"{\"dimension\":11}", "out-of-range"},
      {"{\"dimension\":-1}", "out-of-range"},
      {"{\"threads\":0}", "out-of-range"},
      {"{\"threads\":65}", "out-of-range"},
      {"{\"rounds\":0}", "out-of-range"},
      {"{\"elems\":129}", "out-of-range"},
      {"{\"rounds\":1.5}", "not-integral"},
      {"{\"program\":3}", "bad-type"},
      {"{\"seed\":\"zero\"}", "bad-type"},
      {"[1,2,3]", "bad-type"},
      {"{\"bogus\":1}", "unknown-field"},
      {"{\"Program\":\"ring\"}", "unknown-field"},  // case-sensitive
      {"{\"seed\":1,\"seed\":2}", "duplicate-key"},
      {"{\"seed\":1,\"elems\":4,\"elems\":4}", "duplicate-key"},
      {"not json at all", "parse-error"},
      {"{\"seed\":1", "parse-error"},
      {"{\"vpu_mode\":\"fast\"}", "bad-mode"},
      {"{\"vpu_mode\":\"Batch\"}", "bad-mode"},  // case-sensitive
      {"{\"vpu_mode\":3}", "bad-type"},
  };
  for (const auto& c : kCorpus) {
    EXPECT_EQ(error_code([&] { (void)serve::parse_spec(c.text); }), c.code)
        << "input: " << c.text;
  }
}

TEST(JobSpecTest, NonFiniteNumbersAreRejected) {
  // JSON text cannot spell NaN, but a Value built through the API can
  // carry one; spec_from_json sits behind both paths.
  namespace json = perf::json;
  json::Value doc = json::Value::object();
  doc["rounds"] = json::Value::number(std::nan(""));
  EXPECT_EQ(error_code([&] { (void)serve::spec_from_json(doc); }),
            "not-finite");
  doc["rounds"] = json::Value::number(HUGE_VAL);
  EXPECT_EQ(error_code([&] { (void)serve::spec_from_json(doc); }),
            "not-finite");
}

TEST(JobSpecTest, StrictParseRejectsWhatLenientParseCollapses) {
  namespace json = perf::json;
  const char* dup = "{\"a\":1,\"a\":2}";
  // The lenient parser keeps the first occurrence silently...
  EXPECT_EQ(json::Value::parse(dup).find("a")->as_int(), 1);
  // ...the strict parser refuses.
  EXPECT_THROW((void)json::Value::parse_strict(dup), std::runtime_error);
}

// ------------------------------------------------------------ ResultCache

TEST(ResultCacheTest, MissThenHitReturnsSameBytes) {
  serve::ResultCache cache{1024};
  EXPECT_EQ(cache.lookup("ca-a"), nullptr);
  cache.insert("ca-a", bytes("payload"));
  const auto hit = cache.lookup("ca-a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "payload");
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.bytes, 7u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  serve::ResultCache cache{100};
  cache.insert("ca-a", bytes(std::string(40, 'a')));
  cache.insert("ca-b", bytes(std::string(40, 'b')));
  // Freshen a so b is the LRU entry when c arrives.
  ASSERT_NE(cache.lookup("ca-a"), nullptr);
  cache.insert("ca-c", bytes(std::string(40, 'c')));
  EXPECT_NE(cache.lookup("ca-a"), nullptr);
  EXPECT_EQ(cache.lookup("ca-b"), nullptr);  // evicted
  EXPECT_NE(cache.lookup("ca-c"), nullptr);
  const auto st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.bytes, 80u);
  EXPECT_LE(st.bytes, st.byte_budget);
}

TEST(ResultCacheTest, EvictedBytesStayValidForHolders) {
  serve::ResultCache cache{10};
  cache.insert("ca-a", bytes("0123456789"));
  const auto held = cache.lookup("ca-a");
  ASSERT_NE(held, nullptr);
  cache.insert("ca-b", bytes("9876543210"));  // evicts a entirely
  EXPECT_EQ(cache.lookup("ca-a"), nullptr);
  EXPECT_EQ(*held, "0123456789");  // the client's copy is untouched
}

TEST(ResultCacheTest, OversizeValueIsNotStored) {
  serve::ResultCache cache{8};
  cache.insert("ca-big", bytes("far too large for the budget"));
  EXPECT_EQ(cache.lookup("ca-big"), nullptr);
  const auto st = cache.stats();
  EXPECT_EQ(st.oversize_rejects, 1u);
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(st.bytes, 0u);
}

TEST(ResultCacheTest, ZeroBudgetDisablesStorage) {
  serve::ResultCache cache{0};
  cache.insert("ca-a", bytes("x"));
  EXPECT_EQ(cache.lookup("ca-a"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, ReinsertReplacesValueAndAccounting) {
  serve::ResultCache cache{100};
  cache.insert("ca-a", bytes("old-bytes"));
  cache.insert("ca-a", bytes("new"));
  const auto hit = cache.lookup("ca-a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "new");
  const auto st = cache.stats();
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.bytes, 3u);
}

// ------------------------------------------------------------ JobQueue

TEST(JobQueueTest, FifoWithinOneTenant) {
  serve::JobQueue q{8};
  ASSERT_TRUE(q.push("t", 1));
  ASSERT_TRUE(q.push("t", 2));
  ASSERT_TRUE(q.push("t", 3));
  EXPECT_EQ(q.pop(), std::optional<std::uint64_t>{1});
  EXPECT_EQ(q.pop(), std::optional<std::uint64_t>{2});
  EXPECT_EQ(q.pop(), std::optional<std::uint64_t>{3});
}

TEST(JobQueueTest, RoundRobinKeepsSmallTenantAheadOfBacklog) {
  serve::JobQueue q{32};
  // Tenant a floods ten jobs before tenant b submits one.
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.push("a", i));
  }
  ASSERT_TRUE(q.push("b", 100));
  // b's job pops second — behind exactly one of a's, not all ten.
  EXPECT_EQ(q.pop(), std::optional<std::uint64_t>{0});
  EXPECT_EQ(q.pop(), std::optional<std::uint64_t>{100});
  EXPECT_EQ(q.pop(), std::optional<std::uint64_t>{1});
}

TEST(JobQueueTest, TryPushRefusesWhenFull) {
  serve::JobQueue q{2};
  EXPECT_TRUE(q.try_push("t", 1));
  EXPECT_TRUE(q.try_push("u", 2));
  EXPECT_FALSE(q.try_push("t", 3));
  (void)q.pop();
  EXPECT_TRUE(q.try_push("t", 3));
}

TEST(JobQueueTest, CloseDrainsPendingThenEndsStream) {
  serve::JobQueue q{8};
  ASSERT_TRUE(q.push("t", 1));
  ASSERT_TRUE(q.push("t", 2));
  q.close();
  EXPECT_FALSE(q.push("t", 3));
  EXPECT_FALSE(q.try_push("t", 3));
  EXPECT_EQ(q.pop(), std::optional<std::uint64_t>{1});
  EXPECT_EQ(q.pop(), std::optional<std::uint64_t>{2});
  EXPECT_EQ(q.pop(), std::nullopt);
}

// ------------------------------------------------------------ runner

TEST(RunnerTest, ShardPartitionDerivesFromSpecOnly) {
  JobSpec spec;
  spec.dimension = 3;  // 8 nodes
  spec.threads = 1;
  EXPECT_EQ(serve::shards_for(spec), 1);
  spec.threads = 4;
  EXPECT_EQ(serve::shards_for(spec), 4);
  spec.threads = 3;  // rounds down to a power of two
  EXPECT_EQ(serve::shards_for(spec), 2);
  spec.threads = 64;  // capped by the node count
  EXPECT_EQ(serve::shards_for(spec), 8);
  spec.dimension = 0;  // a single node is always one shard
  EXPECT_EQ(serve::shards_for(spec), 1);
}

TEST(RunnerTest, SameSpecProducesByteIdenticalDumps) {
  JobSpec spec;
  spec.program = "ring";
  spec.dimension = 2;
  spec.rounds = 2;
  spec.elems = 8;
  spec.seed = 11;
  serve::JobRun run_a{spec};
  serve::JobRun run_b{spec};
  const serve::RunOutcome a = run_a.execute();
  const serve::RunOutcome b = run_b.execute();
  ASSERT_NE(a.dump, nullptr);
  ASSERT_NE(b.dump, nullptr);
  EXPECT_EQ(*a.dump, *b.dump);
  EXPECT_EQ(a.events, b.events);
  EXPECT_GT(a.events, 0u);
}

TEST(RunnerTest, DifferentSeedProducesDifferentDumps) {
  JobSpec spec;
  spec.program = "allreduce";
  spec.dimension = 2;
  spec.rounds = 1;
  spec.elems = 4;
  spec.seed = 1;
  serve::JobRun run_a{spec};
  spec.seed = 2;
  serve::JobRun run_b{spec};
  EXPECT_NE(*run_a.execute().dump, *run_b.execute().dump);
}

TEST(JobSpecTest, VpuModeParticipatesInContentAddress) {
  JobSpec spec;
  const std::string soft = serve::content_address(spec);
  spec.vpu_mode = "batch";
  const std::string batch = serve::content_address(spec);
  spec.vpu_mode = "checked";
  const std::string checked = serve::content_address(spec);
  // The arms are bit-exact by contract, but the cache key still records
  // which arm ran: a checked request must never be satisfied by a cached
  // softfloat dump, so all three addresses are distinct.
  EXPECT_NE(soft, batch);
  EXPECT_NE(soft, checked);
  EXPECT_NE(batch, checked);

  const JobSpec round_trip = serve::parse_spec(serve::canonical_spec(spec));
  EXPECT_EQ(round_trip.vpu_mode, "checked");
  EXPECT_EQ(serve::content_address(round_trip), checked);
}

TEST(RunnerTest, CheckedModeSaxpyIsByteIdenticalToSoftfloat) {
  // The ISSUE-8 equivalence contract at the serve layer: a 4-node SAXPY in
  // `checked` mode (which executes the batch arm and the softfloat oracle
  // on every vector form and throws on any divergence) produces the same
  // simulation bytes as a plain `softfloat` run. The dumps differ only in
  // the three fields that name the mode — the content address, the spec
  // echo and the perf workload string (which embeds the canonical spec) —
  // so neutralise those and compare the rest byte-for-byte.
  JobSpec spec;
  spec.program = "saxpy";
  spec.dimension = 2;  // 4 nodes
  spec.rounds = 3;
  spec.elems = 32;
  spec.seed = 5;
  auto dump_for = [&](const char* mode) {
    JobSpec s = spec;
    s.vpu_mode = mode;
    serve::JobRun run{s};
    return run.execute();
  };
  const serve::RunOutcome soft = dump_for("softfloat");
  const serve::RunOutcome checked = dump_for("checked");
  const serve::RunOutcome batch = dump_for("batch");
  EXPECT_EQ(soft.checksum, checked.checksum);
  EXPECT_EQ(soft.checksum, batch.checksum);
  EXPECT_EQ(soft.events, checked.events);
  EXPECT_EQ(soft.events, batch.events);

  auto neutralised = [](const serve::RunOutcome& out) {
    perf::json::Value doc = perf::json::Value::parse(*out.dump);
    doc["results"]["address"] = perf::json::Value::string("-");
    doc["results"]["spec"]["vpu_mode"] = perf::json::Value::string("-");
    doc["metadata"]["workload"] = perf::json::Value::string("-");
    return doc.dump(2);
  };
  EXPECT_EQ(neutralised(soft), neutralised(checked));
  EXPECT_EQ(neutralised(soft), neutralised(batch));
}

TEST(RunnerTest, ProgressSettlesAtFinalEventCount) {
  JobSpec spec;
  spec.program = "saxpy";
  spec.dimension = 1;
  spec.rounds = 3;
  spec.elems = 8;
  serve::JobRun run{spec};
  EXPECT_EQ(run.progress(), 0u);
  const serve::RunOutcome out = run.execute();
  EXPECT_EQ(run.progress(), out.events);
  EXPECT_GT(out.events, 0u);
}

// ------------------------------------------------------------ Service

JobSpec small_spec(std::uint64_t seed) {
  JobSpec spec;
  spec.program = "allreduce";
  spec.dimension = 2;
  spec.rounds = 2;
  spec.elems = 8;
  spec.seed = seed;
  return spec;
}

TEST(ServiceTest, IdenticalSpecHitsCacheWithZeroEventsAndSameBytes) {
  serve::Service::Options opts;
  opts.workers = 1;  // serialise: the second job runs after the insert
  serve::Service service{opts};
  const serve::JobId a = service.submit("ana", small_spec(5));
  const serve::JobStatus first = service.wait(a);
  ASSERT_EQ(first.state, serve::JobState::kDone) << first.error;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.events, 0u);
  ASSERT_NE(first.result, nullptr);

  const serve::JobId b = service.submit("bob", small_spec(5));
  const serve::JobStatus second = service.wait(b);
  ASSERT_EQ(second.state, serve::JobState::kDone) << second.error;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.events, 0u);  // nothing was simulated
  ASSERT_NE(second.result, nullptr);
  EXPECT_EQ(*first.result, *second.result);  // byte-identical
  EXPECT_EQ(first.address, second.address);

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ServiceTest, DifferentSeedOrThreadsMissesCache) {
  serve::Service::Options opts;
  opts.workers = 1;
  serve::Service service{opts};
  const serve::JobStatus base = service.wait(service.submit("t", small_spec(1)));
  JobSpec other_seed = small_spec(2);
  JobSpec other_threads = small_spec(1);
  other_threads.threads = 2;
  const serve::JobStatus st_seed =
      service.wait(service.submit("t", other_seed));
  const serve::JobStatus st_threads =
      service.wait(service.submit("t", other_threads));
  EXPECT_FALSE(st_seed.cache_hit);
  EXPECT_FALSE(st_threads.cache_hit);
  EXPECT_NE(st_seed.address, base.address);
  EXPECT_NE(st_threads.address, base.address);
  EXPECT_EQ(service.stats().cache_hits, 0u);
}

TEST(ServiceTest, TinyBudgetEvictionRerunsByteIdentically) {
  serve::Service::Options opts;
  opts.workers = 1;
  // Big enough for roughly one dump: inserting the second spec's result
  // evicts the first, so resubmitting the first re-simulates.
  opts.cache_bytes = 40 << 10;
  serve::Service service{opts};
  const serve::JobStatus first = service.wait(service.submit("t", small_spec(1)));
  ASSERT_EQ(first.state, serve::JobState::kDone) << first.error;
  (void)service.wait(service.submit("t", small_spec(2)));
  const serve::JobStatus again = service.wait(service.submit("t", small_spec(1)));
  ASSERT_EQ(again.state, serve::JobState::kDone) << again.error;
  EXPECT_FALSE(again.cache_hit);  // was evicted
  EXPECT_GT(again.events, 0u);    // really re-ran
  ASSERT_NE(again.result, nullptr);
  EXPECT_EQ(*first.result, *again.result);  // determinism held
  EXPECT_GE(service.stats().cache.evictions, 1u);
}

TEST(ServiceTest, ProgressIsMonotonicWhileObservedMidRun) {
  serve::Service::Options opts;
  opts.workers = 1;
  serve::Service service{opts};
  JobSpec spec = small_spec(3);
  spec.rounds = 2000;  // long enough that polling overlaps the run
  const serve::JobId id = service.submit("t", spec);
  std::vector<std::uint64_t> observed;
  for (;;) {
    const serve::JobStatus st = service.status(id);
    observed.push_back(st.events);
    if (st.state == serve::JobState::kDone ||
        st.state == serve::JobState::kFailed) {
      break;
    }
  }
  for (std::size_t i = 1; i < observed.size(); ++i) {
    EXPECT_GE(observed[i], observed[i - 1]) << "at sample " << i;
  }
  const serve::JobStatus final_st = service.status(id);
  ASSERT_EQ(final_st.state, serve::JobState::kDone) << final_st.error;
  EXPECT_GT(final_st.events, 0u);
}

TEST(ServiceTest, TrySubmitReportsBackpressureAsFailedRecord) {
  serve::Service::Options opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  serve::Service service{opts};
  JobSpec slow = small_spec(1);
  slow.rounds = 5000;  // keep the single worker busy well past the pushes
  const serve::JobId running = service.submit("t", slow);  // worker takes it
  const serve::JobId queued = service.submit("t", small_spec(2));
  serve::JobId refused = 0;
  ASSERT_FALSE(service.try_submit("t", small_spec(3), &refused));
  const serve::JobStatus st = service.status(refused);
  EXPECT_EQ(st.state, serve::JobState::kFailed);
  EXPECT_NE(st.error.find("backpressure"), std::string::npos);
  // wait() resolves immediately for the refused record, and the accepted
  // jobs still complete.
  EXPECT_EQ(service.wait(refused).state, serve::JobState::kFailed);
  EXPECT_EQ(service.wait(running).state, serve::JobState::kDone);
  EXPECT_EQ(service.wait(queued).state, serve::JobState::kDone);
  EXPECT_EQ(service.stats().failed, 1u);
}

TEST(ServiceTest, UnknownIdThrows) {
  serve::Service::Options opts;
  opts.workers = 1;
  serve::Service service{opts};
  EXPECT_THROW((void)service.status(99), std::out_of_range);
  EXPECT_THROW((void)service.wait(99), std::out_of_range);
}

TEST(ServiceTest, InvalidSpecIsRejectedAtSubmit) {
  serve::Service::Options opts;
  opts.workers = 1;
  serve::Service service{opts};
  JobSpec bad;
  bad.program = "fizzbuzz";
  EXPECT_THROW((void)service.submit("t", bad), serve::SpecError);
  EXPECT_EQ(service.stats().submitted, 0u);
}

TEST(ServiceTest, SubmitAfterShutdownThrows) {
  serve::Service::Options opts;
  opts.workers = 1;
  serve::Service service{opts};
  service.shutdown();
  EXPECT_THROW((void)service.submit("t", small_spec(1)), std::runtime_error);
}

TEST(ServiceTest, SpanShapesDistinguishMissFromHit) {
  serve::Service::Options opts;
  opts.workers = 1;  // serialise so the second submit is a guaranteed hit
  serve::Service service{opts};
  const serve::JobId a = service.submit("ana", small_spec(7));
  ASSERT_EQ(service.wait(a).state, serve::JobState::kDone);
  const serve::JobId b = service.submit("bob", small_spec(7));
  ASSERT_EQ(service.wait(b).state, serve::JobState::kDone);

  const serve::JobSpan miss = service.span(a);
  EXPECT_EQ(miss.id, a);
  EXPECT_EQ(miss.tenant, "ana");
  EXPECT_EQ(miss.program, "allreduce");
  EXPECT_EQ(miss.state, serve::JobState::kDone);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_GT(miss.events, 0u);
  // A miss actually simulated, so the execute stage has real wall-clock
  // and the stages sum to no more than the end-to-end total.
  EXPECT_GT(miss.exec_ms, 0.0);
  EXPECT_LE(miss.queue_ms + miss.cache_ms + miss.setup_ms + miss.exec_ms +
                miss.serialize_ms,
            miss.total_ms + 1e-6);

  const serve::JobSpan hit = service.span(b);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.events, 0u);
  EXPECT_EQ(hit.address, miss.address);
  // A hit never touches the runner: the miss-only stages stay zero.
  EXPECT_EQ(hit.setup_ms, 0.0);
  EXPECT_EQ(hit.exec_ms, 0.0);
  EXPECT_EQ(hit.serialize_ms, 0.0);

  const std::vector<serve::JobSpan> all = service.spans();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].id, a);  // id order
  EXPECT_EQ(all[1].id, b);
}

TEST(ServiceTest, PerTenantStatsSplitCountersAndLatencies) {
  serve::Service::Options opts;
  opts.workers = 1;
  serve::Service service{opts};
  (void)service.wait(service.submit("ana", small_spec(1)));  // miss
  (void)service.wait(service.submit("ana", small_spec(1)));  // hit
  (void)service.wait(service.submit("bob", small_spec(2)));  // miss

  const serve::ServiceStats st = service.stats();
  ASSERT_EQ(st.tenants.size(), 2u);
  const serve::TenantStats& ana = st.tenants.at("ana");
  EXPECT_EQ(ana.submitted, 2u);
  EXPECT_EQ(ana.completed, 2u);
  EXPECT_EQ(ana.failed, 0u);
  EXPECT_EQ(ana.cache_hits, 1u);
  EXPECT_EQ(ana.cache_misses, 1u);
  EXPECT_EQ(ana.latency_us.count(), 2u);
  EXPECT_EQ(ana.queue_wait_us.count(), 2u);
  const serve::TenantStats& bob = st.tenants.at("bob");
  EXPECT_EQ(bob.submitted, 1u);
  EXPECT_EQ(bob.cache_hits, 0u);
  EXPECT_EQ(bob.cache_misses, 1u);
  // The tenant accounts partition the global counters exactly.
  EXPECT_EQ(ana.submitted + bob.submitted, st.submitted);
  EXPECT_EQ(ana.completed + bob.completed, st.completed);
  EXPECT_EQ(ana.cache_hits + bob.cache_hits, st.cache_hits);
}

TEST(ServiceTest, StatsSnapshotStaysConsistentUnderConcurrency) {
  // stats() promises a single consistent snapshot: even while submits and
  // completions race, `completed + failed <= submitted` must hold in every
  // returned value (and the per-tenant accounts must respect the same
  // bound). Run under TSan this also shakes out torn reads.
  serve::Service::Options opts;
  opts.workers = 2;
  serve::Service service{opts};
  std::atomic<bool> done{false};
  std::vector<serve::JobId> ids;
  std::thread submitter([&] {
    for (std::uint64_t i = 0; i < 48; ++i) {
      // Seeds cycle through a small pool so the storm mixes hits + misses.
      ids.push_back(service.submit(i % 2 == 0 ? "ana" : "bob",
                                   small_spec(i % 5)));
    }
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    const serve::ServiceStats st = service.stats();
    EXPECT_LE(st.completed + st.failed, st.submitted);
    EXPECT_LE(st.cache_hits, st.completed);
    std::uint64_t tenant_submitted = 0;
    std::uint64_t tenant_terminal = 0;
    for (const auto& [name, t] : st.tenants) {
      EXPECT_LE(t.completed + t.failed, t.submitted) << "tenant " << name;
      tenant_submitted += t.submitted;
      tenant_terminal += t.completed + t.failed;
    }
    EXPECT_EQ(tenant_submitted, st.submitted);
    EXPECT_LE(tenant_terminal, st.submitted);
  }
  submitter.join();
  for (const serve::JobId id : ids) {
    EXPECT_EQ(service.wait(id).state, serve::JobState::kDone);
  }
  const serve::ServiceStats final_st = service.stats();
  EXPECT_EQ(final_st.submitted, 48u);
  EXPECT_EQ(final_st.completed + final_st.failed, final_st.submitted);
}

// ------------------------------------------------------------ tmon

TEST(TmonTest, MetricsJsonQuarantinesWallClockInMeta) {
  serve::Service::Options opts;
  opts.workers = 1;
  serve::Service service{opts};
  (void)service.wait(service.submit("ana", small_spec(1)));  // miss
  (void)service.wait(service.submit("ana", small_spec(1)));  // hit

  namespace json = perf::json;
  const json::Value doc = serve::metrics_to_json(service.stats());
  EXPECT_EQ(doc.find("kind")->as_string(), "tmon-metrics");
  EXPECT_EQ(doc.find("submitted")->as_int(), 2);
  EXPECT_EQ(doc.find("cache_hits")->as_int(), 1);
  const json::Value* ana = doc.find("tenants")->find("ana");
  ASSERT_NE(ana, nullptr);
  EXPECT_EQ(ana->find("completed")->as_int(), 2);
  // Wall-clock lives only in meta: the body keys carry no timing...
  ASSERT_NE(doc.find("meta"), nullptr);
  EXPECT_EQ(doc.find("uptime_ms"), nullptr);
  EXPECT_NE(doc.find("meta")->find("uptime_ms"), nullptr);
  EXPECT_NE(doc.find("meta")->find("tenants")->find("ana")->find("latency_us"),
            nullptr);
  // ...and stripping meta leaves a purely deterministic document.
  const json::Value body = serve::strip_meta(doc);
  EXPECT_EQ(body.find("meta"), nullptr);
  EXPECT_NE(body.find("tenants")->find("ana"), nullptr);
}

TEST(TmonTest, SpanJsonKeepsTimingsOutOfTheBody) {
  serve::JobSpan sp;
  sp.id = 3;
  sp.tenant = "ana";
  sp.program = "ring";
  sp.state = serve::JobState::kDone;
  sp.events = 42;
  sp.exec_ms = 1.5;
  sp.total_ms = 2.0;
  namespace json = perf::json;
  const json::Value v = serve::span_to_json(sp);
  EXPECT_EQ(v.find("id")->as_int(), 3);
  EXPECT_EQ(v.find("events")->as_int(), 42);
  EXPECT_EQ(v.find("error"), nullptr);  // empty error key is omitted
  EXPECT_EQ(v.find("exec_ms"), nullptr);
  EXPECT_EQ(v.find("meta")->find("exec_ms")->as_double(), 1.5);
  const json::Value stripped = serve::strip_meta(v);
  EXPECT_EQ(stripped.find("meta"), nullptr);
  EXPECT_EQ(stripped.find("id")->as_int(), 3);
}

TEST(TmonTest, StripMetaRemovesEveryNestingLevel) {
  namespace json = perf::json;
  json::Value doc = json::Value::object();
  doc["keep"] = json::Value::integer(1);
  doc["meta"] = json::Value::object();
  doc["meta"]["clock"] = json::Value::number(1.0);
  json::Value inner = json::Value::object();
  inner["meta"] = json::Value::string("gone");
  inner["also_keep"] = json::Value::boolean(true);
  json::Value arr = json::Value::array();
  arr.append(std::move(inner));
  doc["list"] = std::move(arr);

  const json::Value out = serve::strip_meta(doc);
  EXPECT_EQ(out.find("meta"), nullptr);
  EXPECT_EQ(out.find("keep")->as_int(), 1);
  const json::Value& elem = out.find("list")->as_array()[0];
  EXPECT_EQ(elem.find("meta"), nullptr);
  EXPECT_TRUE(elem.find("also_keep")->as_bool());
}

TEST(TmonTest, ChromeTraceEmitsOneSliceRowPerStage) {
  serve::JobSpan sp;
  sp.id = 0;
  sp.tenant = "ana";
  sp.program = "saxpy";
  sp.queue_ms = 0.5;
  sp.cache_ms = 0.0;  // zero-length stages are dropped, not emitted
  sp.exec_ms = 2.0;
  namespace json = perf::json;
  const json::Value doc = serve::spans_chrome_trace({sp});
  const auto& events = doc.find("traceEvents")->as_array();
  // process_name + thread_name metadata plus the two non-zero stages.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[2].find("name")->as_string(), "queue");
  EXPECT_EQ(events[3].find("name")->as_string(), "exec");
  // exec starts where queue ended: ts is cumulative within the job row.
  EXPECT_DOUBLE_EQ(events[3].find("ts")->as_double(), 500.0);
  EXPECT_DOUBLE_EQ(events[3].find("dur")->as_double(), 2000.0);
}

TEST(ServiceTest, CacheDisabledNeverHits) {
  serve::Service::Options opts;
  opts.workers = 1;
  opts.cache_enabled = false;
  serve::Service service{opts};
  (void)service.wait(service.submit("t", small_spec(1)));
  const serve::JobStatus second =
      service.wait(service.submit("t", small_spec(1)));
  EXPECT_FALSE(second.cache_hit);
  EXPECT_GT(second.events, 0u);
  EXPECT_EQ(service.stats().cache_hits, 0u);
}

}  // namespace
