// Tests for the assembled processor node: the 1:13:130 balance ratios, bank
// allocation, the strip-mined vector math API, CP/VPU overlap, and two nodes
// exchanging data over a link from TISA programs.
#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

#include "node/node.hpp"

namespace fpst::node {
namespace {

using namespace fpst::sim::literals;
using sim::Proc;
using sim::SimTime;
using sim::Simulator;
using vpu::VectorForm;

TEST(BalanceRatios, PaperOneThirteenOneThirty) {
  // (Arithmetic) : (Gather) : (Link) = 0.125 us : 1.6 us : 16 us.
  EXPECT_EQ(BalanceRatios::arithmetic(), 125_ns);
  EXPECT_EQ(BalanceRatios::gather(), 1600_ns);
  EXPECT_EQ(BalanceRatios::link_word(), 16_us);
  EXPECT_NEAR(BalanceRatios::gather_over_arith(), 13.0, 0.3);
  EXPECT_NEAR(BalanceRatios::link_over_arith(), 130.0, 2.5);
}

class NodeTest : public ::testing::Test {
 protected:
  Simulator sim;
  Node node{sim, 0};
};

TEST_F(NodeTest, RowAllocatorRespectsBanks) {
  const std::size_t a = node.alloc_rows(mem::Bank::A, 10);
  const std::size_t b = node.alloc_rows(mem::Bank::B, 10);
  EXPECT_LT(a, mem::MemParams::kBankARows);
  EXPECT_GE(b, mem::MemParams::kBankARows);
  EXPECT_THROW(node.alloc_rows(mem::Bank::A, 1000), std::runtime_error);
  node.reset_allocator();
  EXPECT_EQ(node.alloc_rows(mem::Bank::A, 1), 0u);
}

TEST_F(NodeTest, Array64Geometry) {
  EXPECT_EQ((Array64{0, 128}).rows(), 1u);
  EXPECT_EQ((Array64{0, 129}).rows(), 2u);
  EXPECT_EQ((Array64{0, 1000}).rows(), 8u);
}

TEST_F(NodeTest, StageAndReadBack) {
  const Array64 a = node.alloc64(mem::Bank::A, 300);
  std::vector<double> v(300);
  std::iota(v.begin(), v.end(), 1.0);
  node.write64(a, v);
  EXPECT_EQ(node.read64(a), v);
}

Proc run_saxpy(Node* n, double a, Array64 x, Array64 y, Array64 z) {
  co_await n->vscalar(VectorForm::vsaxpy, a, x, y, z);
}

TEST_F(NodeTest, StripMinedSaxpyMatchesHost) {
  const std::size_t n = 500;  // four stripes
  const Array64 x = node.alloc64(mem::Bank::A, n);
  const Array64 y = node.alloc64(mem::Bank::B, n);
  const Array64 z = node.alloc64(mem::Bank::B, n);
  std::mt19937_64 rng{1};
  std::uniform_real_distribution<double> dist(-10, 10);
  std::vector<double> xv(n);
  std::vector<double> yv(n);
  for (std::size_t i = 0; i < n; ++i) {
    xv[i] = dist(rng);
    yv[i] = dist(rng);
  }
  node.write64(x, xv);
  node.write64(y, yv);
  sim.spawn(run_saxpy(&node, 2.5, x, y, z));
  sim.run();
  const std::vector<double> zv = node.read64(z);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(zv[i], 2.5 * xv[i] + yv[i]) << i;
  }
  // Rough rate check: 2n flops near peak for long vectors.
  const double mflops = 2.0 * static_cast<double>(n) / sim.now().us();
  EXPECT_GT(mflops, 11.0);
  EXPECT_LE(mflops, 16.0);
}

Proc run_dot(Node* n, Array64 x, Array64 y, double* out) {
  co_await n->vreduce(VectorForm::vdot, x, y, out);
}

TEST_F(NodeTest, StripMinedDotCloseToHost) {
  const std::size_t n = 400;
  const Array64 x = node.alloc64(mem::Bank::A, n);
  const Array64 y = node.alloc64(mem::Bank::B, n);
  std::vector<double> xv(n);
  std::vector<double> yv(n);
  double host = 0;
  for (std::size_t i = 0; i < n; ++i) {
    xv[i] = 0.25 * static_cast<double>(i % 31) - 3;
    yv[i] = 0.5 * static_cast<double>(i % 17) - 4;
    host += xv[i] * yv[i];
  }
  node.write64(x, xv);
  node.write64(y, yv);
  double result = 0;
  sim.spawn(run_dot(&node, x, y, &result));
  sim.run();
  EXPECT_NEAR(result, host, 1e-9 * std::abs(host) + 1e-9);
}

Proc run_maxval(Node* n, Array64 x, double* out, std::size_t* idx) {
  co_await n->vreduce(VectorForm::vmaxval, x, Array64{}, out, idx);
}

TEST_F(NodeTest, MaxValAcrossStripesFindsGlobalIndex) {
  const std::size_t n = 300;
  const Array64 x = node.alloc64(mem::Bank::A, n);
  std::vector<double> xv(n, 1.0);
  xv[257] = 42.0;  // in the third stripe
  node.write64(x, xv);
  double best = 0;
  std::size_t idx = 0;
  sim.spawn(run_maxval(&node, x, &best, &idx));
  sim.run();
  EXPECT_EQ(best, 42.0);
  EXPECT_EQ(idx, 257u);
}

Proc overlap_workload(Node* n, Array64 x, Array64 z) {
  // A vector op and a CP gather issued in parallel (PAR): with overlap they
  // cost max(t_v, t_g); without, they serialise.
  co_await sim::WhenAll{n->vscalar(VectorForm::vsmul, 2.0, x, Array64{}, z),
                        n->gather(64)};
}

TEST(NodeOverlap, GatherOverlapsVectorArithmetic) {
  Simulator sim;
  Node fast{sim, 0};
  const Array64 x = fast.alloc64(mem::Bank::A, 128);
  const Array64 z = fast.alloc64(mem::Bank::B, 128);
  sim.spawn(overlap_workload(&fast, x, z));
  sim.run();
  const SimTime overlapped = sim.now();

  Simulator sim2;
  Node slow{sim2, 0, NodeConfig{.dual_bank = true, .overlap = false}};
  const Array64 x2 = slow.alloc64(mem::Bank::A, 128);
  const Array64 z2 = slow.alloc64(mem::Bank::B, 128);
  sim2.spawn(overlap_workload(&slow, x2, z2));
  sim2.run();
  const SimTime serial = sim2.now();

  // gather(64) = 102.4 us dominates the ~17 us vector op.
  EXPECT_LT(overlapped, 105_us);
  EXPECT_GT(serial / overlapped, 1.1);
}

TEST(NodeLinkIntegration, TisaProgramsExchangeWordOverALink) {
  Simulator sim;
  Node a{sim, 0};
  Node b{sim, 1};
  link::Link cable{sim};
  a.links().attach(0, cable, 0);
  b.links().attach(0, cable, 1);

  // Node a sends the word 1234 over port 0 sublink 0; node b receives it
  // and stores it at 0x2000.
  const cp::Program pa = cp::assemble(R"(
      ldc 1234
      stl 0
      ldlp 0
      ldc 0xF0000000   ; port 0, sublink 0, output
      ldc 4
      out
      halt
  )");
  const cp::Program pb = cp::assemble(R"(
      ldlp 0
      ldc 0xF0000001   ; port 0, sublink 0, input
      ldc 4
      in
      ldl 0
      ldc 0x2000
      stnl 0
      halt
  )");
  a.cpu().load(pa);
  b.cpu().load(pb);
  a.cpu().start_process(pa.entry(), 0x8000, 1);
  b.cpu().start_process(pb.entry(), 0x8000, 1);
  sim.spawn(a.cpu().run());
  sim.spawn(b.cpu().run());
  sim.run();
  EXPECT_EQ(b.cpu().read_word(0x2000), 1234u);
  // Wire time for 4+8 bytes at 2 us/byte plus 5 us DMA startup.
  EXPECT_GT(sim.now(), 29_us);
  EXPECT_LT(sim.now(), 40_us);
}

}  // namespace
}  // namespace fpst::node
