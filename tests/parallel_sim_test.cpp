// Tests for the conservative parallel DES engine (sim/parallel_sim.hpp):
// the Gray-code subcube ShardMap, the barrier-epoch scheduler's determinism
// guarantees (same-instant merge order, thread-count independence, exact
// degeneration to the serial engine), the causality-violation abort, and
// race-freedom of a sharded machine under ThreadSanitizer.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "link/link.hpp"
#include "occam/occam.hpp"
#include "perf/chrome_trace.hpp"
#include "perf/counters.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/proc.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace fpst;
using sim::ParallelSim;
using sim::ShardMap;
using sim::SimTime;

// ---------------------------------------------------------------------------
// ShardMap

TEST(ShardMapTest, GrayRankInvertsGray) {
  for (std::uint32_t i = 0; i < 1024; ++i) {
    EXPECT_EQ(ShardMap::gray_rank(ShardMap::gray(i)), i);
  }
}

TEST(ShardMapTest, PartitionsIntoEqualContiguousSubcubes) {
  const ShardMap m{6, 4};
  // 64 nodes over 4 shards: nodes sharing the top 2 address bits must land
  // together, and every shard gets exactly 16 nodes.
  std::vector<int> count(4, 0);
  for (std::uint32_t n = 0; n < 64; ++n) {
    const int s = m.shard_of(n);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    ++count[static_cast<std::size_t>(s)];
    EXPECT_EQ(s, m.shard_of(n | 0xF));  // low 4 bits never matter
  }
  for (const int c : count) {
    EXPECT_EQ(c, 16);
  }
}

TEST(ShardMapTest, AdjacentShardsAreCubeNeighbours) {
  // Gray numbering: the subcubes of shard s and s+1 differ in exactly one
  // of the top dimensions.
  const ShardMap m{6, 8};
  for (std::uint32_t s = 0; s + 1 < 8; ++s) {
    const std::uint32_t a = ShardMap::gray(s);
    const std::uint32_t b = ShardMap::gray(s + 1);
    const std::uint32_t diff = a ^ b;
    EXPECT_EQ(diff & (diff - 1), 0u);  // exactly one bit
  }
}

TEST(ShardMapTest, OnlyHighDimensionsCrossShards) {
  const ShardMap m{6, 4};
  for (int d = 0; d < 4; ++d) {
    EXPECT_FALSE(m.dim_crosses_shards(d)) << d;
  }
  EXPECT_TRUE(m.dim_crosses_shards(4));
  EXPECT_TRUE(m.dim_crosses_shards(5));
}

TEST(ShardMapTest, RejectsBadShardCounts) {
  EXPECT_THROW(ShardMap(4, 3), std::invalid_argument);   // not a power of 2
  EXPECT_THROW(ShardMap(2, 8), std::invalid_argument);   // more than nodes
  EXPECT_THROW(ShardMap(4, 0), std::invalid_argument);
  EXPECT_NO_THROW(ShardMap(4, 16));  // one node per shard is legal
}

// ---------------------------------------------------------------------------
// ParallelSim core

TEST(ParallelSimTest, RequiresLookaheadWhenSharded) {
  ParallelSim::Options po;
  po.shards = 2;
  EXPECT_THROW(ParallelSim{po}, std::invalid_argument);
  po.lookahead = SimTime::microseconds(1);
  EXPECT_NO_THROW(ParallelSim{po});
  po.shards = 1;
  po.lookahead = SimTime{};
  EXPECT_NO_THROW(ParallelSim{po});  // serial degenerate: no window needed
}

TEST(ParallelSimTest, SingleShardMatchesSerialEngineExactly) {
  // The same event program driven through a plain Simulator and through the
  // shards=1 engine must execute in the identical order at the identical
  // times — run() with one shard *is* the serial engine.
  const auto program = [](sim::Simulator& s,
                          std::vector<std::pair<std::int64_t, int>>* log) {
    for (int i = 0; i < 64; ++i) {
      s.schedule(SimTime::nanoseconds((i * 37) % 100), [&s, log, i] {
        log->push_back({s.now().ps(), i});
        if (i % 7 == 0) {
          s.schedule(SimTime::nanoseconds(5),
                     [&s, log, i] { log->push_back({s.now().ps(), 1000 + i}); });
        }
      });
    }
  };
  std::vector<std::pair<std::int64_t, int>> serial_log;
  sim::Simulator serial;
  program(serial, &serial_log);
  serial.run();

  std::vector<std::pair<std::int64_t, int>> par_log;
  ParallelSim psim{ParallelSim::Options{}};
  program(psim.shard(0), &par_log);
  psim.run();

  EXPECT_EQ(par_log, serial_log);
  EXPECT_EQ(psim.events_processed(), serial.events_processed());
  EXPECT_EQ(psim.now(), serial.now());
}

ParallelSim::Options two_shards() {
  ParallelSim::Options po;
  po.shards = 2;
  po.lookahead = SimTime::microseconds(10);
  return po;
}

TEST(ParallelSimTest, SameInstantMailMergesByKeyThenShard) {
  // Three deliveries landing on shard 1 at the same instant, posted in
  // scrambled order: the engine must run them in (key, source shard) order
  // regardless of posting order or thread count.
  for (const int threads : {1, 2}) {
    ParallelSim::Options po = two_shards();
    po.threads = threads;
    ParallelSim psim{po};
    std::vector<int> order;
    const SimTime at = SimTime::microseconds(50);
    psim.post(0, 1, at, /*key=*/9, [&order] { order.push_back(9); });
    psim.post(0, 1, at, /*key=*/2, [&order] { order.push_back(2); });
    psim.post(1, 1, at, /*key=*/2, [&order] { order.push_back(100); });
    psim.run();
    // key 2 before key 9; within key 2, source shard 0 before source 1.
    EXPECT_EQ(order, (std::vector<int>{2, 100, 9}))
        << "threads=" << threads;
    EXPECT_EQ(psim.now(), at);
  }
}

TEST(ParallelSimTest, CrossShardPingPongIsDeterministicAcrossThreads) {
  // A ping-pong chain between two shards: each delivery schedules local
  // work and posts the next hop at +lookahead. The executed-event count and
  // final time must be identical for every worker-thread count.
  struct Result {
    std::uint64_t events;
    std::int64_t end_ps;
  };
  const auto run_with = [](int threads) -> Result {
    ParallelSim::Options po = two_shards();
    po.threads = threads;
    ParallelSim psim{po};
    int count = 0;  // only touched by in-window events; barrier orders them
    // Bounce 32 times, alternating shards; each hop does some local work.
    std::function<void(int, SimTime)> hop = [&psim, &count,
                                             &hop](int to, SimTime at) {
      psim.shard(to).schedule_at(at, [&psim, &count, &hop, to, at] {
        ++count;
        if (count < 32) {
          const SimTime next = at + SimTime::microseconds(10);
          psim.post(to, 1 - to, next, static_cast<std::uint64_t>(count),
                    [&psim, &hop, to, next] {
                      psim.shard(1 - to).schedule(SimTime::nanoseconds(1),
                                                  [] {});
                      hop(1 - to, next);
                    });
        }
      });
    };
    hop(0, SimTime::microseconds(1));
    psim.run();
    return Result{psim.events_processed(), psim.now().ps()};
  };
  const Result t1 = run_with(1);
  const Result t2 = run_with(2);
  EXPECT_EQ(t1.events, t2.events);
  EXPECT_EQ(t1.end_ps, t2.end_ps);
  EXPECT_GT(t1.events, 32u);
}

TEST(ParallelSimTest, ProfileCountersAreConsistentAcrossThreadCounts) {
  const auto run_with = [](int threads) {
    ParallelSim::Options po = two_shards();
    po.threads = threads;
    ParallelSim psim{po};
    // Local work on both shards plus cross-shard mail, spread over several
    // lookahead windows so multiple epochs execute.
    for (int i = 0; i < 8; ++i) {
      const SimTime at = SimTime::microseconds(5 + 10 * i);
      psim.shard(0).schedule_at(at, [] {});
      psim.shard(1).schedule_at(at, [] {});
      psim.post(0, 1, at + SimTime::microseconds(10),
                static_cast<std::uint64_t>(i), [] {});
    }
    psim.run();
    return std::make_pair(psim.profile(), psim.events_processed());
  };
  const auto [p1, ev1] = run_with(1);
  const auto [p2, ev2] = run_with(2);
  ASSERT_EQ(p1.shard_events.size(), 2u);
  ASSERT_EQ(p2.shard_events.size(), 2u);
  EXPECT_EQ(p2.worker_barrier_ns.size(), 2u);
  // Every executed event is attributed to exactly one shard.
  EXPECT_EQ(p1.shard_events[0] + p1.shard_events[1], ev1);
  EXPECT_EQ(p2.shard_events[0] + p2.shard_events[1], ev2);
  // The deterministic profile fields (epochs, per-shard event counts, mail
  // deliveries) are pure functions of the event program and the lookahead
  // windows — never of the worker-thread count. epochs in particular flows
  // into the serve layer's dump *body*, so this is the property the
  // determinism gates lean on.
  EXPECT_EQ(ev1, ev2);
  EXPECT_GT(p1.epochs, 0u);
  EXPECT_EQ(p1.epochs, p2.epochs);
  EXPECT_EQ(p1.shard_events, p2.shard_events);
  EXPECT_EQ(p1.mail_delivered, p2.mail_delivered);
  EXPECT_EQ(p1.mail_delivered, 8u);
}

TEST(ParallelSimTest, WorkerExceptionIsRethrown) {
  ParallelSim psim{two_shards()};
  psim.shard(1).schedule(SimTime::microseconds(1),
                         [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(psim.run(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Causality violations must abort loudly, never corrupt ordering silently.

TEST(ParallelSimCausalityDeathTest, PastDeliveryAbortsSingleShard) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        ParallelSim psim{ParallelSim::Options{}};
        // An event at t=100us posts mail addressed to t=50us — already in
        // this shard's past by the time the batch drains.
        psim.shard(0).schedule_at(SimTime::microseconds(100), [&psim] {
          psim.post(0, 0, SimTime::microseconds(50), 1, [] {});
        });
        psim.run();
      },
      "causality violation");
}

TEST(ParallelSimCausalityDeathTest, LookaheadLieAbortsAcrossShards) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        ParallelSim::Options po;
        po.shards = 2;
        po.threads = 1;
        po.lookahead = SimTime::milliseconds(1);  // claims >= 1ms latency
        ParallelSim psim{po};
        // Shard 1 runs far past 450us inside the first epoch window while
        // shard 0 breaks its lookahead promise with a 50us-later delivery.
        psim.shard(1).schedule_at(SimTime::microseconds(900), [] {});
        psim.shard(0).schedule_at(SimTime::microseconds(400), [&psim] {
          psim.post(0, 1, SimTime::microseconds(450), 1, [] {});
        });
        psim.run();
      },
      "causality violation");
}

// ---------------------------------------------------------------------------
// Distance-aware lookahead matrix.

TEST(LookaheadMatrixTest, EntriesRespectHopDistanceTimesTransferTime) {
  // The conservative contract: lookahead(a, b) must never be *below*
  // hop_distance(a, b) * base — a message crossing d cube dimensions takes
  // at least d single-hop transfers — and set_topology installs exactly
  // that bound. Checked for every pair at several shard scales.
  const SimTime base = link::LinkParams::transfer_time(0);
  for (const int shards : {2, 4, 8, 16}) {
    ParallelSim::Options po;
    po.shards = shards;
    po.lookahead = base;
    ParallelSim psim{po};
    const ShardMap map{10, shards};
    psim.set_topology(map);
    for (int a = 0; a < shards; ++a) {
      for (int b = 0; b < shards; ++b) {
        if (a == b) {
          continue;
        }
        const int d = map.hop_distance(a, b);
        ASSERT_GE(d, 1);
        EXPECT_GE(psim.lookahead(a, b).ps(),
                  (base * static_cast<std::int64_t>(d)).ps())
            << "shards=" << shards << " pair=(" << a << "," << b << ")";
        // Metric axioms on the distance itself: symmetry plus the triangle
        // inequality through every relay. The triangle inequality is what
        // makes the matrix safe against indirect influence, so it is
        // load-bearing, not decorative.
        EXPECT_EQ(map.hop_distance(a, b), map.hop_distance(b, a));
        for (int c = 0; c < shards; ++c) {
          EXPECT_LE(map.hop_distance(a, b),
                    map.hop_distance(a, c) + map.hop_distance(c, b));
        }
      }
    }
  }
}

TEST(LookaheadMatrixTest, UniformUntilTopologyInstalled) {
  // Raw-engine users post with the single base-lookahead contract; the
  // matrix must not assume cube distances until told the topology.
  ParallelSim::Options po;
  po.shards = 8;
  po.lookahead = SimTime::microseconds(10);
  ParallelSim psim{po};
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      if (a != b) {
        EXPECT_EQ(psim.lookahead(a, b), SimTime::microseconds(10));
      }
    }
  }
}

TEST(LookaheadMatrixTest, DistantShardsSitOutEpochs) {
  // Two hot shards at Gray distance 3 (ranks 0 and 5: gray 000 vs 111)
  // running purely local event chains. Under the uniform window every
  // shard is scheduled every base-sized epoch; under distance-aware
  // horizons the hot pair advances in multi-hop windows (fewer epochs)
  // and the six idle shards are never scheduled at all. Both runs must
  // execute the identical simulation.
  const SimTime base = SimTime::microseconds(10);
  const auto run_mode = [&base](bool uniform) {
    ParallelSim::Options po;
    po.shards = 8;
    po.threads = 2;
    po.lookahead = base;
    po.uniform_window = uniform;
    ParallelSim psim{po};
    psim.set_topology(ShardMap{6, 8});
    for (const int s : {0, 5}) {
      for (int i = 0; i < 64; ++i) {
        psim.shard(s).schedule_at(base * (1 + i), [] {});
      }
    }
    psim.run();
    return std::make_pair(psim.profile(), psim.events_processed());
  };
  const auto [uni, uni_events] = run_mode(true);
  const auto [dist, dist_events] = run_mode(false);
  EXPECT_EQ(uni_events, dist_events);
  EXPECT_GT(uni.epochs, 0u);
  EXPECT_LT(dist.epochs, uni.epochs);
  ASSERT_EQ(dist.shard_syncs.size(), 8u);
  // Idle shards never sync under distance-aware horizons; the uniform
  // window scheduled them every epoch.
  for (const int s : {1, 2, 3, 4, 6, 7}) {
    EXPECT_EQ(dist.shard_syncs[static_cast<std::size_t>(s)], 0u) << s;
    EXPECT_EQ(uni.shard_syncs[static_cast<std::size_t>(s)], uni.epochs) << s;
  }
  EXPECT_GT(dist.shard_syncs[0], 0u);
  EXPECT_GT(dist.shard_syncs[5], 0u);
}

TEST(LookaheadMatrixTest, MailboxReserveShrinksAfterBurst) {
  // A one-off 4096-message burst must not pin burst-sized buffers for the
  // rest of the run: once drained and delivered, the serial phase releases
  // capacity that the live traffic no longer justifies. Regression test
  // for buffer hoarding when a pair then skips many epochs.
  ParallelSim::Options po = two_shards();
  ParallelSim psim{po};
  constexpr int kBurst = 4096;
  const SimTime at = SimTime::microseconds(100);
  for (int i = 0; i < kBurst; ++i) {
    psim.post(0, 1, at, static_cast<std::uint64_t>(i), [] {});
  }
  // Trailing sparse traffic so the engine keeps cycling epochs after the
  // burst is long gone.
  for (int i = 0; i < 32; ++i) {
    psim.shard(0).schedule_at(SimTime::microseconds(200 + 20 * i), [] {});
  }
  psim.run();
  const ParallelSim::Profile p = psim.profile();
  EXPECT_EQ(p.mail_delivered, static_cast<std::uint64_t>(kBurst));
  EXPECT_GT(p.epochs, 1u);
  // The burst alone held >= 4096 Mail slots (~hundreds of KiB). After the
  // run every box and pending buffer is empty; the retained reserve must
  // be back down to idle-capacity territory, not burst territory.
  EXPECT_LT(p.mail_reserve_bytes, 64u * 1024u);
}

TEST(ParallelSimCausalityDeathTest, InflatedMatrixEntryAbortsOnRealTraffic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        // Manipulating one matrix entry above the link's true minimum
        // delay is a lookahead lie: the scheduler lets shard 1 run beyond
        // the next honest delivery, which must trip the causality abort
        // rather than silently reorder.
        ParallelSim::Options po;
        po.shards = 2;
        po.threads = 1;
        po.lookahead = SimTime::microseconds(10);
        ParallelSim psim{po};
        psim.override_lookahead(0, 1, SimTime::milliseconds(1));
        psim.shard(1).schedule_at(SimTime::microseconds(900), [] {});
        psim.shard(0).schedule_at(SimTime::microseconds(400), [&psim] {
          // Honest per the 10us link bound, a lie per the inflated matrix.
          psim.post(0, 1, SimTime::microseconds(450), 1, [] {});
        });
        psim.run();
      },
      "causality violation");
}

// ---------------------------------------------------------------------------
// Sharded machine end to end (under TSan this is the race detector's meal).

double run_alltoall(int dim, int shards, int threads,
                    std::string* dump_json) {
  ParallelSim::Options po;
  po.shards = shards;
  po.threads = threads;
  po.lookahead = link::LinkParams::transfer_time(0);
  ParallelSim psim{po};
  core::TSeries machine{psim, dim};
  perf::CounterRegistry reg;
  if (dump_json != nullptr) {
    machine.enable_perf(reg);
    reg.meta().workload = "test alltoall";
  }
  occam::Runtime rt{machine};
  const std::size_t n = machine.size();
  std::vector<double> sums(n, 0.0);
  constexpr std::uint16_t kTag = 3;
  // Round-staged all-to-all: round r pairs every node's send to (id + r)
  // with one receive, so each node has at most one injection outstanding.
  // (An all-eager all-to-all — every node launching n-1 sends at once —
  // saturates the store-and-forward routers into a genuine communication
  // deadlock at >= 32 nodes, on the serial engine just the same; the
  // staged shape is how a real machine would run it.)
  const sim::SimTime elapsed =
      rt.run([&sums, n](occam::Ctx& ctx) -> sim::Proc {
        for (std::size_t rel = 1; rel < n; ++rel) {
          const auto peer =
              static_cast<net::NodeId>((ctx.id() + rel) % n);
          std::vector<sim::Proc> round;
          round.push_back(
              ctx.send(peer, kTag, std::vector<double>(4, 1.0 + ctx.id())));
          round.push_back([](occam::Ctx* c, double* sum) -> sim::Proc {
            occam::Msg m;
            co_await c->recv_any(kTag, &m);
            for (const double v : m.data) {
              *sum += v;
            }
          }(&ctx, &sums[ctx.id()]));
          co_await sim::WhenAll{std::move(round)};
        }
      });
  if (dump_json != nullptr) {
    *dump_json = perf::to_json(reg, elapsed).dump(2);
  }
  double total = 0.0;
  for (const double s : sums) {
    total += s;
  }
  return total;
}

double alltoall_expect(int dim) {
  const auto n = static_cast<double>(std::size_t{1} << dim);
  // Node i receives 4 doubles of value (1 + j) from every j != i.
  return 4.0 * (n * (n + 1.0) / 2.0) * (n - 1.0);
}

TEST(ParallelMachineTest, AllToAllDumpsAreIdenticalAcrossThreadCounts) {
  std::string t1;
  std::string t2;
  std::string t4;
  EXPECT_EQ(run_alltoall(4, 4, 1, &t1), alltoall_expect(4));
  EXPECT_EQ(run_alltoall(4, 4, 2, &t2), alltoall_expect(4));
  EXPECT_EQ(run_alltoall(4, 4, 4, &t4), alltoall_expect(4));
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t4);
  EXPECT_FALSE(t1.empty());
}

TEST(ParallelMachineTest, AllToAllUnderRaceDetection) {
  // The TSan leg of CI sets FPST_HEAVY_TESTS and gets the full 10-cube
  // all-to-all the issue demands (~1M messages); the default run keeps a
  // 6-cube so sanitized local runs stay fast. Both drive every cross-shard
  // path concurrently at maximum thread count.
  const char* heavy_env = std::getenv("FPST_HEAVY_TESTS");
  const bool heavy = heavy_env != nullptr && *heavy_env != '\0';
  const int dim = heavy ? 10 : 6;
  EXPECT_EQ(run_alltoall(dim, 8, 8, nullptr), alltoall_expect(dim));
}

TEST(ParallelMachineTest, TenCubeAllreduceMatchesSerial) {
  // A 1024-node collective exercises every cross-shard dimension; the
  // result and the simulated elapsed time must not depend on threads.
  const auto run_allreduce = [](int threads) {
    ParallelSim::Options po;
    po.shards = 8;
    po.threads = threads;
    po.lookahead = link::LinkParams::transfer_time(0);
    ParallelSim psim{po};
    core::TSeries machine{psim, 10};
    occam::Runtime rt{machine};
    std::vector<double> out(machine.size(), 0.0);
    const sim::SimTime elapsed = rt.run([&out](occam::Ctx& ctx) -> sim::Proc {
      double x = 1.0 + ctx.id();
      co_await ctx.allreduce_sum(&x);
      out[ctx.id()] = x;
    });
    return std::make_pair(out, elapsed.ps());
  };
  const auto [vals2, ps2] = run_allreduce(2);
  const auto [vals4, ps4] = run_allreduce(4);
  const double expect = 1024.0 * 1025.0 / 2.0;
  for (const double v : vals2) {
    ASSERT_EQ(v, expect);
  }
  EXPECT_EQ(vals2, vals4);
  EXPECT_EQ(ps2, ps4);
}

}  // namespace
