// Tests for the combining-tree epoch barrier (sim/tree_barrier.hpp): the
// completion callback must run exactly once per round with every other
// participant parked, rounds must stay in lockstep for every participant
// count (including odd ones and one), and the whole protocol must be clean
// under ThreadSanitizer — it replaces std::barrier on the engine's hot
// epoch path, so its memory-ordering chain is what the determinism gates
// ultimately stand on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/tree_barrier.hpp"

namespace {

using fpst::sim::TreeBarrier;

TEST(TreeBarrierTest, SingleParticipantRunsCompletionInline) {
  int completions = 0;
  TreeBarrier barrier{1, [&completions] { ++completions; }};
  for (int round = 0; round < 5; ++round) {
    barrier.arrive_and_wait(0);
  }
  EXPECT_EQ(completions, 5);
  EXPECT_EQ(barrier.generation(), 5u);
}

TEST(TreeBarrierTest, CompletionRunsOncePerRoundWhileOthersPark) {
  // `inside` counts threads currently between arrival and release; the
  // completion must observe every other participant parked (inside == n).
  for (const int n : {2, 3, 4, 7, 8}) {
    constexpr int kRounds = 200;
    std::atomic<int> inside{0};
    std::atomic<int> completions{0};
    std::atomic<bool> saw_partial{false};
    TreeBarrier barrier{
        n, [&inside, &completions, &saw_partial, n] {
          if (inside.load(std::memory_order_relaxed) != n) {
            saw_partial.store(true, std::memory_order_relaxed);
          }
          completions.fetch_add(1, std::memory_order_relaxed);
        }};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(n));
    for (int who = 0; who < n; ++who) {
      pool.emplace_back([&barrier, &inside, who] {
        for (int round = 0; round < kRounds; ++round) {
          inside.fetch_add(1, std::memory_order_relaxed);
          barrier.arrive_and_wait(who);
          inside.fetch_sub(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
    EXPECT_EQ(completions.load(), kRounds) << "participants=" << n;
    EXPECT_FALSE(saw_partial.load()) << "participants=" << n;
    EXPECT_EQ(barrier.generation(), static_cast<std::uint64_t>(kRounds));
  }
}

TEST(TreeBarrierTest, CompletionWritesAreVisibleToEveryWorkerNextRound) {
  // The engine's serial phase publishes plain (non-atomic) epoch state
  // through the barrier; model that exactly: completion bumps a plain
  // counter, every worker must read the fresh value each round. TSan
  // verifies the happens-before chain; the asserts verify the values.
  constexpr int kThreads = 4;
  constexpr int kRounds = 500;
  int epoch = 0;  // plain int: ordered only by the barrier
  std::atomic<bool> mismatch{false};
  TreeBarrier barrier{kThreads, [&epoch] { ++epoch; }};
  std::vector<std::thread> pool;
  for (int who = 0; who < kThreads; ++who) {
    pool.emplace_back([&barrier, &epoch, &mismatch, who] {
      for (int round = 0; round < kRounds; ++round) {
        barrier.arrive_and_wait(who);
        if (epoch != round + 1) {
          mismatch.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(epoch, kRounds);
}

TEST(TreeBarrierTest, RejectsNonPositiveParticipantCounts) {
  EXPECT_THROW(TreeBarrier(0, nullptr), std::invalid_argument);
  EXPECT_THROW(TreeBarrier(-3, nullptr), std::invalid_argument);
}

}  // namespace
