// Tests for the vector arithmetic unit: functional results against a host
// reference, the paper's pipeline timing model, flags, reductions, and the
// dual-bank ablation.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "vpu/vpu.hpp"

namespace fpst::vpu {
namespace {

using fp::T64;
using mem::MemParams;
using sim::SimTime;

class VpuTest : public ::testing::Test {
 protected:
  /// Write `v` into row `row` as 64-bit elements.
  void fill_row64(std::size_t row, const std::vector<double>& v) {
    mem::VectorRegister reg;
    for (std::size_t i = 0; i < v.size(); ++i) {
      reg.set_f64(i, T64::from_double(v[i]));
    }
    memory.store_row(row, reg);
  }

  std::vector<double> read_row64(std::size_t row, std::size_t n) {
    mem::VectorRegister reg;
    memory.load_row(row, reg);
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = reg.f64(i).to_double();
    }
    return out;
  }

  static std::vector<double> random_vec(std::size_t n, unsigned seed) {
    std::mt19937_64 rng{seed};
    std::uniform_real_distribution<double> dist(-100.0, 100.0);
    std::vector<double> v(n);
    for (double& x : v) {
      x = dist(rng);
    }
    return v;
  }

  mem::NodeMemory memory;
  VectorUnit vpu{memory};
};

TEST_F(VpuTest, ParamsMatchPaper) {
  EXPECT_EQ(VpuParams::cycle(), SimTime::nanoseconds(125));
  EXPECT_EQ(VpuParams::kAdderStages, 6) << "six-stage adder";
  EXPECT_EQ(VpuParams::kMulStages32, 5) << "five-stage multiplier (32-bit)";
  EXPECT_EQ(VpuParams::kMulStages64, 7) << "seven-stage multiplier (64-bit)";
  EXPECT_DOUBLE_EQ(VpuParams::peak_mflops(), 16.0) << "16 MFLOPS peak";
}

TEST_F(VpuTest, VaddMatchesHost) {
  const std::size_t n = MemParams::kElems64;
  const auto x = random_vec(n, 1);
  const auto y = random_vec(n, 2);
  fill_row64(0, x);    // bank A
  fill_row64(300, y);  // bank B
  const OpResult r = vpu.execute(
      {VectorForm::vadd, Precision::f64, n, 0, 300, 600, T64{}});
  const auto z = read_row64(600, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(z[i], x[i] + y[i]);
  }
  EXPECT_EQ(r.flops, n);
}

TEST_F(VpuTest, SaxpyMatchesHostAndCountsTwoFlopsPerElement) {
  const std::size_t n = 100;
  const auto x = random_vec(n, 3);
  const auto y = random_vec(n, 4);
  const double a = 2.5;
  fill_row64(1, x);
  fill_row64(301, y);
  const OpResult r =
      vpu.execute({VectorForm::vsaxpy, Precision::f64, n, 1, 301, 601,
                   T64::from_double(a)});
  const auto z = read_row64(601, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(z[i], a * x[i] + y[i]) << i;
  }
  EXPECT_EQ(r.flops, 2 * n);
}

TEST_F(VpuTest, ScalarFormsHoldScalarInPipeRegister) {
  const std::size_t n = 16;
  const auto x = random_vec(n, 5);
  fill_row64(2, x);
  const OpResult rm = vpu.execute(
      {VectorForm::vsmul, Precision::f64, n, 2, 0, 602, T64::from_double(3.0)});
  (void)rm;
  auto z = read_row64(602, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(z[i], 3.0 * x[i]);
  }
  vpu.execute({VectorForm::vsadd, Precision::f64, n, 2, 0, 603,
               T64::from_double(-1.5)});
  z = read_row64(603, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(z[i], -1.5 + x[i]);
  }
}

TEST_F(VpuTest, DotProductIsCloseToHostAndReproducible) {
  const std::size_t n = MemParams::kElems64;
  const auto x = random_vec(n, 6);
  const auto y = random_vec(n, 7);
  fill_row64(3, x);
  fill_row64(303, y);
  const VectorOp op{VectorForm::vdot, Precision::f64, n, 3, 303, 0, T64{}};
  const OpResult r1 = vpu.execute(op);
  double host = 0;
  for (std::size_t i = 0; i < n; ++i) {
    host += x[i] * y[i];
  }
  // The feedback reduction uses six interleaved partials, so the result is
  // not bitwise the sequential sum — but it must be close, and identical
  // across runs.
  EXPECT_NEAR(r1.scalar_result.to_double(), host, 1e-9 * std::fabs(host) + 1e-9);
  const OpResult r2 = vpu.execute(op);
  EXPECT_EQ(r1.scalar_result.bits(), r2.scalar_result.bits());
  EXPECT_EQ(r1.flops, 2 * n);
}

TEST_F(VpuTest, SumReductionSmallCasesExact) {
  // With <= 6 elements every element lands in its own partial; the collapse
  // tree is then an exact reassociation of small integers.
  fill_row64(4, {1, 2, 3, 4, 5, 6});
  const OpResult r = vpu.execute(
      {VectorForm::vsum, Precision::f64, 6, 4, 0, 0, T64{}});
  EXPECT_EQ(r.scalar_result.to_double(), 21.0);
}

TEST_F(VpuTest, MaxValReportsValueAndIndex) {
  fill_row64(5, {3.0, -8.0, 12.5, 12.5, 1.0});
  const OpResult r = vpu.execute(
      {VectorForm::vmaxval, Precision::f64, 5, 5, 0, 0, T64{}});
  EXPECT_EQ(r.scalar_result.to_double(), 12.5);
  EXPECT_EQ(r.reduction_index, 2u) << "first maximum wins";
}

TEST_F(VpuTest, CompareProducesMask) {
  fill_row64(6, {1.0, 5.0, 3.0});
  fill_row64(306, {2.0, 2.0, 3.0});
  vpu.execute({VectorForm::vcmp_le, Precision::f64, 3, 6, 306, 606, T64{}});
  const auto z = read_row64(606, 3);
  EXPECT_EQ(z[0], 1.0);
  EXPECT_EQ(z[1], 0.0);
  EXPECT_EQ(z[2], 1.0);
}

TEST_F(VpuTest, NegAbsForms) {
  fill_row64(7, {1.5, -2.5, 0.0});
  vpu.execute({VectorForm::vneg, Precision::f64, 3, 7, 0, 607, T64{}});
  auto z = read_row64(607, 3);
  EXPECT_EQ(z[0], -1.5);
  EXPECT_EQ(z[1], 2.5);
  vpu.execute({VectorForm::vabs, Precision::f64, 3, 7, 0, 608, T64{}});
  z = read_row64(608, 3);
  EXPECT_EQ(z[0], 1.5);
  EXPECT_EQ(z[1], 2.5);
}

TEST_F(VpuTest, ConversionForms) {
  // Widen: pack 32-bit floats, convert to 64-bit.
  mem::VectorRegister reg;
  for (std::size_t i = 0; i < 8; ++i) {
    reg.set_f32(i, fp::T32::from_float(1.5f * static_cast<float>(i)));
  }
  memory.store_row(8, reg);
  vpu.execute({VectorForm::vcvt_widen, Precision::f64, 8, 8, 0, 609, T64{}});
  const auto z = read_row64(609, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(z[i], 1.5 * static_cast<double>(i));
  }
  // Narrow back.
  vpu.execute({VectorForm::vcvt_narrow, Precision::f64, 8, 609, 0, 610, T64{}});
  mem::VectorRegister out;
  memory.load_row(610, out);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out.f32(i).to_float(), 1.5f * static_cast<float>(i));
  }
}

TEST_F(VpuTest, F32FormsWork) {
  mem::VectorRegister reg;
  const std::size_t n = MemParams::kElems32;
  for (std::size_t i = 0; i < n; ++i) {
    reg.set_f32(i, fp::T32::from_float(static_cast<float>(i) * 0.5f));
  }
  memory.store_row(9, reg);
  memory.store_row(309, reg);
  const OpResult r = vpu.execute(
      {VectorForm::vadd, Precision::f32, n, 9, 309, 611, T64{}});
  (void)r;
  mem::VectorRegister out;
  memory.load_row(611, out);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out.f32(i).to_float(), static_cast<float>(i) * 1.0f);
  }
}

TEST_F(VpuTest, FlagsPropagateFromElements) {
  fill_row64(10, {1e308, 1.0});
  fill_row64(310, {1e308, 2.0});
  const OpResult r = vpu.execute(
      {VectorForm::vadd, Precision::f64, 2, 10, 310, 612, T64{}});
  EXPECT_TRUE(r.flags.overflow) << "element 0 overflows to +inf";
  const auto z = read_row64(612, 2);
  EXPECT_TRUE(std::isinf(z[0]));
  EXPECT_EQ(z[1], 3.0);
}

TEST_F(VpuTest, GeometryViolationsThrow) {
  EXPECT_THROW(vpu.execute({VectorForm::vadd, Precision::f64, 129, 0, 300,
                            600, T64{}}),
               std::invalid_argument)
      << "64-bit vectors are at most 128 elements";
  EXPECT_THROW(vpu.execute({VectorForm::vadd, Precision::f32, 257, 0, 300,
                            600, T64{}}),
               std::invalid_argument)
      << "32-bit vectors are at most 256 elements";
  EXPECT_THROW(vpu.execute({VectorForm::vadd, Precision::f64, 0, 0, 300, 600,
                            T64{}}),
               std::invalid_argument);
  EXPECT_THROW(vpu.execute({VectorForm::vadd, Precision::f64, 8, 2000, 300,
                            600, T64{}}),
               std::invalid_argument);
}

// --------------------------- timing model ---------------------------------

TEST_F(VpuTest, FullVectorSaxpyApproachesPeak) {
  const std::size_t n = MemParams::kElems64;
  const VectorOp op{VectorForm::vsaxpy, Precision::f64, n, 0, 300, 600,
                    T64::from_double(1.0)};
  const SimTime d = vpu.duration_of(op);
  const double mflops = 2.0 * static_cast<double>(n) / d.us();
  // Startup (row load + 13-stage fill + result row) costs ~9% at n=128.
  EXPECT_GT(mflops, 13.0);
  EXPECT_LT(mflops, 16.0);
}

TEST_F(VpuTest, StreamRateIsOneElementPerCycle) {
  const VectorOp a{VectorForm::vadd, Precision::f64, 10, 0, 300, 600, T64{}};
  const VectorOp b{VectorForm::vadd, Precision::f64, 110, 0, 300, 600, T64{}};
  const SimTime delta = vpu.duration_of(b) - vpu.duration_of(a);
  EXPECT_EQ(delta, 100 * VpuParams::cycle());
}

TEST_F(VpuTest, SameBankOperandsSerialiseRowLoads) {
  const VectorOp diff{VectorForm::vadd, Precision::f64, 64, 0, 300, 600,
                      T64{}};
  const VectorOp same{VectorForm::vadd, Precision::f64, 64, 0, 10, 600,
                      T64{}};
  EXPECT_EQ(vpu.duration_of(same) - vpu.duration_of(diff),
            MemParams::row_access());
}

TEST_F(VpuTest, SingleBankAblationHalvesTwoOperandThroughput) {
  VectorUnit crippled{memory, VectorUnit::Config{.dual_bank = false}};
  const VectorOp op{VectorForm::vadd, Precision::f64, 128, 0, 300, 600,
                    T64{}};
  const SimTime fast = vpu.duration_of(op);
  const SimTime slow = crippled.duration_of(op);
  // The stream term doubles (and row loads serialise); asymptotically the
  // rate halves.
  EXPECT_GT(slow / fast, 1.7);
  // One-operand forms are unaffected in stream rate.
  const VectorOp one{VectorForm::vsmul, Precision::f64, 128, 0, 0, 600,
                     T64::from_double(2.0)};
  EXPECT_EQ(vpu.duration_of(one), crippled.duration_of(one));
}

TEST_F(VpuTest, MulPipelineDeeperIn64BitMode) {
  const VectorOp op32{VectorForm::vmul, Precision::f32, 1, 0, 300, 600,
                      T64{}};
  const VectorOp op64{VectorForm::vmul, Precision::f64, 1, 0, 300, 600,
                      T64{}};
  EXPECT_EQ(vpu.duration_of(op64) - vpu.duration_of(op32),
            2 * VpuParams::cycle())
      << "7-stage vs 5-stage multiplier";
}

TEST_F(VpuTest, StatsAccumulate) {
  vpu.reset_stats();
  fill_row64(11, {1, 2});
  fill_row64(311, {3, 4});
  vpu.execute({VectorForm::vadd, Precision::f64, 2, 11, 311, 613, T64{}});
  vpu.execute({VectorForm::vdot, Precision::f64, 2, 11, 311, 0, T64{}});
  EXPECT_EQ(vpu.total_ops(), 2u);
  EXPECT_EQ(vpu.total_flops(), 2u + 4u);
  EXPECT_GT(vpu.total_busy(), SimTime{});
}

// Property sweep: every elementwise form matches a host-FP reference over
// random data, across both precisions.
class FormSweep : public ::testing::TestWithParam<VectorForm> {};

TEST_P(FormSweep, MatchesHostReference64) {
  const VectorForm form = GetParam();
  mem::NodeMemory memory;
  VectorUnit vpu{memory};
  std::mt19937_64 rng{99};
  std::uniform_real_distribution<double> dist(-50.0, 50.0);
  const std::size_t n = MemParams::kElems64;
  mem::VectorRegister rx;
  mem::VectorRegister ry;
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = dist(rng);
    y[i] = dist(rng);
    rx.set_f64(i, T64::from_double(x[i]));
    ry.set_f64(i, T64::from_double(y[i]));
  }
  memory.store_row(0, rx);
  memory.store_row(300, ry);
  const double a = 1.75;
  vpu.execute({form, Precision::f64, n, 0, 300, 600, T64::from_double(a)});
  mem::VectorRegister rz;
  memory.load_row(600, rz);
  for (std::size_t i = 0; i < n; ++i) {
    double expect = 0;
    switch (form) {
      case VectorForm::vadd: expect = x[i] + y[i]; break;
      case VectorForm::vsub: expect = x[i] - y[i]; break;
      case VectorForm::vmul: expect = x[i] * y[i]; break;
      case VectorForm::vsadd: expect = a + x[i]; break;
      case VectorForm::vsmul: expect = a * x[i]; break;
      case VectorForm::vsaxpy: expect = a * x[i] + y[i]; break;
      case VectorForm::vneg: expect = -x[i]; break;
      case VectorForm::vabs: expect = std::fabs(x[i]); break;
      default: FAIL() << "not an elementwise form";
    }
    EXPECT_EQ(rz.f64(i).to_double(), expect)
        << to_string(form) << " element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ElementwiseForms, FormSweep,
    ::testing::Values(VectorForm::vadd, VectorForm::vsub, VectorForm::vmul,
                      VectorForm::vsadd, VectorForm::vsmul,
                      VectorForm::vsaxpy, VectorForm::vneg, VectorForm::vabs),
    [](const ::testing::TestParamInfo<VectorForm>& pinfo) {
      return to_string(pinfo.param);
    });

}  // namespace
}  // namespace fpst::vpu
