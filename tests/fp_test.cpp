// Tests for the software T Series floating point: bit-exact agreement with
// host IEEE-754 wherever flush-to-zero and gradual underflow coincide, plus
// directed edge cases for the FTZ behaviour the paper specifies.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>

#include "fp/softfloat.hpp"

namespace fpst::fp {
namespace {

std::uint64_t dbits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

std::uint32_t fbits(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

bool host_is_denormal(double v) {
  return v != 0.0 && std::fabs(v) < std::numeric_limits<double>::min();
}
bool host_is_denormal(float v) {
  return v != 0.0f && std::fabs(v) < std::numeric_limits<float>::min();
}

TEST(T64, BasicArithmeticMatchesHost) {
  Flags fl;
  const T64 a = T64::from_double(1.5);
  const T64 b = T64::from_double(2.25);
  EXPECT_EQ(add(a, b, fl).to_double(), 3.75);
  EXPECT_EQ(sub(a, b, fl).to_double(), -0.75);
  EXPECT_EQ(mul(a, b, fl).to_double(), 3.375);
  EXPECT_FALSE(fl.any()) << "all operations above are exact";
}

TEST(T64, InexactFlagRaisedOnRounding) {
  Flags fl;
  const T64 one = T64::from_double(1.0);
  const T64 tiny = T64::from_double(0x1p-60);
  const T64 r = add(one, tiny, fl);
  EXPECT_EQ(r.to_double(), 1.0);
  EXPECT_TRUE(fl.inexact);
}

TEST(T64, RoundsToNearestEven) {
  Flags fl;
  // 1 + 2^-53 is exactly halfway between 1 and nextafter(1): ties to even
  // keep 1.0; 1 + 3*2^-54 rounds up.
  EXPECT_EQ(add(T64::from_double(1.0), T64::from_double(0x1p-53), fl)
                .to_double(),
            1.0);
  EXPECT_EQ(add(T64::from_double(1.0), T64::from_double(0x1.8p-53), fl)
                .to_double(),
            1.0 + 0x1p-52);
}

TEST(T64, MantissaPrecisionIs53Bits) {
  // The paper: "the mantissa has approximately 15 decimal digits of
  // precision (53 bits)".
  Flags fl;
  const T64 big = T64::from_double(0x1p52);
  const T64 r1 = add(big, T64::from_double(1.0), fl);
  EXPECT_EQ(r1.to_double(), 0x1p52 + 1.0) << "53-bit integers are exact";
  const T64 big2 = T64::from_double(0x1p53);
  const T64 r2 = add(big2, T64::from_double(1.0), fl);
  EXPECT_EQ(r2.to_double(), 0x1p53) << "54-bit integers are not";
}

TEST(T64, DynamicRangeMatches11BitExponent) {
  // Paper: dynamic range roughly 10^-308 to 10^308.
  Flags fl;
  const T64 huge = T64::from_double(1e308);
  const T64 r = mul(huge, T64::from_double(10.0), fl);
  EXPECT_TRUE(r.is_inf());
  EXPECT_TRUE(fl.overflow);

  Flags fl2;
  const T64 tiny = T64::from_double(1e-300);  // smallest normals ~2.2e-308
  const T64 r2 = mul(tiny, T64::from_double(1e-10), fl2);
  EXPECT_TRUE(r2.is_zero()) << "no gradual underflow: flush to zero";
  EXPECT_TRUE(fl2.underflow);
}

TEST(T64, FlushToZeroOnUnderflowKeepsSign) {
  Flags fl;
  const T64 tiny = T64::from_double(-1e-300);
  const T64 r = mul(tiny, T64::from_double(1e-100), fl);
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(r.sign()) << "flushed zero keeps the result sign";
  EXPECT_TRUE(fl.underflow);
  EXPECT_TRUE(fl.inexact);
}

TEST(T64, DenormalInputsReadAsZero) {
  Flags fl;
  const T64 denorm = T64::from_bits(0x0000'0000'0000'0001u);  // min denormal
  const T64 r = add(denorm, T64::from_double(0.0), fl);
  EXPECT_TRUE(r.is_zero());
  const T64 r2 = mul(denorm, T64::from_double(1e300), fl);
  EXPECT_TRUE(r2.is_zero()) << "denormal * huge = 0 under FTZ input rule";
}

TEST(T64, SpecialValues) {
  Flags fl;
  const T64 inf = T64::from_double(std::numeric_limits<double>::infinity());
  const T64 one = T64::from_double(1.0);
  const T64 zero = T64::from_double(0.0);

  EXPECT_TRUE(add(inf, one, fl).is_inf());
  EXPECT_TRUE(mul(inf, one, fl).is_inf());
  EXPECT_FALSE(fl.invalid);

  Flags fl2;
  EXPECT_TRUE(sub(inf, inf, fl2).is_nan());
  EXPECT_TRUE(fl2.invalid);

  Flags fl3;
  EXPECT_TRUE(mul(inf, zero, fl3).is_nan());
  EXPECT_TRUE(fl3.invalid);

  Flags fl4;
  const T64 nan = T64::from_double(std::nan(""));
  EXPECT_TRUE(add(nan, one, fl4).is_nan());
}

TEST(T64, SignedZeroRules) {
  Flags fl;
  const T64 pz = T64::from_double(0.0);
  const T64 nz = T64::from_double(-0.0);
  EXPECT_FALSE(add(pz, nz, fl).sign()) << "(+0) + (-0) = +0 in RNE";
  EXPECT_TRUE(add(nz, nz, fl).sign()) << "(-0) + (-0) = -0";
  EXPECT_TRUE(mul(pz, T64::from_double(-1.0), fl).sign());
  // Exact cancellation gives +0.
  const T64 x = T64::from_double(3.5);
  EXPECT_FALSE(sub(x, x, fl).sign());
}

TEST(T64, Comparisons) {
  Flags fl;
  const T64 a = T64::from_double(1.0);
  const T64 b = T64::from_double(2.0);
  const T64 na = T64::from_double(-1.0);
  const T64 nb = T64::from_double(-2.0);
  EXPECT_EQ(compare(a, b, fl), Ordering::less);
  EXPECT_EQ(compare(b, a, fl), Ordering::greater);
  EXPECT_EQ(compare(a, a, fl), Ordering::equal);
  EXPECT_EQ(compare(na, nb, fl), Ordering::greater);
  EXPECT_EQ(compare(nb, na, fl), Ordering::less);
  EXPECT_EQ(compare(na, a, fl), Ordering::less);
  EXPECT_EQ(compare(T64::from_double(0.0), T64::from_double(-0.0), fl),
            Ordering::equal);
  const T64 nan = T64::from_double(std::nan(""));
  EXPECT_EQ(compare(nan, a, fl), Ordering::unordered);
}

TEST(T64, IntegerConversions) {
  Flags fl;
  EXPECT_EQ(t64_from_int32(0, fl).to_double(), 0.0);
  EXPECT_EQ(t64_from_int32(42, fl).to_double(), 42.0);
  EXPECT_EQ(t64_from_int32(-42, fl).to_double(), -42.0);
  EXPECT_EQ(t64_from_int32(std::numeric_limits<std::int32_t>::min(), fl)
                .to_double(),
            -2147483648.0);
  EXPECT_FALSE(fl.any()) << "all int32 values are exact in binary64";

  EXPECT_EQ(t64_to_int32(T64::from_double(3.99), fl), 3) << "truncates";
  EXPECT_EQ(t64_to_int32(T64::from_double(-3.99), fl), -3);
  EXPECT_TRUE(fl.inexact);

  Flags fl2;
  EXPECT_EQ(t64_to_int32(T64::from_double(1e10), fl2),
            std::numeric_limits<std::int32_t>::max());
  EXPECT_TRUE(fl2.invalid);
}

TEST(T32, WidenIsExact) {
  Flags fl;
  const T32 a = T32::from_float(1.375f);
  EXPECT_EQ(a.widened().to_double(), 1.375);
  const T32 b = T32::from_float(-3.0e20f);
  EXPECT_EQ(b.widened().to_double(), static_cast<double>(-3.0e20f));
}

// Regression: widening a signalling NaN is an adder-pipeline conversion and
// must raise `invalid` (the payload is quieted but preserved). The flagless
// widened() overload is value plumbing and stays silent for the same bits.
TEST(T32, WidenSignallingNaNRaisesInvalid) {
  const T32 snan = T32::from_bits(0x7f800001U);
  Flags fl;
  EXPECT_EQ(snan.widened(fl).bits(), 0x7ff8000020000000ULL);
  EXPECT_TRUE(fl.invalid);
  EXPECT_FALSE(fl.overflow || fl.underflow || fl.inexact);
  EXPECT_EQ(snan.widened().bits(), 0x7ff8000020000000ULL);  // no flags path
}

TEST(T32, NarrowRounds) {
  Flags fl;
  const T64 v = T64::from_double(1.0 + 0x1p-30);  // not representable in b32
  const T32 r = T32::narrowed(v, fl);
  EXPECT_EQ(r.to_float(), 1.0f);
  EXPECT_TRUE(fl.inexact);

  Flags fl2;
  const T64 big = T64::from_double(1e200);
  EXPECT_TRUE(T32::narrowed(big, fl2).is_inf());
  EXPECT_TRUE(fl2.overflow);

  Flags fl3;
  const T64 small = T64::from_double(1e-200);
  EXPECT_TRUE(T32::narrowed(small, fl3).is_zero());
  EXPECT_TRUE(fl3.underflow);
}

// ---------------------------------------------------------------------------
// Property sweep: bit-exact agreement with the host FPU over random operand
// classes, whenever neither inputs nor the exact result are denormal (where
// the machine's flush-to-zero diverges from IEEE by design).
// ---------------------------------------------------------------------------

struct SweepSpec {
  const char* name;
  int exp_spread;  // operand exponents drawn from [-spread, +spread]
};

class T64HostAgreement : public ::testing::TestWithParam<SweepSpec> {};

double make_double(std::mt19937_64& rng, int exp_spread) {
  std::uniform_int_distribution<std::uint64_t> mant(0, (1ull << 52) - 1);
  std::uniform_int_distribution<int> exp(-exp_spread, exp_spread);
  std::uniform_int_distribution<int> sign(0, 1);
  const std::uint64_t e =
      static_cast<std::uint64_t>(exp(rng) + 1023);
  const std::uint64_t bits =
      (static_cast<std::uint64_t>(sign(rng)) << 63) | (e << 52) | mant(rng);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

TEST_P(T64HostAgreement, AddSubMulMatchHostBitExactly) {
  const SweepSpec spec = GetParam();
  std::mt19937_64 rng{0xf9570001u};
  int checked = 0;
  for (int i = 0; i < 20000; ++i) {
    const double x = make_double(rng, spec.exp_spread);
    const double y = make_double(rng, spec.exp_spread);
    const T64 tx = T64::from_double(x);
    const T64 ty = T64::from_double(y);
    Flags fl;

    const double hs = x + y;
    if (!host_is_denormal(hs) && std::isfinite(hs)) {
      EXPECT_EQ(add(tx, ty, fl).bits(), dbits(hs))
          << spec.name << ": " << x << " + " << y;
      ++checked;
    }
    const double hd = x - y;
    if (!host_is_denormal(hd) && std::isfinite(hd)) {
      EXPECT_EQ(sub(tx, ty, fl).bits(), dbits(hd))
          << spec.name << ": " << x << " - " << y;
    }
    const double hp = x * y;
    if (!host_is_denormal(hp) && std::isfinite(hp)) {
      // The host may compute x*y exactly and then the double rounding
      // question doesn't arise (single operation); compare directly.
      EXPECT_EQ(mul(tx, ty, fl).bits(), dbits(hp))
          << spec.name << ": " << x << " * " << y;
    }
  }
  EXPECT_GT(checked, 1000) << "sweep degenerated; widen operand classes";
}

INSTANTIATE_TEST_SUITE_P(
    OperandClasses, T64HostAgreement,
    ::testing::Values(SweepSpec{"near_one", 4}, SweepSpec{"spread_small", 30},
                      SweepSpec{"spread_wide", 300},
                      SweepSpec{"cancellation_prone", 1}),
    [](const ::testing::TestParamInfo<SweepSpec>& pinfo) {
      return pinfo.param.name;
    });

class T32HostAgreement : public ::testing::TestWithParam<SweepSpec> {};

float make_float(std::mt19937_64& rng, int exp_spread) {
  std::uniform_int_distribution<std::uint32_t> mant(0, (1u << 23) - 1);
  std::uniform_int_distribution<int> exp(-exp_spread, exp_spread);
  std::uniform_int_distribution<int> sign(0, 1);
  const std::uint32_t e = static_cast<std::uint32_t>(exp(rng) + 127);
  const std::uint32_t bits =
      (static_cast<std::uint32_t>(sign(rng)) << 31) | (e << 23) | mant(rng);
  float v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

TEST_P(T32HostAgreement, AddSubMulMatchHostBitExactly) {
  const SweepSpec spec = GetParam();
  std::mt19937_64 rng{0xf9570002u};
  for (int i = 0; i < 20000; ++i) {
    const float x = make_float(rng, spec.exp_spread);
    const float y = make_float(rng, spec.exp_spread);
    const T32 tx = T32::from_float(x);
    const T32 ty = T32::from_float(y);
    Flags fl;

    const float hs = x + y;
    if (!host_is_denormal(hs) && std::isfinite(hs)) {
      EXPECT_EQ(add(tx, ty, fl).bits(), fbits(hs))
          << spec.name << ": " << x << " + " << y;
    }
    const float hp = x * y;
    if (!host_is_denormal(hp) && std::isfinite(hp)) {
      EXPECT_EQ(mul(tx, ty, fl).bits(), fbits(hp))
          << spec.name << ": " << x << " * " << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OperandClasses, T32HostAgreement,
    ::testing::Values(SweepSpec{"near_one", 4}, SweepSpec{"spread_small", 20},
                      SweepSpec{"spread_wide", 60},
                      SweepSpec{"cancellation_prone", 1}),
    [](const ::testing::TestParamInfo<SweepSpec>& pinfo) {
      return pinfo.param.name;
    });

TEST(T64, ConversionRoundTripsInt32) {
  std::mt19937_64 rng{0xf9570003u};
  std::uniform_int_distribution<std::int32_t> dist(
      std::numeric_limits<std::int32_t>::min(),
      std::numeric_limits<std::int32_t>::max());
  for (int i = 0; i < 10000; ++i) {
    const std::int32_t v = dist(rng);
    Flags fl;
    EXPECT_EQ(t64_to_int32(t64_from_int32(v, fl), fl), v);
    EXPECT_FALSE(fl.any());
  }
}

TEST(T32, FromInt32RoundsLargeValues) {
  Flags fl;
  // 2^24 + 1 is not representable in binary32.
  const T32 r = t32_from_int32((1 << 24) + 1, fl);
  EXPECT_EQ(r.to_float(), 16777216.0f);
  EXPECT_TRUE(fl.inexact);
}

}  // namespace
}  // namespace fpst::fp
