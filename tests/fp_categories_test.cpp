// Exhaustive category-pair tests for the soft float: every combination of
// special and boundary operands through add/sub/mul, validated against the
// host FPU with the machine's flush-to-zero rules applied.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "fp/softfloat.hpp"

namespace fpst::fp {
namespace {

std::uint64_t dbits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

double host_ftz_in(double v) {
  // The machine reads denormal operands as signed zero.
  if (v != 0.0 && std::fabs(v) < std::numeric_limits<double>::min()) {
    return std::copysign(0.0, v);
  }
  return v;
}

/// The machine's expected result for a host-computed value: denormal
/// results flush to signed zero. At the very bottom of the normal range
/// (|result| == min_normal reached by rounding UP from the denormal zone)
/// abrupt-underflow hardware flushes before rounding, so either the flushed
/// zero or the host's min_normal is acceptable.
bool matches_machine(T64 got, double host) {
  if (std::isnan(host)) {
    return got.is_nan();
  }
  const double min_normal = std::numeric_limits<double>::min();
  if (host != 0.0 && std::fabs(host) < min_normal) {
    return got.is_zero() && got.sign() == std::signbit(host);
  }
  if (std::fabs(host) == min_normal) {
    return got.bits() == dbits(host) ||
           (got.is_zero() && got.sign() == std::signbit(host));
  }
  return got.bits() == dbits(host);
}

const std::vector<double>& operands() {
  static const std::vector<double> ops = [] {
    std::vector<double> v;
    const double specials[] = {
        0.0,
        std::numeric_limits<double>::min(),          // smallest normal
        std::numeric_limits<double>::denorm_min(),   // flushes on input
        1.0,
        1.5,
        0x1.fffffffffffffp-1,                         // just below 1
        0x1p52,
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::epsilon(),
        3.141592653589793,
        1e-300,
        1e300,
    };
    for (double s : specials) {
      v.push_back(s);
      v.push_back(-s);
    }
    v.push_back(std::nan(""));
    return v;
  }();
  return ops;
}

TEST(FpCategories, AllPairsAdd) {
  for (double x : operands()) {
    for (double y : operands()) {
      const double fx = host_ftz_in(x);
      const double fy = host_ftz_in(y);
      Flags fl;
      const T64 got = add(T64::from_double(x), T64::from_double(y), fl);
      EXPECT_TRUE(matches_machine(got, fx + fy))
          << x << " + " << y << " -> " << got.to_string();
    }
  }
}

TEST(FpCategories, AllPairsSub) {
  for (double x : operands()) {
    for (double y : operands()) {
      const double fx = host_ftz_in(x);
      const double fy = host_ftz_in(y);
      Flags fl;
      const T64 got = sub(T64::from_double(x), T64::from_double(y), fl);
      EXPECT_TRUE(matches_machine(got, fx - fy))
          << x << " - " << y << " -> " << got.to_string();
    }
  }
}

TEST(FpCategories, AllPairsMul) {
  for (double x : operands()) {
    for (double y : operands()) {
      const double fx = host_ftz_in(x);
      const double fy = host_ftz_in(y);
      Flags fl;
      const T64 got = mul(T64::from_double(x), T64::from_double(y), fl);
      EXPECT_TRUE(matches_machine(got, fx * fy))
          << x << " * " << y << " -> " << got.to_string();
    }
  }
}

TEST(FpCategories, AllPairsCompare) {
  for (double x : operands()) {
    for (double y : operands()) {
      const double fx = host_ftz_in(x);
      const double fy = host_ftz_in(y);
      Flags fl;
      const Ordering got =
          compare(T64::from_double(x), T64::from_double(y), fl);
      Ordering expect;
      if (std::isnan(fx) || std::isnan(fy)) {
        expect = Ordering::unordered;
      } else if (fx < fy) {
        expect = Ordering::less;
      } else if (fx > fy) {
        expect = Ordering::greater;
      } else {
        expect = Ordering::equal;
      }
      EXPECT_EQ(got, expect) << x << " <=> " << y;
    }
  }
}

TEST(FpCategories, FlagConsistency) {
  // Overflow implies inexact; any finite-operand op producing inf must
  // raise overflow; exact small-integer arithmetic raises nothing.
  for (double x : operands()) {
    for (double y : operands()) {
      if (std::isnan(x) || std::isnan(y) || std::isinf(x) || std::isinf(y)) {
        continue;
      }
      Flags fl;
      const T64 r = mul(T64::from_double(x), T64::from_double(y), fl);
      if (fl.overflow) {
        EXPECT_TRUE(fl.inexact);
        EXPECT_TRUE(r.is_inf());
      }
      if (r.is_inf()) {
        EXPECT_TRUE(fl.overflow) << x << " * " << y;
      }
      if (fl.underflow) {
        EXPECT_TRUE(r.is_zero());
      }
    }
  }
}

}  // namespace
}  // namespace fpst::fp
