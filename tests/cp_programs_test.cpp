// A program suite for the control processor: realistic TISA programs
// exercising recursion, process pipelines over CSP channels, nested PAR,
// timer multiplexing, byte/string operations, array indexing, code-relative
// data, and the gather -> vector-form chain a compiled Occam program would
// emit.
#include <gtest/gtest.h>

#include "cp/assembler.hpp"
#include "cp/cpu.hpp"

namespace fpst::cp {
namespace {

using namespace fpst::sim::literals;

class CpProgramTest : public ::testing::Test {
 protected:
  void run(const Program& p, std::uint32_t entry, std::uint32_t wptr = 0x9000,
           sim::SimTime limit = 50_ms) {
    cpu.load(p);
    cpu.start_process(entry, wptr, 1);
    sim.spawn(cpu.run());
    sim.run_until(limit);
  }

  sim::Simulator sim;
  mem::NodeMemory memory;
  vpu::VectorUnit vpu{memory};
  Cpu cpu{sim, memory, vpu};
};

TEST_F(CpProgramTest, RecursiveFactorial) {
  const Program p = assemble(R"(
   main:
      ldc 10
      call fact
      ldc 0x2000
      stnl 0
      halt
   ; fact(n): n in A on entry, n! in A on return. Two locals per frame.
   fact:
      ajw -2
      stl 0          ; local0 = n
      ldl 0
      cj base        ; n == 0 -> 1
      ldl 0
      adc -1
      call fact
      ldl 0
      mul
      j done
   base:
      ldc 1
   done:
      ajw 2
      ret
  )");
  run(p, p.symbol("main"));
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(cpu.read_word(0x2000), 3628800u);
}

TEST_F(CpProgramTest, IterativeFibonacci) {
  const Program p = assemble(R"(
      ldc 0
      stl 0          ; a
      ldc 1
      stl 1          ; b
      ldc 20
      stl 2          ; i
   loop:
      ldl 0
      ldl 1
      add
      stl 3          ; t = a + b
      ldl 1
      stl 0          ; a = b
      ldl 3
      stl 1          ; b = t
      ldl 2
      adc -1
      stl 2
      ldl 2
      cj out
      j loop
   out:
      ldl 0
      ldc 0x2000
      stnl 0
      halt
  )");
  run(p, p.entry());
  EXPECT_EQ(cpu.read_word(0x2000), 6765u);  // fib(20)
}

TEST_F(CpProgramTest, ThreeStagePipelineOverSoftChannels) {
  // producer -> (chan A) -> doubler -> (chan B) -> consumer, five values.
  const Program p = assemble(R"(
   main:
      mint
      ldc 0x3000
      stnl 0          ; chan A
      mint
      ldc 0x3004
      stnl 0          ; chan B
      ldc doubler
      ldc 0x8201
      startp
      ldc consumer
      ldc 0x8401
      startp
      ; main acts as the producer: send 1..5 on chan A
      ldc 1
      stl 0
   ploop:
      ldlp 0
      ldc 0x3000
      ldc 4
      out
      ldl 0
      adc 1
      stl 0
      ldl 0
      eqc 6
      cj ploop
      ; wait for the consumer to finish, then halt
      ldtimer
      adc 200
      tin
      halt
   doubler:
      ldlp 0
      ldc 0x3000
      ldc 4
      in
      ldl 0
      ldc 2
      mul
      stl 1
      ldlp 1
      ldc 0x3004
      ldc 4
      out
      j doubler
   consumer:
      ldc 0
      stl 2           ; accumulator
      ldc 5
      stl 3           ; remaining
   cloop:
      ldlp 0
      ldc 0x3004
      ldc 4
      in
      ldl 2
      ldl 0
      add
      stl 2
      ldl 3
      adc -1
      stl 3
      ldl 3
      cj cdone
      j cloop
   cdone:
      ldl 2
      ldc 0x2000
      stnl 0
      stopp
  )");
  run(p, p.symbol("main"), 0x8000);
  EXPECT_EQ(cpu.read_word(0x2000), 2u * (1 + 2 + 3 + 4 + 5));
}

TEST_F(CpProgramTest, NestedParallelism) {
  // main PARs a child; the child PARs two grandchildren. Each contributes
  // to a distinct word; the final continuation sums them.
  const Program p = assemble(R"(
   main:
      ldc 2
      ldc osync
      stnl 0
      ldc 0x8001
      ldc osync
      stnl 1
      ldc final
      ldc osync
      stnl 2
      ldc child
      ldc 0x8201
      startp
      ldc osync
      endp
   final:
      ldc 0x2000
      ldnl 0
      ldc 0x2004
      ldnl 0
      add
      ldc 0x2008
      stnl 0
      halt
   child:
      ldc 3
      ldc isync
      stnl 0
      ldc 0x8201
      ldc isync
      stnl 1
      ldc cdone
      ldc isync
      stnl 2
      ldc g1
      ldc 0x8601
      startp
      ldc g2
      ldc 0x8801
      startp
      ldc isync
      endp
   cdone:
      ldc osync
      endp
   g1:
      ldc 100
      ldc 0x2000
      stnl 0
      ldc isync
      endp
   g2:
      ldc 23
      ldc 0x2004
      stnl 0
      ldc isync
      endp
   osync:
      .word 0
      .word 0
      .word 0
   isync:
      .word 0
      .word 0
      .word 0
  )");
  run(p, p.symbol("main"), 0x8000);
  EXPECT_EQ(cpu.read_word(0x2008), 123u);
}

TEST_F(CpProgramTest, TwoTimersMultiplex) {
  // Fast process ticks every 20 us, slow every 50 us; a supervisor halts
  // the machine after ~200 us.
  const Program p = assemble(R"(
   fast:
      ldtimer
      stl 0
   floop:
      ldl 0
      adc 20
      stl 0
      ldl 0
      tin
      ldc 0x2000
      ldnl 0
      adc 1
      ldc 0x2000
      stnl 0
      j floop
   slow:
      ldtimer
      stl 0
   sloop:
      ldl 0
      adc 50
      stl 0
      ldl 0
      tin
      ldc 0x2004
      ldnl 0
      adc 1
      ldc 0x2004
      stnl 0
      j sloop
   boss:
      ldtimer
      adc 205
      tin
      halt
  )");
  cpu.load(p);
  cpu.start_process(p.symbol("fast"), 0x8000, 1);
  cpu.start_process(p.symbol("slow"), 0x8200, 1);
  cpu.start_process(p.symbol("boss"), 0x8400, 1);
  sim.spawn(cpu.run());
  sim.run_until(1_ms);
  EXPECT_TRUE(cpu.halted());
  const std::uint32_t fast_ticks = cpu.read_word(0x2000);
  const std::uint32_t slow_ticks = cpu.read_word(0x2004);
  EXPECT_GE(fast_ticks, 9u);
  EXPECT_LE(fast_ticks, 11u);
  EXPECT_GE(slow_ticks, 3u);
  EXPECT_LE(slow_ticks, 5u);
}

TEST_F(CpProgramTest, ByteStringReverse) {
  // Reverse a 6-byte string in place with lb/sb and bsub arithmetic.
  const Program p = assemble(R"(
   main:
      ldc 0
      stl 0          ; i
      ldc 5
      stl 1          ; j
   loop:
      ; swap str[i], str[j]
      ldl 0
      ldc str
      bsub
      lb
      stl 2          ; t = str[i]
      ldl 1
      ldc str
      bsub
      lb
      stl 3          ; u = str[j]
      ldl 3
      ldl 0
      ldc str
      bsub
      sb             ; str[i] = u
      ldl 2
      ldl 1
      ldc str
      bsub
      sb             ; str[j] = t
      ldl 0
      adc 1
      stl 0
      ldl 1
      adc -1
      stl 1
      ; while i < j
      ldl 1
      ldl 0
      gt             ; A = (j > i)
      cj done2
      j loop
   done2:
      halt
   str:
      .word 0x64636261   ; "abcd"
      .word 0x00006665   ; "ef"
  )");
  run(p, p.symbol("main"));
  const std::uint32_t s = p.symbol("str");
  const char expect[] = {'f', 'e', 'd', 'c', 'b', 'a'};
  for (int i = 0; i < 6; ++i) {
    sim::SimTime ignored{};
    EXPECT_EQ(memory.peek_byte(s + static_cast<std::uint32_t>(i)),
              static_cast<std::uint8_t>(expect[i]))
        << i;
    (void)ignored;
  }
}

TEST_F(CpProgramTest, ArraySumWithWordSubscript) {
  const Program p = assemble(R"(
   main:
      ldc 0
      stl 0          ; sum
      ldc 0
      stl 1          ; i
   loop:
      ldl 1
      ldc arr
      wsub
      ldnl 0
      ldl 0
      add
      stl 0
      ldl 1
      adc 1
      stl 1
      ldl 1
      eqc 5
      cj loop
      ldl 0
      ldc 0x2000
      stnl 0
      halt
   arr:
      .word 3
      .word 14
      .word 15
      .word 92
      .word 65
  )");
  run(p, p.symbol("main"));
  EXPECT_EQ(cpu.read_word(0x2000), 189u);
}

TEST_F(CpProgramTest, CodeRelativeAddressingViaLdpi) {
  // ldpi adds the next instruction's address to A — the mechanism Occam
  // compilers use for position-independent constant tables.
  const Program p = assemble(R"(
   main:
      ldc 0
      ldpi           ; A = address of `mark`
   mark:
      ldc 0x2000
      stnl 0         ; mem[0x2000] = mark
      halt
  )");
  run(p, p.symbol("main"));
  EXPECT_EQ(cpu.read_word(0x2000), p.symbol("mark"));
}

TEST_F(CpProgramTest, GatherThenVectorSum) {
  // Gather four scattered 64-bit values into row 128 (bank A), then run a
  // VSUM form over them — the compiled idiom for reductions on scattered
  // data.
  for (std::uint32_t i = 0; i < 4; ++i) {
    const std::uint32_t src = 0x60000 + 40 * i;
    const fp::T64 v = fp::T64::from_double(1.5 * (i + 1));
    memory.write_word(src, static_cast<std::uint32_t>(v.bits()));
    memory.write_word(src + 4, static_cast<std::uint32_t>(v.bits() >> 32));
    memory.write_word(0x50000 + 4 * i, src);  // index table
  }
  const Program p = assemble(R"(
   main:
      ldc 0x50000  ; table
      ldc 0x20000  ; row 128
      ldc 4
      gather
      ldc 8        ; vsum
      ldc desc
      stnl 0
      ldc 1
      ldc desc
      stnl 1
      ldc 4
      ldc desc
      stnl 2
      ldc 128      ; row_x = 128
      ldc desc
      stnl 3
      ldc desc
      vform
      vwait
      halt
   desc:
      .space 48
  )");
  run(p, p.symbol("main"));
  const std::uint32_t desc = p.symbol("desc");
  const std::uint64_t bits =
      static_cast<std::uint64_t>(cpu.read_word(desc + 32)) |
      (static_cast<std::uint64_t>(cpu.read_word(desc + 36)) << 32);
  EXPECT_EQ(fp::T64::from_bits(bits).to_double(), 1.5 + 3.0 + 4.5 + 6.0);
}

TEST_F(CpProgramTest, BadVformSetsFault) {
  const Program p = assemble(R"(
      ldc desc
      vform          ; n = 0 descriptor: rejected by the vector unit
      testerr
      ldc 0x2000
      stnl 0
      halt
   desc:
      .space 48
  )");
  run(p, p.entry());
  EXPECT_EQ(cpu.read_word(0x2000), 1u) << "error flag was set and read";
  EXPECT_TRUE(cpu.take_fault().has_value());
}

}  // namespace
}  // namespace fpst::cp
