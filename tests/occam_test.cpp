// Tests for the Occam-flavoured runtime: point-to-point messaging over
// multi-hop e-cube routes, store-and-forward costs, and the hypercube
// collectives (barrier, broadcast, reduce, allreduce).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "occam/occam.hpp"

namespace fpst::occam {
namespace {

using namespace fpst::sim::literals;
using net::NodeId;
using sim::Proc;
using sim::SimTime;
using sim::Simulator;

TEST(Occam, NeighbourPingPong) {
  Simulator sim;
  core::TSeries machine{sim, 3};
  Runtime rt{machine};
  std::vector<double> got;
  rt.run([&](Ctx& ctx) -> Proc {
    if (ctx.id() == 0) {
      std::vector<double> payload{3.25, -1.5};
      co_await ctx.send(1, 7, std::move(payload));
      std::vector<double> back;
      co_await ctx.recv(1, 8, &back);
      got = back;
    } else if (ctx.id() == 1) {
      std::vector<double> in;
      co_await ctx.recv(0, 7, &in);
      in.push_back(42.0);
      co_await ctx.send(0, 8, std::move(in));
    }
  });
  EXPECT_EQ(got, (std::vector<double>{3.25, -1.5, 42.0}));
  EXPECT_EQ(rt.packets_forwarded(), 0u) << "neighbours need no forwarding";
}

TEST(Occam, MultiHopMessagesAreForwardedOncePerIntermediateNode) {
  Simulator sim;
  core::TSeries machine{sim, 4};
  Runtime rt{machine};
  std::vector<double> got;
  rt.run([&](Ctx& ctx) -> Proc {
    if (ctx.id() == 0) {
      std::vector<double> one(1, 1.0);
      co_await ctx.send(0b1111, 1, std::move(one));
    } else if (ctx.id() == 0b1111) {
      co_await ctx.recv(0, 1, &got);
    }
  });
  EXPECT_EQ(got.size(), 1u);
  EXPECT_EQ(rt.packets_forwarded(), 3u) << "distance 4 => 3 transit nodes";
}

TEST(Occam, LatencyGrowsLinearlyWithHops) {
  // O(log N) distance bound: time per extra hop is one store-and-forward
  // cycle. Measure 1-hop vs 4-hop one-way latency.
  auto one_way = [](NodeId dst) {
    Simulator sim;
    core::TSeries machine{sim, 4};
    Runtime rt{machine};
    SimTime arrival{};
    rt.run([&, dst](Ctx& ctx) -> Proc {
      if (ctx.id() == 0) {
        std::vector<double> one(1, 1.0);
        co_await ctx.send(dst, 1, std::move(one));
      } else if (ctx.id() == dst) {
        std::vector<double> in;
        co_await ctx.recv(0, 1, &in);
        arrival = ctx.machine().simulator().now();
      }
    });
    return arrival;
  };
  const SimTime h1 = one_way(0b0001);
  const SimTime h2 = one_way(0b0011);
  const SimTime h4 = one_way(0b1111);
  EXPECT_GT(h2, h1);
  // Per-hop increments are equal (deterministic pipeline of equal packets).
  EXPECT_EQ((h4 - h2) / 2, h2 - h1);
  // And each hop costs at least the wire time of the packet (12 bytes
  // payload + 8 header at 2 us/byte + 5 us DMA).
  EXPECT_GT(h2 - h1, 45_us);
}

TEST(Occam, BarrierSynchronisesAllNodes) {
  Simulator sim;
  core::TSeries machine{sim, 4};
  Runtime rt{machine};
  std::vector<SimTime> after(machine.size());
  rt.run([&](Ctx& ctx) -> Proc {
    // Stagger arrival: node i works i*100 us before the barrier.
    co_await sim::Delay{static_cast<std::int64_t>(ctx.id()) * 100_us};
    co_await ctx.barrier();
    after[ctx.id()] = ctx.machine().simulator().now();
  });
  const SimTime slowest = 100_us * 15;
  for (NodeId i = 0; i < machine.size(); ++i) {
    EXPECT_GE(after[i], slowest) << "node " << i << " left too early";
  }
}

TEST(Occam, BroadcastDeliversRootData) {
  Simulator sim;
  core::TSeries machine{sim, 4};
  Runtime rt{machine};
  std::vector<std::vector<double>> got(machine.size());
  const NodeId root = 5;
  rt.run([&](Ctx& ctx) -> Proc {
    std::vector<double> data;
    if (ctx.id() == root) {
      data = {1.0, 2.0, 3.0};
    }
    co_await ctx.broadcast(root, &data);
    got[ctx.id()] = data;
  });
  for (NodeId i = 0; i < machine.size(); ++i) {
    EXPECT_EQ(got[i], (std::vector<double>{1.0, 2.0, 3.0})) << "node " << i;
  }
}

TEST(Occam, ReduceSumCollectsAllContributions) {
  Simulator sim;
  core::TSeries machine{sim, 5};
  Runtime rt{machine};
  double result = -1;
  const NodeId root = 3;
  rt.run([&](Ctx& ctx) -> Proc {
    double x = static_cast<double>(ctx.id());
    co_await ctx.reduce_sum(root, &x);
    if (ctx.id() == root) {
      result = x;
    }
  });
  EXPECT_EQ(result, 31.0 * 32.0 / 2.0);  // sum 0..31
}

TEST(Occam, AllreduceGivesEveryNodeTheSum) {
  Simulator sim;
  core::TSeries machine{sim, 4};
  Runtime rt{machine};
  std::vector<double> results(machine.size());
  rt.run([&](Ctx& ctx) -> Proc {
    double x = 1.0 + static_cast<double>(ctx.id());
    co_await ctx.allreduce_sum(&x);
    results[ctx.id()] = x;
  });
  for (NodeId i = 0; i < machine.size(); ++i) {
    EXPECT_EQ(results[i], 136.0) << "sum 1..16 at node " << i;
  }
}

TEST(Occam, VectorAllreduce) {
  Simulator sim;
  core::TSeries machine{sim, 3};
  Runtime rt{machine};
  std::vector<std::vector<double>> results(machine.size());
  rt.run([&](Ctx& ctx) -> Proc {
    std::vector<double> xs{static_cast<double>(ctx.id()), 1.0};
    co_await ctx.allreduce_sum(&xs);
    results[ctx.id()] = xs;
  });
  for (NodeId i = 0; i < machine.size(); ++i) {
    EXPECT_EQ(results[i], (std::vector<double>{28.0, 8.0}));
  }
}

TEST(Occam, RecvAnyActsAsAlt) {
  Simulator sim;
  core::TSeries machine{sim, 3};
  Runtime rt{machine};
  std::multiset<NodeId> sources;
  rt.run([&](Ctx& ctx) -> Proc {
    if (ctx.id() == 0) {
      for (int i = 0; i < 7; ++i) {
        Msg m;
        co_await ctx.recv_any(9, &m);
        sources.insert(m.src);
      }
    } else {
      co_await sim::Delay{static_cast<std::int64_t>(ctx.id()) * 10_us};
      std::vector<double> v(1, static_cast<double>(ctx.id()));
      co_await ctx.send(0, 9, std::move(v));
    }
  });
  EXPECT_EQ(sources.size(), 7u);
  for (NodeId i = 1; i < 8; ++i) {
    EXPECT_EQ(sources.count(i), 1u);
  }
}

TEST(Occam, CollectiveTimeScalesLogarithmically) {
  // An allreduce costs ~dimension sequential exchange steps: time(dim=6)
  // should be ~2x time(dim=3), not 8x.
  auto allreduce_time = [](int dim) {
    Simulator sim;
    core::TSeries machine{sim, dim};
    Runtime rt{machine};
    return rt.run([](Ctx& ctx) -> Proc {
      double x = 1.0;
      co_await ctx.allreduce_sum(&x);
    });
  };
  const SimTime t3 = allreduce_time(3);
  const SimTime t6 = allreduce_time(6);
  EXPECT_GT(t6 / t3, 1.5);
  EXPECT_LT(t6 / t3, 3.0) << "O(log N), not O(N)";
}

TEST(Occam, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    core::TSeries machine{sim, 4};
    Runtime rt{machine};
    return rt.run([](Ctx& ctx) -> Proc {
      double x = static_cast<double>(ctx.id() * 3 + 1);
      co_await ctx.allreduce_sum(&x);
      co_await ctx.barrier();
    }).ps();
  };
  const auto t1 = run_once();
  EXPECT_EQ(run_once(), t1);
  EXPECT_EQ(run_once(), t1);
}

TEST(Occam, DeadlockIsDetected) {
  Simulator sim;
  core::TSeries machine{sim, 3};
  Runtime rt{machine};
  EXPECT_THROW(rt.run([](Ctx& ctx) -> Proc {
                 if (ctx.id() == 0) {
                   std::vector<double> never;
                   co_await ctx.recv(1, 99, &never);  // nobody sends
                 }
               }),
               DeadlockError);
}

TEST(Occam, MismatchedCollectiveDeadlocks) {
  Simulator sim;
  core::TSeries machine{sim, 3};
  Runtime rt{machine};
  EXPECT_THROW(rt.run([](Ctx& ctx) -> Proc {
                 if (ctx.id() != 5) {  // node 5 skips the barrier
                   co_await ctx.barrier();
                 }
               }),
               DeadlockError);
}

}  // namespace
}  // namespace fpst::occam
