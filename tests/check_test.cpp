// Tests for the static-analysis subsystem (src/check): CFG recovery,
// the TISA abstract-stack verifier, the cycle-cost model and its
// prediction-vs-measurement cross-validation, the channel-graph deadlock
// checker, the static volume analyzer, the .comm parser, and the on-disk
// corpus of deliberately-broken programs that tools/tcheck and ci.sh
// gate on.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/chan_graph.hpp"
#include "check/comm_volume.hpp"
#include "check/cost_model.hpp"
#include "check/tisa_verify.hpp"
#include "core/machine.hpp"
#include "cp/assembler.hpp"
#include "node/node.hpp"
#include "occam/commspec.hpp"
#include "occam/occam.hpp"

namespace fpst::check {
namespace {

VerifyResult verify_src(const std::string& src) {
  return verify(cp::assemble(src));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Run `p` to completion on a real simulated node, exactly as tools and
// examples do, so cost-model tests can assert prediction == measurement.
struct Measured {
  std::uint64_t instructions = 0;
  sim::SimTime elapsed{};
};

Measured run_on_node(const cp::Program& p) {
  sim::Simulator sim;
  node::Node nd{sim, 0};
  nd.cpu().load(p);
  const auto it = p.symbols.find("main");
  const std::uint32_t entry =
      it != p.symbols.end() ? it->second : p.entry();
  nd.cpu().start_process(entry, 0x8000, 1);
  sim.spawn(nd.cpu().run());
  sim.run();
  return Measured{nd.cpu().instructions_executed(), sim.now()};
}

// ---------------------------------------------------------------- CFG --

TEST(Cfg, RecoversBlocksAndEdges) {
  const cp::Program p = cp::assemble(R"(
   main:
      ldc 10
   loop:
      adc -1
      cj done
      j loop
   done:
      halt
  )");
  Report rep;
  const Cfg cfg = build_cfg(p, {p.symbol("main")}, rep);
  EXPECT_EQ(rep.diagnostics().size(), 0u);
  // Blocks: main, loop, the `j loop` after cj's fall-through... cj ends a
  // block, so: [main], [loop..cj], [j loop], [done].
  EXPECT_EQ(cfg.blocks.size(), 4u);
  const BasicBlock& loop = cfg.blocks.at(p.symbol("loop"));
  ASSERT_EQ(loop.succs.size(), 2u);  // done + fall-through
}

TEST(Cfg, FlagsJumpOutsideImage) {
  const auto res = verify_src("main:\n ldc 1\n j 512\n halt\n");
  EXPECT_TRUE(res.report.has("bad-jump"));
}

TEST(Cfg, FlagsFallOffEnd) {
  const auto res = verify_src("main:\n ldc 1\n ldc 2\n add\n");
  EXPECT_TRUE(res.report.has("falls-off-end"));
}

TEST(Cfg, FlagsMidInstructionLanding) {
  const auto res = verify_src("main:\n ldc 0\n cj 1\n ldc 100\n halt\n");
  EXPECT_TRUE(res.report.has("mid-instruction"));
}

// ---------------------------------------------------- line attribution --

TEST(LineMap, DiagnosticsCarrySourceLines) {
  const cp::Program p = cp::assemble("main:\n ldc 1\n add\n halt\n");
  EXPECT_EQ(p.line_at(p.symbol("main")), 2u);  // `ldc 1` is line 2
  const auto res = verify(p);
  const Diagnostic* d = res.report.find("stack-underflow");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 3u);  // `add` is line 3
}

// ------------------------------------------------- abstract interpreter --

TEST(TisaVerify, CleanRecursiveFactorial) {
  // The cj idiom joins paths with different stack depths — must not warn.
  const auto res = verify_src(R"(
   main:
      ldc 10
      call fact
      ldc 0x2000
      stnl 0
      halt
   fact:
      ajw -2
      stl 0
      ldl 0
      cj base
      ldl 0
      adc -1
      call fact
      ldl 0
      mul
      j done
   base:
      ldc 1
   done:
      ajw 2
      ret
  )");
  EXPECT_FALSE(res.report.has_errors()) << res.report.to_string("test");
  EXPECT_EQ(res.report.count(Severity::kWarning), 0u)
      << res.report.to_string("test");
}

TEST(TisaVerify, FollowsConstantStartpTargets) {
  const auto res = verify_src(R"(
   main:
      mint
      ldc chan
      stnl 0
      ldc producer
      ldc 0x8201
      startp
      ldlp 4
      ldc chan
      ldc 4
      in
      halt
   producer:
      ldc 99
      stl 0
      ldlp 0
      ldc chan
      ldc 4
      out
      stopp
   .align
   chan:
      .word 0
  )");
  EXPECT_FALSE(res.report.has_errors()) << res.report.to_string("test");
  // The producer was analysed: its block exists in the final CFG.
  EXPECT_EQ(res.cfg.entries.size(), 2u);
}

TEST(TisaVerify, FlagsStackUnderflow) {
  const auto res = verify_src("main:\n add\n halt\n");
  EXPECT_TRUE(res.report.has("stack-underflow"));
}

TEST(TisaVerify, FlagsStackOverflow) {
  const auto res = verify_src(
      "main:\n ldc 1\n ldc 2\n ldc 3\n ldc 4\n stnl 0\n halt\n");
  EXPECT_TRUE(res.report.has("stack-overflow"));
}

TEST(TisaVerify, FlagsOutOfMapStore) {
  const auto res = verify_src(
      "main:\n ldc 7\n ldc 0x00200000\n stnl 0\n halt\n");
  EXPECT_TRUE(res.report.has("bad-address"));
}

TEST(TisaVerify, FlagsLoadJustPastDram) {
  // 0x100000 is the first byte past the 1 MB DRAM.
  const auto res = verify_src("main:\n ldc 0x100000\n ldnl 0\n halt\n");
  EXPECT_TRUE(res.report.has("bad-address"));
}

TEST(TisaVerify, OnChipWindowIsMapped) {
  const auto res = verify_src("main:\n ldc 7\n ldc 0x10000000\n stnl 0\n halt\n");
  EXPECT_FALSE(res.report.has_errors()) << res.report.to_string("test");
}

TEST(TisaVerify, FlagsDataAccessToHardChanRegion) {
  const auto res = verify_src("main:\n ldc 0xF0000000\n ldnl 0\n halt\n");
  EXPECT_TRUE(res.report.has("bad-address"));
}

TEST(TisaVerify, FlagsUnalignedVformDescriptor) {
  const auto res = verify_src("main:\n ldc 0x2002\n vform\n vwait\n halt\n");
  EXPECT_TRUE(res.report.has("bad-vform-desc"));
}

TEST(TisaVerify, FlagsVformDescriptorPastDramEnd) {
  // Aligned, but the 48-byte block does not fit below 1 MB.
  const auto res = verify_src("main:\n ldc 0xFFFFF0\n vform\n vwait\n halt\n");
  EXPECT_TRUE(res.report.has("bad-vform-desc"));
}

TEST(TisaVerify, FlagsHardChanPortOutOfRange) {
  const auto res = verify_src(
      "main:\n ldlp 4\n ldc 0xF0000049\n ldc 8\n in\n halt\n");
  EXPECT_TRUE(res.report.has("bad-hard-chan"));
}

TEST(TisaVerify, FlagsHardChanReservedBits) {
  const auto res = verify_src(
      "main:\n ldlp 4\n ldc 0xF0010001\n ldc 8\n in\n halt\n");
  EXPECT_TRUE(res.report.has("bad-hard-chan"));
}

TEST(TisaVerify, WarnsOnHardChanDirectionMismatch) {
  // dir bit says output (0) but the op is `in`.
  const auto res = verify_src(
      "main:\n ldlp 4\n ldc 0xF0000000\n ldc 8\n in\n halt\n");
  EXPECT_TRUE(res.report.has("hard-chan-direction"));
  EXPECT_FALSE(res.report.has_errors());
}

TEST(TisaVerify, CollectsHardChannelUses) {
  const auto res = verify_src(
      "main:\n ldlp 4\n ldc 0xF0000001\n ldc 8\n in\n"
      " ldlp 4\n ldc 0xF0000008\n ldc 8\n out\n halt\n");
  ASSERT_EQ(res.hard_chans.size(), 2u);
  EXPECT_EQ(res.hard_chans[0].port, 0);
  EXPECT_TRUE(res.hard_chans[0].is_input);
  EXPECT_EQ(res.hard_chans[1].port, 1);
  EXPECT_FALSE(res.hard_chans[1].is_input);
}

TEST(TisaVerify, FlagsDivisionByConstantZero) {
  const auto res = verify_src("main:\n ldc 6\n ldc 0\n div\n halt\n");
  EXPECT_TRUE(res.report.has("div-by-zero"));
}

TEST(TisaVerify, FlagsUnreachableCode) {
  const auto res = verify_src("main:\n ldc 1\n halt\n ldc 2\n halt\n");
  EXPECT_TRUE(res.report.has("unreachable-code"));
}

TEST(TisaVerify, ZeroPaddingAndLabelledDataAreNotUnreachable) {
  const auto res = verify_src(R"(
   main:
      ldc table
      ldnl 0
      halt
   .align
   table:
      .word 0x1234
   buf:
      .space 32
  )");
  EXPECT_FALSE(res.report.has("unreachable-code"))
      << res.report.to_string("test");
  EXPECT_FALSE(res.report.has_errors());
}

// ------------------------------------------------------------ cost model --

TEST(CostModel, StraightLinePredictionIsBitExact) {
  const cp::Program p = cp::assemble(R"(
   main:
      ldc 7
      ldc 0x2000
      stnl 0
      ldc 0x2000
      ldnl 0
      adc 35
      stl 1
      halt
  )");
  const CostPrediction pred = predict_cost(p);
  EXPECT_TRUE(pred.complete) << pred.stop_reason;
  EXPECT_FALSE(pred.report.has_errors()) << pred.report.to_string("test");
  const Measured m = run_on_node(p);
  EXPECT_EQ(pred.instructions, m.instructions);
  EXPECT_EQ(pred.elapsed.ps(), m.elapsed.ps());
}

TEST(CostModel, CountedLoopIsBoundedAndBitExact) {
  const cp::Program p = cp::assemble(R"(
   main:
      ldc 10
      stl 0
   loop:
      ldl 0
      adc -1
      stl 0
      ldl 0
      cj done
      j loop
   done:
      halt
  )");
  const CostPrediction pred = predict_cost(p);
  EXPECT_TRUE(pred.complete) << pred.stop_reason;
  ASSERT_EQ(pred.loops.size(), 1u);
  EXPECT_EQ(pred.loops[0].verdict, LoopVerdict::kBounded);
  EXPECT_EQ(pred.loops[0].iterations, 10u);
  const Measured m = run_on_node(p);
  EXPECT_EQ(pred.instructions, m.instructions);
  EXPECT_EQ(pred.elapsed.ps(), m.elapsed.ps());
}

TEST(CostModel, VformSaxpyExamplePredictsTheSimulatorBitExact) {
  // The same cross-validation ci.sh gates on: the shipped vform program's
  // static prediction must equal the tisa_traced measurement.
  const std::string text = read_file(std::string(FPST_SOURCE_DIR) +
                                     "/examples/tisa/vform_saxpy.tisa");
  const cp::Program p = cp::assemble(text);
  const CostPrediction pred = predict_cost(p);
  EXPECT_TRUE(pred.complete) << pred.stop_reason;
  EXPECT_GT(pred.vforms, 0u);
  EXPECT_GT(pred.flops, 0u);
  const Measured m = run_on_node(p);
  EXPECT_EQ(pred.instructions, m.instructions);
  EXPECT_EQ(pred.elapsed.ps(), m.elapsed.ps());
}

TEST(CostModel, UnknownBranchInHotLoopIsUnboundedAndFlagged) {
  // The cj condition comes through a hard-channel `in`, so it can never be
  // a compile-time constant: the model must stop honestly, not guess.
  const cp::Program p = cp::assemble(R"(
   main:
   loop:
      ldlp 4
      ldc 0xF0000001
      ldc 4
      in
      ldl 4
      cj done
      j loop
   done:
      halt
  )");
  const CostPrediction pred = predict_cost(p);
  EXPECT_FALSE(pred.complete);
  EXPECT_TRUE(pred.report.has("unbounded-hot-loop"))
      << pred.report.to_string("test");
  ASSERT_EQ(pred.loops.size(), 1u);
  EXPECT_EQ(pred.loops[0].verdict, LoopVerdict::kUnbounded);
  EXPECT_TRUE(pred.loops[0].hot);
}

TEST(CostModel, StepBudgetExhaustionRaisesCostOverflow) {
  const cp::Program p = cp::assemble(R"(
   main:
      ldc 100000
      stl 0
   loop:
      ldl 0
      adc -1
      stl 0
      ldl 0
      cj done
      j loop
   done:
      halt
  )");
  CostOptions opts;
  opts.max_steps = 100;
  const CostPrediction pred = predict_cost(p, opts);
  EXPECT_FALSE(pred.complete);
  EXPECT_TRUE(pred.report.has("cost-overflow"))
      << pred.report.to_string("test");
}

TEST(CostModel, ConstantOversizedVformIsAPerformanceError) {
  const std::string text = read_file(std::string(FPST_SOURCE_DIR) +
                                     "/tests/corpus/vform_overrun.tisa");
  const CostPrediction pred = predict_cost(cp::assemble(text));
  EXPECT_TRUE(pred.report.has("vform-overrun"))
      << pred.report.to_string("test");
  EXPECT_GE(pred.report.count(Severity::kError, DiagClass::kPerformance), 1u);
  EXPECT_EQ(pred.report.count(Severity::kError, DiagClass::kValidity), 0u);
}

// ------------------------------------------------- channel-graph checker --

TEST(ChanGraph, RingOfBufferedSendsIsClean) {
  occam::CommSpec spec{2};
  spec.node(0).send(1, 1).recv(2, 1);
  spec.node(1).recv(0, 1).send(3, 1);
  spec.node(3).recv(1, 1).send(2, 1);
  spec.node(2).recv(3, 1).send(0, 1);
  const CommAnalysis a = analyze_comm(spec);
  EXPECT_FALSE(a.deadlock);
  EXPECT_FALSE(a.report.has_errors());
}

TEST(ChanGraph, HeadToHeadRecvDeadlocks) {
  occam::CommSpec spec{1};
  spec.node(0).recv(1, 5).send(1, 5);
  spec.node(1).recv(0, 5).send(0, 5);
  const CommAnalysis a = analyze_comm(spec);
  EXPECT_TRUE(a.deadlock);
  EXPECT_TRUE(a.report.has("deadlock"));
  ASSERT_EQ(a.cycle.size(), 3u);  // first node repeated at the end
  EXPECT_EQ(a.cycle.front(), a.cycle.back());
}

TEST(ChanGraph, ThreeNodeWaitCycle) {
  occam::CommSpec spec{2};
  spec.node(0).recv(2, 7).send(1, 7);
  spec.node(1).recv(0, 7).send(2, 7);
  spec.node(2).recv(1, 7).send(0, 7);
  const CommAnalysis a = analyze_comm(spec);
  EXPECT_TRUE(a.deadlock);
  ASSERT_EQ(a.cycle.size(), 4u);
}

TEST(ChanGraph, MatchedCollectivesAreClean) {
  occam::CommSpec spec{2};
  for (net::NodeId id = 0; id < spec.size(); ++id) {
    spec.node(id).broadcast(0).barrier().reduce_sum(0).allreduce_sum();
  }
  const CommAnalysis a = analyze_comm(spec);
  EXPECT_FALSE(a.deadlock);
  EXPECT_FALSE(a.report.has_errors()) << a.report.to_string("spec");
}

TEST(ChanGraph, MissingBarrierParticipantIsStuck) {
  occam::CommSpec spec{1};
  spec.node(0).barrier();
  spec.node(1).send(0, 3);
  const CommAnalysis a = analyze_comm(spec);
  EXPECT_TRUE(a.deadlock);
  EXPECT_TRUE(a.report.has("stuck-recv"));
  EXPECT_TRUE(a.cycle.empty());
}

TEST(ChanGraph, CollectiveCountSkewIsCaught) {
  // Node 0 runs two barriers, node 1 only one: the internal tag counter
  // diverges exactly as in the runtime, and the second barrier hangs.
  occam::CommSpec spec{1};
  spec.node(0).barrier().barrier();
  spec.node(1).barrier();
  const CommAnalysis a = analyze_comm(spec);
  EXPECT_TRUE(a.deadlock);
}

TEST(ChanGraph, RecvAnyMatchesAnySender) {
  occam::CommSpec spec{1};
  spec.node(0).recv_any(9);
  spec.node(1).send(0, 9);
  const CommAnalysis a = analyze_comm(spec);
  EXPECT_FALSE(a.deadlock);
}

TEST(ChanGraph, UnconsumedMessageIsWarnedNotFatal) {
  occam::CommSpec spec{1};
  spec.node(0).send(1, 9);
  const CommAnalysis a = analyze_comm(spec);
  EXPECT_FALSE(a.deadlock);
  EXPECT_FALSE(a.report.has_errors());
  EXPECT_TRUE(a.report.has("unconsumed-message"));
}

// ------------------------------------------------ static volume analyzer --

occam::CommSpec alltoall_spec() {
  // Static twin of examples/alltoall_traced.cpp (and of
  // examples/comm/alltoall.comm): 16 nodes, each sends 16 doubles to every
  // other node and drains 15 matching receives.
  occam::CommSpec spec{4};
  for (net::NodeId i = 0; i < 16; ++i) {
    for (net::NodeId k = 1; k < 16; ++k) {
      spec.node(i).send((i + k) % 16, 7, 16);
    }
    for (int k = 0; k < 15; ++k) {
      spec.node(i).recv_any(7);
    }
  }
  return spec;
}

TEST(CommVolume, AllToAllMatchesThePaperGroundTruth) {
  const VolumeAnalysis v = analyze_volume(alltoall_spec());
  EXPECT_FALSE(v.report.has_errors()) << v.report.to_string("alltoall");
  EXPECT_EQ(v.dimension, 4);
  EXPECT_EQ(v.messages, 240u);
  EXPECT_EQ(v.payload_bytes, 240u * 16 * 8);
  EXPECT_EQ(v.total_hops, 512u);
  // Perfectly balanced: all 32 edges of the 4-cube carry exactly 16
  // crossings of 128 payload bytes each.
  ASSERT_EQ(v.edges.size(), 32u);
  for (const net::EdgeTraffic& e : v.edges) {
    EXPECT_EQ(e.crossings, 16u);
    EXPECT_EQ(e.bytes, 16u * 16 * 8);
  }
  EXPECT_EQ(v.max_edge_crossings, 16u);
}

TEST(CommVolume, PerSourceArityMismatchIsValidityError) {
  occam::CommSpec spec{1};
  spec.node(0).send(1, 5).send(1, 5);
  spec.node(1).recv(0, 5);
  const VolumeAnalysis v = analyze_volume(spec);
  EXPECT_TRUE(v.report.has("chan-arity")) << v.report.to_string("spec");
  EXPECT_GE(v.report.count(Severity::kError, DiagClass::kValidity), 1u);
}

TEST(CommVolume, RecvAnyBalancesTotalsAcrossSources) {
  // Two senders, two recvany: arities balance in total even though no
  // per-source pairing exists — must not be flagged.
  occam::CommSpec spec{1};
  spec.node(0).send(1, 5);
  spec.node(1).recv_any(5).recv_any(5);
  spec.node(0).send(1, 5);
  const VolumeAnalysis v = analyze_volume(spec);
  EXPECT_FALSE(v.report.has("chan-arity")) << v.report.to_string("spec");
}

TEST(CommVolume, PayloadDisagreementIsFlagged) {
  occam::CommSpec spec{1};
  spec.node(0).send(1, 3, 8);
  spec.node(1).recv(0, 3, 4);
  const VolumeAnalysis v = analyze_volume(spec);
  EXPECT_TRUE(v.report.has("payload-mismatch")) << v.report.to_string("spec");
  EXPECT_GE(v.report.count(Severity::kError, DiagClass::kValidity), 1u);
}

TEST(CommVolume, EdgeBudgetOverflowIsPerformanceClass) {
  occam::CommSpec spec{1};
  spec.set_edge_budget(256);
  spec.node(0).send(1, 2, 64);  // 512 payload bytes over edge 0-1
  spec.node(1).recv(0, 2, 64);
  const VolumeAnalysis v = analyze_volume(spec);
  EXPECT_TRUE(v.report.has("edge-overload")) << v.report.to_string("spec");
  EXPECT_GE(v.report.count(Severity::kError, DiagClass::kPerformance), 1u);
  EXPECT_EQ(v.report.count(Severity::kError, DiagClass::kValidity), 0u);
}

TEST(CommVolume, CollectiveLoweringContributesVolume) {
  occam::CommSpec spec{2};
  for (net::NodeId id = 0; id < spec.size(); ++id) {
    spec.node(id).barrier();
  }
  const VolumeAnalysis v = analyze_volume(spec);
  EXPECT_FALSE(v.report.has_errors()) << v.report.to_string("spec");
  EXPECT_GT(v.messages, 0u);
  EXPECT_GT(v.total_hops, 0u);
}

// --------------------------------------------------------- .comm parser --

TEST(CommParse, RoundTripsOpsAndCollectives) {
  const occam::CommSpec spec = occam::parse_comm_spec(R"(
# a comment
dim 2
0: send 1 7 ; recvany 9 ; barrier
3: reduce 0 ; bcast 2 ; allreduce
)");
  EXPECT_EQ(spec.dimension(), 2);
  ASSERT_EQ(spec.ops(0).size(), 3u);
  EXPECT_EQ(spec.ops(0)[0].kind, occam::CommKind::kSend);
  EXPECT_EQ(spec.ops(0)[1].kind, occam::CommKind::kRecvAny);
  EXPECT_EQ(spec.ops(0)[2].kind, occam::CommKind::kBarrier);
  ASSERT_EQ(spec.ops(3).size(), 3u);
  EXPECT_EQ(spec.ops(3)[0].kind, occam::CommKind::kReduce);
  EXPECT_TRUE(spec.ops(1).empty());
}

TEST(CommParse, RejectsMalformedInput) {
  EXPECT_THROW(occam::parse_comm_spec("0: send 1 2\n"),
               occam::CommSpecError);
  EXPECT_THROW(occam::parse_comm_spec("dim 1\n9: barrier\n"),
               occam::CommSpecError);
  EXPECT_THROW(occam::parse_comm_spec("dim 1\n0: frobnicate\n"),
               occam::CommSpecError);
  EXPECT_THROW(occam::parse_comm_spec("dim 1\n0: send 1\n"),
               occam::CommSpecError);
}

// ------------------------------------ static verdicts match the runtime --

TEST(ChanGraphVsRuntime, StaticDeadlockReproducesDynamically) {
  sim::Simulator sim;
  core::TSeries machine{sim, 1};
  occam::Runtime rt{machine};
  std::vector<occam::Runtime::Body> bodies;
  for (net::NodeId id = 0; id < 2; ++id) {
    bodies.push_back([id](occam::Ctx& ctx) -> sim::Proc {
      const net::NodeId peer = id ^ 1u;
      std::vector<double> in;
      co_await ctx.recv(peer, 5, &in);        // both receive first...
      std::vector<double> out(1, 1.0);
      co_await ctx.send(peer, 5, std::move(out));  // ...so neither sends
    });
  }
  EXPECT_THROW(rt.run(bodies), occam::DeadlockError);
}

TEST(ChanGraphVsRuntime, StaticCleanRingRunsDynamically) {
  sim::Simulator sim;
  core::TSeries machine{sim, 2};
  occam::Runtime rt{machine};
  // Same program as RingOfBufferedSendsIsClean.
  const net::NodeId next[] = {1, 3, 0, 2};  // 0->1->3->2->0
  const net::NodeId prev[] = {2, 0, 3, 1};
  std::vector<occam::Runtime::Body> bodies;
  for (net::NodeId id = 0; id < 4; ++id) {
    bodies.push_back([id, &next, &prev](occam::Ctx& ctx) -> sim::Proc {
      std::vector<double> in;
      if (id == 0) {
        std::vector<double> seed(1, 42.0);
        co_await ctx.send(next[id], 1, std::move(seed));
        co_await ctx.recv(prev[id], 1, &in);
      } else {
        co_await ctx.recv(prev[id], 1, &in);
        co_await ctx.send(next[id], 1, std::move(in));
      }
    });
  }
  EXPECT_NO_THROW(rt.run(bodies));
}

// ------------------------------------------------------- on-disk corpus --

struct CorpusCase {
  const char* file;
  const char* expected_code;
};

class CorpusTest : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(CorpusTest, ProducesExpectedDiagnostic) {
  const CorpusCase& c = GetParam();
  const std::string path =
      std::string(FPST_SOURCE_DIR) + "/tests/corpus/" + c.file;
  const std::string text = read_file(path);
  // Run every analysis tcheck runs for the file kind; the expected code
  // may come from any of them.
  std::vector<Report> reports;
  const std::string name{c.file};
  if (name.size() > 5 && name.substr(name.size() - 5) == ".comm") {
    const occam::CommSpec spec = occam::parse_comm_spec(text);
    reports.push_back(analyze_comm(spec).report);
    reports.push_back(analyze_volume(spec).report);
  } else {
    const cp::Program prog = cp::assemble(text);
    reports.push_back(verify(prog).report);
    reports.push_back(predict_cost(prog).report);
  }
  bool found = false;
  std::string all;
  for (const Report& rep : reports) {
    found = found || rep.has(c.expected_code);
    all += rep.to_string(c.file);
  }
  EXPECT_TRUE(found)
      << c.file << " should produce [" << c.expected_code << "]; got:\n"
      << all;
}

INSTANTIATE_TEST_SUITE_P(
    BrokenPrograms, CorpusTest,
    ::testing::Values(CorpusCase{"bad_jump.tisa", "bad-jump"},
                      CorpusCase{"mid_instruction.tisa", "mid-instruction"},
                      CorpusCase{"stack_underflow.tisa", "stack-underflow"},
                      CorpusCase{"stack_overflow.tisa", "stack-overflow"},
                      CorpusCase{"oob_store.tisa", "bad-address"},
                      CorpusCase{"bad_vform.tisa", "bad-vform-desc"},
                      CorpusCase{"bad_hardchan.tisa", "bad-hard-chan"},
                      CorpusCase{"unreachable.tisa", "unreachable-code"},
                      CorpusCase{"deadlock_pair.comm", "deadlock"},
                      CorpusCase{"mismatched_barrier.comm", "stuck-recv"},
                      CorpusCase{"unbounded_hot_loop.tisa",
                                 "unbounded-hot-loop"},
                      CorpusCase{"cost_overflow.tisa", "cost-overflow"},
                      CorpusCase{"vform_overrun.tisa", "vform-overrun"},
                      CorpusCase{"chan_arity.comm", "chan-arity"},
                      CorpusCase{"payload_mismatch.comm", "payload-mismatch"},
                      CorpusCase{"edge_overload.comm", "edge-overload"}),
    [](const ::testing::TestParamInfo<CorpusCase>& param) {
      std::string n = param.param.file;
      for (char& ch : n) {
        if (ch == '.' || ch == '-') {
          ch = '_';
        }
      }
      return n;
    });

TEST(Examples, AllShippedProgramsVerifyClean) {
  const CorpusCase clean[] = {
      {"examples/tisa/hello.tisa", ""},
      {"examples/tisa/soft_channel.tisa", ""},
      {"examples/tisa/hardchan_echo.tisa", ""},
      {"examples/tisa/vform_saxpy.tisa", ""},
  };
  for (const CorpusCase& c : clean) {
    const std::string text =
        read_file(std::string(FPST_SOURCE_DIR) + "/" + c.file);
    const cp::Program prog = cp::assemble(text);
    const auto res = verify(prog);
    EXPECT_FALSE(res.report.has_errors())
        << c.file << ":\n" << res.report.to_string(c.file);
    // The cost model must not raise performance errors on shipped code
    // either (tcheck exits 0 over every example).
    const CostPrediction pred = predict_cost(prog);
    EXPECT_FALSE(pred.report.has_errors())
        << c.file << ":\n" << pred.report.to_string(c.file);
  }
  const char* comms[] = {"examples/comm/ring.comm",
                         "examples/comm/collectives.comm",
                         "examples/comm/alltoall.comm"};
  for (const char* f : comms) {
    const std::string text =
        read_file(std::string(FPST_SOURCE_DIR) + "/" + f);
    const occam::CommSpec spec = occam::parse_comm_spec(text);
    const CommAnalysis a = analyze_comm(spec);
    EXPECT_FALSE(a.report.has_errors())
        << f << ":\n" << a.report.to_string(f);
    const VolumeAnalysis v = analyze_volume(spec);
    EXPECT_FALSE(v.report.has_errors())
        << f << ":\n" << v.report.to_string(f);
  }
}

TEST(Examples, AllToAllCommFileMatchesTheBuiltSpec) {
  // The on-disk .comm twin and the C++-built spec predict the same volume.
  const std::string text = read_file(std::string(FPST_SOURCE_DIR) +
                                     "/examples/comm/alltoall.comm");
  const VolumeAnalysis file = analyze_volume(occam::parse_comm_spec(text));
  const VolumeAnalysis built = analyze_volume(alltoall_spec());
  EXPECT_EQ(file.messages, built.messages);
  EXPECT_EQ(file.payload_bytes, built.payload_bytes);
  EXPECT_EQ(file.total_hops, built.total_hops);
  ASSERT_EQ(file.edges.size(), built.edges.size());
  for (std::size_t i = 0; i < file.edges.size(); ++i) {
    EXPECT_EQ(file.edges[i].crossings, built.edges[i].crossings);
    EXPECT_EQ(file.edges[i].bytes, built.edges[i].bytes);
  }
}

}  // namespace
}  // namespace fpst::check
