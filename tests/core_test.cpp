// Tests for the assembled machine: §III configuration algebra, cube wiring
// and dimension-addressed messaging, sublink bandwidth sharing, module
// grouping, and the checkpoint engine (15 s snapshots independent of size,
// restore correctness, interval optimisation).
#include <gtest/gtest.h>

#include <cmath>

#include "core/checkpoint.hpp"
#include "core/machine.hpp"

namespace fpst::core {
namespace {

using namespace fpst::sim::literals;
using sim::Proc;
using sim::SimTime;
using sim::Simulator;

TEST(ConfigReport, PaperConfigurations) {
  // Module: 8 nodes, 128 MFLOPS, 8 MB.
  EXPECT_DOUBLE_EQ(SystemParams::module_peak_mflops(), 128.0);
  EXPECT_DOUBLE_EQ(SystemParams::module_ram_mb(), 8.0);
  EXPECT_GT(SystemParams::module_internode_mb_s(), 12.0 - 1e-9)
      << "over 12 MB/s intramodule";
  EXPECT_DOUBLE_EQ(SystemParams::module_external_mb_s(), 0.5);

  // Cabinet: 16 nodes (a tesseract).
  const ConfigReport cab = ConfigReport::derive(4);
  EXPECT_EQ(cab.nodes, 16u);
  EXPECT_EQ(cab.modules, 2u);
  EXPECT_EQ(cab.cabinets, 1u);

  // Four cabinets: 64 nodes, 1 GFLOPS, 64 MB, 8 system disks.
  const ConfigReport c64 = ConfigReport::derive(6);
  EXPECT_EQ(c64.nodes, 64u);
  EXPECT_EQ(c64.cabinets, 4u);
  EXPECT_NEAR(c64.peak_gflops, 1.0, 0.03);
  EXPECT_DOUBLE_EQ(c64.ram_mb, 64.0);
  EXPECT_EQ(c64.system_disks, 8u);

  // Maximum practical: 12-cube, 4096 nodes, 65 GFLOPS, 4 GB, 256 cabinets.
  const ConfigReport c4096 = ConfigReport::derive(12);
  EXPECT_EQ(c4096.nodes, 4096u);
  EXPECT_EQ(c4096.cabinets, 256u);
  EXPECT_NEAR(c4096.peak_gflops, 65.0, 1.0);
  EXPECT_DOUBLE_EQ(c4096.ram_mb, 4096.0);
  EXPECT_EQ(c4096.io_sublinks_per_node, 2)
      << "two links per node remain for external I/O and mass storage";

  // A 14-cube is constructible but leaves nothing for I/O.
  const ConfigReport c14 = ConfigReport::derive(14);
  EXPECT_TRUE(c14.feasible);
  EXPECT_EQ(c14.io_sublinks_per_node, 0);
  EXPECT_EQ(c14.free_sublinks_per_node, 0);

  EXPECT_THROW(ConfigReport::derive(15), std::invalid_argument);
}

TEST(ConfigReport, LinkBudgetAccounting) {
  // 16 sublinks = cube dims + 2 system + io + free, at every size.
  for (int d = 0; d <= 14; ++d) {
    const ConfigReport r = ConfigReport::derive(d);
    EXPECT_EQ(r.hypercube_sublinks_per_node + r.system_sublinks_per_node +
                  r.io_sublinks_per_node + r.free_sublinks_per_node,
              16)
        << "dim " << d;
  }
  // The paper's example: 16 - 2 (system) - 2 (storage/IO) leaves 12 for the
  // cube and externals; a module's 3-cube then leaves 9 more dims => 12-cube.
  EXPECT_TRUE(ConfigReport::derive(12).feasible);
}

TEST(TSeries, BuildsAndGroupsModules) {
  Simulator sim;
  TSeries machine{sim, 4};  // one cabinet
  EXPECT_EQ(machine.size(), 16u);
  EXPECT_EQ(machine.module_count(), 2u);
  EXPECT_EQ(&machine.module(1).node(0), &machine.node(8))
      << "module m holds cube nodes [8m, 8m+8)";
  EXPECT_EQ(machine.node(5).id(), 5u);
}

Proc send_one(TSeries* m, net::NodeId from, int dim, std::uint16_t tag) {
  link::Packet p;
  p.tag = tag;
  p.dst = m->cube().neighbor(from, dim);
  p.payload.assign(8, 0);
  co_await m->send_dim(from, dim, std::move(p));
}

Proc recv_one(TSeries* m, net::NodeId at, int dim, std::uint16_t* tag) {
  const link::Packet p = co_await m->inbox(at, dim).recv();
  *tag = p.tag;
}

TEST(TSeries, DimensionAddressedMessaging) {
  Simulator sim;
  TSeries machine{sim, 5};
  std::uint16_t tag = 0;
  sim.spawn(recv_one(&machine, machine.cube().neighbor(3, 4), 4, &tag));
  sim.spawn(send_one(&machine, 3, 4, 77));
  sim.run();
  EXPECT_EQ(tag, 77);
  // One 16-byte wire packet: 5 us DMA + 16 * 2 us.
  EXPECT_EQ(sim.now(), link::LinkParams::transfer_time(8));
}

Proc burst(TSeries* m, net::NodeId from, int dim) {
  link::Packet p;
  p.dst = m->cube().neighbor(from, dim);
  p.payload.assign(8, 0);
  co_await m->send_dim(from, dim, std::move(p));
}

Proc drain(TSeries* m, net::NodeId at, int dim) {
  (void)co_await m->inbox(at, dim).recv();
}

TEST(TSeries, SublinksOfOnePhysicalPortShareBandwidth) {
  // Dimensions 0 and 4 share physical port 0; dimensions 0 and 1 use
  // different ports. Two simultaneous sends on (0,4) serialise; on (0,1)
  // they run in parallel.
  Simulator sim;
  TSeries machine{sim, 5};
  sim.spawn(drain(&machine, machine.cube().neighbor(0, 0), 0));
  sim.spawn(drain(&machine, machine.cube().neighbor(0, 4), 4));
  sim.spawn(burst(&machine, 0, 0));
  sim.spawn(burst(&machine, 0, 4));
  sim.run();
  const SimTime shared = sim.now();
  EXPECT_EQ(shared, 2 * link::LinkParams::transfer_time(8));

  Simulator sim2;
  TSeries machine2{sim2, 5};
  sim2.spawn(drain(&machine2, machine2.cube().neighbor(0, 0), 0));
  sim2.spawn(drain(&machine2, machine2.cube().neighbor(0, 1), 1));
  sim2.spawn(burst(&machine2, 0, 0));
  sim2.spawn(burst(&machine2, 0, 1));
  sim2.run();
  EXPECT_EQ(sim2.now(), link::LinkParams::transfer_time(8))
      << "different physical ports are independent";
}

TEST(TSeries, InfeasibleDimensionRejected) {
  Simulator sim;
  EXPECT_THROW(TSeries(sim, 15), std::invalid_argument);
}

Proc take_snapshot(CheckpointEngine* ck) { co_await ck->snapshot(); }

TEST(Checkpoint, SnapshotTakesFifteenSecondsRegardlessOfSize) {
  for (int dim : {3, 5}) {
    Simulator sim;
    TSeries machine{sim, dim};
    CheckpointEngine ck{machine};
    sim.spawn(take_snapshot(&ck));
    sim.run();
    EXPECT_EQ(sim.now(), 15_s) << "dim " << dim;
    EXPECT_EQ(ck.snapshots_taken(), machine.module_count());
  }
}

TEST(Checkpoint, RestoreRecoversMemoryAfterCorruption) {
  Simulator sim;
  TSeries machine{sim, 3};
  CheckpointEngine ck{machine};
  // Put recognisable state in node 2's memory.
  machine.node(2).memory().write_word(0x1234 & ~3u, 0xfeedface);
  sim.spawn(take_snapshot(&ck));
  sim.run();
  // Corrupt it (a detectable parity fault), then restore.
  machine.node(2).memory().corrupt_byte(0x1234, 2);
  (void)machine.node(2).memory().read_word(0x1234);
  EXPECT_TRUE(machine.node(2).memory().take_parity_error().has_value());
  EXPECT_TRUE(ck.restore());
  EXPECT_EQ(machine.node(2).memory().read_word(0x1234 & ~3u), 0xfeedfaceu);
  EXPECT_FALSE(machine.node(2).memory().take_parity_error().has_value());
}

TEST(Checkpoint, RestoreWithoutSnapshotFails) {
  Simulator sim;
  TSeries machine{sim, 3};
  CheckpointEngine ck{machine};
  EXPECT_FALSE(ck.restore());
}

TEST(Checkpoint, YoungOptimumNearTenMinutesForPlausibleMtbf) {
  // With C = 15 s, T* = 600 s corresponds to MTBF = T*^2 / (2C) = 12000 s
  // (3.3 h) — a plausible figure for early-production hardware; optima for
  // MTBF between 2 and 6 hours all land within a factor ~1.4 of 10 min.
  const double c = 15.0;
  EXPECT_NEAR(CheckpointEngine::optimal_interval_s(c, 12000.0), 600.0, 1.0);
  const double lo = CheckpointEngine::optimal_interval_s(c, 2 * 3600.0);
  const double hi = CheckpointEngine::optimal_interval_s(c, 6 * 3600.0);
  EXPECT_GT(lo, 400.0);
  EXPECT_LT(hi, 850.0);
}

TEST(Checkpoint, SimulatedRunsPreferModerateIntervals) {
  // Sweep intervals for a 24 h workload with a 3 h MTBF: both very frequent
  // and very rare checkpointing must cost more than the ~10 min compromise.
  const double work = 24.0;
  const double mtbf = 3.0;
  auto overhead = [&](double interval_s) {
    double total = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      total += CheckpointEngine::simulate_run(work, interval_s, mtbf, 15.0,
                                              seed)
                   .overhead_fraction;
    }
    return total / 5;
  };
  const double at_30s = overhead(30);
  const double at_600s = overhead(600);
  const double at_3h = overhead(3 * 3600);
  EXPECT_GT(at_30s, at_600s) << "too-frequent snapshots waste time";
  EXPECT_GT(at_3h, at_600s) << "too-rare snapshots lose too much work";
  EXPECT_LT(at_600s, 0.15) << "the compromise keeps overhead modest";
}

TEST(Checkpoint, SimulatedRunsAreDeterministicInSeed) {
  const auto a = CheckpointEngine::simulate_run(10, 600, 3, 15, 42);
  const auto b = CheckpointEngine::simulate_run(10, 600, 3, 15, 42);
  EXPECT_EQ(a.elapsed_hours, b.elapsed_hours);
  EXPECT_EQ(a.failures, b.failures);
}

}  // namespace
}  // namespace fpst::core
