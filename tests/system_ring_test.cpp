// Tests for the system ring: board-to-board routing (shorter way around),
// edge contention, the intra-module thread, snapshot backup to the
// neighbouring module's disk, and external I/O at the module's 0.5 MB/s.
#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "core/system_ring.hpp"

namespace fpst::core {
namespace {

using namespace fpst::sim::literals;
using sim::Proc;
using sim::SimTime;
using sim::Simulator;

Proc ring_send(SystemRing* ring, std::size_t from, std::size_t to,
               std::size_t bytes, SimTime* done, Simulator* sim) {
  co_await ring->send(from, to, bytes);
  if (done != nullptr) {
    *done = sim->now();
  }
}

TEST(SystemRing, HopsTakeTheShorterWay) {
  Simulator sim;
  TSeries machine{sim, 6};  // 8 modules
  SystemRing ring{machine};
  EXPECT_EQ(ring.hops(0, 1), 1u);
  EXPECT_EQ(ring.hops(0, 4), 4u);
  EXPECT_EQ(ring.hops(0, 7), 1u) << "wrap backwards";
  EXPECT_EQ(ring.hops(6, 2), 4u);
  EXPECT_EQ(ring.hops(3, 3), 0u);
}

TEST(SystemRing, LatencyScalesWithHops) {
  Simulator sim;
  TSeries machine{sim, 6};
  SystemRing ring{machine};
  SimTime t1{};
  SimTime t3{};
  sim.spawn(ring_send(&ring, 0, 1, 1000, &t1, &sim));
  sim.run();
  const SimTime start = sim.now();
  sim.spawn(ring_send(&ring, 0, 3, 1000, &t3, &sim));
  sim.run();
  EXPECT_EQ((t3 - start) / t1, 3.0) << "three store-and-forward hops";
}

TEST(SystemRing, EdgeContentionSerialises) {
  Simulator sim;
  TSeries machine{sim, 5};  // 4 modules
  SystemRing ring{machine};
  SimTime a{};
  SimTime b{};
  // Both messages cross edge 0 in the same direction.
  sim.spawn(ring_send(&ring, 0, 1, 5000, &a, &sim));
  sim.spawn(ring_send(&ring, 0, 1, 5000, &b, &sim));
  sim.run();
  EXPECT_EQ(b, 2 * a) << "one DMA per edge direction at a time";
}

TEST(SystemRing, OppositeDirectionsAreIndependent) {
  Simulator sim;
  TSeries machine{sim, 5};
  SystemRing ring{machine};
  SimTime a{};
  SimTime b{};
  sim.spawn(ring_send(&ring, 0, 1, 5000, &a, &sim));
  sim.spawn(ring_send(&ring, 1, 0, 5000, &b, &sim));
  sim.run();
  EXPECT_EQ(a, b) << "full duplex edges";
}

Proc thread_send(SystemRing* ring, std::size_t m, int local,
                 std::size_t bytes, SimTime* done, Simulator* sim) {
  co_await ring->board_to_node(m, local, bytes);
  *done = sim->now();
}

TEST(SystemRing, ThreadDepthChargesPerNode) {
  Simulator sim;
  TSeries machine{sim, 3};
  SystemRing ring{machine};
  SimTime t0{};
  sim.spawn(thread_send(&ring, 0, 0, 100, &t0, &sim));
  sim.run();
  const SimTime mark = sim.now();
  SimTime t7{};
  sim.spawn(thread_send(&ring, 0, 7, 100, &t7, &sim));
  sim.run();
  EXPECT_EQ((t7 - mark) / t0, 8.0) << "node 7 sits eight links down the thread";
}

Proc snapshot_then_backup(CheckpointEngine* ck, SystemRing* ring,
                          std::size_t module, bool* ok) {
  co_await ck->snapshot();
  co_await ring->backup_to_neighbor(module, ok);
}

TEST(SystemRing, BackupCopiesSnapshotToNeighbourDisk) {
  Simulator sim;
  TSeries machine{sim, 4};  // 2 modules
  CheckpointEngine ck{machine};
  SystemRing ring{machine};
  machine.node(0).memory().write_word(0x100, 0xabcdef01);
  bool ok = false;
  sim.spawn(snapshot_then_backup(&ck, &ring, 0, &ok));
  sim.run();
  EXPECT_TRUE(ok);
  const Disk::Image* backup = machine.module(1).board().disk().last_backup();
  ASSERT_NE(backup, nullptr);
  EXPECT_EQ(backup->node_memories.size(), 8u);
  EXPECT_EQ(backup->node_memories[0][0x100], 0x01);
  // 8 MB over one 0.5 MB/s ring edge: ~16.8 s on top of the 15 s snapshot.
  EXPECT_GT(sim.now(), 30_s);
  EXPECT_LT(sim.now(), 35_s);
}

TEST(SystemRing, ModuleRecoversFromNeighbourBackupAfterDiskLoss) {
  // Snapshot + ring backup; then module 0's own disk image is irrelevant
  // (pretend it failed): restore module 0 from module 1's backup copy.
  Simulator sim;
  TSeries machine{sim, 4};
  CheckpointEngine ck{machine};
  SystemRing ring{machine};
  machine.node(3).memory().write_word(0x440, 0x5ca1ab1e);
  bool ok = false;
  sim.spawn(snapshot_then_backup(&ck, &ring, 0, &ok));
  sim.run();
  ASSERT_TRUE(ok);
  // Wreck the module's memory and recover from the neighbour's backup.
  machine.node(3).memory().write_word(0x440, 0);
  EXPECT_TRUE(ck.restore_module_from_backup(0));
  EXPECT_EQ(machine.node(3).memory().read_word(0x440), 0x5ca1ab1eu);
  EXPECT_FALSE(ck.restore_module_from_backup(1)) << "no backup for module 1";
}

TEST(SystemRing, BackupWithoutSnapshotReportsFailure) {
  Simulator sim;
  TSeries machine{sim, 4};
  SystemRing ring{machine};
  bool ok = true;
  sim.spawn([](SystemRing* r, bool* flag) -> Proc {
    co_await r->backup_to_neighbor(0, flag);
  }(&ring, &ok));
  sim.run();
  EXPECT_FALSE(ok);
}

TEST(SystemRing, ExternalTransferRunsAtHalfMegabytePerSecond) {
  Simulator sim;
  TSeries machine{sim, 3};
  SystemRing ring{machine};
  sim.spawn([](SystemRing* r) -> Proc {
    co_await r->external_transfer(0, 1'000'000);
  }(&ring));
  sim.run();
  const double mb_s = 1.0 / sim.now().sec();
  EXPECT_NEAR(mb_s, 0.5, 0.01);
}

}  // namespace
}  // namespace fpst::core
