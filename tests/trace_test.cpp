// Tests for the tracing facility: record collection, per-category busy
// accounting, rendering, and integration with the node's timed operations.
#include <gtest/gtest.h>

#include <stdexcept>

#include "node/node.hpp"
#include "sim/ring.hpp"
#include "sim/trace.hpp"

namespace fpst {
namespace {

using namespace fpst::sim::literals;
using sim::SimTime;
using sim::Tracer;

TEST(RingBuffer, IndexingEmptyRingThrows) {
  // Regression: operator[] used to compute `% buf_.size()`, which is a
  // division by zero (UB) on an empty ring. The guard must throw instead.
  sim::RingBuffer<int> rb{4};
  EXPECT_TRUE(rb.empty());
  EXPECT_THROW(static_cast<void>(rb[0]), std::out_of_range);
}

TEST(RingBuffer, PartiallyFilledIndexingIsInsertionOrdered) {
  sim::RingBuffer<int> rb{4};
  rb.push(10);
  rb.push(11);
  EXPECT_EQ(rb[0], 10);
  EXPECT_EQ(rb[1], 11);
  EXPECT_THROW(static_cast<void>(rb[2]), std::out_of_range);
  rb.push(12);
  rb.push(13);
  rb.push(14);  // wraps: 10 is overwritten
  EXPECT_EQ(rb.dropped(), 1u);
  EXPECT_EQ(rb[0], 11);
  EXPECT_EQ(rb[3], 14);
  EXPECT_THROW(static_cast<void>(rb[4]), std::out_of_range);
}

TEST(Tracer, RecordsEventsAndSpans) {
  Tracer tr;
  tr.event(1_us, "a", "x");
  tr.span(2_us, 3_us, "b", "y");
  ASSERT_EQ(tr.size(), 2u);
  EXPECT_EQ(tr.records()[0].at, 1_us);
  EXPECT_TRUE(tr.records()[0].duration.is_zero());
  EXPECT_EQ(tr.records()[1].duration, 3_us);
  tr.clear();
  EXPECT_EQ(tr.size(), 0u);
}

TEST(Tracer, BusyByCategorySums) {
  Tracer tr;
  tr.span(0_us, 5_us, "vpu", "op1");
  tr.span(10_us, 7_us, "vpu", "op2");
  tr.span(0_us, 2_us, "cp", "gather");
  const auto busy = tr.busy_by_category();
  EXPECT_EQ(busy.at("vpu"), 12_us);
  EXPECT_EQ(busy.at("cp"), 2_us);
}

TEST(Tracer, RenderIsChronologicalAndCapped) {
  Tracer tr;
  tr.event(5_us, "late", "second");
  tr.event(1_us, "early", "first");
  const std::string text = tr.render();
  EXPECT_LT(text.find("first"), text.find("second"));
  for (int i = 0; i < 300; ++i) {
    tr.event(10_us, "bulk", "x");
  }
  const std::string capped = tr.render(10);
  EXPECT_NE(capped.find("more)"), std::string::npos);
}

sim::Proc traced_workload(node::Node* nd, node::Array64 x, node::Array64 z) {
  co_await nd->vscalar(vpu::VectorForm::vsmul, 2.0, x, node::Array64{}, z);
  co_await nd->gather(16);
  co_await nd->cp_work(100);
  co_await nd->row_move(2);
}

TEST(Tracer, NodeOperationsAreTraced) {
  sim::Simulator sim;
  node::Node nd{sim, 3};
  Tracer tr;
  nd.set_tracer(&tr);
  const node::Array64 x = nd.alloc64(mem::Bank::A, 128);
  const node::Array64 z = nd.alloc64(mem::Bank::B, 128);
  sim.spawn(traced_workload(&nd, x, z));
  sim.run();
  ASSERT_EQ(tr.size(), 4u);
  const auto busy = tr.busy_by_category();
  EXPECT_TRUE(busy.count("node3.vpu"));
  EXPECT_TRUE(busy.count("node3.cp"));
  // The trace's total busy time equals the run (everything was serial).
  EXPECT_EQ(busy.at("node3.vpu") + busy.at("node3.cp"), sim.now());
  const std::string text = tr.render();
  EXPECT_NE(text.find("VSMUL n=128"), std::string::npos);
  EXPECT_NE(text.find("gather64 16"), std::string::npos);
}

TEST(Tracer, RingBoundsRecordsButBusyStaysExact) {
  Tracer tr{4};
  EXPECT_EQ(tr.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    tr.span(i * 1_us, 2_us, "vpu", "op" + std::to_string(i));
  }
  // Only the newest 4 records remain, oldest first, and the loss is
  // reported — but the busy accumulator saw all 10 spans.
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 6u);
  const auto recs = tr.records();
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs.front().detail, "op6");
  EXPECT_EQ(recs.back().detail, "op9");
  EXPECT_EQ(tr.busy_by_category().at("vpu"), 20_us);
  tr.clear();
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(Tracer, DefaultCapacityIsBounded) {
  Tracer tr;
  EXPECT_EQ(tr.capacity(), Tracer::kDefaultCapacity);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(Tracer, UntracedNodesRecordNothing) {
  sim::Simulator sim;
  node::Node nd{sim, 0};
  const node::Array64 x = nd.alloc64(mem::Bank::A, 8);
  const node::Array64 z = nd.alloc64(mem::Bank::B, 8);
  sim.spawn(traced_workload(&nd, x, z));
  sim.run();  // no tracer attached: must simply not crash
  SUCCEED();
}

}  // namespace
}  // namespace fpst
