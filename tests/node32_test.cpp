// Tests for the node's 32-bit operating mode: 256-element vectors, the
// five-stage multiplier, 0.8 us gathers, and single-precision results
// matching host float arithmetic.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "node/node.hpp"

namespace fpst::node {
namespace {

using namespace fpst::sim::literals;
using sim::Proc;
using sim::SimTime;
using sim::Simulator;
using vpu::VectorForm;

class Node32Test : public ::testing::Test {
 protected:
  Simulator sim;
  Node node{sim, 0};
};

TEST_F(Node32Test, Array32Geometry) {
  EXPECT_EQ((Array32{0, 256}).rows(), 1u) << "256 x 32-bit per vector";
  EXPECT_EQ((Array32{0, 257}).rows(), 2u);
  EXPECT_EQ((Array32{0, 1000}).rows(), 4u);
}

TEST_F(Node32Test, StageAndReadBack32) {
  const Array32 a = node.alloc32(mem::Bank::A, 600);
  std::vector<float> v(600);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 0.5f * static_cast<float>(i);
  }
  node.write32(a, v);
  EXPECT_EQ(node.read32(a), v);
}

Proc saxpy32(Node* n, double a, Array32 x, Array32 y, Array32 z) {
  co_await n->vscalar32(VectorForm::vsaxpy, a, x, y, z);
}

TEST_F(Node32Test, StripMinedSaxpy32MatchesHostFloat) {
  const std::size_t n = 700;  // three stripes
  const Array32 x = node.alloc32(mem::Bank::A, n);
  const Array32 y = node.alloc32(mem::Bank::B, n);
  const Array32 z = node.alloc32(mem::Bank::B, n);
  std::mt19937 rng{11};
  std::uniform_real_distribution<float> dist(-10.0f, 10.0f);
  std::vector<float> xv(n);
  std::vector<float> yv(n);
  for (std::size_t i = 0; i < n; ++i) {
    xv[i] = dist(rng);
    yv[i] = dist(rng);
  }
  node.write32(x, xv);
  node.write32(y, yv);
  sim.spawn(saxpy32(&node, 2.5, x, y, z));
  sim.run();
  const std::vector<float> zv = node.read32(z);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(zv[i], 2.5f * xv[i] + yv[i]) << i;
  }
}

TEST_F(Node32Test, FullVectorIsTwiceAsLongForTheSameRowTime) {
  // One 256-element f32 stripe streams in the same wall time per element as
  // f64 (one result per 125 ns either way), so a full row of f32 work takes
  // about twice as long as a full row of f64 work but does twice the
  // elements.
  const vpu::VectorOp op32{VectorForm::vadd, vpu::Precision::f32, 256, 0,
                           300, 600, fp::T64{}};
  const vpu::VectorOp op64{VectorForm::vadd, vpu::Precision::f64, 128, 0,
                           300, 600, fp::T64{}};
  const SimTime t32 = node.vector_unit().duration_of(op32);
  const SimTime t64 = node.vector_unit().duration_of(op64);
  EXPECT_GT(t32, t64);
  EXPECT_LT(t32 / t64, 2.0);
}

Proc run_gathers(Node* n, std::size_t elems, bool narrow) {
  if (narrow) {
    co_await n->gather32(elems);
  } else {
    co_await n->gather(elems);
  }
}

TEST_F(Node32Test, Gather32CostsHalfOfGather64) {
  sim.spawn(run_gathers(&node, 100, true));
  sim.run();
  const SimTime t32 = sim.now();
  EXPECT_EQ(t32, 100 * mem::MemParams::gather_move32());

  Simulator sim2;
  Node node2{sim2, 0};
  sim2.spawn(run_gathers(&node2, 100, false));
  sim2.run();
  EXPECT_EQ(sim2.now(), 2 * t32) << "0.8 us vs 1.6 us per element";
}

TEST_F(Node32Test, SinglePrecisionFlushesToZeroToo) {
  const Array32 x = node.alloc32(mem::Bank::A, 2);
  const Array32 z = node.alloc32(mem::Bank::B, 2);
  node.write32(x, std::vector<float>{1e-30f, 1.0f});
  vpu::OpResult r;
  sim.spawn([](Node* n, Array32 ax, Array32 az, vpu::OpResult* out) -> Proc {
    co_await n->vscalar32(VectorForm::vsmul, 1e-20, ax, Array32{}, az, out);
  }(&node, x, z, &r));
  sim.run();
  const std::vector<float> zv = node.read32(z);
  EXPECT_EQ(zv[0], 0.0f) << "1e-50 flushes in binary32";
  EXPECT_TRUE(r.flags.underflow);
  EXPECT_NEAR(zv[1], 1e-20f, 1e-26f);
}

TEST_F(Node32Test, LengthMismatchFailsTheProcess) {
  // The node ops are coroutines: geometry errors surface when the process
  // runs (as a ProcError from the simulator), not at call time.
  const Array32 x = node.alloc32(mem::Bank::A, 10);
  const Array32 z = node.alloc32(mem::Bank::B, 12);
  sim.spawn(node.vbinary32(VectorForm::vadd, x, x, z));
  EXPECT_THROW(sim.run(), sim::ProcError);
}

}  // namespace
}  // namespace fpst::node
