// Tests for the MOCC compiler: expressions, control flow, procedures and
// recursion, CSP channels, PAR fork-join, ALT, and interaction with the
// simulated control processor's timing.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "mocc/mocc.hpp"
#include "node/node.hpp"

namespace fpst::mocc {
namespace {

using namespace fpst::sim::literals;

class MoccTest : public ::testing::Test {
 protected:
  /// Compile and run a MOCC program; main starts at workspace 0xA000.
  void run(const std::string& src, sim::SimTime limit = 100_ms) {
    const cp::Program p = compile(src);
    cpu.load(p);
    cpu.start_process(p.symbol("main"), 0xA000, 1);
    sim.spawn(cpu.run());
    sim.run_until(limit);
  }

  std::uint32_t word(std::uint32_t addr) { return cpu.read_word(addr); }

  sim::Simulator sim;
  mem::NodeMemory memory;
  vpu::VectorUnit vpu{memory};
  cp::Cpu cpu{sim, memory, vpu};
};

TEST_F(MoccTest, ArithmeticAndPrecedence) {
  run(R"(
    proc main() {
      poke(0x2000, 2 + 3 * 4);
      poke(0x2004, (2 + 3) * 4);
      poke(0x2008, 100 / 7);
      poke(0x200c, 100 % 7);
      poke(0x2010, -5 + 8);
      poke(0x2014, 10 - 2 - 3);
      halt;
    }
  )");
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(word(0x2000), 14u);
  EXPECT_EQ(word(0x2004), 20u);
  EXPECT_EQ(word(0x2008), 14u);
  EXPECT_EQ(word(0x200c), 2u);
  EXPECT_EQ(word(0x2010), 3u);
  EXPECT_EQ(word(0x2014), 5u);
}

TEST_F(MoccTest, Comparisons) {
  run(R"(
    proc main() {
      poke(0x2000, 3 < 5);
      poke(0x2004, 5 < 3);
      poke(0x2008, 5 > 3);
      poke(0x200c, 3 >= 3);
      poke(0x2010, 3 <= 2);
      poke(0x2014, 7 == 7);
      poke(0x2018, 7 != 7);
      poke(0x201c, -2 < 1);
      halt;
    }
  )");
  EXPECT_EQ(word(0x2000), 1u);
  EXPECT_EQ(word(0x2004), 0u);
  EXPECT_EQ(word(0x2008), 1u);
  EXPECT_EQ(word(0x200c), 1u);
  EXPECT_EQ(word(0x2010), 0u);
  EXPECT_EQ(word(0x2014), 1u);
  EXPECT_EQ(word(0x2018), 0u);
  EXPECT_EQ(word(0x201c), 1u) << "signed comparison";
}

TEST_F(MoccTest, VariablesAndWhile) {
  run(R"(
    proc main() {
      var sum = 0;
      var i = 1;
      while (i <= 100) {
        sum = sum + i;
        i = i + 1;
      }
      poke(0x2000, sum);
      halt;
    }
  )");
  EXPECT_EQ(word(0x2000), 5050u);
}

TEST_F(MoccTest, IfElseChains) {
  run(R"(
    global r;
    proc classify(x) {
      if (x < 0) { r = 1; } else {
        if (x == 0) { r = 2; } else { r = 3; }
      }
    }
    proc main() {
      classify(-5);
      poke(0x2000, r);
      classify(0);
      poke(0x2004, r);
      classify(9);
      poke(0x2008, r);
      halt;
    }
  )");
  EXPECT_EQ(word(0x2000), 1u);
  EXPECT_EQ(word(0x2004), 2u);
  EXPECT_EQ(word(0x2008), 3u);
}

TEST_F(MoccTest, ProceduresWithParametersAndReturn) {
  run(R"(
    proc madd(a, b, c) {
      return a * b + c;
    }
    proc main() {
      poke(0x2000, madd(3, 4, 5));
      poke(0x2004, madd(madd(1, 2, 3), 10, 0));
      halt;
    }
  )");
  EXPECT_EQ(word(0x2000), 17u);
  EXPECT_EQ(word(0x2004), 50u);
}

TEST_F(MoccTest, RecursionWorks) {
  run(R"(
    proc fib(n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    proc main() {
      poke(0x2000, fib(15));
      halt;
    }
  )");
  EXPECT_EQ(word(0x2000), 610u);
}

TEST_F(MoccTest, GlobalsSharedAcrossProcs) {
  run(R"(
    global counter;
    proc bump() { counter = counter + 1; }
    proc main() {
      counter = 40;
      bump();
      bump();
      poke(0x2000, counter);
      halt;
    }
  )");
  EXPECT_EQ(word(0x2000), 42u);
}

TEST_F(MoccTest, PeekReadsMemory) {
  memory.write_word(0x3000, 1234);
  run(R"(
    proc main() {
      poke(0x2000, peek(0x3000) + 1);
      halt;
    }
  )");
  EXPECT_EQ(word(0x2000), 1235u);
}

TEST_F(MoccTest, ParForkJoin) {
  run(R"(
    global a; global b;
    proc left()  { a = 111; }
    proc right() { b = 222; }
    proc main() {
      par { left(); right(); }
      poke(0x2000, a + b);
      halt;
    }
  )");
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(word(0x2000), 333u);
}

TEST_F(MoccTest, ChannelsProducerConsumer) {
  run(R"(
    chan c;
    global total;
    proc producer() {
      var i = 1;
      while (i <= 5) {
        send(c, i * i);
        i = i + 1;
      }
    }
    proc consumer() {
      var got;
      var i = 0;
      while (i < 5) {
        recv(c, got);
        total = total + got;
        i = i + 1;
      }
    }
    proc main() {
      total = 0;
      par { producer(); consumer(); }
      poke(0x2000, total);
      halt;
    }
  )");
  EXPECT_EQ(word(0x2000), 1u + 4 + 9 + 16 + 25);
}

TEST_F(MoccTest, PipelineOfThreeProcesses) {
  run(R"(
    chan ab; chan bc;
    global out;
    proc stage1() {
      var i = 0;
      while (i < 4) { send(ab, i); i = i + 1; }
    }
    proc stage2() {
      var x; var i = 0;
      while (i < 4) { recv(ab, x); send(bc, x * 10); i = i + 1; }
    }
    proc stage3() {
      var x; var i = 0;
      while (i < 4) { recv(bc, x); out = out + x; i = i + 1; }
    }
    proc main() {
      out = 0;
      par { stage1(); stage2(); stage3(); }
      poke(0x2000, out);
      halt;
    }
  )");
  EXPECT_EQ(word(0x2000), 60u);  // (0+1+2+3)*10
}

TEST_F(MoccTest, AltTakesWhicheverChannelIsReady) {
  run(R"(
    chan fastc; chan slowc;
    global first; global second;
    proc fast() { send(fastc, 7); }
    proc slow() { wait(50); send(slowc, 9); }
    proc collector() {
      var v; var got = 0;
      while (got < 2) {
        alt {
          recv(fastc, v) { first = v; }
          recv(slowc, v) { second = v; }
        }
        got = got + 1;
      }
    }
    proc main() {
      par { fast(); slow(); collector(); }
      poke(0x2000, first);
      poke(0x2004, second);
      halt;
    }
  )");
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(word(0x2000), 7u);
  EXPECT_EQ(word(0x2004), 9u);
}

TEST_F(MoccTest, WaitAdvancesTime) {
  // Run to completion (not run_until, which always advances the clock to
  // its deadline) so the final time reflects the program.
  const cp::Program p = compile(R"(
    proc main() {
      wait(500);
      poke(0x2000, 1);
      halt;
    }
  )");
  cpu.load(p);
  cpu.start_process(p.symbol("main"), 0xA000, 1);
  sim.spawn(cpu.run());
  sim.run();
  EXPECT_GE(sim.now(), 500_us);
  EXPECT_LT(sim.now(), 600_us);
  EXPECT_EQ(word(0x2000), 1u);
}

TEST_F(MoccTest, TimerExpressionIsMonotonic) {
  run(R"(
    proc main() {
      var t0 = timer();
      wait(100);
      var t1 = timer();
      poke(0x2000, t1 - t0 >= 100);
      halt;
    }
  )");
  EXPECT_EQ(word(0x2000), 1u);
}

TEST_F(MoccTest, VformDrivesTheVectorUnitFromTheLanguage) {
  // "Occam ... controls the high-level operation of the vector arithmetic
  // unit": build a VSAXPY descriptor in memory from MOCC and run it.
  mem::VectorRegister rx;
  mem::VectorRegister ry;
  for (std::size_t i = 0; i < 8; ++i) {
    rx.set_f64(i, fp::T64::from_double(static_cast<double>(i)));
    ry.set_f64(i, fp::T64::from_double(5.0));
  }
  memory.store_row(0, rx);
  memory.store_row(300, ry);
  run(R"(
    proc main() {
      var d = 0x4000;          // descriptor block
      poke(d, 5);              // form = VSAXPY
      poke(d + 4, 1);          // precision f64
      poke(d + 8, 8);          // n
      poke(d + 12, 0);         // row_x
      poke(d + 16, 300);       // row_y
      poke(d + 20, 600);       // row_z
      poke(d + 24, 0);         // scalar = 3.0 (IEEE bits)
      poke(d + 28, 0x40080000);
      vform(d);
      vwait;
      halt;
    }
  )");
  mem::VectorRegister rz;
  memory.load_row(600, rz);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(rz.f64(i).to_double(), 3.0 * static_cast<double>(i) + 5.0);
  }
}

TEST_F(MoccTest, ArraysSieveOfEratosthenes) {
  // A real program: mark composites in a static array, count primes < 100.
  run(R"(
    array marked[100];
    proc main() {
      var i = 2;
      while (i < 100) {
        if (marked[i] == 0) {
          var j = i * i;
          while (j < 100) {
            marked[j] = 1;
            j = j + i;
          }
        }
        i = i + 1;
      }
      var count = 0;
      var k = 2;
      while (k < 100) {
        if (marked[k] == 0) { count = count + 1; }
        k = k + 1;
      }
      poke(0x2000, count);
      halt;
    }
  )");
  EXPECT_EQ(word(0x2000), 25u) << "25 primes below 100";
}

TEST_F(MoccTest, ArrayReverseInPlace) {
  run(R"(
    array a[8];
    proc main() {
      var i = 0;
      while (i < 8) { a[i] = i * 10; i = i + 1; }
      var lo = 0;
      var hi = 7;
      while (lo < hi) {
        var t = a[lo];
        a[lo] = a[hi];
        a[hi] = t;
        lo = lo + 1;
        hi = hi - 1;
      }
      poke(0x2000, a[0]);
      poke(0x2004, a[7]);
      poke(0x2008, a[3]);
      halt;
    }
  )");
  EXPECT_EQ(word(0x2000), 70u);
  EXPECT_EQ(word(0x2004), 0u);
  EXPECT_EQ(word(0x2008), 40u);
}

TEST_F(MoccTest, ArrayErrors) {
  EXPECT_THROW(compile("proc main() { poke(0, nosuch[0]); halt; }"),
               CompileError);
  EXPECT_THROW(compile("array z[0]; proc main() { halt; }"), CompileError);
}

TEST(MoccLink, TwoNodesExchangeOverAPhysicalLink) {
  // Distributed MOCC: node A sends over its physical link 0, node B
  // receives, doubles, and replies — Occam programs on real wires.
  sim::Simulator sim;
  node::Node a{sim, 0};
  node::Node b{sim, 1};
  link::Link cable{sim};
  a.links().attach(0, cable, 0);
  b.links().attach(0, cable, 1);

  const cp::Program pa = compile(R"(
    proc main() {
      linkout(0, 0, 321);
      var back;
      linkin(0, 1, back);
      poke(0x2000, back);
      halt;
    }
  )");
  const cp::Program pb = compile(R"(
    proc main() {
      var v;
      linkin(0, 0, v);
      linkout(0, 1, v * 2);
      halt;
    }
  )");
  a.cpu().load(pa);
  b.cpu().load(pb);
  a.cpu().start_process(pa.symbol("main"), 0xA000, 1);
  b.cpu().start_process(pb.symbol("main"), 0xA000, 1);
  sim.spawn(a.cpu().run());
  sim.spawn(b.cpu().run());
  sim.run();
  EXPECT_TRUE(a.cpu().halted());
  EXPECT_EQ(a.cpu().read_word(0x2000), 642u);
}

TEST_F(MoccTest, CompileToAsmIsInspectable) {
  const std::string asm_text = compile_to_asm(R"(
    proc main() { poke(0x2000, 1); halt; }
  )");
  EXPECT_NE(asm_text.find("main:"), std::string::npos);
  EXPECT_NE(asm_text.find("halt"), std::string::npos);
  EXPECT_NE(asm_text.find(".org"), std::string::npos);
}

TEST_F(MoccTest, ErrorsAreReported) {
  EXPECT_THROW(compile("proc main() { x = 1; halt; }"), CompileError);
  EXPECT_THROW(compile("proc f() {}"), CompileError) << "no main";
  EXPECT_THROW(compile("proc main() { send(nochan, 1); halt; }"),
               CompileError);
  EXPECT_THROW(compile("proc main() { var a; var a; halt; }"), CompileError);
  EXPECT_THROW(compile("proc main() { par { } halt; }"), CompileError);
  EXPECT_THROW(compile("proc main() { frob(); halt; }"), CompileError);
  EXPECT_THROW(compile("proc main() { if x { } halt; }"), CompileError);
}

TEST(MoccLink, RingOfMoccProgramsOnABuiltMachine) {
  // Four MOCC programs on a 2-cube pass a token around the Gray ring over
  // the machine's own cube wiring (NodeLinks ports = cube dimensions).
  sim::Simulator sim;
  core::TSeries machine{sim, 2};

  // Gray ring on a 2-cube: 0 -(d0)- 1 -(d1)- 3 -(d0)- 2 -(d1)- 0.
  // Each node receives on one dimension and forwards on the other, adding
  // its id; node 0 injects the token and collects it after the round trip.
  const char* node0 = R"(
    proc main() {
      linkout(0, 0, 1000);    // to node 1 over dim 0
      var back;
      linkin(1, 0, back);     // from node 2 over dim 1
      poke(0x2000, back);
      halt;
    }
  )";
  const char* node1 = R"(
    proc main() {
      var t;
      linkin(0, 0, t);        // from node 0 over dim 0
      linkout(1, 0, t + 1);   // to node 3 over dim 1
      halt;
    }
  )";
  const char* node3 = R"(
    proc main() {
      var t;
      linkin(1, 0, t);        // from node 1 over dim 1
      linkout(0, 0, t + 3);   // to node 2 over dim 0
      halt;
    }
  )";
  const char* node2 = R"(
    proc main() {
      var t;
      linkin(0, 0, t);        // from node 3 over dim 0
      linkout(1, 0, t + 2);   // to node 0 over dim 1
      halt;
    }
  )";
  const char* sources[4] = {node0, node1, node2, node3};
  for (net::NodeId id = 0; id < 4; ++id) {
    const cp::Program p = compile(sources[id]);
    machine.node(id).cpu().load(p);
    machine.node(id).cpu().start_process(p.symbol("main"), 0xA000, 1);
    sim.spawn(machine.node(id).cpu().run());
  }
  sim.run();
  EXPECT_TRUE(machine.node(0).cpu().halted());
  EXPECT_EQ(machine.node(0).cpu().read_word(0x2000), 1000u + 1 + 3 + 2);
  EXPECT_GT(machine.total_link_bytes(), 0u);
}

}  // namespace
}  // namespace fpst::mocc
