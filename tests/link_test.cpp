// Tests for the serial link model: the paper's protocol timings (13 bit
// times per byte => 0.5 MB/s, 5 us DMA startup, 16 us per 64-bit word),
// direction independence, sublink multiplexing and FIFO bandwidth sharing.
#include <gtest/gtest.h>

#include <vector>

#include "link/link.hpp"

namespace fpst::link {
namespace {

using namespace fpst::sim::literals;
using sim::Proc;
using sim::SimTime;
using sim::Simulator;

TEST(LinkParams, PaperConstants) {
  EXPECT_EQ(LinkParams::kPhysicalLinks, 4);
  EXPECT_EQ(LinkParams::kSublinksPerLink, 4);
  EXPECT_EQ(LinkParams::kSublinksPerNode, 16);
  EXPECT_EQ(LinkParams::kBitTimesPerByte, 13) << "8+2+1 out, 2 ack back";
  EXPECT_DOUBLE_EQ(LinkParams::unidir_bandwidth_mb_s(), 0.5);
  EXPECT_EQ(LinkParams::dma_startup(), 5_us);
  // A 64-bit word moved alone between nodes: 8 bytes at 2 us each = 16 us of
  // wire time (the paper's "16 us" excludes startup and framing).
  EXPECT_EQ(8 * LinkParams::byte_time(), 16_us);
}

Packet make_packet(std::size_t n, std::uint8_t sublink = 0) {
  Packet p;
  p.sublink = sublink;
  p.payload.assign(n, 0xab);
  return p;
}

Proc do_send(Link* link, int side, Packet p, SimTime* done, Simulator* sim) {
  co_await link->transmit(side, std::move(p));
  if (done != nullptr) {
    *done = sim->now();
  }
}

Proc do_recv(Link* link, int side, int sublink, Packet* out, SimTime* when,
             Simulator* sim) {
  *out = co_await link->inbox(side, sublink).recv();
  if (when != nullptr) {
    *when = sim->now();
  }
}

TEST(Link, SingleTransferTiming) {
  Simulator sim;
  Link link{sim};
  Packet got;
  SimTime arrival{};
  sim.spawn(do_recv(&link, 1, 0, &got, &arrival, &sim));
  sim.spawn(do_send(&link, 0, make_packet(100), nullptr, &sim));
  sim.run();
  EXPECT_EQ(got.payload.size(), 100u);
  // startup + (100 payload + 8 header) bytes * 2 us
  EXPECT_EQ(arrival, 5_us + 108 * LinkParams::byte_time());
}

TEST(Link, DirectionsAreIndependent) {
  Simulator sim;
  Link link{sim};
  Packet a;
  Packet b;
  SimTime ta{};
  SimTime tb{};
  sim.spawn(do_recv(&link, 1, 0, &a, &ta, &sim));
  sim.spawn(do_recv(&link, 0, 0, &b, &tb, &sim));
  sim.spawn(do_send(&link, 0, make_packet(50), nullptr, &sim));
  sim.spawn(do_send(&link, 1, make_packet(50), nullptr, &sim));
  sim.run();
  // Full duplex: both directions complete in one transfer time.
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(ta, LinkParams::transfer_time(50));
}

TEST(Link, SameDirectionSendsSerialise) {
  Simulator sim;
  Link link{sim};
  Packet a;
  Packet b;
  SimTime ta{};
  SimTime tb{};
  sim.spawn(do_recv(&link, 1, 0, &a, &ta, &sim));
  sim.spawn(do_recv(&link, 1, 1, &b, &tb, &sim));
  sim.spawn(do_send(&link, 0, make_packet(50, 0), nullptr, &sim));
  sim.spawn(do_send(&link, 0, make_packet(50, 1), nullptr, &sim));
  sim.run();
  const SimTime one = LinkParams::transfer_time(50);
  EXPECT_EQ(ta, one);
  EXPECT_EQ(tb, 2 * one) << "sublinks share one wire FIFO";
}

TEST(Link, SublinkDemuxRoutesToMatchingInbox) {
  Simulator sim;
  Link link{sim};
  Packet got2;
  Packet got3;
  Packet p2 = make_packet(4, 2);
  p2.tag = 22;
  Packet p3 = make_packet(4, 3);
  p3.tag = 33;
  sim.spawn(do_recv(&link, 1, 3, &got3, nullptr, &sim));
  sim.spawn(do_recv(&link, 1, 2, &got2, nullptr, &sim));
  sim.spawn(do_send(&link, 0, std::move(p3), nullptr, &sim));
  sim.spawn(do_send(&link, 0, std::move(p2), nullptr, &sim));
  sim.run();
  EXPECT_EQ(got2.tag, 22);
  EXPECT_EQ(got3.tag, 33);
}

TEST(Link, SenderBlocksUntilReceiverTakesPacket) {
  // Transputer-style links: the byte-level acknowledge protocol means a
  // transfer only completes when the receiving end is listening.
  Simulator sim;
  Link link{sim};
  SimTime send_done{};
  Packet got;
  sim.spawn(do_send(&link, 0, make_packet(1), &send_done, &sim));
  sim.spawn([](Link* l, Packet* out, Simulator* s) -> Proc {
    co_await sim::Delay{1_ms};
    *out = co_await l->inbox(1, 0).recv();
    (void)s;
  }(&link, &got, &sim));
  sim.run();
  EXPECT_EQ(send_done, 1_ms);
}

TEST(Link, StatsAccumulatePerDirection) {
  Simulator sim;
  Link link{sim};
  Packet a;
  sim.spawn(do_recv(&link, 1, 0, &a, nullptr, &sim));
  sim.spawn(do_send(&link, 0, make_packet(92), nullptr, &sim));
  sim.run();
  EXPECT_EQ(link.bytes_sent(0), 100u);  // 92 + 8 header
  EXPECT_EQ(link.packets_sent(0), 1u);
  EXPECT_EQ(link.bytes_sent(1), 0u);
  EXPECT_EQ(link.busy_time(0), LinkParams::transfer_time(92));
}

TEST(Link, MeasuredBandwidthApproachesHalfMegabytePerSecond) {
  // Stream 100 KB in 1 KB packets and check the sustained rate lands a
  // little under 0.5 MB/s (header + startup overhead).
  Simulator sim;
  Link link{sim};
  constexpr int kPackets = 100;
  constexpr std::size_t kBytes = 1024;
  sim.spawn([](Link* l, Simulator*) -> Proc {
    for (int i = 0; i < kPackets; ++i) {
      co_await l->transmit(0, make_packet(kBytes));
    }
  }(&link, &sim));
  sim.spawn([](Link* l) -> Proc {
    for (int i = 0; i < kPackets; ++i) {
      (void)co_await l->inbox(1, 0).recv();
    }
  }(&link));
  sim.run();
  const double mb = kPackets * static_cast<double>(kBytes) / 1e6;
  const double rate = mb / sim.now().sec();
  EXPECT_GT(rate, 0.45);
  EXPECT_LT(rate, 0.5);
}

TEST(NodeLinks, AttachAndRoute) {
  Simulator sim;
  Link cable{sim};
  NodeLinks a;
  NodeLinks b;
  a.attach(2, cable, 0);
  b.attach(0, cable, 1);
  EXPECT_TRUE(a.attached(2));
  EXPECT_FALSE(a.attached(0));
  EXPECT_EQ(a.attached_count(), 1);

  Packet got;
  sim.spawn([](NodeLinks* links, Packet* out) -> Proc {
    *out = co_await links->inbox(0, 1).recv();
  }(&b, &got));
  sim.spawn([](NodeLinks* links) -> Proc {
    Packet p;
    p.sublink = 1;
    p.tag = 9;
    p.payload = {1, 2, 3};
    co_await links->send(2, std::move(p));
  }(&a));
  sim.run();
  EXPECT_EQ(got.tag, 9);
  EXPECT_EQ(got.payload, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(NodeLinks, UnwiredPortThrows) {
  NodeLinks a;
  EXPECT_THROW(a.inbox(1, 0), std::logic_error);
}

}  // namespace
}  // namespace fpst::link
