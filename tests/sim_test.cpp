// Unit and property tests for the discrete-event kernel: time arithmetic,
// event ordering, coroutine processes, synchronisation primitives.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/proc.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/time.hpp"

namespace fpst::sim {
namespace {

using namespace fpst::sim::literals;

TEST(SimTime, UnitFactoriesAgree) {
  EXPECT_EQ(SimTime::nanoseconds(1).ps(), 1000);
  EXPECT_EQ(SimTime::microseconds(1), SimTime::nanoseconds(1000));
  EXPECT_EQ(SimTime::milliseconds(1), SimTime::microseconds(1000));
  EXPECT_EQ(SimTime::seconds(1), SimTime::milliseconds(1000));
  EXPECT_EQ(125_ns, SimTime::picoseconds(125'000));
}

TEST(SimTime, PaperConstantsAreExact) {
  // 62.5 ns (one 32-bit word per vector-register beat) must be exact.
  const SimTime half_cycle = 125_ns / 2;
  EXPECT_EQ(half_cycle.ps(), 62'500);
  EXPECT_EQ(half_cycle * 2, 125_ns);
}

TEST(SimTime, Arithmetic) {
  EXPECT_EQ((3_us + 500_ns).ps(), 3'500'000);
  EXPECT_EQ((3_us - 500_ns).ps(), 2'500'000);
  EXPECT_EQ(4_us / 2_us, 2.0);
  EXPECT_LT(1_ns, 1_us);
  SimTime t = 1_us;
  t += 1_us;
  t -= 250_ns;
  EXPECT_EQ(t.ps(), 1'750'000);
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ((125_ns).to_string(), "125 ns");
  EXPECT_EQ((5_us).to_string(), "5 us");
  EXPECT_EQ((15_s).to_string(), "15 s");
  EXPECT_EQ((125_ns / 2).to_string(), "62.500 ns");
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3_us, [&] { order.push_back(3); });
  sim.schedule(1_us, [&] { order.push_back(1); });
  sim.schedule(2_us, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3_us);
}

TEST(Simulator, SimultaneousEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1_us, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1_us, [&] { fired |= 1; });
  sim.schedule(10_us, [&] { fired |= 2; });
  sim.run_until(5_us);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 5_us);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.schedule(5_us, [] {});
  sim.run();
  ASSERT_EQ(sim.now(), 5_us);
  // The guard must hold in release builds too (it used to be only an
  // assert, so NDEBUG builds silently corrupted deterministic ordering).
  EXPECT_THROW(sim.schedule_at(1_us, [] {}), std::logic_error);
}

TEST(Simulator, MixedArmsAtOneInstantFireInScheduleOrder) {
  // Closure events (slab arm) and coroutine resumptions (fast arm) share
  // one dispatch order: same-instant events fire in scheduling order
  // regardless of which arm carries them.
  Simulator sim;
  std::vector<int> log;
  auto marker = [](std::vector<int>* out, int id) -> Proc {
    out->push_back(id);
    co_return;
  };
  sim.schedule(SimTime{}, [&] { log.push_back(0); });
  sim.spawn(marker(&log, 1));
  sim.schedule(SimTime{}, [&] { log.push_back(2); });
  sim.spawn(marker(&log, 3));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
}

Proc quick_root(int* done) {
  co_await Delay{1_us};
  ++*done;
}

Proc long_root() {
  co_await Delay{100_us};
}

TEST(Simulator, FinishedRootsAreReapedMidRun) {
  // A caller driving the simulator one step() at a time must not retain
  // every completed root coroutine frame until run() returns.
  Simulator sim;
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    sim.spawn(quick_root(&done));
  }
  sim.spawn(long_root());
  EXPECT_EQ(sim.live_roots(), 9u);
  while (done < 8 && sim.step()) {
  }
  EXPECT_EQ(done, 8);
  EXPECT_FALSE(sim.idle());
  EXPECT_EQ(sim.live_roots(), 1u);
  sim.run();
  EXPECT_EQ(sim.live_roots(), 0u);
  EXPECT_EQ(sim.now(), 100_us);
}

TEST(Simulator, NestedSchedulingAdvancesTime) {
  Simulator sim;
  SimTime seen{};
  sim.schedule(1_us, [&] {
    sim.schedule(1_us, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 2_us);
}

Proc delay_then_mark(SimTime d, SimTime* out) {
  co_await Delay{d};
  Simulator& sim = co_await ThisSim{};
  *out = sim.now();
}

TEST(Proc, DelayAdvancesSimulatedTime) {
  Simulator sim;
  SimTime out{};
  sim.spawn(delay_then_mark(125_ns, &out));
  sim.run();
  EXPECT_EQ(out, 125_ns);
}

Proc sequential_child(std::vector<int>* log, int id, SimTime d) {
  co_await Delay{d};
  log->push_back(id);
}

Proc sequential_parent(std::vector<int>* log) {
  co_await sequential_child(log, 1, 2_us);
  co_await sequential_child(log, 2, 1_us);
  log->push_back(3);
}

TEST(Proc, StructuredJoinIsSequential) {
  Simulator sim;
  std::vector<int> log;
  sim.spawn(sequential_parent(&log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3_us);
}

Proc par_parent(std::vector<int>* log) {
  // Occam PAR: both children run concurrently; total elapsed time is the
  // max of the two, not the sum.
  co_await WhenAll{sequential_child(log, 1, 1_us),
                   sequential_child(log, 2, 3_us)};
  log->push_back(3);
}

TEST(Proc, WhenAllJoinsConcurrently) {
  Simulator sim;
  std::vector<int> log;
  sim.spawn(par_parent(&log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3_us);
}

Proc throwing_proc() {
  co_await Delay{1_us};
  throw std::runtime_error("boom");
}

TEST(Proc, RootExceptionSurfacesAsProcError) {
  Simulator sim;
  sim.spawn(throwing_proc());
  EXPECT_THROW(sim.run(), ProcError);
}

Proc catching_parent(bool* caught) {
  try {
    co_await throwing_proc();
  } catch (const std::runtime_error& e) {
    *caught = std::string(e.what()) == "boom";
  }
}

TEST(Proc, ChildExceptionPropagatesToParent) {
  Simulator sim;
  bool caught = false;
  sim.spawn(catching_parent(&caught));
  sim.run();
  EXPECT_TRUE(caught);
}

Proc event_waiter(Event* ev, int* count) {
  co_await ev->wait();
  ++*count;
}

Proc event_notifier(Event* ev) {
  co_await Delay{5_us};
  ev->notify_all();
}

TEST(Sync, EventWakesAllWaiters) {
  Simulator sim;
  Event ev{sim};
  int count = 0;
  sim.spawn(event_waiter(&ev, &count));
  sim.spawn(event_waiter(&ev, &count));
  sim.spawn(event_notifier(&ev));
  sim.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 5_us);
}

Proc sem_user(Semaphore* sem, SimTime hold, std::vector<SimTime>* acquired,
              Simulator* sim) {
  co_await sem->acquire();
  acquired->push_back(sim->now());
  co_await Delay{hold};
  sem->release();
}

TEST(Sync, SemaphoreSerialisesExclusiveResource) {
  Simulator sim;
  Semaphore sem{sim, 1};
  std::vector<SimTime> acquired;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(sem_user(&sem, 10_us, &acquired, &sim));
  }
  sim.run();
  ASSERT_EQ(acquired.size(), 3u);
  EXPECT_EQ(acquired[0], 0_us);
  EXPECT_EQ(acquired[1], 10_us);
  EXPECT_EQ(acquired[2], 20_us);
}

TEST(Sync, SemaphoreAllowsCountConcurrent) {
  Simulator sim;
  Semaphore sem{sim, 2};
  std::vector<SimTime> acquired;
  for (int i = 0; i < 4; ++i) {
    sim.spawn(sem_user(&sem, 10_us, &acquired, &sim));
  }
  sim.run();
  ASSERT_EQ(acquired.size(), 4u);
  EXPECT_EQ(acquired[0], 0_us);
  EXPECT_EQ(acquired[1], 0_us);
  EXPECT_EQ(acquired[2], 10_us);
  EXPECT_EQ(acquired[3], 10_us);
}

Proc chan_sender(Channel<int>* ch, int base, int n) {
  for (int i = 0; i < n; ++i) {
    co_await ch->send(base + i);
    co_await Delay{1_us};
  }
}

Proc chan_receiver(Channel<int>* ch, std::vector<int>* got, int n) {
  for (int i = 0; i < n; ++i) {
    got->push_back(co_await ch->recv());
  }
}

TEST(Sync, ChannelRendezvousTransfersInOrder) {
  Simulator sim;
  Channel<int> ch{sim};
  std::vector<int> got;
  sim.spawn(chan_sender(&ch, 100, 5));
  sim.spawn(chan_receiver(&ch, &got, 5));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{100, 101, 102, 103, 104}));
}

Proc chan_blocking_sender(Channel<int>* ch, Simulator* sim, SimTime* done) {
  co_await ch->send(7);
  *done = sim->now();
}

Proc chan_late_receiver(Channel<int>* ch, int* value) {
  co_await Delay{9_us};
  *value = co_await ch->recv();
}

TEST(Sync, SendBlocksUntilReceiverArrives) {
  Simulator sim;
  Channel<int> ch{sim};
  SimTime done{};
  int value = 0;
  sim.spawn(chan_blocking_sender(&ch, &sim, &done));
  sim.spawn(chan_late_receiver(&ch, &value));
  sim.run();
  EXPECT_EQ(value, 7);
  EXPECT_EQ(done, 9_us);
}

TEST(Simulator, RandomisedSchedulesDispatchByTimeThenScheduleOrder) {
  // Stress for the bucketed event queue: heavy same-time collisions, many
  // distinct times (bucket-pool reuse, hash growth and erasure), and
  // re-entrant scheduling from inside events. The contract: dispatch is a
  // stable sort of scheduling order by time.
  Simulator sim;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  std::vector<std::pair<std::int64_t, int>> fired;  // (time ps, schedule seq)
  int seq = 0;
  std::function<void(SimTime)> post = [&](SimTime t) {
    const int my_seq = seq++;
    sim.schedule_at(t, [&, t, my_seq] {
      fired.emplace_back(t.ps(), my_seq);
      // A quarter of the events re-entrantly schedule a follow-up.
      if (next() % 4 == 0) {
        post(sim.now() + SimTime::picoseconds(
                             static_cast<std::int64_t>(next() % 7)));
      }
    });
  };
  for (int i = 0; i < 2000; ++i) {
    // Two clustering regimes: dense collisions (mod 97) and mostly-unique
    // times (mod 1'000'003).
    const std::uint64_t r = next();
    const std::int64_t ps = static_cast<std::int64_t>(
        i % 2 == 0 ? r % 97 : r % 1'000'003);
    post(SimTime::picoseconds(ps));
  }
  sim.run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(seq));
  for (std::size_t i = 1; i < fired.size(); ++i) {
    // Strictly increasing in (time, seq): equal times must preserve
    // scheduling order, and seq values never repeat.
    EXPECT_LT(fired[i - 1], fired[i])
        << "event " << i << " dispatched out of order";
  }
}

// Determinism property: the same program must produce the identical event
// trace on every run.
class DeterminismTest : public ::testing::TestWithParam<int> {};

Proc det_worker(Channel<int>* ch, int id, std::vector<int>* log) {
  co_await Delay{SimTime::nanoseconds(100 * (id % 3))};
  co_await ch->send(id);
  log->push_back(id);
}

Proc det_sink(Channel<int>* ch, int n, std::vector<int>* log) {
  for (int i = 0; i < n; ++i) {
    log->push_back(1000 + co_await ch->recv());
  }
}

std::vector<int> run_det_workload(int workers) {
  Simulator sim;
  Channel<int> ch{sim};
  std::vector<int> log;
  for (int i = 0; i < workers; ++i) {
    sim.spawn(det_worker(&ch, i, &log));
  }
  sim.spawn(det_sink(&ch, workers, &log));
  sim.run();
  return log;
}

TEST_P(DeterminismTest, RepeatedRunsProduceIdenticalTraces) {
  const int workers = GetParam();
  const std::vector<int> first = run_det_workload(workers);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(run_det_workload(workers), first) << "workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, DeterminismTest,
                         ::testing::Values(1, 2, 5, 16, 64));

}  // namespace
}  // namespace fpst::sim
