// Tests for the dual-ported node memory: geometry, functional access, row
// transfers, parity fault injection, and the paper's bandwidth constants.
#include <gtest/gtest.h>

#include <random>

#include "mem/memory.hpp"

namespace fpst::mem {
namespace {

TEST(MemParams, PaperGeometry) {
  EXPECT_EQ(MemParams::kBytes, 1u << 20) << "1 MByte per node";
  EXPECT_EQ(MemParams::kWords, 256u * 1024u) << "256K 32-bit words";
  EXPECT_EQ(MemParams::kRows, 1024u);
  EXPECT_EQ(MemParams::kBankARows, 256u) << "bank A: 64 KWords";
  EXPECT_EQ(MemParams::kBankBRows, 768u) << "bank B: 192 KWords";
  EXPECT_EQ(MemParams::kElems32, 256u) << "256 x 32-bit per vector";
  EXPECT_EQ(MemParams::kElems64, 128u) << "128 x 64-bit per vector";
}

TEST(MemParams, PaperBandwidths) {
  // (4 bytes) / (0.4 us) = 10 MB/s; (1024 bytes) / (0.4 us) = 2560 MB/s.
  EXPECT_DOUBLE_EQ(MemParams::cp_bandwidth_mb_s(), 10.0);
  EXPECT_DOUBLE_EQ(MemParams::row_bandwidth_mb_s(), 2560.0);
  // Gather-scatter: 1.6 us per 64-bit element, 0.8 us per 32-bit element.
  EXPECT_EQ(MemParams::gather_move64(), sim::SimTime::nanoseconds(1600));
  EXPECT_EQ(MemParams::gather_move32(), sim::SimTime::nanoseconds(800));
}

TEST(NodeMemory, WordReadWriteRoundTrip) {
  NodeMemory m;
  m.write_word(0x100, 0xdeadbeef);
  EXPECT_EQ(m.read_word(0x100), 0xdeadbeefu);
  // Unaligned addresses refer to the containing aligned word.
  EXPECT_EQ(m.read_word(0x102), 0xdeadbeefu);
  m.write_word(MemParams::kBytes - 4, 42);
  EXPECT_EQ(m.read_word(MemParams::kBytes - 4), 42u);
}

TEST(NodeMemory, ByteAccess) {
  NodeMemory m;
  m.write_word(0x40, 0x04030201);
  EXPECT_EQ(m.read_byte(0x40), 0x01) << "little-endian model";
  EXPECT_EQ(m.read_byte(0x43), 0x04);
  m.write_byte(0x41, 0xff);
  EXPECT_EQ(m.read_word(0x40), 0x0403ff01u);
}

TEST(NodeMemory, RowTransferRoundTrip) {
  NodeMemory m;
  VectorRegister reg;
  for (std::size_t i = 0; i < MemParams::kElems64; ++i) {
    reg.set_u64(i, 0x1000 + i);
  }
  m.store_row(5, reg);
  VectorRegister out;
  m.load_row(5, out);
  for (std::size_t i = 0; i < MemParams::kElems64; ++i) {
    EXPECT_EQ(out.u64(i), 0x1000 + i);
  }
}

TEST(NodeMemory, RowAndWordPortsSeeTheSameBytes) {
  // Dual-ported: the CP writes words, the vector port reads the same row.
  NodeMemory m;
  const std::size_t row = 300;
  const std::uint32_t base = NodeMemory::address_of_row(row);
  for (std::uint32_t w = 0; w < 256; ++w) {
    m.write_word(base + 4 * w, w * 3 + 1);
  }
  VectorRegister reg;
  m.load_row(row, reg);
  for (std::size_t w = 0; w < 256; ++w) {
    EXPECT_EQ(reg.u32(w), w * 3 + 1);
  }
}

TEST(NodeMemory, BankGeometry) {
  EXPECT_EQ(NodeMemory::bank_of_row(0), Bank::A);
  EXPECT_EQ(NodeMemory::bank_of_row(255), Bank::A);
  EXPECT_EQ(NodeMemory::bank_of_row(256), Bank::B);
  EXPECT_EQ(NodeMemory::bank_of_row(1023), Bank::B);
  EXPECT_EQ(NodeMemory::row_of_address(0x400), 1u);
  EXPECT_EQ(NodeMemory::address_of_row(2), 0x800u);
}

TEST(NodeMemory, ParityDetectsSingleBitFault) {
  NodeMemory m;
  m.write_word(0x200, 0x12345678);
  m.corrupt_byte(0x201, 3);
  EXPECT_FALSE(m.take_parity_error().has_value()) << "not yet read";
  (void)m.read_word(0x200);
  const auto err = m.take_parity_error();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->byte_address, 0x201u);
  EXPECT_EQ(m.parity_errors_detected(), 1u);
  // The error is consumed and repaired: subsequent reads are clean.
  (void)m.read_word(0x200);
  EXPECT_FALSE(m.take_parity_error().has_value());
}

TEST(NodeMemory, ParityDetectsFaultThroughRowPort) {
  NodeMemory m;
  VectorRegister reg;
  reg.set_u64(0, 0xabcdef);
  m.store_row(10, reg);
  m.corrupt_byte(NodeMemory::address_of_row(10) + 2, 0);
  VectorRegister out;
  m.load_row(10, out);
  EXPECT_TRUE(m.take_parity_error().has_value());
}

TEST(NodeMemory, CleanTrafficRaisesNoParityErrors) {
  NodeMemory m;
  std::mt19937 rng{7};
  std::uniform_int_distribution<std::uint32_t> addr(0, MemParams::kBytes - 4);
  std::uniform_int_distribution<std::uint32_t> val;
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t a = addr(rng) & ~3u;
    m.write_word(a, val(rng));
    (void)m.read_word(a);
  }
  EXPECT_EQ(m.parity_errors_detected(), 0u);
}

TEST(NodeMemory, StatsCountTraffic) {
  NodeMemory m;
  m.reset_stats();
  m.write_word(0, 1);
  (void)m.read_word(0);
  VectorRegister reg;
  m.load_row(0, reg);
  EXPECT_EQ(m.word_accesses(), 2u);
  EXPECT_EQ(m.row_accesses(), 1u);
}

TEST(VectorRegister, TypedViewsShareBytes) {
  VectorRegister reg;
  reg.set_u64(0, 0x0123456789abcdefull);
  EXPECT_EQ(reg.u32(0), 0x89abcdefu);
  EXPECT_EQ(reg.u32(1), 0x01234567u);
  reg.set_f64(1, fp::T64::from_double(2.5));
  EXPECT_EQ(reg.f64(1).to_double(), 2.5);
}

}  // namespace
}  // namespace fpst::mem
