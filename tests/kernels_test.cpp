// Integration tests: every distributed kernel verified against its host
// reference across machine sizes, plus the paper-specific behaviours
// (physical row movement, gather costs, communication/computation balance).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "kernels/kernels.hpp"

namespace fpst::kernels {
namespace {

using namespace fpst::sim::literals;

class SaxpyDims : public ::testing::TestWithParam<int> {};

TEST_P(SaxpyDims, MatchesHostAtEverySize) {
  const int dim = GetParam();
  const std::size_t n = 1000;
  const double a = 2.5;
  const KernelResult r = run_saxpy(dim, n, a);
  ASSERT_EQ(r.output.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(r.output[i], a * synth(1, i) + synth(2, i)) << i;
  }
  EXPECT_EQ(r.flops, 2 * n);
}

INSTANTIATE_TEST_SUITE_P(Dims, SaxpyDims, ::testing::Values(0, 1, 3, 5));

TEST(Saxpy, ThroughputScalesWithNodes) {
  const std::size_t n = 1 << 14;
  const KernelResult r1 = run_saxpy(0, n, 2.0);
  const KernelResult r8 = run_saxpy(3, n, 2.0);
  // Embarrassingly parallel: 8 nodes should be close to 8x faster.
  const double speedup = r1.elapsed / r8.elapsed;
  EXPECT_GT(speedup, 7.0);
  EXPECT_LE(speedup, 8.1);
}

TEST(Saxpy32, MatchesHostFloatAndRunsFasterPerElement) {
  const std::size_t n = 4000;
  const float a = 1.5f;
  const KernelResult r32 = run_saxpy32(2, n, a);
  ASSERT_EQ(r32.output.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const float expect = a * static_cast<float>(synth(1, i)) +
                         static_cast<float>(synth(2, i));
    EXPECT_EQ(static_cast<float>(r32.output[i]), expect) << i;
  }
  // Same element count, same per-element beat (one result / 125 ns), but
  // fewer row transfers: the 32-bit run must not be slower than 64-bit.
  const KernelResult r64 = run_saxpy(2, n, static_cast<double>(a));
  EXPECT_LE(r32.elapsed.ps(), r64.elapsed.ps());
}

TEST(Dot, MatchesHostAcrossMachineSizes) {
  const std::size_t n = 2000;
  double host = 0;
  for (std::size_t i = 0; i < n; ++i) {
    host += synth(1, i) * synth(2, i);
  }
  for (int dim : {0, 2, 4}) {
    const KernelResult r = run_dot(dim, n);
    EXPECT_NEAR(r.checksum, host, 1e-9 * std::fabs(host) + 1e-12)
        << "dim " << dim;
  }
}

TEST(Dot, LargerMachinesMoveMoreLinkBytes) {
  const std::size_t n = 2000;
  EXPECT_EQ(run_dot(0, n).link_bytes, 0u);
  const KernelResult r2 = run_dot(2, n);
  const KernelResult r4 = run_dot(4, n);
  EXPECT_GT(r4.link_bytes, r2.link_bytes) << "allreduce traffic grows";
}

TEST(Matmul, MatchesHostReference) {
  const std::size_t n = 32;
  for (int dim : {0, 2}) {
    const KernelResult r = run_matmul(dim, n);
    std::vector<double> a(n * n);
    std::vector<double> b(n * n);
    for (std::size_t i = 0; i < n * n; ++i) {
      a[i] = synth(11, i);
      b[i] = synth(12, i);
    }
    const std::vector<double> ref = host_matmul(a, b, n);
    ASSERT_EQ(r.output.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(r.output[i], ref[i], 1e-12) << "dim " << dim << " i " << i;
    }
    EXPECT_EQ(r.flops, 2 * n * n * n / (1u << static_cast<unsigned>(dim)) *
                           (1u << static_cast<unsigned>(dim)))
        << "2n^3 flops in total";
  }
}

TEST(Matmul, RejectsIndivisibleSizes) {
  EXPECT_THROW(run_matmul(3, 20), std::invalid_argument);
}

TEST(Fft, MatchesHostReference) {
  const std::size_t n = 256;
  for (int dim : {0, 2, 3}) {
    const KernelResult r = run_fft(dim, n);
    std::vector<double> re(n);
    std::vector<double> im(n);
    for (std::size_t i = 0; i < n; ++i) {
      re[i] = synth(21, i);
      im[i] = synth(22, i);
    }
    host_fft(re, im);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(r.output[2 * i], re[i], 1e-9) << "dim " << dim;
      EXPECT_NEAR(r.output[2 * i + 1], im[i], 1e-9);
    }
  }
}

TEST(Fft, RejectsBadSizes) {
  EXPECT_THROW(run_fft(2, 100), std::invalid_argument);
  EXPECT_THROW(run_fft(3, 8), std::invalid_argument);
}

TEST(Gauss, UpperFactorMatchesHostBitForBit) {
  for (int dim : {0, 2}) {
    const KernelResult r = run_gauss(dim, 48);
    EXPECT_EQ(r.checksum, 0.0)
        << "dim " << dim
        << ": machine U must equal the host algorithm exactly";
  }
}

TEST(Gauss, PivotingActuallyHappened) {
  // With a random matrix the largest |column| entry is almost never already
  // on the diagonal; link traffic from row swaps proves physical movement.
  const KernelResult r = run_gauss(2, 48);
  EXPECT_GT(r.link_bytes, 0u) << "pivot rows crossed links";
}

TEST(Laplace, MatchesHostJacobi) {
  const std::size_t g = 32;
  const int iters = 5;
  for (int dim : {0, 2}) {
    const KernelResult r = run_laplace(dim, g, iters);
    std::vector<double> grid(g * g);
    for (std::size_t i = 0; i < g * g; ++i) {
      grid[i] = synth(41, i);
    }
    const std::vector<double> ref = host_laplace(grid, g, iters);
    ASSERT_EQ(r.output.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(r.output[i], ref[i]) << "dim " << dim << " cell " << i;
    }
  }
}

TEST(RecordSort, BothModesProduceSortedKeys) {
  for (bool physical : {true, false}) {
    const KernelResult r = run_record_sort(64, physical);
    EXPECT_TRUE(std::is_sorted(r.output.begin(), r.output.end()))
        << (physical ? "physical" : "pointer");
  }
}

TEST(RecordSort, PhysicalMovementBeatsPointerGatherDecisively) {
  // §II Memory: rows move at 2560 MB/s through the vector registers while
  // CP gather runs at ~5 MB/s for 64-bit elements.
  const KernelResult phys = run_record_sort(128, true);
  const KernelResult ptr = run_record_sort(128, false);
  EXPECT_GT(ptr.elapsed / phys.elapsed, 3.0);
}

class DistributedSortDims : public ::testing::TestWithParam<int> {};

TEST_P(DistributedSortDims, SortsGloballyAtEverySize) {
  const int dim = GetParam();
  const std::size_t n = 512;
  const KernelResult r = run_distributed_sort(dim, n);
  ASSERT_EQ(r.output.size(), n);
  EXPECT_TRUE(std::is_sorted(r.output.begin(), r.output.end()));
  // Same multiset as the input.
  std::vector<double> expect(n);
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = synth(91, i);
  }
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(r.output, expect);
}

INSTANTIATE_TEST_SUITE_P(Dims, DistributedSortDims,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(DistributedSort, ExchangesUseOnlySingleHopLinks) {
  sim::Simulator probe;  // (not used; the kernel builds its own machine)
  (void)probe;
  const KernelResult r = run_distributed_sort(3, 256);
  EXPECT_GT(r.link_bytes, 0u);
}

TEST(Synth, DeterministicAndBounded) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double v = synth(7, i);
    EXPECT_EQ(v, synth(7, i));
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
  EXPECT_NE(synth(1, 5), synth(2, 5));
}

}  // namespace
}  // namespace fpst::kernels
