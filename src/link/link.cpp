#include "link/link.hpp"

#include <stdexcept>
#include <utility>

namespace fpst::link {

namespace {

/// Receiver-side half of a cross-shard transfer: performs the rendezvous
/// into the inbox locally on the destination shard, buffering the packet in
/// its own frame until a receiver arrives.
sim::Proc cross_deliver(sim::Channel<Packet>& box, Packet p) {
  co_await box.send(std::move(p));
}

}  // namespace

Link::Link(sim::Simulator& sim) : sim_{&sim} {
  for (auto& d : dir_) {
    d = std::make_unique<Direction>(sim);
  }
  for (auto& side : inboxes_) {
    for (auto& ch : side) {
      ch = std::make_unique<sim::Channel<Packet>>(sim);
    }
  }
}

sim::Proc Link::transmit(int from_side, Packet p) {
  if (from_side != 0 && from_side != 1) {
    throw std::logic_error("Link::transmit: bad side");
  }
  if (p.sublink >= LinkParams::kSublinksPerLink) {
    throw std::logic_error("Link::transmit: bad sublink");
  }
  Direction& d = *dir_[static_cast<std::size_t>(from_side)];
  const int to_side = 1 - from_side;
  // One DMA at a time per direction; sublinks queue FIFO and thereby share
  // the physical bandwidth.
  co_await d.mutex.acquire();
  const sim::SimTime start = (co_await sim::ThisSim{}).now();
  co_await sim::Delay{LinkParams::dma_startup()};
  co_await sim::Delay{LinkParams::wire_time(p.payload.size())};
  d.bytes += p.wire_bytes();
  ++d.packets;
  const sim::SimTime elapsed = (co_await sim::ThisSim{}).now() - start;
  d.busy += elapsed;
  if (perf::PerfSink* sink = sink_[static_cast<std::size_t>(from_side)]) {
    const auto wire = static_cast<std::uint64_t>(p.wire_bytes());
    sink->count("bytes", wire);
    sink->count("payload_bytes", p.payload.size());
    sink->count("packets", 1);
    // Two acknowledge bits return per byte sent (13 bit times per byte).
    sink->count("acks", 2 * wire);
    sink->count("dma_starts", 1);
    sink->busy("busy", elapsed);
    sink->busy(std::string("busy.sublink") + std::to_string(p.sublink),
               elapsed);
    // Traced packets prefix the span name with the trace id so the tscope
    // stitcher (perf/tscope.hpp) can join this hop into the flight record.
    std::string name;
    if (p.trace != 0) {
      name += "m";
      name += std::to_string(p.trace);
      name += " ";
    }
    name += "tx->node";
    name += std::to_string(p.dst);
    name += " ";
    name += std::to_string(p.payload.size());
    name += "B";
    sink->span(start, elapsed, std::move(name));
  }
  const int sub = p.sublink;
  sim::Channel<Packet>& box =
      *inboxes_[static_cast<std::size_t>(to_side)]
               [static_cast<std::size_t>(sub)];
  d.mutex.release();  // the wire frees as soon as the last ack returns
  co_await box.send(std::move(p));
}

sim::Channel<Packet>& Link::inbox(int side, int sublink) {
  return *inboxes_[static_cast<std::size_t>(side)]
                  [static_cast<std::size_t>(sublink)];
}

std::uint64_t Link::bytes_sent(int direction) const {
  return dir_[static_cast<std::size_t>(direction)]->bytes;
}

sim::SimTime Link::busy_time(int direction) const {
  return dir_[static_cast<std::size_t>(direction)]->busy;
}

std::uint64_t Link::packets_sent(int direction) const {
  return dir_[static_cast<std::size_t>(direction)]->packets;
}

CrossLink::CrossLink(sim::ParallelSim& psim, int shard0, int shard1)
    : psim_{&psim},
      shard_{shard0, shard1},
      sim_{&psim.shard(shard0), &psim.shard(shard1)} {
  for (std::size_t side = 0; side < 2; ++side) {
    // A direction's mutex belongs to the *sending* side's shard; the
    // receiving channels belong to the side that reads them.
    dir_[side] = std::make_unique<Direction>(*sim_[side]);
    for (auto& ch : inboxes_[side]) {
      ch = std::make_unique<sim::Channel<Packet>>(*sim_[side]);
    }
  }
}

sim::Proc CrossLink::transmit(int from_side, Packet p) {
  if (from_side != 0 && from_side != 1) {
    throw std::logic_error("CrossLink::transmit: bad side");
  }
  if (p.sublink >= LinkParams::kSublinksPerLink) {
    throw std::logic_error("CrossLink::transmit: bad sublink");
  }
  Direction& d = *dir_[static_cast<std::size_t>(from_side)];
  const int to_side = 1 - from_side;
  co_await d.mutex.acquire();
  const sim::SimTime start = (co_await sim::ThisSim{}).now();
  const sim::SimTime elapsed = LinkParams::transfer_time(p.payload.size());
  const auto wire = static_cast<std::uint64_t>(p.wire_bytes());
  const std::size_t payload_bytes = p.payload.size();
  const std::uint32_t trace = p.trace;
  const std::uint32_t dst = p.dst;
  const int sub = p.sublink;
  // Post the arrival *now*, at send start: it lands at start + transfer
  // time, which is at least the engine lookahead in the future, so the
  // conservative window can never admit it early. The packet itself rides
  // in the closure; trace is the deterministic same-instant merge key.
  {
    sim::Channel<Packet>& box =
        *inboxes_[static_cast<std::size_t>(to_side)]
                 [static_cast<std::size_t>(sub)];
    sim::Simulator& dest = *sim_[static_cast<std::size_t>(to_side)];
    psim_->post(shard_[static_cast<std::size_t>(from_side)],
                shard_[static_cast<std::size_t>(to_side)], start + elapsed,
                trace, [&dest, &box, pkt = std::move(p)]() mutable {
                  dest.spawn(cross_deliver(box, std::move(pkt)));
                });
  }
  co_await sim::Delay{elapsed};
  d.bytes += wire;
  ++d.packets;
  d.busy += elapsed;
  if (perf::PerfSink* sink = sink_[static_cast<std::size_t>(from_side)]) {
    sink->count("bytes", wire);
    sink->count("payload_bytes", payload_bytes);
    sink->count("packets", 1);
    sink->count("acks", 2 * wire);
    sink->count("dma_starts", 1);
    sink->busy("busy", elapsed);
    sink->busy(std::string("busy.sublink") + std::to_string(sub), elapsed);
    std::string name;
    if (trace != 0) {
      name += "m";
      name += std::to_string(trace);
      name += " ";
    }
    name += "tx->node";
    name += std::to_string(dst);
    name += " ";
    name += std::to_string(payload_bytes);
    name += "B";
    sink->span(start, elapsed, std::move(name));
  }
  d.mutex.release();
}

sim::Channel<Packet>& CrossLink::inbox(int side, int sublink) {
  return *inboxes_[static_cast<std::size_t>(side)]
                  [static_cast<std::size_t>(sublink)];
}

std::uint64_t CrossLink::bytes_sent(int direction) const {
  return dir_[static_cast<std::size_t>(direction)]->bytes;
}

sim::SimTime CrossLink::busy_time(int direction) const {
  return dir_[static_cast<std::size_t>(direction)]->busy;
}

std::uint64_t CrossLink::packets_sent(int direction) const {
  return dir_[static_cast<std::size_t>(direction)]->packets;
}

void NodeLinks::attach(int port, Link& cable, int side) {
  if (port < 0 || port >= LinkParams::kPhysicalLinks) {
    throw std::logic_error("NodeLinks::attach: bad port");
  }
  ports_[static_cast<std::size_t>(port)] = PortRef{&cable, side};
}

bool NodeLinks::attached(int port) const {
  return ports_[static_cast<std::size_t>(port)].cable != nullptr;
}

int NodeLinks::attached_count() const {
  int n = 0;
  for (const PortRef& p : ports_) {
    n += (p.cable != nullptr) ? 1 : 0;
  }
  return n;
}

sim::Proc NodeLinks::send(int port, Packet p) {
  const PortRef ref = ports_[static_cast<std::size_t>(port)];
  if (ref.cable == nullptr) {
    throw std::logic_error("NodeLinks::send: port not wired");
  }
  co_await ref.cable->transmit(ref.side, std::move(p));
}

sim::Channel<Packet>& NodeLinks::inbox(int port, int sublink) {
  const PortRef ref = ports_[static_cast<std::size_t>(port)];
  if (ref.cable == nullptr) {
    throw std::logic_error("NodeLinks::inbox: port not wired");
  }
  return ref.cable->inbox(ref.side, sublink);
}

}  // namespace fpst::link
