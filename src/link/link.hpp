// The T Series inter-node communication links (paper §II "Communications").
//
// Each control processor drives four serial, bidirectional links. Every
// 8-bit byte travels with two synchronisation bits and one stop bit (11 bit
// times) and requires two acknowledge bits from the receiver before the next
// byte — 13 bit times per byte in all, giving a maximum unidirectional
// bandwidth of ~0.5 MB/s per link (so a 64-bit word costs 16 us, the "130"
// in the paper's 1:13:130 balance ratio). Links operate by DMA with a
// startup of about 5 us and are multiplexed four ways in software, for 16
// bidirectional sublinks per node.
//
// Model: a Link is a full-duplex cable between two node ports. Each
// direction is an exclusive resource; concurrent sends on the same
// direction (e.g. from different sublinks) queue FIFO, which is exactly the
// "sublinks divide the available bandwidth" behaviour. Delivery demuxes on
// the packet's sublink number into per-sublink rendezvous channels.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "perf/sink.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/proc.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/time.hpp"

namespace fpst::link {

/// §II communications constants.
struct LinkParams {
  static constexpr int kPhysicalLinks = 4;   // per node
  static constexpr int kSublinksPerLink = 4;  // 4-way multiplex
  static constexpr int kSublinksPerNode = kPhysicalLinks * kSublinksPerLink;
  /// 8 data + 2 sync + 1 stop bits out, 2 ack bits back.
  static constexpr int kBitTimesPerByte = 13;
  /// Effective byte period: 2 us => 0.5 MB/s unidirectional.
  static constexpr sim::SimTime byte_time() {
    return sim::SimTime::nanoseconds(2000);
  }
  /// DMA startup ("about 5 us").
  static constexpr sim::SimTime dma_startup() {
    return sim::SimTime::microseconds(5);
  }
  /// Per-packet wire header: source, destination, tag, sublink, length.
  static constexpr std::size_t kHeaderBytes = 8;

  static constexpr double unidir_bandwidth_mb_s() {
    return 1.0 / byte_time().us();  // 0.5 MB/s
  }
  /// Wire time for a payload of n bytes (excluding DMA startup).
  static constexpr sim::SimTime wire_time(std::size_t payload_bytes) {
    return static_cast<std::int64_t>(payload_bytes + kHeaderBytes) *
           byte_time();
  }
  /// Full cost of one DMA message.
  static constexpr sim::SimTime transfer_time(std::size_t payload_bytes) {
    return dma_startup() + wire_time(payload_bytes);
  }
};

/// One message travelling over a link. Payload is raw bytes; higher layers
/// (net/occam) define their own framing inside it.
struct Packet {
  std::uint32_t src = 0;  ///< originating node id
  std::uint32_t dst = 0;  ///< final destination node id (multi-hop routing)
  std::uint16_t tag = 0;  ///< user message tag
  std::uint8_t sublink = 0;  ///< receive-side demux (0..3)
  std::uint8_t hops = 0;     ///< forwarding count, maintained by the router
  /// tscope trace id (0 = untraced). Side-band simulator metadata — not part
  /// of the wire format, so it never contributes to wire_bytes() or timing.
  std::uint32_t trace = 0;
  std::vector<std::uint8_t> payload;

  std::size_t wire_bytes() const {
    return payload.size() + LinkParams::kHeaderBytes;
  }
};

/// A full-duplex cable between two link ports. Side 0 and side 1 each own an
/// independent transmit direction.
class Link {
 public:
  explicit Link(sim::Simulator& sim);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Transmit `p` from `from_side` (0/1): acquires that direction, charges
  /// DMA startup + wire time, then offers the packet to the receiving
  /// side's per-sublink inbox (rendezvous: completes when the receiver
  /// takes it). co_await the returned Proc.
  sim::Proc transmit(int from_side, Packet p);

  /// Inbox of `side` for packets arriving addressed to `sublink`.
  sim::Channel<Packet>& inbox(int side, int sublink);

  /// Perf instrumentation: one sink per transmitting side (side 0's sink is
  /// the track of the node wired to side 0, and likewise for side 1). Null
  /// pointers disable collection for that side.
  void set_sinks(perf::PerfSink* side0, perf::PerfSink* side1) {
    sink_[0] = side0;
    sink_[1] = side1;
  }

  // --- statistics per direction (0: side0->side1, 1: side1->side0) ---
  std::uint64_t bytes_sent(int direction) const;
  sim::SimTime busy_time(int direction) const;
  std::uint64_t packets_sent(int direction) const;

 private:
  struct Direction {
    explicit Direction(sim::Simulator& sim) : mutex{sim, 1} {}
    sim::Semaphore mutex;
    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
    sim::SimTime busy{};
  };

  sim::Simulator* sim_;
  std::array<perf::PerfSink*, 2> sink_{nullptr, nullptr};
  std::array<std::unique_ptr<Direction>, 2> dir_;
  // inboxes_[side][sublink]
  std::array<std::array<std::unique_ptr<sim::Channel<Packet>>,
                        LinkParams::kSublinksPerLink>,
             2>
      inboxes_;
};

/// A full-duplex cable whose two ports live on *different shards* of a
/// ParallelSim. Timing and statistics match Link exactly — the sender's
/// direction is an exclusive FIFO resource charging DMA startup + wire time
/// — but the hand-off is fire-and-forget: the arrival is posted through the
/// engine's cross-shard mailbox at send-start + transfer_time, and a
/// delivery process spawned on the receiving shard performs the rendezvous
/// into the per-sublink inbox locally. This is the conservative-PDES
/// relaxation of Link's sender-blocking rendezvous (a sender cannot wait on
/// a remote receiver without collapsing the lookahead window); the sender
/// instead blocks only for the wire occupancy it would have paid anyway.
/// Because the arrival is posted at send start, it lands at least
/// transfer_time(0) — the engine's lookahead — in the future, so no epoch
/// ever admits it early.
class CrossLink {
 public:
  /// Side 0 lives on `shard0`'s simulator, side 1 on `shard1`'s.
  CrossLink(sim::ParallelSim& psim, int shard0, int shard1);

  CrossLink(const CrossLink&) = delete;
  CrossLink& operator=(const CrossLink&) = delete;

  /// Transmit `p` from `from_side`. Runs on the sending side's simulator;
  /// completes when the wire frees (not when the receiver takes delivery).
  sim::Proc transmit(int from_side, Packet p);

  /// Inbox of `side` for packets arriving addressed to `sublink` (a channel
  /// on that side's shard simulator).
  sim::Channel<Packet>& inbox(int side, int sublink);

  void set_sinks(perf::PerfSink* side0, perf::PerfSink* side1) {
    sink_[0] = side0;
    sink_[1] = side1;
  }

  int shard(int side) const {
    return shard_[static_cast<std::size_t>(side)];
  }

  // --- statistics per direction (0: side0->side1, 1: side1->side0) ---
  std::uint64_t bytes_sent(int direction) const;
  sim::SimTime busy_time(int direction) const;
  std::uint64_t packets_sent(int direction) const;

 private:
  struct Direction {
    explicit Direction(sim::Simulator& sim) : mutex{sim, 1} {}
    sim::Semaphore mutex;
    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
    sim::SimTime busy{};
  };

  sim::ParallelSim* psim_;
  std::array<int, 2> shard_;
  std::array<sim::Simulator*, 2> sim_;
  std::array<perf::PerfSink*, 2> sink_{nullptr, nullptr};
  std::array<std::unique_ptr<Direction>, 2> dir_;
  // inboxes_[side][sublink]: the channels on which `side` receives.
  std::array<std::array<std::unique_ptr<sim::Channel<Packet>>,
                        LinkParams::kSublinksPerLink>,
             2>
      inboxes_;
};

/// The four link ports of one node, wired to Links by the topology builder.
/// Port p of this node is some side of some Link; sends and inboxes are
/// addressed (port, sublink).
class NodeLinks {
 public:
  NodeLinks() = default;

  void attach(int port, Link& cable, int side);
  bool attached(int port) const;
  /// Number of ports wired to cables.
  int attached_count() const;

  /// Send via a port. Throws std::logic_error when the port is not wired.
  sim::Proc send(int port, Packet p);
  sim::Channel<Packet>& inbox(int port, int sublink);

 private:
  struct PortRef {
    Link* cable = nullptr;
    int side = 0;
  };
  std::array<PortRef, LinkParams::kPhysicalLinks> ports_{};
};

}  // namespace fpst::link
