// Diagnostics shared by the static analyzers (see DESIGN.md §6).
//
// A Diagnostic pins a finding to a program byte address and, when the
// assembler recorded one, a source line, so tcheck can print the familiar
// `file:line: severity[code]: message` shape and CI can gate on severity.
//
// Every diagnostic also carries a class: kValidity findings mean the input
// is wrong (it would fault, deadlock or corrupt memory at run time), while
// kPerformance findings come from the predictive analyses (cost model,
// communication volume) and mean the input would run but violates the
// performance model. tcheck maps the two classes to distinct exit codes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fpst::check {

enum class Severity { kNote, kWarning, kError };

std::string to_string(Severity s);

/// Which analysis family produced a finding (see file header).
enum class DiagClass { kValidity, kPerformance };

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;      ///< stable machine-readable slug, e.g. "bad-jump"
  std::uint32_t addr = 0;  ///< absolute program byte address (0 when n/a)
  std::size_t line = 0;    ///< 1-based source line (0 when unknown)
  std::string message;
  DiagClass dclass = DiagClass::kValidity;
};

/// An ordered bag of diagnostics produced by one analysis run.
class Report {
 public:
  void add(Severity sev, std::string code, std::uint32_t addr,
           std::string message) {
    diags_.push_back(Diagnostic{sev, std::move(code), addr, 0,
                                std::move(message), DiagClass::kValidity});
  }
  /// Full-control variant: source line and diagnostic class included.
  void add(Severity sev, std::string code, std::uint32_t addr,
           std::size_t line, std::string message, DiagClass dclass) {
    diags_.push_back(
        Diagnostic{sev, std::move(code), addr, line, std::move(message),
                   dclass});
  }
  void error(std::string code, std::uint32_t addr, std::string message) {
    add(Severity::kError, std::move(code), addr, std::move(message));
  }
  void warning(std::string code, std::uint32_t addr, std::string message) {
    add(Severity::kWarning, std::move(code), addr, std::move(message));
  }
  void note(std::string code, std::uint32_t addr, std::string message) {
    add(Severity::kNote, std::move(code), addr, std::move(message));
  }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::vector<Diagnostic>& mutable_diagnostics() { return diags_; }
  std::size_t count(Severity s) const;
  /// Count restricted to one diagnostic class.
  std::size_t count(Severity s, DiagClass c) const;
  bool has_errors() const { return count(Severity::kError) > 0; }
  bool has(const std::string& code) const;
  /// First diagnostic carrying `code`, or nullptr.
  const Diagnostic* find(const std::string& code) const;

  /// Render every diagnostic as `unit:line: severity[code]: message`,
  /// one per line. `line` is omitted when unknown.
  std::string to_string(const std::string& unit) const;

  /// Merge another report's diagnostics after this one's.
  void merge(const Report& other) {
    diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
  }

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace fpst::check
