// Control-flow graph recovery for assembled TISA programs.
//
// TISA instructions are variable length (pfix/nfix chains), so a linear
// sweep cannot tell code from data. The builder instead decodes
// recursively from the program entry points, following static jump/call
// targets and fall-through edges — exactly the addresses the control
// processor can reach — and reports, while it walks:
//
//   * control transfers landing outside the program image,
//   * transfers landing mid-instruction (two decodes overlap),
//   * truncated instructions (a prefix chain running off the image),
//   * execution falling off the end of the image.
//
// The resulting basic blocks feed the abstract interpreter in
// tisa_verify.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "check/diagnostics.hpp"
#include "cp/assembler.hpp"

namespace fpst::check {

/// How an instruction ends a basic block.
enum class Flow {
  kFall,      ///< falls through to the next instruction
  kJump,      ///< unconditional `j`
  kCondJump,  ///< `cj`: target when A == 0, fall-through (popping A) else
  kCall,      ///< `call`: target plus fall-through at the return point
  kStop,      ///< ret / halt / endp — no static successor
};

struct Insn {
  std::uint32_t addr = 0;  ///< absolute address of the first (prefix) byte
  cp::Decoded d{};
  std::uint32_t next() const { return addr + d.size; }
  Flow flow() const;
  /// Absolute target for j/cj/call (relative to the next instruction).
  std::optional<std::uint32_t> static_target() const;
  bool is_secondary(cp::SecOp s) const {
    return d.op == cp::Op::opr &&
           static_cast<cp::SecOp>(d.operand) == s;
  }
};

struct BasicBlock {
  std::uint32_t start = 0;
  std::vector<Insn> insns;
  std::vector<std::uint32_t> succs;  ///< successor block start addresses
  const Insn& terminator() const { return insns.back(); }
};

struct Cfg {
  std::uint32_t lo = 0;  ///< image start (Program::org)
  std::uint32_t hi = 0;  ///< one past the last image byte
  std::map<std::uint32_t, Insn> insns;        ///< every decoded instruction
  std::map<std::uint32_t, BasicBlock> blocks;  ///< keyed by start address
  std::set<std::uint32_t> entries;             ///< block starts that are roots

  bool in_image(std::uint32_t a) const { return a >= lo && a < hi; }
};

/// Decode `p` from `entries` (absolute addresses; each must lie in the
/// image) and partition into basic blocks. Structural problems are appended
/// to `rep`; the walk continues best-effort past them.
Cfg build_cfg(const cp::Program& p, const std::set<std::uint32_t>& entries,
              Report& rep);

}  // namespace fpst::check
