#include "check/comm_volume.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "check/chan_graph.hpp"

namespace fpst::check {

namespace {

using occam::CommSpec;

constexpr std::uint64_t kBytesPerElem = 8;

/// One lowered endpoint of a channel, kept for line-mapped diagnostics.
struct EndPoint {
  net::NodeId node = 0;     ///< the node whose sequence contains the op
  net::NodeId peer = 0;     ///< the other side (sender for recvs)
  bool any = false;
  std::uint32_t elems = 0;
  std::size_t origin = 0;   ///< CommOp index in the node's sequence
};

/// All traffic on one (destination, tag) channel.
struct Channel {
  std::vector<EndPoint> sends;
  std::vector<EndPoint> recvs;  ///< specific-source receives
  std::vector<EndPoint> anys;   ///< recvany receives
};

std::size_t op_line(const CommSpec& spec, const EndPoint& e) {
  return spec.ops(e.node)[e.origin].line;
}

std::string chan_name(net::NodeId dst, std::uint32_t tag) {
  std::ostringstream os;
  os << "channel (-> node " << dst << ", tag " << tag << ")";
  return os.str();
}

}  // namespace

VolumeAnalysis analyze_volume(const CommSpec& spec) {
  VolumeAnalysis res;
  res.dimension = spec.dimension();
  const net::Hypercube cube{spec.dimension()};
  const std::size_t n = spec.size();

  std::vector<net::Flow> flows;
  std::map<std::pair<net::NodeId, std::uint32_t>, Channel> chans;

  for (net::NodeId id = 0; id < n; ++id) {
    for (const CommEvent& e : lower_comm(spec, id)) {
      if (e.is_send) {
        flows.push_back(
            net::Flow{id, e.peer, std::uint64_t{e.elems} * kBytesPerElem});
        ++res.messages;
        res.payload_bytes += std::uint64_t{e.elems} * kBytesPerElem;
        chans[{e.peer, e.tag}].sends.push_back(
            EndPoint{id, e.peer, false, e.elems, e.origin});
      } else if (e.any) {
        chans[{id, e.tag}].anys.push_back(
            EndPoint{id, 0, true, e.elems, e.origin});
      } else {
        chans[{id, e.tag}].recvs.push_back(
            EndPoint{id, e.peer, false, e.elems, e.origin});
      }
    }
  }

  // ---- channel-protocol checks ----
  for (const auto& [key, ch] : chans) {
    const auto& [dst, tag] = key;
    if (tag >= 0x8000u) {
      continue;  // internal collective tags: lowered pairwise, always sound
    }

    // Arity: per-source when every recv names its source; totals once a
    // recvany can absorb from anyone.
    if (ch.anys.empty()) {
      std::map<net::NodeId, std::pair<std::uint64_t, std::uint64_t>> per_src;
      for (const EndPoint& s : ch.sends) {
        ++per_src[s.node].first;
      }
      for (const EndPoint& r : ch.recvs) {
        ++per_src[r.peer].second;
      }
      for (const auto& [src, counts] : per_src) {
        if (counts.first == counts.second) {
          continue;
        }
        // Anchor the diagnostic on the surplus side's first op.
        const bool surplus_send = counts.first > counts.second;
        const EndPoint* at = nullptr;
        for (const EndPoint& e : surplus_send ? ch.sends : ch.recvs) {
          if ((surplus_send ? e.node : e.peer) == src) {
            at = &e;
            break;
          }
        }
        std::ostringstream os;
        os << chan_name(dst, tag) << ": node " << src << " sends "
           << counts.first << " message(s) but node " << dst << " receives "
           << counts.second << " from it";
        res.report.add(Severity::kError, "chan-arity", 0,
                       at != nullptr ? op_line(spec, *at) : 0, os.str(),
                       DiagClass::kValidity);
      }
    } else {
      const std::uint64_t recv_total = ch.recvs.size() + ch.anys.size();
      if (ch.sends.size() != recv_total) {
        std::ostringstream os;
        os << chan_name(dst, tag) << ": " << ch.sends.size()
           << " send(s) but " << recv_total
           << " receive(s) (including recvany)";
        const EndPoint& at =
            ch.sends.size() > recv_total ? ch.sends.front() : ch.anys.front();
        res.report.add(Severity::kError, "chan-arity", 0, op_line(spec, at),
                       os.str(), DiagClass::kValidity);
      }
    }

    // Payload consistency: every op on the channel must agree on elems.
    const std::uint32_t expect = !ch.sends.empty() ? ch.sends.front().elems
                                 : !ch.recvs.empty()
                                     ? ch.recvs.front().elems
                                     : ch.anys.front().elems;
    const auto check_elems = [&](const std::vector<EndPoint>& eps) {
      for (const EndPoint& e : eps) {
        if (e.elems == expect) {
          continue;
        }
        std::ostringstream os;
        os << chan_name(dst, tag) << ": payload sizes disagree (" << e.elems
           << " vs " << expect << " elements) — the receiver would copy "
           << "a different number of bytes than the sender staged";
        res.report.add(Severity::kError, "payload-mismatch", 0,
                       op_line(spec, e), os.str(), DiagClass::kValidity);
        return;  // one diagnostic per channel is enough
      }
    };
    check_elems(ch.sends);
    check_elems(ch.recvs);
  }

  // ---- per-edge volume through the simulator's own router ----
  res.edges = net::ecube_edge_traffic(cube, flows);
  for (const net::EdgeTraffic& e : res.edges) {
    res.total_hops += e.crossings;
    res.max_edge_crossings = std::max(res.max_edge_crossings, e.crossings);
  }

  if (spec.edge_budget().has_value()) {
    const std::uint64_t budget = *spec.edge_budget();
    for (const net::EdgeTraffic& e : res.edges) {
      if (e.bytes <= budget) {
        continue;
      }
      std::ostringstream os;
      os << "cube edge " << e.a << " <-> " << e.b << " carries " << e.bytes
         << " payload bytes, over the " << budget << "-byte link budget";
      res.report.add(Severity::kError, "edge-overload", 0, 0, os.str(),
                     DiagClass::kPerformance);
    }
  }
  return res;
}

}  // namespace fpst::check
