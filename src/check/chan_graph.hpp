// Static deadlock checker for Occam communication skeletons
// (DESIGN.md §6.2).
//
// Input is an occam::CommSpec — the per-node sequence of sends, receives
// and collectives a program performs. The checker lowers every collective
// to the exact point-to-point schedule occam.cpp executes (binomial trees,
// dimension exchange, per-node internal tag counter) and then abstractly
// executes the whole machine: sends are buffered (the runtime's routers
// always drain the links), receives block until a matching (src, tag)
// message is available. When execution stalls, the blocked nodes form a
// wait-for graph — node i waits on node j when i's pending receive names
// j as source — and any cycle in it is reported as a communication
// deadlock; acyclic stalls are reported as receives whose message is never
// sent. This flags at build time what occam::DeadlockError only reports
// after the simulated event queue drains.
//
// The lowering itself (lower_comm) is shared with the static volume
// analysis in check/comm_volume.hpp, which reuses the same point-to-point
// event streams to compute per-cube-edge traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/diagnostics.hpp"
#include "net/hypercube.hpp"
#include "occam/commspec.hpp"

namespace fpst::check {

/// One point-to-point event a CommOp lowers to. User sends/recvs map
/// one-to-one; collectives expand to the occam.cpp schedule with internal
/// 0x8000|seq tags.
struct CommEvent {
  bool is_send = false;
  bool any = false;        ///< recv_any: match the tag from any source
  net::NodeId peer = 0;    ///< dst for sends, src for receives
  std::uint32_t tag = 0;
  std::uint32_t elems = 1;  ///< payload, 64-bit elements
  std::size_t origin = 0;   ///< index of the CommOp this lowered from
  std::string detail;       ///< e.g. "barrier exchange, dimension 2"
};

/// Lower one node's CommOp sequence to point-to-point events, mirroring
/// the schedules in occam.cpp (including Ctx::internal_tag numbering:
/// one fresh 0x8000|seq tag per collective call).
std::vector<CommEvent> lower_comm(const occam::CommSpec& spec,
                                  net::NodeId id);

struct CommAnalysis {
  Report report;
  bool deadlock = false;           ///< a wait-for cycle was found
  std::vector<net::NodeId> cycle;  ///< the cycle, first node repeated last
};

CommAnalysis analyze_comm(const occam::CommSpec& spec);

}  // namespace fpst::check
