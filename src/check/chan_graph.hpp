// Static deadlock checker for Occam communication skeletons
// (DESIGN.md §6.2).
//
// Input is an occam::CommSpec — the per-node sequence of sends, receives
// and collectives a program performs. The checker lowers every collective
// to the exact point-to-point schedule occam.cpp executes (binomial trees,
// dimension exchange, per-node internal tag counter) and then abstractly
// executes the whole machine: sends are buffered (the runtime's routers
// always drain the links), receives block until a matching (src, tag)
// message is available. When execution stalls, the blocked nodes form a
// wait-for graph — node i waits on node j when i's pending receive names
// j as source — and any cycle in it is reported as a communication
// deadlock; acyclic stalls are reported as receives whose message is never
// sent. This flags at build time what occam::DeadlockError only reports
// after the simulated event queue drains.
#pragma once

#include <vector>

#include "check/diagnostics.hpp"
#include "net/hypercube.hpp"
#include "occam/commspec.hpp"

namespace fpst::check {

struct CommAnalysis {
  Report report;
  bool deadlock = false;           ///< a wait-for cycle was found
  std::vector<net::NodeId> cycle;  ///< the cycle, first node repeated last
};

CommAnalysis analyze_comm(const occam::CommSpec& spec);

}  // namespace fpst::check
