// Static cycle-cost prediction for assembled TISA programs (DESIGN.md §4.4).
//
// predict_cost() symbolically executes a program over the recovered CFG
// with the exact cost accounting of the interpreter in cp/cpu.cpp — the
// timing constants are *shared* (cp::CpuParams, mem::MemParams,
// vpu::VectorUnit::duration_of, link::LinkParams), never duplicated — so
// for a program whose control flow is statically decidable the predicted
// elapsed time equals the simulator's measurement bit-for-bit.
//
// The executor is an abstract interpreter over the same constant lattice
// the verifier uses (check/tisa_verify.hpp), extended with:
//   * a concrete workspace pointer (CostOptions::wptr, matching the value
//     passed to Cpu::start_process),
//   * a word-granular memory overlay seeded from the program image
//     (unwritten RAM reads as 0, exactly like the zero-initialised
//     mem::NodeMemory), so counted loops, call/ret through the workspace
//     and vform descriptors built with stl/stnl stay fully constant,
//   * the CP clock, the vector-unit completion time and link occupancy.
//
// Honesty rules — the model never guesses control flow:
//   * a cj whose condition is not a compile-time constant stops the
//     prediction (complete = false, stop_reason says why) and marks every
//     natural loop containing it `unbounded`;
//   * statically-unbounded loops whose body contains communication or
//     vector work raise the `unbounded-hot-loop` diagnostic (performance
//     class); cold ones get an `unbounded-loop` note;
//   * a bounded prediction whose instruction count exceeds
//     CostOptions::max_steps raises `cost-overflow` and stops;
//   * vform descriptors that are constant but violate the vector unit's
//     geometry (element count over the 128/256-element row limit, row
//     index out of range, undefined form) raise `vform-overrun` — the
//     static twin of the std::invalid_argument VectorUnit::execute throws.
//
// Modelling assumptions, stated rather than hidden: hard-channel partners
// are assumed ready (a transfer costs link::LinkParams::transfer_time and
// the process resumes after it plus one switch time), and data accesses
// through statically-unknown pointers are charged the off-chip (DRAM)
// penalty, the common case. Multi-process programs (startp/endp/runp) and
// soft-channel rendezvous stop the prediction honestly instead.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "check/cfg.hpp"
#include "check/diagnostics.hpp"
#include "cp/assembler.hpp"
#include "sim/time.hpp"

namespace fpst::check {

struct CostOptions {
  /// Initial workspace pointer, as passed to Cpu::start_process.
  std::uint32_t wptr = 0x8000;
  /// Abort a (bounded but huge) prediction after this many executed
  /// instruction bytes and raise `cost-overflow`.
  std::uint64_t max_steps = 2'000'000;
  /// Extra entry points; empty means `main` or the org, like the verifier.
  std::set<std::uint32_t> entries;
};

/// What the analyzer decided about one natural loop.
enum class LoopVerdict {
  kBounded,    ///< the executor ran it to exit; `iterations` is exact
  kUnbounded,  ///< no exit edge, or the bound is not statically decidable
  kUnknown,    ///< the prediction stopped before reaching this loop's exit
};

struct LoopInfo {
  std::uint32_t head = 0;       ///< block start address of the loop header
  std::uint32_t back_edge = 0;  ///< address of the jump that closes it
  LoopVerdict verdict = LoopVerdict::kUnknown;
  bool hot = false;             ///< body does channel/vector/block-move work
  std::uint64_t iterations = 0;  ///< header entries observed (kBounded only)
};

struct CostPrediction {
  Report report;
  bool complete = false;     ///< reached halt with all costs accounted
  std::string stop_reason;   ///< why the prediction ended early
  std::uint32_t stop_addr = 0;

  /// Counters; `instructions` counts fetched bytes including prefixes,
  /// matching Cpu::instructions_executed().
  std::uint64_t instructions = 0;
  std::uint64_t flops = 0;
  std::uint64_t vforms = 0;

  sim::SimTime elapsed{};   ///< predicted simulator time at event drain
  sim::SimTime cp_busy{};   ///< control-processor execution time
  sim::SimTime vpu_busy{};  ///< vector-pipe occupancy
  sim::SimTime link_busy{}; ///< hard-channel wire + DMA occupancy

  std::vector<LoopInfo> loops;
};

/// Predict the cost of running `p` as a single process from its entry
/// point. Performance diagnostics land in `report` with
/// DiagClass::kPerformance; structural problems are the verifier's job and
/// are not re-reported here.
CostPrediction predict_cost(const cp::Program& p, const CostOptions& opts = {});

}  // namespace fpst::check
