#include "check/cost_model.hpp"

#include "check/tisa_verify.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "cp/cpu.hpp"
#include "cp/isa.hpp"
#include "link/link.hpp"
#include "mem/memory.hpp"
#include "vpu/vpu.hpp"

namespace fpst::check {

namespace {

using sim::SimTime;

std::string hex(std::uint32_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

bool is_hot_insn(const Insn& in) {
  using cp::SecOp;
  return in.is_secondary(SecOp::in) || in.is_secondary(SecOp::out) ||
         in.is_secondary(SecOp::vform) || in.is_secondary(SecOp::gather) ||
         in.is_secondary(SecOp::scatter) || in.is_secondary(SecOp::move);
}

// ---- natural-loop discovery over the CFG ----

struct Loops {
  std::vector<LoopInfo> info;
  /// loop index -> body block starts
  std::vector<std::set<std::uint32_t>> bodies;

  /// Indices of loops whose body contains block `b`.
  std::vector<std::size_t> containing(std::uint32_t b) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < bodies.size(); ++i) {
      if (bodies[i].count(b) != 0) {
        out.push_back(i);
      }
    }
    return out;
  }
};

Loops find_loops(const Cfg& cfg) {
  Loops loops;
  // Predecessor map for the natural-loop body walk.
  std::map<std::uint32_t, std::vector<std::uint32_t>> preds;
  for (const auto& [start, bb] : cfg.blocks) {
    for (const std::uint32_t s : bb.succs) {
      preds[s].push_back(start);
    }
  }

  // Iterative DFS; an edge into a block on the current stack is a back
  // edge and its target a loop header.
  std::map<std::uint32_t, int> color;  // 0 white, 1 on stack, 2 done
  std::set<std::pair<std::uint32_t, std::uint32_t>> back_edges;  // (tail, head)
  for (const std::uint32_t root : cfg.entries) {
    if (cfg.blocks.count(root) == 0 || color[root] != 0) {
      continue;
    }
    std::vector<std::pair<std::uint32_t, std::size_t>> stack{{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      const auto& succs = cfg.blocks.at(u).succs;
      if (next < succs.size()) {
        const std::uint32_t v = succs[next++];
        if (cfg.blocks.count(v) == 0) {
          continue;
        }
        if (color[v] == 1) {
          back_edges.insert({u, v});
        } else if (color[v] == 0) {
          color[v] = 1;
          stack.push_back({v, 0});
        }
      } else {
        color[u] = 2;
        stack.pop_back();
      }
    }
  }

  for (const auto& [tail, head] : back_edges) {
    // Natural loop body: head plus everything reaching tail without
    // passing through head.
    std::set<std::uint32_t> body{head, tail};
    std::vector<std::uint32_t> work{tail};
    while (!work.empty()) {
      const std::uint32_t b = work.back();
      work.pop_back();
      if (b == head) {
        continue;
      }
      const auto it = preds.find(b);
      if (it == preds.end()) {
        continue;
      }
      for (const std::uint32_t p : it->second) {
        if (body.insert(p).second) {
          work.push_back(p);
        }
      }
    }

    LoopInfo li;
    li.head = head;
    li.back_edge = cfg.blocks.at(tail).terminator().addr;
    bool has_exit = false;
    for (const std::uint32_t b : body) {
      const BasicBlock& bb = cfg.blocks.at(b);
      for (const Insn& in : bb.insns) {
        if (is_hot_insn(in)) {
          li.hot = true;
        }
      }
      if (bb.terminator().flow() == Flow::kStop) {
        has_exit = true;
      }
      for (const std::uint32_t s : bb.succs) {
        if (body.count(s) == 0) {
          has_exit = true;
        }
      }
    }
    if (!has_exit) {
      li.verdict = LoopVerdict::kUnbounded;  // structurally cannot leave
    }
    loops.info.push_back(li);
    loops.bodies.push_back(std::move(body));
  }
  return loops;
}

// ---- the symbolic executor ----

class CostExecutor {
 public:
  CostExecutor(const cp::Program& p, const Cfg& cfg, const CostOptions& opts,
               CostPrediction& out)
      : prog_{p}, cfg_{cfg}, opts_{opts}, out_{&out},
        scratch_mem_{std::make_unique<mem::NodeMemory>()},
        vpu_{*scratch_mem_} {}

  void run(std::uint32_t entry) {
    wptr_ = opts_.wptr;
    iptr_ = entry;
    t_ = cp::CpuParams::switch_time();  // first pick_next dispatch
    for (;;) {
      if (out_->instructions >= opts_.max_steps) {
        diag(Severity::kWarning, "cost-overflow", iptr_,
             "prediction exceeds the " + std::to_string(opts_.max_steps) +
                 "-instruction budget — the program does this much work "
                 "before any communication or halt");
        stop(iptr_, "instruction budget exhausted");
        return;
      }
      if (!cfg_.in_image(iptr_)) {
        stop(iptr_, "instruction fetch outside the program image");
        return;
      }
      const auto it = cfg_.insns.find(iptr_);
      if (it == cfg_.insns.end()) {
        stop(iptr_, "address was not statically decoded");
        return;
      }
      if (heads_.count(iptr_) != 0) {
        ++head_counts_[iptr_];
      }
      if (!exec(it->second)) {
        return;
      }
    }
  }

  void set_loop_heads(std::set<std::uint32_t> heads) {
    heads_ = std::move(heads);
  }
  const std::map<std::uint32_t, std::uint64_t>& head_counts() const {
    return head_counts_;
  }

 private:
  // -- timing constants, straight from the simulator's parameter blocks --
  static SimTime instr_time() { return cp::CpuParams::instr_time(); }
  static SimTime offchip() { return cp::CpuParams::offchip_penalty(); }
  static SimTime switch_time() { return cp::CpuParams::switch_time(); }

  void diag(Severity sev, const char* code, std::uint32_t addr,
            std::string msg) {
    if (seen_.insert({code, addr}).second) {
      out_->report.add(sev, code, addr, 0, std::move(msg),
                       DiagClass::kPerformance);
    }
  }

  void stop(std::uint32_t addr, std::string reason) {
    out_->stop_addr = addr;
    out_->stop_reason = std::move(reason);
    finish();
  }

  void finish() {
    out_->elapsed = std::max(t_, vpu_done_);
  }

  // -- register stack, mirroring Cpu::push/pop (pop refills C with 0) --
  void push(AbsVal v) {
    c_ = b_;
    b_ = a_;
    a_ = v;
  }
  void pop() {
    a_ = b_;
    b_ = c_;
    c_ = abs_const(0);
  }

  // -- memory model: word overlay over image bytes / zeroed RAM --
  static bool in_dram(std::uint32_t addr) { return addr < cp::kDramBytes; }
  static bool on_chip(std::uint32_t addr) {
    return addr >= cp::kOnChipBase &&
           addr < cp::kOnChipBase + cp::kOnChipBytes;
  }

  AbsVal base_word(std::uint32_t aligned) const {
    if (havoc_) {
      return abs_unknown();
    }
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      const std::uint32_t a = aligned + static_cast<std::uint32_t>(i);
      std::uint8_t byte = 0;
      if (a >= prog_.org &&
          a < prog_.org + static_cast<std::uint32_t>(prog_.bytes.size())) {
        byte = prog_.bytes[a - prog_.org];
      }
      v = (v << 8) | byte;  // unwritten RAM is zero-initialised
    }
    return abs_const(v);
  }

  AbsVal load_word(std::uint32_t addr) const {
    const std::uint32_t aligned = addr & ~3u;
    const auto it = overlay_.find(aligned);
    return it != overlay_.end() ? it->second : base_word(aligned);
  }
  void store_word(std::uint32_t addr, AbsVal v) {
    overlay_[addr & ~3u] = v;
  }
  void store_range_unknown(std::uint32_t addr, std::uint32_t bytes) {
    const std::uint32_t first = addr & ~3u;
    const std::uint32_t last = (addr + bytes + 3) & ~3u;
    for (std::uint32_t a = first; a < last; a += 4) {
      overlay_[a] = abs_unknown();
    }
  }

  AbsVal load_byte(std::uint32_t addr) const {
    const AbsVal w = load_word(addr);
    if (!w.known) {
      return abs_unknown();
    }
    return abs_const((w.v >> (8 * (addr & 3u))) & 0xFFu);
  }
  void store_byte(std::uint32_t addr, AbsVal v) {
    const AbsVal w = load_word(addr);
    if (w.known && v.known) {
      const std::uint32_t shift = 8 * (addr & 3u);
      const std::uint32_t mask = 0xFFu << shift;
      store_word(addr, abs_const((w.v & ~mask) | ((v.v & 0xFFu) << shift)));
    } else {
      store_word(addr, abs_unknown());
    }
  }

  /// Cost of one word/byte data access, matching Cpu::data_read/_write:
  /// DRAM pays the off-chip penalty, on-chip is free. Unknown addresses
  /// are charged as DRAM (documented assumption).
  SimTime access_cost(const AbsVal& addr) const {
    if (!addr.known) {
      return offchip();
    }
    return in_dram(addr.v) ? offchip() : SimTime{};
  }

  AbsVal data_read(const AbsVal& addr, SimTime& cost) {
    cost += access_cost(addr);
    return addr.known ? load_word(addr.v) : abs_unknown();
  }
  void data_write(const AbsVal& addr, AbsVal v, SimTime& cost) {
    cost += access_cost(addr);
    if (addr.known) {
      store_word(addr.v, v);
    } else {
      havoc_ = true;  // could have hit anything; trust nothing cached
      overlay_.clear();
    }
  }

  // -- one instruction; false ends the prediction --
  bool exec(const Insn& in) {
    using cp::Op;
    const SimTime T = t_;  // exec_one entry time: sim->now() for this insn
    SimTime cost = static_cast<std::int64_t>(in.d.size) * instr_time();
    out_->instructions += in.d.size;
    const std::uint32_t operand = static_cast<std::uint32_t>(in.d.operand);
    std::uint32_t next = in.next();

    switch (in.d.op) {
      case Op::j:
        next = *in.static_target();
        break;
      case Op::ldlp:
        push(abs_const(wptr_ + 4 * operand));
        break;
      case Op::ldnl:
        a_ = data_read(a_.known ? abs_const(a_.v + 4 * operand) : abs_unknown(),
                       cost);
        break;
      case Op::ldc:
        push(abs_const(operand));
        break;
      case Op::ldnlp:
        a_ = a_.known ? abs_const(a_.v + 4 * operand) : abs_unknown();
        break;
      case Op::ldl:
        push(data_read(abs_const(wptr_ + 4 * operand), cost));
        break;
      case Op::adc:
        a_ = a_.known ? abs_const(a_.v + operand) : abs_unknown();
        break;
      case Op::call:
        wptr_ -= 4;
        data_write(abs_const(wptr_), abs_const(in.next()), cost);
        next = *in.static_target();
        break;
      case Op::cj:
        if (!a_.known) {
          commit(T, cost);
          unknown_branch(in.addr);
          return false;
        }
        if (a_.v == 0) {
          next = *in.static_target();
        } else {
          pop();
        }
        break;
      case Op::ajw:
        wptr_ += 4 * operand;
        break;
      case Op::eqc:
        a_ = a_.known ? abs_const(a_.v == operand ? 1u : 0u) : abs_unknown();
        break;
      case Op::stl:
        data_write(abs_const(wptr_ + 4 * operand), a_, cost);
        pop();
        break;
      case Op::stnl:
        data_write(a_.known ? abs_const(a_.v + 4 * operand) : abs_unknown(),
                   b_, cost);
        pop();
        pop();
        break;
      case Op::opr:
        return exec_secondary(in, T, cost, next);
      case Op::pfix:
      case Op::nfix:
        break;  // folded into the decode
    }
    commit(T, cost);
    iptr_ = next;
    return true;
  }

  void commit(SimTime T, SimTime cost) {
    t_ = T + cost;
    out_->cp_busy += cost;
  }

  void unknown_branch(std::uint32_t at) {
    // The branch condition is not a compile-time constant: every natural
    // loop whose body contains this block has a statically-unknown bound.
    bool in_loop = false;
    const std::uint32_t block = block_of(at);
    for (const std::size_t li : loops_->containing(block)) {
      LoopInfo& l = loops_->info[li];
      l.verdict = LoopVerdict::kUnbounded;
      in_loop = true;
    }
    if (!in_loop) {
      stop(at, "branch condition is not a compile-time constant");
      return;
    }
    stop(at,
         "loop bound is not a compile-time constant (branch at " + hex(at) +
             ")");
  }

  std::uint32_t block_of(std::uint32_t addr) const {
    auto it = cfg_.blocks.upper_bound(addr);
    if (it == cfg_.blocks.begin()) {
      return addr;
    }
    --it;
    return it->first;
  }

  bool exec_secondary(const Insn& in, SimTime T, SimTime cost,
                      std::uint32_t next) {
    using cp::SecOp;
    const std::uint32_t at = in.addr;
    const auto op = static_cast<SecOp>(in.d.operand);

    const auto binop = [&](AbsVal result) {
      a_ = result;
      b_ = c_;
      c_ = abs_const(0);
    };
    const auto arith2 = [&](auto f) {
      binop(a_.known && b_.known ? abs_const(f(b_.v, a_.v)) : abs_unknown());
    };

    switch (op) {
      case SecOp::rev:
        std::swap(a_, b_);
        break;
      case SecOp::add:
        arith2([](std::uint32_t b, std::uint32_t a) { return b + a; });
        break;
      case SecOp::sub:
        arith2([](std::uint32_t b, std::uint32_t a) { return b - a; });
        break;
      case SecOp::mul:
        cost += (cp::CpuParams::kMulDivCostFactor - 1) * instr_time();
        arith2([](std::uint32_t b, std::uint32_t a) {
          return static_cast<std::uint32_t>(
              static_cast<std::int64_t>(static_cast<std::int32_t>(b)) *
              static_cast<std::int64_t>(static_cast<std::int32_t>(a)));
        });
        break;
      case SecOp::divi:
      case SecOp::rem:
        cost += (cp::CpuParams::kMulDivCostFactor - 1) * instr_time();
        if (a_.known && a_.v == 0) {
          binop(abs_const(0));  // the interpreter faults and continues
        } else if (a_.known && b_.known) {
          const auto sa = static_cast<std::int32_t>(a_.v);
          const auto sb = static_cast<std::int32_t>(b_.v);
          binop(abs_const(static_cast<std::uint32_t>(
              op == SecOp::divi ? sb / sa : sb % sa)));
        } else {
          binop(abs_unknown());
        }
        break;
      case SecOp::land:
        arith2([](std::uint32_t b, std::uint32_t a) { return b & a; });
        break;
      case SecOp::lor:
        arith2([](std::uint32_t b, std::uint32_t a) { return b | a; });
        break;
      case SecOp::lxor:
        arith2([](std::uint32_t b, std::uint32_t a) { return b ^ a; });
        break;
      case SecOp::lnot:
        a_ = a_.known ? abs_const(~a_.v) : abs_unknown();
        break;
      case SecOp::shl:
        arith2([](std::uint32_t b, std::uint32_t a) {
          return a >= 32 ? 0u : b << a;
        });
        break;
      case SecOp::shr:
        arith2([](std::uint32_t b, std::uint32_t a) {
          return a >= 32 ? 0u : b >> a;
        });
        break;
      case SecOp::gt:
        arith2([](std::uint32_t b, std::uint32_t a) {
          return static_cast<std::int32_t>(b) > static_cast<std::int32_t>(a)
                     ? 1u
                     : 0u;
        });
        break;
      case SecOp::mint:
        push(abs_const(cp::kNotProcess));
        break;
      case SecOp::ldpi:
        a_ = a_.known ? abs_const(in.next() + a_.v) : abs_unknown();
        break;
      case SecOp::wsub:
        arith2([](std::uint32_t b, std::uint32_t a) { return a + 4 * b; });
        break;
      case SecOp::bsub:
        arith2([](std::uint32_t b, std::uint32_t a) { return a + b; });
        break;
      case SecOp::lb:
        cost += access_cost(a_);
        a_ = a_.known ? load_byte(a_.v) : abs_unknown();
        break;
      case SecOp::sb:
        cost += access_cost(a_);
        if (a_.known) {
          store_byte(a_.v, b_);
        } else {
          havoc_ = true;
          overlay_.clear();
        }
        pop();
        pop();
        break;
      case SecOp::move: {
        if (!a_.known) {
          commit(T, cost);
          stop(at, "move byte count is not a compile-time constant");
          return false;
        }
        const std::uint32_t count = a_.v;
        const AbsVal dst = b_;
        pop();
        pop();
        pop();
        if (dst.known) {
          store_range_unknown(dst.v, count);
        } else {
          havoc_ = true;
          overlay_.clear();
        }
        cost += static_cast<std::int64_t>((count + 3) / 4) * 2 *
                cp::CpuParams::word_access();
        break;
      }
      case SecOp::in:
      case SecOp::out:
        return exec_channel(in, op, T, cost, next);
      case SecOp::startp:
        commit(T, cost);
        stop(at,
             "startp spawns a second process — multi-process cost "
             "prediction is not modelled");
        return false;
      case SecOp::endp:
        commit(T, cost);
        stop(at, "endp synchronises with a parent process");
        return false;
      case SecOp::stopp:
        commit(T, cost);
        stop(at, "stopp deschedules the only process");
        return false;
      case SecOp::runp:
        commit(T, cost);
        stop(at, "runp resumes another process");
        return false;
      case SecOp::ldtimer:
        push(abs_const(static_cast<std::uint32_t>(
            T.ps() / cp::CpuParams::timer_tick().ps())));
        break;
      case SecOp::tin: {
        const AbsVal target = a_;
        pop();
        if (!target.known) {
          commit(T, cost);
          stop(at, "tin deadline is not a compile-time constant");
          return false;
        }
        const auto now_ticks = static_cast<std::uint32_t>(
            T.ps() / cp::CpuParams::timer_tick().ps());
        if (static_cast<std::int32_t>(target.v - now_ticks) > 0) {
          const SimTime wake =
              T + static_cast<std::int64_t>(target.v - now_ticks) *
                      cp::CpuParams::timer_tick();
          out_->cp_busy += cost;
          t_ = std::max(T + cost, wake) + switch_time();
          iptr_ = next;
          return true;
        }
        break;
      }
      case SecOp::ret: {
        const AbsVal ra = data_read(abs_const(wptr_), cost);
        wptr_ += 4;
        if (!ra.known) {
          commit(T, cost);
          stop(at, "return address is not statically known");
          return false;
        }
        next = ra.v;
        break;
      }
      case SecOp::vform:
        return exec_vform(in, T, cost, next);
      case SecOp::vwait:
        if (vpu_busy_ && vpu_done_ > T) {
          out_->cp_busy += cost;
          t_ = std::max(vpu_done_, T + cost) + switch_time();
          vpu_busy_ = false;
          iptr_ = next;
          return true;
        }
        vpu_busy_ = false;
        break;
      case SecOp::gather:
      case SecOp::scatter: {
        if (!a_.known) {
          commit(T, cost);
          stop(at, "gather/scatter element count is not a compile-time "
                   "constant");
          return false;
        }
        const std::uint32_t count = a_.v;
        const AbsVal vec = b_;
        const AbsVal table = c_;
        pop();
        pop();
        pop();
        if (op == SecOp::gather) {
          if (vec.known) {
            store_range_unknown(vec.v, 8 * count);
          } else {
            havoc_ = true;
            overlay_.clear();
          }
        } else {
          for (std::uint32_t i = 0; i < count; ++i) {
            const AbsVal slot = table.known
                                    ? load_word(table.v + 4 * i)
                                    : abs_unknown();
            if (slot.known) {
              store_range_unknown(slot.v, 8);
            } else {
              havoc_ = true;
              overlay_.clear();
              break;
            }
          }
        }
        cost += static_cast<std::int64_t>(count) *
                mem::MemParams::gather_move64();
        break;
      }
      case SecOp::halt:
        commit(T, cost);
        out_->complete = true;
        finish();
        return false;
      case SecOp::testerr:
        push(abs_unknown());
        break;
      default:
        commit(T, cost);
        stop(at, "undefined secondary opcode");
        return false;
    }
    commit(T, cost);
    iptr_ = next;
    return true;
  }

  bool exec_channel(const Insn& in, cp::SecOp op, SimTime T, SimTime cost,
                    std::uint32_t next) {
    const std::uint32_t at = in.addr;
    const AbsVal count = a_;
    const AbsVal chan = b_;
    const AbsVal ptr = c_;
    pop();
    pop();
    pop();
    if (!chan.known) {
      commit(T, cost);
      stop(at, "channel address is not a compile-time constant");
      return false;
    }
    if (cp::is_hard_chan(chan.v)) {
      if (!count.known) {
        commit(T, cost);
        stop(at, "hard-channel byte count is not a compile-time constant");
        return false;
      }
      // Assumes the link partner is ready (documented): the DMA starts at
      // T, the process resumes after the transfer plus one switch time.
      const SimTime xfer = link::LinkParams::transfer_time(count.v);
      out_->link_busy += xfer;
      if (op == cp::SecOp::in && ptr.known) {
        store_range_unknown(ptr.v, count.v);  // received bytes are data
      }
      out_->cp_busy += cost;
      t_ = std::max(T + xfer, T + cost) + switch_time();
      iptr_ = next;
      return true;
    }
    // Soft channel: with a single process the rendezvous never completes.
    commit(T, cost);
    stop(at, "soft-channel rendezvous needs a partner process");
    return false;
  }

  bool exec_vform(const Insn& in, SimTime T, SimTime cost,
                  std::uint32_t next) {
    const std::uint32_t at = in.addr;
    const AbsVal desc = a_;
    pop();
    if (!desc.known) {
      commit(T, cost);
      stop(at, "vform descriptor address is not a compile-time constant");
      return false;
    }
    // Mirror Cpu::do_vform: a busy vector unit faults and the CP carries
    // on; the descriptor words are read with the usual access cost.
    const bool busy = vpu_busy_ && vpu_done_ > T;
    AbsVal w[8];
    for (int i = 0; i < 8; ++i) {
      w[i] = data_read(abs_const(desc.v + 4 * static_cast<std::uint32_t>(i)),
                       cost);
    }
    if (busy) {
      commit(T, cost);
      iptr_ = next;
      return true;
    }
    if (!w[0].known || !w[1].known || !w[2].known || !w[3].known ||
        !w[4].known || !w[5].known) {
      commit(T, cost);
      stop(at, "vform descriptor contents are not statically known");
      return false;
    }
    const std::uint32_t form_w = w[0].v;
    const std::uint32_t n = w[2].v;
    const bool f64 = w[1].v != 0;
    bool bad = false;
    if (form_w > static_cast<std::uint32_t>(vpu::VectorForm::vcvt_narrow)) {
      diag(Severity::kError, "vform-overrun", at,
           "vform descriptor names undefined vector form " +
               std::to_string(form_w));
      bad = true;
    } else {
      const auto form = static_cast<vpu::VectorForm>(form_w);
      const std::size_t max_n =
          f64 ? mem::MemParams::kElems64 : mem::MemParams::kElems32;
      const std::size_t limit = (form == vpu::VectorForm::vcvt_widen ||
                                 form == vpu::VectorForm::vcvt_narrow)
                                    ? mem::MemParams::kElems64
                                    : max_n;
      if (n == 0 || n > limit) {
        diag(Severity::kError, "vform-overrun", at,
             "vform element count " + std::to_string(n) +
                 " overruns the " + std::to_string(limit) + "-element " +
                 (f64 ? "64" : "32") + "-bit vector row");
        bad = true;
      }
      for (int r = 3; r <= 5; ++r) {
        if (w[r].v >= mem::MemParams::kRows) {
          diag(Severity::kError, "vform-overrun", at,
               "vform row index " + std::to_string(w[r].v) +
                   " is outside the " +
                   std::to_string(mem::MemParams::kRows) + "-row memory");
          bad = true;
          break;
        }
      }
    }
    if (bad) {
      // The interpreter faults and continues without starting the pipes.
      commit(T, cost);
      iptr_ = next;
      return true;
    }
    vpu::VectorOp vop;
    vop.form = static_cast<vpu::VectorForm>(form_w);
    vop.prec = f64 ? vpu::Precision::f64 : vpu::Precision::f32;
    vop.n = n;
    vop.row_x = w[3].v;
    vop.row_y = w[4].v;
    vop.row_z = w[5].v;
    const SimTime duration = vpu_.duration_of(vop);
    vpu_busy_ = true;
    vpu_done_ = T + duration;  // scheduled at exec time, before the delay
    out_->vpu_busy += duration;
    ++out_->vforms;
    out_->flops +=
        static_cast<std::uint64_t>(n) * (vpu::uses_both_pipes(vop.form) ? 2 : 1);
    // Completion will overwrite the result words with data we can't know.
    store_range_unknown(desc.v + 32, 16);
    commit(T, cost);
    iptr_ = next;
    return true;
  }

  const cp::Program& prog_;
  const Cfg& cfg_;
  CostOptions opts_;
  CostPrediction* out_;
  std::unique_ptr<mem::NodeMemory> scratch_mem_;
  vpu::VectorUnit vpu_;

 public:
  Loops* loops_ = nullptr;

 private:
  AbsVal a_, b_, c_;
  std::uint32_t wptr_ = 0;
  std::uint32_t iptr_ = 0;
  SimTime t_{};
  bool vpu_busy_ = false;
  SimTime vpu_done_{};
  std::map<std::uint32_t, AbsVal> overlay_;
  bool havoc_ = false;
  std::set<std::uint32_t> heads_;
  std::map<std::uint32_t, std::uint64_t> head_counts_;
  std::set<std::pair<std::string, std::uint32_t>> seen_;
};

}  // namespace

CostPrediction predict_cost(const cp::Program& p, const CostOptions& opts) {
  CostPrediction out;
  if (p.bytes.empty()) {
    out.stop_reason = "program image is empty";
    return out;
  }

  std::set<std::uint32_t> entries = opts.entries;
  if (entries.empty()) {
    const auto it = p.symbols.find("main");
    entries.insert(it != p.symbols.end() ? it->second : p.entry());
  }
  // The verifier owns structural diagnostics; rebuild the CFG quietly.
  Report scratch;
  const Cfg cfg = build_cfg(p, entries, scratch);

  Loops loops = find_loops(cfg);

  CostExecutor ex{p, cfg, opts, out};
  ex.loops_ = &loops;
  std::set<std::uint32_t> heads;
  for (const LoopInfo& l : loops.info) {
    heads.insert(l.head);
  }
  ex.set_loop_heads(std::move(heads));
  ex.run(*entries.begin());

  // Loop verdicts: a completed prediction proves every traversed loop
  // bounded; kUnbounded set during the run (or structurally) stands.
  for (LoopInfo& l : loops.info) {
    if (l.verdict == LoopVerdict::kUnbounded) {
      const std::string what =
          "loop at " + [](std::uint32_t v) {
            std::ostringstream os;
            os << "0x" << std::hex << v;
            return os.str();
          }(l.head) +
          " has no statically-known bound";
      if (l.hot) {
        out.report.add(Severity::kWarning, "unbounded-hot-loop", l.back_edge,
                       0,
                       what + " and its body does channel or vector work — "
                              "predicted cost is a lower bound",
                       DiagClass::kPerformance);
      } else {
        out.report.add(Severity::kNote, "unbounded-loop", l.back_edge, 0,
                       what, DiagClass::kPerformance);
      }
      continue;
    }
    const auto cnt = ex.head_counts().find(l.head);
    if (out.complete) {
      l.verdict = LoopVerdict::kBounded;
      l.iterations = cnt != ex.head_counts().end() ? cnt->second : 0;
    } else {
      l.verdict = LoopVerdict::kUnknown;
    }
  }
  out.loops = loops.info;

  // Annotate source lines from the assembler's line map.
  for (Diagnostic& d : out.report.mutable_diagnostics()) {
    if (d.line == 0) {
      d.line = p.line_at(d.addr);
    }
  }
  return out;
}

}  // namespace fpst::check
