// Static per-cube-edge communication volume and channel-protocol checks
// (DESIGN.md §4.4).
//
// analyze_volume() lowers a CommSpec with the exact collective schedules
// the runtime executes (check/chan_graph.hpp's lower_comm), routes every
// resulting point-to-point message e-cube through
// net::ecube_edge_traffic — the same router the simulator's store-and-
// forward layer uses — and tallies, per undirected cube edge, how many
// messages cross it and how many payload bytes they carry.
//
// On top of the volume prediction it runs two channel-protocol checks
// that the deadlock search in chan_graph.cpp does not express:
//
//   * `chan-arity` (validity error): on a (destination, tag) channel with
//     no recvany, some source's send count differs from the matching recv
//     count; with a recvany the totals must balance instead.
//   * `payload-mismatch` (validity error): ops on one channel disagree on
//     the payload size (`elems`), so the receiver would copy a different
//     number of bytes than the sender staged.
//
// When the spec declares a per-edge wire-byte budget (the `budget`
// directive), edges whose predicted bytes exceed it raise `edge-overload`
// as a performance-class error — the input would run, but violates the
// stated link capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "check/diagnostics.hpp"
#include "net/hypercube.hpp"
#include "occam/commspec.hpp"

namespace fpst::check {

struct VolumeAnalysis {
  Report report;
  int dimension = 0;
  /// Point-to-point messages after lowering (collective hops included).
  std::uint64_t messages = 0;
  /// Payload bytes summed over messages (8 bytes per element).
  std::uint64_t payload_bytes = 0;
  /// Edge crossings summed over all e-cube routes.
  std::uint64_t total_hops = 0;
  /// Heaviest single edge, in crossings.
  std::uint64_t max_edge_crossings = 0;
  /// Per-edge loads, sorted by (a, b); zero-load edges omitted.
  std::vector<net::EdgeTraffic> edges;
};

VolumeAnalysis analyze_volume(const occam::CommSpec& spec);

}  // namespace fpst::check
