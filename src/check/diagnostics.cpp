#include "check/diagnostics.hpp"

#include <algorithm>
#include <sstream>

namespace fpst::check {

std::string to_string(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::size_t Report::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

std::size_t Report::count(Severity s, DiagClass c) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(), [s, c](const Diagnostic& d) {
        return d.severity == s && d.dclass == c;
      }));
}

bool Report::has(const std::string& code) const {
  return find(code) != nullptr;
}

const Diagnostic* Report::find(const std::string& code) const {
  for (const Diagnostic& d : diags_) {
    if (d.code == code) {
      return &d;
    }
  }
  return nullptr;
}

std::string Report::to_string(const std::string& unit) const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    os << unit;
    if (d.line != 0) {
      os << ":" << d.line;
    }
    os << ": " << check::to_string(d.severity) << "[" << d.code
       << "]: " << d.message;
    if (d.addr != 0) {
      os << " (at 0x" << std::hex << d.addr << std::dec << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace fpst::check
