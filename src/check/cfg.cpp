#include "check/cfg.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

namespace fpst::check {

namespace {

std::string hex(std::uint32_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

Flow Insn::flow() const {
  switch (d.op) {
    case cp::Op::j:
      return Flow::kJump;
    case cp::Op::cj:
      return Flow::kCondJump;
    case cp::Op::call:
      return Flow::kCall;
    case cp::Op::opr:
      switch (static_cast<cp::SecOp>(d.operand)) {
        case cp::SecOp::ret:
        case cp::SecOp::halt:
        case cp::SecOp::endp:
        case cp::SecOp::stopp:  // deschedule self, never requeued
          return Flow::kStop;
        default:
          return Flow::kFall;
      }
    default:
      return Flow::kFall;
  }
}

std::optional<std::uint32_t> Insn::static_target() const {
  if (d.op != cp::Op::j && d.op != cp::Op::cj && d.op != cp::Op::call) {
    return std::nullopt;
  }
  // j/cj/call operands are relative to the next instruction.
  return next() + static_cast<std::uint32_t>(d.operand);
}

Cfg build_cfg(const cp::Program& p, const std::set<std::uint32_t>& entries,
              Report& rep) {
  Cfg cfg;
  cfg.lo = p.org;
  cfg.hi = p.org + static_cast<std::uint32_t>(p.bytes.size());
  cfg.entries = entries;

  // ---- recursive-descent decode ----
  // blame[a] remembers which instruction first branched to `a`, for
  // mid-instruction diagnostics.
  std::map<std::uint32_t, std::uint32_t> blame;
  std::deque<std::uint32_t> work(entries.begin(), entries.end());
  std::set<std::uint32_t> truncated_reported;

  auto enqueue = [&](std::uint32_t target, const Insn& from,
                     const char* what) {
    if (!cfg.in_image(target)) {
      rep.error("bad-jump", from.addr,
                std::string(what) + " target " + hex(target) +
                    " is outside the program image [" + hex(cfg.lo) + ", " +
                    hex(cfg.hi) + ")");
      return;
    }
    blame.emplace(target, from.addr);
    work.push_back(target);
  };

  while (!work.empty()) {
    const std::uint32_t addr = work.front();
    work.pop_front();
    if (cfg.insns.count(addr) != 0 || !cfg.in_image(addr)) {
      continue;
    }
    Insn in;
    in.addr = addr;
    try {
      in.d = cp::decode(p.bytes, addr - cfg.lo);
    } catch (const std::runtime_error&) {
      if (truncated_reported.insert(addr).second) {
        rep.error("truncated-instruction", addr,
                  "prefix chain at " + hex(addr) +
                      " runs off the end of the program image");
      }
      continue;
    }
    cfg.insns.emplace(addr, in);

    const Flow f = in.flow();
    if (const auto t = in.static_target()) {
      enqueue(*t, in, in.d.op == cp::Op::call ? "call" : "jump");
    }
    if (f == Flow::kFall || f == Flow::kCondJump || f == Flow::kCall) {
      if (in.next() >= cfg.hi) {
        rep.error("falls-off-end", addr,
                  "execution falls off the end of the program image after " +
                      hex(addr));
      } else {
        work.push_back(in.next());
      }
    }
  }

  // ---- overlapping decodes: a transfer landed mid-instruction ----
  for (auto it = cfg.insns.begin(); it != cfg.insns.end(); ++it) {
    auto nx = std::next(it);
    if (nx == cfg.insns.end()) {
      break;
    }
    if (it->second.next() > nx->first) {
      const auto b = blame.find(nx->first);
      std::string msg = "instruction decoded at " + hex(nx->first) +
                        " overlaps the instruction at " + hex(it->first) +
                        " — a control transfer lands mid-instruction";
      rep.error("mid-instruction",
                b != blame.end() ? b->second : nx->first, std::move(msg));
    }
  }

  // ---- leaders and blocks ----
  std::set<std::uint32_t> leaders(entries.begin(), entries.end());
  for (const auto& [addr, in] : cfg.insns) {
    const Flow f = in.flow();
    if (const auto t = in.static_target(); t && cfg.in_image(*t)) {
      leaders.insert(*t);
    }
    if (f != Flow::kFall && cfg.insns.count(in.next()) != 0) {
      leaders.insert(in.next());
    }
  }

  for (const auto& [addr, in] : cfg.insns) {
    (void)in;
    if (leaders.count(addr) == 0) {
      continue;
    }
    BasicBlock bb;
    bb.start = addr;
    std::uint32_t a = addr;
    for (;;) {
      const auto it = cfg.insns.find(a);
      if (it == cfg.insns.end()) {
        break;  // decode failed past here (already diagnosed)
      }
      bb.insns.push_back(it->second);
      const Insn& cur = it->second;
      const Flow f = cur.flow();
      const bool block_ends =
          f != Flow::kFall || leaders.count(cur.next()) != 0;
      if (block_ends) {
        const auto add_succ = [&](std::uint32_t s) {
          if (cfg.insns.count(s) != 0) {
            bb.succs.push_back(s);
          }
        };
        switch (f) {
          case Flow::kJump:
            if (const auto t = cur.static_target()) {
              add_succ(*t);
            }
            break;
          case Flow::kCondJump:
          case Flow::kCall:
            if (const auto t = cur.static_target()) {
              add_succ(*t);
            }
            add_succ(cur.next());
            break;
          case Flow::kFall:
            add_succ(cur.next());
            break;
          case Flow::kStop:
            break;
        }
        break;
      }
      a = cur.next();
    }
    if (!bb.insns.empty()) {
      cfg.blocks.emplace(addr, std::move(bb));
    }
  }
  return cfg;
}

}  // namespace fpst::check
