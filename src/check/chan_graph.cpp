#include "check/chan_graph.hpp"

#include <bit>
#include <deque>
#include <functional>
#include <optional>
#include <sstream>

namespace fpst::check {

namespace {

using occam::CommKind;
using occam::CommOp;
using occam::CommSpec;

std::string node_op_desc(const CommSpec& spec, net::NodeId n,
                         const CommEvent& e) {
  std::ostringstream os;
  os << "node " << n << " op #" << e.origin << " ("
     << occam::to_string(spec.ops(n)[e.origin]) << ")";
  if (!e.detail.empty()) {
    os << ", " << e.detail;
  }
  return os.str();
}

/// Source line of the CommOp an event lowered from (0 when the spec was
/// built from C++ rather than parsed).
std::size_t op_line(const CommSpec& spec, net::NodeId n, std::size_t origin) {
  return spec.ops(n)[origin].line;
}

struct Mail {
  net::NodeId src;
  std::uint32_t tag;
  std::size_t origin;  ///< sender-side CommOp index, for line mapping
};

}  // namespace

std::vector<CommEvent> lower_comm(const CommSpec& spec, net::NodeId id) {
  const int dim = spec.dimension();
  std::vector<CommEvent> ev;
  std::uint32_t internal_seq = 0;
  const auto internal_tag = [&internal_seq]() {
    return 0x8000u | (internal_seq++ & 0x7FFFu);
  };
  // Collective hops always carry one 64-bit scalar (the occam.cpp
  // schedules exchange a single double per dimension).
  const auto push = [&](bool is_send, net::NodeId peer, std::uint32_t tag,
                        std::uint32_t elems, std::size_t origin,
                        std::string detail) {
    ev.push_back(
        CommEvent{is_send, false, peer, tag, elems, origin, std::move(detail)});
  };

  const std::vector<CommOp>& ops = spec.ops(id);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const CommOp& op = ops[i];
    switch (op.kind) {
      case CommKind::kSend:
        push(true, op.peer, op.tag, op.elems, i, "");
        break;
      case CommKind::kRecv:
        push(false, op.peer, op.tag, op.elems, i, "");
        break;
      case CommKind::kRecvAny:
        ev.push_back(CommEvent{false, true, 0, op.tag, op.elems, i, ""});
        break;
      case CommKind::kBarrier: {
        const std::uint32_t t = internal_tag();
        for (int k = 0; k < dim; ++k) {
          const net::NodeId peer = id ^ (net::NodeId{1} << k);
          const std::string d = "exchange, dimension " + std::to_string(k);
          push(true, peer, t, 1, i, d);
          push(false, peer, t, 1, i, d);
        }
        break;
      }
      case CommKind::kBroadcast: {
        const std::uint32_t t = internal_tag();
        const std::uint32_t rel = id ^ op.peer;
        int first_send_dim = 0;
        if (rel != 0) {
          const int j = static_cast<int>(std::bit_width(rel)) - 1;
          push(false, id ^ (net::NodeId{1} << j), t, 1, i,
               "tree arrival, dimension " + std::to_string(j));
          first_send_dim = j + 1;
        }
        for (int k = first_send_dim; k < dim; ++k) {
          push(true, id ^ (net::NodeId{1} << k), t, 1, i,
               "tree fan-out, dimension " + std::to_string(k));
        }
        break;
      }
      case CommKind::kReduce: {
        const std::uint32_t t = internal_tag();
        const std::uint32_t rel = id ^ op.peer;
        bool merged_upstream = false;
        for (int k = dim - 1; k >= 0 && !merged_upstream; --k) {
          const std::uint32_t bit = std::uint32_t{1} << k;
          if (rel < bit) {
            push(false, id ^ bit, t, 1, i,
                 "tree merge, dimension " + std::to_string(k));
          } else if (rel < 2 * bit) {
            push(true, id ^ bit, t, 1, i,
                 "tree partial, dimension " + std::to_string(k));
            merged_upstream = true;
          }
        }
        break;
      }
      case CommKind::kAllreduce: {
        const std::uint32_t t = internal_tag();
        for (int k = 0; k < dim; ++k) {
          const net::NodeId peer = id ^ (net::NodeId{1} << k);
          const std::string d =
              "dimension exchange, dimension " + std::to_string(k);
          push(true, peer, t, 1, i, d);
          push(false, peer, t, 1, i, d);
        }
        break;
      }
    }
  }
  return ev;
}

CommAnalysis analyze_comm(const CommSpec& spec) {
  CommAnalysis res;
  const std::size_t n = spec.size();

  std::vector<std::vector<CommEvent>> ev(n);
  for (net::NodeId id = 0; id < n; ++id) {
    ev[id] = lower_comm(spec, id);
  }

  // ---- abstract execution: buffered sends, blocking receives ----
  std::vector<std::size_t> pc(n, 0);
  std::vector<std::deque<Mail>> mail(n);

  bool progress = true;
  while (progress) {
    progress = false;
    for (net::NodeId id = 0; id < n; ++id) {
      while (pc[id] < ev[id].size()) {
        const CommEvent& e = ev[id][pc[id]];
        if (e.is_send) {
          mail[e.peer].push_back(Mail{id, e.tag, e.origin});
          ++pc[id];
          progress = true;
          continue;
        }
        auto& box = mail[id];
        auto it = box.end();
        for (auto m = box.begin(); m != box.end(); ++m) {
          if (m->tag == e.tag && (e.any || m->src == e.peer)) {
            it = m;
            break;
          }
        }
        if (it == box.end()) {
          break;  // blocked
        }
        box.erase(it);
        ++pc[id];
        progress = true;
      }
    }
  }

  std::vector<net::NodeId> blocked;
  for (net::NodeId id = 0; id < n; ++id) {
    if (pc[id] < ev[id].size()) {
      blocked.push_back(id);
    }
  }

  if (blocked.empty()) {
    // Every node ran to completion; leftover messages are still suspicious.
    for (net::NodeId id = 0; id < n; ++id) {
      for (const Mail& m : mail[id]) {
        std::ostringstream os;
        os << "message (node " << m.src << " -> node " << id << ", tag "
           << m.tag << ") is sent but never received";
        res.report.add(Severity::kWarning, "unconsumed-message", 0,
                       op_line(spec, m.src, m.origin), os.str(),
                       DiagClass::kValidity);
      }
    }
    return res;
  }

  // ---- wait-for graph over the blocked nodes ----
  std::vector<int> is_blocked(n, 0);
  for (const net::NodeId b : blocked) {
    is_blocked[b] = 1;
  }
  const auto wait_targets = [&](net::NodeId id) {
    std::vector<net::NodeId> out;
    const CommEvent& e = ev[id][pc[id]];
    if (e.any) {
      for (const net::NodeId b : blocked) {
        if (b != id) {
          out.push_back(b);
        }
      }
    } else if (is_blocked[e.peer] != 0) {
      out.push_back(e.peer);
    }
    return out;
  };

  // DFS cycle search over blocked nodes.
  std::vector<int> color(n, 0);  // 0 white, 1 on stack, 2 done
  std::vector<net::NodeId> stack;
  std::optional<std::vector<net::NodeId>> cycle;
  const std::function<bool(net::NodeId)> dfs = [&](net::NodeId u) -> bool {
    color[u] = 1;
    stack.push_back(u);
    for (const net::NodeId v : wait_targets(u)) {
      if (color[v] == 1) {
        // Found a cycle: slice it out of the stack.
        std::vector<net::NodeId> cyc;
        auto it = stack.begin();
        while (*it != v) {
          ++it;
        }
        cyc.assign(it, stack.end());
        cyc.push_back(v);
        cycle = std::move(cyc);
        return true;
      }
      if (color[v] == 0 && dfs(v)) {
        return true;
      }
    }
    stack.pop_back();
    color[u] = 2;
    return false;
  };
  for (const net::NodeId b : blocked) {
    if (color[b] == 0 && dfs(b)) {
      break;
    }
  }

  if (cycle.has_value()) {
    res.deadlock = true;
    res.cycle = *cycle;
    std::ostringstream os;
    os << "communication deadlock: cyclic wait ";
    for (std::size_t i = 0; i < cycle->size(); ++i) {
      os << "node " << (*cycle)[i];
      if (i + 1 < cycle->size()) {
        os << " -> ";
      }
    }
    // The summary spans nodes; the first participant's line anchors it.
    const net::NodeId first = cycle->front();
    res.report.add(Severity::kError, "deadlock", 0,
                   op_line(spec, first, ev[first][pc[first]].origin),
                   os.str(), DiagClass::kValidity);
    for (std::size_t i = 0; i + 1 < cycle->size(); ++i) {
      const net::NodeId b = (*cycle)[i];  // last entry repeats the first
      const CommEvent& e = ev[b][pc[b]];
      std::ostringstream ns;
      ns << node_op_desc(spec, b, e) << " is blocked on ";
      if (e.any) {
        ns << "recv_any(tag " << e.tag << ")";
      } else {
        ns << "recv(src " << e.peer << ", tag " << e.tag << ")";
      }
      res.report.add(Severity::kNote, "deadlock-participant", 0,
                     op_line(spec, b, e.origin), ns.str(),
                     DiagClass::kValidity);
    }
    return res;
  }

  // No cycle: each blocked node waits on a message that is never sent.
  res.deadlock = true;
  for (const net::NodeId b : blocked) {
    const CommEvent& e = ev[b][pc[b]];
    std::ostringstream os;
    os << node_op_desc(spec, b, e) << " waits for ";
    if (e.any) {
      os << "any message with tag " << e.tag;
    } else {
      os << "a message from node " << e.peer << " with tag " << e.tag;
    }
    os << " that is never sent";
    res.report.add(Severity::kError, "stuck-recv", 0,
                   op_line(spec, b, e.origin), os.str(),
                   DiagClass::kValidity);
  }
  return res;
}

}  // namespace fpst::check
