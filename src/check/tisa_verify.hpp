// Static verifier for assembled TISA programs (DESIGN.md §6.1).
//
// Recovers the control-flow graph (check/cfg.hpp) and abstractly interprets
// every basic block to a fixpoint. The abstract state is the three-register
// evaluation stack: a depth in {0..3, unknown} plus a constant/unknown
// lattice value per register. On top of the structural CFG diagnostics this
// flags, at build time, the classes of fault the interpreter in cp/cpu.cpp
// only reports dynamically:
//
//   * eval-stack underflow (reading operands that were never pushed) and
//     overflow (pushing a fourth value silently drops the C register),
//   * ldnl/stnl/lb/sb/move/gather/scatter addresses provably outside the
//     DRAM / on-chip / hard-channel memory map of cp/isa.hpp,
//   * vform descriptor addresses outside DRAM, unaligned, or whose 48-byte
//     descriptor block does not fit in DRAM,
//   * in/out on malformed hard-channel addresses: port or sublink out of
//     range for a 4-link node, reserved bits set, or a direction bit that
//     contradicts the operation,
//   * division by a constant zero,
//   * unreachable code (gaps the CFG walk never reached that are neither
//     zero-filled padding nor labelled data).
//
// `startp` targets found constant are added as extra program entry points
// and analysed with a fresh stack, exactly as the scheduler would run them.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "check/cfg.hpp"
#include "check/diagnostics.hpp"
#include "cp/assembler.hpp"

namespace fpst::check {

// ---- the abstract-interpretation lattice ------------------------------
//
// Exported so the cost model (check/cost_model.hpp) reuses the exact
// transfer functions the verifier fixpoints over, and so property tests
// can check the lattice laws (join commutativity/associativity/
// idempotence, transfer monotonicity) directly.

/// One abstract register: a known 32-bit constant or top (unknown).
struct AbsVal {
  bool known = false;
  std::uint32_t v = 0;
};

inline AbsVal abs_const(std::uint32_t v) { return AbsVal{true, v}; }
inline AbsVal abs_unknown() { return AbsVal{}; }

inline bool operator==(const AbsVal& x, const AbsVal& y) {
  return x.known == y.known && (!x.known || x.v == y.v);
}
inline bool operator!=(const AbsVal& x, const AbsVal& y) { return !(x == y); }

/// Abstract machine state: the A/B/C evaluation stack. `depth` is the
/// number of live values (-1 once control paths joined with different
/// depths — both depth checks are then suppressed, matching programs like
/// the cj idiom where the taken path keeps A and the fall-through pops it).
struct AbsStack {
  int depth = 0;  // -1 = unknown
  AbsVal a, b, c;
};

inline bool operator==(const AbsStack& x, const AbsStack& y) {
  return x.depth == y.depth && x.a == y.a && x.b == y.b && x.c == y.c;
}
inline bool operator!=(const AbsStack& x, const AbsStack& y) {
  return !(x == y);
}

/// Lattice join: widen `into` until it also covers `from`. Returns true
/// when `into` changed (the fixpoint loop's convergence signal).
bool abs_join(AbsStack& into, const AbsStack& from);

/// Partial order: x ⊑ y iff every concrete state x describes, y describes
/// too (y is at least as abstract as x).
bool abs_leq(const AbsStack& x, const AbsStack& y);

/// Diagnostic-free transfer function: the stack effect of one decoded
/// instruction, byte-identical to what the verifier applies while it also
/// emits diagnostics. Depth underflow is clamped to the operand count the
/// instruction reads (the verifier reports it; pure callers just keep a
/// total function). Edge-specific effects of cj/call are NOT applied here
/// — they belong to CFG edges, not instructions.
void abs_step(const Insn& in, AbsStack& st);

struct VerifyOptions {
  /// Physical links per node (hard-channel port range).
  int ports = 4;
  /// Sublinks multiplexed onto each link.
  int sublinks = 4;
  /// Extra entry points (absolute addresses) beside the default one.
  /// When empty, the entry is the `main` symbol if defined, else the org.
  std::set<std::uint32_t> entries;
};

/// One constant hard-channel endpoint referenced by an `in`/`out`, for
/// cross-program wiring summaries.
struct HardChanUse {
  std::uint32_t addr = 0;  ///< instruction address of the in/out
  int port = 0;
  int sublink = 0;
  int dir = 0;  ///< 0 = output, 1 = input (address convention)
  bool is_input = false;  ///< the operation was `in`
};

struct VerifyResult {
  Report report;
  Cfg cfg;
  std::vector<HardChanUse> hard_chans;
};

/// Run every analysis over `p`. Diagnostics are line-annotated from
/// `p.lines` when the assembler recorded source lines.
VerifyResult verify(const cp::Program& p, const VerifyOptions& opts = {});

}  // namespace fpst::check
