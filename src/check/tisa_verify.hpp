// Static verifier for assembled TISA programs (DESIGN.md §6.1).
//
// Recovers the control-flow graph (check/cfg.hpp) and abstractly interprets
// every basic block to a fixpoint. The abstract state is the three-register
// evaluation stack: a depth in {0..3, unknown} plus a constant/unknown
// lattice value per register. On top of the structural CFG diagnostics this
// flags, at build time, the classes of fault the interpreter in cp/cpu.cpp
// only reports dynamically:
//
//   * eval-stack underflow (reading operands that were never pushed) and
//     overflow (pushing a fourth value silently drops the C register),
//   * ldnl/stnl/lb/sb/move/gather/scatter addresses provably outside the
//     DRAM / on-chip / hard-channel memory map of cp/isa.hpp,
//   * vform descriptor addresses outside DRAM, unaligned, or whose 48-byte
//     descriptor block does not fit in DRAM,
//   * in/out on malformed hard-channel addresses: port or sublink out of
//     range for a 4-link node, reserved bits set, or a direction bit that
//     contradicts the operation,
//   * division by a constant zero,
//   * unreachable code (gaps the CFG walk never reached that are neither
//     zero-filled padding nor labelled data).
//
// `startp` targets found constant are added as extra program entry points
// and analysed with a fresh stack, exactly as the scheduler would run them.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "check/cfg.hpp"
#include "check/diagnostics.hpp"
#include "cp/assembler.hpp"

namespace fpst::check {

struct VerifyOptions {
  /// Physical links per node (hard-channel port range).
  int ports = 4;
  /// Sublinks multiplexed onto each link.
  int sublinks = 4;
  /// Extra entry points (absolute addresses) beside the default one.
  /// When empty, the entry is the `main` symbol if defined, else the org.
  std::set<std::uint32_t> entries;
};

/// One constant hard-channel endpoint referenced by an `in`/`out`, for
/// cross-program wiring summaries.
struct HardChanUse {
  std::uint32_t addr = 0;  ///< instruction address of the in/out
  int port = 0;
  int sublink = 0;
  int dir = 0;  ///< 0 = output, 1 = input (address convention)
  bool is_input = false;  ///< the operation was `in`
};

struct VerifyResult {
  Report report;
  Cfg cfg;
  std::vector<HardChanUse> hard_chans;
};

/// Run every analysis over `p`. Diagnostics are line-annotated from
/// `p.lines` when the assembler recorded source lines.
VerifyResult verify(const cp::Program& p, const VerifyOptions& opts = {});

}  // namespace fpst::check
