#include "check/tisa_verify.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <utility>

#include "cp/isa.hpp"

namespace fpst::check {

bool abs_join(AbsStack& into, const AbsStack& from) {
  bool changed = false;
  if (into.depth != from.depth && into.depth != -1) {
    into.depth = -1;
    changed = true;
  }
  for (auto [dst, src] : {std::pair{&into.a, &from.a},
                          std::pair{&into.b, &from.b},
                          std::pair{&into.c, &from.c}}) {
    if (*dst != *src && dst->known) {
      *dst = abs_unknown();
      changed = true;
    }
  }
  return changed;
}

bool abs_leq(const AbsStack& x, const AbsStack& y) {
  const auto val_leq = [](const AbsVal& a, const AbsVal& b) {
    return !b.known || (a.known && a.v == b.v);
  };
  return (y.depth == -1 || x.depth == y.depth) && val_leq(x.a, y.a) &&
         val_leq(x.b, y.b) && val_leq(x.c, y.c);
}

namespace {

std::string hex(std::uint32_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

constexpr int kMaxDepth = 3;

class Verifier;

// The single transfer function shared by the verifier (v != nullptr:
// diagnostics and hard-channel discovery fire) and by pure abstract
// stepping via abs_step (v == nullptr: stack effect only). Keeping one
// switch guarantees the cost model and the property tests interpret
// instructions exactly as the verifier does.
void step(const Insn& in, AbsStack& st, Verifier* v);

class Verifier {
 public:
  Verifier(const cp::Program& p, const VerifyOptions& opts)
      : prog_{p}, opts_{opts} {}

  VerifyResult run() {
    std::set<std::uint32_t> entries = opts_.entries;
    if (entries.empty()) {
      const auto it = prog_.symbols.find("main");
      entries.insert(it != prog_.symbols.end() ? it->second : prog_.entry());
    }
    // startp targets discovered constant become entry points of their own;
    // iterate until the entry set stabilises (bounded: entries only grow).
    VerifyResult result;
    for (int iter = 0; iter < 8; ++iter) {
      result = analyze(entries);
      std::set<std::uint32_t> next = entries;
      next.insert(discovered_.begin(), discovered_.end());
      if (next == entries) {
        break;
      }
      entries = std::move(next);
    }
    annotate_lines(result.report);
    return result;
  }

  // ---- deduplicated diagnostics (fixpoint visits blocks repeatedly) ----
  void diag(Severity sev, const char* code, std::uint32_t addr,
            std::string msg) {
    if (seen_.insert({code, addr}).second) {
      rep_->add(sev, code, addr, std::move(msg));
    }
  }

  // ---- memory-map checks ----
  bool mapped_word(std::uint32_t addr) const {
    return (addr + 3 < cp::kDramBytes) ||
           (addr >= cp::kOnChipBase &&
            addr + 3 < cp::kOnChipBase + cp::kOnChipBytes);
  }
  bool mapped_byte(std::uint32_t addr) const {
    return addr < cp::kDramBytes ||
           (addr >= cp::kOnChipBase &&
            addr < cp::kOnChipBase + cp::kOnChipBytes);
  }

  void check_word_addr(std::uint32_t at, const AbsVal& a, const char* what) {
    if (!a.known) {
      return;
    }
    if (cp::is_hard_chan(a.v)) {
      diag(Severity::kError, "bad-address", at,
           std::string(what) + " address " + hex(a.v) +
               " is in the hard-channel region — not data memory");
      return;
    }
    if (!mapped_word(a.v)) {
      diag(Severity::kError, "bad-address", at,
           std::string(what) + " address " + hex(a.v) +
               " is outside the DRAM / on-chip memory map");
      return;
    }
    if ((a.v & 3u) != 0) {
      diag(Severity::kWarning, "unaligned-word", at,
           std::string(what) + " address " + hex(a.v) +
               " is not word-aligned");
    }
  }

  void check_byte_addr(std::uint32_t at, const AbsVal& a, const char* what) {
    if (!a.known) {
      return;
    }
    if (cp::is_hard_chan(a.v) || !mapped_byte(a.v)) {
      diag(Severity::kError, "bad-address", at,
           std::string(what) + " address " + hex(a.v) +
               " is outside the DRAM / on-chip memory map");
    }
  }

  void check_channel(std::uint32_t at, const AbsVal& chan, bool is_input) {
    if (!chan.known) {
      return;
    }
    const std::uint32_t c = chan.v;
    if (cp::is_hard_chan(c)) {
      const int port = static_cast<int>((c >> 3) & 0xF);
      const int sublink = static_cast<int>((c >> 1) & 0x3);
      const int dir = static_cast<int>(c & 1u);
      if ((c & 0x0FFF'FF80u) != 0) {
        diag(Severity::kError, "bad-hard-chan", at,
             "hard-channel address " + hex(c) +
                 " has reserved bits set — not a valid (port, sublink, dir) "
                 "encoding");
        return;
      }
      if (port >= opts_.ports) {
        std::ostringstream os;
        os << "hard-channel address " << hex(c) << " names port " << port
           << " but the node has only " << opts_.ports << " links";
        diag(Severity::kError, "bad-hard-chan", at, os.str());
        return;
      }
      if (sublink >= opts_.sublinks) {
        std::ostringstream os;
        os << "hard-channel address " << hex(c) << " names sublink "
           << sublink << " but each link has only " << opts_.sublinks
           << " sublinks";
        diag(Severity::kError, "bad-hard-chan", at, os.str());
        return;
      }
      if ((dir == 1) != is_input) {
        diag(Severity::kWarning, "hard-chan-direction", at,
             std::string(is_input ? "`in`" : "`out`") +
                 " on hard channel " + hex(c) +
                 " whose direction bit says " +
                 (dir == 1 ? "input" : "output") +
                 " — by convention dir 0 transmits, dir 1 receives");
      }
      hard_chans_.push_back(HardChanUse{at, port, sublink, dir, is_input});
      return;
    }
    // Soft channel: a word in ordinary memory.
    check_word_addr(at, chan, "soft-channel word");
  }

  void check_vform(std::uint32_t at, const AbsVal& desc) {
    if (!desc.known) {
      return;
    }
    const std::uint32_t d = desc.v;
    const std::uint32_t bytes = cp::kVformDescWords * 4;
    if (d >= cp::kDramBytes || d + bytes > cp::kDramBytes) {
      diag(Severity::kError, "bad-vform-desc", at,
           "vform descriptor at " + hex(d) + " does not fit in DRAM (" +
               std::to_string(bytes) + "-byte block must lie below " +
               hex(cp::kDramBytes) + ")");
      return;
    }
    if ((d & 3u) != 0) {
      diag(Severity::kError, "bad-vform-desc", at,
           "vform descriptor address " + hex(d) + " is not word-aligned");
    }
  }

  /// Record a constant startp target: an extra entry point if it lands in
  /// the image, an error otherwise.
  void note_startp(std::uint32_t at, std::uint32_t target) {
    const std::uint32_t lo = prog_.org;
    const std::uint32_t hi =
        prog_.org + static_cast<std::uint32_t>(prog_.bytes.size());
    if (target < lo || target >= hi) {
      diag(Severity::kError, "bad-startp-target", at,
           "startp spawns code at " + hex(target) +
               ", outside the program image");
    } else {
      discovered_.insert(target);
    }
  }

 private:
  VerifyResult analyze(const std::set<std::uint32_t>& entries) {
    VerifyResult res;
    seen_.clear();
    discovered_.clear();
    hard_chans_.clear();
    rep_ = &res.report;

    if (prog_.bytes.empty()) {
      res.report.note("empty-program", 0, "program image is empty");
      return res;
    }
    std::set<std::uint32_t> valid_entries;
    for (const std::uint32_t e : entries) {
      if (e >= prog_.org &&
          e < prog_.org + static_cast<std::uint32_t>(prog_.bytes.size())) {
        valid_entries.insert(e);
      } else {
        res.report.error("bad-entry", e,
                         "entry point " + hex(e) +
                             " is outside the program image");
      }
    }
    res.cfg = build_cfg(prog_, valid_entries, res.report);
    interpret(res.cfg);
    report_unreachable(res.cfg);
    res.hard_chans = hard_chans_;
    return res;
  }

  void interpret(const Cfg& cfg) {
    std::map<std::uint32_t, AbsStack> in_states;
    std::deque<std::uint32_t> work;
    for (const std::uint32_t e : cfg.entries) {
      if (cfg.blocks.count(e) != 0) {
        AbsStack fresh;  // depth 0, regs unknown
        in_states.emplace(e, fresh);
        work.push_back(e);
      }
    }

    const auto propagate = [&](std::uint32_t succ, const AbsStack& st) {
      const auto [it, inserted] = in_states.emplace(succ, st);
      if (inserted || abs_join(it->second, st)) {
        work.push_back(succ);
      }
    };

    while (!work.empty()) {
      const std::uint32_t start = work.front();
      work.pop_front();
      const auto bit = cfg.blocks.find(start);
      if (bit == cfg.blocks.end()) {
        continue;
      }
      const BasicBlock& bb = bit->second;
      AbsStack st = in_states.at(start);
      for (const Insn& in : bb.insns) {
        step(in, st, this);
      }
      // Edge-specific effects of the terminator.
      const Insn& term = bb.terminator();
      const auto target = term.static_target();
      switch (term.flow()) {
        case Flow::kCondJump: {
          AbsStack taken = st;
          taken.a = abs_const(0);  // cj branches exactly when A == 0
          AbsStack fall = st;
          fall.a = fall.b;
          fall.b = fall.c;
          fall.c = abs_unknown();
          if (fall.depth > 0) {
            --fall.depth;
          }
          if (target && cfg.blocks.count(*target) != 0) {
            propagate(*target, taken);
          }
          if (cfg.blocks.count(term.next()) != 0) {
            propagate(term.next(), fall);
          }
          break;
        }
        case Flow::kCall: {
          if (target && cfg.blocks.count(*target) != 0) {
            propagate(*target, st);  // callee sees the caller's stack
          }
          // At the return point assume the callee preserved the depth
          // (result in A by convention) but trust no register values.
          AbsStack ret = st;
          ret.a = ret.b = ret.c = abs_unknown();
          if (cfg.blocks.count(term.next()) != 0) {
            propagate(term.next(), ret);
          }
          break;
        }
        default:
          for (const std::uint32_t s : bb.succs) {
            propagate(s, st);
          }
          break;
      }
    }
  }

  void report_unreachable(const Cfg& cfg) {
    if (cfg.hi <= cfg.lo) {
      return;
    }
    std::vector<bool> covered(prog_.bytes.size(), false);
    for (const auto& [addr, in] : cfg.insns) {
      for (std::uint32_t b = addr; b < in.next() && b < cfg.hi; ++b) {
        covered[b - cfg.lo] = true;
      }
    }
    std::size_t i = 0;
    while (i < covered.size()) {
      if (covered[i]) {
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j < covered.size() && !covered[j]) {
        ++j;
      }
      const std::uint32_t g0 = cfg.lo + static_cast<std::uint32_t>(i);
      const std::uint32_t g1 = cfg.lo + static_cast<std::uint32_t>(j);
      const bool all_zero = std::all_of(
          prog_.bytes.begin() + static_cast<std::ptrdiff_t>(i),
          prog_.bytes.begin() + static_cast<std::ptrdiff_t>(j),
          [](std::uint8_t b) { return b == 0; });
      const bool labelled = std::any_of(
          prog_.symbols.begin(), prog_.symbols.end(),
          [&](const auto& kv) { return kv.second >= g0 && kv.second < g1; });
      // Zero-filled gaps are .space/.align padding; labelled gaps are data.
      if (!all_zero && !labelled) {
        diag(Severity::kWarning, "unreachable-code", g0,
             "bytes [" + hex(g0) + ", " + hex(g1) +
                 ") are never reached from any entry point");
      }
      i = j;
    }
  }

  void annotate_lines(Report& rep) {
    for (Diagnostic& d : rep.mutable_diagnostics()) {
      if (d.line == 0) {
        d.line = prog_.line_at(d.addr);
      }
    }
  }

  const cp::Program& prog_;
  VerifyOptions opts_;
  Report* rep_ = nullptr;
  std::set<std::pair<std::string, std::uint32_t>> seen_;
  std::set<std::uint32_t> discovered_;
  std::vector<HardChanUse> hard_chans_;
};

// ---- stack helpers shared by both stepping modes ----

void do_push(AbsStack& st, std::uint32_t at, AbsVal v, Verifier* ver) {
  if (st.depth == kMaxDepth) {
    if (ver != nullptr) {
      ver->diag(Severity::kWarning, "stack-overflow", at,
                "push onto a full evaluation stack silently drops the C "
                "register");
    }
  } else if (st.depth >= 0) {
    ++st.depth;
  }
  st.c = st.b;
  st.b = st.a;
  st.a = v;
}

/// Check that `n` operands are live before an op reads them. The depth
/// clamp applies in both modes so the transfer function stays total.
void do_need(AbsStack& st, std::uint32_t at, int n, const char* what,
             Verifier* ver) {
  if (st.depth >= 0 && st.depth < n) {
    if (ver != nullptr) {
      std::ostringstream os;
      os << what << " needs " << n << " stack operand" << (n > 1 ? "s" : "")
         << " but only " << st.depth << (st.depth == 1 ? " is" : " are")
         << " live — evaluation-stack underflow";
      ver->diag(Severity::kError, "stack-underflow", at, os.str());
    }
    st.depth = n;  // assume satisfied to avoid cascading reports
  }
}

void do_pop(AbsStack& st) {
  st.a = st.b;
  st.b = st.c;
  st.c = abs_unknown();
  if (st.depth > 0) {
    --st.depth;
  }
}

void step_secondary(const Insn& in, AbsStack& st, Verifier* v) {
  using cp::SecOp;
  const std::uint32_t at = in.addr;
  const auto op = static_cast<SecOp>(in.d.operand);

  // B-and-A arithmetic: need 2, pop 1, combine into A.
  const auto binop = [&](const char* name, auto f) {
    do_need(st, at, 2, name, v);
    AbsVal r = abs_unknown();
    if (st.a.known && st.b.known) {
      r = abs_const(f(st.b.v, st.a.v));
    }
    const AbsVal saved_c = st.c;
    do_pop(st);
    st.a = r;
    st.b = saved_c;
  };

  switch (op) {
    case SecOp::rev:
      do_need(st, at, 2, "rev", v);
      std::swap(st.a, st.b);
      break;
    case SecOp::add:
      binop("add", [](std::uint32_t b, std::uint32_t a) { return b + a; });
      break;
    case SecOp::sub:
      binop("sub", [](std::uint32_t b, std::uint32_t a) { return b - a; });
      break;
    case SecOp::mul:
      binop("mul", [](std::uint32_t b, std::uint32_t a) {
        return static_cast<std::uint32_t>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(b)) *
            static_cast<std::int64_t>(static_cast<std::int32_t>(a)));
      });
      break;
    case SecOp::divi:
    case SecOp::rem: {
      do_need(st, at, 2, op == SecOp::divi ? "div" : "rem", v);
      if (st.a.known && st.a.v == 0 && v != nullptr) {
        v->diag(Severity::kError, "div-by-zero", at,
                "division by a constant zero traps at run time");
      }
      do_pop(st);
      st.a = abs_unknown();
      break;
    }
    case SecOp::land:
      binop("and", [](std::uint32_t b, std::uint32_t a) { return b & a; });
      break;
    case SecOp::lor:
      binop("or", [](std::uint32_t b, std::uint32_t a) { return b | a; });
      break;
    case SecOp::lxor:
      binop("xor", [](std::uint32_t b, std::uint32_t a) { return b ^ a; });
      break;
    case SecOp::lnot:
      do_need(st, at, 1, "not", v);
      st.a = st.a.known ? abs_const(~st.a.v) : abs_unknown();
      break;
    case SecOp::shl:
      binop("shl", [](std::uint32_t b, std::uint32_t a) {
        return a >= 32 ? 0u : b << a;
      });
      break;
    case SecOp::shr:
      binop("shr", [](std::uint32_t b, std::uint32_t a) {
        return a >= 32 ? 0u : b >> a;
      });
      break;
    case SecOp::gt:
      binop("gt", [](std::uint32_t b, std::uint32_t a) {
        return static_cast<std::int32_t>(b) > static_cast<std::int32_t>(a)
                   ? 1u
                   : 0u;
      });
      break;
    case SecOp::mint:
      do_push(st, at, abs_const(cp::kNotProcess), v);
      break;
    case SecOp::ldpi:
      do_need(st, at, 1, "ldpi", v);
      st.a = st.a.known ? abs_const(in.next() + st.a.v) : abs_unknown();
      break;
    case SecOp::wsub:
      binop("wsub",
            [](std::uint32_t b, std::uint32_t a) { return a + 4 * b; });
      break;
    case SecOp::bsub:
      binop("bsub",
            [](std::uint32_t b, std::uint32_t a) { return a + b; });
      break;
    case SecOp::lb:
      do_need(st, at, 1, "lb", v);
      if (v != nullptr) {
        v->check_byte_addr(at, st.a, "byte load");
      }
      st.a = abs_unknown();
      break;
    case SecOp::sb:
      do_need(st, at, 2, "sb", v);
      if (v != nullptr) {
        v->check_byte_addr(at, st.a, "byte store");
      }
      do_pop(st);
      do_pop(st);
      break;
    case SecOp::move:
      do_need(st, at, 3, "move", v);
      if (v != nullptr) {
        v->check_byte_addr(at, st.c, "move source");
        v->check_byte_addr(at, st.b, "move destination");
      }
      do_pop(st);
      do_pop(st);
      do_pop(st);
      break;
    case SecOp::in:
    case SecOp::out:
      do_need(st, at, 3, op == SecOp::in ? "in" : "out", v);
      if (v != nullptr) {
        v->check_channel(at, st.b, op == SecOp::in);
        v->check_byte_addr(at, st.c, op == SecOp::in ? "channel destination"
                                                     : "channel source");
      }
      do_pop(st);
      do_pop(st);
      do_pop(st);
      // The process deschedules; registers are not preserved across the
      // reschedule in this machine.
      st.a = st.b = st.c = abs_unknown();
      break;
    case SecOp::startp: {
      do_need(st, at, 2, "startp", v);
      if (st.b.known && v != nullptr) {  // B carries the child's address
        v->note_startp(at, st.b.v);
      }
      do_pop(st);
      do_pop(st);
      break;
    }
    case SecOp::endp:
      do_need(st, at, 1, "endp", v);
      do_pop(st);
      break;
    case SecOp::stopp:
      st.a = st.b = st.c = abs_unknown();
      break;
    case SecOp::runp:
      do_need(st, at, 1, "runp", v);
      do_pop(st);
      break;
    case SecOp::ldtimer:
      do_push(st, at, abs_unknown(), v);
      break;
    case SecOp::tin:
      do_need(st, at, 1, "tin", v);
      do_pop(st);
      st.a = st.b = st.c = abs_unknown();
      break;
    case SecOp::ret:
      break;  // block terminator
    case SecOp::vform:
      do_need(st, at, 1, "vform", v);
      if (v != nullptr) {
        v->check_vform(at, st.a);
      }
      do_pop(st);
      break;
    case SecOp::vwait:
      st.a = st.b = st.c = abs_unknown();
      break;
    case SecOp::gather:
    case SecOp::scatter:
      do_need(st, at, 3, op == SecOp::gather ? "gather" : "scatter", v);
      if (v != nullptr) {
        v->check_word_addr(at, st.b, "vector base");
        v->check_word_addr(at, st.c, "index table");
      }
      do_pop(st);
      do_pop(st);
      do_pop(st);
      break;
    case SecOp::halt:
      break;
    case SecOp::testerr:
      do_push(st, at, abs_unknown(), v);
      break;
    default:
      if (v != nullptr) {
        v->diag(Severity::kError, "bad-opcode", at,
                "undefined secondary opcode " +
                    std::to_string(in.d.operand) + " faults at run time");
      }
      break;
  }
}

void step(const Insn& in, AbsStack& st, Verifier* v) {
  using cp::Op;
  const std::uint32_t at = in.addr;
  const std::uint32_t operand = static_cast<std::uint32_t>(in.d.operand);
  switch (in.d.op) {
    case Op::j:
      break;
    case Op::ldlp:
      do_push(st, at, abs_unknown(), v);  // Wptr is dynamic
      break;
    case Op::ldnl:
      do_need(st, at, 1, "ldnl", v);
      if (st.a.known && v != nullptr) {
        v->check_word_addr(at, abs_const(st.a.v + 4 * operand), "ldnl");
      }
      st.a = abs_unknown();
      break;
    case Op::ldc:
      do_push(st, at, abs_const(operand), v);
      break;
    case Op::ldnlp:
      do_need(st, at, 1, "ldnlp", v);
      st.a = st.a.known ? abs_const(st.a.v + 4 * operand) : abs_unknown();
      break;
    case Op::ldl:
      do_push(st, at, abs_unknown(), v);
      break;
    case Op::adc:
      do_need(st, at, 1, "adc", v);
      st.a = st.a.known ? abs_const(st.a.v + operand) : abs_unknown();
      break;
    case Op::call:
      break;  // workspace push only; eval stack carries arguments
    case Op::cj:
      do_need(st, at, 1, "cj", v);
      break;  // stack effect is per-edge
    case Op::ajw:
      break;
    case Op::eqc:
      do_need(st, at, 1, "eqc", v);
      st.a = st.a.known ? abs_const(st.a.v == operand ? 1u : 0u)
                        : abs_unknown();
      break;
    case Op::stl:
      do_need(st, at, 1, "stl", v);
      do_pop(st);
      break;
    case Op::stnl:
      do_need(st, at, 2, "stnl", v);
      if (st.a.known && v != nullptr) {
        v->check_word_addr(at, abs_const(st.a.v + 4 * operand), "stnl");
      }
      do_pop(st);
      do_pop(st);
      break;
    case Op::opr:
      step_secondary(in, st, v);
      break;
    case Op::pfix:
    case Op::nfix:
      break;  // folded into the decode; never appear as full insns
  }
}

}  // namespace

void abs_step(const Insn& in, AbsStack& st) { step(in, st, nullptr); }

VerifyResult verify(const cp::Program& p, const VerifyOptions& opts) {
  Verifier v{p, opts};
  return v.run();
}

}  // namespace fpst::check
