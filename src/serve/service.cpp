#include "serve/service.hpp"

#include <stdexcept>
#include <utility>

namespace fpst::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

Service::Service(Options opts)
    : opts_{opts},
      cache_{opts.cache_enabled ? opts.cache_bytes : 0},
      queue_{opts.queue_capacity} {
  if (opts_.workers < 1) {
    throw std::invalid_argument("Service: workers must be >= 1");
  }
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() { shutdown(); }

JobId Service::submit(const std::string& tenant, const JobSpec& spec) {
  validate(spec);
  JobId id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) {
      throw std::runtime_error("Service: submit after shutdown");
    }
    id = jobs_.size();
    auto rec = std::make_unique<JobRecord>();
    rec->spec = spec;
    rec->tenant = tenant;
    rec->address = content_address(spec);
    rec->submitted = std::chrono::steady_clock::now();
    jobs_.push_back(std::move(rec));
  }
  // Enqueue outside the service mutex: push() blocks under backpressure
  // and status()/workers must keep moving while a submitter waits.
  if (!queue_.push(tenant, id)) {
    std::lock_guard<std::mutex> lock(mu_);
    JobRecord& rec = *jobs_[id];
    rec.state = JobState::kFailed;
    rec.error = "service shut down before the job could be queued";
    rec.finished = std::chrono::steady_clock::now();
    ++failed_;
    done_cv_.notify_all();
    throw std::runtime_error("Service: submit after shutdown");
  }
  return id;
}

bool Service::try_submit(const std::string& tenant, const JobSpec& spec,
                         JobId* out) {
  validate(spec);
  JobId id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) {
      throw std::runtime_error("Service: submit after shutdown");
    }
    id = jobs_.size();
    auto rec = std::make_unique<JobRecord>();
    rec->spec = spec;
    rec->tenant = tenant;
    rec->address = content_address(spec);
    rec->submitted = std::chrono::steady_clock::now();
    jobs_.push_back(std::move(rec));
  }
  if (!queue_.try_push(tenant, id)) {
    std::lock_guard<std::mutex> lock(mu_);
    JobRecord& rec = *jobs_[id];
    rec.state = JobState::kFailed;
    rec.error = "queue full (backpressure)";
    rec.finished = std::chrono::steady_clock::now();
    ++failed_;
    done_cv_.notify_all();
    if (out != nullptr) {
      *out = id;
    }
    return false;
  }
  if (out != nullptr) {
    *out = id;
  }
  return true;
}

JobStatus Service::snapshot_locked(JobId id, const JobRecord& rec) const {
  JobStatus st;
  st.id = id;
  st.state = rec.state;
  st.cache_hit = rec.cache_hit;
  st.tenant = rec.tenant;
  st.address = rec.address;
  st.error = rec.error;
  st.result = rec.result;
  const auto now = std::chrono::steady_clock::now();
  switch (rec.state) {
    case JobState::kQueued:
      st.queue_ms = ms_between(rec.submitted, now);
      break;
    case JobState::kRunning:
      st.queue_ms = ms_between(rec.submitted, rec.started);
      st.run_ms = ms_between(rec.started, now);
      // Live progress: the run object is alive for as long as
      // rec.running is non-null, which only flips under mu_.
      st.events = rec.running != nullptr ? rec.running->progress() : 0;
      break;
    case JobState::kDone:
    case JobState::kFailed:
      st.queue_ms = ms_between(rec.submitted, rec.started);
      st.run_ms = ms_between(rec.started, rec.finished);
      st.events = rec.final_events;
      break;
  }
  return st;
}

JobStatus Service::status(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= jobs_.size()) {
    throw std::out_of_range("Service: unknown job id " + std::to_string(id));
  }
  return snapshot_locked(id, *jobs_[id]);
}

JobStatus Service::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  if (id >= jobs_.size()) {
    throw std::out_of_range("Service: unknown job id " + std::to_string(id));
  }
  done_cv_.wait(lock, [&] {
    const JobState s = jobs_[id]->state;
    return s == JobState::kDone || s == JobState::kFailed;
  });
  return snapshot_locked(id, *jobs_[id]);
}

ServiceStats Service::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = jobs_.size();
    s.completed = completed_;
    s.failed = failed_;
    s.cache_hits = cache_hits_;
  }
  s.queue_depth = queue_.depth();
  s.workers = opts_.workers;
  s.cache = cache_.stats();
  return s;
}

void Service::worker_loop() {
  while (auto job = queue_.pop()) {
    JobRecord* rec = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      rec = jobs_[*job].get();
      rec->state = JobState::kRunning;
      rec->started = std::chrono::steady_clock::now();
    }
    run_job(*rec);
    done_cv_.notify_all();
  }
}

void Service::run_job(JobRecord& rec) {
  // Cache first: a hit completes the job without building an engine.
  if (opts_.cache_enabled) {
    if (std::shared_ptr<const std::string> hit = cache_.lookup(rec.address)) {
      std::lock_guard<std::mutex> lock(mu_);
      rec.result = std::move(hit);
      rec.cache_hit = true;
      rec.final_events = 0;
      rec.state = JobState::kDone;
      rec.finished = std::chrono::steady_clock::now();
      ++completed_;
      ++cache_hits_;
      return;
    }
  }
  std::unique_ptr<JobRun> run;
  try {
    run = std::make_unique<JobRun>(rec.spec);
    {
      std::lock_guard<std::mutex> lock(mu_);
      rec.running = run.get();
    }
    RunOutcome out = run->execute();
    {
      std::lock_guard<std::mutex> lock(mu_);
      rec.running = nullptr;  // before `run` dies below
      rec.result = out.dump;
      rec.final_events = out.events;
      rec.state = JobState::kDone;
      rec.finished = std::chrono::steady_clock::now();
      ++completed_;
    }
    if (opts_.cache_enabled) {
      cache_.insert(rec.address, std::move(out.dump));
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mu_);
    rec.running = nullptr;
    rec.state = JobState::kFailed;
    rec.error = e.what();
    rec.finished = std::chrono::steady_clock::now();
    ++failed_;
  }
}

void Service::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) {
      return;
    }
    shut_down_ = true;
  }
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

}  // namespace fpst::serve
