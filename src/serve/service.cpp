#include "serve/service.hpp"

#include <stdexcept>
#include <utility>

namespace fpst::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::int64_t us_between(std::chrono::steady_clock::time_point a,
                        std::chrono::steady_clock::time_point b) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
  return us < 0 ? 0 : static_cast<std::int64_t>(us);
}

}  // namespace

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

Service::Service(Options opts)
    : opts_{opts},
      cache_{opts.cache_enabled ? opts.cache_bytes : 0},
      queue_{opts.queue_capacity},
      born_{std::chrono::steady_clock::now()} {
  if (opts_.workers < 1) {
    throw std::invalid_argument("Service: workers must be >= 1");
  }
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() { shutdown(); }

JobId Service::create_record(const std::string& tenant,
                             const JobSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shut_down_) {
    throw std::runtime_error("Service: submit after shutdown");
  }
  const JobId id = jobs_.size();
  auto rec = std::make_unique<JobRecord>();
  rec->spec = spec;
  rec->tenant = tenant;
  rec->address = content_address(spec);
  rec->submitted = std::chrono::steady_clock::now();
  jobs_.push_back(std::move(rec));
  ++tenants_[tenant].submitted;
  return id;
}

void Service::finish_locked(JobRecord& rec, JobState state) {
  rec.state = state;
  rec.finished = std::chrono::steady_clock::now();
  TenantStats& t = tenants_[rec.tenant];
  if (state == JobState::kDone) {
    ++completed_;
    ++t.completed;
  } else {
    ++failed_;
    ++t.failed;
  }
  if (rec.cache_hit) {
    ++cache_hits_;
    ++t.cache_hits;
  } else if (rec.started != std::chrono::steady_clock::time_point{}) {
    // A worker picked the job up and it was not in the cache — a miss
    // that hit the engine (or died trying). Rejected/never-queued jobs
    // count as neither.
    ++t.cache_misses;
  }
  t.latency_us.add(us_between(rec.submitted, rec.finished));
  if (rec.started != std::chrono::steady_clock::time_point{}) {
    t.queue_wait_us.add(us_between(rec.submitted, rec.started));
  }
}

JobId Service::submit(const std::string& tenant, const JobSpec& spec) {
  validate(spec);
  const JobId id = create_record(tenant, spec);
  // Enqueue outside the service mutex: push() blocks under backpressure
  // and status()/workers must keep moving while a submitter waits.
  bool stalled = false;
  const bool pushed = queue_.push(tenant, id, &stalled);
  if (stalled) {
    std::lock_guard<std::mutex> lock(mu_);
    ++backpressure_stalls_;
    ++tenants_[tenant].backpressure_stalls;
  }
  if (!pushed) {
    std::lock_guard<std::mutex> lock(mu_);
    JobRecord& rec = *jobs_[id];
    rec.error = "service shut down before the job could be queued";
    finish_locked(rec, JobState::kFailed);
    done_cv_.notify_all();
    throw std::runtime_error("Service: submit after shutdown");
  }
  return id;
}

bool Service::try_submit(const std::string& tenant, const JobSpec& spec,
                         JobId* out) {
  validate(spec);
  const JobId id = create_record(tenant, spec);
  if (!queue_.try_push(tenant, id)) {
    std::lock_guard<std::mutex> lock(mu_);
    JobRecord& rec = *jobs_[id];
    rec.error = "queue full (backpressure)";
    ++rejected_;
    ++tenants_[tenant].rejected;
    finish_locked(rec, JobState::kFailed);
    done_cv_.notify_all();
    if (out != nullptr) {
      *out = id;
    }
    return false;
  }
  if (out != nullptr) {
    *out = id;
  }
  return true;
}

JobStatus Service::snapshot_locked(JobId id, const JobRecord& rec) const {
  JobStatus st;
  st.id = id;
  st.state = rec.state;
  st.cache_hit = rec.cache_hit;
  st.tenant = rec.tenant;
  st.address = rec.address;
  st.error = rec.error;
  st.result = rec.result;
  const auto now = std::chrono::steady_clock::now();
  switch (rec.state) {
    case JobState::kQueued:
      st.queue_ms = ms_between(rec.submitted, now);
      break;
    case JobState::kRunning:
      st.queue_ms = ms_between(rec.submitted, rec.started);
      st.run_ms = ms_between(rec.started, now);
      // Live progress: the run object is alive for as long as
      // rec.running is non-null, which only flips under mu_.
      st.events = rec.running != nullptr ? rec.running->progress() : 0;
      break;
    case JobState::kDone:
    case JobState::kFailed:
      st.queue_ms = ms_between(rec.submitted, rec.started);
      st.run_ms = ms_between(rec.started, rec.finished);
      st.events = rec.final_events;
      break;
  }
  return st;
}

JobStatus Service::status(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= jobs_.size()) {
    throw std::out_of_range("Service: unknown job id " + std::to_string(id));
  }
  return snapshot_locked(id, *jobs_[id]);
}

JobStatus Service::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  if (id >= jobs_.size()) {
    throw std::out_of_range("Service: unknown job id " + std::to_string(id));
  }
  done_cv_.wait(lock, [&] {
    const JobState s = jobs_[id]->state;
    return s == JobState::kDone || s == JobState::kFailed;
  });
  return snapshot_locked(id, *jobs_[id]);
}

ServiceStats Service::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = jobs_.size();
    s.completed = completed_;
    s.failed = failed_;
    s.cache_hits = cache_hits_;
    s.rejected = rejected_;
    s.backpressure_stalls = backpressure_stalls_;
    s.engine_epochs = engine_epochs_;
    s.engine_merge_ns = engine_merge_ns_;
    s.engine_barrier_ns = engine_barrier_ns_;
    s.tenants = tenants_;
    s.uptime_ms = ms_between(born_, std::chrono::steady_clock::now());
  }
  s.queue_depth = queue_.stats().depth;
  s.workers = opts_.workers;
  s.cache = cache_.stats();
  return s;
}

JobSpan Service::span_locked(JobId id, const JobRecord& rec) const {
  JobSpan sp;
  sp.id = id;
  sp.state = rec.state;
  sp.cache_hit = rec.cache_hit;
  sp.tenant = rec.tenant;
  sp.address = rec.address;
  sp.program = rec.spec.program;
  sp.error = rec.error;
  sp.submit_offset_ms = ms_between(born_, rec.submitted);
  sp.cache_ms = rec.cache_ms;
  sp.setup_ms = rec.setup_ms;
  sp.exec_ms = rec.exec_ms;
  sp.serialize_ms = rec.serialize_ms;
  const auto now = std::chrono::steady_clock::now();
  switch (rec.state) {
    case JobState::kQueued:
      sp.queue_ms = ms_between(rec.submitted, now);
      sp.total_ms = sp.queue_ms;
      break;
    case JobState::kRunning:
      sp.queue_ms = ms_between(rec.submitted, rec.started);
      sp.total_ms = ms_between(rec.submitted, now);
      sp.events = rec.running != nullptr ? rec.running->progress() : 0;
      break;
    case JobState::kDone:
    case JobState::kFailed:
      if (rec.started != std::chrono::steady_clock::time_point{}) {
        sp.queue_ms = ms_between(rec.submitted, rec.started);
      }
      sp.total_ms = ms_between(rec.submitted, rec.finished);
      sp.events = rec.final_events;
      break;
  }
  return sp;
}

JobSpan Service::span(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= jobs_.size()) {
    throw std::out_of_range("Service: unknown job id " + std::to_string(id));
  }
  return span_locked(id, *jobs_[id]);
}

std::vector<JobSpan> Service::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobSpan> out;
  out.reserve(jobs_.size());
  for (JobId id = 0; id < jobs_.size(); ++id) {
    out.push_back(span_locked(id, *jobs_[id]));
  }
  return out;
}

void Service::worker_loop() {
  while (auto job = queue_.pop()) {
    JobRecord* rec = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      rec = jobs_[*job].get();
      rec->state = JobState::kRunning;
      rec->started = std::chrono::steady_clock::now();
    }
    run_job(*rec);
    done_cv_.notify_all();
  }
}

void Service::run_job(JobRecord& rec) {
  // Cache first: a hit completes the job without building an engine.
  if (opts_.cache_enabled) {
    const auto cache_t0 = std::chrono::steady_clock::now();
    std::shared_ptr<const std::string> hit = cache_.lookup(rec.address);
    const double cache_ms =
        ms_between(cache_t0, std::chrono::steady_clock::now());
    if (hit) {
      std::lock_guard<std::mutex> lock(mu_);
      rec.cache_ms = cache_ms;
      rec.result = std::move(hit);
      rec.cache_hit = true;
      rec.final_events = 0;
      finish_locked(rec, JobState::kDone);
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    rec.cache_ms = cache_ms;
  }
  std::unique_ptr<JobRun> run;
  try {
    const auto setup_t0 = std::chrono::steady_clock::now();
    run = std::make_unique<JobRun>(rec.spec);
    const double setup_ms =
        ms_between(setup_t0, std::chrono::steady_clock::now());
    {
      std::lock_guard<std::mutex> lock(mu_);
      rec.setup_ms = setup_ms;
      rec.running = run.get();
    }
    RunOutcome out = run->execute();
    {
      std::lock_guard<std::mutex> lock(mu_);
      rec.running = nullptr;  // before `run` dies below
      rec.result = out.dump;
      rec.final_events = out.events;
      rec.exec_ms = out.exec_ms;
      rec.serialize_ms = out.serialize_ms;
      engine_epochs_ += out.engine_epochs;
      engine_merge_ns_ += out.engine_merge_ns;
      engine_barrier_ns_ += out.engine_barrier_ns;
      finish_locked(rec, JobState::kDone);
    }
    if (opts_.cache_enabled) {
      cache_.insert(rec.address, std::move(out.dump));
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mu_);
    rec.running = nullptr;
    rec.error = e.what();
    finish_locked(rec, JobState::kFailed);
  }
}

void Service::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) {
      return;
    }
    shut_down_ = true;
  }
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

}  // namespace fpst::serve
