#include "serve/job_spec.hpp"

#include <cmath>
#include <cstdio>
#include <set>

#include "vpu/vpu.hpp"

namespace fpst::serve {

namespace {

namespace json = perf::json;

bool known_program(const std::string& p) {
  return p == "allreduce" || p == "saxpy" || p == "ring";
}

void require_range(const char* field, std::int64_t v, std::int64_t lo,
                   std::int64_t hi) {
  if (v < lo || v > hi) {
    throw SpecError("out-of-range",
                    std::string("field '") + field + "' = " +
                        std::to_string(v) + " outside [" +
                        std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
}

/// A numeric spec field must be a finite integral JSON number. The JSON
/// grammar cannot spell NaN, but documents built through the Value API (or
/// oversized literals that parse to +/-inf) can carry one — hash nothing
/// that is not exactly representable.
std::int64_t integral_field(const char* field, const json::Value& v) {
  if (v.kind() == json::Value::Kind::integer) {
    return v.as_int();
  }
  if (v.kind() == json::Value::Kind::number) {
    const double d = v.as_double();
    if (!std::isfinite(d)) {
      throw SpecError("not-finite", std::string("field '") + field +
                                        "' is NaN or infinite");
    }
    if (d != std::floor(d) || d < -9.0e18 || d > 9.0e18) {
      throw SpecError("not-integral", std::string("field '") + field +
                                          "' is not an integer");
    }
    return static_cast<std::int64_t>(d);
  }
  throw SpecError("bad-type",
                  std::string("field '") + field + "' must be a number");
}

}  // namespace

void validate(const JobSpec& spec) {
  if (!known_program(spec.program)) {
    throw SpecError("bad-program",
                    "unknown program '" + spec.program +
                        "' (expected allreduce | saxpy | ring)");
  }
  require_range("dimension", spec.dimension, 0, 10);
  require_range("threads", spec.threads, 1, 64);
  require_range("rounds", spec.rounds, 1, 100000);
  require_range("elems", spec.elems, 1, 128);
  if (!vpu::parse_vpu_mode(spec.vpu_mode).has_value()) {
    throw SpecError("bad-mode",
                    "unknown vpu_mode '" + spec.vpu_mode +
                        "' (expected softfloat | batch | checked)");
  }
}

json::Value spec_to_json(const JobSpec& spec) {
  json::Value doc = json::Value::object();
  doc["program"] = json::Value::string(spec.program);
  doc["dimension"] = json::Value::integer(spec.dimension);
  doc["threads"] = json::Value::integer(spec.threads);
  doc["rounds"] = json::Value::integer(spec.rounds);
  doc["elems"] = json::Value::integer(spec.elems);
  doc["seed"] = json::Value::integer(static_cast<std::int64_t>(spec.seed));
  doc["vpu_mode"] = json::Value::string(spec.vpu_mode);
  return doc;
}

JobSpec spec_from_json(const json::Value& doc) {
  if (!doc.is_object()) {
    throw SpecError("bad-type", "spec must be a JSON object");
  }
  static const std::set<std::string> kFields{"program", "dimension",
                                            "threads", "rounds",
                                            "elems",   "seed",
                                            "vpu_mode"};
  for (const auto& [key, value] : doc.as_object()) {
    (void)value;
    if (kFields.count(key) == 0) {
      throw SpecError("unknown-field", "unknown field '" + key + "'");
    }
  }
  JobSpec spec;
  if (const json::Value* v = doc.find("program")) {
    if (!v->is_string()) {
      throw SpecError("bad-type", "field 'program' must be a string");
    }
    spec.program = v->as_string();
  }
  if (const json::Value* v = doc.find("dimension")) {
    spec.dimension = static_cast<int>(integral_field("dimension", *v));
  }
  if (const json::Value* v = doc.find("threads")) {
    spec.threads = static_cast<int>(integral_field("threads", *v));
  }
  if (const json::Value* v = doc.find("rounds")) {
    spec.rounds = static_cast<int>(integral_field("rounds", *v));
  }
  if (const json::Value* v = doc.find("elems")) {
    spec.elems = static_cast<int>(integral_field("elems", *v));
  }
  if (const json::Value* v = doc.find("seed")) {
    spec.seed = static_cast<std::uint64_t>(integral_field("seed", *v));
  }
  if (const json::Value* v = doc.find("vpu_mode")) {
    if (!v->is_string()) {
      throw SpecError("bad-type", "field 'vpu_mode' must be a string");
    }
    spec.vpu_mode = v->as_string();
  }
  validate(spec);
  return spec;
}

JobSpec parse_spec(std::string_view text) {
  json::Value doc;
  try {
    doc = json::Value::parse_strict(text);
  } catch (const std::exception& e) {
    const std::string what = e.what();
    throw SpecError(
        what.find("duplicate object key") != std::string::npos
            ? "duplicate-key"
            : "parse-error",
        what);
  }
  return spec_from_json(doc);
}

std::string canonical_spec(const JobSpec& spec) {
  return spec_to_json(spec).dump(-1);
}

std::string content_address(const JobSpec& spec) {
  const std::string canon = canonical_spec(spec);
  // FNV-1a 64-bit over the canonical bytes.
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : canon) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "ca-%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace fpst::serve
