#include "serve/tmon.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <utility>

namespace fpst::serve {

namespace json = perf::json;

namespace {

json::Value integer_u64(std::uint64_t v) {
  return json::Value::integer(static_cast<std::int64_t>(v));
}

/// Wall-clock stage durations — the `meta` block of one span.
json::Value span_meta(const JobSpan& sp) {
  json::Value m = json::Value::object();
  m["submit_offset_ms"] = json::Value::number(sp.submit_offset_ms);
  m["queue_ms"] = json::Value::number(sp.queue_ms);
  m["cache_ms"] = json::Value::number(sp.cache_ms);
  m["setup_ms"] = json::Value::number(sp.setup_ms);
  m["exec_ms"] = json::Value::number(sp.exec_ms);
  m["serialize_ms"] = json::Value::number(sp.serialize_ms);
  m["total_ms"] = json::Value::number(sp.total_ms);
  return m;
}

void append_line(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_line(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
  out += '\n';
}

/// Prometheus label values allow everything but unescaped `"` `\` `\n`.
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

json::Value span_to_json(const JobSpan& sp) {
  json::Value v = json::Value::object();
  v["id"] = integer_u64(sp.id);
  v["tenant"] = json::Value::string(sp.tenant);
  v["address"] = json::Value::string(sp.address);
  v["program"] = json::Value::string(sp.program);
  v["state"] = json::Value::string(to_string(sp.state));
  v["cache_hit"] = json::Value::boolean(sp.cache_hit);
  v["events"] = integer_u64(sp.events);
  if (!sp.error.empty()) {
    v["error"] = json::Value::string(sp.error);
  }
  v["meta"] = span_meta(sp);
  return v;
}

json::Value spans_to_json(const std::vector<JobSpan>& spans) {
  json::Value doc = json::Value::object();
  doc["kind"] = json::Value::string("tmon-spans");
  doc["jobs"] = integer_u64(spans.size());
  json::Value arr = json::Value::array();
  for (const JobSpan& sp : spans) {
    arr.append(span_to_json(sp));
  }
  doc["spans"] = std::move(arr);
  return doc;
}

json::Value metrics_to_json(const ServiceStats& s) {
  json::Value doc = json::Value::object();
  doc["kind"] = json::Value::string("tmon-metrics");
  doc["workers"] = json::Value::integer(s.workers);
  doc["submitted"] = integer_u64(s.submitted);
  doc["completed"] = integer_u64(s.completed);
  doc["failed"] = integer_u64(s.failed);
  doc["cache_hits"] = integer_u64(s.cache_hits);
  doc["rejected"] = integer_u64(s.rejected);

  json::Value cache = json::Value::object();
  cache["hits"] = integer_u64(s.cache.hits);
  cache["misses"] = integer_u64(s.cache.misses);
  cache["insertions"] = integer_u64(s.cache.insertions);
  cache["evictions"] = integer_u64(s.cache.evictions);
  cache["oversize_rejects"] = integer_u64(s.cache.oversize_rejects);
  cache["entries"] = integer_u64(s.cache.entries);
  cache["bytes"] = integer_u64(s.cache.bytes);
  cache["byte_budget"] = integer_u64(s.cache.byte_budget);
  doc["cache"] = std::move(cache);

  json::Value engine = json::Value::object();
  engine["epochs"] = integer_u64(s.engine_epochs);
  doc["engine"] = std::move(engine);

  json::Value tenants = json::Value::object();
  for (const auto& [name, t] : s.tenants) {
    json::Value tv = json::Value::object();
    tv["submitted"] = integer_u64(t.submitted);
    tv["completed"] = integer_u64(t.completed);
    tv["failed"] = integer_u64(t.failed);
    tv["cache_hits"] = integer_u64(t.cache_hits);
    tv["cache_misses"] = integer_u64(t.cache_misses);
    tv["rejected"] = integer_u64(t.rejected);
    tenants[name] = std::move(tv);
  }
  doc["tenants"] = std::move(tenants);

  // Everything below is host wall-clock (or a live gauge): quarantined in
  // `meta` so the determinism gates can strip it.
  json::Value meta = json::Value::object();
  meta["uptime_ms"] = json::Value::number(s.uptime_ms);
  meta["queue_depth"] = integer_u64(s.queue_depth);
  meta["backpressure_stalls"] = integer_u64(s.backpressure_stalls);
  json::Value meng = json::Value::object();
  meng["merge_ns"] = integer_u64(s.engine_merge_ns);
  meng["barrier_ns"] = integer_u64(s.engine_barrier_ns);
  meta["engine"] = std::move(meng);
  json::Value mten = json::Value::object();
  for (const auto& [name, t] : s.tenants) {
    json::Value tv = json::Value::object();
    tv["backpressure_stalls"] = integer_u64(t.backpressure_stalls);
    tv["latency_us"] = t.latency_us.to_json();
    tv["queue_wait_us"] = t.queue_wait_us.to_json();
    mten[name] = std::move(tv);
  }
  meta["tenants"] = std::move(mten);
  doc["meta"] = std::move(meta);
  return doc;
}

std::string to_prometheus(const ServiceStats& s) {
  std::string out;
  append_line(out, "# TYPE tsim_jobs_submitted_total counter");
  append_line(out, "tsim_jobs_submitted_total %" PRIu64, s.submitted);
  append_line(out, "# TYPE tsim_jobs_completed_total counter");
  append_line(out, "tsim_jobs_completed_total %" PRIu64, s.completed);
  append_line(out, "# TYPE tsim_jobs_failed_total counter");
  append_line(out, "tsim_jobs_failed_total %" PRIu64, s.failed);
  append_line(out, "# TYPE tsim_jobs_rejected_total counter");
  append_line(out, "tsim_jobs_rejected_total %" PRIu64, s.rejected);
  append_line(out, "# TYPE tsim_cache_hits_total counter");
  append_line(out, "tsim_cache_hits_total %" PRIu64, s.cache_hits);
  append_line(out, "# TYPE tsim_backpressure_stalls_total counter");
  append_line(out, "tsim_backpressure_stalls_total %" PRIu64,
              s.backpressure_stalls);
  append_line(out, "# TYPE tsim_queue_depth gauge");
  append_line(out, "tsim_queue_depth %zu", s.queue_depth);
  append_line(out, "# TYPE tsim_workers gauge");
  append_line(out, "tsim_workers %d", s.workers);
  append_line(out, "# TYPE tsim_uptime_ms gauge");
  append_line(out, "tsim_uptime_ms %.3f", s.uptime_ms);
  append_line(out, "# TYPE tsim_cache_bytes gauge");
  append_line(out, "tsim_cache_bytes %zu", s.cache.bytes);
  append_line(out, "# TYPE tsim_cache_entries gauge");
  append_line(out, "tsim_cache_entries %zu", s.cache.entries);
  append_line(out, "# TYPE tsim_cache_evictions_total counter");
  append_line(out, "tsim_cache_evictions_total %" PRIu64, s.cache.evictions);
  append_line(out, "# TYPE tsim_engine_epochs_total counter");
  append_line(out, "tsim_engine_epochs_total %" PRIu64, s.engine_epochs);
  append_line(out, "# TYPE tsim_engine_merge_ns_total counter");
  append_line(out, "tsim_engine_merge_ns_total %" PRIu64, s.engine_merge_ns);
  append_line(out, "# TYPE tsim_engine_barrier_ns_total counter");
  append_line(out, "tsim_engine_barrier_ns_total %" PRIu64,
              s.engine_barrier_ns);
  if (!s.tenants.empty()) {
    append_line(out, "# TYPE tsim_tenant_jobs_total counter");
    for (const auto& [name, t] : s.tenants) {
      const std::string label = prom_escape(name);
      append_line(out,
                  "tsim_tenant_jobs_total{tenant=\"%s\",outcome=\"done\"} "
                  "%" PRIu64,
                  label.c_str(), t.completed);
      append_line(out,
                  "tsim_tenant_jobs_total{tenant=\"%s\",outcome=\"failed\"} "
                  "%" PRIu64,
                  label.c_str(), t.failed);
      append_line(
          out,
          "tsim_tenant_jobs_total{tenant=\"%s\",outcome=\"rejected\"} "
          "%" PRIu64,
          label.c_str(), t.rejected);
    }
    append_line(out, "# TYPE tsim_tenant_cache_hits_total counter");
    for (const auto& [name, t] : s.tenants) {
      append_line(out, "tsim_tenant_cache_hits_total{tenant=\"%s\"} %" PRIu64,
                  prom_escape(name).c_str(), t.cache_hits);
    }
    append_line(out, "# TYPE tsim_tenant_latency_us summary");
    for (const auto& [name, t] : s.tenants) {
      const std::string label = prom_escape(name);
      for (const auto& [q, qs] : {std::pair<double, const char*>{0.5, "0.5"},
                                  {0.9, "0.9"},
                                  {0.99, "0.99"}}) {
        append_line(
            out, "tsim_tenant_latency_us{tenant=\"%s\",quantile=\"%s\"} %.1f",
            label.c_str(), qs, t.latency_us.quantile(q));
      }
      append_line(out, "tsim_tenant_latency_us_sum{tenant=\"%s\"} %" PRId64,
                  label.c_str(), t.latency_us.sum());
      append_line(out, "tsim_tenant_latency_us_count{tenant=\"%s\"} %" PRIu64,
                  label.c_str(), t.latency_us.count());
    }
    append_line(out, "# TYPE tsim_tenant_queue_wait_us summary");
    for (const auto& [name, t] : s.tenants) {
      const std::string label = prom_escape(name);
      for (const auto& [q, qs] : {std::pair<double, const char*>{0.5, "0.5"},
                                  {0.9, "0.9"},
                                  {0.99, "0.99"}}) {
        append_line(
            out,
            "tsim_tenant_queue_wait_us{tenant=\"%s\",quantile=\"%s\"} %.1f",
            label.c_str(), qs, t.queue_wait_us.quantile(q));
      }
      append_line(out, "tsim_tenant_queue_wait_us_sum{tenant=\"%s\"} %" PRId64,
                  label.c_str(), t.queue_wait_us.sum());
      append_line(out,
                  "tsim_tenant_queue_wait_us_count{tenant=\"%s\"} %" PRIu64,
                  label.c_str(), t.queue_wait_us.count());
    }
  }
  return out;
}

json::Value spans_chrome_trace(const std::vector<JobSpan>& spans) {
  json::Value events = json::Value::array();
  {
    json::Value pm = json::Value::object();
    pm["ph"] = json::Value::string("M");
    pm["pid"] = json::Value::integer(1);
    pm["tid"] = json::Value::integer(0);
    pm["name"] = json::Value::string("process_name");
    json::Value args = json::Value::object();
    args["name"] = json::Value::string("tsim serve");
    pm["args"] = std::move(args);
    events.append(std::move(pm));
  }
  for (const JobSpan& sp : spans) {
    const std::int64_t tid = static_cast<std::int64_t>(sp.id) + 1;
    {
      json::Value tm = json::Value::object();
      tm["ph"] = json::Value::string("M");
      tm["pid"] = json::Value::integer(1);
      tm["tid"] = json::Value::integer(tid);
      tm["name"] = json::Value::string("thread_name");
      json::Value args = json::Value::object();
      args["name"] = json::Value::string(
          "job " + std::to_string(sp.id) + " (" + sp.tenant + ")");
      tm["args"] = std::move(args);
      events.append(std::move(tm));
    }
    double at_us = sp.submit_offset_ms * 1000.0;
    const auto stage = [&](const char* name, double dur_ms) {
      if (dur_ms <= 0.0) {
        return;
      }
      json::Value e = json::Value::object();
      e["ph"] = json::Value::string("X");
      e["pid"] = json::Value::integer(1);
      e["tid"] = json::Value::integer(tid);
      e["name"] = json::Value::string(name);
      e["ts"] = json::Value::number(at_us);
      e["dur"] = json::Value::number(dur_ms * 1000.0);
      json::Value args = json::Value::object();
      args["tenant"] = json::Value::string(sp.tenant);
      args["address"] = json::Value::string(sp.address);
      args["program"] = json::Value::string(sp.program);
      args["cache_hit"] = json::Value::boolean(sp.cache_hit);
      e["args"] = std::move(args);
      events.append(std::move(e));
      at_us += dur_ms * 1000.0;
    };
    stage("queue", sp.queue_ms);
    stage("cache", sp.cache_ms);
    stage("setup", sp.setup_ms);
    stage("exec", sp.exec_ms);
    stage("serialize", sp.serialize_ms);
  }
  json::Value doc = json::Value::object();
  doc["displayTimeUnit"] = json::Value::string("ms");
  doc["traceEvents"] = std::move(events);
  return doc;
}

json::Value strip_meta(const json::Value& v) {
  if (v.is_object()) {
    json::Value out = json::Value::object();
    for (const auto& [key, child] : v.as_object()) {
      if (key == "meta") {
        continue;
      }
      out[key] = strip_meta(child);
    }
    return out;
  }
  if (v.is_array()) {
    json::Value out = json::Value::array();
    for (const json::Value& child : v.as_array()) {
      out.append(strip_meta(child));
    }
    return out;
  }
  return v;
}

}  // namespace fpst::serve
