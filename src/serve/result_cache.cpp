#include "serve/result_cache.hpp"

namespace fpst::serve {

std::shared_ptr<const std::string> ResultCache::lookup(
    const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(address);
  if (it == map_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.bytes;
}

void ResultCache::insert(const std::string& address,
                         std::shared_ptr<const std::string> bytes) {
  if (!bytes) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t size = bytes->size();
  if (size > budget_) {
    ++counters_.oversize_rejects;
    return;
  }
  if (const auto it = map_.find(address); it != map_.end()) {
    bytes_ -= it->second.bytes->size();
    lru_.erase(it->second.lru_pos);
    map_.erase(it);
  }
  evict_until_fits(size);
  lru_.push_front(address);
  map_.emplace(address, Entry{std::move(bytes), lru_.begin()});
  bytes_ += size;
  ++counters_.insertions;
}

void ResultCache::evict_until_fits(std::size_t incoming) {
  while (!lru_.empty() && bytes_ + incoming > budget_) {
    const std::string& victim = lru_.back();
    const auto it = map_.find(victim);
    bytes_ -= it->second.bytes->size();
    map_.erase(it);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = counters_;
  s.entries = map_.size();
  s.bytes = bytes_;
  s.byte_budget = budget_;
  return s;
}

}  // namespace fpst::serve
