// serve::Service — the multi-tenant simulation job service.
//
// Lifecycle of a job:
//
//   submit(tenant, spec)
//     -> validate + content-address the spec
//     -> JobRecord created (kQueued), job id returned immediately
//     -> bounded JobQueue (per-tenant fair; submit blocks on backpressure)
//   worker pops
//     -> result cache lookup by content address
//        hit : job completes with the cached bytes, zero simulation
//              events, cache_hit = true
//        miss: a JobRun executes the spec on this worker's core budget;
//              while it runs, status() streams the live event count via
//              Simulator::progress(); the dump bytes are stored in the
//              cache and on the record
//     -> kDone (or kFailed with the error string)
//
// status() is readable at any moment from any thread — queued, running
// (with monotonically increasing progress), done or failed — which is what
// the tsim CLI serves over its socket.
//
// Locking: one service mutex guards the job table and per-record state;
// the queue and cache have their own internal locks. The only cross-thread
// read that bypasses the mutex is the running JobRun's relaxed progress
// counter; the raw `running` pointer itself is only ever touched under the
// mutex, and the worker clears it (under the mutex) before destroying the
// run object, so the pointer can never dangle mid-read.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <map>

#include "perf/histogram.hpp"
#include "serve/job_queue.hpp"
#include "serve/job_spec.hpp"
#include "serve/result_cache.hpp"
#include "serve/runner.hpp"

namespace fpst::serve {

using JobId = std::uint64_t;

enum class JobState : std::uint8_t { kQueued, kRunning, kDone, kFailed };

const char* to_string(JobState s);

/// A point-in-time view of one job, safe to hold after the service moves
/// on. `result` is non-null exactly when state == kDone.
struct JobStatus {
  JobId id = 0;
  JobState state = JobState::kQueued;
  bool cache_hit = false;
  /// Simulation events: live progress while kRunning, the final count
  /// when kDone (0 for a cache hit — nothing was simulated).
  std::uint64_t events = 0;
  std::string tenant;
  std::string address;
  std::string error;  ///< non-empty exactly when kFailed
  double queue_ms = 0.0;  ///< submit -> worker pickup (so far, if queued)
  double run_ms = 0.0;    ///< pickup -> completion (so far, if running)
  std::shared_ptr<const std::string> result;
};

/// Per-request span: where one job's wall-clock went, stage by stage.
/// Stage identities (tenant, address, program, state, cache_hit, events)
/// are deterministic given the submission sequence; every *_ms field is
/// host wall-clock and must live in a dump's `meta` block (the
/// determinism gates strip it).
struct JobSpan {
  JobId id = 0;
  JobState state = JobState::kQueued;
  bool cache_hit = false;
  std::uint64_t events = 0;
  std::string tenant;
  std::string address;
  std::string program;
  std::string error;  ///< non-empty exactly when kFailed
  /// submit() time relative to service construction.
  double submit_offset_ms = 0.0;
  double queue_ms = 0.0;      ///< submit -> worker pickup
  double cache_ms = 0.0;      ///< result-cache lookup
  double setup_ms = 0.0;      ///< engine + machine construction (miss only)
  double exec_ms = 0.0;       ///< simulation execution (miss only)
  double serialize_ms = 0.0;  ///< dump build + serialise (miss only)
  double total_ms = 0.0;      ///< submit -> terminal state (so far if live)
};

/// One tenant's SLO account. Counters are deterministic per submission
/// sequence; the histograms record host wall-clock microseconds and are
/// therefore meta-only in dumps.
struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;  ///< jobs a worker actually simulated
  std::uint64_t rejected = 0;      ///< try_submit refusals (queue full)
  std::uint64_t backpressure_stalls = 0;  ///< submit() calls that waited
  perf::Histogram latency_us;     ///< submit -> terminal state
  perf::Histogram queue_wait_us;  ///< submit -> worker pickup
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t rejected = 0;
  std::uint64_t backpressure_stalls = 0;
  std::size_t queue_depth = 0;
  int workers = 0;
  double uptime_ms = 0.0;
  ResultCache::Stats cache;
  /// ParallelSim epoch-profile totals across all executed jobs (zero when
  /// every job ran serial or hit the cache).
  std::uint64_t engine_epochs = 0;
  std::uint64_t engine_merge_ns = 0;
  std::uint64_t engine_barrier_ns = 0;
  /// Keyed by tenant name; deterministic iteration order (std::map).
  std::map<std::string, TenantStats> tenants;
};

class Service {
 public:
  struct Options {
    /// Worker threads, each running one job at a time on its own engine
    /// instance (a job's own core budget comes from its spec's threads).
    int workers = 2;
    /// Bounded queue capacity — the backpressure point.
    std::size_t queue_capacity = 1024;
    /// Result-cache byte budget (0 disables storage).
    std::size_t cache_bytes = std::size_t{64} << 20;
    /// Master cache switch; off means every job simulates (bench_serve's
    /// cache-ablation arm).
    bool cache_enabled = true;
  };

  explicit Service(Options opts);
  ~Service();  // shutdown() + join

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Validates, enqueues and returns the job id. Blocks while the queue
  /// is full (backpressure); throws SpecError on a bad spec and
  /// std::runtime_error after shutdown().
  JobId submit(const std::string& tenant, const JobSpec& spec);

  /// Non-blocking submit: false when the queue is full.
  bool try_submit(const std::string& tenant, const JobSpec& spec,
                  JobId* out);

  /// Snapshot of a job's state; throws std::out_of_range for an unknown
  /// id. Callable from any thread at any time.
  JobStatus status(JobId id) const;

  /// Block until the job reaches kDone or kFailed; returns the final
  /// status.
  JobStatus wait(JobId id);

  /// One consistent snapshot: every counter pair in the result (e.g.
  /// completed + failed vs submitted) was read under a single lock
  /// acquisition, so `completed + failed <= submitted` always holds in
  /// the returned value even while submits and completions race.
  ServiceStats stats() const;

  /// Stage-by-stage span for one job; throws std::out_of_range for an
  /// unknown id. Callable from any thread at any time (live jobs report
  /// stages completed so far).
  JobSpan span(JobId id) const;

  /// Spans for every job the service has seen, in id order.
  std::vector<JobSpan> spans() const;

  /// Stop accepting submissions, drain the queue, join the workers.
  /// Idempotent.
  void shutdown();

 private:
  struct JobRecord {
    JobSpec spec;
    std::string tenant;
    std::string address;
    JobState state = JobState::kQueued;
    bool cache_hit = false;
    std::uint64_t final_events = 0;
    std::string error;
    std::shared_ptr<const std::string> result;
    /// Non-null only while a worker executes this job; guarded by mu_.
    const JobRun* running = nullptr;
    std::chrono::steady_clock::time_point submitted{};
    std::chrono::steady_clock::time_point started{};
    std::chrono::steady_clock::time_point finished{};
    // Span stage durations, filled in as the job advances (guarded by
    // mu_ like the rest of the record).
    double cache_ms = 0.0;
    double setup_ms = 0.0;
    double exec_ms = 0.0;
    double serialize_ms = 0.0;
  };

  void worker_loop();
  void run_job(JobRecord& rec);  // called unlocked
  JobStatus snapshot_locked(JobId id, const JobRecord& rec) const;
  JobSpan span_locked(JobId id, const JobRecord& rec) const;
  /// Terminal-state bookkeeping: sets state + finished, bumps the global
  /// and per-tenant counters, records the SLO histograms. Caller holds
  /// mu_ and has already set cache_hit/result/error as appropriate.
  void finish_locked(JobRecord& rec, JobState state);
  JobId create_record(const std::string& tenant, const JobSpec& spec);

  Options opts_;
  ResultCache cache_;
  JobQueue queue_;

  mutable std::mutex mu_;
  mutable std::condition_variable done_cv_;
  std::deque<std::unique_ptr<JobRecord>> jobs_;  ///< index == JobId
  std::map<std::string, TenantStats> tenants_;   ///< guarded by mu_
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t backpressure_stalls_ = 0;
  std::uint64_t engine_epochs_ = 0;
  std::uint64_t engine_merge_ns_ = 0;
  std::uint64_t engine_barrier_ns_ = 0;
  bool shut_down_ = false;
  std::chrono::steady_clock::time_point born_{};

  std::vector<std::thread> workers_;
};

}  // namespace fpst::serve
