// Content-addressed result store with an LRU byte budget.
//
// Key: a JobSpec content address (serve/job_spec.hpp). Value: the job's
// complete tperf/tscope dump bytes. The determinism gates make the bytes a
// pure function of the spec, so a hit can be returned verbatim — the
// cached dump is exactly what re-simulating would produce.
//
// Values are shared_ptr<const string> so a hit handed to a client stays
// valid after the entry is evicted; eviction only drops the cache's
// reference.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace fpst::serve {

class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t oversize_rejects = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t byte_budget = 0;
  };

  /// `byte_budget` bounds the sum of stored value sizes. A budget of 0
  /// disables storage entirely (every lookup is a miss).
  explicit ResultCache(std::size_t byte_budget) : budget_{byte_budget} {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached bytes and freshens the entry's LRU position, or
  /// nullptr on a miss. Thread-safe.
  std::shared_ptr<const std::string> lookup(const std::string& address);

  /// Stores `bytes` under `address`, evicting least-recently-used entries
  /// until the budget holds. A value larger than the whole budget is not
  /// stored (counted in oversize_rejects). Re-inserting an existing
  /// address replaces the value. Thread-safe.
  void insert(const std::string& address,
              std::shared_ptr<const std::string> bytes);

  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const std::string> bytes;
    std::list<std::string>::iterator lru_pos;
  };

  void evict_until_fits(std::size_t incoming);  // requires mu_ held

  mutable std::mutex mu_;
  std::size_t budget_;
  std::size_t bytes_ = 0;
  std::list<std::string> lru_;  ///< front = most recently used
  std::unordered_map<std::string, Entry> map_;
  Stats counters_{};
};

}  // namespace fpst::serve
