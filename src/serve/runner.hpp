// JobRun: executes one JobSpec as a simulation and captures the result.
//
// A run builds a fresh engine (serial Simulator, or the sharded
// ParallelSim when the spec asks for threads > 1), a TSeries machine of
// 2^dimension nodes with machine-wide perf collection attached, and an
// occam Runtime; it then executes the spec's program and serialises the
// tperf dump to bytes. Everything that shapes the simulation — the shard
// partition included — is derived from the spec alone, never from the
// host, so the bytes are a pure function of the spec (the property the
// content-addressed cache rests on).
//
// The run executes on the calling (worker) thread; progress() may be read
// concurrently from any other thread while execute() is in flight.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "serve/job_spec.hpp"
#include "sim/time.hpp"

namespace fpst::core {
class TSeries;
}
namespace fpst::perf {
class CounterRegistry;
}
namespace fpst::sim {
class ParallelSim;
class Simulator;
}

namespace fpst::serve {

struct RunOutcome {
  /// The complete dump document bytes (pretty-printed JSON + trailing
  /// newline, exactly what perf::write_file would put on disk).
  std::shared_ptr<const std::string> dump;
  /// Engine events executed by this run (deterministic per spec).
  std::uint64_t events = 0;
  /// Simulated completion time.
  sim::SimTime sim_elapsed{};
  /// Workload checksum (also embedded in the dump's results table).
  double checksum = 0.0;

  // Host wall-clock stage timings for the serve layer's request spans.
  // These describe the host, not the simulation — they never enter the
  // dump bytes above (which must stay a pure function of the spec).
  double exec_ms = 0.0;       ///< engine run (rt.run) wall time
  double serialize_ms = 0.0;  ///< dump build + JSON serialise wall time

  // ParallelSim epoch-profile aggregates (zero for serial runs): how much
  // of exec_ms the sharded engine spent in serial merge phases and parked
  // at the epoch barrier, summed across workers. Wall-clock as well.
  std::uint64_t engine_epochs = 0;
  std::uint64_t engine_merge_ns = 0;
  std::uint64_t engine_barrier_ns = 0;
};

/// Shard count for a spec: the largest power of two <= min(threads,
/// nodes). Exposed so tests can pin the partition the runner derives.
int shards_for(const JobSpec& spec);

class JobRun {
 public:
  /// Builds the engine and machine; throws SpecError for an invalid spec.
  explicit JobRun(JobSpec spec);
  ~JobRun();

  JobRun(const JobRun&) = delete;
  JobRun& operator=(const JobRun&) = delete;

  /// Events executed so far. Safe from any thread while another thread is
  /// inside execute() — backed by Simulator::progress() /
  /// ParallelSim::progress() (single-writer relaxed atomics; monotonic,
  /// no synchronizes-with edge).
  std::uint64_t progress() const;

  /// Run the program to completion and serialise the dump. Call once,
  /// from one thread.
  RunOutcome execute();

 private:
  JobSpec spec_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::ParallelSim> psim_;
  std::unique_ptr<perf::CounterRegistry> reg_;
  std::unique_ptr<core::TSeries> machine_;
};

}  // namespace fpst::serve
