// Bounded MPMC job queue with per-tenant fairness.
//
// The service is multi-tenant: one tenant submitting a thousand jobs must
// not starve another tenant's single job for the whole backlog. Jobs are
// therefore held in one FIFO lane per tenant, and consumers drain lanes
// round-robin — a tenant's next job waits behind at most one job from
// every *other* active tenant, regardless of backlog shape. Within a
// tenant, order stays strict FIFO.
//
// The queue is bounded: push() blocks while `capacity` jobs are pending
// (backpressure, the submit side of an open-loop storm feels it) and
// try_push() refuses instead. close() wakes everyone; consumers drain the
// remaining jobs and then see end-of-stream.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace fpst::serve {

class JobQueue {
 public:
  /// One-lock snapshot of the queue's observable state. All fields are
  /// read under the same mutex acquisition, so depth and stalls can never
  /// tear against each other the way separate depth()/stalls() calls
  /// could.
  struct Stats {
    std::size_t depth = 0;
    /// push() calls that found the queue full and had to wait — the
    /// count of backpressure stalls the submit side has absorbed.
    std::uint64_t stalls = 0;
    bool closed = false;
  };

  explicit JobQueue(std::size_t capacity) : capacity_{capacity} {}

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueue `job` for `tenant`; blocks while the queue is full. Returns
  /// false (without enqueueing) once the queue is closed. When `stalled`
  /// is non-null it is set to whether this call had to wait for space —
  /// the per-call backpressure signal the service's per-tenant SLO
  /// accounting records.
  bool push(const std::string& tenant, std::uint64_t job,
            bool* stalled = nullptr);

  /// Non-blocking push: false when full or closed.
  bool try_push(const std::string& tenant, std::uint64_t job);

  /// Dequeue the next job in round-robin tenant order; blocks while the
  /// queue is empty. Returns nullopt once closed *and* drained.
  std::optional<std::uint64_t> pop();

  /// Stop accepting pushes and wake all waiters. Pending jobs remain
  /// poppable.
  void close();

  std::size_t depth() const;
  bool closed() const;
  Stats stats() const;

 private:
  bool push_locked(std::unique_lock<std::mutex>& lock,
                   const std::string& tenant, std::uint64_t job);

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::size_t capacity_;
  std::size_t size_ = 0;
  std::uint64_t stalls_ = 0;
  bool closed_ = false;
  /// std::map keeps tenant iteration order deterministic (lexicographic),
  /// so a given submission interleaving always drains identically.
  std::map<std::string, std::deque<std::uint64_t>> lanes_;
  /// Round-robin cursor: the tenant *after* this one (cyclically) is
  /// served next. Empty means "start from the first lane".
  std::string cursor_;
};

}  // namespace fpst::serve
