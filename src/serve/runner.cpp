#include "serve/runner.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <vector>

#include "core/machine.hpp"
#include "link/link.hpp"
#include "mem/memory.hpp"
#include "node/node.hpp"
#include "occam/occam.hpp"
#include "perf/chrome_trace.hpp"
#include "perf/counters.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/proc.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace fpst::serve {

namespace {

/// splitmix64: the seed/node -> initial-data map. Chosen for portability —
/// the same (seed, node, index) always yields the same double on every
/// host, which the byte-determinism of the dumps requires.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// A double in [1, 2) with a 16-bit mantissa slice: exactly representable,
/// sums stay exact for any workload size this service admits, so the
/// checksum is bit-stable across summation orders that the collectives
/// already fix deterministically anyway.
double seeded_value(std::uint64_t seed, std::uint64_t node,
                    std::uint64_t index) {
  const std::uint64_t h = splitmix64(seed ^ (node << 32) ^ index);
  return 1.0 + static_cast<double>(h >> 48) / 65536.0;
}

std::vector<double> seeded_vector(const JobSpec& spec, std::uint64_t node) {
  std::vector<double> v(static_cast<std::size_t>(spec.elems));
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = seeded_value(spec.seed, node, i);
  }
  return v;
}

occam::Runtime::Body allreduce_body(const JobSpec& spec,
                                    std::vector<double>* check) {
  return [&spec, check](occam::Ctx& ctx) -> sim::Proc {
    std::vector<double> xs = seeded_vector(spec, ctx.id());
    for (int r = 0; r < spec.rounds; ++r) {
      co_await ctx.allreduce_sum(&xs);
    }
    double sum = 0.0;
    for (const double x : xs) {
      sum += x;
    }
    (*check)[ctx.id()] = sum;
  };
}

occam::Runtime::Body saxpy_body(const JobSpec& spec,
                                std::vector<node::Array64>* xs,
                                std::vector<node::Array64>* ys,
                                std::vector<node::Array64>* zs,
                                std::vector<double>* check) {
  return [&spec, xs, ys, zs, check](occam::Ctx& ctx) -> sim::Proc {
    node::Node& nd = ctx.node();
    const std::size_t elems = static_cast<std::size_t>(spec.elems);
    // The paper's overlap discipline per round: the CP gathers the next
    // stripe's operands while the pipes run this stripe's VSAXPY.
    for (int r = 0; r < spec.rounds; ++r) {
      std::vector<sim::Proc> par;
      par.push_back(nd.gather(elems));
      par.push_back([](node::Node* n, node::Array64 x, node::Array64 y,
                       node::Array64 z) -> sim::Proc {
        co_await n->vscalar(vpu::VectorForm::vsaxpy, 2.0, x, y, z);
      }(&nd, (*xs)[ctx.id()], (*ys)[ctx.id()], (*zs)[ctx.id()]));
      co_await sim::WhenAll{std::move(par)};
    }
    const std::vector<double> z = nd.read64((*zs)[ctx.id()]);
    double local = 0.0;
    for (const double v : z) {
      local += v;
    }
    co_await ctx.allreduce_sum(&local);
    (*check)[ctx.id()] = local;
  };
}

occam::Runtime::Body ring_body(const JobSpec& spec,
                               std::vector<double>* check) {
  return [&spec, check](occam::Ctx& ctx) -> sim::Proc {
    std::vector<double> v = seeded_vector(spec, ctx.id());
    const std::size_t n = ctx.size();
    if (n > 1) {
      const net::NodeId next =
          static_cast<net::NodeId>((ctx.id() + 1) % n);
      const net::NodeId prev =
          static_cast<net::NodeId>((ctx.id() + n - 1) % n);
      constexpr std::uint16_t kTag = 7;
      for (int r = 0; r < spec.rounds; ++r) {
        std::vector<sim::Proc> par;
        par.push_back(ctx.send(next, kTag, v));
        std::vector<double> in;
        par.push_back(ctx.recv(prev, kTag, &in));
        co_await sim::WhenAll{std::move(par)};
        v = std::move(in);
        for (double& x : v) {
          x += 1.0;  // make each round's payload distinct
        }
      }
    } else {
      for (double& x : v) {
        x += spec.rounds;
      }
    }
    double sum = 0.0;
    for (const double x : v) {
      sum += x;
    }
    (*check)[ctx.id()] = sum;
  };
}

}  // namespace

int shards_for(const JobSpec& spec) {
  const int nodes = 1 << spec.dimension;
  const int cap = std::min(spec.threads, nodes);
  int shards = 1;
  while (shards * 2 <= cap) {
    shards *= 2;
  }
  return shards;
}

JobRun::JobRun(JobSpec spec) : spec_{std::move(spec)} {
  validate(spec_);
  // validate() guarantees the mode string parses.
  node::NodeConfig ncfg;
  ncfg.vpu_mode = *vpu::parse_vpu_mode(spec_.vpu_mode);
  const int shards = shards_for(spec_);
  if (shards > 1) {
    sim::ParallelSim::Options po;
    po.shards = shards;
    po.threads = spec_.threads;
    po.lookahead = link::LinkParams::transfer_time(0);
    psim_ = std::make_unique<sim::ParallelSim>(po);
    machine_ = std::make_unique<core::TSeries>(*psim_, spec_.dimension, ncfg);
  } else {
    sim_ = std::make_unique<sim::Simulator>();
    machine_ = std::make_unique<core::TSeries>(*sim_, spec_.dimension, ncfg);
  }
  reg_ = std::make_unique<perf::CounterRegistry>();
  machine_->enable_perf(*reg_);
  reg_->meta().workload = "serve " + canonical_spec(spec_);
}

JobRun::~JobRun() = default;

std::uint64_t JobRun::progress() const {
  return psim_ ? psim_->progress() : sim_->progress();
}

RunOutcome JobRun::execute() {
  occam::Runtime rt{*machine_};
  std::vector<double> check(machine_->size(), 0.0);

  // The saxpy arrays must outlive the run; allocate them up front on the
  // machine's memory banks, seeded per node.
  std::vector<node::Array64> xs;
  std::vector<node::Array64> ys;
  std::vector<node::Array64> zs;
  occam::Runtime::Body body;
  if (spec_.program == "saxpy") {
    const std::size_t elems = static_cast<std::size_t>(spec_.elems);
    xs.resize(machine_->size());
    ys.resize(machine_->size());
    zs.resize(machine_->size());
    for (net::NodeId id = 0; id < machine_->size(); ++id) {
      node::Node& nd = machine_->node(id);
      xs[id] = nd.alloc64(mem::Bank::A, elems);
      ys[id] = nd.alloc64(mem::Bank::B, elems);
      zs[id] = nd.alloc64(mem::Bank::B, elems);
      nd.write64(xs[id], seeded_vector(spec_, id));
      nd.write64(ys[id], seeded_vector(spec_, id + machine_->size()));
    }
    body = saxpy_body(spec_, &xs, &ys, &zs, &check);
  } else if (spec_.program == "ring") {
    body = ring_body(spec_, &check);
  } else {
    body = allreduce_body(spec_, &check);
  }

  const auto exec_t0 = std::chrono::steady_clock::now();
  const sim::SimTime elapsed = rt.run(body);
  const auto exec_t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.sim_elapsed = elapsed;
  out.events = psim_ ? psim_->events_processed() : sim_->events_processed();
  out.exec_ms =
      std::chrono::duration<double, std::milli>(exec_t1 - exec_t0).count();
  if (psim_) {
    const sim::ParallelSim::Profile prof = psim_->profile();
    out.engine_epochs = prof.epochs;
    out.engine_merge_ns = prof.merge_ns;
    out.engine_barrier_ns =
        std::accumulate(prof.worker_barrier_ns.begin(),
                        prof.worker_barrier_ns.end(), std::uint64_t{0});
  }
  for (const double c : check) {
    out.checksum += c;
  }

  perf::json::Value doc = perf::to_json(*reg_, elapsed);
  perf::json::Value results = perf::json::Value::object();
  results["address"] = perf::json::Value::string(content_address(spec_));
  results["checksum"] = perf::json::Value::number(out.checksum);
  results["elapsed_us"] = perf::json::Value::number(elapsed.us());
  results["events"] =
      perf::json::Value::integer(static_cast<std::int64_t>(out.events));
  results["shards"] = perf::json::Value::integer(shards_for(spec_));
  results["spec"] = spec_to_json(spec_);
  doc["results"] = std::move(results);
  // Exactly perf::write_file's on-disk bytes, so a cached result saved to
  // a file is indistinguishable from a dump the example binaries write.
  out.dump = std::make_shared<const std::string>(doc.dump(2) + "\n");
  out.serialize_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - exec_t1)
                         .count();
  return out;
}

}  // namespace fpst::serve
