// JobSpec: the unit of work the simulation service accepts, and its
// content address.
//
// A spec names a workload program, the machine shape it runs on, the data
// seed and the engine partition. Because every simulation in this repo is
// bit-for-bit deterministic (the CI determinism gates of PRs 2-6 pin dump
// bytes across runs, hosts and worker-thread counts), the dump produced by
// a spec is a pure function of the spec itself — so the spec's canonical
// serialization can be hashed into a *content address* and identical
// requests can be served from a byte cache instead of re-simulated.
//
// Canonicalization is strict by design: a request that would hash to the
// "same" address as another while meaning something different (duplicate
// keys, NaN, unknown fields that a newer client thinks are significant)
// is rejected with a typed SpecError instead of being silently folded in.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "perf/json.hpp"

namespace fpst::serve {

/// Typed bad-request error. `code()` is a stable machine-readable slug
/// (e.g. "unknown-field", "duplicate-key", "not-finite") that the wire
/// protocol forwards to clients; what() carries the human diagnostic.
class SpecError : public std::runtime_error {
 public:
  SpecError(std::string code, const std::string& what)
      : std::runtime_error(what), code_{std::move(code)} {}

  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// One simulation request. Field ranges are validated by validate() /
/// spec_from_json; the defaults form a valid spec.
struct JobSpec {
  /// Workload program: "allreduce" (rounds of a dimension-exchange vector
  /// allreduce), "saxpy" (gather-overlapped VSAXPY stripes plus a closing
  /// reduction) or "ring" (elems-vector ring shifts, every node active).
  std::string program = "allreduce";
  /// Cube dimension: 2^dimension nodes, 0 <= dimension <= 10.
  int dimension = 2;
  /// Requested worker threads, 1..64. threads == 1 runs the serial
  /// kernel; threads > 1 runs the sharded parallel engine. The shard
  /// partition is derived from (threads, dimension) only — never from the
  /// host — so the dump bytes stay a pure function of the spec.
  int threads = 1;
  /// Workload repetition count, 1..100000.
  int rounds = 1;
  /// Vector length per operation, 1..128 (one 64-bit memory row).
  int elems = 16;
  /// Data seed: initial per-node values are derived from (seed, node).
  std::uint64_t seed = 0;
  /// VPU arithmetic arm: "softfloat" (oracle, default), "batch" (host-FP
  /// fast path) or "checked" (both, abort on divergence). All three produce
  /// byte-identical dumps — the batch arm is bit-exact by contract — but
  /// the field is part of the canonical spec, so each mode hashes to its
  /// own content address: a cached result always records which arm actually
  /// produced it, and a checked re-run is never masked by a cache hit.
  std::string vpu_mode = "softfloat";

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// Throws SpecError when a field is out of range or the program is
/// unknown. (Construction-by-hand skips parsing, so the service calls
/// this again at the trust boundary.)
void validate(const JobSpec& spec);

/// Spec -> sorted-key JSON object (perf::json objects are std::map-backed,
/// so key order is canonical by construction).
perf::json::Value spec_to_json(const JobSpec& spec);

/// Parse and validate a spec from a JSON document object. Throws SpecError
/// on unknown fields, wrong types, non-finite or non-integral numbers, and
/// range violations.
JobSpec spec_from_json(const perf::json::Value& doc);

/// Parse and validate a spec from JSON text. Uses the strict parser, so
/// duplicate keys are rejected (SpecError "duplicate-key") rather than
/// silently collapsed before hashing.
JobSpec parse_spec(std::string_view text);

/// The canonical serialization: compact, sorted-key JSON. Two specs have
/// equal canonical bytes iff they are equal.
std::string canonical_spec(const JobSpec& spec);

/// Content address: "ca-" + 16 lowercase hex digits of the FNV-1a 64-bit
/// hash of canonical_spec(). This is the result-cache key.
std::string content_address(const JobSpec& spec);

}  // namespace fpst::serve
