#include "serve/job_queue.hpp"

namespace fpst::serve {

bool JobQueue::push_locked(std::unique_lock<std::mutex>& lock,
                           const std::string& tenant, std::uint64_t job) {
  (void)lock;  // caller holds mu_
  if (closed_) {
    return false;
  }
  lanes_[tenant].push_back(job);
  ++size_;
  not_empty_.notify_one();
  return true;
}

bool JobQueue::push(const std::string& tenant, std::uint64_t job,
                    bool* stalled) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool waited = size_ >= capacity_ && !closed_;
  if (waited) {
    ++stalls_;
  }
  if (stalled != nullptr) {
    *stalled = waited;
  }
  not_full_.wait(lock, [&] { return size_ < capacity_ || closed_; });
  return push_locked(lock, tenant, job);
}

bool JobQueue::try_push(const std::string& tenant, std::uint64_t job) {
  std::unique_lock<std::mutex> lock(mu_);
  if (size_ >= capacity_) {
    return false;
  }
  return push_locked(lock, tenant, job);
}

std::optional<std::uint64_t> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
  if (size_ == 0) {
    return std::nullopt;  // closed and drained
  }
  // Round-robin: first non-empty lane strictly after the cursor, wrapping.
  auto it = lanes_.upper_bound(cursor_);
  for (std::size_t scanned = 0; scanned <= lanes_.size(); ++scanned) {
    if (it == lanes_.end()) {
      it = lanes_.begin();
    }
    if (!it->second.empty()) {
      break;
    }
    ++it;
  }
  const std::uint64_t job = it->second.front();
  it->second.pop_front();
  cursor_ = it->first;
  if (it->second.empty()) {
    lanes_.erase(it);  // cursor_ still orders correctly via upper_bound
  }
  --size_;
  not_full_.notify_one();
  return job;
}

void JobQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

JobQueue::Stats JobQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.depth = size_;
  s.stalls = stalls_;
  s.closed = closed_;
  return s;
}

}  // namespace fpst::serve
