// tmon — serve-layer observability shaping.
//
// The service collects per-request spans (Service::spans) and per-tenant
// SLO accounts (Service::stats); this header turns them into the three
// export formats the tooling speaks:
//
//   * span JSON + a spans document (`tsim trace`, tmon selfdump);
//   * a metrics document (`tsim metrics`, tmon) and its Prometheus text
//     rendering (`--prom`);
//   * a Chrome trace_event document of all spans (opens unmodified in
//     chrome://tracing / ui.perfetto.dev).
//
// Determinism contract: every document splits into a deterministic body —
// a pure function of the submission sequence (ids, tenants, addresses,
// programs, states, hit/miss pattern, event counts, stage names) — and a
// `meta` object holding everything wall-clock (stage durations, latency
// histograms, uptime, stall counts). strip_meta() removes every `meta`
// member recursively; the CI determinism gate runs a fixed workload
// twice and requires the stripped bytes to be identical.
#pragma once

#include <string>
#include <vector>

#include "perf/json.hpp"
#include "serve/service.hpp"

namespace fpst::serve {

/// One span as {id, tenant, address, program, state, cache_hit, events,
/// error?, stages: [names...], meta: {per-stage ms, offsets}}.
perf::json::Value span_to_json(const JobSpan& sp);

/// All spans: {"kind": "tmon-spans", "jobs": N, "spans": [...]}.
perf::json::Value spans_to_json(const std::vector<JobSpan>& spans);

/// Service-wide metrics: deterministic counters (global + per tenant) in
/// the body, histograms/uptime/queue gauges under "meta".
perf::json::Value metrics_to_json(const ServiceStats& s);

/// Prometheus text exposition of the same stats (counters, gauges, and
/// per-tenant latency quantile gauges). Ends with a newline.
std::string to_prometheus(const ServiceStats& s);

/// Chrome trace_event document: one pid per tenant is too coarse and one
/// per job too noisy, so jobs become tids under a single "tsim" pid, with
/// one complete (ph:"X") event per stage. Wall-clock by nature — never
/// determinism-gated.
perf::json::Value spans_chrome_trace(const std::vector<JobSpan>& spans);

/// Recursively remove every object member named "meta". Returns the
/// stripped document (arrays are descended into as well).
perf::json::Value strip_meta(const perf::json::Value& v);

}  // namespace fpst::serve
