// Software model of the T Series floating-point formats.
//
// The paper (§II "Arithmetic") specifies: the proposed IEEE standard format,
// 32- and 64-bit, round-to-nearest, but **gradual underflow is not
// supported** — denormalised numbers neither enter nor leave the pipelines.
// This module implements those semantics bit-exactly in integer arithmetic:
//   * binary32 / binary64 layouts (1 sign, 8/11 exponent, 23/52 mantissa);
//   * add, subtract, multiply (the node has an adder and a multiplier; there
//     is no divide unit — division is software, see vpu/recip);
//   * comparisons and format/integer conversions (the adder performs these);
//   * flush-to-zero: denormal inputs are read as signed zero, results that
//     would be denormal are flushed to signed zero with the underflow flag.
//
// All operations take an accumulating `Flags` so tests and the VPU model can
// observe exceptions exactly where the hardware would raise its status line.
#pragma once

#include <cstdint>
#include <string>

namespace fpst::fp {

/// IEEE exception flags (sticky, accumulate across operations).
struct Flags {
  bool invalid = false;
  bool overflow = false;
  bool underflow = false;
  bool inexact = false;

  void merge(const Flags& o) {
    invalid |= o.invalid;
    overflow |= o.overflow;
    underflow |= o.underflow;
    inexact |= o.inexact;
  }
  bool any() const { return invalid || overflow || underflow || inexact; }
};

/// Static description of a binary interchange format.
struct Format {
  int exp_bits;
  int mant_bits;  // explicit mantissa bits (hidden bit not counted)

  constexpr int total_bits() const { return 1 + exp_bits + mant_bits; }
  constexpr int bias() const { return (1 << (exp_bits - 1)) - 1; }
  constexpr std::int64_t exp_max() const { return (1 << exp_bits) - 1; }
  constexpr std::uint64_t mant_mask() const {
    return (std::uint64_t{1} << mant_bits) - 1;
  }
  constexpr std::uint64_t sign_mask() const {
    return std::uint64_t{1} << (total_bits() - 1);
  }
  constexpr std::uint64_t exp_field(std::uint64_t bits) const {
    return (bits >> mant_bits) & static_cast<std::uint64_t>(exp_max());
  }
  constexpr std::uint64_t quiet_nan() const {
    return (static_cast<std::uint64_t>(exp_max()) << mant_bits) |
           (std::uint64_t{1} << (mant_bits - 1));
  }
  constexpr std::uint64_t infinity(bool negative) const {
    return (negative ? sign_mask() : 0) |
           (static_cast<std::uint64_t>(exp_max()) << mant_bits);
  }
};

inline constexpr Format kBinary32{8, 23};
inline constexpr Format kBinary64{11, 52};

/// Result of an IEEE comparison.
enum class Ordering { less, equal, greater, unordered };

namespace detail {
// Core operations on raw bit patterns. `f` selects binary32/binary64; bits
// above f.total_bits() must be zero.
std::uint64_t add(const Format& f, std::uint64_t a, std::uint64_t b,
                  Flags& flags);
std::uint64_t sub(const Format& f, std::uint64_t a, std::uint64_t b,
                  Flags& flags);
std::uint64_t mul(const Format& f, std::uint64_t a, std::uint64_t b,
                  Flags& flags);
Ordering compare(const Format& f, std::uint64_t a, std::uint64_t b,
                 Flags& flags);
std::uint64_t negate(const Format& f, std::uint64_t a);
std::uint64_t abs(const Format& f, std::uint64_t a);
std::uint64_t from_int32(const Format& f, std::int32_t v, Flags& flags);
std::int32_t to_int32(const Format& f, std::uint64_t a, Flags& flags);
std::uint64_t widen(std::uint64_t a32);                  // binary32→binary64
/// Widening as the adder pipeline performs it: like widen(), but raises
/// `invalid` for a signalling NaN input (the payload is still preserved and
/// quieted). The flagless overload exists for value plumbing (reduction
/// results crossing to T64) where no conversion instruction executes.
std::uint64_t widen(std::uint64_t a32, Flags& flags);
std::uint64_t narrow(std::uint64_t a64, Flags& flags);   // binary64→binary32
/// Flush denormal input to signed zero (the read-side FTZ rule).
std::uint64_t ftz_input(const Format& f, std::uint64_t a);
bool is_nan(const Format& f, std::uint64_t a);
bool is_inf(const Format& f, std::uint64_t a);
bool is_zero_or_denormal(const Format& f, std::uint64_t a);
std::string to_string(const Format& f, std::uint64_t a);
}  // namespace detail

/// A 64-bit T Series floating point value (binary64 layout, FTZ semantics).
class T64 {
 public:
  constexpr T64() = default;
  static constexpr T64 from_bits(std::uint64_t b) { return T64{b}; }
  /// Import a host double. Denormals flush to signed zero so that the value
  /// is representable on the machine.
  static T64 from_double(double v);
  double to_double() const;

  constexpr std::uint64_t bits() const { return bits_; }
  bool is_nan() const { return detail::is_nan(kBinary64, bits_); }
  bool is_inf() const { return detail::is_inf(kBinary64, bits_); }
  bool is_zero() const { return (bits_ & ~kBinary64.sign_mask()) == 0; }
  bool sign() const { return (bits_ & kBinary64.sign_mask()) != 0; }

  friend T64 add(T64 a, T64 b, Flags& fl) {
    return T64{detail::add(kBinary64, a.bits_, b.bits_, fl)};
  }
  friend T64 sub(T64 a, T64 b, Flags& fl) {
    return T64{detail::sub(kBinary64, a.bits_, b.bits_, fl)};
  }
  friend T64 mul(T64 a, T64 b, Flags& fl) {
    return T64{detail::mul(kBinary64, a.bits_, b.bits_, fl)};
  }
  friend Ordering compare(T64 a, T64 b, Flags& fl) {
    return detail::compare(kBinary64, a.bits_, b.bits_, fl);
  }
  T64 negated() const { return T64{detail::negate(kBinary64, bits_)}; }
  T64 abs() const { return T64{detail::abs(kBinary64, bits_)}; }

  friend constexpr bool operator==(T64 a, T64 b) { return a.bits_ == b.bits_; }

  std::string to_string() const {
    return detail::to_string(kBinary64, bits_);
  }

 private:
  explicit constexpr T64(std::uint64_t b) : bits_{b} {}
  std::uint64_t bits_ = 0;
};

/// A 32-bit T Series floating point value (binary32 layout, FTZ semantics).
class T32 {
 public:
  constexpr T32() = default;
  static constexpr T32 from_bits(std::uint32_t b) { return T32{b}; }
  static T32 from_float(float v);
  float to_float() const;

  constexpr std::uint32_t bits() const { return bits_; }
  bool is_nan() const { return detail::is_nan(kBinary32, bits_); }
  bool is_inf() const { return detail::is_inf(kBinary32, bits_); }
  bool is_zero() const {
    return (bits_ & ~static_cast<std::uint32_t>(kBinary32.sign_mask())) == 0;
  }
  bool sign() const { return (bits_ & kBinary32.sign_mask()) != 0; }

  friend T32 add(T32 a, T32 b, Flags& fl) {
    return T32{static_cast<std::uint32_t>(
        detail::add(kBinary32, a.bits_, b.bits_, fl))};
  }
  friend T32 sub(T32 a, T32 b, Flags& fl) {
    return T32{static_cast<std::uint32_t>(
        detail::sub(kBinary32, a.bits_, b.bits_, fl))};
  }
  friend T32 mul(T32 a, T32 b, Flags& fl) {
    return T32{static_cast<std::uint32_t>(
        detail::mul(kBinary32, a.bits_, b.bits_, fl))};
  }
  friend Ordering compare(T32 a, T32 b, Flags& fl) {
    return detail::compare(kBinary32, a.bits_, b.bits_, fl);
  }
  T32 negated() const {
    return T32{static_cast<std::uint32_t>(detail::negate(kBinary32, bits_))};
  }
  T32 abs() const {
    return T32{static_cast<std::uint32_t>(detail::abs(kBinary32, bits_))};
  }

  friend constexpr bool operator==(T32 a, T32 b) { return a.bits_ == b.bits_; }

  /// Data conversions performed by the adder pipeline. The Flags overload
  /// is the VCVTW instruction semantics (invalid on signalling NaN); the
  /// flagless one is value plumbing that raises nothing.
  T64 widened() const { return T64::from_bits(detail::widen(bits_)); }
  T64 widened(Flags& fl) const {
    return T64::from_bits(detail::widen(bits_, fl));
  }
  static T32 narrowed(T64 v, Flags& fl) {
    return T32{static_cast<std::uint32_t>(detail::narrow(v.bits(), fl))};
  }

  std::string to_string() const {
    return detail::to_string(kBinary32, bits_);
  }

 private:
  explicit constexpr T32(std::uint32_t b) : bits_{b} {}
  std::uint32_t bits_ = 0;
};

/// Integer conversions (adder pipeline "data conversions", §II).
T64 t64_from_int32(std::int32_t v, Flags& fl);
std::int32_t t64_to_int32(T64 v, Flags& fl);
T32 t32_from_int32(std::int32_t v, Flags& fl);
std::int32_t t32_to_int32(T32 v, Flags& fl);

}  // namespace fpst::fp
