// Host-FP fast path for the T Series softfloat model.
//
// The softfloat module (softfloat.cpp) is the oracle: bit-exact integer
// arithmetic, round-to-nearest-even, flush-to-zero. It is also ~20-50ns per
// operation, which makes large application runs oracle-bound rather than
// machine-bound. This header provides drop-in replacements for the hot
// operations (add/sub/mul in both widths, narrow, compare) that compute the
// same bit pattern *and the same IEEE flags* using the host FPU, falling
// back to the softfloat oracle for the inputs where host semantics and the
// machine's FTZ semantics can legitimately differ.
//
// The contract of every function here: for all raw operand bit patterns,
// the returned bits and the flags merged into `fl` are identical to the
// corresponding fp::detail operation. The fast path is a *proof-carrying
// optimisation* — each branch below is annotated with why host IEEE
// arithmetic cannot diverge from the oracle on that branch, and anything
// unproven routes to the oracle. The VPU `checked` mode and the
// cross-validation fuzzer (tests/vpu_batch_test.cpp) enforce the contract
// at runtime.
//
// Divergence classes handled:
//   * NaNs: the machine returns one canonical quiet NaN and never
//     propagates payloads; the host propagates operand payloads. Any NaN in
//     or out routes to the oracle.
//   * Gradual underflow: the host rounds into the denormal range; the
//     machine rounds at full precision and then flushes. For *addition*
//     this cannot cause a divergent rounding at the smallest-normal
//     boundary (exact sums of FTZ'd operands are representable below the
//     boundary: they are multiples of the smallest denormal step), so host
//     results that land exactly on the boundary are trusted. For
//     *multiplication* and *narrowing* the exact result can fall in the
//     half-ulp window just under the smallest normal where the host's
//     denormal-grained rounding and the machine's full-precision rounding
//     disagree about crossing the boundary — results that land exactly on
//     the smallest normal route to the oracle.
//   * Inexact detection: binary32 operations are computed exactly in
//     binary64 and rounded once, so inexactness is a plain comparison.
//     binary64 addition uses Fast2Sum (valid under round-to-nearest for
//     any exponent ordering of the operands, which the magnitude swap
//     establishes); binary64 multiplication uses an FMA residual, which is
//     only exactly representable when the product is well above the
//     denormal range — smaller products route to the oracle.
//
// Assumptions (checked where the language lets us): IEC 559 doubles,
// round-to-nearest-even, no fast-math reassociation, no x87 excess
// precision. The repo builds with default rounding and strict FP; the
// fuzzer would fail loudly on any toolchain that violates this.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "fp/softfloat.hpp"

namespace fpst::fp::host {

static_assert(std::numeric_limits<double>::is_iec559,
              "host bridge requires IEEE-754 doubles");
static_assert(std::numeric_limits<float>::is_iec559,
              "host bridge requires IEEE-754 floats");

inline constexpr std::uint64_t kSign64 = 0x8000000000000000ULL;
inline constexpr std::uint64_t kExp64 = 0x7ff0000000000000ULL;
inline constexpr std::uint64_t kMant64 = 0x000fffffffffffffULL;
inline constexpr std::uint32_t kSign32 = 0x80000000U;
inline constexpr std::uint32_t kExp32 = 0x7f800000U;
inline constexpr std::uint32_t kMant32 = 0x007fffffU;

/// Read-side FTZ on raw bits: a zero exponent field means zero or denormal,
/// and both read as signed zero on the machine.
inline std::uint64_t ftz64(std::uint64_t b) {
  return (b & kExp64) == 0 ? (b & kSign64) : b;
}
inline std::uint32_t ftz32(std::uint32_t b) {
  return (b & kExp32) == 0 ? (b & kSign32) : b;
}

inline bool nan64(std::uint64_t b) {
  return (b & kExp64) == kExp64 && (b & kMant64) != 0;
}
inline bool nan32(std::uint32_t b) {
  return (b & kExp32) == kExp32 && (b & kMant32) != 0;
}

/// z = a + b in binary64 FTZ semantics, bit- and flag-exact vs detail::add.
inline std::uint64_t add64(std::uint64_t ra, std::uint64_t rb, Flags& fl) {
  if (nan64(ra) || nan64(rb)) {
    // Machine NaN policy: canonical quiet NaN, invalid iff signalling.
    return detail::add(kBinary64, ra, rb, fl);
  }
  const double a = std::bit_cast<double>(ftz64(ra));
  const double b = std::bit_cast<double>(ftz64(rb));
  const double s = a + b;
  if (std::isnan(s)) {
    return detail::add(kBinary64, ra, rb, fl);  // inf + (-inf): invalid
  }
  if (std::isinf(s)) {
    if (!std::isinf(a) && !std::isinf(b)) {
      fl.overflow = true;
      fl.inexact = true;
    }
    return std::bit_cast<std::uint64_t>(s);
  }
  if (std::fabs(s) < std::numeric_limits<double>::min()) {
    if (s == 0.0) {
      // Exact zero: both operands zero (machine sign rule: negative only
      // when both are) or exact cancellation (+0 under RNE) — host IEEE
      // produces the identical sign in both cases, and no flags.
      return std::bit_cast<std::uint64_t>(s);
    }
    // Denormal host result. The exact sum of two FTZ'd doubles is a
    // multiple of 2^-1074, so the host value *is* the exact sum here and
    // the machine's full-precision rounding would reach the same value
    // before flushing it. Flush, with the machine's unconditional
    // underflow+inexact on any flushed result.
    fl.underflow = true;
    fl.inexact = true;
    return std::bit_cast<std::uint64_t>(s) & kSign64;
  }
  // Normal result: host RNE == machine RNE (same precision, no flush).
  // A host result exactly at the smallest normal is also safe: no exact
  // sum lies strictly inside the divergence half-ulp under the boundary
  // (multiples of 2^-1074 cannot). Inexact via Fast2Sum: with
  // |big| >= |small| and RNE, (s - big) and small - (s - big) are exact,
  // and the residual is zero iff the sum was exact.
  double big = a;
  double small = b;
  if (std::fabs(big) < std::fabs(small)) {
    const double t = big;
    big = small;
    small = t;
  }
  if (small - (s - big) != 0.0) {
    fl.inexact = true;
  }
  return std::bit_cast<std::uint64_t>(s);
}

/// z = a - b: the machine implements subtract as add(a, -b) after the NaN
/// check; negating the raw bits first is equivalent (sign flip does not
/// change NaN-ness or quietness).
inline std::uint64_t sub64(std::uint64_t ra, std::uint64_t rb, Flags& fl) {
  return add64(ra, rb ^ kSign64, fl);
}

/// z = a * b in binary64 FTZ semantics, bit- and flag-exact vs detail::mul.
inline std::uint64_t mul64(std::uint64_t ra, std::uint64_t rb, Flags& fl) {
  if (nan64(ra) || nan64(rb)) {
    return detail::mul(kBinary64, ra, rb, fl);
  }
  const double a = std::bit_cast<double>(ftz64(ra));
  const double b = std::bit_cast<double>(ftz64(rb));
  const double p = a * b;
  if (std::isnan(p)) {
    return detail::mul(kBinary64, ra, rb, fl);  // 0 * inf: invalid
  }
  if (std::isinf(p)) {
    if (!std::isinf(a) && !std::isinf(b)) {
      fl.overflow = true;
      fl.inexact = true;
    }
    return std::bit_cast<std::uint64_t>(p);
  }
  const double mag = std::fabs(p);
  if (mag < std::numeric_limits<double>::min()) {
    if (p == 0.0 && (a == 0.0 || b == 0.0)) {
      return std::bit_cast<std::uint64_t>(p);  // exact signed zero (XOR)
    }
    // Host rounded into the denormal range (or all the way to zero), so
    // the exact product is below the machine's round-up-to-normal
    // threshold too: both sides flush. Sign is the XOR the host computed.
    fl.underflow = true;
    fl.inexact = true;
    return std::bit_cast<std::uint64_t>(p) & kSign64;
  }
  if (mag < 0x1p-968) {
    // Two reasons to distrust the host this close to the flush boundary:
    // a result exactly at the smallest normal may be the host rounding
    // *up* across the boundary where the machine rounds at full precision
    // and flushes (the half-ulp divergence window), and further up the
    // FMA residual below can itself fall outside the representable range
    // (|a*b - p| <= ulp(p)/2 needs p >= 2^-968 to be a representable
    // denormal in the worst case). Rare and cold: route to the oracle.
    return detail::mul(kBinary64, ra, rb, fl);
  }
  if (std::fma(a, b, -p) != 0.0) {
    fl.inexact = true;
  }
  return std::bit_cast<std::uint64_t>(p);
}

/// Binary32 operations are computed in binary64 and rounded once to
/// binary32. Products of 24-bit operands fit in 48 bits, so the double
/// product is the exact product. Sums do NOT always fit (the operands'
/// exponents can differ by more than 53), so the double sum can itself be
/// rounded — but 53 >= 2*24 + 2, so by the innocuous-double-rounding bound
/// binary64-then-binary32 rounding still yields the machine's correctly
/// rounded binary32 result; only the inexact flag needs the Fast2Sum
/// residual of the binary64 addition.
inline std::uint32_t add32(std::uint32_t ra, std::uint32_t rb, Flags& fl) {
  if (nan32(ra) || nan32(rb)) {
    return static_cast<std::uint32_t>(detail::add(kBinary32, ra, rb, fl));
  }
  const float a = std::bit_cast<float>(ftz32(ra));
  const float b = std::bit_cast<float>(ftz32(rb));
  double big = static_cast<double>(a);
  double small = static_cast<double>(b);
  if (std::fabs(big) < std::fabs(small)) {
    const double t = big;
    big = small;
    small = t;
  }
  const double s = big + small;
  // Exact residual of the binary64 addition (Fast2Sum, |big| >= |small|):
  // zero iff s is the exact sum. Finite always — |s| <= ~2^129.
  const double err = small - (s - big);
  const float r = static_cast<float>(s);
  if (std::isnan(r)) {
    return static_cast<std::uint32_t>(detail::add(kBinary32, ra, rb, fl));
  }
  if (std::isinf(r)) {
    if (!std::isinf(a) && !std::isinf(b)) {
      fl.overflow = true;
      fl.inexact = true;
    }
    return std::bit_cast<std::uint32_t>(r);
  }
  if (std::fabs(r) < std::numeric_limits<float>::min()) {
    if (s == 0.0) {
      // s == 0 forces err == 0 (cancellation of equal doubles is exact):
      // exact zero, host sign rule.
      return std::bit_cast<std::uint32_t>(r);
    }
    fl.underflow = true;
    fl.inexact = true;
    return std::bit_cast<std::uint32_t>(r) & kSign32;
  }
  // As with add64, a result exactly at the smallest normal is safe for
  // addition: near the boundary the operand exponents are within 53 of
  // each other, so the double sum is the exact sum (err == 0), exact sums
  // are multiples of the smallest denormal step, and at the boundary tie
  // the host rounds to even (up, across) exactly where the machine's
  // full-precision rounding also reaches the normal value.
  //
  // Inexact iff r differs from the exact sum s + err. If err != 0 the
  // exact sum cannot be a binary32 value (it would have been an exact
  // binary64 sum), so either condition suffices.
  if (static_cast<double>(r) != s || err != 0.0) {
    fl.inexact = true;
  }
  return std::bit_cast<std::uint32_t>(r);
}

inline std::uint32_t sub32(std::uint32_t ra, std::uint32_t rb, Flags& fl) {
  return add32(ra, rb ^ kSign32, fl);
}

inline std::uint32_t mul32(std::uint32_t ra, std::uint32_t rb, Flags& fl) {
  if (nan32(ra) || nan32(rb)) {
    return static_cast<std::uint32_t>(detail::mul(kBinary32, ra, rb, fl));
  }
  const float a = std::bit_cast<float>(ftz32(ra));
  const float b = std::bit_cast<float>(ftz32(rb));
  const double p = static_cast<double>(a) * static_cast<double>(b);  // exact
  const float r = static_cast<float>(p);
  if (std::isnan(r)) {
    return static_cast<std::uint32_t>(detail::mul(kBinary32, ra, rb, fl));
  }
  if (std::isinf(r)) {
    if (!std::isinf(a) && !std::isinf(b)) {
      fl.overflow = true;
      fl.inexact = true;
    }
    return std::bit_cast<std::uint32_t>(r);
  }
  const float magr = std::fabs(r);
  if (magr < std::numeric_limits<float>::min()) {
    if (p == 0.0 && (a == 0.0F || b == 0.0F)) {
      return std::bit_cast<std::uint32_t>(r);  // exact signed zero
    }
    fl.underflow = true;
    fl.inexact = true;
    return std::bit_cast<std::uint32_t>(r) & kSign32;
  }
  if (magr == std::numeric_limits<float>::min()) {
    // The half-ulp window under the smallest normal: an exact product of
    // 2^-126 - 2^-150 is a host round-to-even tie that crosses the
    // boundary, while the machine represents it exactly at full precision
    // and flushes it. Products (unlike sums) do land there: oracle.
    return static_cast<std::uint32_t>(detail::mul(kBinary32, ra, rb, fl));
  }
  if (static_cast<double>(r) != p) {
    fl.inexact = true;
  }
  return std::bit_cast<std::uint32_t>(r);
}

/// binary64 -> binary32 conversion (VCVTN), bit- and flag-exact vs
/// detail::narrow. The host conversion is a single rounding of the exact
/// input, like the machine's — only NaNs and the flush boundary differ.
inline std::uint32_t narrow(std::uint64_t ra, Flags& fl) {
  if (nan64(ra)) {
    return static_cast<std::uint32_t>(detail::narrow(ra, fl));
  }
  const double d = std::bit_cast<double>(ftz64(ra));
  const float r = static_cast<float>(d);
  if (std::isinf(r)) {
    if (!std::isinf(d)) {
      fl.overflow = true;
      fl.inexact = true;
    }
    return std::bit_cast<std::uint32_t>(r);
  }
  const float magr = std::fabs(r);
  if (magr < std::numeric_limits<float>::min()) {
    if (d == 0.0) {
      return std::bit_cast<std::uint32_t>(r);  // exact signed zero
    }
    fl.underflow = true;
    fl.inexact = true;
    return std::bit_cast<std::uint32_t>(r) & kSign32;
  }
  if (magr == std::numeric_limits<float>::min()) {
    // Same boundary tie as mul32: a double exactly equal to
    // 2^-126 - 2^-150 narrows across the boundary on the host but is
    // flushed by the machine.
    return static_cast<std::uint32_t>(detail::narrow(ra, fl));
  }
  if (static_cast<double>(r) != d) {
    fl.inexact = true;
  }
  return std::bit_cast<std::uint32_t>(r);
}

/// IEEE comparison with machine semantics (FTZ inputs, -0 == +0, invalid
/// only for signalling NaN operands). Host comparison agrees on every
/// non-NaN pair after FTZ; NaNs take the oracle for the flag policy.
inline Ordering compare64(std::uint64_t ra, std::uint64_t rb, Flags& fl) {
  if (nan64(ra) || nan64(rb)) {
    return detail::compare(kBinary64, ra, rb, fl);
  }
  const double a = std::bit_cast<double>(ftz64(ra));
  const double b = std::bit_cast<double>(ftz64(rb));
  if (a < b) {
    return Ordering::less;
  }
  return a > b ? Ordering::greater : Ordering::equal;
}

inline Ordering compare32(std::uint32_t ra, std::uint32_t rb, Flags& fl) {
  if (nan32(ra) || nan32(rb)) {
    return detail::compare(kBinary32, ra, rb, fl);
  }
  const float a = std::bit_cast<float>(ftz32(ra));
  const float b = std::bit_cast<float>(ftz32(rb));
  if (a < b) {
    return Ordering::less;
  }
  return a > b ? Ordering::greater : Ordering::equal;
}

}  // namespace fpst::fp::host
