#include "fp/softfloat.hpp"

#include <bit>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <limits>

namespace fpst::fp {
namespace detail {
namespace {

using u64 = std::uint64_t;
using i64 = std::int64_t;

enum class Class { zero, normal, inf, nan };

/// A value unpacked for computation: value = (-1)^sign * sig * 2^(exp - f.mant_bits)
/// with sig in [2^mant_bits, 2^(mant_bits+1)) for normals.
struct Unpacked {
  bool sign = false;
  i64 exp = 0;  // unbiased
  u64 sig = 0;  // hidden bit included (normals only)
  Class cls = Class::zero;
};

bool quiet_bit_set(const Format& f, u64 bits) {
  return (bits >> (f.mant_bits - 1)) & 1u;
}

Unpacked unpack(const Format& f, u64 bits) {
  Unpacked r;
  r.sign = (bits & f.sign_mask()) != 0;
  const u64 e = f.exp_field(bits);
  const u64 m = bits & f.mant_mask();
  if (e == static_cast<u64>(f.exp_max())) {
    r.cls = (m == 0) ? Class::inf : Class::nan;
    r.sig = m;
    return r;
  }
  if (e == 0) {
    // Zero or denormal: with no gradual underflow the hardware reads any
    // denormal operand as a signed zero.
    r.cls = Class::zero;
    return r;
  }
  r.cls = Class::normal;
  r.exp = static_cast<i64>(e) - f.bias();
  r.sig = m | (u64{1} << f.mant_bits);
  return r;
}

u64 pack_zero(const Format& f, bool sign) { return sign ? f.sign_mask() : 0; }

u64 propagate_nan(const Format& f, u64 a, u64 b, Flags& flags) {
  const bool a_nan = is_nan(f, a);
  const bool b_nan = is_nan(f, b);
  if ((a_nan && !quiet_bit_set(f, a)) || (b_nan && !quiet_bit_set(f, b))) {
    flags.invalid = true;  // signaling NaN operand
  }
  return f.quiet_nan();
}

/// 64x64 -> 128 multiply without relying on __int128 (kept ISO-portable).
void umul64wide(u64 a, u64 b, u64& hi, u64& lo) {
  const u64 a_lo = a & 0xffff'ffffu;
  const u64 a_hi = a >> 32;
  const u64 b_lo = b & 0xffff'ffffu;
  const u64 b_hi = b >> 32;
  const u64 p0 = a_lo * b_lo;
  const u64 p1 = a_lo * b_hi;
  const u64 p2 = a_hi * b_lo;
  const u64 p3 = a_hi * b_hi;
  const u64 mid = p1 + (p0 >> 32);
  const u64 mid2 = p2 + (mid & 0xffff'ffffu);
  hi = p3 + (mid >> 32) + (mid2 >> 32);
  lo = (mid2 << 32) | (p0 & 0xffff'ffffu);
}

/// Round-to-nearest-even and pack. `sig3` carries the significand with three
/// extra low bits (guard, round, sticky); the hidden bit is expected at
/// position f.mant_bits + 3 after normalisation. exp is the unbiased
/// exponent matching that position. Flush-to-zero applies on underflow.
u64 round_and_pack(const Format& f, bool sign, i64 exp, u64 sig3,
                   Flags& flags) {
  if (sig3 == 0) {
    return pack_zero(f, sign);
  }
  const int hidden_pos = f.mant_bits + 3;
  // Normalise so the leading one sits exactly at hidden_pos.
  int msb = 63 - std::countl_zero(sig3);
  if (msb > hidden_pos) {
    const int sh = msb - hidden_pos;
    const u64 lost = sig3 & ((u64{1} << sh) - 1);
    sig3 = (sig3 >> sh) | (lost != 0 ? 1 : 0);
    exp += sh;
  } else if (msb < hidden_pos) {
    sig3 <<= (hidden_pos - msb);
    exp -= (hidden_pos - msb);
  }
  // Round to nearest, ties to even, on the three GRS bits.
  const u64 grs = sig3 & 7u;
  u64 sig = sig3 >> 3;
  if (grs > 4 || (grs == 4 && (sig & 1u))) {
    ++sig;
    if (sig >> (f.mant_bits + 1)) {  // rounding carried out
      sig >>= 1;
      ++exp;
    }
  }
  if (grs != 0) {
    flags.inexact = true;
  }
  const i64 biased = exp + f.bias();
  if (biased >= f.exp_max()) {
    flags.overflow = true;
    flags.inexact = true;
    return f.infinity(sign);
  }
  if (biased <= 0) {
    // Result magnitude below the smallest normal: flush to signed zero.
    flags.underflow = true;
    flags.inexact = true;
    return pack_zero(f, sign);
  }
  return (sign ? f.sign_mask() : 0) |
         (static_cast<u64>(biased) << f.mant_bits) | (sig & f.mant_mask());
}

/// Shift right, ORing all lost bits into the LSB (sticky).
u64 shift_right_sticky(u64 v, i64 sh) {
  if (sh <= 0) {
    return v;
  }
  if (sh >= 64) {
    return v != 0 ? 1 : 0;
  }
  const u64 lost = v & ((u64{1} << sh) - 1);
  return (v >> sh) | (lost != 0 ? 1 : 0);
}

u64 add_magnitudes(const Format& f, const Unpacked& big, const Unpacked& small,
                   bool sign, Flags& flags) {
  const u64 sig_a = big.sig << 3;
  const u64 sig_b = shift_right_sticky(small.sig << 3, big.exp - small.exp);
  return round_and_pack(f, sign, big.exp, sig_a + sig_b, flags);
}

u64 sub_magnitudes(const Format& f, const Unpacked& big, const Unpacked& small,
                   bool sign, Flags& flags) {
  const u64 sig_a = big.sig << 3;
  const u64 sig_b = shift_right_sticky(small.sig << 3, big.exp - small.exp);
  if (sig_a == sig_b) {
    return pack_zero(f, false);  // exact cancellation gives +0 under RNE
  }
  if (sig_a > sig_b) {
    return round_and_pack(f, sign, big.exp, sig_a - sig_b, flags);
  }
  return round_and_pack(f, !sign, big.exp, sig_b - sig_a, flags);
}

}  // namespace

bool is_nan(const Format& f, u64 a) {
  return f.exp_field(a) == static_cast<u64>(f.exp_max()) &&
         (a & f.mant_mask()) != 0;
}

bool is_inf(const Format& f, u64 a) {
  return f.exp_field(a) == static_cast<u64>(f.exp_max()) &&
         (a & f.mant_mask()) == 0;
}

bool is_zero_or_denormal(const Format& f, u64 a) {
  return f.exp_field(a) == 0;
}

u64 ftz_input(const Format& f, u64 a) {
  if (f.exp_field(a) == 0) {
    return a & f.sign_mask();
  }
  return a;
}

u64 negate(const Format& f, u64 a) { return a ^ f.sign_mask(); }

u64 abs(const Format& f, u64 a) { return a & ~f.sign_mask(); }

u64 add(const Format& f, u64 a, u64 b, Flags& flags) {
  if (is_nan(f, a) || is_nan(f, b)) {
    return propagate_nan(f, a, b, flags);
  }
  const Unpacked ua = unpack(f, a);
  const Unpacked ub = unpack(f, b);
  if (ua.cls == Class::inf && ub.cls == Class::inf) {
    if (ua.sign != ub.sign) {
      flags.invalid = true;  // inf - inf
      return f.quiet_nan();
    }
    return f.infinity(ua.sign);
  }
  if (ua.cls == Class::inf) {
    return f.infinity(ua.sign);
  }
  if (ub.cls == Class::inf) {
    return f.infinity(ub.sign);
  }
  if (ua.cls == Class::zero && ub.cls == Class::zero) {
    // (+0) + (-0) = +0 under round-to-nearest; like signs keep the sign.
    return pack_zero(f, ua.sign && ub.sign);
  }
  if (ua.cls == Class::zero) {
    return ftz_input(f, b);
  }
  if (ub.cls == Class::zero) {
    return ftz_input(f, a);
  }
  const bool a_bigger =
      ua.exp > ub.exp || (ua.exp == ub.exp && ua.sig >= ub.sig);
  const Unpacked& big = a_bigger ? ua : ub;
  const Unpacked& small = a_bigger ? ub : ua;
  if (ua.sign == ub.sign) {
    return add_magnitudes(f, big, small, ua.sign, flags);
  }
  return sub_magnitudes(f, big, small, big.sign, flags);
}

u64 sub(const Format& f, u64 a, u64 b, Flags& flags) {
  if (is_nan(f, a) || is_nan(f, b)) {
    return propagate_nan(f, a, b, flags);
  }
  return add(f, a, negate(f, b), flags);
}

u64 mul(const Format& f, u64 a, u64 b, Flags& flags) {
  if (is_nan(f, a) || is_nan(f, b)) {
    return propagate_nan(f, a, b, flags);
  }
  const Unpacked ua = unpack(f, a);
  const Unpacked ub = unpack(f, b);
  const bool sign = ua.sign != ub.sign;
  if (ua.cls == Class::inf || ub.cls == Class::inf) {
    if (ua.cls == Class::zero || ub.cls == Class::zero) {
      flags.invalid = true;  // 0 * inf
      return f.quiet_nan();
    }
    return f.infinity(sign);
  }
  if (ua.cls == Class::zero || ub.cls == Class::zero) {
    return pack_zero(f, sign);
  }
  // sig_a * sig_b with sig in [2^m, 2^(m+1)): product has its leading one at
  // bit 2m or 2m+1. Reduce to hidden-at-(m+3) with sticky, then round.
  u64 hi = 0;
  u64 lo = 0;
  umul64wide(ua.sig, ub.sig, hi, lo);
  const int m = f.mant_bits;
  // Desired: keep the top (m+4) bits of the 2m+2 -bit product, i.e. shift
  // right by (2m + 2) - (m + 4) = m - 2 bits (one less when the leading one
  // is at 2m; round_and_pack renormalises either way).
  const int sh = m - 2;
  u64 sig3;
  if (sh < 64) {
    const u64 lost_lo = lo & ((u64{1} << sh) - 1);
    sig3 = (lo >> sh) | (hi << (64 - sh)) | (lost_lo != 0 ? 1 : 0);
    // For binary64 the significant bits extend into `hi`; the shift above
    // already folded them in because 2m+2 = 106 < 64 + sh + m + 4.
  } else {
    sig3 = shift_right_sticky(hi, sh - 64) | (lo != 0 ? 1 : 0);
  }
  // Value identity: P * 2^(e - 2m) = sig3 * 2^sh * 2^(e - 2m)
  //               = sig3 * 2^(e - m - 2), and round_and_pack interprets its
  // arguments as sig3 * 2^(exp - m - 3); hence exp = e + 1. Normalisation of
  // the hidden-bit position (2m vs 2m+1 product) happens inside.
  const i64 e = ua.exp + ub.exp;
  return round_and_pack(f, sign, e + 1, sig3, flags);
}

Ordering compare(const Format& f, u64 a, u64 b, Flags& flags) {
  if (is_nan(f, a) || is_nan(f, b)) {
    if ((is_nan(f, a) && !quiet_bit_set(f, a)) ||
        (is_nan(f, b) && !quiet_bit_set(f, b))) {
      flags.invalid = true;
    }
    return Ordering::unordered;
  }
  const u64 fa = ftz_input(f, a);
  const u64 fb = ftz_input(f, b);
  const bool za = (fa & ~f.sign_mask()) == 0;
  const bool zb = (fb & ~f.sign_mask()) == 0;
  if (za && zb) {
    return Ordering::equal;  // -0 == +0
  }
  const bool sa = (fa & f.sign_mask()) != 0;
  const bool sb = (fb & f.sign_mask()) != 0;
  if (sa != sb) {
    return sa ? Ordering::less : Ordering::greater;
  }
  const u64 ma = fa & ~f.sign_mask();
  const u64 mb = fb & ~f.sign_mask();
  if (ma == mb) {
    return Ordering::equal;
  }
  const bool mag_less = ma < mb;
  return (mag_less != sa) ? Ordering::less : Ordering::greater;
}

u64 from_int32(const Format& f, std::int32_t v, Flags& flags) {
  if (v == 0) {
    return 0;
  }
  const bool sign = v < 0;
  const u64 mag = sign ? (~static_cast<u64>(static_cast<std::uint32_t>(v)) &
                          0xffff'ffffu) + 1
                       : static_cast<u64>(v);
  // round_and_pack interprets its arguments as (mag<<3) * 2^(exp - m - 3) =
  // mag * 2^(exp - m); for the integer value itself, exp = m.
  return round_and_pack(f, sign, f.mant_bits, mag << 3, flags);
}

std::int32_t to_int32(const Format& f, u64 a, Flags& flags) {
  if (is_nan(f, a) || is_inf(f, a)) {
    flags.invalid = true;
    return (a & f.sign_mask()) && !is_nan(f, a)
               ? std::numeric_limits<std::int32_t>::min()
               : std::numeric_limits<std::int32_t>::max();
  }
  const Unpacked u = unpack(f, a);
  if (u.cls == Class::zero) {
    return 0;
  }
  // Truncation toward zero. u.sig * 2^(exp - m).
  const int m = f.mant_bits;
  i64 value;
  if (u.exp < 0) {
    flags.inexact = true;
    return 0;
  }
  if (u.exp >= 32) {
    flags.invalid = true;
    return u.sign ? std::numeric_limits<std::int32_t>::min()
                  : std::numeric_limits<std::int32_t>::max();
  }
  if (u.exp >= m) {
    value = static_cast<i64>(u.sig) << (u.exp - m);
  } else {
    const int sh = m - static_cast<int>(u.exp);
    value = static_cast<i64>(u.sig >> sh);
    if ((u.sig & ((u64{1} << sh) - 1)) != 0) {
      flags.inexact = true;
    }
  }
  if (u.sign) {
    value = -value;
  }
  if (value > std::numeric_limits<std::int32_t>::max() ||
      value < std::numeric_limits<std::int32_t>::min()) {
    flags.invalid = true;
    return u.sign ? std::numeric_limits<std::int32_t>::min()
                  : std::numeric_limits<std::int32_t>::max();
  }
  return static_cast<std::int32_t>(value);
}

u64 widen(u64 a32) {
  const Format& s = kBinary32;
  const Format& d = kBinary64;
  const u64 sign = (a32 & s.sign_mask()) ? d.sign_mask() : 0;
  const u64 e = s.exp_field(a32);
  const u64 m = a32 & s.mant_mask();
  if (e == static_cast<u64>(s.exp_max())) {
    if (m == 0) {
      return sign | (static_cast<u64>(d.exp_max()) << d.mant_bits);
    }
    // Preserve NaN payload in the high mantissa bits; force quiet.
    return sign | (static_cast<u64>(d.exp_max()) << d.mant_bits) |
           (m << (d.mant_bits - s.mant_bits)) |
           (u64{1} << (d.mant_bits - 1));
  }
  if (e == 0) {
    return sign;  // zero or flushed denormal
  }
  const i64 unbiased = static_cast<i64>(e) - s.bias();
  return sign | (static_cast<u64>(unbiased + d.bias()) << d.mant_bits) |
         (m << (d.mant_bits - s.mant_bits));
}

u64 widen(u64 a32, Flags& flags) {
  // Conversion of a signalling NaN is an invalid operation (the narrow
  // direction already raised it; this direction was silently quiet before
  // the batch-arm cross-validation fuzzer caught the asymmetry).
  if (is_nan(kBinary32, a32) && !quiet_bit_set(kBinary32, a32)) {
    flags.invalid = true;
  }
  return widen(a32);
}

u64 narrow(u64 a64, Flags& flags) {
  const Format& s = kBinary64;
  const Format& d = kBinary32;
  if (is_nan(s, a64)) {
    if (!quiet_bit_set(s, a64)) {
      flags.invalid = true;
    }
    return d.quiet_nan();
  }
  const Unpacked u = unpack(s, a64);
  if (u.cls == Class::inf) {
    return d.infinity(u.sign);
  }
  if (u.cls == Class::zero) {
    return pack_zero(d, u.sign);
  }
  // Reduce the 53-bit significand to 24 bits + GRS with sticky, then round
  // in the destination format.
  const int drop = s.mant_bits - d.mant_bits;  // 29
  const u64 lost = u.sig & ((u64{1} << (drop - 3)) - 1);
  const u64 sig3 = (u.sig >> (drop - 3)) | (lost != 0 ? 1 : 0);
  return round_and_pack(d, u.sign, u.exp, sig3, flags);
}

std::string to_string(const Format& f, u64 a) {
  char buf[64];
  double approx;
  if (f.total_bits() == 64) {
    std::memcpy(&approx, &a, sizeof approx);
  } else {
    const u64 wide = widen(a);
    std::memcpy(&approx, &wide, sizeof approx);
  }
  std::snprintf(buf, sizeof buf, "0x%0*llx (~%g)", f.total_bits() / 4,
                static_cast<unsigned long long>(a), approx);
  return buf;
}

}  // namespace detail

T64 T64::from_double(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return T64::from_bits(detail::ftz_input(kBinary64, bits));
}

double T64::to_double() const {
  double v;
  std::memcpy(&v, &bits_, sizeof v);
  return v;
}

T32 T32::from_float(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return T32::from_bits(static_cast<std::uint32_t>(
      detail::ftz_input(kBinary32, bits)));
}

float T32::to_float() const {
  float v;
  std::memcpy(&v, &bits_, sizeof v);
  return v;
}

T64 t64_from_int32(std::int32_t v, Flags& fl) {
  return T64::from_bits(detail::from_int32(kBinary64, v, fl));
}

std::int32_t t64_to_int32(T64 v, Flags& fl) {
  return detail::to_int32(kBinary64, v.bits(), fl);
}

T32 t32_from_int32(std::int32_t v, Flags& fl) {
  return T32::from_bits(
      static_cast<std::uint32_t>(detail::from_int32(kBinary32, v, fl)));
}

std::int32_t t32_to_int32(T32 v, Flags& fl) {
  return detail::to_int32(kBinary32, v.bits(), fl);
}

}  // namespace fpst::fp
