#include "mocc/mocc.hpp"

#include "cp/isa.hpp"

#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

namespace fpst::mocc {

namespace {

// ================================ lexer ====================================

enum class Tok : std::uint8_t {
  ident, number, punct, kw_proc, kw_var, kw_chan, kw_global, kw_while,
  kw_if, kw_else, kw_par, kw_send, kw_recv, kw_alt, kw_poke, kw_peek,
  kw_return, kw_halt, kw_timer, kw_wait, kw_vform, kw_vwait,
  kw_array, kw_linkout, kw_linkin, eof,
};

struct Token {
  Tok kind = Tok::eof;
  std::string text;
  std::int64_t value = 0;
  std::size_t line = 0;
};

const std::map<std::string, Tok>& keywords() {
  static const std::map<std::string, Tok> kw{
      {"proc", Tok::kw_proc},     {"var", Tok::kw_var},
      {"chan", Tok::kw_chan},     {"global", Tok::kw_global},
      {"while", Tok::kw_while},   {"if", Tok::kw_if},
      {"else", Tok::kw_else},     {"par", Tok::kw_par},
      {"send", Tok::kw_send},     {"recv", Tok::kw_recv},
      {"alt", Tok::kw_alt},       {"poke", Tok::kw_poke},
      {"peek", Tok::kw_peek},     {"return", Tok::kw_return},
      {"halt", Tok::kw_halt},     {"timer", Tok::kw_timer},
      {"wait", Tok::kw_wait},     {"vform", Tok::kw_vform},
      {"vwait", Tok::kw_vwait},   {"array", Tok::kw_array},
      {"linkout", Tok::kw_linkout}, {"linkin", Tok::kw_linkin},
  };
  return kw;
}

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t b = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                       src[i] == '_')) {
        ++i;
      }
      const std::string word = src.substr(b, i - b);
      const auto it = keywords().find(word);
      out.push_back(Token{it == keywords().end() ? Tok::ident : it->second,
                          word, 0, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t pos = 0;
      const std::int64_t v = std::stoll(src.substr(i), &pos, 0);
      out.push_back(Token{Tok::number, src.substr(i, pos), v, line});
      i += pos;
      continue;
    }
    // Multi-char operators first.
    static const char* two[] = {"==", "!=", "<=", ">="};
    bool matched = false;
    for (const char* op : two) {
      if (src.compare(i, 2, op) == 0) {
        out.push_back(Token{Tok::punct, op, 0, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) {
      continue;
    }
    if (std::string("(){};,=+-*/%<>[]").find(c) != std::string::npos) {
      out.push_back(Token{Tok::punct, std::string(1, c), 0, line});
      ++i;
      continue;
    }
    throw CompileError(line, std::string("unexpected character '") + c + "'");
  }
  out.push_back(Token{Tok::eof, "", 0, line});
  return out;
}

// ================================= AST =====================================

struct Expr {
  enum class Kind : std::uint8_t { num, var, neg, bin, call, peek, timer,
                                   index };
  Kind kind = Kind::num;
  std::int64_t value = 0;
  std::string name;  // var / call / binary operator text
  std::vector<Expr> kids;
  std::size_t line = 0;
};

struct Stmt;
struct AltCase {
  std::string chan;
  std::string var;
  std::vector<Stmt> body;
};

struct Stmt {
  enum class Kind : std::uint8_t {
    decl_var, assign, call, while_s, if_s, par_s, send_s, recv_s, alt_s,
    poke_s, wait_s, vform_s, vwait_s, return_s, halt_s, block,
    index_assign, linkout_s, linkin_s,
  };
  Kind kind = Kind::halt_s;
  std::string name;          // variable / channel / callee
  std::vector<Expr> exprs;   // operands
  std::vector<Stmt> body;    // block / then / loop body
  std::vector<Stmt> orelse;  // else branch
  std::vector<AltCase> cases;
  std::vector<std::string> par_calls;
  std::size_t line = 0;
};

struct ProcDef {
  std::string name;
  std::vector<std::string> params;
  std::vector<Stmt> body;
  std::size_t line = 0;
};

struct ArrayDef {
  std::string name;
  std::size_t size = 0;
};

struct Unit {
  std::vector<ProcDef> procs;
  std::vector<std::string> chans;
  std::vector<std::string> globals;
  std::vector<ArrayDef> arrays;
};

// ================================ parser ===================================

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_{std::move(toks)} {}

  Unit parse() {
    Unit u;
    while (peek().kind != Tok::eof) {
      const Token& t = peek();
      if (t.kind == Tok::kw_proc) {
        u.procs.push_back(parse_proc());
      } else if (t.kind == Tok::kw_chan) {
        next();
        u.chans.push_back(expect_ident());
        expect(";");
      } else if (t.kind == Tok::kw_global) {
        next();
        u.globals.push_back(expect_ident());
        expect(";");
      } else if (t.kind == Tok::kw_array) {
        next();
        ArrayDef a;
        a.name = expect_ident();
        expect("[");
        if (peek().kind != Tok::number || peek().value <= 0) {
          throw CompileError(peek().line, "array size must be positive");
        }
        a.size = static_cast<std::size_t>(next().value);
        expect("]");
        expect(";");
        u.arrays.push_back(std::move(a));
      } else {
        throw CompileError(t.line, "expected proc/chan/global declaration");
      }
    }
    return u;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    return toks_[std::min(pos_ + ahead, toks_.size() - 1)];
  }
  const Token& next() { return toks_[pos_++]; }
  bool accept(const std::string& p) {
    if (peek().kind == Tok::punct && peek().text == p) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(const std::string& p) {
    if (!accept(p)) {
      throw CompileError(peek().line,
                         "expected '" + p + "', found '" + peek().text + "'");
    }
  }
  std::string expect_ident() {
    if (peek().kind != Tok::ident) {
      throw CompileError(peek().line, "expected identifier");
    }
    return next().text;
  }

  ProcDef parse_proc() {
    ProcDef p;
    p.line = peek().line;
    next();  // proc
    p.name = expect_ident();
    expect("(");
    if (!accept(")")) {
      do {
        p.params.push_back(expect_ident());
      } while (accept(","));
      expect(")");
    }
    if (p.params.size() > 3) {
      throw CompileError(p.line, "at most 3 parameters");
    }
    p.body = parse_block();
    return p;
  }

  std::vector<Stmt> parse_block() {
    expect("{");
    std::vector<Stmt> body;
    while (!accept("}")) {
      body.push_back(parse_stmt());
    }
    return body;
  }

  Stmt parse_stmt() {
    Stmt s;
    s.line = peek().line;
    const Token& t = peek();
    switch (t.kind) {
      case Tok::kw_var: {
        next();
        s.kind = Stmt::Kind::decl_var;
        s.name = expect_ident();
        if (accept("=")) {
          s.exprs.push_back(parse_expr());
        }
        expect(";");
        return s;
      }
      case Tok::kw_while: {
        next();
        s.kind = Stmt::Kind::while_s;
        expect("(");
        s.exprs.push_back(parse_expr());
        expect(")");
        s.body = parse_block();
        return s;
      }
      case Tok::kw_if: {
        next();
        s.kind = Stmt::Kind::if_s;
        expect("(");
        s.exprs.push_back(parse_expr());
        expect(")");
        s.body = parse_block();
        if (peek().kind == Tok::kw_else) {
          next();
          s.orelse = parse_block();
        }
        return s;
      }
      case Tok::kw_par: {
        next();
        s.kind = Stmt::Kind::par_s;
        expect("{");
        while (!accept("}")) {
          const std::string callee = expect_ident();
          expect("(");
          expect(")");
          expect(";");
          s.par_calls.push_back(callee);
        }
        if (s.par_calls.empty()) {
          throw CompileError(s.line, "empty par");
        }
        return s;
      }
      case Tok::kw_send: {
        next();
        s.kind = Stmt::Kind::send_s;
        expect("(");
        s.name = expect_ident();
        expect(",");
        s.exprs.push_back(parse_expr());
        expect(")");
        expect(";");
        return s;
      }
      case Tok::kw_recv: {
        next();
        s.kind = Stmt::Kind::recv_s;
        expect("(");
        s.name = expect_ident();
        expect(",");
        s.exprs.push_back(Expr{Expr::Kind::var, 0, expect_ident(), {},
                               s.line});
        expect(")");
        expect(";");
        return s;
      }
      case Tok::kw_alt: {
        next();
        s.kind = Stmt::Kind::alt_s;
        expect("{");
        while (!accept("}")) {
          if (peek().kind != Tok::kw_recv) {
            throw CompileError(peek().line, "alt cases must be recv guards");
          }
          next();
          AltCase c;
          expect("(");
          c.chan = expect_ident();
          expect(",");
          c.var = expect_ident();
          expect(")");
          c.body = parse_block();
          s.cases.push_back(std::move(c));
        }
        if (s.cases.empty()) {
          throw CompileError(s.line, "empty alt");
        }
        return s;
      }
      case Tok::kw_poke: {
        next();
        s.kind = Stmt::Kind::poke_s;
        expect("(");
        s.exprs.push_back(parse_expr());
        expect(",");
        s.exprs.push_back(parse_expr());
        expect(")");
        expect(";");
        return s;
      }
      case Tok::kw_wait: {
        next();
        s.kind = Stmt::Kind::wait_s;
        expect("(");
        s.exprs.push_back(parse_expr());
        expect(")");
        expect(";");
        return s;
      }
      case Tok::kw_linkout: {
        next();
        s.kind = Stmt::Kind::linkout_s;
        expect("(");
        s.exprs.push_back(parse_expr());  // port (constant)
        expect(",");
        s.exprs.push_back(parse_expr());  // sublink (constant)
        expect(",");
        s.exprs.push_back(parse_expr());  // value
        expect(")");
        expect(";");
        return s;
      }
      case Tok::kw_linkin: {
        next();
        s.kind = Stmt::Kind::linkin_s;
        expect("(");
        s.exprs.push_back(parse_expr());
        expect(",");
        s.exprs.push_back(parse_expr());
        expect(",");
        s.exprs.push_back(Expr{Expr::Kind::var, 0, expect_ident(), {},
                               s.line});
        expect(")");
        expect(";");
        return s;
      }
      case Tok::kw_vform: {
        next();
        s.kind = Stmt::Kind::vform_s;
        expect("(");
        s.exprs.push_back(parse_expr());
        expect(")");
        expect(";");
        return s;
      }
      case Tok::kw_vwait: {
        next();
        s.kind = Stmt::Kind::vwait_s;
        expect(";");
        return s;
      }
      case Tok::kw_return: {
        next();
        s.kind = Stmt::Kind::return_s;
        if (!(peek().kind == Tok::punct && peek().text == ";")) {
          s.exprs.push_back(parse_expr());
        }
        expect(";");
        return s;
      }
      case Tok::kw_halt: {
        next();
        s.kind = Stmt::Kind::halt_s;
        expect(";");
        return s;
      }
      case Tok::ident: {
        if (peek(1).kind == Tok::punct && peek(1).text == "[") {
          s.kind = Stmt::Kind::index_assign;
          s.name = next().text;
          expect("[");
          s.exprs.push_back(parse_expr());  // index
          expect("]");
          expect("=");
          s.exprs.push_back(parse_expr());  // value
          expect(";");
          return s;
        }
        if (peek(1).kind == Tok::punct && peek(1).text == "=") {
          s.kind = Stmt::Kind::assign;
          s.name = next().text;
          next();  // '='
          s.exprs.push_back(parse_expr());
          expect(";");
          return s;
        }
        if (peek(1).kind == Tok::punct && peek(1).text == "(") {
          s.kind = Stmt::Kind::call;
          Expr e = parse_primary();  // parses the whole call
          s.exprs.push_back(std::move(e));
          expect(";");
          return s;
        }
        throw CompileError(t.line, "expected '=' or '(' after identifier");
      }
      default:
        if (t.kind == Tok::punct && t.text == "{") {
          s.kind = Stmt::Kind::block;
          s.body = parse_block();
          return s;
        }
        throw CompileError(t.line, "unexpected token '" + t.text + "'");
    }
  }

  // expr := cmp; cmp := addsub (op addsub)?; addsub := term ((+|-) term)*;
  // term := unary ((*|/|%) unary)*; unary := -unary | primary
  Expr parse_expr() { return parse_cmp(); }

  Expr make_bin(const std::string& op, Expr lhs, Expr rhs, std::size_t line) {
    Expr e;
    e.kind = Expr::Kind::bin;
    e.name = op;
    e.kids.push_back(std::move(lhs));
    e.kids.push_back(std::move(rhs));
    e.line = line;
    return e;
  }

  Expr parse_cmp() {
    Expr lhs = parse_addsub();
    static const char* cmps[] = {"==", "!=", "<=", ">=", "<", ">"};
    for (const char* op : cmps) {
      if (peek().kind == Tok::punct && peek().text == op) {
        const std::size_t line = next().line;
        return make_bin(op, std::move(lhs), parse_addsub(), line);
      }
    }
    return lhs;
  }

  Expr parse_addsub() {
    Expr lhs = parse_term();
    for (;;) {
      if (peek().kind == Tok::punct &&
          (peek().text == "+" || peek().text == "-")) {
        const std::string op = peek().text;
        const std::size_t line = next().line;
        lhs = make_bin(op, std::move(lhs), parse_term(), line);
      } else {
        return lhs;
      }
    }
  }

  Expr parse_term() {
    Expr lhs = parse_unary();
    for (;;) {
      if (peek().kind == Tok::punct &&
          (peek().text == "*" || peek().text == "/" || peek().text == "%")) {
        const std::string op = peek().text;
        const std::size_t line = next().line;
        lhs = make_bin(op, std::move(lhs), parse_unary(), line);
      } else {
        return lhs;
      }
    }
  }

  Expr parse_unary() {
    if (peek().kind == Tok::punct && peek().text == "-") {
      Expr e;
      e.line = next().line;
      e.kind = Expr::Kind::neg;
      e.kids.push_back(parse_unary());
      return e;
    }
    return parse_primary();
  }

  Expr parse_primary() {
    Expr e;
    const Token& t = peek();
    e.line = t.line;
    if (t.kind == Tok::number) {
      e.kind = Expr::Kind::num;
      e.value = next().value;
      return e;
    }
    if (t.kind == Tok::kw_peek) {
      next();
      expect("(");
      e.kind = Expr::Kind::peek;
      e.kids.push_back(parse_expr());
      expect(")");
      return e;
    }
    if (t.kind == Tok::kw_timer) {
      next();
      expect("(");
      expect(")");
      e.kind = Expr::Kind::timer;
      return e;
    }
    if (t.kind == Tok::ident) {
      e.name = next().text;
      if (accept("(")) {
        e.kind = Expr::Kind::call;
        if (!accept(")")) {
          do {
            e.kids.push_back(parse_expr());
          } while (accept(","));
          expect(")");
        }
        if (e.kids.size() > 3) {
          throw CompileError(e.line, "at most 3 call arguments");
        }
        return e;
      }
      if (accept("[")) {
        e.kind = Expr::Kind::index;
        e.kids.push_back(parse_expr());
        expect("]");
        return e;
      }
      e.kind = Expr::Kind::var;
      return e;
    }
    if (accept("(")) {
      Expr inner = parse_expr();
      expect(")");
      return inner;
    }
    throw CompileError(t.line, "expected expression, found '" + t.text + "'");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

// =============================== codegen ===================================

constexpr int kTempSlots = 10;

class Codegen {
 public:
  Codegen(const Unit& unit, const Options& opt) : unit_{unit}, opt_{opt} {}

  std::string emit() {
    out_ << ".org " << opt_.org << "\n";
    for (const std::string& g : unit_.globals) {
      globals_.insert(g);
    }
    for (const std::string& c : unit_.chans) {
      chans_.insert(c);
    }
    for (const ArrayDef& a : unit_.arrays) {
      arrays_[a.name] = a.size;
    }
    for (const ProcDef& p : unit_.procs) {
      proc_names_.insert(p.name);
    }
    for (const ProcDef& p : unit_.procs) {
      emit_proc(p);
    }
    // PAR wrappers, then data: sync blocks, channels, globals.
    out_ << aux_.str();
    for (const std::string& c : unit_.chans) {
      out_ << "C_" << c << ":\n   .word 0x80000000\n";  // kNotProcess
    }
    for (const std::string& g : unit_.globals) {
      out_ << "G_" << g << ":\n   .word 0\n";
    }
    for (const ArrayDef& a : unit_.arrays) {
      // Align FIRST so the label names the word-aligned base.
      out_ << "   .align\nA_" << a.name << ":\n   .space "
           << 4 * a.size << "\n";
    }
    return out_.str();
  }

 private:
  struct Frame {
    std::map<std::string, int> slots;  // params + locals
    int nslots = 0;                    // params + locals (excl. temps)
    int tdepth = 0;
    std::string ret_label;
    bool is_main = false;
  };

  static void count_vars(const std::vector<Stmt>& body, int& n) {
    for (const Stmt& s : body) {
      if (s.kind == Stmt::Kind::decl_var) {
        ++n;
      }
      count_vars(s.body, n);
      count_vars(s.orelse, n);
      for (const AltCase& c : s.cases) {
        count_vars(c.body, n);
      }
    }
  }

  std::string label(const std::string& stem) {
    return "L" + std::to_string(label_counter_++) + "_" + stem;
  }

  void ins(const std::string& text) { out_ << "   " << text << "\n"; }
  void def(const std::string& l) { out_ << l << ":\n"; }

  int frame_size() const { return frame_.nslots + kTempSlots; }

  /// Hard (link) channel word address from constant port/sublink operands.
  std::uint32_t hard_addr(const Stmt& s, int dir) const {
    const Expr& port = s.exprs[0];
    const Expr& sub = s.exprs[1];
    if (port.kind != Expr::Kind::num || sub.kind != Expr::Kind::num ||
        port.value < 0 || port.value > 3 || sub.value < 0 || sub.value > 3) {
      throw CompileError(s.line,
                         "linkout/linkin need constant port and sublink 0-3");
    }
    return cp::kHardChanBase |
           (static_cast<std::uint32_t>(port.value) << 3) |
           (static_cast<std::uint32_t>(sub.value) << 1) |
           static_cast<std::uint32_t>(dir);
  }

  int alloc_temp(std::size_t line) {
    if (frame_.tdepth >= kTempSlots) {
      throw CompileError(line, "expression too deep (temp slots exhausted)");
    }
    return frame_.nslots + frame_.tdepth++;
  }
  void free_temp() { --frame_.tdepth; }

  void emit_proc(const ProcDef& p) {
    frame_ = Frame{};
    frame_.is_main = p.name == "main";
    frame_.ret_label = label(p.name + "_ret");
    int nvars = 0;
    count_vars(p.body, nvars);
    frame_.nslots = static_cast<int>(p.params.size()) + nvars;
    int slot = 0;
    for (const std::string& prm : p.params) {
      if (!frame_.slots.emplace(prm, slot++).second) {
        throw CompileError(p.line, "duplicate parameter " + prm);
      }
    }
    next_var_slot_ = slot;

    def(p.name);
    ins("ajw -" + std::to_string(frame_size()));
    // Arguments arrive A=last .. C=first; store back to front.
    for (std::size_t i = p.params.size(); i-- > 0;) {
      ins("stl " + std::to_string(i));
    }
    emit_body(p.body);
    if (frame_.is_main) {
      ins("halt");
    } else {
      ins("ldc 0");
    }
    def(frame_.ret_label);
    ins("ajw " + std::to_string(frame_size()));
    ins("ret");
  }

  void emit_body(const std::vector<Stmt>& body) {
    for (const Stmt& s : body) {
      emit_stmt(s);
    }
  }

  int var_slot(const std::string& name, std::size_t line) const {
    const auto it = frame_.slots.find(name);
    if (it == frame_.slots.end()) {
      return -1;
    }
    (void)line;
    return it->second;
  }

  void emit_store(const std::string& name, std::size_t line) {
    // Value is in A.
    const int slot = var_slot(name, line);
    if (slot >= 0) {
      ins("stl " + std::to_string(slot));
      return;
    }
    if (globals_.count(name)) {
      ins("ldc G_" + name);  // A=addr, B=value
      ins("stnl 0");
      return;
    }
    throw CompileError(line, "unknown variable " + name);
  }

  void chan_check(const std::string& name, std::size_t line) const {
    if (!chans_.count(name)) {
      throw CompileError(line, "unknown channel " + name);
    }
  }

  void emit_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::decl_var: {
        if (frame_.slots.count(s.name) || globals_.count(s.name)) {
          throw CompileError(s.line, "duplicate variable " + s.name);
        }
        frame_.slots[s.name] = next_var_slot_++;
        if (!s.exprs.empty()) {
          emit_expr(s.exprs[0]);
          ins("stl " + std::to_string(frame_.slots[s.name]));
        }
        return;
      }
      case Stmt::Kind::assign:
        emit_expr(s.exprs[0]);
        emit_store(s.name, s.line);
        return;
      case Stmt::Kind::call:
        emit_expr(s.exprs[0]);  // result left in A, harmlessly dropped
        return;
      case Stmt::Kind::while_s: {
        const std::string lcond = label("while");
        const std::string lend = label("wend");
        def(lcond);
        emit_expr(s.exprs[0]);
        ins("cj " + lend);
        emit_body(s.body);
        ins("j " + lcond);
        def(lend);
        return;
      }
      case Stmt::Kind::if_s: {
        const std::string lelse = label("else");
        const std::string lend = label("fi");
        emit_expr(s.exprs[0]);
        ins("cj " + lelse);
        emit_body(s.body);
        ins("j " + lend);
        def(lelse);
        emit_body(s.orelse);
        def(lend);
        return;
      }
      case Stmt::Kind::send_s: {
        chan_check(s.name, s.line);
        emit_expr(s.exprs[0]);
        const int t = alloc_temp(s.line);
        ins("stl " + std::to_string(t));
        ins("ldlp " + std::to_string(t));
        ins("ldc C_" + s.name);
        ins("ldc 4");
        ins("out");
        free_temp();
        return;
      }
      case Stmt::Kind::recv_s: {
        chan_check(s.name, s.line);
        const std::string& var = s.exprs[0].name;
        const int slot = var_slot(var, s.line);
        if (slot >= 0) {
          ins("ldlp " + std::to_string(slot));
        } else if (globals_.count(var)) {
          ins("ldc G_" + var);
        } else {
          throw CompileError(s.line, "unknown variable " + var);
        }
        ins("ldc C_" + s.name);
        ins("ldc 4");
        ins("in");
        return;
      }
      case Stmt::Kind::alt_s: {
        const std::string ltop = label("alt");
        const std::string lend = label("altend");
        def(ltop);
        for (std::size_t i = 0; i < s.cases.size(); ++i) {
          const AltCase& c = s.cases[i];
          chan_check(c.chan, s.line);
          const std::string lnext = label("altnext");
          // Guard: a non-NotProcess channel word means a sender waits.
          ins("ldc C_" + c.chan);
          ins("ldnl 0");
          ins("mint");
          ins("xor");
          ins("cj " + lnext);  // empty -> try the next guard
          const int slot = var_slot(c.var, s.line);
          if (slot >= 0) {
            ins("ldlp " + std::to_string(slot));
          } else if (globals_.count(c.var)) {
            ins("ldc G_" + c.var);
          } else {
            throw CompileError(s.line, "unknown variable " + c.var);
          }
          ins("ldc C_" + c.chan);
          ins("ldc 4");
          ins("in");
          emit_body(c.body);
          ins("j " + lend);
          def(lnext);
        }
        // Nothing ready: one-tick timer backoff, then poll again.
        ins("ldtimer");
        ins("adc 1");
        ins("tin");
        ins("j " + ltop);
        def(lend);
        return;
      }
      case Stmt::Kind::par_s: {
        const int site = par_counter_++;
        const std::string sync = "PS" + std::to_string(site);
        const std::string resume = label("parjoin");
        ins("ldc " + std::to_string(s.par_calls.size() + 1));
        ins("ldc " + sync);
        ins("stnl 0");
        ins("ldlp 0");  // our own Wptr
        ins("adc 1");   // low priority descriptor
        ins("ldc " + sync);
        ins("stnl 1");
        ins("ldc " + resume);
        ins("ldc " + sync);
        ins("stnl 2");
        for (std::size_t i = 0; i < s.par_calls.size(); ++i) {
          if (!proc_names_.count(s.par_calls[i])) {
            throw CompileError(s.line, "unknown proc " + s.par_calls[i]);
          }
          const std::string wrap =
              "PW" + std::to_string(site) + "_" + std::to_string(i);
          const std::uint32_t ws =
              opt_.par_ws_base -
              static_cast<std::uint32_t>(par_branch_counter_++ + 1) *
                  opt_.par_ws_bytes;
          aux_ << wrap << ":\n   call " << s.par_calls[i] << "\n   ldc "
               << sync << "\n   endp\n";
          ins("ldc " + wrap);
          ins("ldc " + std::to_string(ws | 1u));
          ins("startp");
        }
        ins("ldc " + sync);
        ins("endp");
        def(resume);
        aux_ << sync << ":\n   .word 0\n   .word 0\n   .word 0\n";
        return;
      }
      case Stmt::Kind::poke_s: {
        emit_expr(s.exprs[1]);  // value
        const int t = alloc_temp(s.line);
        ins("stl " + std::to_string(t));
        emit_expr(s.exprs[0]);  // address in A
        ins("ldl " + std::to_string(t));
        ins("rev");  // A=addr, B=value
        ins("stnl 0");
        free_temp();
        return;
      }
      case Stmt::Kind::wait_s: {
        emit_expr(s.exprs[0]);
        const int t = alloc_temp(s.line);
        ins("stl " + std::to_string(t));
        ins("ldtimer");
        ins("ldl " + std::to_string(t));
        ins("add");
        ins("tin");
        free_temp();
        return;
      }
      case Stmt::Kind::index_assign: {
        if (!arrays_.count(s.name)) {
          throw CompileError(s.line, "unknown array " + s.name);
        }
        emit_expr(s.exprs[1]);  // value
        const int t = alloc_temp(s.line);
        ins("stl " + std::to_string(t));
        emit_expr(s.exprs[0]);  // index
        ins("ldc A_" + s.name);
        ins("wsub");            // A = base + 4*index
        ins("ldl " + std::to_string(t));
        ins("rev");             // A = addr, B = value
        ins("stnl 0");
        free_temp();
        return;
      }
      case Stmt::Kind::linkout_s: {
        const std::uint32_t addr = hard_addr(s, 0);
        emit_expr(s.exprs[2]);
        const int t = alloc_temp(s.line);
        ins("stl " + std::to_string(t));
        ins("ldlp " + std::to_string(t));
        ins("ldc " + std::to_string(addr));
        ins("ldc 4");
        ins("out");
        free_temp();
        return;
      }
      case Stmt::Kind::linkin_s: {
        const std::uint32_t addr = hard_addr(s, 1);
        const std::string& var = s.exprs[2].name;
        const int slot = var_slot(var, s.line);
        if (slot >= 0) {
          ins("ldlp " + std::to_string(slot));
        } else if (globals_.count(var)) {
          ins("ldc G_" + var);
        } else {
          throw CompileError(s.line, "unknown variable " + var);
        }
        ins("ldc " + std::to_string(addr));
        ins("ldc 4");
        ins("in");
        return;
      }
      case Stmt::Kind::vform_s:
        emit_expr(s.exprs[0]);  // descriptor address in A
        ins("vform");
        return;
      case Stmt::Kind::vwait_s:
        ins("vwait");
        return;
      case Stmt::Kind::return_s:
        if (!s.exprs.empty()) {
          emit_expr(s.exprs[0]);
        } else {
          ins("ldc 0");
        }
        ins("j " + frame_.ret_label);
        return;
      case Stmt::Kind::halt_s:
        ins("halt");
        return;
      case Stmt::Kind::block:
        emit_body(s.body);
        return;
    }
  }

  void emit_expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::num:
        ins("ldc " + std::to_string(e.value));
        return;
      case Expr::Kind::var: {
        const int slot = var_slot(e.name, e.line);
        if (slot >= 0) {
          ins("ldl " + std::to_string(slot));
          return;
        }
        if (globals_.count(e.name)) {
          ins("ldc G_" + e.name);
          ins("ldnl 0");
          return;
        }
        throw CompileError(e.line, "unknown variable " + e.name);
      }
      case Expr::Kind::neg:
        emit_expr(e.kids[0]);
        ins("not");
        ins("adc 1");
        return;
      case Expr::Kind::peek:
        emit_expr(e.kids[0]);
        ins("ldnl 0");
        return;
      case Expr::Kind::timer:
        ins("ldtimer");
        return;
      case Expr::Kind::index: {
        if (!arrays_.count(e.name)) {
          throw CompileError(e.line, "unknown array " + e.name);
        }
        emit_expr(e.kids[0]);
        ins("ldc A_" + e.name);
        ins("wsub");
        ins("ldnl 0");
        return;
      }
      case Expr::Kind::call: {
        if (!proc_names_.count(e.name)) {
          throw CompileError(e.line, "unknown proc " + e.name);
        }
        std::vector<int> temps;
        for (const Expr& arg : e.kids) {
          emit_expr(arg);
          temps.push_back(alloc_temp(e.line));
          ins("stl " + std::to_string(temps.back()));
        }
        for (int t : temps) {
          ins("ldl " + std::to_string(t));
        }
        ins("call " + e.name);
        for (std::size_t i = 0; i < temps.size(); ++i) {
          free_temp();
        }
        return;
      }
      case Expr::Kind::bin: {
        emit_expr(e.kids[0]);
        const int t = alloc_temp(e.line);
        ins("stl " + std::to_string(t));
        emit_expr(e.kids[1]);
        ins("ldl " + std::to_string(t));  // A=lhs, B=rhs
        free_temp();
        const std::string& op = e.name;
        if (op == "+") {
          ins("add");
        } else if (op == "*") {
          ins("mul");
        } else if (op == "-") {
          ins("rev");
          ins("sub");
        } else if (op == "/") {
          ins("rev");
          ins("div");
        } else if (op == "%") {
          ins("rev");
          ins("rem");
        } else if (op == ">") {
          ins("rev");  // A=rhs, B=lhs: gt = lhs > rhs
          ins("gt");
        } else if (op == "<") {
          ins("gt");   // B > A = rhs > lhs
        } else if (op == ">=") {
          ins("gt");   // lhs < rhs ...
          ins("eqc 0");  // !(lhs < rhs)
        } else if (op == "<=") {
          ins("rev");
          ins("gt");     // lhs > rhs
          ins("eqc 0");  // !(lhs > rhs)
        } else if (op == "==") {
          ins("xor");
          ins("eqc 0");
        } else if (op == "!=") {
          ins("xor");
          ins("eqc 0");
          ins("eqc 0");
        } else {
          throw CompileError(e.line, "bad operator " + op);
        }
        return;
      }
    }
  }

  const Unit& unit_;
  Options opt_;
  std::ostringstream out_;
  std::ostringstream aux_;
  std::set<std::string> globals_;
  std::map<std::string, std::size_t> arrays_;
  std::set<std::string> chans_;
  std::set<std::string> proc_names_;
  Frame frame_{};
  int next_var_slot_ = 0;
  int label_counter_ = 0;
  int par_counter_ = 0;
  int par_branch_counter_ = 0;
};

}  // namespace

std::string compile_to_asm(const std::string& source, const Options& opt) {
  Parser parser{lex(source)};
  const Unit unit = parser.parse();
  bool has_main = false;
  for (const ProcDef& p : unit.procs) {
    has_main |= p.name == "main";
  }
  if (!has_main) {
    throw CompileError(0, "no proc main()");
  }
  Codegen gen{unit, opt};
  return gen.emit();
}

std::string compile_to_asm(const std::string& source) {
  return compile_to_asm(source, Options{});
}

cp::Program compile(const std::string& source, const Options& opt) {
  return cp::assemble(compile_to_asm(source, opt));
}

cp::Program compile(const std::string& source) {
  return compile(source, Options{});
}

}  // namespace fpst::mocc
