// MOCC — a mini-Occam compiler for the T Series control processor.
//
// The paper (§II "Control") stresses that every feature of the node
// microprocessor "is directly accessed through a high-level language called
// Occam", whose essence is building one process out of many by "specifying
// sequential, alternative or parallel execution". MOCC is a small language
// with exactly that shape — sequential blocks, PAR, ALT, CSP channels — with a
// C-flavoured surface syntax, compiled to TISA assembly (cp/assembler.hpp)
// and run on the simulated control processor.
//
//   chan c;
//   global result;
//
//   proc worker() {
//     var x;
//     recv(c, x);
//     send(c, x * 2);
//   }
//
//   proc main() {
//     par { worker(); worker(); }     // fork-join over startp/endp
//     send(c, 21);
//     var y;
//     recv(c, y);
//     poke(0x2000, y);
//     halt;
//   }
//
// Language summary
//   declarations  proc NAME(p1, p2, p3) { ... }   (max 3 value parameters)
//                 chan NAME;        global channel word (init NotProcess)
//                 global NAME;      global variable word (init 0)
//   statements    var NAME (= expr)? ;            (proc-local word)
//                 NAME = expr ;                   (local or global)
//                 NAME(args) ;                    (call, result dropped)
//                 while (expr) { ... }
//                 if (expr) { ... } (else { ... })?
//                 par { call(); call(); ... }     (zero-arg calls only)
//                 send(CHAN, expr) ;  /  recv(CHAN, NAME) ;
//                 alt { recv(CHAN, NAME) { ... }  ... }  (first ready wins)
//                 poke(expr, expr) ;              (mem[addr] = value)
//                 return expr? ;   halt ;   { ... }
//   expressions   + - * / %, comparisons == != < > <= >=, unary -,
//                 integer literals (decimal/hex), variables,
//                 NAME(args) calls, peek(expr), timer()
//
// Notes: PAR branch workspaces and join blocks are statically allocated per
// site, so a given `par` is not re-entrant (matching static Occam
// configuration); ALT is compiled to a polling loop over the guarded
// channel words with a one-tick timer backoff, since the guarded channels
// of an ALT are only ever read by the alting process.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "cp/assembler.hpp"

namespace fpst::mocc {

class CompileError : public std::runtime_error {
 public:
  CompileError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_{line} {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

struct Options {
  std::uint32_t org = 0x1000;        ///< code load address
  std::uint32_t par_ws_base = 0xE000;  ///< PAR branch workspace pool (grows down)
  std::uint32_t par_ws_bytes = 0x400;  ///< workspace per PAR branch
};

/// Compile MOCC source to TISA assembly text (inspectable, assembles with
/// cp::assemble).
std::string compile_to_asm(const std::string& source, const Options& opt);
std::string compile_to_asm(const std::string& source);

/// Compile MOCC source to a loadable program. Entry point is the symbol
/// "main".
cp::Program compile(const std::string& source, const Options& opt);
cp::Program compile(const std::string& source);

}  // namespace fpst::mocc
