#include "baseline/sharedbus.hpp"

#include <memory>
#include <vector>

#include "sim/proc.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "vpu/vpu.hpp"

namespace fpst::baseline {

namespace {
using kernels::KernelResult;
using sim::Delay;
using sim::Proc;
using sim::SimTime;

/// Time on the bus to burst `words` 64-bit words, including arbitration
/// and the depth-dependent latency of the processor-memory interconnect.
SimTime burst_time(const BusParams& bus, int log2_procs, std::size_t words) {
  const double bytes = static_cast<double>(words) * 8.0;
  const double us = bytes / bus.bandwidth_mb_s;
  return bus.arbitration + log2_procs * bus.latency_per_level +
         SimTime::picoseconds(static_cast<std::int64_t>(us * 1e6));
}

/// One shared-memory vector processor running a streaming kernel: for each
/// burst it must win the bus for its operand traffic, then its pipes run at
/// the node rate (one result per 125 ns, two flops for saxpy).
Proc processor(sim::Semaphore* bus_mutex, const BusParams* bus,
               int log2_procs, std::size_t elems, std::size_t words_per_elem,
               std::uint64_t flops_per_elem, std::uint64_t* flops_done) {
  const SimTime cycle = vpu::VpuParams::cycle();
  std::size_t left = elems;
  while (left > 0) {
    const std::size_t chunk = std::min(left, bus->burst_words);
    co_await bus_mutex->acquire();
    co_await Delay{burst_time(*bus, log2_procs, chunk * words_per_elem)};
    bus_mutex->release();
    // Compute phase on private pipes (overlap with others' bus use).
    co_await Delay{static_cast<std::int64_t>(chunk) * cycle};
    *flops_done += chunk * flops_per_elem;
    left -= chunk;
  }
}

KernelResult run_shared(int log2_procs, std::size_t n,
                        std::size_t words_per_elem,
                        std::uint64_t flops_per_elem, BusParams bus) {
  sim::Simulator sim;
  sim::Semaphore bus_mutex{sim, 1};
  const std::size_t procs = std::size_t{1} << log2_procs;
  const std::size_t per = (n + procs - 1) / procs;
  std::vector<std::uint64_t> flops(procs, 0);
  for (std::size_t p = 0; p < procs; ++p) {
    const std::size_t begin = std::min(n, p * per);
    const std::size_t count = std::min(per, n - begin);
    if (count > 0) {
      sim.spawn(processor(&bus_mutex, &bus, log2_procs, count,
                          words_per_elem, flops_per_elem, &flops[p]));
    }
  }
  sim.run();
  KernelResult r;
  r.elapsed = sim.now();
  for (std::uint64_t f : flops) {
    r.flops += f;
  }
  return r;
}

}  // namespace

KernelResult run_shared_saxpy(int log2_procs, std::size_t n, double a,
                              BusParams bus) {
  (void)a;  // the traffic model is value-independent
  return run_shared(log2_procs, n, /*words_per_elem=*/3,
                    /*flops_per_elem=*/2, bus);
}

KernelResult run_shared_dot(int log2_procs, std::size_t n, BusParams bus) {
  return run_shared(log2_procs, n, /*words_per_elem=*/2,
                    /*flops_per_elem=*/2, bus);
}

}  // namespace fpst::baseline
