// Shared-memory bus baseline (paper §I).
//
// The introduction argues: "Shared memory systems are expensive when scaled
// to large dimensions because of the rapid growth of the interconnection
// network; the distance from memory to the processing elements also
// degrades performance by increasing latency." This module provides the
// quantitative counterpart: P vector processors identical to a T node
// (16 MFLOPS peak) sharing one global memory over a single bus. Every
// vector operand stream crosses the bus; a processor's stripe therefore
// serialises behind all other traffic, and aggregate throughput saturates
// at (bus bandwidth)/(bytes per flop) no matter how many processors are
// added — while the distributed machine keeps its operands in node-local
// dual-ported memory.
#pragma once

#include <cstddef>

#include "kernels/kernels.hpp"
#include "sim/time.hpp"

namespace fpst::baseline {

struct BusParams {
  /// Bus bandwidth. The default, 192 MB/s, is exactly one node's vector
  /// register bandwidth (§II Figure 2) — i.e. the bus can feed ONE T-class
  /// vector unit at full speed, a generous 1986 backplane.
  double bandwidth_mb_s = 192.0;
  /// Arbitration + address cycle per bus transaction.
  sim::SimTime arbitration = sim::SimTime::nanoseconds(200);
  /// Words moved per transaction (burst size).
  std::size_t burst_words = 256;
  /// Extra latency per doubling of processor count (interconnect depth —
  /// "the distance from memory ... increasing latency").
  sim::SimTime latency_per_level = sim::SimTime::nanoseconds(100);
};

/// y := a*x + y over n elements split across 2^log2_procs processors
/// sharing the bus. Traffic: 3 words (2 reads + 1 write) per element.
kernels::KernelResult run_shared_saxpy(int log2_procs, std::size_t n,
                                       double a, BusParams bus = {});

/// dot(x, y) over n elements: 2 words per element plus a trivial combine.
kernels::KernelResult run_shared_dot(int log2_procs, std::size_t n,
                                     BusParams bus = {});

}  // namespace fpst::baseline
