// The processor node of Figure 1: control processor, dual-ported memory,
// vector arithmetic unit and four communication links on one board.
//
// Besides composing the substrates, the node exposes the *timed host-level
// API* that the Occam runtime and the scientific kernels program against:
// coroutine operations that hold the proper hardware resource (vector unit,
// CP gather engine, link wire) for exactly the §II durations. TISA programs
// can also be loaded and run on the node's control processor for
// cycle-level studies.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cp/cpu.hpp"
#include "link/link.hpp"
#include "mem/memory.hpp"
#include "vpu/vpu.hpp"
#include "perf/counters.hpp"
#include "sim/proc.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/trace.hpp"
#include "vpu/vpu.hpp"

namespace fpst::node {

/// One derived table the paper builds from the §II constants: the relative
/// cost of arithmetic, CP gather and link transfer for 64-bit operands —
/// "1 : 13 : 130".
struct BalanceRatios {
  static constexpr sim::SimTime arithmetic() { return vpu::VpuParams::cycle(); }
  static constexpr sim::SimTime gather() {
    return mem::MemParams::gather_move64();
  }
  static constexpr sim::SimTime link_word() {
    return 8 * link::LinkParams::byte_time();
  }
  static constexpr double gather_over_arith() {
    return gather() / arithmetic();  // 12.8 ~ "13"
  }
  static constexpr double link_over_arith() {
    return link_word() / arithmetic();  // 128 ~ "130"
  }
};

struct NodeConfig {
  /// Disable the dual-bank memory (ablation study).
  bool dual_bank = true;
  /// Disable CP/VPU overlap: vector ops then also hold the CP (ablation for
  /// the gather-overlap claim).
  bool overlap = true;
  /// Which VPU arithmetic arm computes vector results (softfloat oracle,
  /// host-FP batch fast path, or checked cross-validation). Results,
  /// flags and timing are identical in every mode.
  vpu::VpuMode vpu_mode = vpu::VpuMode::softfloat;
};

/// A vector operand resident in node memory: `rows` consecutive rows
/// starting at `first_row`, holding `elems` 64-bit elements.
struct Array64 {
  std::size_t first_row = 0;
  std::size_t elems = 0;

  std::size_t rows() const {
    return (elems + mem::MemParams::kElems64 - 1) / mem::MemParams::kElems64;
  }
};

/// The 32-bit view: vectors of up to 256 single-precision elements per row
/// (§II Memory: "for 32-bit operations, the vectors are 256 elements
/// long").
struct Array32 {
  std::size_t first_row = 0;
  std::size_t elems = 0;

  std::size_t rows() const {
    return (elems + mem::MemParams::kElems32 - 1) / mem::MemParams::kElems32;
  }
};

class Node {
 public:
  Node(sim::Simulator& sim, std::uint32_t id);
  Node(sim::Simulator& sim, std::uint32_t id, NodeConfig cfg);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  std::uint32_t id() const { return id_; }
  sim::Simulator& simulator() { return *sim_; }
  mem::NodeMemory& memory() { return memory_; }
  vpu::VectorUnit& vector_unit() { return vpu_; }
  cp::Cpu& cpu() { return cpu_; }
  link::NodeLinks& links() { return links_; }
  const NodeConfig& config() const { return cfg_; }

  // ---- row allocation (bank-aware) ----
  /// Allocate `rows` consecutive rows in bank A or B. Throws when full.
  std::size_t alloc_rows(mem::Bank bank, std::size_t rows);
  /// Allocate an Array64 of `elems` elements in `bank`.
  Array64 alloc64(mem::Bank bank, std::size_t elems);
  /// Allocate an Array32 of `elems` single-precision elements in `bank`.
  Array32 alloc32(mem::Bank bank, std::size_t elems);
  /// Release all allocations (arrays become dangling).
  void reset_allocator();

  // ---- host data staging (functional, untimed: experiment setup) ----
  void write64(const Array64& a, std::span<const double> values);
  std::vector<double> read64(const Array64& a) const;
  void write32(const Array32& a, std::span<const float> values);
  std::vector<float> read32(const Array32& a) const;

  // ---- timed operations (the public compute API) ----
  /// Run one vector form over full arrays, strip-mining row by row. For
  /// two-operand forms x and y must be equal length; z receives the result.
  /// The vector unit is held for the whole strip-mined sequence.
  sim::Proc vbinary(vpu::VectorForm form, const Array64& x, const Array64& y,
                    const Array64& z, vpu::OpResult* out = nullptr);
  /// Scalar-register forms (vsadd/vsmul/vsaxpy with scalar a).
  sim::Proc vscalar(vpu::VectorForm form, double a, const Array64& x,
                    const Array64& y, const Array64& z,
                    vpu::OpResult* out = nullptr);
  /// Reductions (vsum/vdot/vmaxval) over full arrays; partial results from
  /// each stripe are combined on the CP (one add per stripe).
  sim::Proc vreduce(vpu::VectorForm form, const Array64& x, const Array64& y,
                    double* result, std::size_t* arg_index = nullptr);

  /// 32-bit variants of the strip-mined forms (256 elements per stripe).
  sim::Proc vbinary32(vpu::VectorForm form, const Array32& x,
                      const Array32& y, const Array32& z,
                      vpu::OpResult* out = nullptr);
  sim::Proc vscalar32(vpu::VectorForm form, double a, const Array32& x,
                      const Array32& y, const Array32& z,
                      vpu::OpResult* out = nullptr);

  /// CP gather: assemble `elems` 64-bit operands from scattered locations
  /// into a contiguous vector (1.6 us per element, §II). Functionally a
  /// no-op here — callers stage data themselves — but it occupies the CP,
  /// so it overlaps vector arithmetic exactly as the paper prescribes.
  sim::Proc gather(std::size_t elems);
  /// CP scatter of results (same cost as gather).
  sim::Proc scatter(std::size_t elems);
  /// 32-bit gather: 0.8 us per element (one read + one write, §II).
  sim::Proc gather32(std::size_t elems);
  /// Generic control-processor work (integer bookkeeping) of a given size,
  /// expressed in CP instructions.
  sim::Proc cp_work(std::uint64_t instructions);
  /// Scalar reciprocal on the pipes (the node has no divide unit): Newton's
  /// method, six iterations of two multiplies + one subtract at scalar
  /// (pipeline-latency) rates. Occupies the vector unit.
  sim::Proc scalar_recip(double x, double* out);
  /// Move `rows` full rows memory<->vector register (400 ns each): the
  /// paper's "moving data physically" idiom (row pivoting, record sort).
  sim::Proc row_move(std::size_t rows);

  // ---- link I/O ----
  sim::Proc link_send(int port, link::Packet p);
  sim::Channel<link::Packet>& link_inbox(int port, int sublink);

  /// Attach a tracer: vector forms, gathers, CP work and row moves are
  /// recorded as spans under categories "node<id>.vpu" / "node<id>.cp".
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }

  /// Attach perf collection: registers this node's "vpu", "cp" and "mem"
  /// tracks with the registry and wires the substrate sinks. Spans from the
  /// timed API land on the vpu/cp tracks of the registry's timeline. The
  /// registry must outlive the node.
  void attach_perf(perf::CounterRegistry& reg);

  // ---- statistics ----
  sim::SimTime vpu_busy() const { return vpu_.total_busy(); }
  std::uint64_t flops() const { return vpu_.total_flops(); }
  sim::SimTime cp_busy() const { return cp_busy_; }

 private:
  sim::Proc run_op(vpu::VectorOp op, vpu::OpResult* out);
  /// The non-suspending halves of run_op, for the strip-mine loops that
  /// inline its acquire/delay/release sequence.
  vpu::OpResult issue_op(const vpu::VectorOp& op);
  void retire_op(const vpu::OpResult& r);

  sim::Simulator* sim_;
  std::uint32_t id_;
  NodeConfig cfg_;
  mem::NodeMemory memory_;
  vpu::VectorUnit vpu_;
  cp::Cpu cpu_;
  link::NodeLinks links_;
  sim::Semaphore vpu_sem_;
  sim::Semaphore cp_sem_;
  void trace_span(const char* unit, sim::SimTime start, sim::SimTime dur,
                  std::string detail);

  sim::Tracer* tracer_ = nullptr;
  perf::PerfSink* perf_vpu_ = nullptr;
  perf::PerfSink* perf_cp_ = nullptr;
  /// Per-port link tracks; wired only for ports with an attached cable so
  /// standalone-node dumps don't grow empty link tracks.
  std::array<perf::PerfSink*, link::LinkParams::kPhysicalLinks> perf_link_{};
  std::size_t next_row_a_ = 0;
  std::size_t next_row_b_ = mem::MemParams::kBankARows;
  sim::SimTime cp_busy_{};
};

}  // namespace fpst::node
