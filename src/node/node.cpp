#include "node/node.hpp"

#include "vpu/recip.hpp"

#include <stdexcept>
#include <string_view>

namespace fpst::node {

namespace {
using mem::MemParams;
using sim::Delay;
using sim::SimTime;
}  // namespace

Node::Node(sim::Simulator& sim, std::uint32_t id)
    : Node(sim, id, NodeConfig{}) {}

Node::Node(sim::Simulator& sim, std::uint32_t id, NodeConfig cfg)
    : sim_{&sim},
      id_{id},
      cfg_{cfg},
      memory_{},
      vpu_{memory_, vpu::VectorUnit::Config{.dual_bank = cfg.dual_bank,
                                            .mode = cfg.vpu_mode}},
      cpu_{sim, memory_, vpu_},
      links_{},
      vpu_sem_{sim, 1},
      cp_sem_{sim, 1} {
  // Bridge the control processor's hard channels onto the link hardware.
  cp::Cpu::Hooks hooks;
  hooks.hard_out = [this](int port, int sublink,
                          std::vector<std::uint8_t> data) -> sim::Proc {
    link::Packet p;
    p.src = id_;
    p.sublink = static_cast<std::uint8_t>(sublink);
    p.payload = std::move(data);
    co_await links_.send(port, std::move(p));
  };
  hooks.hard_in = [this](int port, int sublink, std::vector<std::uint8_t>* out,
                         std::size_t n) -> sim::Proc {
    link::Packet p = co_await links_.inbox(port, sublink).recv();
    p.payload.resize(n);
    *out = std::move(p.payload);
  };
  cpu_.set_hooks(std::move(hooks));
}

std::size_t Node::alloc_rows(mem::Bank bank, std::size_t rows) {
  if (bank == mem::Bank::A) {
    if (next_row_a_ + rows > MemParams::kBankARows) {
      throw std::runtime_error("Node::alloc_rows: bank A full");
    }
    const std::size_t r = next_row_a_;
    next_row_a_ += rows;
    return r;
  }
  if (next_row_b_ + rows > MemParams::kRows) {
    throw std::runtime_error("Node::alloc_rows: bank B full");
  }
  const std::size_t r = next_row_b_;
  next_row_b_ += rows;
  return r;
}

Array64 Node::alloc64(mem::Bank bank, std::size_t elems) {
  Array64 a;
  a.elems = elems;
  a.first_row = alloc_rows(bank, a.rows());
  return a;
}

Array32 Node::alloc32(mem::Bank bank, std::size_t elems) {
  Array32 a;
  a.elems = elems;
  a.first_row = alloc_rows(bank, a.rows());
  return a;
}

void Node::reset_allocator() {
  next_row_a_ = 0;
  next_row_b_ = MemParams::kBankARows;
}

void Node::write64(const Array64& a, std::span<const double> values) {
  if (values.size() > a.elems) {
    throw std::invalid_argument("Node::write64: too many values");
  }
  mem::VectorRegister reg;
  for (std::size_t row = 0; row < a.rows(); ++row) {
    memory_.load_row(a.first_row + row, reg);
    const std::size_t base = row * MemParams::kElems64;
    for (std::size_t i = 0; i < MemParams::kElems64; ++i) {
      const std::size_t idx = base + i;
      if (idx < values.size()) {
        reg.set_f64(i, fp::T64::from_double(values[idx]));
      }
    }
    memory_.store_row(a.first_row + row, reg);
  }
}

std::vector<double> Node::read64(const Array64& a) const {
  std::vector<double> out(a.elems);
  mem::VectorRegister reg;
  auto& m = const_cast<mem::NodeMemory&>(memory_);
  for (std::size_t row = 0; row < a.rows(); ++row) {
    m.load_row(a.first_row + row, reg);
    const std::size_t base = row * MemParams::kElems64;
    for (std::size_t i = 0; i < MemParams::kElems64 && base + i < a.elems;
         ++i) {
      out[base + i] = reg.f64(base + i - base).to_double();
    }
  }
  return out;
}

void Node::write32(const Array32& a, std::span<const float> values) {
  if (values.size() > a.elems) {
    throw std::invalid_argument("Node::write32: too many values");
  }
  mem::VectorRegister reg;
  for (std::size_t row = 0; row < a.rows(); ++row) {
    memory_.load_row(a.first_row + row, reg);
    const std::size_t base = row * MemParams::kElems32;
    for (std::size_t i = 0; i < MemParams::kElems32; ++i) {
      if (base + i < values.size()) {
        reg.set_f32(i, fp::T32::from_float(values[base + i]));
      }
    }
    memory_.store_row(a.first_row + row, reg);
  }
}

std::vector<float> Node::read32(const Array32& a) const {
  std::vector<float> out(a.elems);
  mem::VectorRegister reg;
  auto& m = const_cast<mem::NodeMemory&>(memory_);
  for (std::size_t row = 0; row < a.rows(); ++row) {
    m.load_row(a.first_row + row, reg);
    const std::size_t base = row * MemParams::kElems32;
    for (std::size_t i = 0; i < MemParams::kElems32 && base + i < a.elems;
         ++i) {
      out[base + i] = reg.f32(i).to_float();
    }
  }
  return out;
}

void Node::attach_perf(perf::CounterRegistry& reg) {
  perf_vpu_ = &reg.track(id_, "vpu");
  perf_cp_ = &reg.track(id_, "cp");
  memory_.set_sink(&reg.track(id_, "mem"));
  vpu_.set_sink(perf_vpu_);
  cpu_.set_sink(perf_cp_);
  for (int p = 0; p < link::LinkParams::kPhysicalLinks; ++p) {
    if (links_.attached(p)) {
      perf_link_[static_cast<std::size_t>(p)] =
          &reg.track(id_, "link" + std::to_string(p));
    }
  }
}

void Node::trace_span(const char* unit, sim::SimTime start,
                      sim::SimTime dur, std::string detail) {
  perf::PerfSink* sink =
      std::string_view(unit) == "vpu" ? perf_vpu_ : perf_cp_;
  if (sink != nullptr) {
    sink->span(start, dur, detail);
  }
  if (tracer_ != nullptr) {
    tracer_->span(start, dur, "node" + std::to_string(id_) + "." + unit,
                  std::move(detail));
  }
}

vpu::OpResult Node::issue_op(const vpu::VectorOp& op) {
  vpu::OpResult r = vpu_.execute(op);
  if (tracer_ != nullptr || perf_vpu_ != nullptr) {
    trace_span("vpu", sim_->now(), r.duration,
               std::string(vpu::to_string(op.form)) + " n=" +
                   std::to_string(op.n));
  }
  return r;
}

void Node::retire_op(const vpu::OpResult& r) {
  if (!cfg_.overlap) {
    cp_busy_ += r.duration;
    if (perf_cp_ != nullptr) {
      // The stalled controller is occupied for the whole vector op.
      perf_cp_->busy("busy", r.duration);
    }
    cp_sem_.release();
  }
  vpu_sem_.release();
}

sim::Proc Node::run_op(vpu::VectorOp op, vpu::OpResult* out) {
  co_await vpu_sem_.acquire();
  if (!cfg_.overlap) {
    // Ablation: no CP/VPU overlap — the controller stalls for the whole
    // vector operation.
    co_await cp_sem_.acquire();
  }
  const vpu::OpResult r = issue_op(op);
  co_await Delay{r.duration};
  retire_op(r);
  if (out != nullptr) {
    *out = r;
  }
}

sim::Proc Node::vbinary(vpu::VectorForm form, const Array64& x,
                        const Array64& y, const Array64& z,
                        vpu::OpResult* out) {
  if (x.elems != z.elems ||
      (vpu::is_two_operand(form) && y.elems != x.elems)) {
    throw std::invalid_argument("Node::vbinary: length mismatch");
  }
  vpu::OpResult total;
  for (std::size_t row = 0; row < x.rows(); ++row) {
    const std::size_t done = row * MemParams::kElems64;
    vpu::VectorOp op;
    op.form = form;
    op.prec = vpu::Precision::f64;
    op.n = std::min(MemParams::kElems64, x.elems - done);
    op.row_x = x.first_row + row;
    op.row_y = y.first_row + row;
    op.row_z = z.first_row + row;
    // run_op, inlined: the strip-mine loops are the simulator's hottest
    // path, and awaiting a nested child coroutine would cost two extra
    // event-queue round trips per stripe. Same acquire/delay/release
    // sequence, so simulated timing is identical.
    co_await vpu_sem_.acquire();
    if (!cfg_.overlap) {
      co_await cp_sem_.acquire();
    }
    const vpu::OpResult r = issue_op(op);
    co_await Delay{r.duration};
    retire_op(r);
    total.duration += r.duration;
    total.flops += r.flops;
    total.flags.merge(r.flags);
  }
  if (out != nullptr) {
    *out = total;
  }
}

sim::Proc Node::vscalar(vpu::VectorForm form, double a, const Array64& x,
                        const Array64& y, const Array64& z,
                        vpu::OpResult* out) {
  if (x.elems != z.elems ||
      (vpu::is_two_operand(form) && y.elems != x.elems)) {
    throw std::invalid_argument("Node::vscalar: length mismatch");
  }
  vpu::OpResult total;
  for (std::size_t row = 0; row < x.rows(); ++row) {
    const std::size_t done = row * MemParams::kElems64;
    vpu::VectorOp op;
    op.form = form;
    op.prec = vpu::Precision::f64;
    op.n = std::min(MemParams::kElems64, x.elems - done);
    op.row_x = x.first_row + row;
    op.row_y = y.first_row + row;
    op.row_z = z.first_row + row;
    op.scalar = fp::T64::from_double(a);
    // run_op, inlined: the strip-mine loops are the simulator's hottest
    // path, and awaiting a nested child coroutine would cost two extra
    // event-queue round trips per stripe. Same acquire/delay/release
    // sequence, so simulated timing is identical.
    co_await vpu_sem_.acquire();
    if (!cfg_.overlap) {
      co_await cp_sem_.acquire();
    }
    const vpu::OpResult r = issue_op(op);
    co_await Delay{r.duration};
    retire_op(r);
    total.duration += r.duration;
    total.flops += r.flops;
    total.flags.merge(r.flags);
  }
  if (out != nullptr) {
    *out = total;
  }
}

sim::Proc Node::vreduce(vpu::VectorForm form, const Array64& x,
                        const Array64& y, double* result,
                        std::size_t* arg_index) {
  fp::T64 acc{};
  fp::T64 best{};
  std::size_t best_index = 0;
  bool first = true;
  fp::Flags fl;
  for (std::size_t row = 0; row < x.rows(); ++row) {
    const std::size_t done = row * MemParams::kElems64;
    vpu::VectorOp op;
    op.form = form;
    op.prec = vpu::Precision::f64;
    op.n = std::min(MemParams::kElems64, x.elems - done);
    op.row_x = x.first_row + row;
    op.row_y = y.first_row + row;
    // run_op, inlined: the strip-mine loops are the simulator's hottest
    // path, and awaiting a nested child coroutine would cost two extra
    // event-queue round trips per stripe. Same acquire/delay/release
    // sequence, so simulated timing is identical.
    co_await vpu_sem_.acquire();
    if (!cfg_.overlap) {
      co_await cp_sem_.acquire();
    }
    const vpu::OpResult r = issue_op(op);
    co_await Delay{r.duration};
    retire_op(r);
    if (form == vpu::VectorForm::vmaxval) {
      if (first ||
          compare(r.scalar_result, best, fl) == fp::Ordering::greater) {
        best = r.scalar_result;
        best_index = done + r.reduction_index;
      }
    } else {
      acc = add(acc, r.scalar_result, fl);
    }
    first = false;
  }
  // Combining one partial per stripe is CP work (an add per stripe).
  co_await cp_work(4 * x.rows());
  if (form == vpu::VectorForm::vmaxval) {
    *result = best.to_double();
    if (arg_index != nullptr) {
      *arg_index = best_index;
    }
  } else {
    *result = acc.to_double();
  }
}

sim::Proc Node::vbinary32(vpu::VectorForm form, const Array32& x,
                          const Array32& y, const Array32& z,
                          vpu::OpResult* out) {
  if (x.elems != z.elems ||
      (vpu::is_two_operand(form) && y.elems != x.elems)) {
    throw std::invalid_argument("Node::vbinary32: length mismatch");
  }
  vpu::OpResult total;
  for (std::size_t row = 0; row < x.rows(); ++row) {
    const std::size_t done = row * MemParams::kElems32;
    vpu::VectorOp op;
    op.form = form;
    op.prec = vpu::Precision::f32;
    op.n = std::min(MemParams::kElems32, x.elems - done);
    op.row_x = x.first_row + row;
    op.row_y = y.first_row + row;
    op.row_z = z.first_row + row;
    // run_op, inlined: the strip-mine loops are the simulator's hottest
    // path, and awaiting a nested child coroutine would cost two extra
    // event-queue round trips per stripe. Same acquire/delay/release
    // sequence, so simulated timing is identical.
    co_await vpu_sem_.acquire();
    if (!cfg_.overlap) {
      co_await cp_sem_.acquire();
    }
    const vpu::OpResult r = issue_op(op);
    co_await Delay{r.duration};
    retire_op(r);
    total.duration += r.duration;
    total.flops += r.flops;
    total.flags.merge(r.flags);
  }
  if (out != nullptr) {
    *out = total;
  }
}

sim::Proc Node::vscalar32(vpu::VectorForm form, double a, const Array32& x,
                          const Array32& y, const Array32& z,
                          vpu::OpResult* out) {
  if (x.elems != z.elems ||
      (vpu::is_two_operand(form) && y.elems != x.elems)) {
    throw std::invalid_argument("Node::vscalar32: length mismatch");
  }
  vpu::OpResult total;
  for (std::size_t row = 0; row < x.rows(); ++row) {
    const std::size_t done = row * MemParams::kElems32;
    vpu::VectorOp op;
    op.form = form;
    op.prec = vpu::Precision::f32;
    op.n = std::min(MemParams::kElems32, x.elems - done);
    op.row_x = x.first_row + row;
    op.row_y = y.first_row + row;
    op.row_z = z.first_row + row;
    op.scalar = fp::T64::from_double(a);
    // run_op, inlined: the strip-mine loops are the simulator's hottest
    // path, and awaiting a nested child coroutine would cost two extra
    // event-queue round trips per stripe. Same acquire/delay/release
    // sequence, so simulated timing is identical.
    co_await vpu_sem_.acquire();
    if (!cfg_.overlap) {
      co_await cp_sem_.acquire();
    }
    const vpu::OpResult r = issue_op(op);
    co_await Delay{r.duration};
    retire_op(r);
    total.duration += r.duration;
    total.flops += r.flops;
    total.flags.merge(r.flags);
  }
  if (out != nullptr) {
    *out = total;
  }
}

sim::Proc Node::gather32(std::size_t elems) {
  co_await cp_sem_.acquire();
  const SimTime t = static_cast<std::int64_t>(elems) *
                    MemParams::gather_move32();
  if (tracer_ != nullptr || perf_cp_ != nullptr) {
    trace_span("cp", sim_->now(), t, "gather32 " + std::to_string(elems));
  }
  co_await Delay{t};
  cp_busy_ += t;
  if (perf_cp_ != nullptr) {
    perf_cp_->count("gather_elems", elems);
    perf_cp_->busy("busy", t);
  }
  cp_sem_.release();
}

sim::Proc Node::gather(std::size_t elems) {
  co_await cp_sem_.acquire();
  const SimTime t = static_cast<std::int64_t>(elems) *
                    MemParams::gather_move64();
  if (tracer_ != nullptr || perf_cp_ != nullptr) {
    trace_span("cp", sim_->now(), t, "gather64 " + std::to_string(elems));
  }
  co_await Delay{t};
  cp_busy_ += t;
  if (perf_cp_ != nullptr) {
    perf_cp_->count("gather_elems", elems);
    perf_cp_->busy("busy", t);
  }
  cp_sem_.release();
}

sim::Proc Node::scatter(std::size_t elems) {
  co_await cp_sem_.acquire();
  const SimTime t = static_cast<std::int64_t>(elems) *
                    MemParams::gather_move64();
  if (tracer_ != nullptr || perf_cp_ != nullptr) {
    trace_span("cp", sim_->now(), t, "scatter64 " + std::to_string(elems));
  }
  co_await Delay{t};
  cp_busy_ += t;
  if (perf_cp_ != nullptr) {
    perf_cp_->count("scatter_elems", elems);
    perf_cp_->busy("busy", t);
  }
  cp_sem_.release();
}

sim::Proc Node::cp_work(std::uint64_t instructions) {
  co_await cp_sem_.acquire();
  const SimTime t =
      static_cast<std::int64_t>(instructions) * cp::CpuParams::instr_time();
  if (tracer_ != nullptr || perf_cp_ != nullptr) {
    trace_span("cp", sim_->now(), t,
               "work " + std::to_string(instructions) + " instr");
  }
  co_await Delay{t};
  cp_busy_ += t;
  if (perf_cp_ != nullptr) {
    perf_cp_->count("instr", instructions);
    perf_cp_->busy("busy", t);
  }
  cp_sem_.release();
}

sim::Proc Node::scalar_recip(double x, double* out) {
  co_await vpu_sem_.acquire();
  // Each Newton step issues two scalar multiplies and a subtract; scalar
  // operations pay full pipeline latency (no streaming to amortise).
  const std::int64_t cycles_per_iter =
      2 * vpu::VpuParams::kMulStages64 + vpu::VpuParams::kAdderStages;
  co_await Delay{vpu::kRecipIterations * cycles_per_iter *
                 vpu::VpuParams::cycle()};
  fp::Flags fl;
  *out = vpu::recip_newton(fp::T64::from_double(x), fl).to_double();
  vpu_sem_.release();
}

sim::Proc Node::row_move(std::size_t rows) {
  co_await vpu_sem_.acquire();
  const SimTime t =
      static_cast<std::int64_t>(2 * rows) * MemParams::row_access();
  if (tracer_ != nullptr || perf_vpu_ != nullptr) {
    trace_span("vpu", sim_->now(), t, "rowmove " + std::to_string(rows));
  }
  co_await Delay{t};
  vpu_sem_.release();
}

sim::Proc Node::link_send(int port, link::Packet p) {
  p.src = id_;
  if (p.trace != 0 && port >= 0 && port < link::LinkParams::kPhysicalLinks) {
    // tscope enqueue marker for ISA-level link I/O (the machine path
    // records its own in TSeries::send_dim).
    if (perf::PerfSink* sink = perf_link_[static_cast<std::size_t>(port)]) {
      sink->instant(sim_->now(), "m" + std::to_string(p.trace) + " enq");
    }
  }
  co_await links_.send(port, std::move(p));
}

sim::Channel<link::Packet>& Node::link_inbox(int port, int sublink) {
  return links_.inbox(port, sublink);
}

}  // namespace fpst::node
