#include "cp/assembler.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <optional>
#include <sstream>

namespace fpst::cp {

namespace {

struct Mnemonic {
  const char* name;
  Op op;
};

constexpr std::array<Mnemonic, 15> kPrimaries{{
    {"j", Op::j}, {"ldlp", Op::ldlp}, {"pfix", Op::pfix}, {"ldnl", Op::ldnl},
    {"ldc", Op::ldc}, {"ldnlp", Op::ldnlp}, {"nfix", Op::nfix},
    {"ldl", Op::ldl}, {"adc", Op::adc}, {"call", Op::call}, {"cj", Op::cj},
    {"ajw", Op::ajw}, {"eqc", Op::eqc}, {"stl", Op::stl}, {"stnl", Op::stnl},
}};

struct SecMnemonic {
  const char* name;
  SecOp op;
};

constexpr std::array<SecMnemonic, 35> kSecondaries{{
    {"rev", SecOp::rev}, {"add", SecOp::add}, {"sub", SecOp::sub},
    {"mul", SecOp::mul}, {"div", SecOp::divi}, {"rem", SecOp::rem},
    {"and", SecOp::land}, {"or", SecOp::lor}, {"xor", SecOp::lxor},
    {"not", SecOp::lnot}, {"shl", SecOp::shl}, {"shr", SecOp::shr},
    {"gt", SecOp::gt}, {"mint", SecOp::mint}, {"ldpi", SecOp::ldpi},
    {"wsub", SecOp::wsub}, {"bsub", SecOp::bsub}, {"lb", SecOp::lb},
    {"sb", SecOp::sb}, {"move", SecOp::move}, {"in", SecOp::in},
    {"out", SecOp::out}, {"startp", SecOp::startp}, {"endp", SecOp::endp},
    {"stopp", SecOp::stopp}, {"runp", SecOp::runp},
    {"ldtimer", SecOp::ldtimer}, {"tin", SecOp::tin}, {"ret", SecOp::ret},
    {"vform", SecOp::vform}, {"vwait", SecOp::vwait},
    {"gather", SecOp::gather}, {"scatter", SecOp::scatter},
    {"halt", SecOp::halt}, {"testerr", SecOp::testerr},
}};

std::optional<Op> primary_by_name(const std::string& s) {
  for (const Mnemonic& m : kPrimaries) {
    if (s == m.name) {
      return m.op;
    }
  }
  return std::nullopt;
}

constexpr std::size_t kLabelEncodedBytes = 6;

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  std::size_t e = s.find_last_not_of(" \t\r");
  if (b == std::string::npos) {
    return "";
  }
  return s.substr(b, e - b + 1);
}

struct Statement {
  std::size_t line;
  std::string mnemonic;  // empty for pure-label / directive lines
  std::string operand;   // raw text; may be empty
  std::vector<std::string> labels;
  // directives
  bool is_word = false;
  bool is_space = false;
  bool is_align = false;
  bool is_org = false;
};

bool parse_int(const std::string& text, std::int64_t& out) {
  if (text.empty()) {
    return false;
  }
  std::size_t pos = 0;
  try {
    out = std::stoll(text, &pos, 0);  // handles 0x..., decimal, negative
  } catch (...) {
    return false;
  }
  return pos == text.size();
}

}  // namespace

std::size_t Program::line_at(std::uint32_t addr) const {
  if (lines.empty() || addr < lines.front().first ||
      addr >= org + bytes.size()) {
    return 0;
  }
  // Last entry at or below addr.
  auto it = std::upper_bound(
      lines.begin(), lines.end(), addr,
      [](std::uint32_t a, const auto& e) { return a < e.first; });
  return std::prev(it)->second;
}

std::uint32_t Program::symbol(const std::string& name) const {
  auto it = symbols.find(name);
  if (it == symbols.end()) {
    throw std::out_of_range("Program::symbol: unknown symbol " + name);
  }
  return it->second;
}

std::vector<std::uint8_t> encode(Op op, std::int32_t operand) {
  std::vector<std::uint8_t> out;
  // Recursive minimal prefix encoding (the transputer scheme).
  auto rec = [&out](auto&& self, Op final_op, std::int32_t v) -> void {
    if (v >= 0 && v < 16) {
      out.push_back(static_cast<std::uint8_t>(
          (static_cast<unsigned>(final_op) << 4) | static_cast<unsigned>(v)));
      return;
    }
    if (v >= 16) {
      self(self, Op::pfix, v >> 4);
    } else {  // v < 0
      self(self, Op::nfix, (~v) >> 4);
    }
    out.push_back(static_cast<std::uint8_t>(
        (static_cast<unsigned>(final_op) << 4) |
        (static_cast<unsigned>(v) & 0xFu)));
  };
  // The outer call must emit prefixes for `operand` then the final byte.
  if (operand >= 0 && operand < 16) {
    out.push_back(static_cast<std::uint8_t>(
        (static_cast<unsigned>(op) << 4) | static_cast<unsigned>(operand)));
  } else if (operand >= 16) {
    rec(rec, Op::pfix, operand >> 4);
    out.push_back(static_cast<std::uint8_t>(
        (static_cast<unsigned>(op) << 4) |
        (static_cast<unsigned>(operand) & 0xFu)));
  } else {
    rec(rec, Op::nfix, (~operand) >> 4);
    out.push_back(static_cast<std::uint8_t>(
        (static_cast<unsigned>(op) << 4) |
        (static_cast<unsigned>(operand) & 0xFu)));
  }
  return out;
}

std::vector<std::uint8_t> encode_fixed(Op op, std::int32_t operand) {
  std::vector<std::uint8_t> minimal = encode(op, operand);
  if (minimal.size() > kLabelEncodedBytes) {
    throw std::runtime_error("encode_fixed: operand needs > 6 bytes");
  }
  // Leading `pfix 0` bytes leave the operand register unchanged (O starts
  // at zero), so padding in front preserves the value.
  std::vector<std::uint8_t> out(
      kLabelEncodedBytes - minimal.size(),
      static_cast<std::uint8_t>(static_cast<unsigned>(Op::pfix) << 4));
  out.insert(out.end(), minimal.begin(), minimal.end());
  return out;
}

Decoded decode(const std::vector<std::uint8_t>& bytes, std::size_t pos) {
  std::uint32_t oreg = 0;
  std::uint32_t size = 0;
  while (pos + size < bytes.size()) {
    const std::uint8_t b = bytes[pos + size];
    ++size;
    const Op op = static_cast<Op>(b >> 4);
    const std::uint32_t nib = b & 0xFu;
    if (op == Op::pfix) {
      oreg = (oreg | nib) << 4;
    } else if (op == Op::nfix) {
      oreg = (~(oreg | nib)) << 4;
    } else {
      return Decoded{op, static_cast<std::int32_t>(oreg | nib), size};
    }
  }
  throw std::runtime_error("decode: ran off the end inside prefixes");
}

Program assemble(const std::string& source) {
  // ---- parse ----
  std::vector<Statement> stmts;
  std::istringstream in(source);
  std::string raw;
  std::size_t lineno = 0;
  std::vector<std::string> pending_labels;
  std::uint32_t org = 0x1000;  // default load address in DRAM
  bool org_set = false;
  bool any_code = false;

  while (std::getline(in, raw)) {
    ++lineno;
    std::string text = raw;
    if (const std::size_t c = text.find(';'); c != std::string::npos) {
      text = text.substr(0, c);
    }
    text = trim(text);
    while (!text.empty()) {
      // Leading labels, possibly several on one line.
      const std::size_t colon = text.find(':');
      const std::size_t ws = text.find_first_of(" \t");
      if (colon != std::string::npos && (ws == std::string::npos || colon < ws)) {
        const std::string label = trim(text.substr(0, colon));
        if (label.empty()) {
          throw AsmError(lineno, "empty label");
        }
        pending_labels.push_back(label);
        text = trim(text.substr(colon + 1));
        continue;
      }
      break;
    }
    if (text.empty()) {
      continue;  // labels (if any) stay pending for the next statement
    }
    Statement st;
    st.line = lineno;
    st.labels = std::move(pending_labels);
    pending_labels.clear();
    const std::size_t sp = text.find_first_of(" \t");
    st.mnemonic = text.substr(0, sp);
    st.operand = sp == std::string::npos ? "" : trim(text.substr(sp + 1));
    if (st.mnemonic == ".word") {
      st.is_word = true;
    } else if (st.mnemonic == ".space") {
      st.is_space = true;
    } else if (st.mnemonic == ".align") {
      st.is_align = true;
    } else if (st.mnemonic == ".org") {
      if (any_code || org_set) {
        throw AsmError(lineno, ".org must appear once, before any code");
      }
      std::int64_t v = 0;
      if (!parse_int(st.operand, v)) {
        throw AsmError(lineno, "bad .org operand");
      }
      org = static_cast<std::uint32_t>(v);
      org_set = true;
      continue;
    }
    any_code = true;
    stmts.push_back(std::move(st));
  }
  if (!pending_labels.empty()) {
    // Trailing labels bind to the end address.
    Statement st;
    st.line = lineno;
    st.labels = std::move(pending_labels);
    st.mnemonic = "";
    st.is_align = true;  // zero-size statement
    st.is_space = false;
    stmts.push_back(std::move(st));
  }

  // ---- pass 1: sizes and symbol table ----
  auto statement_size = [&](const Statement& st,
                            std::uint32_t addr) -> std::uint32_t {
    if (st.mnemonic.empty()) {
      return 0;
    }
    if (st.is_align) {
      return (4 - (addr & 3u)) & 3u;
    }
    if (st.is_word) {
      return 4;
    }
    if (st.is_space) {
      std::int64_t v = 0;
      if (!parse_int(st.operand, v) || v < 0) {
        throw AsmError(st.line, "bad .space operand");
      }
      return static_cast<std::uint32_t>(v);
    }
    std::int64_t num = 0;
    const bool numeric = parse_int(st.operand, num);
    if (const auto prim = primary_by_name(st.mnemonic)) {
      if (st.operand.empty()) {
        throw AsmError(st.line, st.mnemonic + " needs an operand");
      }
      if (numeric) {
        return static_cast<std::uint32_t>(
            encode(*prim, static_cast<std::int32_t>(num)).size());
      }
      return kLabelEncodedBytes;  // label operand: fixed width
    }
    if (const auto sec = secop_by_name(st.mnemonic)) {
      if (!st.operand.empty()) {
        throw AsmError(st.line, st.mnemonic + " takes no operand");
      }
      return static_cast<std::uint32_t>(
          encode(Op::opr, static_cast<std::int32_t>(*sec)).size());
    }
    throw AsmError(st.line, "unknown mnemonic '" + st.mnemonic + "'");
  };

  // `.word` statements self-align to a 4-byte boundary; the padding is
  // inserted before any labels on the statement so a label always names the
  // word itself.
  auto word_pad = [](const Statement& st, std::uint32_t a) -> std::uint32_t {
    return st.is_word ? ((4 - (a & 3u)) & 3u) : 0u;
  };

  Program prog;
  prog.org = org;
  std::uint32_t addr = org;
  for (const Statement& st : stmts) {
    addr += word_pad(st, addr);
    for (const std::string& l : st.labels) {
      if (!prog.symbols.emplace(l, addr).second) {
        throw AsmError(st.line, "duplicate label '" + l + "'");
      }
    }
    addr += statement_size(st, addr);
  }

  // ---- pass 2: emit ----
  auto resolve = [&](const Statement& st) -> std::int32_t {
    std::int64_t num = 0;
    if (parse_int(st.operand, num)) {
      return static_cast<std::int32_t>(num);
    }
    auto it = prog.symbols.find(st.operand);
    if (it == prog.symbols.end()) {
      throw AsmError(st.line, "undefined label '" + st.operand + "'");
    }
    return static_cast<std::int32_t>(it->second);
  };

  addr = org;
  for (const Statement& st : stmts) {
    const std::uint32_t pad = word_pad(st, addr);
    prog.bytes.insert(prog.bytes.end(), pad, 0);
    addr += pad;
    const std::uint32_t size = statement_size(st, addr);
    if (st.mnemonic.empty()) {
      continue;
    }
    if (size > 0) {
      prog.lines.emplace_back(addr, st.line);
    }
    if (st.is_align || st.is_space) {
      prog.bytes.insert(prog.bytes.end(), size, 0);
      addr += size;
      continue;
    }
    if (st.is_word) {
      const std::uint32_t v = static_cast<std::uint32_t>(resolve(st));
      prog.bytes.push_back(static_cast<std::uint8_t>(v & 0xFF));
      prog.bytes.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
      prog.bytes.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
      prog.bytes.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
      addr += 4;
      continue;
    }
    std::int64_t num = 0;
    const bool numeric = parse_int(st.operand, num);
    if (const auto prim = primary_by_name(st.mnemonic)) {
      std::vector<std::uint8_t> enc;
      if (numeric) {
        enc = encode(*prim, static_cast<std::int32_t>(num));
      } else {
        std::int32_t value = resolve(st);
        if (*prim == Op::j || *prim == Op::cj || *prim == Op::call) {
          // Relative to the next instruction.
          value -= static_cast<std::int32_t>(addr + size);
        }
        enc = encode_fixed(*prim, value);
      }
      prog.bytes.insert(prog.bytes.end(), enc.begin(), enc.end());
      addr += static_cast<std::uint32_t>(enc.size());
      continue;
    }
    const auto sec = secop_by_name(st.mnemonic);
    const std::vector<std::uint8_t> enc =
        encode(Op::opr, static_cast<std::int32_t>(*sec));
    prog.bytes.insert(prog.bytes.end(), enc.begin(), enc.end());
    addr += static_cast<std::uint32_t>(enc.size());
  }
  return prog;
}

std::string to_string(Op op) {
  for (const Mnemonic& m : kPrimaries) {
    if (m.op == op) {
      return m.name;
    }
  }
  return op == Op::opr ? "opr" : "?";
}

std::optional<SecOp> secop_by_name(const std::string& name) {
  for (const SecMnemonic& m : kSecondaries) {
    if (name == m.name) {
      return m.op;
    }
  }
  return std::nullopt;
}

std::string to_string(SecOp op) {
  for (const SecMnemonic& m : kSecondaries) {
    if (m.op == op) {
      return m.name;
    }
  }
  return "?";
}

std::string disassemble(const Program& p) {
  std::ostringstream out;
  std::size_t pos = 0;
  while (pos < p.bytes.size()) {
    Decoded d{};
    try {
      d = decode(p.bytes, pos);
    } catch (const std::runtime_error&) {
      break;
    }
    out << std::hex << (p.org + pos) << std::dec << ": ";
    if (d.op == Op::opr) {
      out << to_string(static_cast<SecOp>(d.operand));
    } else {
      out << to_string(d.op) << " " << d.operand;
    }
    out << "\n";
    pos += d.size;
  }
  return out.str();
}

}  // namespace fpst::cp
