#include "cp/cpu.hpp"

#include <utility>

namespace fpst::cp {

namespace {
using sim::Delay;
using sim::SimTime;

std::int32_t s32(std::uint32_t v) { return static_cast<std::int32_t>(v); }
std::uint32_t u32(std::int32_t v) { return static_cast<std::uint32_t>(v); }
}  // namespace

Cpu::Cpu(sim::Simulator& sim, mem::NodeMemory& memory, vpu::VectorUnit& vpu)
    : sim_{&sim}, memory_{&memory}, vpu_{&vpu}, wake_{sim} {}

void Cpu::load(const Program& p) {
  for (std::size_t i = 0; i < p.bytes.size(); ++i) {
    const std::uint32_t a = p.org + static_cast<std::uint32_t>(i);
    if (in_dram(a)) {
      memory_->poke_byte(a, p.bytes[i]);
    } else if (on_chip(a)) {
      onchip_[a - kOnChipBase] = p.bytes[i];
    } else {
      throw std::out_of_range("Cpu::load: image outside RAM");
    }
  }
}

void Cpu::start_process(std::uint32_t entry, std::uint32_t wptr, int pri) {
  // Save the initial Iptr in the workspace, as for any descheduled process.
  sim::SimTime ignored{};
  data_write(wptr - kWsIptr, entry, ignored);
  enqueue(wdesc(wptr, pri));
}

std::uint8_t Cpu::fetch_byte(std::uint32_t addr) {
  if (in_dram(addr)) {
    return memory_->peek_byte(addr);
  }
  if (on_chip(addr)) {
    return onchip_[addr - kOnChipBase];
  }
  fault("instruction fetch outside RAM");
  halted_ = true;
  return static_cast<std::uint8_t>((static_cast<unsigned>(Op::opr) << 4) |
                                   (static_cast<unsigned>(SecOp::halt)));
}

std::uint32_t Cpu::data_read(std::uint32_t addr, SimTime& cost) {
  if (in_dram(addr)) {
    cost += CpuParams::offchip_penalty();
    return memory_->read_word(addr);
  }
  if (on_chip(addr)) {
    const std::uint32_t off = (addr - kOnChipBase) & ~3u;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | onchip_[off + static_cast<std::uint32_t>(i)];
    }
    return v;
  }
  fault("word read from unmapped address");
  return 0;
}

void Cpu::data_write(std::uint32_t addr, std::uint32_t v, SimTime& cost) {
  if (in_dram(addr)) {
    cost += CpuParams::offchip_penalty();
    memory_->write_word(addr, v);
    return;
  }
  if (on_chip(addr)) {
    const std::uint32_t off = (addr - kOnChipBase) & ~3u;
    for (std::uint32_t i = 0; i < 4; ++i) {
      onchip_[off + i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
    }
    return;
  }
  fault("word write to unmapped address");
}

std::uint8_t Cpu::data_read_byte(std::uint32_t addr, SimTime& cost) {
  if (in_dram(addr)) {
    cost += CpuParams::offchip_penalty();
    return memory_->read_byte(addr);
  }
  if (on_chip(addr)) {
    return onchip_[addr - kOnChipBase];
  }
  fault("byte read from unmapped address");
  return 0;
}

void Cpu::data_write_byte(std::uint32_t addr, std::uint8_t v, SimTime& cost) {
  if (in_dram(addr)) {
    cost += CpuParams::offchip_penalty();
    memory_->write_byte(addr, v);
    return;
  }
  if (on_chip(addr)) {
    onchip_[addr - kOnChipBase] = v;
    return;
  }
  fault("byte write to unmapped address");
}

std::uint32_t Cpu::read_word(std::uint32_t addr) {
  SimTime ignored{};
  return data_read(addr, ignored);
}

void Cpu::write_word(std::uint32_t addr, std::uint32_t v) {
  SimTime ignored{};
  data_write(addr, v, ignored);
}

void Cpu::enqueue(std::uint32_t desc) {
  runq_[static_cast<std::size_t>(wdesc_pri(desc))].push_back(desc);
  wake_.notify_all();
}

bool Cpu::pick_next() {
  for (std::size_t pri = 0; pri < 2; ++pri) {
    if (!runq_[pri].empty()) {
      const std::uint32_t desc = runq_[pri].front();
      runq_[pri].pop_front();
      wptr_ = wdesc_wptr(desc);
      cur_pri_ = static_cast<int>(pri);
      SimTime ignored{};
      iptr_ = data_read(wptr_ - kWsIptr, ignored);
      have_process_ = true;
      return true;
    }
  }
  return false;
}

void Cpu::deschedule_current() {
  SimTime ignored{};
  data_write(wptr_ - kWsIptr, iptr_, ignored);
  have_process_ = false;
  if (sink_ != nullptr) {
    sink_->count("deschedules", 1);
  }
}

void Cpu::fault(const std::string& what) {
  error_ = true;
  faults_.push_back(what);
}

std::optional<std::string> Cpu::take_fault() {
  if (faults_.empty()) {
    return std::nullopt;
  }
  std::string f = std::move(faults_.front());
  faults_.pop_front();
  return f;
}

sim::Proc Cpu::run() {
  while (!halted_) {
    if (!have_process_) {
      if (!pick_next()) {
        // Idle: wait for a link completion, timer or VPU interrupt.
        co_await wake_.wait();
        continue;
      }
      co_await Delay{CpuParams::switch_time()};
      continue;
    }
    const std::uint64_t instr_before = instr_count_;
    const SimTime cost = exec_one();
    if (sink_ != nullptr) {
      sink_->count("instr", instr_count_ - instr_before);
      sink_->busy("busy", cost);
    }
    co_await Delay{cost};
    // A runnable high-priority process preempts a low-priority one at the
    // next instruction boundary ("two-level process priority", §II).
    if (have_process_ && cur_pri_ == 1 && !runq_[0].empty()) {
      deschedule_current();
      runq_[1].push_front(wdesc(wptr_, 1));
    }
  }
}

sim::SimTime Cpu::exec_one() {
  SimTime cost{};
  // Fetch, accumulating prefixes. Each prefix byte is itself an
  // instruction and costs one instruction time.
  std::uint32_t oreg = 0;
  Op op;
  std::uint32_t operand;
  for (;;) {
    const std::uint8_t b = fetch_byte(iptr_++);
    cost += CpuParams::instr_time();
    ++instr_count_;
    if (halted_) {
      return cost;
    }
    op = static_cast<Op>(b >> 4);
    const std::uint32_t nib = b & 0xFu;
    if (op == Op::pfix) {
      oreg = (oreg | nib) << 4;
    } else if (op == Op::nfix) {
      oreg = (~(oreg | nib)) << 4;
    } else {
      operand = oreg | nib;
      break;
    }
  }

  switch (op) {
    case Op::j:
      iptr_ += operand;
      break;
    case Op::ldlp:
      push(wptr_ + 4 * operand);
      break;
    case Op::ldnl:
      areg_ = data_read(areg_ + 4 * operand, cost);
      break;
    case Op::ldc:
      push(operand);
      break;
    case Op::ldnlp:
      areg_ += 4 * operand;
      break;
    case Op::ldl:
      push(data_read(wptr_ + 4 * operand, cost));
      break;
    case Op::adc:
      areg_ += operand;
      break;
    case Op::call:
      wptr_ -= 4;
      data_write(wptr_, iptr_, cost);
      iptr_ += operand;
      break;
    case Op::cj:
      if (areg_ == 0) {
        iptr_ += operand;
      } else {
        pop();
      }
      break;
    case Op::ajw:
      wptr_ += 4 * operand;
      break;
    case Op::eqc:
      areg_ = (areg_ == operand) ? 1u : 0u;
      break;
    case Op::stl:
      data_write(wptr_ + 4 * operand, areg_, cost);
      pop();
      break;
    case Op::stnl:
      data_write(areg_ + 4 * operand, breg_, cost);
      pop();
      pop();
      break;
    case Op::opr:
      cost += exec_secondary(static_cast<SecOp>(operand));
      break;
    default:
      fault("bad primary opcode");
      break;
  }
  return cost;
}

sim::SimTime Cpu::exec_secondary(SecOp op) {
  SimTime cost{};
  auto binop = [this](std::uint32_t result) {
    areg_ = result;
    breg_ = creg_;
    creg_ = 0;
  };

  switch (op) {
    case SecOp::rev:
      std::swap(areg_, breg_);
      break;
    case SecOp::add:
      binop(breg_ + areg_);
      break;
    case SecOp::sub:
      binop(breg_ - areg_);
      break;
    case SecOp::mul:
      cost += (CpuParams::kMulDivCostFactor - 1) * CpuParams::instr_time();
      binop(u32(s32(breg_) * s32(areg_)));
      break;
    case SecOp::divi:
    case SecOp::rem:
      cost += (CpuParams::kMulDivCostFactor - 1) * CpuParams::instr_time();
      if (areg_ == 0) {
        fault("division by zero");
        binop(0);
      } else if (op == SecOp::divi) {
        binop(u32(s32(breg_) / s32(areg_)));
      } else {
        binop(u32(s32(breg_) % s32(areg_)));
      }
      break;
    case SecOp::land:
      binop(breg_ & areg_);
      break;
    case SecOp::lor:
      binop(breg_ | areg_);
      break;
    case SecOp::lxor:
      binop(breg_ ^ areg_);
      break;
    case SecOp::lnot:
      areg_ = ~areg_;
      break;
    case SecOp::shl:
      binop(areg_ >= 32 ? 0 : breg_ << areg_);
      break;
    case SecOp::shr:
      binop(areg_ >= 32 ? 0 : breg_ >> areg_);
      break;
    case SecOp::gt:
      binop(s32(breg_) > s32(areg_) ? 1u : 0u);
      break;
    case SecOp::mint:
      push(kNotProcess);
      break;
    case SecOp::ldpi:
      areg_ = iptr_ + areg_;
      break;
    case SecOp::wsub:
      binop(areg_ + 4 * breg_);
      break;
    case SecOp::bsub:
      binop(areg_ + breg_);
      break;
    case SecOp::lb:
      areg_ = data_read_byte(areg_, cost);
      break;
    case SecOp::sb:
      data_write_byte(areg_, static_cast<std::uint8_t>(breg_ & 0xFF), cost);
      pop();
      pop();
      break;
    case SecOp::move: {
      const std::uint32_t count = areg_;
      const std::uint32_t dst = breg_;
      const std::uint32_t src = creg_;
      pop();
      pop();
      pop();
      SimTime ignored{};
      for (std::uint32_t i = 0; i < count; ++i) {
        data_write_byte(dst + i, data_read_byte(src + i, ignored), ignored);
      }
      // Block move streams a word read + word write per 4 bytes.
      const std::uint32_t words = (count + 3) / 4;
      cost += static_cast<std::int64_t>(words) * 2 * CpuParams::word_access();
      break;
    }
    case SecOp::in:
    case SecOp::out:
      cost += do_channel(op);
      break;
    case SecOp::startp: {
      const std::uint32_t child = areg_;
      const std::uint32_t code = breg_;
      pop();
      pop();
      SimTime ignored{};
      data_write(wdesc_wptr(child) - kWsIptr, code, ignored);
      enqueue(child);
      cost += CpuParams::switch_time() / 2;  // queue insertion microcode
      break;
    }
    case SecOp::endp: {
      const std::uint32_t sync = areg_;
      pop();
      std::uint32_t cnt = data_read(sync, cost);
      data_write(sync, --cnt, cost);
      if (cnt == 0) {
        const std::uint32_t parent = data_read(sync + 4, cost);
        const std::uint32_t resume = data_read(sync + 8, cost);
        SimTime ignored{};
        data_write(wdesc_wptr(parent) - kWsIptr, resume, ignored);
        enqueue(parent);
      }
      have_process_ = false;  // this branch terminates either way
      break;
    }
    case SecOp::stopp:
      deschedule_current();
      break;
    case SecOp::runp: {
      const std::uint32_t desc = areg_;
      pop();
      enqueue(desc);
      break;
    }
    case SecOp::ldtimer:
      push(static_cast<std::uint32_t>(sim_->now().ps() /
                                      CpuParams::timer_tick().ps()));
      break;
    case SecOp::tin: {
      const std::uint32_t target = areg_;
      pop();
      const std::uint32_t now_ticks = static_cast<std::uint32_t>(
          sim_->now().ps() / CpuParams::timer_tick().ps());
      if (s32(target - now_ticks) > 0) {
        deschedule_current();
        const std::uint32_t desc = wdesc(wptr_, cur_pri_);
        const SimTime when =
            static_cast<std::int64_t>(target - now_ticks) *
            CpuParams::timer_tick();
        sim_->schedule(when, [this, desc] { enqueue(desc); });
      }
      break;
    }
    case SecOp::ret:
      iptr_ = data_read(wptr_, cost);
      wptr_ += 4;
      break;
    case SecOp::vform:
      cost += do_vform();
      break;
    case SecOp::vwait:
      if (vpu_busy_) {
        deschedule_current();
        vpu_waiters_.push_back(wdesc(wptr_, cur_pri_));
      }
      break;
    case SecOp::gather:
    case SecOp::scatter: {
      const std::uint32_t count = areg_;
      const std::uint32_t vec = breg_;   // contiguous vector base
      const std::uint32_t table = creg_;  // word table of byte addresses
      pop();
      pop();
      pop();
      SimTime ignored{};
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t scattered = data_read(table + 4 * i, ignored);
        const std::uint32_t packed = vec + 8 * i;
        const std::uint32_t from = op == SecOp::gather ? scattered : packed;
        const std::uint32_t to = op == SecOp::gather ? packed : scattered;
        data_write(to, data_read(from, ignored), ignored);
        data_write(to + 4, data_read(from + 4, ignored), ignored);
      }
      // 2 reads + 2 writes per 64-bit element: 1.6 us each (§II Memory).
      cost += static_cast<std::int64_t>(count) * mem::MemParams::gather_move64();
      if (sink_ != nullptr) {
        sink_->count(op == SecOp::gather ? "gather_elems" : "scatter_elems",
                     count);
      }
      break;
    }
    case SecOp::halt:
      halted_ = true;
      break;
    case SecOp::testerr:
      push(error_ ? 1u : 0u);
      error_ = false;
      break;
    default:
      fault("bad secondary opcode");
      break;
  }
  return cost;
}

sim::SimTime Cpu::do_channel(SecOp op) {
  SimTime cost{};
  const std::uint32_t count = areg_;
  const std::uint32_t chan = breg_;
  const std::uint32_t ptr = creg_;
  pop();
  pop();
  pop();

  if (is_hard_chan(chan)) {
    const int port = static_cast<int>((chan >> 3) & 0xF);
    const int sublink = static_cast<int>((chan >> 1) & 0x3);
    const std::uint32_t desc = wdesc(wptr_, cur_pri_);
    deschedule_current();
    if (op == SecOp::out) {
      if (!hooks_.hard_out) {
        fault("hard channel output with no link hook");
        return cost;
      }
      std::vector<std::uint8_t> data(count);
      SimTime ignored{};
      for (std::uint32_t i = 0; i < count; ++i) {
        data[i] = data_read_byte(ptr + i, ignored);
      }
      sim_->spawn([](Cpu* cpu, int pt, int sl, std::vector<std::uint8_t> d,
                     std::uint32_t dsc) -> sim::Proc {
        co_await cpu->hooks_.hard_out(pt, sl, std::move(d));
        cpu->enqueue(dsc);
      }(this, port, sublink, std::move(data), desc));
    } else {
      if (!hooks_.hard_in) {
        fault("hard channel input with no link hook");
        return cost;
      }
      sim_->spawn([](Cpu* cpu, int pt, int sl, std::uint32_t dst,
                     std::uint32_t n, std::uint32_t dsc) -> sim::Proc {
        std::vector<std::uint8_t> buf;
        co_await cpu->hooks_.hard_in(pt, sl, &buf, n);
        SimTime ignored{};
        for (std::uint32_t i = 0; i < n && i < buf.size(); ++i) {
          cpu->data_write_byte(dst + i, buf[i], ignored);
        }
        cpu->enqueue(dsc);
      }(this, port, sublink, ptr, count, desc));
    }
    return cost;
  }

  // Soft channel: a word in RAM holding kNotProcess or the waiting Wdesc.
  const std::uint32_t word = data_read(chan, cost);
  if (word == kNotProcess) {
    // First to arrive: publish ourselves and block.
    data_write(chan, wdesc(wptr_, cur_pri_), cost);
    SimTime ignored{};
    data_write(wptr_ - kWsChanPtr, ptr, ignored);
    data_write(wptr_ - kWsChanCount, count, ignored);
    deschedule_current();
    return cost;
  }
  // Partner is waiting: transfer and wake it.
  const std::uint32_t partner = word;
  SimTime ignored{};
  const std::uint32_t pptr =
      data_read(wdesc_wptr(partner) - kWsChanPtr, ignored);
  const std::uint32_t from = op == SecOp::out ? ptr : pptr;
  const std::uint32_t to = op == SecOp::out ? pptr : ptr;
  for (std::uint32_t i = 0; i < count; ++i) {
    data_write_byte(to + i, data_read_byte(from + i, ignored), ignored);
  }
  cost += static_cast<std::int64_t>((count + 3) / 4) * 2 *
          CpuParams::word_access();
  data_write(chan, kNotProcess, cost);
  enqueue(partner);
  return cost;
}

sim::SimTime Cpu::do_vform() {
  SimTime cost{};
  const std::uint32_t desc_addr = areg_;
  pop();
  if (vpu_busy_) {
    fault("vform while the vector unit is busy");
    return cost;
  }
  vpu::VectorOp op;
  op.form = static_cast<vpu::VectorForm>(data_read(desc_addr + 0, cost));
  op.prec = data_read(desc_addr + 4, cost) == 0 ? vpu::Precision::f32
                                                : vpu::Precision::f64;
  op.n = data_read(desc_addr + 8, cost);
  op.row_x = data_read(desc_addr + 12, cost);
  op.row_y = data_read(desc_addr + 16, cost);
  op.row_z = data_read(desc_addr + 20, cost);
  const std::uint64_t lo = data_read(desc_addr + 24, cost);
  const std::uint64_t hi = data_read(desc_addr + 28, cost);
  op.scalar = fp::T64::from_bits((hi << 32) | lo);

  vpu::OpResult result;
  try {
    result = vpu_->execute(op);
  } catch (const std::invalid_argument&) {
    fault("vform: bad vector descriptor");
    return cost;
  }
  vpu_busy_ = true;
  vform_desc_addr_ = desc_addr;
  // The arithmetic unit "interrupts the controller when a vector operation
  // has completed": publish results and wake waiters after the pipe time.
  sim_->schedule(result.duration, [this, result] {
    const std::uint64_t bits = result.scalar_result.bits();
    SimTime ignored{};
    data_write(vform_desc_addr_ + 32,
               static_cast<std::uint32_t>(bits & 0xFFFF'FFFF), ignored);
    data_write(vform_desc_addr_ + 36, static_cast<std::uint32_t>(bits >> 32),
               ignored);
    data_write(vform_desc_addr_ + 40,
               static_cast<std::uint32_t>(result.reduction_index), ignored);
    const std::uint32_t flags =
        (result.flags.invalid ? 1u : 0u) | (result.flags.overflow ? 2u : 0u) |
        (result.flags.underflow ? 4u : 0u) |
        (result.flags.inexact ? 8u : 0u);
    data_write(vform_desc_addr_ + 44, flags, ignored);
    vpu_busy_ = false;
    while (!vpu_waiters_.empty()) {
      enqueue(vpu_waiters_.front());
      vpu_waiters_.pop_front();
    }
  });
  return cost;
}

}  // namespace fpst::cp
