// Two-pass assembler for TISA (see isa.hpp).
//
// Syntax, one statement per line:
//   ; comment                       anything after ';' is ignored
//   label:                          define `label` at the current address
//   ldc 42                          primary op, numeric operand
//   ldc buffer                      primary op, label operand (absolute)
//   j loop / cj done / call fn      control transfer, label operand
//                                   (assembled relative to the next
//                                   instruction, as the hardware executes)
//   add / halt / out ...            secondary op (opr is implied)
//   .org 0x1000                     set load address (before any code)
//   .word 42 / .word label          emit a literal 32-bit word
//   .space 16                       reserve zeroed bytes
//   .align                          pad to a 4-byte boundary
//
// Numeric operands get the minimal pfix/nfix chain ("variable operand
// sizes", §II); label operands use a fixed six-byte encoding so that two
// passes suffice.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "cp/isa.hpp"

namespace fpst::cp {

class AsmError : public std::runtime_error {
 public:
  AsmError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_{line} {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

struct Program {
  std::uint32_t org = 0;
  std::vector<std::uint8_t> bytes;
  std::map<std::string, std::uint32_t> symbols;
  /// (address, source line) per emitted statement, ascending by address —
  /// lets tools (disassembler, tcheck) map a program offset back to the
  /// assembly line that produced it.
  std::vector<std::pair<std::uint32_t, std::size_t>> lines;

  std::uint32_t entry() const { return org; }
  std::uint32_t symbol(const std::string& name) const;
  /// Source line of the statement covering `addr` (0 when unknown).
  std::size_t line_at(std::uint32_t addr) const;
};

/// Assemble TISA source text.
Program assemble(const std::string& source);

/// Minimal pfix/nfix encoding of (op, operand) — exposed for tests and for
/// the disassembler's round-trip checks.
std::vector<std::uint8_t> encode(Op op, std::int32_t operand);
/// Fixed-width (6-byte) encoding used for label operands.
std::vector<std::uint8_t> encode_fixed(Op op, std::int32_t operand);

/// One decoded instruction (for tracing/debugging).
struct Decoded {
  Op op;
  std::int32_t operand;
  std::uint32_t size;  // bytes consumed including prefixes
};
/// Decode the instruction starting at bytes[pos].
Decoded decode(const std::vector<std::uint8_t>& bytes, std::size_t pos);

/// Human-readable disassembly of a whole program (one instruction per line).
std::string disassemble(const Program& p);

}  // namespace fpst::cp
