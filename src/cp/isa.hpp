// Instruction set of the T Series control processor.
//
// The paper (§II "Control") describes the node controller: a 32-bit CMOS
// microprocessor at 7.5 MIPS with byte addressability, 2 KB of single-cycle
// on-chip RAM, four serial links, a stack-oriented instruction set with
// variable operand sizes, and two-level process priority — i.e. an
// Inmos-transputer-class device programmed in Occam. This module defines
// TISA, a transputer-inspired ISA that reproduces those properties:
//
//   * one-byte instructions: 4-bit opcode, 4-bit operand nibble;
//   * an operand register O built up by pfix/nfix, giving variable operand
//     sizes exactly as the paper says;
//   * a three-register evaluation stack (A, B, C) plus workspace pointer;
//   * secondary operations selected by `opr`, including process control
//     (startp/endp/stopp/runp), CSP channels (in/out) over both memory
//     words (soft channels between processes on one node) and link
//     addresses (hard channels between nodes), timers, and the T Series
//     extension ops that drive the vector unit (vform/vwait).
//
// The memory map (see kOnChipBase etc. below) places the node's 1 MB DRAM
// at address 0, the 2 KB on-chip RAM in its own region, and hard channel
// words in a reserved high region, one per (port, sublink, direction).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace fpst::cp {

/// Primary (direct) 4-bit opcodes.
enum class Op : std::uint8_t {
  j = 0x0,     ///< jump relative to next instruction
  ldlp = 0x1,  ///< push Wptr + 4*O
  pfix = 0x2,  ///< O = (O | nibble) << 4
  ldnl = 0x3,  ///< A = mem[A + 4*O]
  ldc = 0x4,   ///< push O
  ldnlp = 0x5, ///< A = A + 4*O
  nfix = 0x6,  ///< O = (~(O | nibble)) << 4
  ldl = 0x7,   ///< push mem[Wptr + 4*O]
  adc = 0x8,   ///< A = A + O
  call = 0x9,  ///< push return address to new workspace word; jump
  cj = 0xA,    ///< if A == 0 jump else pop
  ajw = 0xB,   ///< Wptr = Wptr + 4*O
  eqc = 0xC,   ///< A = (A == O) ? 1 : 0
  stl = 0xD,   ///< mem[Wptr + 4*O] = A; pop
  stnl = 0xE,  ///< mem[A + 4*O] = B; pop two
  opr = 0xF,   ///< secondary operation O
};

/// Secondary opcodes (operand of opr).
enum class SecOp : std::uint16_t {
  rev = 0x00,    ///< swap A and B
  add = 0x01,    ///< A = B + A; pop
  sub = 0x02,    ///< A = B - A; pop
  mul = 0x03,    ///< A = B * A; pop (slow: kMulDivCostFactor)
  divi = 0x04,   ///< A = B / A; pop (trap on 0)
  rem = 0x05,    ///< A = B % A; pop
  land = 0x06,   ///< A = B & A; pop
  lor = 0x07,    ///< A = B | A; pop
  lxor = 0x08,   ///< A = B ^ A; pop
  lnot = 0x09,   ///< A = ~A
  shl = 0x0A,    ///< A = B << A; pop
  shr = 0x0B,    ///< A = B >> A (logical); pop
  gt = 0x0C,     ///< A = (B > A) signed; pop
  mint = 0x0D,   ///< push 0x80000000 (NotProcess)
  ldpi = 0x0E,   ///< A = Iptr(next) + A  (address of code-relative data)
  wsub = 0x0F,   ///< A = A + 4*B; pop     (word subscript)
  bsub = 0x10,   ///< A = A + B; pop       (byte subscript)
  lb = 0x11,     ///< A = zero-extended byte mem[A]
  sb = 0x12,     ///< byte mem[A] = B; pop two
  move = 0x13,   ///< block move: C=src, B=dst, A=count bytes; pop three
  in = 0x14,     ///< channel input:  C=dst ptr, B=chan addr, A=count; pop 3
  out = 0x15,    ///< channel output: C=src ptr, B=chan addr, A=count; pop 3
  startp = 0x16, ///< spawn process: A=child Wdesc, B=code address; pop two
  endp = 0x17,   ///< end of PAR branch: A=sync block addr
  stopp = 0x18,  ///< deschedule self, do not requeue
  runp = 0x19,   ///< enqueue process descriptor A; pop
  ldtimer = 0x1A,///< push current time (microsecond ticks)
  tin = 0x1B,    ///< wait until timer >= A; pop
  ret = 0x1C,    ///< return: Iptr = mem[Wptr]; Wptr += 4
  vform = 0x1D,  ///< start vector form, A = descriptor address; pop
  vwait = 0x1E,  ///< block until the vector unit raises completion
  gather = 0x1F, ///< gather: C=index table, B=dst vector, A=count64; pop 3
  scatter = 0x20,///< scatter: C=index table, B=src vector, A=count64; pop 3
  halt = 0x21,   ///< stop the whole processor (end of program)
  testerr = 0x22,///< push and clear the error flag
};

/// Memory map.
inline constexpr std::uint32_t kDramBase = 0x0000'0000;     // 1 MB DRAM
inline constexpr std::uint32_t kDramBytes = 1u << 20;
inline constexpr std::uint32_t kOnChipBase = 0x1000'0000;   // 2 KB fast RAM
inline constexpr std::uint32_t kOnChipBytes = 2048;
inline constexpr std::uint32_t kHardChanBase = 0xF000'0000;
/// Hard channel word: kHardChanBase | port<<3 | sublink<<1 | dir.
/// dir 0 = output (this node transmits), 1 = input.
inline constexpr std::uint32_t hard_chan_addr(int port, int sublink, int dir) {
  return kHardChanBase | (static_cast<std::uint32_t>(port) << 3) |
         (static_cast<std::uint32_t>(sublink) << 1) |
         static_cast<std::uint32_t>(dir);
}
inline constexpr bool is_hard_chan(std::uint32_t addr) {
  return (addr & 0xF000'0000) == kHardChanBase;
}

/// The "not a process" marker stored in empty channel words.
inline constexpr std::uint32_t kNotProcess = 0x8000'0000;

/// Descriptor block layout for `vform` (word offsets from the descriptor
/// address, which must lie in DRAM):
///   +0 form (vpu::VectorForm)   +4 precision (0=f32, 1=f64)
///   +8 n                        +12 row_x
///   +16 row_y                   +20 row_z
///   +24 scalar lo32             +28 scalar hi32
///   +32 result lo32 (written)   +36 result hi32 (written)
///   +40 result index (written)  +44 flags (written; bit0 invalid,
///        bit1 overflow, bit2 underflow, bit3 inexact)
inline constexpr std::uint32_t kVformDescWords = 12;

std::string to_string(Op op);
std::optional<SecOp> secop_by_name(const std::string& name);
std::string to_string(SecOp op);

}  // namespace fpst::cp
