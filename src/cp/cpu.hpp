// The control processor model: a TISA interpreter with the paper's timing
// (7.5 MIPS, 400 ns off-chip word access, single-cycle 2 KB on-chip RAM),
// two-level process priority, CSP channels, timers, and the hooks through
// which channel instructions reach the links and `vform` reaches the vector
// unit.
//
// The interpreter runs as a simulation process: it executes one instruction,
// charges its cost to simulated time, and yields. Blocking instructions
// (channel ops with no partner, tin, vwait, empty run queues) deschedule the
// current TISA process exactly as the hardware scheduler would.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cp/assembler.hpp"
#include "cp/isa.hpp"
#include "mem/memory.hpp"
#include "perf/sink.hpp"
#include "sim/proc.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/time.hpp"
#include "vpu/vpu.hpp"

namespace fpst::cp {

/// §II control-processor timing.
struct CpuParams {
  /// 7.5 MIPS instruction rate.
  static constexpr sim::SimTime instr_time() {
    return sim::SimTime::picoseconds(133'333);
  }
  /// Off-chip surcharge so a DRAM word reference costs 400 ns in total
  /// ("3-cycle minimum access time for off-chip memory", and §II Memory:
  /// "the control processor can access a 4-byte word in 400 ns").
  static constexpr sim::SimTime offchip_penalty() {
    return sim::SimTime::picoseconds(266'667);
  }
  static constexpr sim::SimTime word_access() {
    return sim::SimTime::nanoseconds(400);
  }
  /// Multiply/divide are microcoded multi-cycle operations.
  static constexpr int kMulDivCostFactor = 5;
  /// Process switch overhead.
  static constexpr sim::SimTime switch_time() {
    return sim::SimTime::microseconds(1);
  }
  /// Timer resolution: ldtimer/tin tick once per microsecond.
  static constexpr sim::SimTime timer_tick() {
    return sim::SimTime::microseconds(1);
  }
  static constexpr double mips() { return 1.0 / instr_time().us(); }
};

/// Priorities: 0 = high (runs to completion), 1 = low (preemptable).
/// A process descriptor (Wdesc) is Wptr | priority; Wptr is word-aligned.
inline constexpr std::uint32_t wdesc(std::uint32_t wptr, int pri) {
  return wptr | static_cast<std::uint32_t>(pri);
}
inline constexpr std::uint32_t wdesc_wptr(std::uint32_t d) { return d & ~3u; }
inline constexpr int wdesc_pri(std::uint32_t d) {
  return static_cast<int>(d & 1u);
}

/// Workspace slots below Wptr used by the scheduler/channels:
///   Wptr-4  saved Iptr while descheduled
///   Wptr-8  channel data pointer while blocked on a channel
///   Wptr-12 channel byte count while blocked on a channel
inline constexpr std::uint32_t kWsIptr = 4;
inline constexpr std::uint32_t kWsChanPtr = 8;
inline constexpr std::uint32_t kWsChanCount = 12;

class Cpu {
 public:
  /// External services the node wires in. Hard channel hooks transfer raw
  /// bytes over a (port, sublink); the returned Proc completes when the
  /// transfer does.
  struct Hooks {
    std::function<sim::Proc(int port, int sublink,
                            std::vector<std::uint8_t> data)>
        hard_out;
    std::function<sim::Proc(int port, int sublink,
                            std::vector<std::uint8_t>* out, std::size_t n)>
        hard_in;
  };

  Cpu(sim::Simulator& sim, mem::NodeMemory& memory, vpu::VectorUnit& vpu);

  /// Copy a program image into DRAM.
  void load(const Program& p);

  /// Make (entry, wptr, priority) runnable. Call before run().
  void start_process(std::uint32_t entry, std::uint32_t wptr, int pri = 1);

  /// The interpreter loop; spawn on the simulator. Completes at `halt` (or
  /// immediately-deadlocked empty machine).
  sim::Proc run();

  void set_hooks(Hooks h) { hooks_ = std::move(h); }

  /// Perf instrumentation (see perf/sink.hpp); null disables collection.
  void set_sink(perf::PerfSink* sink) { sink_ = sink; }

  // --- state inspection (tests / node services) ---
  bool halted() const { return halted_; }
  bool error_flag() const { return error_; }
  std::uint64_t instructions_executed() const { return instr_count_; }
  std::uint32_t areg() const { return areg_; }
  std::uint32_t read_word(std::uint32_t addr);  // via the memory map
  void write_word(std::uint32_t addr, std::uint32_t v);

  /// Consume the oldest queued diagnostic (bad address, div0...), if any.
  std::optional<std::string> take_fault();

 private:
  struct PendingWake {
    std::uint32_t desc;
  };

  // memory map
  bool on_chip(std::uint32_t addr) const {
    return addr >= kOnChipBase && addr < kOnChipBase + kOnChipBytes;
  }
  bool in_dram(std::uint32_t addr) const { return addr < kDramBytes; }
  std::uint8_t fetch_byte(std::uint32_t addr);
  std::uint32_t data_read(std::uint32_t addr, sim::SimTime& cost);
  void data_write(std::uint32_t addr, std::uint32_t v, sim::SimTime& cost);
  std::uint8_t data_read_byte(std::uint32_t addr, sim::SimTime& cost);
  void data_write_byte(std::uint32_t addr, std::uint8_t v,
                       sim::SimTime& cost);

  // register stack
  void push(std::uint32_t v) {
    creg_ = breg_;
    breg_ = areg_;
    areg_ = v;
  }
  void pop() {
    areg_ = breg_;
    breg_ = creg_;
    creg_ = 0;
  }

  // scheduler
  void enqueue(std::uint32_t desc);
  bool pick_next();          // returns false when nothing is runnable
  void deschedule_current();  // saves Iptr into the workspace
  void fault(const std::string& what);

  // instruction execution; returns the cost of the instruction
  sim::SimTime exec_one();
  sim::SimTime exec_secondary(SecOp op);
  sim::SimTime do_channel(SecOp op);
  sim::SimTime do_vform();

  sim::Simulator* sim_;
  mem::NodeMemory* memory_;
  vpu::VectorUnit* vpu_;
  perf::PerfSink* sink_ = nullptr;
  Hooks hooks_{};
  std::array<std::uint8_t, kOnChipBytes> onchip_{};

  // machine state
  std::uint32_t areg_ = 0;
  std::uint32_t breg_ = 0;
  std::uint32_t creg_ = 0;
  std::uint32_t wptr_ = 0;
  std::uint32_t iptr_ = 0;
  int cur_pri_ = 1;
  bool have_process_ = false;
  bool halted_ = false;
  bool error_ = false;

  std::array<std::deque<std::uint32_t>, 2> runq_{};
  sim::Event wake_;

  // vector unit completion
  bool vpu_busy_ = false;
  std::deque<std::uint32_t> vpu_waiters_;
  std::uint32_t vform_desc_addr_ = 0;

  std::uint64_t instr_count_ = 0;
  std::deque<std::string> faults_;
};

}  // namespace fpst::cp
