// Dump format for a perf collection run, and its loader.
//
// The dump is one JSON document that serves two consumers at once:
//   * Chrome trace viewers: a `traceEvents` array in the trace_event
//     format — one "process" (pid) per node, one "thread" (tid) per
//     component, complete spans as ph:"X" — so the file opens unmodified
//     in chrome://tracing or https://ui.perfetto.dev;
//   * machine consumers (tools/ttrace, the BENCH trajectory, tests): a
//     `counters` object with every track's counters and duration
//     accumulators, a `metadata` object with the machine shape, and an
//     optional caller-supplied `results` object (benches put their
//     headline tables there).
//
// Timestamps in traceEvents are microseconds (the trace_event unit); the
// counters/metadata sections carry exact integer picoseconds (`*_ps`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "perf/counters.hpp"
#include "perf/json.hpp"
#include "sim/time.hpp"

namespace fpst::perf {

/// Serialise a registry (counters + timeline + meta) as a dump document.
/// `wall` is the simulated end time of the run. Attach bench tables etc. by
/// assigning doc["results"] before writing.
json::Value to_json(const CounterRegistry& reg, sim::SimTime wall);

/// Write any JSON document to `path` (pretty-printed). Throws
/// std::runtime_error on I/O failure.
void write_file(const std::string& path, const json::Value& doc);

/// One track's counters as loaded back from a dump.
struct DumpTrack {
  std::uint32_t node = 0;
  std::string component;
  TrackSink::Counts counts;
  TrackSink::Times times;
};

/// One span as loaded back from a dump.
struct DumpSpan {
  std::uint32_t node = 0;
  std::string component;
  sim::SimTime start{};
  sim::SimTime duration{};
  std::string name;
  bool is_instant = false;
};

/// A loaded dump: everything tools/ttrace and the report builder need.
struct Dump {
  CounterRegistry::Meta meta;
  sim::SimTime wall{};
  std::uint64_t spans_dropped = 0;
  std::uint64_t span_capacity = 0;
  std::vector<DumpTrack> tracks;  ///< sorted by (node, component)
  std::vector<DumpSpan> spans;    ///< in recorded order
  json::Value results;            ///< null when the dump carried none

  const DumpTrack* find(std::uint32_t node, std::string_view component) const;
  std::uint64_t value(std::uint32_t node, std::string_view component,
                      std::string_view name) const;
  sim::SimTime time_value(std::uint32_t node, std::string_view component,
                          std::string_view name) const;
};

/// Capture a registry's current state as a Dump without serialising — the
/// in-process path to the analyzers (perf/report, perf/tscope).
Dump snapshot(const CounterRegistry& reg, sim::SimTime wall);

/// Serialise a Dump. from_json(to_json(d)) round-trips losslessly and
/// to_json(from_json(doc)) reproduces `doc` byte for byte.
json::Value to_json(const Dump& d);

/// Rebuild a Dump from a parsed document. Throws std::runtime_error on a
/// document that is not a perf dump.
Dump from_json(const json::Value& doc);

/// Read + parse + rebuild in one step.
Dump load_file(const std::string& path);

}  // namespace fpst::perf
