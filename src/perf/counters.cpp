#include "perf/counters.hpp"

namespace fpst::perf {

void TrackSink::count(std::string_view name, std::uint64_t delta) {
  const auto it = counts_.find(name);
  if (it == counts_.end()) {
    counts_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void TrackSink::busy(std::string_view name, sim::SimTime duration) {
  const auto it = times_.find(name);
  if (it == times_.end()) {
    times_.emplace(std::string(name), duration);
  } else {
    it->second += duration;
  }
}

void TrackSink::span(sim::SimTime start, sim::SimTime duration,
                     std::string name) {
  timeline_->record(Span{id_, start, duration, std::move(name), false});
}

void TrackSink::instant(sim::SimTime at, std::string name) {
  timeline_->record(Span{id_, at, sim::SimTime{}, std::move(name), true});
}

std::uint64_t TrackSink::value(std::string_view name) const {
  const auto it = counts_.find(name);
  return it == counts_.end() ? 0 : it->second;
}

sim::SimTime TrackSink::time_value(std::string_view name) const {
  const auto it = times_.find(name);
  return it == times_.end() ? sim::SimTime{} : it->second;
}

TrackSink& CounterRegistry::track(std::uint32_t node,
                                  std::string_view component) {
  const auto key = std::make_pair(node, std::string(component));
  const auto it = tracks_.find(key);
  if (it != tracks_.end()) {
    return *it->second;
  }
  auto sink = std::unique_ptr<TrackSink>(
      new TrackSink(node, key.second, next_id_++, timeline_for(node)));
  TrackSink& ref = *sink;
  tracks_.emplace(key, std::move(sink));
  return ref;
}

Timeline* CounterRegistry::timeline_for(std::uint32_t node) {
  if (shard_timelines_.empty()) {
    return &timeline_;
  }
  const std::size_t s = node < shard_of_node_.size()
                            ? static_cast<std::size_t>(shard_of_node_[node])
                            : 0;
  return shard_timelines_.at(s).get();
}

void CounterRegistry::shard_spans(std::vector<int> shard_of_node,
                                  int shards) {
  shard_of_node_ = std::move(shard_of_node);
  shard_timelines_.clear();
  shard_timelines_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    auto tl = std::make_unique<Timeline>(timeline_.capacity());
    tl->set_enabled(timeline_.enabled());
    shard_timelines_.push_back(std::move(tl));
  }
  for (auto& [key, sink] : tracks_) {
    sink->timeline_ = timeline_for(key.first);
  }
}

const TrackSink* CounterRegistry::find(std::uint32_t node,
                                       std::string_view component) const {
  const auto it = tracks_.find(std::make_pair(node, std::string(component)));
  return it == tracks_.end() ? nullptr : it->second.get();
}

std::uint64_t CounterRegistry::value(std::uint32_t node,
                                     std::string_view component,
                                     std::string_view name) const {
  const TrackSink* t = find(node, component);
  return t == nullptr ? 0 : t->value(name);
}

sim::SimTime CounterRegistry::time_value(std::uint32_t node,
                                         std::string_view component,
                                         std::string_view name) const {
  const TrackSink* t = find(node, component);
  return t == nullptr ? sim::SimTime{} : t->time_value(name);
}

std::uint64_t CounterRegistry::total(std::string_view component,
                                     std::string_view name) const {
  std::uint64_t sum = 0;
  for (const auto& [key, sink] : tracks_) {
    if (key.second == component) {
      sum += sink->value(name);
    }
  }
  return sum;
}

sim::SimTime CounterRegistry::total_time(std::string_view component,
                                         std::string_view name) const {
  sim::SimTime sum{};
  for (const auto& [key, sink] : tracks_) {
    if (key.second == component) {
      sum += sink->time_value(name);
    }
  }
  return sum;
}

}  // namespace fpst::perf
