// The instrumentation seam between the hardware models and the perf
// subsystem (DESIGN.md §4.2).
//
// Every component that reports counters or timeline spans — the vector
// unit, node memory, link engines, control processor, node, occam runtime —
// holds at most a `PerfSink*`, null by default. A null sink is the
// "collection disabled" state: each instrumentation point is then a single
// pointer test, so uninstrumented runs pay (almost) nothing and the
// substrate libraries depend only on this header, never on the registry,
// the timeline ring or the exporters.
//
// A sink is scoped: the CounterRegistry hands out one per (node, component)
// track, so call sites pass bare counter names ("flops", "bytes") and the
// machinery supplies the identity.
//
// Counter-name conventions (consumed by perf/report.cpp and tools/ttrace):
//   vpu     counts: ops, flops, adder_results, mul_results, bank_conflicts
//           times:  busy, busy.<FORM>          (per vector form)
//   mem     counts: row_loads, row_stores, word_reads, word_writes
//   cp      counts: instr, deschedules, gather_elems, scatter_elems
//           times:  busy
//   link<p> counts: bytes, payload_bytes, packets, acks, dma_starts
//           times:  busy, busy.sublink<k>
//   occam   counts: msgs_sent, msgs_recv, pkts_forwarded
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace fpst::perf {

class PerfSink {
 public:
  PerfSink() = default;
  PerfSink(const PerfSink&) = delete;
  PerfSink& operator=(const PerfSink&) = delete;
  virtual ~PerfSink() = default;

  /// Add to a named monotonically increasing counter.
  virtual void count(std::string_view name, std::uint64_t delta) = 0;
  /// Add to a named duration accumulator.
  virtual void busy(std::string_view name, sim::SimTime duration) = 0;
  /// Record a timeline span [start, start + duration) on this track.
  virtual void span(sim::SimTime start, sim::SimTime duration,
                    std::string name) = 0;
  /// Record an instantaneous timeline marker on this track.
  virtual void instant(sim::SimTime at, std::string name) = 0;
};

}  // namespace fpst::perf
