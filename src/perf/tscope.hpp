// tscope: cross-node message observability for the hypercube fabric.
//
// The transport layers (occam runtime, TSeries::send_dim, link::Link) tag
// every message with a monotonically increasing trace id and record one
// timeline event per lifecycle transition:
//
//   occam  track of src:   instant  "m<id> inj ->n<dst> t<tag> <bytes>B"
//   link<p> track of hop:  instant  "m<id> enq"          (queued for port)
//   link<p> track of hop:  span     "m<id> tx->node<dst> <bytes>B"
//                                   (DMA start; duration = 5 us startup
//                                    + wire time at 0.5 MB/s)
//   occam  track of via:   instant  "m<id> fwd"          (store-and-forward)
//   occam  track of dst:   instant  "m<id> dlv <-n<src>"
//
// This header is the stitcher: it joins those events (from a loaded Dump or
// an in-process snapshot) into per-message *flight records* — source, dest,
// bytes, hop-by-hop queueing vs wire time, hops taken vs the e-cube minimum
// — and derives the three analyses the paper's Figures 2-3 call for:
// latency/queue histograms with p50/p90/p99, the per-cube-edge congestion
// heatmap, and the critical path through the message-causality DAG.
//
// perf sits below net in the layering, so the e-cube *minimum* here is pure
// bit arithmetic (popcount of src XOR dst); the comparison against
// net/hypercube's static congestion prediction lives in tools/tscope, which
// links both libraries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "perf/chrome_trace.hpp"
#include "perf/histogram.hpp"
#include "perf/json.hpp"
#include "sim/time.hpp"

namespace fpst::perf {

/// One store-and-forward hop of a message flight.
struct FlightHop {
  std::uint32_t from = 0;       ///< transmitting node
  std::uint32_t to = 0;         ///< receiving node (next transmitter or dst)
  sim::SimTime enq{};           ///< entered the node's link-send layer
  sim::SimTime dma_start{};     ///< wire acquired; 5 us DMA startup begins
  sim::SimTime queue{};         ///< dma_start - enq (port + direction wait)
  sim::SimTime transfer{};      ///< DMA startup + wire time
};

/// One message's life, stitched across nodes.
struct Flight {
  std::uint32_t id = 0;         ///< trace id (monotonic at injection)
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t tag = 0;
  std::uint64_t bytes = 0;      ///< wire payload bytes
  sim::SimTime inject{};
  sim::SimTime deliver{};
  std::vector<FlightHop> hops;  ///< in traversal order; empty for self-sends
  int ecube_min = 0;            ///< popcount(src ^ dst)
  bool complete = false;        ///< all lifecycle events were present

  sim::SimTime latency() const { return deliver - inject; }
};

/// Crossings of one undirected cube edge (a < b).
struct EdgeLoad {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t crossings = 0;
};

/// Per-node message activity (the ttrace --summary table).
struct NodeMsgStats {
  std::uint32_t node = 0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t hops_sent = 0;  ///< total hops over messages this node sent

  double mean_hops() const {
    return sent == 0 ? 0.0
                     : static_cast<double>(hops_sent) /
                           static_cast<double>(sent);
  }
};

/// The longest deliver -> send dependency chain in the run.
struct CriticalPath {
  sim::SimTime length{};              ///< sum of flight latencies on the chain
  double wall_fraction = 0.0;         ///< length / wall
  std::vector<std::uint32_t> chain;   ///< flight ids, in injection order
};

struct MessageReport {
  CounterRegistry::Meta meta;
  sim::SimTime wall{};
  std::uint64_t spans_dropped = 0;
  std::uint64_t incomplete = 0;       ///< flights missing lifecycle events
  std::vector<Flight> flights;        ///< complete flights, sorted by id
  std::vector<EdgeLoad> edges;        ///< observed crossings, sorted (a, b)
  std::vector<NodeMsgStats> per_node; ///< sorted by node
  Histogram latency_ps;               ///< end-to-end, per message
  Histogram queue_ps;                 ///< per hop
  Histogram transfer_ps;              ///< per hop (DMA startup + wire)
  int max_hops = 0;
  std::uint64_t total_hops = 0;
  bool ecube_minimal = true;          ///< every flight took popcount hops
  CriticalPath critical;
};

/// Stitch a dump's message-lifecycle events into flight records and build
/// the full message report. Dumps without message events yield an empty
/// (zero-message) report.
MessageReport analyze_messages(const Dump& dump);

/// Serialise the report (flight records, histograms with p50/p90/p99, edge
/// heatmap, per-node table, critical path) as a deterministic JSON object —
/// the schema is documented in DESIGN.md section 4.3.
json::Value messages_to_json(const MessageReport& r);

/// Serialise an edge-load table as the `edges` array of that schema
/// ([{a, b, crossings}, ...]). Shared by tools/tscope and tools/tcheck so
/// the static prediction and the measurement diff structurally.
json::Value edges_to_json(const std::vector<EdgeLoad>& edges);

/// Human-readable report: counts, latency percentiles, queueing vs wire
/// breakdown, the paper's Figure 2/3 constants next to the measurements,
/// and the critical path.
std::string render_messages(const MessageReport& r);

/// The per-node message table (ttrace --summary).
std::string render_message_summary(const MessageReport& r);

/// The per-edge congestion table. `predicted` may be empty (no comparison
/// column) or must be sorted by (a, b) like `r.edges`.
std::string render_edges(const MessageReport& r,
                         const std::vector<EdgeLoad>& predicted);

}  // namespace fpst::perf
