#include "perf/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace fpst::perf {

namespace {

// trace_event timestamps are microseconds; SimTime is picoseconds. A double
// keeps sub-microsecond resolution (Perfetto accepts fractional ts/dur).
double to_us(sim::SimTime t) { return t.us(); }

std::string track_key(std::uint32_t node, const std::string& component) {
  return "node" + std::to_string(node) + "." + component;
}

json::Value metadata_event(const char* name, std::int64_t pid, std::int64_t tid,
                           const std::string& value) {
  json::Value e = json::Value::object();
  e["ph"] = json::Value::string("M");
  e["name"] = json::Value::string(name);
  e["pid"] = json::Value::integer(pid);
  e["tid"] = json::Value::integer(tid);
  json::Value args = json::Value::object();
  args["name"] = json::Value::string(value);
  e["args"] = std::move(args);
  return e;
}

}  // namespace

Dump snapshot(const CounterRegistry& reg, sim::SimTime wall) {
  Dump d;
  d.meta = reg.meta();
  d.wall = wall;
  d.span_capacity = reg.timeline().capacity();
  if (reg.span_sharded()) {
    d.spans_dropped = 0;
    for (const auto& tl : reg.shard_timelines()) {
      d.spans_dropped += tl->dropped();
    }
  } else {
    d.spans_dropped = reg.timeline().dropped();
  }
  // Track-id -> (node, component) so timeline spans regain their identity.
  std::map<std::uint32_t, std::pair<std::uint32_t, const std::string*>> by_id;
  for (const auto& [key, sink] : reg.tracks()) {
    by_id.emplace(sink->track_id(),
                  std::make_pair(key.first, &key.second));
    DumpTrack t;
    t.node = key.first;
    t.component = key.second;
    t.counts = sink->counts();
    t.times = sink->times();
    d.tracks.push_back(std::move(t));
  }
  const auto emit = [&](const Span& s) {
    const auto it = by_id.find(s.track);
    if (it == by_id.end()) {
      return;  // track was never registered (cannot happen via TrackSink)
    }
    DumpSpan out;
    out.node = it->second.first;
    out.component = *it->second.second;
    out.start = s.start;
    out.duration = s.duration;
    out.name = s.name;
    out.is_instant = s.is_instant;
    d.spans.push_back(std::move(out));
  };
  if (reg.span_sharded()) {
    // Merge the per-shard timelines into one deterministic order: by start
    // time, ties broken by shard number (the stable sort sees the spans
    // shard-major) and then per-shard emission order. Host thread timing
    // never influences the result — each shard's ring is already in that
    // shard's deterministic execution order.
    std::vector<const Span*> merged;
    for (const auto& tl : reg.shard_timelines()) {
      for (std::size_t i = 0; i < tl->size(); ++i) {
        merged.push_back(&(*tl)[i]);
      }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Span* a, const Span* b) {
                       return a->start < b->start;
                     });
    for (const Span* s : merged) {
      emit(*s);
    }
  } else {
    const Timeline& tl = reg.timeline();
    for (std::size_t i = 0; i < tl.size(); ++i) {
      emit(tl[i]);
    }
  }
  return d;
}

json::Value to_json(const CounterRegistry& reg, sim::SimTime wall) {
  return to_json(snapshot(reg, wall));
}

json::Value to_json(const Dump& d) {
  json::Value doc = json::Value::object();

  // --- metadata -----------------------------------------------------------
  json::Value md = json::Value::object();
  md["tool"] = json::Value::string("tperf");
  md["dimension"] = json::Value::integer(d.meta.dimension);
  md["nodes"] = json::Value::integer(static_cast<std::int64_t>(d.meta.nodes));
  md["workload"] = json::Value::string(d.meta.workload);
  md["wall_ps"] = json::Value::integer(d.wall.ps());
  md["spans_dropped"] =
      json::Value::integer(static_cast<std::int64_t>(d.spans_dropped));
  md["span_capacity"] =
      json::Value::integer(static_cast<std::int64_t>(d.span_capacity));
  doc["metadata"] = std::move(md);

  // --- counters + (node, component) -> (pid, tid) map ----------------------
  // tid is the component's rank within its node (deterministic: tracks are
  // sorted by (node, component)), so each node's threads sort stably in the
  // viewer.
  std::map<std::pair<std::uint32_t, std::string>,
           std::pair<std::int64_t, std::int64_t>>
      track_ref;
  std::map<std::uint32_t, std::int64_t> next_tid;

  json::Value counters = json::Value::object();
  json::Value events = json::Value::array();
  for (const DumpTrack& t : d.tracks) {
    const std::int64_t pid = static_cast<std::int64_t>(t.node);
    const std::int64_t tid = next_tid[t.node]++;
    track_ref.emplace(std::make_pair(t.node, t.component),
                      std::make_pair(pid, tid));

    if (tid == 0) {
      events.append(metadata_event("process_name", pid, 0,
                                   "node" + std::to_string(t.node)));
    }
    events.append(metadata_event("thread_name", pid, tid, t.component));

    json::Value track = json::Value::object();
    json::Value counts = json::Value::object();
    for (const auto& [name, v] : t.counts) {
      counts[name] = json::Value::integer(static_cast<std::int64_t>(v));
    }
    json::Value busy = json::Value::object();
    for (const auto& [name, tm] : t.times) {
      busy[name] = json::Value::integer(tm.ps());
    }
    track["counts"] = std::move(counts);
    track["busy_ps"] = std::move(busy);
    counters[track_key(t.node, t.component)] = std::move(track);
  }
  doc["counters"] = std::move(counters);

  // --- spans --------------------------------------------------------------
  for (const DumpSpan& s : d.spans) {
    const auto it = track_ref.find(std::make_pair(s.node, s.component));
    if (it == track_ref.end()) {
      continue;  // span without a counter track (cannot happen via TrackSink)
    }
    json::Value e = json::Value::object();
    e["name"] = json::Value::string(s.name);
    e["pid"] = json::Value::integer(it->second.first);
    e["tid"] = json::Value::integer(it->second.second);
    e["ts"] = json::Value::number(to_us(s.start));
    if (s.is_instant) {
      e["ph"] = json::Value::string("i");
      e["s"] = json::Value::string("t");  // thread-scoped instant
    } else {
      e["ph"] = json::Value::string("X");
      e["dur"] = json::Value::number(to_us(s.duration));
    }
    // Exact picosecond times ride along for lossless reload.
    json::Value args = json::Value::object();
    args["start_ps"] = json::Value::integer(s.start.ps());
    args["dur_ps"] = json::Value::integer(s.duration.ps());
    e["args"] = std::move(args);
    events.append(std::move(e));
  }
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = json::Value::string("ns");
  if (!d.results.is_null()) {
    doc["results"] = d.results;
  }
  return doc;
}

void write_file(const std::string& path, const json::Value& doc) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("perf: cannot open " + path + " for writing");
  }
  out << doc.dump(2) << '\n';
  if (!out) {
    throw std::runtime_error("perf: write to " + path + " failed");
  }
}

const DumpTrack* Dump::find(std::uint32_t node,
                            std::string_view component) const {
  for (const DumpTrack& t : tracks) {
    if (t.node == node && t.component == component) {
      return &t;
    }
  }
  return nullptr;
}

std::uint64_t Dump::value(std::uint32_t node, std::string_view component,
                          std::string_view name) const {
  const DumpTrack* t = find(node, component);
  if (t == nullptr) {
    return 0;
  }
  const auto it = t->counts.find(name);
  return it == t->counts.end() ? 0 : it->second;
}

sim::SimTime Dump::time_value(std::uint32_t node, std::string_view component,
                              std::string_view name) const {
  const DumpTrack* t = find(node, component);
  if (t == nullptr) {
    return sim::SimTime{};
  }
  const auto it = t->times.find(name);
  return it == t->times.end() ? sim::SimTime{} : it->second;
}

namespace {

[[noreturn]] void bad_dump(const std::string& what) {
  throw std::runtime_error("perf: not a tperf dump: " + what);
}

const json::Value& require(const json::Value& obj, std::string_view key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) {
    bad_dump("missing key '" + std::string(key) + "'");
  }
  return *v;
}

}  // namespace

Dump from_json(const json::Value& doc) {
  Dump d;

  const json::Value& md = require(doc, "metadata");
  if (const json::Value* tool = md.find("tool");
      tool == nullptr || tool->as_string() != "tperf") {
    bad_dump("metadata.tool != \"tperf\"");
  }
  d.meta.dimension = static_cast<int>(require(md, "dimension").as_int());
  d.meta.nodes = static_cast<std::uint32_t>(require(md, "nodes").as_int());
  d.meta.workload = require(md, "workload").as_string();
  d.wall = sim::SimTime::picoseconds(require(md, "wall_ps").as_int());
  d.spans_dropped =
      static_cast<std::uint64_t>(require(md, "spans_dropped").as_int());
  d.span_capacity =
      static_cast<std::uint64_t>(require(md, "span_capacity").as_int());

  // --- counters -----------------------------------------------------------
  for (const auto& [key, track] : require(doc, "counters").as_object()) {
    // Keys look like "node<k>.<component>".
    const std::size_t dot = key.find('.');
    if (key.rfind("node", 0) != 0 || dot == std::string::npos) {
      bad_dump("bad counter track key '" + key + "'");
    }
    DumpTrack t;
    t.node = static_cast<std::uint32_t>(
        std::stoul(key.substr(4, dot - 4)));
    t.component = key.substr(dot + 1);
    for (const auto& [name, v] : require(track, "counts").as_object()) {
      t.counts.emplace(name, static_cast<std::uint64_t>(v.as_int()));
    }
    for (const auto& [name, v] : require(track, "busy_ps").as_object()) {
      t.times.emplace(name, sim::SimTime::picoseconds(v.as_int()));
    }
    d.tracks.push_back(std::move(t));
  }
  std::sort(d.tracks.begin(), d.tracks.end(),
            [](const DumpTrack& a, const DumpTrack& b) {
              return std::tie(a.node, a.component) <
                     std::tie(b.node, b.component);
            });

  // --- spans: rebuild identity from the thread_name metadata events --------
  std::map<std::pair<std::int64_t, std::int64_t>, std::string> thread_names;
  const json::Value& events = require(doc, "traceEvents");
  for (const json::Value& e : events.as_array()) {
    if (const json::Value* ph = e.find("ph");
        ph != nullptr && ph->as_string() == "M" &&
        require(e, "name").as_string() == "thread_name") {
      thread_names[{require(e, "pid").as_int(), require(e, "tid").as_int()}] =
          require(require(e, "args"), "name").as_string();
    }
  }
  for (const json::Value& e : events.as_array()) {
    const std::string& ph = require(e, "ph").as_string();
    if (ph != "X" && ph != "i") {
      continue;
    }
    DumpSpan s;
    const std::int64_t pid = require(e, "pid").as_int();
    const std::int64_t tid = require(e, "tid").as_int();
    s.node = static_cast<std::uint32_t>(pid);
    const auto it = thread_names.find({pid, tid});
    if (it == thread_names.end()) {
      bad_dump("span references unnamed thread");
    }
    s.component = it->second;
    s.name = require(e, "name").as_string();
    s.is_instant = ph == "i";
    const json::Value& args = require(e, "args");
    s.start = sim::SimTime::picoseconds(require(args, "start_ps").as_int());
    s.duration = sim::SimTime::picoseconds(require(args, "dur_ps").as_int());
    d.spans.push_back(std::move(s));
  }

  if (const json::Value* results = doc.find("results")) {
    d.results = *results;
  }
  return d;
}

Dump load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("perf: cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_json(json::Value::parse(ss.str()));
}

}  // namespace fpst::perf
