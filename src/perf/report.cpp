#include "perf/report.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

namespace fpst::perf {

namespace {

using Interval = std::pair<std::int64_t, std::int64_t>;  // [start, end) ps

/// Merge overlapping/adjacent intervals in place; returns total length.
std::int64_t merge(std::vector<Interval>& iv) {
  std::sort(iv.begin(), iv.end());
  std::vector<Interval> out;
  for (const Interval& i : iv) {
    if (i.second <= i.first) {
      continue;
    }
    if (!out.empty() && i.first <= out.back().second) {
      out.back().second = std::max(out.back().second, i.second);
    } else {
      out.push_back(i);
    }
  }
  iv = std::move(out);
  std::int64_t total = 0;
  for (const Interval& i : iv) {
    total += i.second - i.first;
  }
  return total;
}

/// Total length of the intersection of two merged interval lists.
std::int64_t intersect_length(const std::vector<Interval>& a,
                              const std::vector<Interval>& b) {
  std::int64_t total = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const std::int64_t lo = std::max(a[i].first, b[j].first);
    const std::int64_t hi = std::min(a[i].second, b[j].second);
    if (lo < hi) {
      total += hi - lo;
    }
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

bool is_link_component(const std::string& c) {
  return c.rfind("link", 0) == 0;
}

double safe_div(double num, double den) {
  return den == 0.0 ? 0.0 : num / den;
}

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

MachineReport analyze(const Dump& dump) {
  MachineReport r;
  r.meta = dump.meta;
  r.wall = dump.wall;
  r.spans_dropped = dump.spans_dropped;

  const double wall_us = dump.wall.us();

  // Span intervals per node, split into the VPU set and the "other
  // component" set (CP, links, occam) for overlap analysis.
  std::map<std::uint32_t, std::vector<Interval>> vpu_iv;
  std::map<std::uint32_t, std::vector<Interval>> other_iv;
  for (const DumpSpan& s : dump.spans) {
    if (s.is_instant) {
      continue;
    }
    auto& bucket = s.component == "vpu" ? vpu_iv[s.node] : other_iv[s.node];
    bucket.emplace_back(s.start.ps(), (s.start + s.duration).ps());
  }

  // One NodeReport per node that has any track; plus the link table.
  std::map<std::uint32_t, NodeReport> nodes;
  sim::SimTime total_vpu_busy{};
  std::uint64_t total_gather = 0;
  std::uint64_t total_payload = 0;
  for (const DumpTrack& t : dump.tracks) {
    NodeReport& n = nodes[t.node];
    n.node = t.node;
    if (t.component == "vpu") {
      n.flops = dump.value(t.node, "vpu", "flops");
      n.vector_ops = dump.value(t.node, "vpu", "ops");
      n.bank_conflicts = dump.value(t.node, "vpu", "bank_conflicts");
      n.vpu_busy = dump.time_value(t.node, "vpu", "busy");
      total_vpu_busy += n.vpu_busy;
    } else if (t.component == "cp") {
      n.cp_instr = dump.value(t.node, "cp", "instr");
      n.gather_elems = dump.value(t.node, "cp", "gather_elems");
      n.scatter_elems = dump.value(t.node, "cp", "scatter_elems");
      n.cp_busy = dump.time_value(t.node, "cp", "busy");
      total_gather += n.gather_elems;
    } else if (is_link_component(t.component)) {
      LinkReport l;
      l.node = t.node;
      l.component = t.component;
      const auto bytes = t.counts.find("bytes");
      l.wire_bytes = bytes == t.counts.end() ? 0 : bytes->second;
      const auto payload = t.counts.find("payload_bytes");
      l.payload_bytes = payload == t.counts.end() ? 0 : payload->second;
      const auto dma = t.counts.find("dma_starts");
      l.dma_starts = dma == t.counts.end() ? 0 : dma->second;
      const auto busy = t.times.find("busy");
      l.busy = busy == t.times.end() ? sim::SimTime{} : busy->second;
      l.saturation = safe_div(static_cast<double>(l.wire_bytes),
                              kLinkBytesPerSec * dump.wall.sec());
      n.link_bytes += l.wire_bytes;
      n.link_busy += l.busy;
      total_payload += l.payload_bytes;
      r.links.push_back(std::move(l));
    }
  }

  for (auto& [id, n] : nodes) {
    n.vpu_util = safe_div(n.vpu_busy.us(), wall_us);
    n.cp_util = safe_div(n.cp_busy.us(), wall_us);
    n.mflops = safe_div(static_cast<double>(n.flops), wall_us);
    n.active_mflops = safe_div(static_cast<double>(n.flops), n.vpu_busy.us());
    auto vi = vpu_iv.find(id);
    auto oi = other_iv.find(id);
    if (vi != vpu_iv.end() && oi != other_iv.end()) {
      merge(vi->second);
      merge(oi->second);
      n.overlap_frac = safe_div(
          static_cast<double>(intersect_length(vi->second, oi->second)),
          static_cast<double>(dump.wall.ps()));
    }
    n.has_spans = vi != vpu_iv.end() || oi != other_iv.end();
    r.total_flops += n.flops;
    r.nodes.push_back(n);
  }

  r.aggregate_mflops = safe_div(static_cast<double>(r.total_flops), wall_us);
  r.aggregate_peak_mflops =
      kPeakMflopsPerNode * static_cast<double>(r.meta.nodes);
  r.active_mflops =
      safe_div(static_cast<double>(r.total_flops), total_vpu_busy.us());
  r.peak_fraction = safe_div(r.aggregate_mflops, r.aggregate_peak_mflops);

  r.gather_balance.rule = "flops per gathered element";
  r.gather_balance.required = kMinFlopsPerGatheredElement;
  r.gather_balance.applicable = total_gather > 0;
  r.gather_balance.measured = safe_div(static_cast<double>(r.total_flops),
                                       static_cast<double>(total_gather));
  r.gather_balance.ok = !r.gather_balance.applicable ||
                        r.gather_balance.measured >= r.gather_balance.required;

  const double link_words =
      static_cast<double>(total_payload) / kLinkWordBytes;
  r.link_balance.rule = "flops per link word";
  r.link_balance.required = kMinFlopsPerLinkWord;
  r.link_balance.applicable = total_payload > 0;
  r.link_balance.measured =
      safe_div(static_cast<double>(r.total_flops), link_words);
  r.link_balance.ok = !r.link_balance.applicable ||
                      r.link_balance.measured >= r.link_balance.required;
  return r;
}

std::string render(const MachineReport& r) {
  std::string out;
  appendf(out, "tperf report — %s\n",
          r.meta.workload.empty() ? "(unlabelled run)"
                                  : r.meta.workload.c_str());
  appendf(out, "machine: %d-cube, %u node%s, wall %s\n", r.meta.dimension,
          r.meta.nodes, r.meta.nodes == 1 ? "" : "s",
          r.wall.to_string().c_str());
  if (r.spans_dropped > 0) {
    appendf(out,
            "note: %llu spans were dropped (ring full); overlap figures "
            "cover the surviving window only\n",
            static_cast<unsigned long long>(r.spans_dropped));
  }
  appendf(out,
          "aggregate: %.3f MFLOPS of %.0f peak (%.1f%%), "
          "vpu-active %.3f MFLOPS\n",
          r.aggregate_mflops, r.aggregate_peak_mflops,
          100.0 * r.peak_fraction, r.active_mflops);

  appendf(out, "\n%-6s %10s %8s %8s %9s %9s %9s %10s\n", "node", "flops",
          "vpu%", "cp%", "overlap%", "MFLOPS", "active", "link B");
  for (const NodeReport& n : r.nodes) {
    appendf(out, "%-6u %10llu %7.1f%% %7.1f%% %8.1f%% %9.3f %9.3f %10llu\n",
            n.node, static_cast<unsigned long long>(n.flops),
            100.0 * n.vpu_util, 100.0 * n.cp_util,
            n.has_spans ? 100.0 * n.overlap_frac : 0.0, n.mflops,
            n.active_mflops, static_cast<unsigned long long>(n.link_bytes));
  }

  if (!r.links.empty()) {
    appendf(out, "\n%-6s %-8s %10s %12s %6s %8s\n", "node", "link", "wire B",
            "payload B", "DMAs", "sat%");
    for (const LinkReport& l : r.links) {
      appendf(out, "%-6u %-8s %10llu %12llu %6llu %7.1f%%\n", l.node,
              l.component.c_str(),
              static_cast<unsigned long long>(l.wire_bytes),
              static_cast<unsigned long long>(l.payload_bytes),
              static_cast<unsigned long long>(l.dma_starts),
              100.0 * l.saturation);
    }
  }

  appendf(out, "\nbalance (paper rule 1 : 13 : 130):\n");
  for (const BalanceCheck* c : {&r.gather_balance, &r.link_balance}) {
    if (!c->applicable) {
      appendf(out, "  %-28s n/a (no traffic)\n", c->rule.c_str());
    } else {
      appendf(out, "  %-28s %8.2f >= %.0f  %s\n", c->rule.c_str(),
              c->measured, c->required, c->ok ? "OK" : "VIOLATION");
    }
  }
  return out;
}

}  // namespace fpst::perf
