// Minimal JSON document model for the perf subsystem: enough to write
// Chrome trace_event dumps and bench result files, and to load them back
// in tools/ttrace and the tests — no third-party dependency.
//
// Objects keep their keys in sorted order (std::map), so serialisation is
// deterministic: two identical runs produce byte-identical dumps, which the
// perf tests rely on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fpst::perf::json {

class Value {
 public:
  enum class Kind : std::uint8_t {
    null,
    boolean,
    integer,
    number,
    string,
    array,
    object,
  };

  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() = default;  // null
  static Value boolean(bool b);
  static Value integer(std::int64_t i);
  static Value number(double d);
  static Value string(std::string s);
  static Value array();
  static Value object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::null; }
  bool is_object() const { return kind_ == Kind::object; }
  bool is_array() const { return kind_ == Kind::array; }
  bool is_string() const { return kind_ == Kind::string; }
  bool is_number() const {
    return kind_ == Kind::integer || kind_ == Kind::number;
  }

  bool as_bool() const;
  /// Integer value (a double is truncated). Throws unless is_number().
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object member access; creates the member (null) on a mutable object.
  Value& operator[](const std::string& key);
  /// Member lookup; returns nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  /// push_back onto an array value.
  void append(Value v);

  /// Serialise. `indent` < 0 emits compact single-line JSON; >= 0 pretty-
  /// prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document. Throws std::runtime_error with an
  /// offset-annotated message on malformed input. Duplicate object keys
  /// keep the first occurrence (std::map::emplace semantics).
  static Value parse(std::string_view text);

  /// Like parse(), but rejects duplicate object keys with a
  /// std::runtime_error naming the offending key. The serve layer's
  /// canonical JobSpec path uses this: a request whose config silently
  /// collapsed two spellings of one key must be a typed bad-request, not
  /// a different content hash.
  static Value parse_strict(std::string_view text);

 private:
  Kind kind_ = Kind::null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;

  void write(std::string& out, int indent, int depth) const;
};

}  // namespace fpst::perf::json
