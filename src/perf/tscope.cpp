#include "perf/tscope.hpp"

#include <algorithm>
#include <bit>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <optional>
#include <utility>

namespace fpst::perf {

namespace {

// Paper §II communications constants, restated here because perf sits below
// the link library in the layering (as perf/report.hpp does for the balance
// rules): 5 us DMA startup, 2 us per byte (0.5 MB/s), 8-byte packet header.
constexpr std::int64_t kDmaStartupPs = 5'000'000;
constexpr double kHeaderBytes = 8.0;
constexpr double kLinkMbPerSec = 0.5;

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// Split a span name into whitespace-separated tokens.
std::vector<std::string_view> tokens(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && s[i] == ' ') {
      ++i;
    }
    const std::size_t start = i;
    while (i < s.size() && s[i] != ' ') {
      ++i;
    }
    if (i > start) {
      out.push_back(s.substr(start, i - start));
    }
  }
  return out;
}

/// Parse the digits of `s` after `prefix` chars; nullopt when malformed.
std::optional<std::uint64_t> parse_num(std::string_view s,
                                       std::size_t prefix,
                                       std::size_t suffix = 0) {
  if (s.size() <= prefix + suffix) {
    return std::nullopt;
  }
  std::uint64_t v = 0;
  for (std::size_t i = prefix; i < s.size() - suffix; ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return std::nullopt;
    }
    v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
  }
  return v;
}

/// All raw lifecycle events of one trace id before stitching.
struct RawFlight {
  bool has_inj = false;
  bool has_dlv = false;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t tag = 0;
  std::uint64_t bytes = 0;
  sim::SimTime inject{};
  sim::SimTime deliver{};
  struct Enq {
    sim::SimTime at{};
    std::uint32_t node = 0;
  };
  struct Tx {
    sim::SimTime start{};
    sim::SimTime duration{};
    std::uint32_t node = 0;
  };
  std::vector<Enq> enq;
  std::vector<Tx> tx;
  std::vector<std::pair<sim::SimTime, std::uint32_t>> fwd;
};

bool is_link_component(const std::string& c) {
  return c.rfind("link", 0) == 0;
}

}  // namespace

MessageReport analyze_messages(const Dump& dump) {
  MessageReport r;
  r.meta = dump.meta;
  r.wall = dump.wall;
  r.spans_dropped = dump.spans_dropped;

  // ---- collect the raw lifecycle events per trace id ----------------------
  std::map<std::uint32_t, RawFlight> raw;
  for (const DumpSpan& s : dump.spans) {
    const bool occam = s.component == "occam";
    const bool link = is_link_component(s.component);
    if (!occam && !link) {
      continue;
    }
    const std::vector<std::string_view> tok = tokens(s.name);
    if (tok.size() < 2 || tok[0].size() < 2 || tok[0][0] != 'm') {
      continue;
    }
    const std::optional<std::uint64_t> id = parse_num(tok[0], 1);
    if (!id) {
      continue;
    }
    RawFlight& f = raw[static_cast<std::uint32_t>(*id)];
    if (occam && tok[1] == "inj" && tok.size() >= 5) {
      // m<id> inj ->n<dst> t<tag> <bytes>B
      const auto dst = parse_num(tok[2], 3);
      const auto tag = parse_num(tok[3], 1);
      const auto bytes = parse_num(tok[4], 0, 1);
      if (dst && tag && bytes) {
        f.has_inj = true;
        f.src = s.node;
        f.dst = static_cast<std::uint32_t>(*dst);
        f.tag = static_cast<std::uint32_t>(*tag);
        f.bytes = *bytes;
        f.inject = s.start;
      }
    } else if (occam && tok[1] == "dlv") {
      f.has_dlv = true;
      f.deliver = s.start;
    } else if (occam && tok[1] == "fwd") {
      f.fwd.emplace_back(s.start, s.node);
    } else if (link && tok[1] == "enq") {
      f.enq.push_back(RawFlight::Enq{s.start, s.node});
    } else if (link && tok[1].rfind("tx", 0) == 0 && !s.is_instant) {
      f.tx.push_back(RawFlight::Tx{s.start, s.duration, s.node});
    }
  }

  // ---- stitch each raw record into a flight -------------------------------
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> edge_load;
  std::map<std::uint32_t, NodeMsgStats> per_node;
  for (std::uint32_t n = 0; n < dump.meta.nodes; ++n) {
    per_node[n].node = n;
  }
  for (auto& [id, rf] : raw) {
    std::stable_sort(rf.enq.begin(), rf.enq.end(),
                     [](const RawFlight::Enq& a, const RawFlight::Enq& b) {
                       return a.at < b.at;
                     });
    std::stable_sort(rf.tx.begin(), rf.tx.end(),
                     [](const RawFlight::Tx& a, const RawFlight::Tx& b) {
                       return a.start < b.start;
                     });
    bool ok = rf.has_inj && rf.has_dlv && rf.enq.size() == rf.tx.size();
    for (std::size_t i = 0; ok && i < rf.tx.size(); ++i) {
      ok = rf.enq[i].node == rf.tx[i].node && rf.enq[i].at <= rf.tx[i].start;
    }
    if (!ok) {
      ++r.incomplete;
      continue;
    }
    Flight f;
    f.id = id;
    f.src = rf.src;
    f.dst = rf.dst;
    f.tag = rf.tag;
    f.bytes = rf.bytes;
    f.inject = rf.inject;
    f.deliver = rf.deliver;
    f.ecube_min = std::popcount(rf.src ^ rf.dst);
    f.complete = true;
    for (std::size_t i = 0; i < rf.tx.size(); ++i) {
      FlightHop hop;
      hop.from = rf.tx[i].node;
      // The receiver of hop i is the transmitter of hop i+1 (store-and-
      // forward), and the destination for the final hop — routing-agnostic.
      hop.to = i + 1 < rf.tx.size() ? rf.tx[i + 1].node : rf.dst;
      hop.enq = rf.enq[i].at;
      hop.dma_start = rf.tx[i].start;
      hop.queue = hop.dma_start - hop.enq;
      hop.transfer = rf.tx[i].duration;
      r.queue_ps.add(hop.queue.ps());
      r.transfer_ps.add(hop.transfer.ps());
      const std::uint32_t a = std::min(hop.from, hop.to);
      const std::uint32_t b = std::max(hop.from, hop.to);
      ++edge_load[{a, b}];
      f.hops.push_back(hop);
    }
    const int hops = static_cast<int>(f.hops.size());
    r.max_hops = std::max(r.max_hops, hops);
    r.total_hops += static_cast<std::uint64_t>(hops);
    if (hops != f.ecube_min) {
      r.ecube_minimal = false;
    }
    r.latency_ps.add(f.latency().ps());

    NodeMsgStats& src_stats = per_node[f.src];
    src_stats.node = f.src;
    ++src_stats.sent;
    src_stats.bytes_sent += f.bytes;
    src_stats.hops_sent += static_cast<std::uint64_t>(hops);
    NodeMsgStats& dst_stats = per_node[f.dst];
    dst_stats.node = f.dst;
    ++dst_stats.received;
    for (const auto& [at, via] : rf.fwd) {
      (void)at;
      NodeMsgStats& via_stats = per_node[via];
      via_stats.node = via;
      ++via_stats.forwarded;
    }
    r.flights.push_back(std::move(f));
  }
  for (const auto& [key, load] : edge_load) {
    r.edges.push_back(EdgeLoad{key.first, key.second, load});
  }
  for (const auto& [node, stats] : per_node) {
    (void)node;
    r.per_node.push_back(stats);
  }

  // ---- critical path over the message-causality DAG -----------------------
  // Flight g enables flight f when g was delivered to f's source no later
  // than f's injection; the critical path is the dependency chain with the
  // largest total latency. Processed in (inject, id) order so every
  // candidate predecessor's own chain value is already final.
  std::vector<std::size_t> order(r.flights.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Flight& fa = r.flights[a];
    const Flight& fb = r.flights[b];
    return std::tie(fa.inject, fa.id) < std::tie(fb.inject, fb.id);
  });
  std::vector<sim::SimTime> chain_len(r.flights.size());
  std::vector<std::ptrdiff_t> parent(r.flights.size(), -1);
  std::map<std::uint32_t, std::vector<std::size_t>> delivered_at;
  for (const std::size_t i : order) {
    const Flight& f = r.flights[i];
    std::ptrdiff_t best = -1;
    for (const std::size_t g : delivered_at[f.src]) {
      const Flight& fg = r.flights[g];
      if (fg.deliver > f.inject) {
        continue;
      }
      if (best < 0 || chain_len[g] > chain_len[static_cast<std::size_t>(best)] ||
          (chain_len[g] == chain_len[static_cast<std::size_t>(best)] &&
           fg.id < r.flights[static_cast<std::size_t>(best)].id)) {
        best = static_cast<std::ptrdiff_t>(g);
      }
    }
    chain_len[i] = f.latency() +
                   (best < 0 ? sim::SimTime{}
                             : chain_len[static_cast<std::size_t>(best)]);
    parent[i] = best;
    delivered_at[f.dst].push_back(i);
  }
  std::ptrdiff_t tail = -1;
  for (std::size_t i = 0; i < r.flights.size(); ++i) {
    if (tail < 0 || chain_len[i] > chain_len[static_cast<std::size_t>(tail)] ||
        (chain_len[i] == chain_len[static_cast<std::size_t>(tail)] &&
         r.flights[i].id < r.flights[static_cast<std::size_t>(tail)].id)) {
      tail = static_cast<std::ptrdiff_t>(i);
    }
  }
  if (tail >= 0) {
    r.critical.length = chain_len[static_cast<std::size_t>(tail)];
    if (dump.wall.ps() > 0) {
      r.critical.wall_fraction = r.critical.length / dump.wall;
    }
    for (std::ptrdiff_t i = tail; i >= 0;
         i = parent[static_cast<std::size_t>(i)]) {
      r.critical.chain.push_back(r.flights[static_cast<std::size_t>(i)].id);
    }
    std::reverse(r.critical.chain.begin(), r.critical.chain.end());
  }
  return r;
}

json::Value edges_to_json(const std::vector<EdgeLoad>& edges) {
  json::Value arr = json::Value::array();
  for (const EdgeLoad& e : edges) {
    json::Value v = json::Value::object();
    v["a"] = json::Value::integer(e.a);
    v["b"] = json::Value::integer(e.b);
    v["crossings"] =
        json::Value::integer(static_cast<std::int64_t>(e.crossings));
    arr.append(std::move(v));
  }
  return arr;
}

json::Value messages_to_json(const MessageReport& r) {
  json::Value doc = json::Value::object();
  doc["messages"] =
      json::Value::integer(static_cast<std::int64_t>(r.flights.size()));
  doc["incomplete"] =
      json::Value::integer(static_cast<std::int64_t>(r.incomplete));
  doc["spans_dropped"] =
      json::Value::integer(static_cast<std::int64_t>(r.spans_dropped));
  doc["total_hops"] =
      json::Value::integer(static_cast<std::int64_t>(r.total_hops));
  doc["max_hops"] = json::Value::integer(r.max_hops);
  doc["ecube_minimal"] = json::Value::boolean(r.ecube_minimal);
  doc["latency_ps"] = r.latency_ps.to_json();
  doc["queue_ps"] = r.queue_ps.to_json();
  doc["transfer_ps"] = r.transfer_ps.to_json();

  doc["edges"] = edges_to_json(r.edges);

  json::Value per_node = json::Value::array();
  for (const NodeMsgStats& n : r.per_node) {
    json::Value v = json::Value::object();
    v["node"] = json::Value::integer(n.node);
    v["sent"] = json::Value::integer(static_cast<std::int64_t>(n.sent));
    v["received"] =
        json::Value::integer(static_cast<std::int64_t>(n.received));
    v["forwarded"] =
        json::Value::integer(static_cast<std::int64_t>(n.forwarded));
    v["bytes_sent"] =
        json::Value::integer(static_cast<std::int64_t>(n.bytes_sent));
    v["mean_hops"] = json::Value::number(n.mean_hops());
    per_node.append(std::move(v));
  }
  doc["per_node"] = std::move(per_node);

  json::Value crit = json::Value::object();
  crit["length_ps"] = json::Value::integer(r.critical.length.ps());
  crit["wall_fraction"] = json::Value::number(r.critical.wall_fraction);
  json::Value chain = json::Value::array();
  for (const std::uint32_t id : r.critical.chain) {
    chain.append(json::Value::integer(id));
  }
  crit["chain"] = std::move(chain);
  doc["critical_path"] = std::move(crit);

  json::Value flights = json::Value::array();
  for (const Flight& f : r.flights) {
    json::Value v = json::Value::object();
    v["id"] = json::Value::integer(f.id);
    v["src"] = json::Value::integer(f.src);
    v["dst"] = json::Value::integer(f.dst);
    v["tag"] = json::Value::integer(f.tag);
    v["bytes"] = json::Value::integer(static_cast<std::int64_t>(f.bytes));
    v["inject_ps"] = json::Value::integer(f.inject.ps());
    v["deliver_ps"] = json::Value::integer(f.deliver.ps());
    v["latency_ps"] = json::Value::integer(f.latency().ps());
    v["ecube_min"] = json::Value::integer(f.ecube_min);
    json::Value hops = json::Value::array();
    for (const FlightHop& h : f.hops) {
      json::Value hv = json::Value::object();
      hv["from"] = json::Value::integer(h.from);
      hv["to"] = json::Value::integer(h.to);
      hv["enq_ps"] = json::Value::integer(h.enq.ps());
      hv["dma_ps"] = json::Value::integer(h.dma_start.ps());
      hv["queue_ps"] = json::Value::integer(h.queue.ps());
      hv["transfer_ps"] = json::Value::integer(h.transfer.ps());
      hops.append(std::move(hv));
    }
    v["hops"] = std::move(hops);
    flights.append(std::move(v));
  }
  doc["flights"] = std::move(flights);
  return doc;
}

std::string render_messages(const MessageReport& r) {
  std::string out;
  appendf(out, "tscope message report — %s\n",
          r.meta.workload.empty() ? "(unlabelled run)"
                                  : r.meta.workload.c_str());
  appendf(out, "machine: %d-cube, %u node%s, wall %s\n", r.meta.dimension,
          r.meta.nodes, r.meta.nodes == 1 ? "" : "s",
          r.wall.to_string().c_str());
  if (r.spans_dropped > 0) {
    appendf(out,
            "WARNING: %llu timeline spans were dropped (ring full) — "
            "flight records may be incomplete\n",
            static_cast<unsigned long long>(r.spans_dropped));
  }
  appendf(out, "messages: %zu stitched, %llu incomplete\n", r.flights.size(),
          static_cast<unsigned long long>(r.incomplete));
  if (r.flights.empty()) {
    return out;
  }

  std::uint64_t payload = 0;
  for (const Flight& f : r.flights) {
    payload += f.bytes;
  }
  appendf(out,
          "routing: %llu hops total, max %d per message "
          "(e-cube bound log2 n = %d) %s, minimal routes: %s\n",
          static_cast<unsigned long long>(r.total_hops), r.max_hops,
          r.meta.dimension,
          r.max_hops <= r.meta.dimension ? "OK" : "VIOLATION",
          r.ecube_minimal ? "yes" : "NO");
  appendf(out, "payload: %llu bytes\n",
          static_cast<unsigned long long>(payload));

  appendf(out, "\nlatency per message (us):  p50 %10.3f  p90 %10.3f  "
               "p99 %10.3f  max %10.3f\n",
          r.latency_ps.quantile(0.50) * 1e-6,
          r.latency_ps.quantile(0.90) * 1e-6,
          r.latency_ps.quantile(0.99) * 1e-6,
          static_cast<double>(r.latency_ps.max()) * 1e-6);
  appendf(out, "queueing per hop (us):     p50 %10.3f  p90 %10.3f  "
               "p99 %10.3f  max %10.3f\n",
          r.queue_ps.quantile(0.50) * 1e-6, r.queue_ps.quantile(0.90) * 1e-6,
          r.queue_ps.quantile(0.99) * 1e-6,
          static_cast<double>(r.queue_ps.max()) * 1e-6);
  appendf(out, "transfer per hop (us):     p50 %10.3f  p90 %10.3f  "
               "p99 %10.3f  max %10.3f\n",
          r.transfer_ps.quantile(0.50) * 1e-6,
          r.transfer_ps.quantile(0.90) * 1e-6,
          r.transfer_ps.quantile(0.99) * 1e-6,
          static_cast<double>(r.transfer_ps.max()) * 1e-6);

  // The paper's Figure 2 constants, validated from the hop records: every
  // transfer charges the 5 us DMA startup, and what remains is wire time at
  // 0.5 MB/s (2 us per byte including the 8-byte header).
  if (r.total_hops > 0) {
    const double wire_ps =
        static_cast<double>(r.transfer_ps.sum()) -
        static_cast<double>(kDmaStartupPs) *
            static_cast<double>(r.total_hops);
    double wire_bytes = 0;
    for (const Flight& f : r.flights) {
      wire_bytes += (static_cast<double>(f.bytes) + kHeaderBytes) *
                    static_cast<double>(f.hops.size());
    }
    const double mb_per_sec =
        wire_ps <= 0 ? 0.0 : wire_bytes / (wire_ps * 1e-12) / 1e6;
    appendf(out,
            "wire rate: %.3f MB/s per hop after the 5 us DMA startup "
            "(paper Fig 2: %.1f MB/s, 5 us startup)\n",
            mb_per_sec, kLinkMbPerSec);
  }

  appendf(out,
          "\ncritical path: %zu message%s, %s = %.1f%% of wall\n",
          r.critical.chain.size(), r.critical.chain.size() == 1 ? "" : "s",
          r.critical.length.to_string().c_str(),
          100.0 * r.critical.wall_fraction);
  if (!r.critical.chain.empty()) {
    std::map<std::uint32_t, const Flight*> by_id;
    for (const Flight& f : r.flights) {
      by_id[f.id] = &f;
    }
    out += "  chain:";
    for (const std::uint32_t id : r.critical.chain) {
      const Flight* f = by_id[id];
      appendf(out, " m%u(n%u->n%u)", id, f->src, f->dst);
    }
    out += '\n';
  }
  return out;
}

std::string render_message_summary(const MessageReport& r) {
  std::string out;
  appendf(out, "%-6s %8s %8s %9s %12s %9s\n", "node", "sent", "recv", "fwd",
          "bytes sent", "avg hops");
  for (const NodeMsgStats& n : r.per_node) {
    appendf(out, "%-6u %8llu %8llu %9llu %12llu %9.2f\n", n.node,
            static_cast<unsigned long long>(n.sent),
            static_cast<unsigned long long>(n.received),
            static_cast<unsigned long long>(n.forwarded),
            static_cast<unsigned long long>(n.bytes_sent), n.mean_hops());
  }
  return out;
}

std::string render_edges(const MessageReport& r,
                         const std::vector<EdgeLoad>& predicted) {
  std::string out;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> want;
  for (const EdgeLoad& e : predicted) {
    want[{e.a, e.b}] = e.crossings;
  }
  if (predicted.empty()) {
    appendf(out, "%-12s %10s\n", "edge", "crossings");
  } else {
    appendf(out, "%-12s %10s %10s\n", "edge", "observed", "predicted");
  }
  // Union of observed and predicted edges, in (a, b) order.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> seen;
  for (const EdgeLoad& e : r.edges) {
    seen[{e.a, e.b}] = e.crossings;
  }
  for (const auto& [key, crossings] : want) {
    seen.emplace(key, seen.count(key) ? seen[key] : 0);
    (void)crossings;
  }
  for (const auto& [key, observed] : seen) {
    char edge[32];
    std::snprintf(edge, sizeof edge, "%u-%u", key.first, key.second);
    if (predicted.empty()) {
      appendf(out, "%-12s %10llu\n", edge,
              static_cast<unsigned long long>(observed));
    } else {
      const auto it = want.find(key);
      const std::uint64_t p = it == want.end() ? 0 : it->second;
      appendf(out, "%-12s %10llu %10llu %s\n", edge,
              static_cast<unsigned long long>(observed),
              static_cast<unsigned long long>(p),
              observed == p ? "OK" : "MISMATCH");
    }
  }
  return out;
}

}  // namespace fpst::perf
