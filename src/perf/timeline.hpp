// The structured span timeline: the machine-wide record of *when* each
// component was busy, bounded by a ring buffer so long runs cannot exhaust
// host memory.
//
// Spans are typed (track id + times + name) rather than formatted strings;
// the track table maps ids back to (node, component) identity. The Chrome
// trace_event exporter (perf/chrome_trace.hpp) turns each node into a
// "process" and each component into a "thread" so any dump opens directly
// in chrome://tracing or Perfetto.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/ring.hpp"
#include "sim/time.hpp"

namespace fpst::perf {

/// One timeline record. `duration` is zero for instant markers.
struct Span {
  std::uint32_t track = 0;
  sim::SimTime start{};
  sim::SimTime duration{};
  std::string name;
  bool is_instant = false;
};

class Timeline {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  Timeline() : ring_{kDefaultCapacity} {}
  explicit Timeline(std::size_t capacity) : ring_{capacity} {}

  /// Span collection on/off (counters are unaffected; flip this to keep a
  /// run's counter totals while bounding its dump size to zero spans).
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(Span s) {
    if (enabled_) {
      ring_.push(std::move(s));
    }
  }

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return ring_.capacity(); }
  /// Spans overwritten because the ring was full (reported in dumps so a
  /// truncated timeline is never mistaken for a complete one).
  std::uint64_t dropped() const { return ring_.dropped(); }
  const Span& operator[](std::size_t i) const { return ring_[i]; }
  std::vector<Span> snapshot() const { return ring_.snapshot(); }
  void clear() { ring_.clear(); }

 private:
  sim::RingBuffer<Span> ring_;
  bool enabled_ = true;
};

}  // namespace fpst::perf
