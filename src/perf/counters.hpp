// The counter registry: named monotonically increasing counters and
// duration accumulators for every (node, component) track of the machine,
// plus the shared span timeline.
//
// Components never see this class — they hold a PerfSink* (perf/sink.hpp)
// handed out by track(); the registry owns the tracks and keeps them in a
// sorted map so every query and every serialised dump is deterministic.
// Attach a registry to a whole machine with core::TSeries::enable_perf, or
// to a standalone node with node::Node::attach_perf.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "perf/sink.hpp"
#include "perf/timeline.hpp"
#include "sim/time.hpp"

namespace fpst::perf {

class CounterRegistry;

/// The per-(node, component) sink implementation: two sorted name→value
/// maps plus a handle into the registry's shared timeline.
class TrackSink final : public PerfSink {
 public:
  using Counts = std::map<std::string, std::uint64_t, std::less<>>;
  using Times = std::map<std::string, sim::SimTime, std::less<>>;

  std::uint32_t node() const { return node_; }
  const std::string& component() const { return component_; }
  std::uint32_t track_id() const { return id_; }

  void count(std::string_view name, std::uint64_t delta) override;
  void busy(std::string_view name, sim::SimTime duration) override;
  void span(sim::SimTime start, sim::SimTime duration,
            std::string name) override;
  void instant(sim::SimTime at, std::string name) override;

  const Counts& counts() const { return counts_; }
  const Times& times() const { return times_; }
  /// Value of one counter (0 when never touched).
  std::uint64_t value(std::string_view name) const;
  /// Value of one duration accumulator (zero when never touched).
  sim::SimTime time_value(std::string_view name) const;

 private:
  friend class CounterRegistry;
  TrackSink(std::uint32_t node, std::string component, std::uint32_t id,
            Timeline* timeline)
      : node_{node},
        component_{std::move(component)},
        id_{id},
        timeline_{timeline} {}

  std::uint32_t node_;
  std::string component_;
  std::uint32_t id_;
  Timeline* timeline_;
  Counts counts_;
  Times times_;
};

class CounterRegistry {
 public:
  struct Options {
    /// Ring bound for the span timeline.
    std::size_t timeline_capacity = Timeline::kDefaultCapacity;
    /// When false, spans are discarded at the source (counters still
    /// collect) — the cheap mode for counter-only studies.
    bool collect_spans = true;
  };

  /// Machine shape and labelling carried into every dump.
  struct Meta {
    int dimension = 0;
    std::uint32_t nodes = 1;
    std::string workload;  ///< free-form label, e.g. "saxpy n=65536"
  };

  CounterRegistry() : CounterRegistry(Options{}) {}
  explicit CounterRegistry(Options opts) : timeline_{opts.timeline_capacity} {
    timeline_.set_enabled(opts.collect_spans);
  }

  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  /// The sink for (node, component); created on first use. Pointers stay
  /// valid for the registry's lifetime.
  TrackSink& track(std::uint32_t node, std::string_view component);
  /// Lookup without creation (nullptr when the track never existed).
  const TrackSink* find(std::uint32_t node, std::string_view component) const;

  /// Counter value on one track, 0 when absent.
  std::uint64_t value(std::uint32_t node, std::string_view component,
                      std::string_view name) const;
  /// Duration value on one track, zero when absent.
  sim::SimTime time_value(std::uint32_t node, std::string_view component,
                          std::string_view name) const;
  /// Sum of `name` over every node's `component` track.
  std::uint64_t total(std::string_view component, std::string_view name) const;
  sim::SimTime total_time(std::string_view component,
                          std::string_view name) const;

  /// All tracks in deterministic (node, component) order.
  const std::map<std::pair<std::uint32_t, std::string>,
                 std::unique_ptr<TrackSink>>&
  tracks() const {
    return tracks_;
  }

  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }

  /// Parallel-engine mode: give each of `shards` shards its own span
  /// timeline (same capacity and enablement as the shared one) so worker
  /// threads never write a common ring. `shard_of_node[n]` is node n's
  /// shard; existing tracks are re-pointed and tracks created later route
  /// by their node's shard (out-of-range nodes go to shard 0). Counters
  /// are untouched — each track is single-writer already. The dump
  /// (perf/chrome_trace.cpp) merges shard timelines deterministically.
  /// Call before the run starts, from the construction thread.
  void shard_spans(std::vector<int> shard_of_node, int shards);

  /// True once shard_spans() was applied.
  bool span_sharded() const { return !shard_timelines_.empty(); }
  const std::vector<std::unique_ptr<Timeline>>& shard_timelines() const {
    return shard_timelines_;
  }

  Meta& meta() { return meta_; }
  const Meta& meta() const { return meta_; }

 private:
  Timeline* timeline_for(std::uint32_t node);

  std::map<std::pair<std::uint32_t, std::string>, std::unique_ptr<TrackSink>>
      tracks_;
  Timeline timeline_;
  Meta meta_;
  std::vector<int> shard_of_node_;
  std::vector<std::unique_ptr<Timeline>> shard_timelines_;
  std::uint32_t next_id_ = 0;
};

}  // namespace fpst::perf
