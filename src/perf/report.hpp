// Utilization analysis over a perf dump: per-node busy/idle/overlap
// fractions, measured MFLOPS against the hardware ceiling, link saturation,
// and the paper's balance rules.
//
// The thresholds below are the T Series paper constants, restated here
// because perf sits *below* the vpu/link libraries in the layering and
// cannot include their headers:
//   * 16 MFLOPS peak per node (two 8 MFLOPS pipes, 125 ns cycle);
//   * 0.5 MB/s per link sublink, 8-byte link word (16 us per word);
//   * the 1 : 13 : 130 balance rule — a program must perform at least
//     13 flops per gathered element and 130 flops per link word
//     transferred, or memory/communication time dominates arithmetic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "perf/chrome_trace.hpp"
#include "sim/time.hpp"

namespace fpst::perf {

/// Per-node peak, paper §2: two pipelined FPUs at 125 ns.
inline constexpr double kPeakMflopsPerNode = 16.0;
/// Per-link bandwidth, paper §3.
inline constexpr double kLinkBytesPerSec = 0.5e6;
/// One link word is 64 bits (16 us at 0.5 MB/s).
inline constexpr double kLinkWordBytes = 8.0;
/// Balance floors, paper §5: flops per gathered element / per link word.
inline constexpr double kMinFlopsPerGatheredElement = 13.0;
inline constexpr double kMinFlopsPerLinkWord = 130.0;

struct NodeReport {
  std::uint32_t node = 0;
  std::uint64_t flops = 0;
  std::uint64_t vector_ops = 0;
  std::uint64_t bank_conflicts = 0;
  std::uint64_t gather_elems = 0;
  std::uint64_t scatter_elems = 0;
  std::uint64_t cp_instr = 0;
  std::uint64_t link_bytes = 0;          ///< wire bytes over all of the
                                         ///< node's link adapters
  sim::SimTime vpu_busy{};
  sim::SimTime cp_busy{};
  sim::SimTime link_busy{};              ///< summed over link adapters
  double vpu_util = 0.0;                 ///< vpu_busy / wall
  double cp_util = 0.0;
  double mflops = 0.0;                   ///< flops / wall
  double active_mflops = 0.0;            ///< flops / vpu_busy
  /// Fraction of the wall during which the VPU was busy *and* some other
  /// component (CP or a link) was busy too — computed by merging span
  /// intervals; 0 when the dump carries no spans for this node.
  double overlap_frac = 0.0;
  bool has_spans = false;
};

struct LinkReport {
  std::uint32_t node = 0;
  std::string component;                 ///< "link0".."link3"
  std::uint64_t wire_bytes = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t dma_starts = 0;
  sim::SimTime busy{};
  double saturation = 0.0;               ///< wire_bytes / (wall * 0.5 MB/s)
};

struct BalanceCheck {
  std::string rule;                      ///< human-readable rule name
  double measured = 0.0;
  double required = 0.0;
  bool applicable = false;               ///< denominator was non-zero
  bool ok = true;                        ///< !applicable counts as ok
};

struct MachineReport {
  CounterRegistry::Meta meta;
  sim::SimTime wall{};
  std::uint64_t spans_dropped = 0;
  std::vector<NodeReport> nodes;
  std::vector<LinkReport> links;
  std::uint64_t total_flops = 0;
  double aggregate_mflops = 0.0;         ///< total flops / wall
  double aggregate_peak_mflops = 0.0;    ///< 16 x node count
  double active_mflops = 0.0;            ///< total flops / total vpu busy
  double peak_fraction = 0.0;            ///< aggregate / aggregate peak
  BalanceCheck gather_balance;           ///< flops per gathered element
  BalanceCheck link_balance;             ///< flops per link word
  bool balance_ok() const {
    return gather_balance.ok && link_balance.ok;
  }
};

/// Build the full report from a loaded dump.
MachineReport analyze(const Dump& dump);

/// Render the report as the text ttrace prints: machine summary, per-node
/// table, per-link table, balance verdicts ("OK" / "VIOLATION" lines).
std::string render(const MachineReport& report);

}  // namespace fpst::perf
