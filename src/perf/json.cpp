#include "perf/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace fpst::perf::json {

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::boolean;
  v.bool_ = b;
  return v;
}

Value Value::integer(std::int64_t i) {
  Value v;
  v.kind_ = Kind::integer;
  v.int_ = i;
  return v;
}

Value Value::number(double d) {
  Value v;
  v.kind_ = Kind::number;
  v.num_ = d;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = Kind::string;
  v.str_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::array;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::object;
  return v;
}

namespace {
[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("json: value is not ") + want);
}
}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::boolean) {
    type_error("a boolean");
  }
  return bool_;
}

std::int64_t Value::as_int() const {
  if (kind_ == Kind::integer) {
    return int_;
  }
  if (kind_ == Kind::number) {
    return static_cast<std::int64_t>(num_);
  }
  type_error("a number");
}

double Value::as_double() const {
  if (kind_ == Kind::integer) {
    return static_cast<double>(int_);
  }
  if (kind_ == Kind::number) {
    return num_;
  }
  type_error("a number");
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::string) {
    type_error("a string");
  }
  return str_;
}

const Value::Array& Value::as_array() const {
  if (kind_ != Kind::array) {
    type_error("an array");
  }
  return arr_;
}

const Value::Object& Value::as_object() const {
  if (kind_ != Kind::object) {
    type_error("an object");
  }
  return obj_;
}

Value::Array& Value::as_array() {
  if (kind_ != Kind::array) {
    type_error("an array");
  }
  return arr_;
}

Value::Object& Value::as_object() {
  if (kind_ != Kind::object) {
    type_error("an object");
  }
  return obj_;
}

Value& Value::operator[](const std::string& key) {
  if (kind_ == Kind::null) {
    kind_ = Kind::object;
  }
  if (kind_ != Kind::object) {
    type_error("an object");
  }
  return obj_[key];
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::object) {
    return nullptr;
  }
  const auto it = obj_.find(std::string(key));
  return it == obj_.end() ? nullptr : &it->second;
}

void Value::append(Value v) {
  if (kind_ == Kind::null) {
    kind_ = Kind::array;
  }
  if (kind_ != Kind::array) {
    type_error("an array");
  }
  arr_.push_back(std::move(v));
}

// ---------------------------------------------------------------- writing

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) {
    return;
  }
  out += '\n';
  out.append(static_cast<std::size_t>(indent) *
                 static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Value::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::null:
      out += "null";
      break;
    case Kind::boolean:
      out += bool_ ? "true" : "false";
      break;
    case Kind::integer: {
      char buf[32];
      const auto r = std::to_chars(buf, buf + sizeof buf, int_);
      out.append(buf, r.ptr);
      break;
    }
    case Kind::number: {
      if (!std::isfinite(num_)) {
        out += "null";  // JSON has no Inf/NaN; keep the document valid
        break;
      }
      char buf[40];
      const auto r = std::to_chars(buf, buf + sizeof buf, num_);
      out.append(buf, r.ptr);
      break;
    }
    case Kind::string:
      write_escaped(out, str_);
      break;
    case Kind::array: {
      out += '[';
      bool first = true;
      for (const Value& v : arr_) {
        if (!first) {
          out += ',';
        }
        first = false;
        newline_indent(out, indent, depth + 1);
        v.write(out, indent, depth + 1);
      }
      if (!arr_.empty()) {
        newline_indent(out, indent, depth);
      }
      out += ']';
      break;
    }
    case Kind::object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) {
          out += ',';
        }
        first = false;
        newline_indent(out, indent, depth + 1);
        write_escaped(out, k);
        out += indent < 0 ? ":" : ": ";
        v.write(out, indent, depth + 1);
      }
      if (!obj_.empty()) {
        newline_indent(out, indent, depth);
      }
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------- parsing

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text, bool reject_duplicate_keys = false)
      : text_{text}, reject_duplicate_keys_{reject_duplicate_keys} {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (reject_duplicate_keys_ && v.as_object().count(key) != 0) {
        fail("duplicate object key \"" + key + "\"");
      }
      v.as_object().emplace(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.append(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // BMP-only UTF-8 encoding (the perf dumps are ASCII anyway).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    bool is_integer = true;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_integer = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") {
      fail("bad number");
    }
    if (is_integer) {
      std::int64_t i = 0;
      const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (r.ec == std::errc{} && r.ptr == tok.data() + tok.size()) {
        return Value::integer(i);
      }
      // Out of int64 range: fall through to double.
    }
    double d = 0.0;
    const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (r.ec != std::errc{} || r.ptr != tok.data() + tok.size()) {
      fail("bad number");
    }
    return Value::number(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool reject_duplicate_keys_ = false;
};

}  // namespace

Value Value::parse(std::string_view text) {
  return Parser{text}.parse_document();
}

Value Value::parse_strict(std::string_view text) {
  return Parser{text, /*reject_duplicate_keys=*/true}.parse_document();
}

}  // namespace fpst::perf::json
