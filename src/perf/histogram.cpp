#include "perf/histogram.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace fpst::perf {

namespace {

int bucket_of(std::int64_t v) {
  return v <= 0
             ? 0
             : static_cast<int>(std::bit_width(static_cast<std::uint64_t>(v)));
}

/// sum_ must stay well-defined even for top-bucket values (two observations
/// near int64 max would overflow a plain +=, which is UB): saturate instead.
std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return r;
}

}  // namespace

void Histogram::add(std::int64_t v) {
  if (v < 0) {
    v = 0;
  }
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ = sat_add(sum_, v);
  ++buckets_[static_cast<std::size_t>(bucket_of(v))];
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ = sat_add(sum_, other.sum_);
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<std::size_t>(b)] +=
        other.buckets_[static_cast<std::size_t>(b)];
  }
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::int64_t Histogram::bucket_lo(int b) {
  if (b == 0) {
    return 0;
  }
  if (b >= 64) {  // unreachable from add(); guard the shift anyway
    return std::numeric_limits<std::int64_t>::max();
  }
  return std::int64_t{1} << (b - 1);
}

std::int64_t Histogram::bucket_hi(int b) {
  if (b == 0) {
    return 0;
  }
  // Bucket 63 covers [2^62, int64 max]: 2^63 - 1 is the type's max, and
  // computing it by doubling 2^62 would overflow. Clamp instead.
  if (b >= 63) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return (std::int64_t{1} << b) - 1;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // 0-based rank of the target observation.
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t before = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(b)];
    if (n == 0) {
      continue;
    }
    if (rank < static_cast<double>(before + n)) {
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b)) + 1.0;
      const double frac = (rank - static_cast<double>(before)) /
                          static_cast<double>(n);
      const double v = lo + (hi - lo) * frac;
      return std::clamp(v, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
    before += n;
  }
  return static_cast<double>(max_);
}

json::Value Histogram::to_json() const {
  json::Value h = json::Value::object();
  h["count"] = json::Value::integer(static_cast<std::int64_t>(count_));
  h["min"] = json::Value::integer(min());
  h["max"] = json::Value::integer(max());
  h["sum"] = json::Value::integer(sum_);
  h["mean"] = json::Value::number(mean());
  h["p50"] = json::Value::number(quantile(0.50));
  h["p90"] = json::Value::number(quantile(0.90));
  h["p99"] = json::Value::number(quantile(0.99));
  json::Value buckets = json::Value::array();
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[static_cast<std::size_t>(b)] == 0) {
      continue;
    }
    json::Value e = json::Value::object();
    e["lo"] = json::Value::integer(bucket_lo(b));
    e["hi"] = json::Value::integer(bucket_hi(b));
    e["count"] = json::Value::integer(
        static_cast<std::int64_t>(buckets_[static_cast<std::size_t>(b)]));
    buckets.append(std::move(e));
  }
  h["buckets"] = std::move(buckets);
  return h;
}

}  // namespace fpst::perf
