// Deterministic log-bucketed histogram for latency-class quantities.
//
// Values (integer picoseconds, bytes, hop counts — any non-negative int64)
// land in power-of-two buckets: bucket 0 holds exactly 0, bucket b >= 1
// holds [2^(b-1), 2^b). Two identical runs therefore produce bit-identical
// histograms, and the serialised form is byte-identical — the property the
// tscope determinism gate relies on. Quantiles are estimated by linear
// interpolation inside the covering bucket and clamped to the observed
// [min, max], so a single-valued distribution reports its exact value.
#pragma once

#include <array>
#include <cstdint>

#include "perf/json.hpp"

namespace fpst::perf {

class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bucket 0 + one per bit of int64

  /// Record one value. Negative values clamp to 0.
  void add(std::int64_t v);

  /// Fold `other` into this histogram: bucket-wise count sum plus
  /// count/sum/min/max merge. Merging per-worker or per-shard histograms
  /// this way is exactly equivalent to having recorded every value into
  /// one histogram (the buckets are fixed powers of two, so no rebinning
  /// happens), which is what lets the serve layer aggregate without locks:
  /// each worker owns its histogram, the reader merges snapshots.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  /// Saturates at int64 max instead of overflowing (top-bucket values are
  /// near the limit, so two observations could otherwise wrap).
  std::int64_t sum() const { return sum_; }
  double mean() const;

  /// Quantile estimate for q in [0, 1] (0 when empty). Deterministic:
  /// bucket walk + linear interpolation, clamped to [min, max].
  double quantile(double q) const;

  std::uint64_t bucket_count(int b) const {
    return buckets_[static_cast<std::size_t>(b)];
  }
  /// Inclusive value range covered by bucket b.
  static std::int64_t bucket_lo(int b);
  static std::int64_t bucket_hi(int b);

  /// {"count", "min", "max", "sum", "mean", "p50", "p90", "p99",
  ///  "buckets": [{"lo", "hi", "count"}...]} — only non-empty buckets.
  json::Value to_json() const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::int64_t sum_ = 0;
};

}  // namespace fpst::perf
