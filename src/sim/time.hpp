// Simulated time for the FPS T Series model.
//
// All hardware latencies in the paper are expressed in nanoseconds (125 ns
// arithmetic cycle, 400 ns memory row transfer) down to fractions of a cycle
// (62.5 ns per 32-bit vector-register word), so the simulator counts time in
// integer picoseconds: every paper constant is exactly representable and an
// int64 still covers ~106 days of simulated time (a full checkpoint-interval
// study spans minutes).
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace fpst::sim {

/// A point in (or duration of) simulated time, in integer picoseconds.
///
/// SimTime is a strong value type: arithmetic between times is explicit and
/// unit-safe construction goes through the factory functions (picoseconds(),
/// nanoseconds(), ...). The default-constructed value is time zero.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors. Fractional nanoseconds (62.5 ns) must be built from
  /// picoseconds to stay exact.
  static constexpr SimTime picoseconds(std::int64_t ps) { return SimTime{ps}; }
  static constexpr SimTime nanoseconds(std::int64_t ns) {
    return SimTime{ns * 1'000};
  }
  static constexpr SimTime microseconds(std::int64_t us) {
    return SimTime{us * 1'000'000};
  }
  static constexpr SimTime milliseconds(std::int64_t ms) {
    return SimTime{ms * 1'000'000'000};
  }
  static constexpr SimTime seconds(std::int64_t s) {
    return SimTime{s * 1'000'000'000'000};
  }

  constexpr std::int64_t ps() const { return ps_; }
  constexpr double ns() const { return static_cast<double>(ps_) * 1e-3; }
  constexpr double us() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double ms() const { return static_cast<double>(ps_) * 1e-9; }
  constexpr double sec() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr bool is_zero() const { return ps_ == 0; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ps_ + b.ps_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ps_ - b.ps_};
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.ps_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) {
    return SimTime{a.ps_ * k};
  }
  /// Integer division of a duration by a count (exact for all paper constants
  /// used this way; remainder is truncated).
  friend constexpr SimTime operator/(SimTime a, std::int64_t k) {
    return SimTime{a.ps_ / k};
  }
  /// Ratio of two durations as a double (for bandwidth computations).
  friend constexpr double operator/(SimTime a, SimTime b) {
    return static_cast<double>(a.ps_) / static_cast<double>(b.ps_);
  }

  constexpr SimTime& operator+=(SimTime b) {
    ps_ += b.ps_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime b) {
    ps_ -= b.ps_;
    return *this;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  /// Human-readable rendering with an auto-selected unit, e.g. "125 ns".
  std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t ps) : ps_{ps} {}
  std::int64_t ps_ = 0;
};

std::ostream& operator<<(std::ostream& os, SimTime t);

namespace literals {
constexpr SimTime operator""_ps(unsigned long long v) {
  return SimTime::picoseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ns(unsigned long long v) {
  return SimTime::nanoseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::microseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::milliseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime::seconds(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace fpst::sim
