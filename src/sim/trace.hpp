// Lightweight activity tracing for the simulator.
//
// A Tracer collects (time, category, detail) records from any component
// that was handed one (the node model traces vector forms, gathers and CP
// work; user code can add its own). Records are kept in arrival order —
// which, because the simulator is deterministic, is itself reproducible —
// and can be rendered as a per-category timeline for debugging and for the
// utilisation views in examples.
//
// Storage is a bounded RingBuffer (sim/ring.hpp): once `capacity` records
// are held the oldest are overwritten, so arbitrarily long runs cannot
// exhaust host memory. Per-category busy totals are accumulated at record
// time and therefore stay exact even after the ring has started dropping;
// dropped() tells a consumer whether the record list itself is complete.
// For structured machine-wide collection (typed spans, counters, Chrome
// trace export) see src/perf — this class remains the simple string-record
// front end and is kept API-compatible with its unbounded predecessor.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/ring.hpp"
#include "sim/time.hpp"

namespace fpst::sim {

struct TraceRecord {
  SimTime at{};
  SimTime duration{};
  std::string category;  ///< e.g. "node0.vpu", "node3.cp", "link"
  std::string detail;    ///< e.g. "VSAXPY n=128"
};

class Tracer {
 public:
  /// Default record bound; a long-running study overwrites the oldest
  /// records beyond this (busy totals remain exact).
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  Tracer() : ring_{kDefaultCapacity} {}
  explicit Tracer(std::size_t capacity) : ring_{capacity} {}

  /// Record an instantaneous event.
  void event(SimTime at, std::string category, std::string detail) {
    busy_[category] += SimTime{};
    ring_.push(TraceRecord{at, SimTime{}, std::move(category),
                           std::move(detail)});
  }
  /// Record an activity spanning [at, at + duration).
  void span(SimTime at, SimTime duration, std::string category,
            std::string detail) {
    busy_[category] += duration;
    ring_.push(TraceRecord{at, duration, std::move(category),
                           std::move(detail)});
  }

  /// Retained records, oldest first. (A snapshot: the backing store is a
  /// ring, so this materialises the in-order view the old API exposed.)
  std::vector<TraceRecord> records() const { return ring_.snapshot(); }
  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return ring_.capacity(); }
  /// Records overwritten because the ring was full.
  std::uint64_t dropped() const { return ring_.dropped(); }
  void clear() {
    ring_.clear();
    busy_.clear();
  }

  /// Total busy time per category (overlaps within a category are summed,
  /// not merged — fine for serially-used resources). Exact across the whole
  /// run even when the ring has dropped old records.
  std::map<std::string, SimTime> busy_by_category() const { return busy_; }

  /// Human-readable chronological dump (capped at `max_lines`).
  std::string render(std::size_t max_lines = 100) const;

 private:
  RingBuffer<TraceRecord> ring_;
  std::map<std::string, SimTime> busy_;
};

}  // namespace fpst::sim
