// Lightweight activity tracing for the simulator.
//
// A Tracer collects (time, category, detail) records from any component
// that was handed one (the node model traces vector forms, gathers and CP
// work; user code can add its own). Records are kept in arrival order —
// which, because the simulator is deterministic, is itself reproducible —
// and can be rendered as a per-category timeline for debugging and for the
// utilisation views in examples.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace fpst::sim {

struct TraceRecord {
  SimTime at{};
  SimTime duration{};
  std::string category;  ///< e.g. "node0.vpu", "node3.cp", "link"
  std::string detail;    ///< e.g. "VSAXPY n=128"
};

class Tracer {
 public:
  /// Record an instantaneous event.
  void event(SimTime at, std::string category, std::string detail) {
    records_.push_back(
        TraceRecord{at, SimTime{}, std::move(category), std::move(detail)});
  }
  /// Record an activity spanning [at, at + duration).
  void span(SimTime at, SimTime duration, std::string category,
            std::string detail) {
    records_.push_back(
        TraceRecord{at, duration, std::move(category), std::move(detail)});
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Total busy time per category (overlaps within a category are summed,
  /// not merged — fine for serially-used resources).
  std::map<std::string, SimTime> busy_by_category() const;

  /// Human-readable chronological dump (capped at `max_lines`).
  std::string render(std::size_t max_lines = 100) const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace fpst::sim
