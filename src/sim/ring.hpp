// Bounded ring buffer for trace/telemetry records.
//
// Long simulations (checkpoint-interval studies span minutes of simulated
// time) must not accumulate unbounded trace state, so every collector in
// the tree — sim::Tracer and the perf timeline — stores its records in one
// of these: a fixed-capacity circular store that overwrites the oldest
// record once full and counts how many were dropped, so consumers can tell
// a complete trace from a truncated one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace fpst::sim {

template <typename T>
class RingBuffer {
 public:
  /// A capacity of 0 is clamped to 1 (a ring must hold something).
  explicit RingBuffer(std::size_t capacity)
      : cap_{capacity == 0 ? 1 : capacity} {}

  /// Append, overwriting the oldest element once the ring is full.
  void push(T value) {
    if (buf_.size() < cap_) {
      buf_.push_back(std::move(value));
      return;
    }
    buf_[head_] = std::move(value);
    head_ = (head_ + 1) % cap_;
    ++dropped_;
  }

  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return buf_.empty(); }
  /// Elements overwritten so far (0 while the trace is still complete).
  std::uint64_t dropped() const { return dropped_; }

  /// Element `i` in insertion order: 0 is the oldest retained record.
  /// Throws std::out_of_range for i >= size(); in particular indexing an
  /// empty ring must not reach the modulo below (division by zero is UB).
  const T& operator[](std::size_t i) const {
    if (i >= buf_.size()) {
      throw std::out_of_range("RingBuffer::operator[]: index out of range");
    }
    std::size_t idx = head_ + i;
    if (idx >= buf_.size()) {
      idx -= buf_.size();
    }
    return buf_[idx];
  }

  /// Retained elements, oldest first.
  std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(buf_.size());
    for (std::size_t i = 0; i < buf_.size(); ++i) {
      out.push_back((*this)[i]);
    }
    return out;
  }

  void clear() {
    buf_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t cap_;
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<T> buf_;
};

}  // namespace fpst::sim
