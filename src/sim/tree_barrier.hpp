// Static combining-tree barrier for the parallel engine's epoch loop.
//
// std::barrier serializes every arrival through one atomic counter; with a
// dozen workers hammering it every few microseconds of simulated time the
// cache line holding that counter ping-pongs across every core. This
// barrier combines arrivals pairwise up a static binary tree instead, so
// each atomic is contended by at most two threads, and sibling leaves are
// *cube-adjacent* worker groups: workers own contiguous Gray-coded shard
// blocks (parallel_sim.cpp), so level 1 of the tree merges neighbouring
// subcube halves, level 2 merges quarters, and the root spans the machine —
// the barrier literally follows the cube hierarchy it synchronizes.
//
// Protocol, per round:
//   * arrive(who) increments the participant's leaf-group counter with
//     acq_rel. Every node's *last* arriver resets the node and climbs to
//     the parent; earlier arrivers fall through to wait on the global
//     generation word (futex park via std::atomic::wait).
//   * The thread that wins the root runs the completion callback while
//     every other participant is parked — the serial phase of the epoch —
//     then publishes the next generation with a release store + notify.
//   * Waiters re-check the generation under acquire, so everything the
//     completion wrote happens-before every worker's next epoch, and every
//     worker's pre-barrier writes happen-before the completion (they are
//     ordered into the root arrival along the acq_rel climb).
//
// Node counters are reset by their last arriver *before* it climbs, which
// is ordered before the generation bump, which is ordered before any
// round-N+1 arrival — so a round's reset can never race the next round's
// increments. A participant can only start round N+1 after observing the
// round-N bump, and round N+1 cannot complete (and bump again) until every
// participant of round N has arrived again, so a sleeping waiter can miss
// at most one bump — the monotonically increasing generation word makes
// that benign.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace fpst::sim {

class TreeBarrier {
 public:
  /// `completion` runs once per round, on the last-arriving thread, while
  /// all other participants are parked. Participants are identified by
  /// index [0, participants); each index must be used by exactly one
  /// thread per round.
  explicit TreeBarrier(int participants, std::function<void()> completion)
      : participants_{participants}, completion_{std::move(completion)} {
    if (participants < 1) {
      throw std::invalid_argument("TreeBarrier: need at least 1 participant");
    }
    // Level 0 nodes each merge a pair of participants; every higher level
    // merges pairs of nodes. levels_[l][i] expects the arrivals of its
    // pair (or a single odd straggler promoted unpaired).
    int width = participants;
    while (width > 1) {
      const int nodes = (width + 1) / 2;
      auto level = std::make_unique<Node[]>(static_cast<std::size_t>(nodes));
      for (int i = 0; i < nodes; ++i) {
        level[static_cast<std::size_t>(i)].expected =
            (2 * i + 1 < width) ? 2 : 1;
      }
      levels_.push_back(std::move(level));
      width = nodes;
    }
  }

  TreeBarrier(const TreeBarrier&) = delete;
  TreeBarrier& operator=(const TreeBarrier&) = delete;

  int participants() const { return participants_; }

  /// Current round number; starts at 0, bumps once per completed round.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  void arrive_and_wait(int who) {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    // Climb while this thread is the last arriver at each node.
    int index = who;
    for (auto& level : levels_) {
      Node& node = level[static_cast<std::size_t>(index / 2)];
      const std::uint32_t arrived =
          node.count.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (arrived < node.expected) {
        // Not last here: park until the round's generation bump.
        while (generation_.load(std::memory_order_acquire) == gen) {
          generation_.wait(gen, std::memory_order_acquire);
        }
        return;
      }
      // Last arriver: reset for the next round, then climb. The reset is
      // ordered before this thread's parent fetch_add (program order +
      // acq_rel), hence before the root win, the generation bump, and any
      // next-round arrival here.
      node.count.store(0, std::memory_order_relaxed);
      index /= 2;
    }
    // Root winner: everyone else is parked (or about to park on `gen`).
    if (completion_) {
      completion_();
    }
    generation_.store(gen + 1, std::memory_order_release);
    generation_.notify_all();
  }

 private:
  struct alignas(64) Node {
    std::atomic<std::uint32_t> count{0};
    std::uint32_t expected = 0;
  };

  int participants_;
  std::function<void()> completion_;
  std::vector<std::unique_ptr<Node[]>> levels_;
  alignas(64) std::atomic<std::uint64_t> generation_{0};
};

}  // namespace fpst::sim
