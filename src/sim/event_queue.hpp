// Zero-allocation event queue for the discrete-event kernel.
//
// The simulator's hot loop is pop-min / dispatch / push, millions of times
// per simulated second. The previous implementation paid for each event
// three ways: a `std::function` closure (type-erased, potentially
// heap-backed), `std::priority_queue` sift operations moving those 48-byte
// elements through a multi-megabyte heap, and a `const_cast` extraction
// hack because `priority_queue` only exposes a const top(). This queue
// replaces all of that with a structure shaped like the workload:
//
//   * Events are grouped into *buckets*, one per distinct pending
//     timestamp. A bucket is a flat FIFO of 8-byte tagged payload words —
//     appends and pops are pointer bumps with perfect cache behaviour.
//     Within one timestamp, FIFO order *is* insertion-sequence order, so
//     the `(time, seq)` dispatch contract of the old queue holds by
//     construction, without storing a sequence number at all.
//
//   * The buckets themselves sit in an intrusive 4-ary min-heap keyed on
//     time. Timestamps in the heap are unique, so the heap holds one
//     16-byte POD entry per *distinct time*, not per event — for the
//     fan-out-heavy workloads of this machine model (synchronisation
//     storms where dozens of processes wake at the same instant, vector
//     forms completing on cycle boundaries) the heap stays a few KB and
//     cache-resident.
//
//   * A payload word is either a `std::coroutine_handle<>` address (the
//     dominant event kind — resumption — never touches a closure) or a
//     tagged index into a slab of recycled `std::function` slots for the
//     general path. Buckets and closure slots are pool-allocated and
//     recycled with their storage intact, so steady-state scheduling
//     performs no allocation.
//
// Determinism contract: dispatch order is a pure function of
// (time, scheduling order) — identical to the (time, seq) ordering of the
// priority-queue implementation this replaces. The tperf dump of a traced
// run is byte-identical across the swap; tests/perf_test.cpp pins this.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace fpst::sim {

class EventQueue {
 public:
  /// A dispatched event: trivially copyable, extracted by value (no
  /// const_cast trickery). `resume` non-null marks the coroutine fast
  /// path; otherwise `slot` indexes the closure slab.
  struct Entry {
    SimTime t;
    std::coroutine_handle<> resume{};
    std::uint32_t slot = 0;
  };

  EventQueue() noexcept = default;

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  SimTime next_time() const { return heap_.front().t; }

  /// Fast path: schedule a coroutine resumption. The handle address is the
  /// payload word — no closure, no per-event allocation.
  void push_resume(SimTime t, std::coroutine_handle<> h) {
    push_word(t, reinterpret_cast<std::uint64_t>(h.address()));
  }

  /// General path: schedule a closure. The `std::function` lands in a
  /// recycled slab slot; the payload word carries the tagged slot index.
  void push_call(SimTime t, std::function<void()> fn) {
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(slab_.size());
      slab_.push_back(std::move(fn));
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slab_[slot] = std::move(fn);
    }
    push_word(t, (static_cast<std::uint64_t>(slot) << 1) | 1u);
  }

  /// Extract the earliest event. Precondition: !empty().
  Entry pop_min() {
    const BucketRef top = heap_.front();
    Bucket& b = buckets_[top.bucket];
    const std::uint64_t w = b.fifo[b.head++];
    if (b.head == b.fifo.size()) {
      // Bucket drained: drop it from the heap, the time-lookup table and
      // back onto the bucket free list (its FIFO keeps its storage).
      pop_heap_root();
      map_erase(top.t.ps());
      b.fifo.clear();
      b.head = 0;
      free_buckets_.push_back(top.bucket);
    }
    --count_;
    Entry e;
    e.t = top.t;
    if (w & 1u) {
      e.slot = static_cast<std::uint32_t>(w >> 1);
    } else {
      e.resume = std::coroutine_handle<>::from_address(
          reinterpret_cast<void*>(w));
    }
    return e;
  }

  /// Move the closure out of `slot` and recycle the slot. The function is
  /// extracted *before* invocation so a closure that schedules further
  /// events (growing or reusing the slab) cannot invalidate itself.
  std::function<void()> take_slot(std::uint32_t slot) {
    std::function<void()> fn = std::move(slab_[slot]);
    slab_[slot] = nullptr;
    free_slots_.push_back(slot);
    return fn;
  }

  /// Introspection for tests and the engine bench: storage committed to
  /// the pools (high-water marks, not live counts).
  std::size_t slab_capacity() const { return slab_.size(); }
  std::size_t bucket_capacity() const { return buckets_.size(); }
  std::size_t distinct_times() const { return heap_.size(); }

 private:
  /// 4-ary heap entry: one per distinct pending timestamp (times in the
  /// heap are unique, so time alone is the key).
  struct BucketRef {
    SimTime t;
    std::uint32_t bucket = 0;
  };

  struct Bucket {
    std::vector<std::uint64_t> fifo;
    std::uint32_t head = 0;
  };

  /// Open-addressed time -> bucket-index table (linear probing, backward-
  /// shift deletion). Simulated times are non-negative, so kEmptyKey is a
  /// safe sentinel.
  struct MapSlot {
    std::int64_t key = kEmptyKey;
    std::uint32_t bucket = 0;
  };
  static constexpr std::int64_t kEmptyKey = -1;

  static std::size_t hash_key(std::int64_t key) {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(key) *
                                    0x9E3779B97F4A7C15ull);
  }

  void push_word(SimTime t, std::uint64_t w) {
    Bucket& b = buckets_[bucket_for(t)];
    b.fifo.push_back(w);
    ++count_;
  }

  /// Bucket for timestamp `t`, creating (and heap-inserting) it if absent.
  std::uint32_t bucket_for(SimTime t) {
    if (map_.empty()) {
      map_grow(16);
    }
    const std::int64_t key = t.ps();
    std::size_t i = hash_key(key) & map_mask_;
    while (map_[i].key != kEmptyKey) {
      if (map_[i].key == key) {
        return map_[i].bucket;
      }
      i = (i + 1) & map_mask_;
    }
    std::uint32_t idx;
    if (free_buckets_.empty()) {
      idx = static_cast<std::uint32_t>(buckets_.size());
      buckets_.emplace_back();
    } else {
      idx = free_buckets_.back();
      free_buckets_.pop_back();
    }
    map_[i] = MapSlot{key, idx};
    ++map_live_;
    push_heap(BucketRef{t, idx});
    // Keep the load factor under ~0.7 (rehash invalidates `i`, but the
    // slot is already written).
    if (map_live_ * 10 > map_.size() * 7) {
      map_grow(map_.size() * 2);
    }
    return idx;
  }

  void map_grow(std::size_t new_cap) {
    std::vector<MapSlot> old = std::move(map_);
    map_.assign(new_cap, MapSlot{});
    map_mask_ = new_cap - 1;
    for (const MapSlot& s : old) {
      if (s.key == kEmptyKey) {
        continue;
      }
      std::size_t i = hash_key(s.key) & map_mask_;
      while (map_[i].key != kEmptyKey) {
        i = (i + 1) & map_mask_;
      }
      map_[i] = s;
    }
  }

  void map_erase(std::int64_t key) {
    std::size_t i = hash_key(key) & map_mask_;
    while (map_[i].key != key) {
      i = (i + 1) & map_mask_;
    }
    // Backward-shift deletion keeps probe chains intact with no
    // tombstones.
    std::size_t j = i;
    for (;;) {
      map_[i].key = kEmptyKey;
      for (;;) {
        j = (j + 1) & map_mask_;
        if (map_[j].key == kEmptyKey) {
          --map_live_;
          return;
        }
        const std::size_t k = hash_key(map_[j].key) & map_mask_;
        // Move map_[j] up unless its ideal slot k lies cyclically in
        // (i, j] — in that case the probe chain is intact without it.
        const bool in_range = i <= j ? (i < k && k <= j) : (i < k || k <= j);
        if (!in_range) {
          break;
        }
      }
      map_[i] = map_[j];
      i = j;
    }
  }

  void push_heap(BucketRef e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (heap_[parent].t <= e.t) {
        break;
      }
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void pop_heap_root() {
    const BucketRef last = heap_.back();
    heap_.pop_back();
    if (heap_.empty()) {
      return;
    }
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) {
        break;
      }
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (heap_[c].t < heap_[best].t) {
          best = c;
        }
      }
      if (heap_[best].t >= last.t) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }

  std::size_t count_ = 0;
  std::vector<BucketRef> heap_;
  std::vector<Bucket> buckets_;
  std::vector<std::uint32_t> free_buckets_;
  std::vector<MapSlot> map_;
  std::size_t map_mask_ = 0;
  std::size_t map_live_ = 0;
  std::vector<std::function<void()>> slab_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace fpst::sim
