// Conservative parallel discrete-event engine.
//
// The serial kernel (simulator.hpp) executes one event queue; a 10-cube
// machine model — 1024 nodes, ~10k router processes — is serialized through
// it. This engine shards the model across host threads while keeping the
// simulation bit-for-bit deterministic:
//
//   * The cube's nodes are partitioned into contiguous subcubes, one per
//     shard (ShardMap). Subcube shards keep every low-dimension cube link
//     internal to a shard, so for the dimension-ordered traffic of e-cube
//     routing most packets never leave their shard. Shards are numbered
//     along the binary-reflected Gray code of the high node bits, so
//     consecutive shards are cube neighbours.
//
//   * Each shard owns a private Simulator (its own event queue, its own
//     clock) driven by a host worker thread. Shards synchronize with
//     *barrier epochs*: every epoch processes the window [T, T + L) where
//     T is the globally earliest pending event and L is the lookahead —
//     the minimum latency of any cross-shard interaction. In the T Series
//     model every cross-shard effect is a link DMA (5 us startup plus
//     >= 16 us of wire time for the 8-byte header, link/link.hpp), so no
//     event executed inside the window can affect another shard within
//     that same window. This is classic conservative (CMB-style)
//     synchronization with the lookahead taken from the paper's link
//     timing.
//
//   * Cross-shard messages travel through per-(source, destination)
//     mailboxes. A mailbox has exactly one producer (the source shard's
//     worker, during the parallel phase) and one consumer (the epoch
//     coordinator, during the serial phase between barriers); ownership
//     alternates at the barrier, so the handoff needs no locks. The
//     coordinator merges drained mail in a deterministic total order —
//     (timestamp, key, source shard, per-pair sequence) — before
//     scheduling it, so delivery order is a pure function of the
//     simulation state, never of host thread timing. With the key chosen
//     as the message trace id, same-instant cross-shard deliveries land
//     in (timestamp, trace id, shard id) order, which the determinism
//     tests pin across thread counts.
//
// Worker-thread count is independent of the shard count: shards are
// statically assigned round-robin to threads, and because each shard's
// epoch work is sequential-deterministic and the merge order is fixed,
// running 4 shards on 1, 2 or 4 threads produces identical simulations.
// With a single shard the engine degenerates to the serial kernel: run()
// just drains the one queue, so `--threads 1` reproduces today's serial
// engine exactly, byte for byte.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace fpst::sim {

/// Partition of a binary n-cube's 2^dim nodes into 2^k equal contiguous
/// subcubes. Nodes sharing the top k address bits form one shard — all
/// dim-k low cube dimensions stay shard-internal — and shards are numbered
/// by the Gray-code rank of those top bits, so shard s and shard s+1 are
/// adjacent subcubes (their nodes differ in exactly one cube dimension).
class ShardMap {
 public:
  /// The whole cube on one shard.
  ShardMap() = default;

  /// Throws std::invalid_argument unless 1 <= shards <= 2^dimension and
  /// shards is a power of two.
  ShardMap(int dimension, int shards);

  int dimension() const { return dim_; }
  int shards() const { return 1 << log2_shards_; }
  int log2_shards() const { return log2_shards_; }

  /// Shard executing cube node `node`.
  int shard_of(std::uint32_t node) const {
    return static_cast<int>(
        gray_rank(node >> static_cast<unsigned>(dim_ - log2_shards_)));
  }

  /// True when cube dimension `dim` connects two shards (the high
  /// dimensions) rather than staying inside one subcube.
  bool dim_crosses_shards(int dim) const { return dim >= dim_ - log2_shards_; }

  /// Binary-reflected Gray code and its rank (inverse). Duplicated from
  /// net/hypercube (two expressions) because the sim layer sits below net.
  static std::uint32_t gray(std::uint32_t i) { return i ^ (i >> 1); }
  static std::uint32_t gray_rank(std::uint32_t g) {
    std::uint32_t r = 0;
    for (; g != 0; g >>= 1) {
      r ^= g;
    }
    return r;
  }

 private:
  int dim_ = 0;
  int log2_shards_ = 0;
};

/// The sharded engine: S Simulators, W worker threads, barrier epochs.
class ParallelSim {
 public:
  struct Options {
    /// Shard count (determines the simulation's partition and therefore
    /// its exact event interleaving; must be fixed to compare runs).
    int shards = 1;
    /// Host worker threads; 0 means one per shard. Any value yields the
    /// identical simulation — threads only divide the epoch work.
    int threads = 0;
    /// Conservative lookahead: a lower bound on the simulated latency of
    /// every cross-shard interaction. Must be positive when shards > 1.
    /// For the T Series link model pass
    /// link::LinkParams::transfer_time(0) — DMA startup + header wire
    /// time, the cheapest possible cross-shard packet.
    SimTime lookahead{};
  };

  explicit ParallelSim(Options opts);

  ParallelSim(const ParallelSim&) = delete;
  ParallelSim& operator=(const ParallelSim&) = delete;

  ~ParallelSim();

  int shards() const { return static_cast<int>(sims_.size()); }
  int threads() const { return threads_; }
  SimTime lookahead() const { return lookahead_; }

  Simulator& shard(int s) { return *sims_.at(static_cast<std::size_t>(s)); }

  /// Hand a cross-shard effect to shard `to`: at simulated time `at`,
  /// `deliver` runs on that shard's simulator. Must be called either from
  /// shard `from`'s worker during an epoch (the single-producer side of
  /// the (from, to) mailbox) or from the driving thread while the engine
  /// is not running. `at` must be at least lookahead() in the future of
  /// shard `from`'s clock; the epoch scheduler aborts the process on a
  /// causality violation (a delivery time already in the destination's
  /// past), since a silently late event would corrupt determinism.
  /// Same-instant deliveries are merged in (at, key, from, sequence)
  /// order; pass the message trace id as `key`.
  void post(int from, int to, SimTime at, std::uint64_t key,
            std::function<void()> deliver);

  /// Drive every shard until all queues drain and no mail is in flight.
  /// Rethrows the failure of the lowest-numbered failing shard, if any.
  /// Returns events executed across all shards during this call.
  std::uint64_t run();

  /// Time of the latest event any shard has executed (the machine-wide
  /// completion time after run(); epoch padding is excluded).
  SimTime now() const;

  /// Total events executed across all shards since construction. Intended
  /// for the driving thread between runs; during a run prefer progress().
  std::uint64_t events_processed() const;

  /// Live machine-wide event-count snapshot, safe from any thread while
  /// the workers run: the sum of every shard's Simulator::progress(). The
  /// per-shard counters are single-writer relaxed atomics, so the sum is
  /// monotonically nondecreasing but carries no synchronizes-with edge —
  /// see Simulator::progress() for the full memory-order contract.
  std::uint64_t progress() const;

  /// Where the engine's wall-clock goes — the answer to "why does scaling
  /// flatten". Host-time accumulators since construction:
  ///   * shard_busy_ns[s]   wall time shard s spent executing events
  ///                        (inside run_until), the useful work;
  ///   * worker_barrier_ns[w]  wall time worker w spent parked at the
  ///                        epoch barrier — load imbalance plus the serial
  ///                        phase it waits out;
  ///   * merge_ns           wall time of the serial phases (mailbox drain
  ///                        + window selection + merged delivery);
  ///   * epochs             barrier epochs executed;
  ///   * mail_delivered     cross-shard deliveries actually scheduled.
  /// All wall-clock, so values vary run to run — report them, never fold
  /// them into determinism-gated dumps.
  struct Profile {
    std::uint64_t epochs = 0;
    std::uint64_t merge_ns = 0;
    std::uint64_t mail_delivered = 0;
    std::vector<std::uint64_t> shard_busy_ns;
    std::vector<std::uint64_t> shard_events;
    std::vector<std::uint64_t> worker_barrier_ns;
  };

  /// Snapshot of the accumulators, safe from any thread while the workers
  /// run. Same memory-order contract as progress(): every accumulator has
  /// a single writer (the owning worker for per-shard/per-worker slots,
  /// the coordinator for the epoch-wide ones) storing relaxed; readers get
  /// monotonically nondecreasing values with no synchronizes-with edge.
  Profile profile() const;

 private:
  struct Mail {
    SimTime at;
    std::uint64_t key = 0;
    std::uint32_t from = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };

  /// One single-producer mailbox per (from, to) shard pair. The producer
  /// appends during the parallel phase; the coordinator takes the batch
  /// during the serial phase. The epoch barrier orders the two.
  struct PairBox {
    std::vector<Mail> box;
    std::uint64_t next_seq = 0;
  };

  PairBox& box(int from, int to) {
    return boxes_[static_cast<std::size_t>(from) *
                      static_cast<std::size_t>(shards()) +
                  static_cast<std::size_t>(to)];
  }

  /// Serial phase, run with every worker parked at the barrier: drain all
  /// mailboxes, pick the next epoch window, schedule in-window deliveries
  /// in merged deterministic order. Sets stop_ when the machine drained.
  void serial_phase() noexcept;
  /// Schedule every pending delivery below `window_end` onto its shard.
  void deliver_below(SimTime window_end);
  void record_failure(int shard, std::exception_ptr e);

  /// One cache line per counter so concurrent writers never false-share.
  struct alignas(64) RelaxedNs {
    std::atomic<std::uint64_t> ns{0};
  };

  SimTime lookahead_{};
  int threads_ = 1;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<PairBox> boxes_;
  /// Per destination shard: drained-but-not-yet-due mail.
  std::vector<std::vector<Mail>> pending_;

  // Epoch state: written only in the serial phase (or before workers
  // start), read by workers. The barrier's completion step provides the
  // ordering.
  SimTime epoch_deadline_{};
  bool stop_ = false;

  // First failure, by lowest shard id so the rethrown error is stable.
  std::exception_ptr failure_{};
  int failure_shard_ = 0;

  // Profiler accumulators (see Profile). Sized at construction: one slot
  // per shard / per worker, each written by exactly one thread.
  std::unique_ptr<RelaxedNs[]> shard_busy_ns_;
  std::unique_ptr<RelaxedNs[]> worker_barrier_ns_;
  std::atomic<std::uint64_t> epochs_{0};
  std::atomic<std::uint64_t> merge_ns_{0};
  std::atomic<std::uint64_t> mail_delivered_{0};
};

}  // namespace fpst::sim
