// Conservative parallel discrete-event engine with distance-aware windows.
//
// The serial kernel (simulator.hpp) executes one event queue; a 12-cube
// machine model — 4096 nodes, ~40k router processes — is serialized
// through it. This engine shards the model across host threads while
// keeping the simulation bit-for-bit deterministic:
//
//   * The cube's nodes are partitioned into contiguous subcubes, one per
//     shard (ShardMap). Subcube shards keep every low-dimension cube link
//     internal to a shard, so for the dimension-ordered traffic of e-cube
//     routing most packets never leave their shard. Shards are numbered
//     along the binary-reflected Gray code of the high node bits, so
//     consecutive shards are cube neighbours.
//
//   * Each shard owns a private Simulator (its own event queue, its own
//     clock) driven by a host worker thread. Shards synchronize with
//     *barrier epochs*, but unlike a classic CMB global window the epoch
//     horizon is per shard: a message that must cross d cube dimensions
//     cannot arrive earlier than d · transfer_time after it was sent, so
//     shard s may run ahead to
//
//       bound(s) = min over busy r != s of  next(r) + la(r, s)
//
//     where la(r, s) is the pairwise lookahead matrix (hop distance times
//     the link's minimum transfer time once set_topology() installs the
//     cube map) and next(r) is shard r's earliest pending work. Distant
//     shard pairs therefore exchange synchronization far less often than
//     neighbours, which is what lets the engine hold its
//     events/sec-per-core efficiency out to the paper's 12-cube. The
//     matrix is safe against relaying because cube hop distance is a
//     metric: any path r -> r' -> s is at least as long as la(r, s), so
//     the direct term already bounds every indirect influence.
//
//   * bound(s) only accounts for *other* shards' existing work. The one
//     influence it cannot see is an echo: shard s posts mail, the
//     receiver reacts, and the reply lands back on s — no earlier than
//     echo(s) = min round trip through any other shard — after the
//     instant that posted. So inside an epoch a shard executes whole
//     timestamps up to its bound and, the first time an instant posts
//     cross-shard mail (post() raises a flag on the poster's own
//     thread), caps the remainder of its run at post_time + echo(s).
//     A shard whose events stay local runs clear to its bound — when it
//     holds the only remaining work that bound is infinite, so long
//     single-shard phases (boot, drain, serial program sections) run at
//     serial-kernel speed instead of creeping forward window by window.
//
//   * Cross-shard messages travel through per-(source, destination)
//     mailboxes. A mailbox has exactly one producer (the source shard's
//     worker, during the parallel phase) and one consumer (the epoch
//     coordinator, during the serial phase between barriers); ownership
//     alternates at the barrier, so the handoff needs no locks, and each
//     mailbox sits on its own cache line so concurrent producers never
//     false-share. The coordinator merges drained mail in a deterministic
//     total order — (timestamp, key, source shard, per-pair sequence) —
//     before scheduling it, so delivery order is a pure function of the
//     simulation state, never of host thread timing. With the key chosen
//     as the message trace id, same-instant cross-shard deliveries land
//     in (timestamp, trace id, shard id) order, which the determinism
//     tests pin across thread counts.
//
//   * Workers meet at a combining-tree barrier (tree_barrier.hpp) rather
//     than a flat counter: each worker owns a *contiguous block* of
//     Gray-coded shards, so sibling leaves of the tree are neighbouring
//     subcube halves and the barrier follows the cube hierarchy. The
//     contiguous blocks also give first-touch locality — a worker's
//     mailbox rows and event pools are touched only by that worker during
//     parallel phases, so on NUMA hosts they settle on the worker's node.
//
// Worker-thread count is independent of the shard count: because each
// shard's epoch work is sequential-deterministic, the epoch horizons are
// pure functions of simulation state, and the merge order is fixed,
// running 8 shards on 1, 2 or 4 threads produces identical simulations.
// With a single shard the engine degenerates to the serial kernel: run()
// just drains the one queue, so `--threads 1` reproduces the serial
// engine exactly, byte for byte. Options::uniform_window restores the
// PR-5 behaviour — one global window of the base lookahead per epoch —
// and exists as the A/B baseline for bench_parallel_scaling.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace fpst::sim {

/// Partition of a binary n-cube's 2^dim nodes into 2^k equal contiguous
/// subcubes. Nodes sharing the top k address bits form one shard — all
/// dim-k low cube dimensions stay shard-internal — and shards are numbered
/// by the Gray-code rank of those top bits, so shard s and shard s+1 are
/// adjacent subcubes (their nodes differ in exactly one cube dimension).
class ShardMap {
 public:
  /// The whole cube on one shard.
  ShardMap() = default;

  /// Throws std::invalid_argument unless 1 <= shards <= 2^dimension and
  /// shards is a power of two.
  ShardMap(int dimension, int shards);

  int dimension() const { return dim_; }
  int shards() const { return 1 << log2_shards_; }
  int log2_shards() const { return log2_shards_; }

  /// Shard executing cube node `node`.
  int shard_of(std::uint32_t node) const {
    return static_cast<int>(
        gray_rank(node >> static_cast<unsigned>(dim_ - log2_shards_)));
  }

  /// True when cube dimension `dim` connects two shards (the high
  /// dimensions) rather than staying inside one subcube.
  bool dim_crosses_shards(int dim) const { return dim >= dim_ - log2_shards_; }

  /// Minimum cube hop count between any node of shard `a` and any node of
  /// shard `b`: the two subcubes differ exactly in the bits where their
  /// Gray-coded addresses differ, and a message must cross one cube
  /// dimension per differing bit. Zero iff a == b. This is the Hamming
  /// distance between subcube addresses, so it is a metric — the triangle
  /// inequality is what makes the pairwise lookahead matrix conservative.
  int hop_distance(int a, int b) const {
    return std::popcount(gray(static_cast<std::uint32_t>(a)) ^
                         gray(static_cast<std::uint32_t>(b)));
  }

  /// Binary-reflected Gray code and its rank (inverse). Duplicated from
  /// net/hypercube (two expressions) because the sim layer sits below net.
  static std::uint32_t gray(std::uint32_t i) { return i ^ (i >> 1); }
  static std::uint32_t gray_rank(std::uint32_t g) {
    std::uint32_t r = 0;
    for (; g != 0; g >>= 1) {
      r ^= g;
    }
    return r;
  }

 private:
  int dim_ = 0;
  int log2_shards_ = 0;
};

/// The sharded engine: S Simulators, W worker threads, barrier epochs.
class ParallelSim {
 public:
  struct Options {
    /// Shard count (determines the simulation's partition and therefore
    /// its exact event interleaving; must be fixed to compare runs).
    int shards = 1;
    /// Host worker threads; 0 means one per shard. Any value yields the
    /// identical simulation — threads only divide the epoch work.
    int threads = 0;
    /// Conservative base lookahead: a lower bound on the simulated
    /// latency of every *single-hop* cross-shard interaction. Must be
    /// positive when shards > 1. For the T Series link model pass
    /// link::LinkParams::transfer_time(0) — DMA startup + header wire
    /// time, the cheapest possible cross-shard packet.
    SimTime lookahead{};
    /// Legacy PR-5 windowing: one global [T, T + lookahead) window per
    /// epoch, every shard padded to the same horizon, distance ignored.
    /// Kept as the measured baseline for the distance-aware scheduler —
    /// bench_parallel_scaling --uniform runs it for the A/B comparison.
    bool uniform_window = false;
  };

  explicit ParallelSim(Options opts);

  ParallelSim(const ParallelSim&) = delete;
  ParallelSim& operator=(const ParallelSim&) = delete;

  ~ParallelSim();

  int shards() const { return static_cast<int>(sims_.size()); }
  int threads() const { return threads_; }
  /// The base (single-hop) lookahead from Options.
  SimTime lookahead() const { return lookahead_; }

  /// Pairwise conservative lookahead currently in force: the minimum
  /// simulated delay between shard `from` executing an event and any
  /// resulting delivery on shard `to`. Uniform (== lookahead()) until
  /// set_topology() installs the distance matrix.
  SimTime lookahead(int from, int to) const;

  /// Install the cube topology: lookahead(a, b) becomes
  /// hop_distance(a, b) * lookahead(). Callers posting mail must then
  /// honour the *pairwise* bound — the machine layer does automatically,
  /// because cross-shard cables (link::CrossLink) only ever connect
  /// Gray-adjacent subcubes, one hop at a time, each hop adding at least
  /// the base lookahead. Throws std::invalid_argument if `map` does not
  /// partition into exactly shards() shards. Must not be called while
  /// run() is executing.
  void set_topology(const ShardMap& map);

  /// Test hook: overwrite one matrix entry. An entry *above* the true
  /// minimum delay is a lookahead lie — the scheduler will let `to` run
  /// too far ahead and the next real delivery trips the causality abort,
  /// which is exactly what the lie-detection tests pin. Must not be
  /// called while run() is executing.
  void override_lookahead(int from, int to, SimTime la);

  Simulator& shard(int s) { return *sims_.at(static_cast<std::size_t>(s)); }

  /// Hand a cross-shard effect to shard `to`: at simulated time `at`,
  /// `deliver` runs on that shard's simulator. Must be called either from
  /// shard `from`'s worker during an epoch (the single-producer side of
  /// the (from, to) mailbox) or from the driving thread while the engine
  /// is not running. `at` must be at least lookahead(from, to) in the
  /// future of shard `from`'s clock; the epoch scheduler aborts the
  /// process on a causality violation (a delivery time already in the
  /// destination's past), since a silently late event would corrupt
  /// determinism. Same-instant deliveries are merged in (at, key, from,
  /// sequence) order; pass the message trace id as `key`. A self-post
  /// (from == to) issued while the engine is running is scheduled
  /// directly — it stays on the poster's own thread and only needs
  /// `at` >= the shard's current time.
  void post(int from, int to, SimTime at, std::uint64_t key,
            std::function<void()> deliver);

  /// Drive every shard until all queues drain and no mail is in flight.
  /// Rethrows the failure of the lowest-numbered failing shard, if any.
  /// Returns events executed across all shards during this call.
  std::uint64_t run();

  /// Time of the latest event any shard has executed (the machine-wide
  /// completion time after run(); epoch padding is excluded).
  SimTime now() const;

  /// Total events executed across all shards since construction. Intended
  /// for the driving thread between runs; during a run prefer progress().
  std::uint64_t events_processed() const;

  /// Live machine-wide event-count snapshot, safe from any thread while
  /// the workers run: the sum of every shard's Simulator::progress(). The
  /// per-shard counters are single-writer relaxed atomics, so the sum is
  /// monotonically nondecreasing but carries no synchronizes-with edge —
  /// see Simulator::progress() for the full memory-order contract.
  std::uint64_t progress() const;

  /// Where the engine's wall-clock goes — the answer to "why does scaling
  /// flatten". Host-time accumulators since construction:
  ///   * shard_busy_ns[s]   wall time shard s spent executing events
  ///                        (inside run_until), the useful work;
  ///   * worker_barrier_ns[w]  wall time worker w spent parked at the
  ///                        epoch barrier — load imbalance plus the serial
  ///                        phase it waits out;
  ///   * merge_ns           wall time of the serial phases (mailbox drain
  ///                        + window selection + merged delivery);
  ///   * epochs             barrier epochs executed;
  ///   * mail_delivered     cross-shard deliveries actually scheduled;
  ///   * shard_syncs[s]     epochs in which shard s actually had due work
  ///                        scheduled — under the distance-aware horizons
  ///                        distant shards sit out most epochs, and this
  ///                        counter is how the bench proves it;
  ///   * mail_reserve_bytes bytes currently reserved across all mailbox
  ///                        and pending buffers, refreshed each serial
  ///                        phase — pinned by the reserve-shrink
  ///                        regression test so a distant pair skipping
  ///                        many epochs cannot hoard capacity forever.
  /// Wall-clock members vary run to run — report them, never fold them
  /// into determinism-gated dumps. epochs, mail_delivered and shard_syncs
  /// are pure functions of the simulation and shard count.
  struct Profile {
    std::uint64_t epochs = 0;
    std::uint64_t merge_ns = 0;
    std::uint64_t mail_delivered = 0;
    std::uint64_t mail_reserve_bytes = 0;
    std::vector<std::uint64_t> shard_busy_ns;
    std::vector<std::uint64_t> shard_events;
    std::vector<std::uint64_t> shard_syncs;
    std::vector<std::uint64_t> worker_barrier_ns;
  };

  /// Snapshot of the accumulators, safe from any thread while the workers
  /// run. Same memory-order contract as progress(): every accumulator has
  /// a single writer (the owning worker for per-shard/per-worker slots,
  /// the coordinator for the epoch-wide ones) storing relaxed; readers get
  /// monotonically nondecreasing values with no synchronizes-with edge.
  Profile profile() const;

 private:
  struct Mail {
    SimTime at;
    std::uint64_t key = 0;
    std::uint32_t from = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };

  /// One single-producer mailbox per (from, to) shard pair. The producer
  /// appends during the parallel phase; the coordinator takes the batch
  /// during the serial phase. The epoch barrier orders the two. Each box
  /// owns a full cache line: boxes with different `from` are appended to
  /// by different workers concurrently, and unpadded neighbours in the
  /// row-major array would false-share on every push.
  struct alignas(64) PairBox {
    std::vector<Mail> box;
    std::uint64_t next_seq = 0;
  };

  /// Per-shard epoch instructions, written by the serial phase and read
  /// by the owning worker (plus `posted`, written back by that worker's
  /// posts). The barrier orders the handoff; one line per shard so the
  /// posted-flag writes never share a line across workers.
  struct alignas(64) ShardCtl {
    SimTime deadline{};  ///< inclusive horizon from the pairwise bounds
    bool runnable = false;  ///< shard has due work this epoch
    bool posted = false;  ///< set by post(); triggers the echo cap
  };

  PairBox& box(int from, int to) {
    return boxes_[static_cast<std::size_t>(from) *
                      static_cast<std::size_t>(shards()) +
                  static_cast<std::size_t>(to)];
  }

  SimTime& la(int from, int to) {
    return la_[static_cast<std::size_t>(from) *
                   static_cast<std::size_t>(shards()) +
               static_cast<std::size_t>(to)];
  }

  /// Recompute echo_[s] = min round trip via any other shard.
  void rebuild_echo();

  /// Serial phase, run with every worker parked at the barrier: drain all
  /// mailboxes, pick each shard's next horizon, schedule in-window
  /// deliveries in merged deterministic order. Sets stop_ when drained.
  void serial_phase() noexcept;
  /// Schedule pending deliveries for `dst` strictly below `bound` onto
  /// its shard, in merged deterministic order.
  void deliver_below(int dst, SimTime bound);
  void record_failure(int shard, std::exception_ptr e);

  /// One cache line per counter so concurrent writers never false-share.
  struct alignas(64) RelaxedCounter {
    std::atomic<std::uint64_t> v{0};
  };

  SimTime lookahead_{};
  bool uniform_window_ = false;
  int threads_ = 1;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<PairBox> boxes_;
  /// Per destination shard: drained-but-not-yet-due mail.
  std::vector<std::vector<Mail>> pending_;
  /// Pairwise lookahead matrix (row-major, [from][to]); diagonal unused.
  std::vector<SimTime> la_;
  /// echo_[s]: min over r != s of la(s, r) + la(r, s) — the earliest a
  /// send by s can influence s again. Caps the tail of s's epoch run
  /// after its first cross-shard post.
  std::vector<SimTime> echo_;

  // Epoch state: written only in the serial phase (or before workers
  // start), read by workers. The barrier's completion step provides the
  // ordering.
  std::vector<ShardCtl> ctl_;
  bool stop_ = false;
  /// True between worker-pool start and join; post() uses it to route
  /// running self-posts straight onto the poster's own queue.
  bool running_ = false;

  // Scratch for serial_phase (persists to avoid per-epoch allocation).
  std::vector<SimTime> next_;
  std::vector<bool> busy_;

  // First failure, by lowest shard id so the rethrown error is stable.
  std::exception_ptr failure_{};
  int failure_shard_ = 0;

  // Profiler accumulators (see Profile). Sized at construction: one slot
  // per shard / per worker, each written by exactly one thread.
  std::unique_ptr<RelaxedCounter[]> shard_busy_ns_;
  std::unique_ptr<RelaxedCounter[]> worker_barrier_ns_;
  std::unique_ptr<RelaxedCounter[]> shard_syncs_;
  std::atomic<std::uint64_t> epochs_{0};
  std::atomic<std::uint64_t> merge_ns_{0};
  std::atomic<std::uint64_t> mail_delivered_{0};
  std::atomic<std::uint64_t> mail_reserve_bytes_{0};
};

}  // namespace fpst::sim
