#include "sim/parallel_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sim/proc.hpp"  // completes Proc for Simulator's root-frame vector
#include "sim/tree_barrier.hpp"

namespace fpst::sim {

namespace {

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

int log2_exact(int v) {
  int k = 0;
  while ((1 << k) < v) {
    ++k;
  }
  return k;
}

/// Total order for merged cross-shard mail: timestamp, then key (the
/// message trace id), then source shard, then per-pair FIFO sequence.
bool mail_before(const auto& a, const auto& b) {
  if (a.at != b.at) {
    return a.at < b.at;
  }
  if (a.key != b.key) {
    return a.key < b.key;
  }
  if (a.from != b.from) {
    return a.from < b.from;
  }
  return a.seq < b.seq;
}

std::uint64_t wall_ns_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

constexpr SimTime kFarFuture =
    SimTime::picoseconds(std::numeric_limits<std::int64_t>::max());

/// Mailbox capacity a pair may keep while idle. Above this, capacity must
/// be justified by the traffic actually moving through the box (4x the
/// last drained batch / current backlog), or it is released — a distant
/// pair that bursts once and then skips thousands of epochs must not pin
/// its burst-sized buffer forever.
constexpr std::size_t kIdleMailCap = 64;

}  // namespace

ShardMap::ShardMap(int dimension, int shards) : dim_{dimension} {
  if (dimension < 0 || dimension > 30) {
    throw std::invalid_argument("ShardMap: dimension out of range");
  }
  if (!is_pow2(shards) || shards > (1 << dimension)) {
    throw std::invalid_argument(
        "ShardMap: shard count must be a power of two no larger than the "
        "node count");
  }
  log2_shards_ = log2_exact(shards);
}

ParallelSim::ParallelSim(Options opts)
    : lookahead_{opts.lookahead}, uniform_window_{opts.uniform_window} {
  if (opts.shards < 1) {
    throw std::invalid_argument("ParallelSim: shards must be >= 1");
  }
  if (opts.shards > 1 && !(lookahead_ > SimTime{})) {
    throw std::invalid_argument(
        "ParallelSim: a positive lookahead is required when sharding — no "
        "conservative window exists without one");
  }
  threads_ = opts.threads > 0 ? opts.threads : opts.shards;
  threads_ = std::min(threads_, opts.shards);
  const auto ns = static_cast<std::size_t>(opts.shards);
  sims_.reserve(ns);
  for (int s = 0; s < opts.shards; ++s) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  boxes_.resize(ns * ns);
  pending_.resize(ns);
  // Until set_topology() installs cube distances, every pair is assumed
  // one hop away: the uniform matrix is the old single-lookahead contract.
  la_.assign(ns * ns, lookahead_);
  echo_.assign(ns, lookahead_ + lookahead_);
  ctl_.resize(ns);
  next_.resize(ns);
  busy_.resize(ns);
  shard_busy_ns_ = std::make_unique<RelaxedCounter[]>(ns);
  shard_syncs_ = std::make_unique<RelaxedCounter[]>(ns);
  worker_barrier_ns_ =
      std::make_unique<RelaxedCounter[]>(static_cast<std::size_t>(threads_));
}

ParallelSim::~ParallelSim() = default;

SimTime ParallelSim::lookahead(int from, int to) const {
  if (from < 0 || from >= shards() || to < 0 || to >= shards()) {
    throw std::invalid_argument("ParallelSim::lookahead: bad shard id");
  }
  return la_[static_cast<std::size_t>(from) *
                 static_cast<std::size_t>(shards()) +
             static_cast<std::size_t>(to)];
}

void ParallelSim::set_topology(const ShardMap& map) {
  if (map.shards() != shards()) {
    throw std::invalid_argument(
        "ParallelSim::set_topology: shard map partitions into a different "
        "shard count than the engine");
  }
  for (int a = 0; a < shards(); ++a) {
    for (int b = 0; b < shards(); ++b) {
      la(a, b) = a == b ? lookahead_
                        : lookahead_ * static_cast<std::int64_t>(
                                           map.hop_distance(a, b));
    }
  }
  rebuild_echo();
}

void ParallelSim::override_lookahead(int from, int to, SimTime value) {
  if (from < 0 || from >= shards() || to < 0 || to >= shards() ||
      from == to) {
    throw std::invalid_argument(
        "ParallelSim::override_lookahead: bad shard pair");
  }
  if (!(value > SimTime{})) {
    throw std::invalid_argument(
        "ParallelSim::override_lookahead: lookahead must be positive");
  }
  la(from, to) = value;
  rebuild_echo();
}

void ParallelSim::rebuild_echo() {
  for (int s = 0; s < shards(); ++s) {
    SimTime echo = kFarFuture;
    for (int r = 0; r < shards(); ++r) {
      if (r == s) {
        continue;
      }
      echo = std::min(echo, la(s, r) + la(r, s));
    }
    echo_[static_cast<std::size_t>(s)] = echo;
  }
}

void ParallelSim::post(int from, int to, SimTime at, std::uint64_t key,
                       std::function<void()> deliver) {
  if (from < 0 || from >= shards() || to < 0 || to >= shards()) {
    throw std::invalid_argument("ParallelSim::post: bad shard id");
  }
  if (from == to && running_) {
    // A running self-post never leaves the poster's thread: schedule it
    // straight onto the shard's own queue. No lookahead applies — the
    // shard cannot outrun itself — only monotonicity.
    Simulator& sim = *sims_[static_cast<std::size_t>(to)];
    if (at < sim.now()) {
      std::fprintf(stderr,
                   "parallel_sim: causality violation: self delivery at %s "
                   "is before shard %d time %s\n",
                   at.to_string().c_str(), to, sim.now().to_string().c_str());
      std::abort();
    }
    sim.schedule_at(at, std::move(deliver));
    return;
  }
  PairBox& pb = box(from, to);
  Mail m;
  m.at = at;
  m.key = key;
  m.from = static_cast<std::uint32_t>(from);
  m.seq = pb.next_seq++;
  m.fn = std::move(deliver);
  pb.box.push_back(std::move(m));
  if (from != to) {
    // Stops an unbounded (lone-shard) step loop: past this instant other
    // shards may gain work whose replies constrain us. Written only by
    // the shard's own worker (or the driving thread pre-run; harmless).
    ctl_[static_cast<std::size_t>(from)].posted = true;
  }
}

void ParallelSim::deliver_below(int dst, SimTime bound) {
  std::vector<Mail>& due = pending_[static_cast<std::size_t>(dst)];
  if (due.empty()) {
    return;
  }
  std::sort(due.begin(), due.end(),
            [](const Mail& a, const Mail& b) { return mail_before(a, b); });
  Simulator& sim = *sims_[static_cast<std::size_t>(dst)];
  std::size_t taken = 0;
  for (Mail& m : due) {
    if (m.at >= bound) {
      break;
    }
    if (m.at < sim.now()) {
      // A cross-shard delivery landing in the destination's past means
      // the lookahead contract was broken; executing it would silently
      // corrupt deterministic ordering, so die loudly instead.
      std::fprintf(stderr,
                   "parallel_sim: causality violation: cross-shard "
                   "delivery at %s is before shard %d time %s\n",
                   m.at.to_string().c_str(), dst,
                   sim.now().to_string().c_str());
      std::abort();
    }
    sim.schedule_at(m.at, std::move(m.fn));
    ++taken;
  }
  mail_delivered_.fetch_add(taken, std::memory_order_relaxed);
  due.erase(due.begin(), due.begin() + static_cast<std::ptrdiff_t>(taken));
}

void ParallelSim::serial_phase() noexcept {
  if (failure_ != nullptr) {
    stop_ = true;
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const int nshards = shards();
  // Take every mailbox batch. Producers are parked at the barrier, so the
  // single-consumer side of the SPSC contract holds here. Capacity above
  // what this epoch's batch justifies is released (see kIdleMailCap).
  std::uint64_t reserve_bytes = 0;
  for (int from = 0; from < nshards; ++from) {
    for (int to = 0; to < nshards; ++to) {
      PairBox& pb = box(from, to);
      const std::size_t drained = pb.box.size();
      if (drained != 0) {
        std::vector<Mail>& dst = pending_[static_cast<std::size_t>(to)];
        dst.insert(dst.end(), std::make_move_iterator(pb.box.begin()),
                   std::make_move_iterator(pb.box.end()));
        pb.box.clear();
      }
      if (pb.box.capacity() > kIdleMailCap &&
          pb.box.capacity() > 4 * drained) {
        pb.box.shrink_to_fit();
      }
      reserve_bytes += pb.box.capacity() * sizeof(Mail);
    }
  }
  // Each shard's earliest pending work — queued event or undelivered
  // mail — anchors the conservative horizons.
  bool any = false;
  for (int s = 0; s < nshards; ++s) {
    const auto us = static_cast<std::size_t>(s);
    const Simulator& sim = *sims_[us];
    SimTime next = kFarFuture;
    bool busy = false;
    if (!sim.idle()) {
      next = sim.next_event_time();
      busy = true;
    }
    for (const Mail& m : pending_[us]) {
      if (!busy || m.at < next) {
        next = m.at;
        busy = true;
      }
    }
    next_[us] = next;
    busy_[us] = busy;
    any = any || busy;
  }
  if (!any) {
    stop_ = true;
    merge_ns_.fetch_add(wall_ns_since(t0), std::memory_order_relaxed);
    return;
  }
  for (ShardCtl& c : ctl_) {
    c.runnable = false;
  }
  if (nshards == 1) {
    // Degenerate serial case: run() drains the queue directly; the serial
    // phase only folds self-posted mail back in (all of it — one shard
    // has no horizon).
    deliver_below(0, kFarFuture);
    ctl_[0].runnable = true;
    shard_syncs_[0].v.fetch_add(1, std::memory_order_relaxed);
  } else if (uniform_window_) {
    // Legacy PR-5 windowing: one global window of the base lookahead,
    // every shard padded to the same horizon.
    SimTime t_min = kFarFuture;
    for (int s = 0; s < nshards; ++s) {
      if (busy_[static_cast<std::size_t>(s)]) {
        t_min = std::min(t_min, next_[static_cast<std::size_t>(s)]);
      }
    }
    const SimTime window_end = t_min + lookahead_;
    for (int dst = 0; dst < nshards; ++dst) {
      deliver_below(dst, window_end);
    }
    // run_until is inclusive; the window is half-open at picosecond grain.
    const SimTime deadline = window_end - SimTime::picoseconds(1);
    for (int s = 0; s < nshards; ++s) {
      ctl_[static_cast<std::size_t>(s)].deadline = deadline;
      ctl_[static_cast<std::size_t>(s)].runnable = true;
      shard_syncs_[static_cast<std::size_t>(s)].v.fetch_add(
          1, std::memory_order_relaxed);
    }
  } else {
    // Distance-aware horizons. bound(s) is the earliest instant any other
    // shard's *existing* work can reach s; the triangle inequality of
    // cube hop distance makes the direct terms cover every relayed path,
    // and the worker's echo cap covers influence s creates itself by
    // posting. Shards whose horizon closes before their next event sit
    // the epoch out entirely (no clock padding), which is what keeps a
    // distant shard's synchronization frequency at 1/d. With one busy
    // shard the bound is infinite and it runs at serial-kernel speed
    // until its first post.
    for (int s = 0; s < nshards; ++s) {
      const auto us = static_cast<std::size_t>(s);
      if (!busy_[us]) {
        continue;  // no events, and no pending mail either (mail => busy)
      }
      SimTime bound = kFarFuture;
      for (int r = 0; r < nshards; ++r) {
        if (r == s || !busy_[static_cast<std::size_t>(r)]) {
          continue;
        }
        bound = std::min(bound, next_[static_cast<std::size_t>(r)] + la(r, s));
      }
      deliver_below(s, bound);
      ctl_[us].deadline =
          bound == kFarFuture ? kFarFuture : bound - SimTime::picoseconds(1);
      ctl_[us].runnable = next_[us] < bound;
      if (ctl_[us].runnable) {
        shard_syncs_[us].v.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // FPST_DEBUG_EPOCH=1 dumps each epoch's horizon decisions — the
  // first thing to reach for when a workload's epoch count surprises.
  static const bool debug_epochs =
      std::getenv("FPST_DEBUG_EPOCH") != nullptr;
  if (debug_epochs) {
    std::fprintf(stderr, "epoch %llu:",
                 static_cast<unsigned long long>(
                     epochs_.load(std::memory_order_relaxed)));
    for (int s = 0; s < nshards; ++s) {
      const auto us = static_cast<std::size_t>(s);
      if (!busy_[us]) {
        std::fprintf(stderr, " [%d idle]", s);
        continue;
      }
      std::fprintf(stderr, " [%d next=%lldus dl=%lldus run=%d]", s,
                   static_cast<long long>(next_[us].ps() / 1000000),
                   static_cast<long long>(
                       ctl_[us].deadline == kFarFuture
                           ? -1
                           : ctl_[us].deadline.ps() / 1000000),
                   ctl_[us].runnable ? 1 : 0);
    }
    std::fprintf(stderr, "\n");
  }
  for (std::vector<Mail>& p : pending_) {
    if (p.capacity() > kIdleMailCap && p.capacity() > 4 * p.size()) {
      p.shrink_to_fit();
    }
    reserve_bytes += p.capacity() * sizeof(Mail);
  }
  mail_reserve_bytes_.store(reserve_bytes, std::memory_order_relaxed);
  epochs_.fetch_add(1, std::memory_order_relaxed);
  merge_ns_.fetch_add(wall_ns_since(t0), std::memory_order_relaxed);
}

void ParallelSim::record_failure(int shard, std::exception_ptr e) {
  if (failure_ == nullptr || shard < failure_shard_) {
    failure_ = e;
    failure_shard_ = shard;
  }
}

std::uint64_t ParallelSim::run() {
  const std::uint64_t before = events_processed();
  if (shards() == 1) {
    // Degenerate case: exactly the serial engine. Any self-posted mail is
    // folded in between drains (the serial phase delivers it all — one
    // busy shard is always "unbounded").
    Simulator& sim = *sims_[0];
    for (;;) {
      serial_phase();
      if (stop_) {
        break;
      }
      const auto t0 = std::chrono::steady_clock::now();
      sim.run();
      shard_busy_ns_[0].v.fetch_add(wall_ns_since(t0),
                                    std::memory_order_relaxed);
    }
    stop_ = false;
    return events_processed() - before;
  }

  stop_ = false;
  failure_ = nullptr;
  failure_shard_ = shards();
  serial_phase();  // seed the first horizons (or stop on an empty machine)
  if (!stop_) {
    const int nworkers = threads_;
    running_ = true;
    TreeBarrier sync(nworkers, [this]() noexcept { serial_phase(); });
    std::mutex err_mu;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(nworkers));
    for (int w = 0; w < nworkers; ++w) {
      pool.emplace_back([this, w, nworkers, &sync, &err_mu] {
        // Worker w owns the contiguous Gray-coded shard block
        // [w*S/W, (w+1)*S/W): neighbouring subcubes stay on one worker
        // (and, first-touch, on one NUMA node), and the barrier tree's
        // sibling leaves are adjacent subcube groups.
        const int s_begin = (w * shards()) / nworkers;
        const int s_end = ((w + 1) * shards()) / nworkers;
        while (!stop_) {
          for (int s = s_begin; s < s_end; ++s) {
            ShardCtl& c = ctl_[static_cast<std::size_t>(s)];
            if (!c.runnable) {
              continue;
            }
            const auto t0 = std::chrono::steady_clock::now();
            try {
              Simulator& sim = *sims_[static_cast<std::size_t>(s)];
              if (uniform_window_) {
                sim.run_until(c.deadline);
              } else {
                // Run in chunks one echo window wide, stopping at the
                // end of the first chunk that posted cross-shard mail
                // (post() raises c.posted from this same thread): a
                // post at t_post inside chunk [t, t+echo) cannot
                // influence this shard before t_post + echo, which is
                // past the chunk end, so everything inside the chunk
                // was already safe. Chunking (rather than stepping
                // instant by instant) keeps the fast path at one
                // run_until per epoch — a shard whose whole window
                // fits in one echo costs exactly what the uniform
                // scheduler costs.
                c.posted = false;
                const SimTime echo = echo_[static_cast<std::size_t>(s)];
                while (!sim.idle()) {
                  const SimTime t = sim.next_event_time();
                  if (t > c.deadline) {
                    break;
                  }
                  const SimTime chunk = std::min(
                      c.deadline, t + echo - SimTime::picoseconds(1));
                  sim.run_until(chunk);
                  if (c.posted) {
                    c.posted = false;
                    break;
                  }
                }
              }
            } catch (...) {
              const std::lock_guard<std::mutex> lock(err_mu);
              record_failure(s, std::current_exception());
            }
            shard_busy_ns_[static_cast<std::size_t>(s)].v.fetch_add(
                wall_ns_since(t0), std::memory_order_relaxed);
          }
          const auto tb = std::chrono::steady_clock::now();
          sync.arrive_and_wait(w);
          worker_barrier_ns_[static_cast<std::size_t>(w)].v.fetch_add(
              wall_ns_since(tb), std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
    running_ = false;
  }
  if (failure_ != nullptr) {
    std::exception_ptr e = failure_;
    failure_ = nullptr;
    std::rethrow_exception(e);
  }
  return events_processed() - before;
}

SimTime ParallelSim::now() const {
  SimTime latest{};
  for (const auto& sim : sims_) {
    latest = std::max(latest, sim->last_event_time());
  }
  return latest;
}

std::uint64_t ParallelSim::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& sim : sims_) {
    total += sim->events_processed();
  }
  return total;
}

std::uint64_t ParallelSim::progress() const {
  std::uint64_t total = 0;
  for (const auto& sim : sims_) {
    total += sim->progress();
  }
  return total;
}

ParallelSim::Profile ParallelSim::profile() const {
  Profile p;
  p.epochs = epochs_.load(std::memory_order_relaxed);
  p.merge_ns = merge_ns_.load(std::memory_order_relaxed);
  p.mail_delivered = mail_delivered_.load(std::memory_order_relaxed);
  p.mail_reserve_bytes =
      mail_reserve_bytes_.load(std::memory_order_relaxed);
  p.shard_busy_ns.reserve(sims_.size());
  p.shard_events.reserve(sims_.size());
  p.shard_syncs.reserve(sims_.size());
  for (std::size_t s = 0; s < sims_.size(); ++s) {
    p.shard_busy_ns.push_back(
        shard_busy_ns_[s].v.load(std::memory_order_relaxed));
    p.shard_events.push_back(sims_[s]->progress());
    p.shard_syncs.push_back(
        shard_syncs_[s].v.load(std::memory_order_relaxed));
  }
  p.worker_barrier_ns.reserve(static_cast<std::size_t>(threads_));
  for (int w = 0; w < threads_; ++w) {
    p.worker_barrier_ns.push_back(
        worker_barrier_ns_[static_cast<std::size_t>(w)].v.load(
            std::memory_order_relaxed));
  }
  return p;
}

}  // namespace fpst::sim
