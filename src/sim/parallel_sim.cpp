#include "sim/parallel_sim.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sim/proc.hpp"  // completes Proc for Simulator's root-frame vector

namespace fpst::sim {

namespace {

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

int log2_exact(int v) {
  int k = 0;
  while ((1 << k) < v) {
    ++k;
  }
  return k;
}

/// Total order for merged cross-shard mail: timestamp, then key (the
/// message trace id), then source shard, then per-pair FIFO sequence.
bool mail_before(const auto& a, const auto& b) {
  if (a.at != b.at) {
    return a.at < b.at;
  }
  if (a.key != b.key) {
    return a.key < b.key;
  }
  if (a.from != b.from) {
    return a.from < b.from;
  }
  return a.seq < b.seq;
}

std::uint64_t wall_ns_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

ShardMap::ShardMap(int dimension, int shards) : dim_{dimension} {
  if (dimension < 0 || dimension > 30) {
    throw std::invalid_argument("ShardMap: dimension out of range");
  }
  if (!is_pow2(shards) || shards > (1 << dimension)) {
    throw std::invalid_argument(
        "ShardMap: shard count must be a power of two no larger than the "
        "node count");
  }
  log2_shards_ = log2_exact(shards);
}

ParallelSim::ParallelSim(Options opts) : lookahead_{opts.lookahead} {
  if (opts.shards < 1) {
    throw std::invalid_argument("ParallelSim: shards must be >= 1");
  }
  if (opts.shards > 1 && !(lookahead_ > SimTime{})) {
    throw std::invalid_argument(
        "ParallelSim: a positive lookahead is required when sharding — no "
        "conservative window exists without one");
  }
  threads_ = opts.threads > 0 ? opts.threads : opts.shards;
  threads_ = std::min(threads_, opts.shards);
  sims_.reserve(static_cast<std::size_t>(opts.shards));
  for (int s = 0; s < opts.shards; ++s) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  boxes_.resize(static_cast<std::size_t>(opts.shards) *
                static_cast<std::size_t>(opts.shards));
  pending_.resize(static_cast<std::size_t>(opts.shards));
  shard_busy_ns_ =
      std::make_unique<RelaxedNs[]>(static_cast<std::size_t>(opts.shards));
  worker_barrier_ns_ =
      std::make_unique<RelaxedNs[]>(static_cast<std::size_t>(threads_));
}

ParallelSim::~ParallelSim() = default;

void ParallelSim::post(int from, int to, SimTime at, std::uint64_t key,
                       std::function<void()> deliver) {
  if (from < 0 || from >= shards() || to < 0 || to >= shards()) {
    throw std::invalid_argument("ParallelSim::post: bad shard id");
  }
  PairBox& pb = box(from, to);
  Mail m;
  m.at = at;
  m.key = key;
  m.from = static_cast<std::uint32_t>(from);
  m.seq = pb.next_seq++;
  m.fn = std::move(deliver);
  pb.box.push_back(std::move(m));
}

void ParallelSim::deliver_below(SimTime window_end) {
  for (int dst = 0; dst < shards(); ++dst) {
    std::vector<Mail>& due = pending_[static_cast<std::size_t>(dst)];
    if (due.empty()) {
      continue;
    }
    std::sort(due.begin(), due.end(), [](const Mail& a, const Mail& b) {
      return mail_before(a, b);
    });
    Simulator& sim = *sims_[static_cast<std::size_t>(dst)];
    std::size_t taken = 0;
    for (Mail& m : due) {
      if (m.at >= window_end) {
        break;
      }
      if (m.at < sim.now()) {
        // A cross-shard delivery landing in the destination's past means
        // the lookahead contract was broken; executing it would silently
        // corrupt deterministic ordering, so die loudly instead.
        std::fprintf(stderr,
                     "parallel_sim: causality violation: cross-shard "
                     "delivery at %s is before shard %d time %s\n",
                     m.at.to_string().c_str(), dst,
                     sim.now().to_string().c_str());
        std::abort();
      }
      sim.schedule_at(m.at, std::move(m.fn));
      ++taken;
    }
    mail_delivered_.fetch_add(taken, std::memory_order_relaxed);
    due.erase(due.begin(),
              due.begin() + static_cast<std::ptrdiff_t>(taken));
  }
}

void ParallelSim::serial_phase() noexcept {
  if (failure_ != nullptr) {
    stop_ = true;
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  // Take every mailbox batch. Producers are parked at the barrier, so the
  // single-consumer side of the SPSC contract holds here.
  for (int from = 0; from < shards(); ++from) {
    for (int to = 0; to < shards(); ++to) {
      PairBox& pb = box(from, to);
      if (pb.box.empty()) {
        continue;
      }
      std::vector<Mail>& dst = pending_[static_cast<std::size_t>(to)];
      dst.insert(dst.end(), std::make_move_iterator(pb.box.begin()),
                 std::make_move_iterator(pb.box.end()));
      pb.box.clear();
    }
  }
  // The globally earliest pending work — event or undelivered mail —
  // anchors the next conservative window [T, T + L).
  bool any = false;
  SimTime t_min{};
  for (int s = 0; s < shards(); ++s) {
    const Simulator& sim = *sims_[static_cast<std::size_t>(s)];
    if (!sim.idle() && (!any || sim.next_event_time() < t_min)) {
      t_min = sim.next_event_time();
      any = true;
    }
    for (const Mail& m : pending_[static_cast<std::size_t>(s)]) {
      if (!any || m.at < t_min) {
        t_min = m.at;
        any = true;
      }
    }
  }
  if (!any) {
    stop_ = true;
    merge_ns_.fetch_add(wall_ns_since(t0), std::memory_order_relaxed);
    return;
  }
  const SimTime window_end = t_min + lookahead_;
  deliver_below(window_end);
  // run_until is inclusive; the window is half-open at picosecond grain.
  epoch_deadline_ = window_end - SimTime::picoseconds(1);
  epochs_.fetch_add(1, std::memory_order_relaxed);
  merge_ns_.fetch_add(wall_ns_since(t0), std::memory_order_relaxed);
}

void ParallelSim::record_failure(int shard, std::exception_ptr e) {
  if (failure_ == nullptr || shard < failure_shard_) {
    failure_ = e;
    failure_shard_ = shard;
  }
}

std::uint64_t ParallelSim::run() {
  const std::uint64_t before = events_processed();
  if (shards() == 1) {
    // Degenerate case: exactly the serial engine. Any self-posted mail is
    // folded in between drains.
    Simulator& sim = *sims_[0];
    for (;;) {
      serial_phase();  // moves mail; with one shard no window is needed
      std::vector<Mail>& due = pending_[0];
      std::sort(due.begin(), due.end(),
                [](const Mail& a, const Mail& b) {
                  return mail_before(a, b);
                });
      for (Mail& m : due) {
        if (m.at < sim.now()) {
          std::fprintf(stderr,
                       "parallel_sim: causality violation: delivery at %s "
                       "is before shard 0 time %s\n",
                       m.at.to_string().c_str(),
                       sim.now().to_string().c_str());
          std::abort();
        }
        sim.schedule_at(m.at, std::move(m.fn));
      }
      due.clear();
      if (sim.idle()) {
        break;
      }
      const auto t0 = std::chrono::steady_clock::now();
      sim.run();
      shard_busy_ns_[0].ns.fetch_add(wall_ns_since(t0),
                                     std::memory_order_relaxed);
    }
    stop_ = false;
    return events_processed() - before;
  }

  stop_ = false;
  failure_ = nullptr;
  failure_shard_ = shards();
  serial_phase();  // seed the first window (or stop on an empty machine)
  if (!stop_) {
    const int nworkers = threads_;
    auto completion = [this]() noexcept { serial_phase(); };
    std::barrier sync(nworkers, completion);
    std::mutex err_mu;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(nworkers));
    for (int w = 0; w < nworkers; ++w) {
      pool.emplace_back([this, w, nworkers, &sync, &err_mu] {
        while (!stop_) {
          const SimTime deadline = epoch_deadline_;
          for (int s = w; s < shards(); s += nworkers) {
            // Static round-robin keeps shard s on worker s % nworkers for
            // the whole run, so each busy slot has a single writer.
            const auto t0 = std::chrono::steady_clock::now();
            try {
              sims_[static_cast<std::size_t>(s)]->run_until(deadline);
            } catch (...) {
              const std::lock_guard<std::mutex> lock(err_mu);
              record_failure(s, std::current_exception());
            }
            shard_busy_ns_[static_cast<std::size_t>(s)].ns.fetch_add(
                wall_ns_since(t0), std::memory_order_relaxed);
          }
          const auto tb = std::chrono::steady_clock::now();
          sync.arrive_and_wait();
          worker_barrier_ns_[static_cast<std::size_t>(w)].ns.fetch_add(
              wall_ns_since(tb), std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  if (failure_ != nullptr) {
    std::exception_ptr e = failure_;
    failure_ = nullptr;
    std::rethrow_exception(e);
  }
  return events_processed() - before;
}

SimTime ParallelSim::now() const {
  SimTime latest{};
  for (const auto& sim : sims_) {
    latest = std::max(latest, sim->last_event_time());
  }
  return latest;
}

std::uint64_t ParallelSim::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& sim : sims_) {
    total += sim->events_processed();
  }
  return total;
}

std::uint64_t ParallelSim::progress() const {
  std::uint64_t total = 0;
  for (const auto& sim : sims_) {
    total += sim->progress();
  }
  return total;
}

ParallelSim::Profile ParallelSim::profile() const {
  Profile p;
  p.epochs = epochs_.load(std::memory_order_relaxed);
  p.merge_ns = merge_ns_.load(std::memory_order_relaxed);
  p.mail_delivered = mail_delivered_.load(std::memory_order_relaxed);
  p.shard_busy_ns.reserve(sims_.size());
  p.shard_events.reserve(sims_.size());
  for (std::size_t s = 0; s < sims_.size(); ++s) {
    p.shard_busy_ns.push_back(
        shard_busy_ns_[s].ns.load(std::memory_order_relaxed));
    p.shard_events.push_back(sims_[s]->progress());
  }
  p.worker_barrier_ns.reserve(static_cast<std::size_t>(threads_));
  for (int w = 0; w < threads_; ++w) {
    p.worker_barrier_ns.push_back(
        worker_barrier_ns_[static_cast<std::size_t>(w)].ns.load(
            std::memory_order_relaxed));
  }
  return p;
}

}  // namespace fpst::sim
