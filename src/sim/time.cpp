#include "sim/time.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace fpst::sim {

std::string SimTime::to_string() const {
  struct Unit {
    double scale;
    const char* suffix;
  };
  static constexpr std::array<Unit, 5> kUnits{{{1e-12, "s"},
                                               {1e-9, "ms"},
                                               {1e-6, "us"},
                                               {1e-3, "ns"},
                                               {1.0, "ps"}}};
  const double ps_value = static_cast<double>(ps_);
  for (const Unit& u : kUnits) {
    const double v = ps_value * u.scale;
    if (std::fabs(v) >= 1.0 || u.scale == 1.0) {
      char buf[48];
      // Print integral values without a fractional part ("125 ns", not
      // "125.000 ns"); keep three significant decimals otherwise.
      if (v == std::floor(v)) {
        std::snprintf(buf, sizeof buf, "%.0f %s", v, u.suffix);
      } else {
        std::snprintf(buf, sizeof buf, "%.3f %s", v, u.suffix);
      }
      return buf;
    }
  }
  return "0 ps";
}

std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.to_string();
}

}  // namespace fpst::sim
